file(REMOVE_RECURSE
  "libtpupoint_profiler.a"
)

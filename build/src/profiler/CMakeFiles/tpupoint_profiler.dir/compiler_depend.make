# Empty compiler generated dependencies file for tpupoint_profiler.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/tpupoint_profiler.dir/collector.cc.o"
  "CMakeFiles/tpupoint_profiler.dir/collector.cc.o.d"
  "CMakeFiles/tpupoint_profiler.dir/profiler.cc.o"
  "CMakeFiles/tpupoint_profiler.dir/profiler.cc.o.d"
  "libtpupoint_profiler.a"
  "libtpupoint_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpupoint_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for tpupoint_sim.
# This may be replaced when dependencies are built.

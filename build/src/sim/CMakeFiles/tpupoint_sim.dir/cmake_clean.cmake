file(REMOVE_RECURSE
  "CMakeFiles/tpupoint_sim.dir/event_queue.cc.o"
  "CMakeFiles/tpupoint_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/tpupoint_sim.dir/simulator.cc.o"
  "CMakeFiles/tpupoint_sim.dir/simulator.cc.o.d"
  "libtpupoint_sim.a"
  "libtpupoint_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpupoint_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libtpupoint_sim.a"
)

file(REMOVE_RECURSE
  "libtpupoint_core.a"
)

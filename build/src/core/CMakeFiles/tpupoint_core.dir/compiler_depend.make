# Empty compiler generated dependencies file for tpupoint_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/tpupoint_core.dir/csv.cc.o"
  "CMakeFiles/tpupoint_core.dir/csv.cc.o.d"
  "CMakeFiles/tpupoint_core.dir/json.cc.o"
  "CMakeFiles/tpupoint_core.dir/json.cc.o.d"
  "CMakeFiles/tpupoint_core.dir/logging.cc.o"
  "CMakeFiles/tpupoint_core.dir/logging.cc.o.d"
  "CMakeFiles/tpupoint_core.dir/math.cc.o"
  "CMakeFiles/tpupoint_core.dir/math.cc.o.d"
  "CMakeFiles/tpupoint_core.dir/rng.cc.o"
  "CMakeFiles/tpupoint_core.dir/rng.cc.o.d"
  "CMakeFiles/tpupoint_core.dir/stats.cc.o"
  "CMakeFiles/tpupoint_core.dir/stats.cc.o.d"
  "CMakeFiles/tpupoint_core.dir/strings.cc.o"
  "CMakeFiles/tpupoint_core.dir/strings.cc.o.d"
  "libtpupoint_core.a"
  "libtpupoint_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpupoint_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

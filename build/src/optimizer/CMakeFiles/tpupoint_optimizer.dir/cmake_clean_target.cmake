file(REMOVE_RECURSE
  "libtpupoint_optimizer.a"
)

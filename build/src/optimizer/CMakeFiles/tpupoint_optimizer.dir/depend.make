# Empty dependencies file for tpupoint_optimizer.
# This may be replaced when dependencies are built.

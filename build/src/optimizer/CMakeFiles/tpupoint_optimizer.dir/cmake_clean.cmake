file(REMOVE_RECURSE
  "CMakeFiles/tpupoint_optimizer.dir/optimizer.cc.o"
  "CMakeFiles/tpupoint_optimizer.dir/optimizer.cc.o.d"
  "CMakeFiles/tpupoint_optimizer.dir/parameters.cc.o"
  "CMakeFiles/tpupoint_optimizer.dir/parameters.cc.o.d"
  "CMakeFiles/tpupoint_optimizer.dir/program_analysis.cc.o"
  "CMakeFiles/tpupoint_optimizer.dir/program_analysis.cc.o.d"
  "CMakeFiles/tpupoint_optimizer.dir/quality.cc.o"
  "CMakeFiles/tpupoint_optimizer.dir/quality.cc.o.d"
  "CMakeFiles/tpupoint_optimizer.dir/trial.cc.o"
  "CMakeFiles/tpupoint_optimizer.dir/trial.cc.o.d"
  "CMakeFiles/tpupoint_optimizer.dir/tuner.cc.o"
  "CMakeFiles/tpupoint_optimizer.dir/tuner.cc.o.d"
  "libtpupoint_optimizer.a"
  "libtpupoint_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpupoint_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

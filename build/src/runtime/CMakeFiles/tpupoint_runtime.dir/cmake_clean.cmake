file(REMOVE_RECURSE
  "CMakeFiles/tpupoint_runtime.dir/session.cc.o"
  "CMakeFiles/tpupoint_runtime.dir/session.cc.o.d"
  "libtpupoint_runtime.a"
  "libtpupoint_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpupoint_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

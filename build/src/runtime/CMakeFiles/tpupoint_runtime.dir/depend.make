# Empty dependencies file for tpupoint_runtime.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libtpupoint_runtime.a"
)

file(REMOVE_RECURSE
  "libtpupoint_proto.a"
)

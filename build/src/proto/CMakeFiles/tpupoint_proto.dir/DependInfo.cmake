
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proto/record.cc" "src/proto/CMakeFiles/tpupoint_proto.dir/record.cc.o" "gcc" "src/proto/CMakeFiles/tpupoint_proto.dir/record.cc.o.d"
  "/root/repo/src/proto/serialize.cc" "src/proto/CMakeFiles/tpupoint_proto.dir/serialize.cc.o" "gcc" "src/proto/CMakeFiles/tpupoint_proto.dir/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tpupoint_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/tpupoint_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

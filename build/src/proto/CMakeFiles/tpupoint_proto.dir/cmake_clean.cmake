file(REMOVE_RECURSE
  "CMakeFiles/tpupoint_proto.dir/record.cc.o"
  "CMakeFiles/tpupoint_proto.dir/record.cc.o.d"
  "CMakeFiles/tpupoint_proto.dir/serialize.cc.o"
  "CMakeFiles/tpupoint_proto.dir/serialize.cc.o.d"
  "libtpupoint_proto.a"
  "libtpupoint_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpupoint_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

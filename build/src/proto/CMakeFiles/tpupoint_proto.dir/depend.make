# Empty dependencies file for tpupoint_proto.
# This may be replaced when dependencies are built.

# Empty dependencies file for tpupoint_analyzer.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/tpupoint_analyzer.dir/analyzer.cc.o"
  "CMakeFiles/tpupoint_analyzer.dir/analyzer.cc.o.d"
  "CMakeFiles/tpupoint_analyzer.dir/compare.cc.o"
  "CMakeFiles/tpupoint_analyzer.dir/compare.cc.o.d"
  "CMakeFiles/tpupoint_analyzer.dir/dbscan.cc.o"
  "CMakeFiles/tpupoint_analyzer.dir/dbscan.cc.o.d"
  "CMakeFiles/tpupoint_analyzer.dir/elbow.cc.o"
  "CMakeFiles/tpupoint_analyzer.dir/elbow.cc.o.d"
  "CMakeFiles/tpupoint_analyzer.dir/features.cc.o"
  "CMakeFiles/tpupoint_analyzer.dir/features.cc.o.d"
  "CMakeFiles/tpupoint_analyzer.dir/kmeans.cc.o"
  "CMakeFiles/tpupoint_analyzer.dir/kmeans.cc.o.d"
  "CMakeFiles/tpupoint_analyzer.dir/ols.cc.o"
  "CMakeFiles/tpupoint_analyzer.dir/ols.cc.o.d"
  "CMakeFiles/tpupoint_analyzer.dir/pca.cc.o"
  "CMakeFiles/tpupoint_analyzer.dir/pca.cc.o.d"
  "CMakeFiles/tpupoint_analyzer.dir/phases.cc.o"
  "CMakeFiles/tpupoint_analyzer.dir/phases.cc.o.d"
  "CMakeFiles/tpupoint_analyzer.dir/step_table.cc.o"
  "CMakeFiles/tpupoint_analyzer.dir/step_table.cc.o.d"
  "CMakeFiles/tpupoint_analyzer.dir/visualization.cc.o"
  "CMakeFiles/tpupoint_analyzer.dir/visualization.cc.o.d"
  "libtpupoint_analyzer.a"
  "libtpupoint_analyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpupoint_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

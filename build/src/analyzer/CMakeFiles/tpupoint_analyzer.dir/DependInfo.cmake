
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analyzer/analyzer.cc" "src/analyzer/CMakeFiles/tpupoint_analyzer.dir/analyzer.cc.o" "gcc" "src/analyzer/CMakeFiles/tpupoint_analyzer.dir/analyzer.cc.o.d"
  "/root/repo/src/analyzer/compare.cc" "src/analyzer/CMakeFiles/tpupoint_analyzer.dir/compare.cc.o" "gcc" "src/analyzer/CMakeFiles/tpupoint_analyzer.dir/compare.cc.o.d"
  "/root/repo/src/analyzer/dbscan.cc" "src/analyzer/CMakeFiles/tpupoint_analyzer.dir/dbscan.cc.o" "gcc" "src/analyzer/CMakeFiles/tpupoint_analyzer.dir/dbscan.cc.o.d"
  "/root/repo/src/analyzer/elbow.cc" "src/analyzer/CMakeFiles/tpupoint_analyzer.dir/elbow.cc.o" "gcc" "src/analyzer/CMakeFiles/tpupoint_analyzer.dir/elbow.cc.o.d"
  "/root/repo/src/analyzer/features.cc" "src/analyzer/CMakeFiles/tpupoint_analyzer.dir/features.cc.o" "gcc" "src/analyzer/CMakeFiles/tpupoint_analyzer.dir/features.cc.o.d"
  "/root/repo/src/analyzer/kmeans.cc" "src/analyzer/CMakeFiles/tpupoint_analyzer.dir/kmeans.cc.o" "gcc" "src/analyzer/CMakeFiles/tpupoint_analyzer.dir/kmeans.cc.o.d"
  "/root/repo/src/analyzer/ols.cc" "src/analyzer/CMakeFiles/tpupoint_analyzer.dir/ols.cc.o" "gcc" "src/analyzer/CMakeFiles/tpupoint_analyzer.dir/ols.cc.o.d"
  "/root/repo/src/analyzer/pca.cc" "src/analyzer/CMakeFiles/tpupoint_analyzer.dir/pca.cc.o" "gcc" "src/analyzer/CMakeFiles/tpupoint_analyzer.dir/pca.cc.o.d"
  "/root/repo/src/analyzer/phases.cc" "src/analyzer/CMakeFiles/tpupoint_analyzer.dir/phases.cc.o" "gcc" "src/analyzer/CMakeFiles/tpupoint_analyzer.dir/phases.cc.o.d"
  "/root/repo/src/analyzer/step_table.cc" "src/analyzer/CMakeFiles/tpupoint_analyzer.dir/step_table.cc.o" "gcc" "src/analyzer/CMakeFiles/tpupoint_analyzer.dir/step_table.cc.o.d"
  "/root/repo/src/analyzer/visualization.cc" "src/analyzer/CMakeFiles/tpupoint_analyzer.dir/visualization.cc.o" "gcc" "src/analyzer/CMakeFiles/tpupoint_analyzer.dir/visualization.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tpupoint_core.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/tpupoint_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/tpupoint_host.dir/DependInfo.cmake"
  "/root/repo/build/src/tpu/CMakeFiles/tpupoint_tpu.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/tpupoint_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tpupoint_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

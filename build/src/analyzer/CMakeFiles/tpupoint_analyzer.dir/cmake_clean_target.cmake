file(REMOVE_RECURSE
  "libtpupoint_analyzer.a"
)

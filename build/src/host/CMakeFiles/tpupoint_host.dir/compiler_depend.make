# Empty compiler generated dependencies file for tpupoint_host.
# This may be replaced when dependencies are built.

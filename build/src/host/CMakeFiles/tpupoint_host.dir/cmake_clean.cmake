file(REMOVE_RECURSE
  "CMakeFiles/tpupoint_host.dir/checkpoint.cc.o"
  "CMakeFiles/tpupoint_host.dir/checkpoint.cc.o.d"
  "CMakeFiles/tpupoint_host.dir/infeed.cc.o"
  "CMakeFiles/tpupoint_host.dir/infeed.cc.o.d"
  "CMakeFiles/tpupoint_host.dir/pipeline.cc.o"
  "CMakeFiles/tpupoint_host.dir/pipeline.cc.o.d"
  "CMakeFiles/tpupoint_host.dir/spec.cc.o"
  "CMakeFiles/tpupoint_host.dir/spec.cc.o.d"
  "CMakeFiles/tpupoint_host.dir/storage.cc.o"
  "CMakeFiles/tpupoint_host.dir/storage.cc.o.d"
  "libtpupoint_host.a"
  "libtpupoint_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpupoint_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

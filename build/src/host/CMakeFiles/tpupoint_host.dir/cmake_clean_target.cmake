file(REMOVE_RECURSE
  "libtpupoint_host.a"
)

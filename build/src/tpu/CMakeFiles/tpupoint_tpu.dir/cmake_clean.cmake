file(REMOVE_RECURSE
  "CMakeFiles/tpupoint_tpu.dir/core.cc.o"
  "CMakeFiles/tpupoint_tpu.dir/core.cc.o.d"
  "CMakeFiles/tpupoint_tpu.dir/spec.cc.o"
  "CMakeFiles/tpupoint_tpu.dir/spec.cc.o.d"
  "CMakeFiles/tpupoint_tpu.dir/timing.cc.o"
  "CMakeFiles/tpupoint_tpu.dir/timing.cc.o.d"
  "libtpupoint_tpu.a"
  "libtpupoint_tpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpupoint_tpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

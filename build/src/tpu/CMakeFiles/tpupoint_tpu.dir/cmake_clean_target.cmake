file(REMOVE_RECURSE
  "libtpupoint_tpu.a"
)

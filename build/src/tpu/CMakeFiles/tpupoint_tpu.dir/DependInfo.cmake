
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tpu/core.cc" "src/tpu/CMakeFiles/tpupoint_tpu.dir/core.cc.o" "gcc" "src/tpu/CMakeFiles/tpupoint_tpu.dir/core.cc.o.d"
  "/root/repo/src/tpu/spec.cc" "src/tpu/CMakeFiles/tpupoint_tpu.dir/spec.cc.o" "gcc" "src/tpu/CMakeFiles/tpupoint_tpu.dir/spec.cc.o.d"
  "/root/repo/src/tpu/timing.cc" "src/tpu/CMakeFiles/tpupoint_tpu.dir/timing.cc.o" "gcc" "src/tpu/CMakeFiles/tpupoint_tpu.dir/timing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tpupoint_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tpupoint_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/tpupoint_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/tpupoint_proto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for tpupoint_tpu.
# This may be replaced when dependencies are built.

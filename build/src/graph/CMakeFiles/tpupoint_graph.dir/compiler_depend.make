# Empty compiler generated dependencies file for tpupoint_graph.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/builder.cc" "src/graph/CMakeFiles/tpupoint_graph.dir/builder.cc.o" "gcc" "src/graph/CMakeFiles/tpupoint_graph.dir/builder.cc.o.d"
  "/root/repo/src/graph/fusion.cc" "src/graph/CMakeFiles/tpupoint_graph.dir/fusion.cc.o" "gcc" "src/graph/CMakeFiles/tpupoint_graph.dir/fusion.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/graph/CMakeFiles/tpupoint_graph.dir/graph.cc.o" "gcc" "src/graph/CMakeFiles/tpupoint_graph.dir/graph.cc.o.d"
  "/root/repo/src/graph/op.cc" "src/graph/CMakeFiles/tpupoint_graph.dir/op.cc.o" "gcc" "src/graph/CMakeFiles/tpupoint_graph.dir/op.cc.o.d"
  "/root/repo/src/graph/schedule.cc" "src/graph/CMakeFiles/tpupoint_graph.dir/schedule.cc.o" "gcc" "src/graph/CMakeFiles/tpupoint_graph.dir/schedule.cc.o.d"
  "/root/repo/src/graph/tensor.cc" "src/graph/CMakeFiles/tpupoint_graph.dir/tensor.cc.o" "gcc" "src/graph/CMakeFiles/tpupoint_graph.dir/tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tpupoint_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/tpupoint_graph.dir/builder.cc.o"
  "CMakeFiles/tpupoint_graph.dir/builder.cc.o.d"
  "CMakeFiles/tpupoint_graph.dir/fusion.cc.o"
  "CMakeFiles/tpupoint_graph.dir/fusion.cc.o.d"
  "CMakeFiles/tpupoint_graph.dir/graph.cc.o"
  "CMakeFiles/tpupoint_graph.dir/graph.cc.o.d"
  "CMakeFiles/tpupoint_graph.dir/op.cc.o"
  "CMakeFiles/tpupoint_graph.dir/op.cc.o.d"
  "CMakeFiles/tpupoint_graph.dir/schedule.cc.o"
  "CMakeFiles/tpupoint_graph.dir/schedule.cc.o.d"
  "CMakeFiles/tpupoint_graph.dir/tensor.cc.o"
  "CMakeFiles/tpupoint_graph.dir/tensor.cc.o.d"
  "libtpupoint_graph.a"
  "libtpupoint_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpupoint_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

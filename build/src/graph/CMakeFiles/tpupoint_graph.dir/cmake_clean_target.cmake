file(REMOVE_RECURSE
  "libtpupoint_graph.a"
)

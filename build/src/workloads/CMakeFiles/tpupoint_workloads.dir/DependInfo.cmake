
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/backbone.cc" "src/workloads/CMakeFiles/tpupoint_workloads.dir/backbone.cc.o" "gcc" "src/workloads/CMakeFiles/tpupoint_workloads.dir/backbone.cc.o.d"
  "/root/repo/src/workloads/catalog.cc" "src/workloads/CMakeFiles/tpupoint_workloads.dir/catalog.cc.o" "gcc" "src/workloads/CMakeFiles/tpupoint_workloads.dir/catalog.cc.o.d"
  "/root/repo/src/workloads/datasets.cc" "src/workloads/CMakeFiles/tpupoint_workloads.dir/datasets.cc.o" "gcc" "src/workloads/CMakeFiles/tpupoint_workloads.dir/datasets.cc.o.d"
  "/root/repo/src/workloads/layers.cc" "src/workloads/CMakeFiles/tpupoint_workloads.dir/layers.cc.o" "gcc" "src/workloads/CMakeFiles/tpupoint_workloads.dir/layers.cc.o.d"
  "/root/repo/src/workloads/model_bert.cc" "src/workloads/CMakeFiles/tpupoint_workloads.dir/model_bert.cc.o" "gcc" "src/workloads/CMakeFiles/tpupoint_workloads.dir/model_bert.cc.o.d"
  "/root/repo/src/workloads/model_dcgan.cc" "src/workloads/CMakeFiles/tpupoint_workloads.dir/model_dcgan.cc.o" "gcc" "src/workloads/CMakeFiles/tpupoint_workloads.dir/model_dcgan.cc.o.d"
  "/root/repo/src/workloads/model_qanet.cc" "src/workloads/CMakeFiles/tpupoint_workloads.dir/model_qanet.cc.o" "gcc" "src/workloads/CMakeFiles/tpupoint_workloads.dir/model_qanet.cc.o.d"
  "/root/repo/src/workloads/model_resnet.cc" "src/workloads/CMakeFiles/tpupoint_workloads.dir/model_resnet.cc.o" "gcc" "src/workloads/CMakeFiles/tpupoint_workloads.dir/model_resnet.cc.o.d"
  "/root/repo/src/workloads/model_retinanet.cc" "src/workloads/CMakeFiles/tpupoint_workloads.dir/model_retinanet.cc.o" "gcc" "src/workloads/CMakeFiles/tpupoint_workloads.dir/model_retinanet.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tpupoint_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/tpupoint_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/tpupoint_host.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/tpupoint_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/tpu/CMakeFiles/tpupoint_tpu.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tpupoint_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/tpupoint_proto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

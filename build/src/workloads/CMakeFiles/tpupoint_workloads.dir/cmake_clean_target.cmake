file(REMOVE_RECURSE
  "libtpupoint_workloads.a"
)

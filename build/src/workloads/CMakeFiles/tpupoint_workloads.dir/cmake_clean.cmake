file(REMOVE_RECURSE
  "CMakeFiles/tpupoint_workloads.dir/backbone.cc.o"
  "CMakeFiles/tpupoint_workloads.dir/backbone.cc.o.d"
  "CMakeFiles/tpupoint_workloads.dir/catalog.cc.o"
  "CMakeFiles/tpupoint_workloads.dir/catalog.cc.o.d"
  "CMakeFiles/tpupoint_workloads.dir/datasets.cc.o"
  "CMakeFiles/tpupoint_workloads.dir/datasets.cc.o.d"
  "CMakeFiles/tpupoint_workloads.dir/layers.cc.o"
  "CMakeFiles/tpupoint_workloads.dir/layers.cc.o.d"
  "CMakeFiles/tpupoint_workloads.dir/model_bert.cc.o"
  "CMakeFiles/tpupoint_workloads.dir/model_bert.cc.o.d"
  "CMakeFiles/tpupoint_workloads.dir/model_dcgan.cc.o"
  "CMakeFiles/tpupoint_workloads.dir/model_dcgan.cc.o.d"
  "CMakeFiles/tpupoint_workloads.dir/model_qanet.cc.o"
  "CMakeFiles/tpupoint_workloads.dir/model_qanet.cc.o.d"
  "CMakeFiles/tpupoint_workloads.dir/model_resnet.cc.o"
  "CMakeFiles/tpupoint_workloads.dir/model_resnet.cc.o.d"
  "CMakeFiles/tpupoint_workloads.dir/model_retinanet.cc.o"
  "CMakeFiles/tpupoint_workloads.dir/model_retinanet.cc.o.d"
  "libtpupoint_workloads.a"
  "libtpupoint_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpupoint_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

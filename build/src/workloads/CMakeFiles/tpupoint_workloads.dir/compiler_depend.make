# Empty compiler generated dependencies file for tpupoint_workloads.
# This may be replaced when dependencies are built.

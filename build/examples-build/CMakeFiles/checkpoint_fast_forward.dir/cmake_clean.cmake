file(REMOVE_RECURSE
  "../examples/checkpoint_fast_forward"
  "../examples/checkpoint_fast_forward.pdb"
  "CMakeFiles/checkpoint_fast_forward.dir/checkpoint_fast_forward.cpp.o"
  "CMakeFiles/checkpoint_fast_forward.dir/checkpoint_fast_forward.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint_fast_forward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for checkpoint_fast_forward.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../examples/analyze_workload"
  "../examples/analyze_workload.pdb"
  "CMakeFiles/analyze_workload.dir/analyze_workload.cpp.o"
  "CMakeFiles/analyze_workload.dir/analyze_workload.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyze_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

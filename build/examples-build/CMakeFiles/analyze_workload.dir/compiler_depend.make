# Empty compiler generated dependencies file for analyze_workload.
# This may be replaced when dependencies are built.

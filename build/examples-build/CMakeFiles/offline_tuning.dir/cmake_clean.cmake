file(REMOVE_RECURSE
  "../examples/offline_tuning"
  "../examples/offline_tuning.pdb"
  "CMakeFiles/offline_tuning.dir/offline_tuning.cpp.o"
  "CMakeFiles/offline_tuning.dir/offline_tuning.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../examples/compare_generations"
  "../examples/compare_generations.pdb"
  "CMakeFiles/compare_generations.dir/compare_generations.cpp.o"
  "CMakeFiles/compare_generations.dir/compare_generations.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_generations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

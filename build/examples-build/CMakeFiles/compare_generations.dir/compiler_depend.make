# Empty compiler generated dependencies file for compare_generations.
# This may be replaced when dependencies are built.

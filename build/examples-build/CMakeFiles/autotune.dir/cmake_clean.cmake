file(REMOVE_RECURSE
  "../examples/autotune"
  "../examples/autotune.pdb"
  "CMakeFiles/autotune.dir/autotune.cpp.o"
  "CMakeFiles/autotune.dir/autotune.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autotune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

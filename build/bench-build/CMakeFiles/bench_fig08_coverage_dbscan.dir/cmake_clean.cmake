file(REMOVE_RECURSE
  "../bench/bench_fig08_coverage_dbscan"
  "../bench/bench_fig08_coverage_dbscan.pdb"
  "CMakeFiles/bench_fig08_coverage_dbscan.dir/bench_fig08_coverage_dbscan.cc.o"
  "CMakeFiles/bench_fig08_coverage_dbscan.dir/bench_fig08_coverage_dbscan.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_coverage_dbscan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig08_coverage_dbscan.
# This may be replaced when dependencies are built.

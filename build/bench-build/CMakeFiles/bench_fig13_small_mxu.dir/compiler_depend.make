# Empty compiler generated dependencies file for bench_fig13_small_mxu.
# This may be replaced when dependencies are built.

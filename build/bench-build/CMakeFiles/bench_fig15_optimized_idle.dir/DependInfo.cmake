
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig15_optimized_idle.cc" "bench-build/CMakeFiles/bench_fig15_optimized_idle.dir/bench_fig15_optimized_idle.cc.o" "gcc" "bench-build/CMakeFiles/bench_fig15_optimized_idle.dir/bench_fig15_optimized_idle.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench-build/CMakeFiles/tpupoint_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/tpupoint_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/tpupoint_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/profiler/CMakeFiles/tpupoint_profiler.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/tpupoint_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/analyzer/CMakeFiles/tpupoint_analyzer.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/tpupoint_host.dir/DependInfo.cmake"
  "/root/repo/build/src/tpu/CMakeFiles/tpupoint_tpu.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tpupoint_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/tpupoint_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/tpupoint_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tpupoint_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

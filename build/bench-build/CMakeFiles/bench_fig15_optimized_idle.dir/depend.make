# Empty dependencies file for bench_fig15_optimized_idle.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_fig07_coverage_ols.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_fig07_coverage_ols"
  "../bench/bench_fig07_coverage_ols.pdb"
  "CMakeFiles/bench_fig07_coverage_ols.dir/bench_fig07_coverage_ols.cc.o"
  "CMakeFiles/bench_fig07_coverage_ols.dir/bench_fig07_coverage_ols.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_coverage_ols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

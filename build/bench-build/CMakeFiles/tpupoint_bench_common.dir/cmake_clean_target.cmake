file(REMOVE_RECURSE
  "libtpupoint_bench_common.a"
)

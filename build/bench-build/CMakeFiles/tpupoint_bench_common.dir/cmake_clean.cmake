file(REMOVE_RECURSE
  "CMakeFiles/tpupoint_bench_common.dir/common.cc.o"
  "CMakeFiles/tpupoint_bench_common.dir/common.cc.o.d"
  "libtpupoint_bench_common.a"
  "libtpupoint_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpupoint_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for tpupoint_bench_common.
# This may be replaced when dependencies are built.

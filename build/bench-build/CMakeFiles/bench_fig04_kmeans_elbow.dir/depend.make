# Empty dependencies file for bench_fig04_kmeans_elbow.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_fig04_kmeans_elbow"
  "../bench/bench_fig04_kmeans_elbow.pdb"
  "CMakeFiles/bench_fig04_kmeans_elbow.dir/bench_fig04_kmeans_elbow.cc.o"
  "CMakeFiles/bench_fig04_kmeans_elbow.dir/bench_fig04_kmeans_elbow.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_kmeans_elbow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_ablation_profiler_overhead.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_fig06_ols_phases"
  "../bench/bench_fig06_ols_phases.pdb"
  "CMakeFiles/bench_fig06_ols_phases.dir/bench_fig06_ols_phases.cc.o"
  "CMakeFiles/bench_fig06_ols_phases.dir/bench_fig06_ols_phases.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_ols_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig06_ols_phases.
# This may be replaced when dependencies are built.

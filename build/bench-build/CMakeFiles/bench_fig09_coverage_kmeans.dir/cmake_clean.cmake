file(REMOVE_RECURSE
  "../bench/bench_fig09_coverage_kmeans"
  "../bench/bench_fig09_coverage_kmeans.pdb"
  "CMakeFiles/bench_fig09_coverage_kmeans.dir/bench_fig09_coverage_kmeans.cc.o"
  "CMakeFiles/bench_fig09_coverage_kmeans.dir/bench_fig09_coverage_kmeans.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_coverage_kmeans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

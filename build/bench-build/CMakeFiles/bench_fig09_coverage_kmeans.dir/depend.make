# Empty dependencies file for bench_fig09_coverage_kmeans.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_fig05_dbscan_noise.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_fig05_dbscan_noise"
  "../bench/bench_fig05_dbscan_noise.pdb"
  "CMakeFiles/bench_fig05_dbscan_noise.dir/bench_fig05_dbscan_noise.cc.o"
  "CMakeFiles/bench_fig05_dbscan_noise.dir/bench_fig05_dbscan_noise.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_dbscan_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

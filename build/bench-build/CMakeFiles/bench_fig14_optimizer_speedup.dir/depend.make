# Empty dependencies file for bench_fig14_optimizer_speedup.
# This may be replaced when dependencies are built.

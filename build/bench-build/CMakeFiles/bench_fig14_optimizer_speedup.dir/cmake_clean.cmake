file(REMOVE_RECURSE
  "../bench/bench_fig14_optimizer_speedup"
  "../bench/bench_fig14_optimizer_speedup.pdb"
  "CMakeFiles/bench_fig14_optimizer_speedup.dir/bench_fig14_optimizer_speedup.cc.o"
  "CMakeFiles/bench_fig14_optimizer_speedup.dir/bench_fig14_optimizer_speedup.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_optimizer_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_table2_top_ops.
# This may be replaced when dependencies are built.

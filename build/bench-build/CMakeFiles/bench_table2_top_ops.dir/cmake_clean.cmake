file(REMOVE_RECURSE
  "../bench/bench_table2_top_ops"
  "../bench/bench_table2_top_ops.pdb"
  "CMakeFiles/bench_table2_top_ops.dir/bench_table2_top_ops.cc.o"
  "CMakeFiles/bench_table2_top_ops.dir/bench_table2_top_ops.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_top_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

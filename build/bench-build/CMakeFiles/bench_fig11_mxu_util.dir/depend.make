# Empty dependencies file for bench_fig11_mxu_util.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_fig16_optimized_mxu"
  "../bench/bench_fig16_optimized_mxu.pdb"
  "CMakeFiles/bench_fig16_optimized_mxu.dir/bench_fig16_optimized_mxu.cc.o"
  "CMakeFiles/bench_fig16_optimized_mxu.dir/bench_fig16_optimized_mxu.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_optimized_mxu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

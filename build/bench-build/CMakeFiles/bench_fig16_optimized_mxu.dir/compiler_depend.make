# Empty compiler generated dependencies file for bench_fig16_optimized_mxu.
# This may be replaced when dependencies are built.

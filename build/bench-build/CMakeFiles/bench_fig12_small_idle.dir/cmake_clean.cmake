file(REMOVE_RECURSE
  "../bench/bench_fig12_small_idle"
  "../bench/bench_fig12_small_idle.pdb"
  "CMakeFiles/bench_fig12_small_idle.dir/bench_fig12_small_idle.cc.o"
  "CMakeFiles/bench_fig12_small_idle.dir/bench_fig12_small_idle.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_small_idle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../tools/tpupoint-profile"
  "../tools/tpupoint-profile.pdb"
  "CMakeFiles/tpupoint-profile.dir/tpupoint_profile.cc.o"
  "CMakeFiles/tpupoint-profile.dir/tpupoint_profile.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpupoint-profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

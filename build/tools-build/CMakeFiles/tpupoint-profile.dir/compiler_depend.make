# Empty compiler generated dependencies file for tpupoint-profile.
# This may be replaced when dependencies are built.

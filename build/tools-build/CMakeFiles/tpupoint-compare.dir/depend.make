# Empty dependencies file for tpupoint-compare.
# This may be replaced when dependencies are built.

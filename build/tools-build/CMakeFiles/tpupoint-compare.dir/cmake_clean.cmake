file(REMOVE_RECURSE
  "../tools/tpupoint-compare"
  "../tools/tpupoint-compare.pdb"
  "CMakeFiles/tpupoint-compare.dir/tpupoint_compare.cc.o"
  "CMakeFiles/tpupoint-compare.dir/tpupoint_compare.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpupoint-compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../tools/tpupoint-analyze"
  "../tools/tpupoint-analyze.pdb"
  "CMakeFiles/tpupoint-analyze.dir/tpupoint_analyze.cc.o"
  "CMakeFiles/tpupoint-analyze.dir/tpupoint_analyze.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpupoint-analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

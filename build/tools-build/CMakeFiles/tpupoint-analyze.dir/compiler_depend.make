# Empty compiler generated dependencies file for tpupoint-analyze.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/platform_test[1]_include.cmake")
include("/root/repo/build/tests/proto_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/profiler_test[1]_include.cmake")
include("/root/repo/build/tests/analyzer_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")

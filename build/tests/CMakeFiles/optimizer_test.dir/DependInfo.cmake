
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/optimizer/optimizer_facade_test.cc" "tests/CMakeFiles/optimizer_test.dir/optimizer/optimizer_facade_test.cc.o" "gcc" "tests/CMakeFiles/optimizer_test.dir/optimizer/optimizer_facade_test.cc.o.d"
  "/root/repo/tests/optimizer/parameters_test.cc" "tests/CMakeFiles/optimizer_test.dir/optimizer/parameters_test.cc.o" "gcc" "tests/CMakeFiles/optimizer_test.dir/optimizer/parameters_test.cc.o.d"
  "/root/repo/tests/optimizer/program_analysis_test.cc" "tests/CMakeFiles/optimizer_test.dir/optimizer/program_analysis_test.cc.o" "gcc" "tests/CMakeFiles/optimizer_test.dir/optimizer/program_analysis_test.cc.o.d"
  "/root/repo/tests/optimizer/quality_test.cc" "tests/CMakeFiles/optimizer_test.dir/optimizer/quality_test.cc.o" "gcc" "tests/CMakeFiles/optimizer_test.dir/optimizer/quality_test.cc.o.d"
  "/root/repo/tests/optimizer/trial_test.cc" "tests/CMakeFiles/optimizer_test.dir/optimizer/trial_test.cc.o" "gcc" "tests/CMakeFiles/optimizer_test.dir/optimizer/trial_test.cc.o.d"
  "/root/repo/tests/optimizer/tuner_test.cc" "tests/CMakeFiles/optimizer_test.dir/optimizer/tuner_test.cc.o" "gcc" "tests/CMakeFiles/optimizer_test.dir/optimizer/tuner_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/tpupoint_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/tpupoint_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/profiler/CMakeFiles/tpupoint_profiler.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/tpupoint_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/analyzer/CMakeFiles/tpupoint_analyzer.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/tpupoint_host.dir/DependInfo.cmake"
  "/root/repo/build/src/tpu/CMakeFiles/tpupoint_tpu.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tpupoint_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/tpupoint_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/tpupoint_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tpupoint_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

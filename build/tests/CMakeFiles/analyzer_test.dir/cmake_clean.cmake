file(REMOVE_RECURSE
  "CMakeFiles/analyzer_test.dir/analyzer/analyzer_facade_test.cc.o"
  "CMakeFiles/analyzer_test.dir/analyzer/analyzer_facade_test.cc.o.d"
  "CMakeFiles/analyzer_test.dir/analyzer/compare_test.cc.o"
  "CMakeFiles/analyzer_test.dir/analyzer/compare_test.cc.o.d"
  "CMakeFiles/analyzer_test.dir/analyzer/dbscan_test.cc.o"
  "CMakeFiles/analyzer_test.dir/analyzer/dbscan_test.cc.o.d"
  "CMakeFiles/analyzer_test.dir/analyzer/elbow_test.cc.o"
  "CMakeFiles/analyzer_test.dir/analyzer/elbow_test.cc.o.d"
  "CMakeFiles/analyzer_test.dir/analyzer/features_test.cc.o"
  "CMakeFiles/analyzer_test.dir/analyzer/features_test.cc.o.d"
  "CMakeFiles/analyzer_test.dir/analyzer/kmeans_test.cc.o"
  "CMakeFiles/analyzer_test.dir/analyzer/kmeans_test.cc.o.d"
  "CMakeFiles/analyzer_test.dir/analyzer/ols_test.cc.o"
  "CMakeFiles/analyzer_test.dir/analyzer/ols_test.cc.o.d"
  "CMakeFiles/analyzer_test.dir/analyzer/pca_test.cc.o"
  "CMakeFiles/analyzer_test.dir/analyzer/pca_test.cc.o.d"
  "CMakeFiles/analyzer_test.dir/analyzer/phases_test.cc.o"
  "CMakeFiles/analyzer_test.dir/analyzer/phases_test.cc.o.d"
  "CMakeFiles/analyzer_test.dir/analyzer/step_table_test.cc.o"
  "CMakeFiles/analyzer_test.dir/analyzer/step_table_test.cc.o.d"
  "CMakeFiles/analyzer_test.dir/analyzer/visualization_test.cc.o"
  "CMakeFiles/analyzer_test.dir/analyzer/visualization_test.cc.o.d"
  "analyzer_test"
  "analyzer_test.pdb"
  "analyzer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyzer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

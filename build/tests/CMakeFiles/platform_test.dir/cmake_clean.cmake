file(REMOVE_RECURSE
  "CMakeFiles/platform_test.dir/platform/checkpoint_test.cc.o"
  "CMakeFiles/platform_test.dir/platform/checkpoint_test.cc.o.d"
  "CMakeFiles/platform_test.dir/platform/failure_injection_test.cc.o"
  "CMakeFiles/platform_test.dir/platform/failure_injection_test.cc.o.d"
  "CMakeFiles/platform_test.dir/platform/infeed_test.cc.o"
  "CMakeFiles/platform_test.dir/platform/infeed_test.cc.o.d"
  "CMakeFiles/platform_test.dir/platform/pipeline_test.cc.o"
  "CMakeFiles/platform_test.dir/platform/pipeline_test.cc.o.d"
  "CMakeFiles/platform_test.dir/platform/storage_test.cc.o"
  "CMakeFiles/platform_test.dir/platform/storage_test.cc.o.d"
  "CMakeFiles/platform_test.dir/platform/tpu_core_test.cc.o"
  "CMakeFiles/platform_test.dir/platform/tpu_core_test.cc.o.d"
  "CMakeFiles/platform_test.dir/platform/tpu_spec_test.cc.o"
  "CMakeFiles/platform_test.dir/platform/tpu_spec_test.cc.o.d"
  "CMakeFiles/platform_test.dir/platform/tpu_timing_test.cc.o"
  "CMakeFiles/platform_test.dir/platform/tpu_timing_test.cc.o.d"
  "platform_test"
  "platform_test.pdb"
  "platform_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

/**
 * @file
 * Table II: the top 5 most time-consuming operators in the most
 * time-consuming phase, per phase-detection algorithm, on both the
 * host and the TPU, for TPUv2 and TPUv3. The paper's headline
 * findings: `fusion` is the most time-consuming TPU operator
 * overall, `Reshape`/`MatMul` follow, and the host is dominated by
 * OutfeedDequeueTuple and TransferBufferToInfeedLocked.
 */

#include <cstdio>
#include <map>
#include <string>

#include "analyzer/analyzer.hh"
#include "bench/common.hh"

using namespace tpupoint;

namespace {

/** Tally of how often each operator makes a top-5 list. */
std::map<std::string, int> host_tally_v2, tpu_tally_v2;
std::map<std::string, int> host_tally_v3, tpu_tally_v3;

void
analyzeOne(WorkloadId id, TpuGeneration generation,
           const benchutil::RunOutput &run)
{
    const bool is_v2 = generation == TpuGeneration::V2;

    const PhaseAlgorithm algorithms[] = {
        PhaseAlgorithm::KMeans, PhaseAlgorithm::Dbscan,
        PhaseAlgorithm::OnlineLinearScan};

    if (is_v2)
        std::printf("\n--- %s (%s) ---\n", workloadName(id),
                    tpuGenerationName(generation));

    for (const PhaseAlgorithm algorithm : algorithms) {
        AnalyzerOptions options;
        options.algorithm = algorithm;
        // The paper's Section VI-B Table II settings.
        options.kmeans_fixed_k = 5;
        options.dbscan_fixed_min_samples = 30;
        const AnalysisResult analysis =
            TpuPointAnalyzer(options).analyze(run.records);
        const Phase *longest = analysis.longest();
        if (!longest)
            continue;

        const auto tpu_top = topOps(longest->tpu_ops, 5);
        const auto host_top = topOps(longest->host_ops, 5);
        for (const auto &op : tpu_top)
            ++(is_v2 ? tpu_tally_v2 : tpu_tally_v3)[op.name];
        for (const auto &op : host_top)
            ++(is_v2 ? host_tally_v2 : host_tally_v3)[op.name];

        if (!is_v2)
            continue;
        std::printf("  %-8s TPU :",
                    phaseAlgorithmName(algorithm));
        for (const auto &op : tpu_top)
            std::printf(" %s(%.0f%%)", op.name.c_str(),
                        100 * op.share);
        std::printf("\n  %-8s host:",
                    phaseAlgorithmName(algorithm));
        for (const auto &op : host_top)
            std::printf(" %s(%.0f%%)", op.name.c_str(),
                        100 * op.share);
        std::printf("\n");
    }
}

void
printTally(const char *title,
           const std::map<std::string, int> &v2,
           const std::map<std::string, int> &v3)
{
    // Order by v2 count descending, as the Table II total columns.
    std::vector<std::pair<std::string, int>> ranked(v2.begin(),
                                                    v2.end());
    for (const auto &[name, count] : v3) {
        if (!v2.count(name))
            ranked.emplace_back(name, 0);
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const auto &a, const auto &b) {
                  if (a.second != b.second)
                      return a.second > b.second;
                  return a.first < b.first;
              });
    std::printf("\n%s (appearances in top-5 lists):\n", title);
    std::printf("  %-34s %10s %10s\n", "Operator", "TotalTPUv2",
                "TotalTPUv3");
    for (const auto &[name, count] : ranked) {
        const auto it = v3.find(name);
        std::printf("  %-34s %10d %10d\n", name.c_str(), count,
                    it == v3.end() ? 0 : it->second);
    }
}

} // namespace

int
main()
{
    benchutil::banner("Table II: top-5 operators of the longest "
                      "phase (k-means k=5, DBSCAN min=30, OLS "
                      "70%)",
                      "Table II + Observations 3-5");

    // Both generations profile in one parallel sweep each; the
    // tallying stays serial so the printed order is unchanged.
    const std::vector<WorkloadId> ids = allWorkloads();
    const auto v2_runs =
        benchutil::profiledSweep(ids, TpuGeneration::V2);
    const auto v3_runs =
        benchutil::profiledSweep(ids, TpuGeneration::V3);
    for (std::size_t i = 0; i < ids.size(); ++i) {
        analyzeOne(ids[i], TpuGeneration::V2, v2_runs[i]);
        analyzeOne(ids[i], TpuGeneration::V3, v3_runs[i]);
    }

    printTally("Host operations", host_tally_v2, host_tally_v3);
    printTally("TPU operations", tpu_tally_v2, tpu_tally_v3);

    std::printf("\nPaper: fusion tops the TPU list (23 appearances"
                " each on v2/v3); OutfeedDequeueTuple and\n"
                "TransferBufferToInfeedLocked top the host list; "
                "Reshape grows on TPUv3 (15 -> 18).\n");
    return 0;
}

/**
 * @file
 * Ablation: profiling overhead. Section VII-C observes an average
 * performance loss under 10% from the profiling/optimization
 * instrumentation. This bench runs each workload with and without
 * TPUPoint-Profiler attached and reports the simulated slowdown.
 */

#include <algorithm>
#include <cstdio>

#include "bench/common.hh"
#include "profiler/profiler.hh"

using namespace tpupoint;

int
main(int argc, char **argv)
{
    benchutil::BenchReport report("ablation_profiler_overhead",
                                  argc, argv);
    benchutil::banner("Ablation: TPUPoint-Profiler overhead",
                      "Section VII-C (overhead under 10%)");

    std::printf("%-16s %12s %12s %10s %10s\n", "Workload",
                "unprofiled", "profiled", "overhead",
                "records");
    const std::vector<WorkloadId> ids = allWorkloads();
    const auto plain_runs =
        benchutil::plainSweep(ids, TpuGeneration::V2);
    const auto profiled_runs =
        benchutil::profiledSweep(ids, TpuGeneration::V2);
    double sum_overhead = 0;
    double max_overhead = 0;
    for (std::size_t i = 0; i < ids.size(); ++i) {
        const SessionResult &plain = plain_runs[i];
        const auto &profiled = profiled_runs[i];
        const double overhead =
            static_cast<double>(profiled.result.wall_time) /
                static_cast<double>(plain.wall_time) - 1.0;
        sum_overhead += overhead;
        max_overhead = std::max(max_overhead, overhead);
        std::printf("%-16s %11.2fs %11.2fs %9.2f%% %10zu\n",
                    workloadName(ids[i]),
                    toSeconds(plain.wall_time),
                    toSeconds(profiled.result.wall_time),
                    100 * overhead, profiled.records.size());
    }
    std::printf("\nPaper: profiling/optimization overhead stays "
                "under 10%% of complete program execution.\n");
    report.figure("mean_overhead_pct",
                  100 * sum_overhead /
                      static_cast<double>(ids.size()));
    report.figure("max_overhead_pct", 100 * max_overhead);
    return report.write() ? 0 : 1;
}

/**
 * @file
 * Ablation: the parallel sweep runner itself. Runs the same
 * multi-workload profiled sweep once on a single worker and once on
 * the full pool, reports the wall-clock speedup, and proves the two
 * sweeps are bit-identical: every profile record serializes to the
 * same bytes and every analysis finds the same phases regardless of
 * thread count.
 */

#include <chrono>
#include <cstdio>
#include <functional>
#include <iostream>
#include <vector>

#include "analyzer/analyzer.hh"
#include "bench/common.hh"
#include "obs/progress.hh"
#include "proto/serialize.hh"
#include "runtime/sweep.hh"

using namespace tpupoint;

namespace {

std::vector<SweepJob>
makeJobs()
{
    const std::vector<WorkloadId> ids = {
        WorkloadId::BertMrpc,      WorkloadId::BertCola,
        WorkloadId::DcganCifar10,  WorkloadId::DcganMnist,
        WorkloadId::QanetSquad,    WorkloadId::RetinanetCoco,
    };
    std::vector<SweepJob> jobs;
    for (const WorkloadId id : ids) {
        SweepJob job;
        job.workload = benchutil::buildScaled(id);
        job.config.device =
            TpuDeviceSpec::forGeneration(TpuGeneration::V2);
        jobs.push_back(std::move(job));
    }
    return jobs;
}

std::vector<SweepOutcome>
timedRun(const SweepRunner &runner,
         const std::vector<SweepJob> &jobs, double *seconds)
{
    const auto begin = std::chrono::steady_clock::now();
    auto outcomes = runner.run(jobs);
    const auto end = std::chrono::steady_clock::now();
    *seconds = std::chrono::duration<double>(end - begin).count();
    return outcomes;
}

/** Bitwise comparison of two sweeps' full output. */
bool
identical(const std::vector<SweepOutcome> &a,
          const std::vector<SweepOutcome> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].records.size() != b[i].records.size())
            return false;
        for (std::size_t r = 0; r < a[i].records.size(); ++r) {
            if (encodeProfileRecord(a[i].records[r]) !=
                encodeProfileRecord(b[i].records[r]))
                return false;
        }
        if (a[i].result.wall_time != b[i].result.wall_time ||
            a[i].profiler_bytes != b[i].profiler_bytes ||
            a[i].profile_requests != b[i].profile_requests)
            return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    benchutil::BenchReport report("sweep_runner", argc, argv);
    benchutil::banner("Ablation: parallel sweep runner",
                      "Section V methodology (profiled workload "
                      "sweeps)");

    const std::vector<SweepJob> jobs = makeJobs();

    SweepOptions serial_options;
    serial_options.threads = 1;
    const SweepRunner serial(serial_options);

    // The pool run reports live job progress: a status line on a
    // terminal, one JSON object per event when stderr is a pipe.
    obs::ProgressReporter reporter(
        std::cerr, obs::ProgressReporter::autoMode(2));
    SweepOptions pool_options;
    pool_options.threads = benchutil::sweepThreads();
    pool_options.progress = std::ref(reporter);
    const SweepRunner pool(pool_options);

    std::printf("sweeping %zu profiled workloads: 1 thread vs %u "
                "threads\n\n",
                jobs.size(), pool.threads());

    double serial_s = 0, pool_s = 0;
    const auto serial_out = timedRun(serial, jobs, &serial_s);
    const auto pool_out = timedRun(pool, jobs, &pool_s);
    reporter.finish();

    std::printf("%-24s %10.2fs\n", "1 worker", serial_s);
    std::printf("%-24s %10.2fs  (%.2fx speedup)\n",
                "pool", pool_s,
                pool_s > 0 ? serial_s / pool_s : 0.0);

    const bool bitwise = identical(serial_out, pool_out);
    std::printf("\nbit-determinism: records + results %s across "
                "thread counts\n",
                bitwise ? "IDENTICAL" : "DIFFER (BUG)");

    // Per-job summary from the pool run, in job order.
    std::printf("\n%-16s %10s %10s %10s\n", "Workload", "wall",
                "records", "phases");
    for (const auto &outcome : pool_out) {
        const AnalysisResult analysis =
            TpuPointAnalyzer().analyze(outcome.records);
        std::printf("%-16s %9.1fs %10zu %10zu\n",
                    jobs[outcome.job_index].workload.name.c_str(),
                    toSeconds(outcome.result.wall_time),
                    outcome.records.size(),
                    analysis.phases.size());
    }
    report.figure("serial_s", serial_s);
    report.figure("pool_s", pool_s);
    report.figure("speedup", pool_s > 0 ? serial_s / pool_s : 0.0);
    report.figure("bitwise_identical", bitwise ? 1.0 : 0.0);
    return report.write() && bitwise ? 0 : 1;
}

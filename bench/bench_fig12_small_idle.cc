/**
 * @file
 * Figure 12: TPU idle time for QANet, RetinaNet and ResNet when
 * their datasets shrink (half SQuAD, half COCO, CIFAR-10). The
 * paper finds idle time increases overall, with ResNet changing
 * the most (Observation 6).
 */

#include <cstdio>

#include "bench/common.hh"

using namespace tpupoint;

int
main()
{
    benchutil::banner("Figure 12: idle time with reduced datasets",
                      "Figure 12 + Observation 6");

    // Full/reduced pairs, flattened so one sweep per generation
    // covers all six runs.
    const std::vector<WorkloadId> ids = {
        WorkloadId::QanetSquad, WorkloadId::QanetSquadHalf,
        WorkloadId::RetinanetCoco, WorkloadId::RetinanetCocoHalf,
        WorkloadId::ResnetImagenet, WorkloadId::ResnetCifar10,
    };
    const auto v2_runs =
        benchutil::plainSweep(ids, TpuGeneration::V2);
    const auto v3_runs =
        benchutil::plainSweep(ids, TpuGeneration::V3);

    std::printf("%-18s %12s %12s %12s %12s\n", "Workload",
                "v2 full", "v2 reduced", "v3 full", "v3 reduced");
    for (std::size_t pair = 0; pair < ids.size() / 2; ++pair) {
        const std::size_t full = 2 * pair;
        const std::size_t reduced = 2 * pair + 1;
        std::printf("%-18s %11.2f%% %11.2f%% %11.2f%% %11.2f%%\n",
                    workloadName(ids[reduced]),
                    100 * v2_runs[full].tpu_idle_fraction,
                    100 * v2_runs[reduced].tpu_idle_fraction,
                    100 * v3_runs[full].tpu_idle_fraction,
                    100 * v3_runs[reduced].tpu_idle_fraction);
    }
    std::printf("\nPaper: every model sees more idle time on the "
                "reduced dataset; ResNet-CIFAR10 changes most.\n");
    return 0;
}

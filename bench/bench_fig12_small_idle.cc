/**
 * @file
 * Figure 12: TPU idle time for QANet, RetinaNet and ResNet when
 * their datasets shrink (half SQuAD, half COCO, CIFAR-10). The
 * paper finds idle time increases overall, with ResNet changing
 * the most (Observation 6).
 */

#include <cstdio>

#include "bench/common.hh"

using namespace tpupoint;

int
main()
{
    benchutil::banner("Figure 12: idle time with reduced datasets",
                      "Figure 12 + Observation 6");

    const std::pair<WorkloadId, WorkloadId> pairs[] = {
        {WorkloadId::QanetSquad, WorkloadId::QanetSquadHalf},
        {WorkloadId::RetinanetCoco,
         WorkloadId::RetinanetCocoHalf},
        {WorkloadId::ResnetImagenet, WorkloadId::ResnetCifar10},
    };

    std::printf("%-18s %12s %12s %12s %12s\n", "Workload",
                "v2 full", "v2 reduced", "v3 full", "v3 reduced");
    for (const auto &[full_id, reduced_id] : pairs) {
        const RuntimeWorkload full =
            benchutil::buildScaled(full_id);
        const RuntimeWorkload reduced =
            benchutil::buildScaled(reduced_id);
        const double v2_full = benchutil::plainRun(
            full, TpuGeneration::V2).tpu_idle_fraction;
        const double v2_small = benchutil::plainRun(
            reduced, TpuGeneration::V2).tpu_idle_fraction;
        const double v3_full = benchutil::plainRun(
            full, TpuGeneration::V3).tpu_idle_fraction;
        const double v3_small = benchutil::plainRun(
            reduced, TpuGeneration::V3).tpu_idle_fraction;
        std::printf("%-18s %11.2f%% %11.2f%% %11.2f%% %11.2f%%\n",
                    workloadName(reduced_id), 100 * v2_full,
                    100 * v2_small, 100 * v3_full,
                    100 * v3_small);
    }
    std::printf("\nPaper: every model sees more idle time on the "
                "reduced dataset; ResNet-CIFAR10 changes most.\n");
    return 0;
}

/**
 * @file
 * Figure 6: OLS phase counts for similarity thresholds 0%..100%.
 * The paper finds most workloads condense to ~3 phases at the 70%
 * threshold, with phase counts growing sharply above it; at 100%
 * most workloads still stay under 15 phases, except the
 * RetinaNet-COCO and ResNet-ImageNet workloads.
 */

#include <cstdio>

#include "analyzer/ols.hh"
#include "analyzer/step_table.hh"
#include "bench/common.hh"

using namespace tpupoint;

int
main()
{
    benchutil::banner("Figure 6: OLS phases vs similarity "
                      "threshold",
                      "Figure 6 + Observation 1");

    const double thresholds[] = {0.0, 0.1, 0.2, 0.3, 0.4, 0.5,
                                 0.6, 0.7, 0.8, 0.9, 1.0};
    std::printf("%-16s", "threshold =");
    for (const double t : thresholds)
        std::printf(" %5.0f%%", 100.0 * t);
    std::printf("\n");

    for (const WorkloadId id : allWorkloads()) {
        const RuntimeWorkload w = benchutil::buildScaled(id);
        const auto run =
            benchutil::profiledRun(w, TpuGeneration::V2);
        const StepTable table =
            StepTable::fromRecords(run.records);

        std::printf("%-16s", workloadName(id));
        for (const double t : thresholds) {
            OnlineLinearScan ols(OlsOptions{t});
            for (const auto &step : table.steps())
                ols.addStep(step);
            ols.finish();
            std::printf(" %6zu", ols.phases().size());
        }
        std::printf("\n");
    }
    std::printf("\nPaper: ~3 phases at the 70%% threshold for most "
                "workloads; counts grow significantly above 70%%.\n");
    return 0;
}

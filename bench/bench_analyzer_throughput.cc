/**
 * @file
 * Analyzer ingest throughput: the columnar pipeline (zero-copy
 * chunk reads, interned op ids, struct-of-arrays step table, flat
 * feature matrix) against the legacy row pipeline it replaced
 * (materialized ProfileRecord, string-keyed map aggregation,
 * per-step feature vectors), preserved here as the in-bench
 * baseline. Both passes run decode -> step table -> feature
 * extraction over the same serialized ResNet-scale profile; the
 * bench reports MB/s and events/sec per path plus the speedup, so
 * the columnar rewrite's gain is measured in the same run it is
 * claimed.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analyzer/features.hh"
#include "analyzer/step_table.hh"
#include "bench/common.hh"
#include "proto/serialize.hh"

using namespace tpupoint;

namespace {

/** Wall seconds one callable takes. */
template <typename Fn>
double
timeSeconds(Fn &&fn)
{
    const auto start = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** What either pass boils the profile down to. */
struct PassResult
{
    std::size_t steps = 0;
    std::size_t dims = 0;
};

/**
 * The pre-columnar analyzer pipeline, kept verbatim as the
 * baseline: materialized records merged through a string-keyed
 * std::map table, op universe via a std::set of concatenated
 * labels, features filled by name lookup into per-step vectors.
 */
PassResult
legacyPass(const std::string &payload)
{
    std::istringstream in(payload);
    ProfileReader reader(in);
    ProfileRecord record;
    std::map<StepId, StepStats> merged;
    while (reader.read(record)) {
        for (const StepStats &step : record.steps) {
            auto [it, inserted] =
                merged.try_emplace(step.step, step);
            if (!inserted)
                it->second.merge(step);
        }
    }
    std::vector<StepStats> rows;
    rows.reserve(merged.size());
    for (auto &[id, stats] : merged)
        rows.push_back(std::move(stats));

    std::set<std::string> labels;
    for (const StepStats &row : rows) {
        for (const auto &[name, stats] : row.host_ops)
            labels.insert("host:" + name);
        for (const auto &[name, stats] : row.tpu_ops)
            labels.insert("tpu:" + name);
    }
    std::unordered_map<std::string, std::size_t> op_index;
    op_index.reserve(labels.size());
    for (const std::string &label : labels)
        op_index.emplace(label, op_index.size());
    const std::size_t raw_dims =
        std::max<std::size_t>(labels.size() * 2, 1);

    std::vector<FeatureVector> data;
    data.reserve(rows.size());
    for (const StepStats &step : rows) {
        FeatureVector row(raw_dims, 0.0);
        auto fill = [&](const OpStatsMap &ops,
                        const char *prefix) {
            for (const auto &[name, stats] : ops) {
                const auto it = op_index.find(prefix + name);
                if (it == op_index.end())
                    continue;
                row[it->second * 2] =
                    static_cast<double>(stats.count);
                row[it->second * 2 + 1] =
                    static_cast<double>(stats.total_duration);
            }
        };
        fill(step.host_ops, "host:");
        fill(step.tpu_ops, "tpu:");
        data.push_back(std::move(row));
    }
    FeatureVector maxima(raw_dims, 0.0);
    for (const FeatureVector &row : data)
        for (std::size_t d = 0; d < raw_dims; ++d)
            maxima[d] = std::max(maxima[d], std::abs(row[d]));
    for (FeatureVector &row : data)
        for (std::size_t d = 0; d < raw_dims; ++d)
            if (maxima[d] > 0)
                row[d] /= maxima[d];

    return {rows.size(), raw_dims};
}

/** The columnar pipeline the analyzer now runs. */
PassResult
columnarPass(const std::string &payload)
{
    std::istringstream in(payload);
    ProfileReader reader(in);
    ColumnarRecord record;
    StepTableBuilder builder;
    while (reader.read(record))
        builder.ingest(record);
    const StepTable table = std::move(builder).build();
    const FeatureMatrix features = FeatureMatrix::build(table);
    return {table.size(), features.dimensions()};
}

} // namespace

int
main(int argc, char **argv)
{
    benchutil::BenchReport report("analyzer_throughput", argc,
                                  argv);
    benchutil::banner(
        "Analyzer ingest throughput: columnar vs legacy row path",
        "columnar core (interned SoA table, zero-copy reads)");

    // One ResNet-scale profiled run, serialized several times over
    // so both passes chew through a multi-megabyte stream. Repeats
    // re-ingest the same step ids, which also exercises the
    // merge-into-existing-row path.
    constexpr int kRepeats = 24;
    constexpr int kIterations = 5;
    const auto run = benchutil::profiledRun(
        benchutil::buildScaled(WorkloadId::ResnetImagenet),
        TpuGeneration::V2);
    std::uint64_t events = 0;
    std::ostringstream buffer;
    {
        ProfileWriter writer(buffer);
        for (int repeat = 0; repeat < kRepeats; ++repeat) {
            for (const ProfileRecord &record : run.records) {
                writer.write(record);
                events += record.event_count;
            }
        }
        writer.finish();
    }
    const std::string payload = buffer.str();
    const double megabytes =
        static_cast<double>(payload.size()) / (1024.0 * 1024.0);
    std::printf("profile: %zu records x%d, %.1f MiB, %llu "
                "events\n\n",
                run.records.size(), kRepeats, megabytes,
                static_cast<unsigned long long>(events));

    // Best-of-N wall time per path; the first columnar pass also
    // pays the one-time interner fill, which best-of absorbs.
    double legacy_seconds = 1e300;
    double columnar_seconds = 1e300;
    PassResult legacy;
    PassResult columnar;
    for (int iter = 0; iter < kIterations; ++iter) {
        legacy_seconds = std::min(
            legacy_seconds,
            timeSeconds([&] { legacy = legacyPass(payload); }));
        columnar_seconds = std::min(
            columnar_seconds,
            timeSeconds([&] { columnar = columnarPass(payload); }));
    }
    if (legacy.steps != columnar.steps ||
        legacy.dims != columnar.dims) {
        std::fprintf(stderr,
                     "error: paths disagree (%zu steps x%zu dims "
                     "vs %zu x%zu)\n",
                     legacy.steps, legacy.dims, columnar.steps,
                     columnar.dims);
        return 1;
    }

    const double total_events = static_cast<double>(events);
    const double legacy_eps = total_events / legacy_seconds;
    const double columnar_eps = total_events / columnar_seconds;
    const double legacy_mbps = megabytes / legacy_seconds;
    const double columnar_mbps = megabytes / columnar_seconds;
    const double speedup = columnar_eps / legacy_eps;

    std::printf("%-10s %12s %14s %8s %6s\n", "Path", "MB/s",
                "events/sec", "steps", "dims");
    std::printf("%-10s %12.1f %14.0f %8zu %6zu\n", "legacy",
                legacy_mbps, legacy_eps, legacy.steps,
                legacy.dims);
    std::printf("%-10s %12.1f %14.0f %8zu %6zu\n", "columnar",
                columnar_mbps, columnar_eps, columnar.steps,
                columnar.dims);
    std::printf("\nspeedup: %.2fx events/sec (target >= 1.5x)\n",
                speedup);

    report.figure("legacy_mb_per_sec", legacy_mbps);
    report.figure("legacy_events_per_sec", legacy_eps);
    report.figure("columnar_mb_per_sec", columnar_mbps);
    report.figure("columnar_events_per_sec", columnar_eps);
    report.figure("speedup_events_per_sec", speedup);
    return report.write() ? 0 : 1;
}

/**
 * @file
 * Figure 13: MXU utilization for QANet, RetinaNet and ResNet with
 * reduced datasets. All models lose MXU utilization; ResNet on
 * CIFAR-10 collapses furthest from its ImageNet numbers
 * (Observation 6).
 */

#include <cstdio>

#include "bench/common.hh"

using namespace tpupoint;

int
main()
{
    benchutil::banner("Figure 13: MXU utilization with reduced "
                      "datasets",
                      "Figure 13 + Observation 6");

    const std::pair<WorkloadId, WorkloadId> pairs[] = {
        {WorkloadId::QanetSquad, WorkloadId::QanetSquadHalf},
        {WorkloadId::RetinanetCoco,
         WorkloadId::RetinanetCocoHalf},
        {WorkloadId::ResnetImagenet, WorkloadId::ResnetCifar10},
    };

    std::printf("%-18s %12s %12s %12s %12s\n", "Workload",
                "v2 full", "v2 reduced", "v3 full", "v3 reduced");
    for (const auto &[full_id, reduced_id] : pairs) {
        const RuntimeWorkload full =
            benchutil::buildScaled(full_id);
        const RuntimeWorkload reduced =
            benchutil::buildScaled(reduced_id);
        const double v2_full = benchutil::plainRun(
            full, TpuGeneration::V2).mxu_utilization;
        const double v2_small = benchutil::plainRun(
            reduced, TpuGeneration::V2).mxu_utilization;
        const double v3_full = benchutil::plainRun(
            full, TpuGeneration::V3).mxu_utilization;
        const double v3_small = benchutil::plainRun(
            reduced, TpuGeneration::V3).mxu_utilization;
        std::printf("%-18s %11.2f%% %11.2f%% %11.2f%% %11.2f%%\n",
                    workloadName(reduced_id), 100 * v2_full,
                    100 * v2_small, 100 * v3_full,
                    100 * v3_small);
    }
    std::printf("\nPaper: all models lose MXU utilization on the "
                "reduced datasets (Observation 6).\n");
    return 0;
}

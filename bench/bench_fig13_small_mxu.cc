/**
 * @file
 * Figure 13: MXU utilization for QANet, RetinaNet and ResNet with
 * reduced datasets. All models lose MXU utilization; ResNet on
 * CIFAR-10 collapses furthest from its ImageNet numbers
 * (Observation 6).
 */

#include <cstdio>

#include "bench/common.hh"

using namespace tpupoint;

int
main()
{
    benchutil::banner("Figure 13: MXU utilization with reduced "
                      "datasets",
                      "Figure 13 + Observation 6");

    // Full/reduced pairs, flattened so one sweep per generation
    // covers all six runs.
    const std::vector<WorkloadId> ids = {
        WorkloadId::QanetSquad, WorkloadId::QanetSquadHalf,
        WorkloadId::RetinanetCoco, WorkloadId::RetinanetCocoHalf,
        WorkloadId::ResnetImagenet, WorkloadId::ResnetCifar10,
    };
    const auto v2_runs =
        benchutil::plainSweep(ids, TpuGeneration::V2);
    const auto v3_runs =
        benchutil::plainSweep(ids, TpuGeneration::V3);

    std::printf("%-18s %12s %12s %12s %12s\n", "Workload",
                "v2 full", "v2 reduced", "v3 full", "v3 reduced");
    for (std::size_t pair = 0; pair < ids.size() / 2; ++pair) {
        const std::size_t full = 2 * pair;
        const std::size_t reduced = 2 * pair + 1;
        std::printf("%-18s %11.2f%% %11.2f%% %11.2f%% %11.2f%%\n",
                    workloadName(ids[reduced]),
                    100 * v2_runs[full].mxu_utilization,
                    100 * v2_runs[reduced].mxu_utilization,
                    100 * v3_runs[full].mxu_utilization,
                    100 * v3_runs[reduced].mxu_utilization);
    }
    std::printf("\nPaper: all models lose MXU utilization on the "
                "reduced datasets (Observation 6).\n");
    return 0;
}

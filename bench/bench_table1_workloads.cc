/**
 * @file
 * Table I: workload breakdown and specifications — models, datasets,
 * dataset sizes and default training parameters, as instantiated by
 * the workload catalog.
 */

#include <cstdio>

#include "bench/common.hh"
#include "core/strings.hh"

using namespace tpupoint;

int
main(int argc, char **argv)
{
    benchutil::BenchReport report("table1_workloads", argc, argv);
    benchutil::banner("Table I: workload breakdown and "
                      "specifications",
                      "Table I (Section V, Experimental "
                      "Methodology)");

    std::printf("%-18s %-12s %10s %12s %8s %12s %11s %9s\n",
                "Workload", "Dataset", "Size", "Examples",
                "Batch", "TrainSteps", "Eval/Steps", "ParamsM");
    for (const WorkloadId id : allWorkloads()) {
        const RuntimeWorkload w = makeWorkload(id);
        std::printf("%-18s %-12s %10s %12llu %8llu %12llu "
                    "%5llu/%-5llu %9.1f\n",
                    workloadName(id), w.dataset.name.c_str(),
                    formatBytes(w.dataset.total_bytes).c_str(),
                    static_cast<unsigned long long>(
                        w.dataset.num_examples),
                    static_cast<unsigned long long>(w.batch_size),
                    static_cast<unsigned long long>(
                        w.schedule.train_steps),
                    static_cast<unsigned long long>(
                        w.schedule.steps_per_eval),
                    static_cast<unsigned long long>(
                        w.schedule.eval_steps),
                    static_cast<double>(w.model_bytes) / 4e6);
    }

    std::printf("\nReduced-dataset variants (Section VI-C):\n");
    for (const WorkloadId id : reducedWorkloads()) {
        const RuntimeWorkload w = makeWorkload(id);
        std::printf("%-18s %-12s %10s %12llu\n", workloadName(id),
                    w.dataset.name.c_str(),
                    formatBytes(w.dataset.total_bytes).c_str(),
                    static_cast<unsigned long long>(
                        w.dataset.num_examples));
    }
    report.figure("workloads",
                  static_cast<double>(allWorkloads().size()));
    report.figure("reduced_variants",
                  static_cast<double>(reducedWorkloads().size()));
    return report.write() ? 0 : 1;
}

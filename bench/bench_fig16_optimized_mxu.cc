/**
 * @file
 * Figure 16: MXU utilization of the naive implementations with and
 * without TPUPoint-Optimizer, on TPUv2 and TPUv3. The paper sees a
 * pronounced utilization gain on TPUv2.
 */

#include <cstdio>

#include "bench/common.hh"
#include "optimizer/optimizer.hh"

using namespace tpupoint;

int
main()
{
    benchutil::banner("Figure 16: MXU utilization of naive "
                      "implementations, with/without "
                      "TPUPoint-Optimizer",
                      "Figure 16 + Section VII-C");

    const WorkloadId ids[] = {
        WorkloadId::BertSquad, WorkloadId::DcganCifar10,
        WorkloadId::QanetSquad, WorkloadId::RetinanetCoco};

    std::printf("%-16s %12s %12s %12s %12s\n", "Workload",
                "v2 naive", "v2 +opt", "v3 naive", "v3 +opt");
    for (const WorkloadId id : ids) {
        const RuntimeWorkload w = benchutil::buildScaled(id);
        SessionConfig naive;
        naive.pipeline = PipelineConfig::naive();

        naive.device = TpuDeviceSpec::v2();
        const OptimizationOutcome v2 =
            runOptimizationExperiment(w, naive);
        naive.device = TpuDeviceSpec::v3();
        const OptimizationOutcome v3 =
            runOptimizationExperiment(w, naive);

        std::printf("%-16s %11.2f%% %11.2f%% %11.2f%% %11.2f%%\n",
                    workloadName(id),
                    100 * v2.baseline.mxu_utilization,
                    100 * v2.optimized.mxu_utilization,
                    100 * v3.baseline.mxu_utilization,
                    100 * v3.optimized.mxu_utilization);
    }
    std::printf("\nPaper: MXU utilization improves, most "
                "pronouncedly on TPUv2.\n");
    return 0;
}

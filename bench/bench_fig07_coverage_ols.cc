/**
 * @file
 * Figure 7: coverage of total execution time by the top three
 * phases found by OLS at the 70% similarity threshold. The paper
 * reports at least 95% coverage for every workload.
 */

#include <cstdio>

#include "analyzer/analyzer.hh"
#include "bench/common.hh"

using namespace tpupoint;

int
main()
{
    benchutil::banner("Figure 7: top-3 phase coverage, OLS @ 70%",
                      "Figure 7 + Observation 2");

    std::printf("%-16s %8s %10s %10s %10s %10s\n", "Workload",
                "phases", "phase1", "phase2", "phase3", "top3");
    const std::vector<WorkloadId> ids = allWorkloads();
    const auto runs =
        benchutil::profiledSweep(ids, TpuGeneration::V2);
    for (std::size_t i = 0; i < ids.size(); ++i) {
        const WorkloadId id = ids[i];
        const auto &run = runs[i];

        AnalyzerOptions options;
        options.algorithm = PhaseAlgorithm::OnlineLinearScan;
        options.ols_threshold = 0.70;
        const AnalysisResult analysis =
            TpuPointAnalyzer(options).analyze(run.records);

        SimTime total = 0;
        for (const auto &phase : analysis.phases)
            total += phase.total_duration;
        const auto sorted = phasesByDuration(analysis.phases);
        double shares[3] = {0, 0, 0};
        for (std::size_t s = 0; s < sorted.size() && s < 3; ++s) {
            shares[s] = total ? static_cast<double>(
                sorted[s]->total_duration) /
                static_cast<double>(total) : 0.0;
        }
        std::printf("%-16s %8zu %9.1f%% %9.1f%% %9.1f%% %9.1f%%\n",
                    workloadName(id), analysis.phases.size(),
                    100 * shares[0], 100 * shares[1],
                    100 * shares[2],
                    100 * analysis.top3_coverage);
    }
    std::printf("\nPaper: the top 3 phases cover at least 95%% of "
                "execution for every workload at 70%%.\n");
    return 0;
}

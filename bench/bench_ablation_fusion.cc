/**
 * @file
 * Ablation: the XLA fusion pass. Section VI-B notes the `fusion`
 * operator "combines compute-intensive operations from the XLA
 * compiler and is intended to help reduce memory operations". This
 * bench compiles every workload's training step with and without
 * the fusion pass and reports the per-step device time, HBM
 * traffic and op-count differences — the design choice behind the
 * most time-consuming operator in Table II.
 */

#include <cstdio>

#include "bench/common.hh"
#include "graph/fusion.hh"
#include "tpu/timing.hh"
#include "workloads/models.hh"

using namespace tpupoint;

namespace {

/** Analytic device time of one step (no queueing effects). */
SimTime
stepTime(const StepSchedule &schedule, const TpuDeviceSpec &spec)
{
    SimTime total = 0;
    for (const auto &op : schedule.ops)
        total += opDuration(spec, op);
    return total;
}

struct ModelEntry
{
    const char *name;
    ModelGraphs (*build)();
};

ModelGraphs buildBertEntry() { return buildBert(32, 128); }
ModelGraphs buildDcganEntry() { return buildDcgan(1024, 32, 3); }
ModelGraphs buildQanetEntry() { return buildQanet(32, 400, 30); }
ModelGraphs buildRetinaEntry() { return buildRetinanet(64, 640); }
ModelGraphs buildResnetEntry()
{
    return buildResnet(1024, 224, 1000);
}

} // namespace

int
main()
{
    benchutil::banner("Ablation: XLA-style fusion pass",
                      "Section VI-B (fusion is the top TPU "
                      "operator; it exists to cut memory traffic)");

    const TpuDeviceSpec spec = TpuDeviceSpec::v2();
    const ModelEntry models[] = {
        {"BERT", buildBertEntry},     {"DCGAN", buildDcganEntry},
        {"QANet", buildQanetEntry},   {"RetinaNet",
                                       buildRetinaEntry},
        {"ResNet-50", buildResnetEntry},
    };

    std::printf("%-12s %8s %8s %12s %12s %10s %10s\n", "Model",
                "ops", "ops+f", "step", "step+f", "HBM saved",
                "speedup");
    for (const auto &model : models) {
        const ModelGraphs graphs = model.build();
        FusionStats stats;
        const Graph fused = fuseGraph(graphs.train, &stats);
        const StepSchedule raw =
            extractSchedule(graphs.train);
        const StepSchedule optimized = extractSchedule(fused);
        const SimTime raw_time = stepTime(raw, spec);
        const SimTime fused_time = stepTime(optimized, spec);
        std::printf("%-12s %8zu %8zu %11.2fms %11.2fms %9.1f%% "
                    "%9.2fx\n",
                    model.name, raw.size(), optimized.size(),
                    toMillis(raw_time), toMillis(fused_time),
                    100.0 * static_cast<double>(
                        stats.bytes_elided) /
                        static_cast<double>(
                            graphs.train.totalBytes()),
                    static_cast<double>(raw_time) /
                        static_cast<double>(fused_time));
    }
    std::printf("\nFusion folds element-wise chains into their "
                "producers, eliding the HBM round trips between "
                "them\n(and their per-op launch overheads) — the "
                "reason `fusion` tops Table II.\n");
    return 0;
}

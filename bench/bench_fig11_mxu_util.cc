/**
 * @file
 * Figure 11: MXU utilization across workloads for TPUv2 and TPUv3.
 * Paper averages: 22.72% on TPUv2 dropping to 11.34% on TPUv3 —
 * doubling the matrix units roughly halves their utilization when
 * the feed rate stays fixed (Observation 5).
 */

#include <cstdio>

#include "bench/common.hh"

using namespace tpupoint;

int
main()
{
    benchutil::banner("Figure 11: MXU utilization, TPUv2 vs TPUv3",
                      "Figure 11 + Observation 5");

    std::printf("%-16s %10s %10s\n", "Workload", "TPUv2",
                "TPUv3");
    double sum_v2 = 0, sum_v3 = 0;
    int count = 0;
    const std::vector<WorkloadId> ids = allWorkloads();
    const auto v2_runs =
        benchutil::plainSweep(ids, TpuGeneration::V2);
    const auto v3_runs =
        benchutil::plainSweep(ids, TpuGeneration::V3);
    for (std::size_t i = 0; i < ids.size(); ++i) {
        const SessionResult &v2 = v2_runs[i];
        const SessionResult &v3 = v3_runs[i];
        std::printf("%-16s %9.2f%% %9.2f%%\n", workloadName(ids[i]),
                    100 * v2.mxu_utilization,
                    100 * v3.mxu_utilization);
        sum_v2 += v2.mxu_utilization;
        sum_v3 += v3.mxu_utilization;
        ++count;
    }
    std::printf("%-16s %9.2f%% %9.2f%%\n", "Average",
                100 * sum_v2 / count, 100 * sum_v3 / count);
    std::printf("\nPaper averages: 22.72%% (TPUv2), 11.34%% "
                "(TPUv3).\n");
    return 0;
}

/**
 * @file
 * Figure 4: k-means clustering results — the sum of squared
 * distances of step samples to their centroids for k = 1..15, per
 * workload. The paper finds the SSD stops improving significantly
 * at k = 4..6.
 */

#include <cstdio>

#include "analyzer/features.hh"
#include "analyzer/kmeans.hh"
#include "analyzer/step_table.hh"
#include "bench/common.hh"
#include "core/strings.hh"

using namespace tpupoint;

int
main(int argc, char **argv)
{
    benchutil::BenchReport report("fig04_kmeans_elbow", argc,
                                  argv);
    benchutil::banner("Figure 4: k-means SSD vs k (1..15)",
                      "Figure 4 + Section VI-A");

    std::printf("%-16s", "k =");
    for (int k = 1; k <= 15; ++k)
        std::printf(" %7d", k);
    std::printf("   elbow\n");

    for (const WorkloadId id : allWorkloads()) {
        const RuntimeWorkload w = benchutil::buildScaled(id);
        const auto run =
            benchutil::profiledRun(w, TpuGeneration::V2);
        const StepTable table =
            StepTable::fromRecords(run.records);
        const FeatureMatrix features = FeatureMatrix::build(table);
        const KMeansSweep sweep =
            kMeansSweep(features.rows(), 1, 15);

        // Normalize to k=1 so the curves are comparable.
        const double base = sweep.ssd_curve.front() > 0
            ? sweep.ssd_curve.front() : 1.0;
        std::printf("%-16s", workloadName(id));
        for (const double ssd : sweep.ssd_curve)
            std::printf(" %7.4f", ssd / base);
        std::printf("   k=%d\n", sweep.elbow_k);
        report.figure(std::string(workloadName(id)) + "_elbow_k",
                      sweep.elbow_k);
    }
    std::printf("\nPaper: the SSD elbow lands at k = 4..6 for the "
                "studied workloads.\n");
    return report.write() ? 0 : 1;
}

/**
 * @file
 * Figure 4: k-means clustering results — the sum of squared
 * distances of step samples to their centroids for k = 1..15, per
 * workload. The paper finds the SSD stops improving significantly
 * at k = 4..6.
 *
 * The per-k clusterings fan out on a shared ThreadPool (sized by
 * `--threads N`, TPUPOINT_THREADS, or hardware concurrency); the
 * sweep is bit-identical to the serial path for any thread count.
 * The bench also times the ResNet-scale elbow sweep serial vs
 * parallel and reports the speedup as JSON figures.
 */

#include <chrono>
#include <cstdio>

#include "analyzer/features.hh"
#include "analyzer/kmeans.hh"
#include "analyzer/step_table.hh"
#include "bench/common.hh"
#include "core/strings.hh"
#include "core/thread_pool.hh"

using namespace tpupoint;

namespace {

/** Exact (bitwise-value) equality of two sweep results. */
bool
sweepsIdentical(const KMeansSweep &a, const KMeansSweep &b)
{
    if (a.k_values != b.k_values || a.ssd_curve != b.ssd_curve ||
        a.elbow_k != b.elbow_k ||
        a.best.labels != b.best.labels ||
        a.best.iterations != b.best.iterations ||
        a.best.ssd != b.best.ssd ||
        a.best.centroids.size() != b.best.centroids.size())
        return false;
    for (std::size_t i = 0; i < a.best.centroids.size(); ++i)
        if (a.best.centroids[i] != b.best.centroids[i])
            return false;
    return true;
}

double
timedSweep(const std::vector<FeatureVector> &points,
           ThreadPool *pool, KMeansSweep *out)
{
    const auto begin = std::chrono::steady_clock::now();
    *out = kMeansSweep(points, 1, 15,
                       /*seed=*/0x6b6d65616e73ULL, pool);
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - begin)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    benchutil::BenchReport report("fig04_kmeans_elbow", argc,
                                  argv);
    benchutil::banner("Figure 4: k-means SSD vs k (1..15)",
                      "Figure 4 + Section VI-A");

    const unsigned workers =
        resolveThreadCount(benchutil::sweepThreads());
    ThreadPoolOptions pool_options;
    pool_options.workers = workers;
    ThreadPool pool(pool_options);

    std::printf("%-16s", "k =");
    for (int k = 1; k <= 15; ++k)
        std::printf(" %7d", k);
    std::printf("   elbow\n");

    // The ResNet-scale feature matrix is kept for the timing
    // section below — it is the largest step table in the sweep.
    std::vector<FeatureVector> resnet_points;
    for (const WorkloadId id : allWorkloads()) {
        const RuntimeWorkload w = benchutil::buildScaled(id);
        const auto run =
            benchutil::profiledRun(w, TpuGeneration::V2);
        const StepTable table =
            StepTable::fromRecords(run.records);
        const FeatureMatrix features = FeatureMatrix::build(table);
        const KMeansSweep sweep = kMeansSweep(
            features.rows(), 1, 15,
            /*seed=*/0x6b6d65616e73ULL, &pool);
        if (id == WorkloadId::ResnetImagenet)
            resnet_points = features.rows();

        // Normalize to k=1 so the curves are comparable.
        const double base = sweep.ssd_curve.front() > 0
            ? sweep.ssd_curve.front() : 1.0;
        std::printf("%-16s", workloadName(id));
        for (const double ssd : sweep.ssd_curve)
            std::printf(" %7.4f", ssd / base);
        std::printf("   k=%d\n", sweep.elbow_k);
        report.figure(std::string(workloadName(id)) + "_elbow_k",
                      sweep.elbow_k);
    }
    std::printf("\nPaper: the SSD elbow lands at k = 4..6 for the "
                "studied workloads.\n");

    // Serial vs parallel elbow sweep on the ResNet-scale trace:
    // same seed, same slots, so the results must match bit for
    // bit whatever the thread count.
    KMeansSweep serial_sweep, parallel_sweep;
    const double serial_ms =
        timedSweep(resnet_points, nullptr, &serial_sweep);
    const double parallel_ms =
        timedSweep(resnet_points, &pool, &parallel_sweep);
    const bool identical =
        sweepsIdentical(serial_sweep, parallel_sweep);
    const double speedup =
        parallel_ms > 0 ? serial_ms / parallel_ms : 0.0;
    std::printf("\nresnet elbow sweep (%zu steps): serial "
                "%.1fms, %u threads %.1fms (%.2fx), results "
                "%s\n",
                resnet_points.size(), serial_ms, workers,
                parallel_ms, speedup,
                identical ? "bit-identical" : "DIFFER");
    report.figure("elbow_serial_ms", serial_ms);
    report.figure("elbow_parallel_ms", parallel_ms);
    report.figure("elbow_speedup", speedup);
    report.figure("elbow_identical", identical ? 1 : 0);
    return report.write() && identical ? 0 : 1;
}

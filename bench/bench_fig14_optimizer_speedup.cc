/**
 * @file
 * Figure 14: TPUPoint-Optimizer speedups on TPUv2 for the
 * workloads that originally ran twenty minutes or longer (QANet
 * and RetinaNet in the paper's figure; ResNet also qualifies and
 * is included here). Runs use the library defaults as the
 * "default parameters"; the paper reports ~1.12x average speedup.
 */

#include <cmath>
#include <cstdio>

#include "bench/common.hh"
#include "optimizer/optimizer.hh"

using namespace tpupoint;

int
main(int argc, char **argv)
{
    benchutil::BenchReport report("fig14_optimizer_speedup", argc,
                                  argv);
    benchutil::banner("Figure 14: TPUPoint-Optimizer speedups "
                      "(TPUv2, default parameters)",
                      "Figure 14 + Section VII-C");

    // The paper's figure shows the two workloads that ran twenty
    // minutes or more under its methodology; ResNet is reported
    // separately below.
    const WorkloadId long_running[] = {
        WorkloadId::QanetSquad, WorkloadId::RetinanetCoco};

    std::printf("%-16s %12s %12s %9s %s\n", "Workload",
                "baseline", "optimized", "speedup",
                "tuned configuration");
    double product = 1.0;
    int count = 0;
    for (const WorkloadId id : long_running) {
        const RuntimeWorkload w = benchutil::buildScaled(id);
        SessionConfig config;
        config.device = TpuDeviceSpec::v2();
        const OptimizationOutcome outcome =
            runOptimizationExperiment(w, config);
        // Runs are step-scaled; charge the optimizer's fixed
        // post-processing at the same scale so the >=20-minute
        // semantics of the paper's figure are preserved.
        const SimTime post = outcome.optimized_wall_with_post -
            outcome.optimized.wall_time;
        const double scale = benchutil::workloadScale(id);
        const SimTime wall = outcome.optimized.wall_time +
            static_cast<SimTime>(static_cast<double>(post) *
                                 scale);
        const double speedup =
            static_cast<double>(outcome.baseline.wall_time) /
            static_cast<double>(wall);
        std::printf("%-16s %11.1fs %11.1fs %8.2fx %s\n",
                    workloadName(id),
                    toSeconds(outcome.baseline.wall_time),
                    toSeconds(wall), speedup,
                    outcome.tuned_config.toString().c_str());
        product *= speedup;
        ++count;
    }
    const double geomean =
        count ? std::pow(product, 1.0 / count) : 1.0;
    std::printf("%-16s %37.2fx\n", "Geomean", geomean);

    // ResNet-ImageNet also exceeds twenty minutes at full scale;
    // the paper's figure omits it, so it is shown separately.
    {
        const RuntimeWorkload w =
            benchutil::buildScaled(WorkloadId::ResnetImagenet);
        SessionConfig config;
        config.device = TpuDeviceSpec::v2();
        const OptimizationOutcome outcome =
            runOptimizationExperiment(w, config);
        const SimTime post = outcome.optimized_wall_with_post -
            outcome.optimized.wall_time;
        const double scale =
            benchutil::workloadScale(WorkloadId::ResnetImagenet);
        const SimTime wall = outcome.optimized.wall_time +
            static_cast<SimTime>(static_cast<double>(post) *
                                 scale);
        std::printf("%-16s %11.1fs %11.1fs %8.2fx %s  "
                    "(not in the paper's figure)\n",
                    "ResNet-ImageNet",
                    toSeconds(outcome.baseline.wall_time),
                    toSeconds(wall),
                    static_cast<double>(
                        outcome.baseline.wall_time) /
                        static_cast<double>(wall),
                    outcome.tuned_config.toString().c_str());
    }
    std::printf("\nPaper: ~1.12x average speedup over default "
                "parameters on TPUv2 for >=20-minute workloads.\n");
    report.figure("geomean_speedup", geomean);
    return report.write() ? 0 : 1;
}

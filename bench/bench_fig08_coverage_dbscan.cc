/**
 * @file
 * Figure 8: coverage of total execution time by the top three
 * phases from DBSCAN with minimum samples 30 (noise treated as a
 * cluster of its own, as the paper does).
 */

#include <cstdio>

#include "analyzer/analyzer.hh"
#include "bench/common.hh"

using namespace tpupoint;

int
main()
{
    benchutil::banner("Figure 8: top-3 phase coverage, DBSCAN "
                      "(min samples 30)",
                      "Figure 8 + Observation 2");

    std::printf("%-16s %8s %8s %10s\n", "Workload", "clusters",
                "noise%", "top3");
    const std::vector<WorkloadId> ids = allWorkloads();
    const auto runs =
        benchutil::profiledSweep(ids, TpuGeneration::V2);
    for (std::size_t i = 0; i < ids.size(); ++i) {
        const WorkloadId id = ids[i];
        const auto &run = runs[i];

        AnalyzerOptions options;
        options.algorithm = PhaseAlgorithm::Dbscan;
        options.dbscan_fixed_min_samples = 30;
        const AnalysisResult analysis =
            TpuPointAnalyzer(options).analyze(run.records);

        std::printf("%-16s %8d %7.1f%% %9.1f%%\n",
                    workloadName(id),
                    analysis.dbscan.best.clusters,
                    100 * analysis.dbscan.best.noise_ratio,
                    100 * analysis.top3_coverage);
    }
    std::printf("\nPaper: the unlabeled (noise) samples form a "
                "cluster too, and the top 3 phases dominate "
                "execution time.\n");
    return 0;
}

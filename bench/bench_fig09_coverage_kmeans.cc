/**
 * @file
 * Figure 9: coverage of total execution time by the top three
 * phases from k-means with k = 5. The paper notes that even with
 * more than 3 clusters, the top 3 still dominate.
 */

#include <cstdio>

#include "analyzer/analyzer.hh"
#include "bench/common.hh"

using namespace tpupoint;

int
main()
{
    benchutil::banner("Figure 9: top-3 phase coverage, k-means "
                      "(k = 5)",
                      "Figure 9 + Observation 2");

    std::printf("%-16s %8s %10s\n", "Workload", "clusters",
                "top3");
    const std::vector<WorkloadId> ids = allWorkloads();
    const auto runs =
        benchutil::profiledSweep(ids, TpuGeneration::V2);
    for (std::size_t i = 0; i < ids.size(); ++i) {
        const WorkloadId id = ids[i];
        const auto &run = runs[i];

        AnalyzerOptions options;
        options.algorithm = PhaseAlgorithm::KMeans;
        options.kmeans_fixed_k = 5;
        const AnalysisResult analysis =
            TpuPointAnalyzer(options).analyze(run.records);

        std::printf("%-16s %8zu %9.1f%%\n", workloadName(id),
                    analysis.phases.size(),
                    100 * analysis.top3_coverage);
    }
    std::printf("\nPaper: with k = 5 the top 3 clusters still "
                "dominate total execution time.\n");
    return 0;
}

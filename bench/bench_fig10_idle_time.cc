/**
 * @file
 * Figure 10: TPU idle time across workloads for TPUv2 and TPUv3.
 * Paper averages: 38.90% idle on TPUv2, 43.53% on TPUv3
 * (Observations 3 and 5).
 */

#include <cstdio>

#include "bench/common.hh"

using namespace tpupoint;

int
main(int argc, char **argv)
{
    benchutil::BenchReport report("fig10_idle_time", argc, argv);
    benchutil::banner("Figure 10: TPU idle time, TPUv2 vs TPUv3",
                      "Figure 10 + Observations 3 and 5");

    std::printf("%-16s %10s %10s\n", "Workload", "TPUv2",
                "TPUv3");
    double sum_v2 = 0, sum_v3 = 0;
    int count = 0;
    const std::vector<WorkloadId> ids = allWorkloads();
    const auto v2_runs =
        benchutil::plainSweep(ids, TpuGeneration::V2);
    const auto v3_runs =
        benchutil::plainSweep(ids, TpuGeneration::V3);
    for (std::size_t i = 0; i < ids.size(); ++i) {
        const SessionResult &v2 = v2_runs[i];
        const SessionResult &v3 = v3_runs[i];
        std::printf("%-16s %9.2f%% %9.2f%%\n", workloadName(ids[i]),
                    100 * v2.tpu_idle_fraction,
                    100 * v3.tpu_idle_fraction);
        sum_v2 += v2.tpu_idle_fraction;
        sum_v3 += v3.tpu_idle_fraction;
        ++count;
    }
    std::printf("%-16s %9.2f%% %9.2f%%\n", "Average",
                100 * sum_v2 / count, 100 * sum_v3 / count);
    std::printf("\nPaper averages: 38.90%% (TPUv2), 43.53%% "
                "(TPUv3) — idle grows on the faster part.\n");
    report.figure("avg_idle_v2_pct", 100 * sum_v2 / count);
    report.figure("avg_idle_v3_pct", 100 * sum_v3 / count);
    return report.write() ? 0 : 1;
}

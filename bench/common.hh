/**
 * @file
 * Shared plumbing for the per-figure/per-table benchmark binaries:
 * scaled workload construction, profiled platform runs and tabular
 * output helpers.
 *
 * Step-count scaling: the paper's full training runs span hours of
 * TPU time (ResNet: 112,590 steps). Every bench replays each
 * workload with all cadences (train/eval/checkpoint) scaled
 * together, which preserves phase structure, operator mix and
 * utilization while keeping each binary's runtime in seconds. The
 * scale used per workload is printed with every table.
 */

#ifndef TPUPOINT_BENCH_COMMON_HH
#define TPUPOINT_BENCH_COMMON_HH

#include <chrono>
#include <string>
#include <utility>
#include <vector>

#include "host/pipeline.hh"
#include "proto/record.hh"
#include "runtime/session.hh"
#include "tpu/spec.hh"
#include "workloads/catalog.hh"

namespace tpupoint {
namespace benchutil {

/** Simulation scale for one workload (fraction of real steps). */
double workloadScale(WorkloadId id);

/** Build the workload at its bench scale. */
RuntimeWorkload buildScaled(WorkloadId id);

/** Everything one profiled platform run produces. */
struct RunOutput
{
    SessionResult result;
    std::vector<ProfileRecord> records;
    std::vector<CheckpointInfo> checkpoints;
};

/** Run @p workload once with TPUPoint-Profiler attached. */
RunOutput profiledRun(const RuntimeWorkload &workload,
                      TpuGeneration generation,
                      const PipelineConfig &pipeline =
                          PipelineConfig{});

/** Run without the profiler (platform metrics only). */
SessionResult plainRun(const RuntimeWorkload &workload,
                       TpuGeneration generation,
                       const PipelineConfig &pipeline =
                           PipelineConfig{});

/**
 * Worker threads for bench sweeps: the `--threads N` flag (parsed
 * by BenchReport) if given, else TPUPOINT_SWEEP_THREADS, else 0 —
 * which lets SweepRunner resolve through the process-wide knob
 * (TPUPOINT_THREADS, then hardware concurrency). The thread count
 * never changes the numbers a bench prints — sweeps are
 * bit-deterministic — only how long the bench takes.
 */
unsigned sweepThreads();

/** One profiled run per workload, in parallel, in input order. */
std::vector<RunOutput> profiledSweep(
    const std::vector<WorkloadId> &ids, TpuGeneration generation,
    const PipelineConfig &pipeline = PipelineConfig{});

/** One plain run per workload, in parallel, in input order. */
std::vector<SessionResult> plainSweep(
    const std::vector<WorkloadId> &ids, TpuGeneration generation,
    const PipelineConfig &pipeline = PipelineConfig{});

/** Print the standard bench banner. */
void banner(const std::string &title,
            const std::string &paper_reference);

/** Print one row of right-aligned columns. */
void row(const std::vector<std::string> &cells,
         const std::vector<int> &widths);

/**
 * Machine-readable bench results. Every bench binary accepts
 * `--json PATH`; when given, the bench writes one JSON object —
 * bench name, wall-clock milliseconds, and the key figures it
 * printed — so CI and regression scripts can diff bench output
 * without scraping tables.
 *
 * @code
 *   BenchReport report("fig10_idle_time", argc, argv);
 *   ...
 *   report.figure("v2_idle_pct", 38.2);
 *   return report.write() ? 0 : 1;
 * @endcode
 */
class BenchReport
{
  public:
    /** Parse bench argv (`--json PATH` and `--threads N`; anything
     * else exits 2) and start the wall clock. `--threads` feeds
     * sweepThreads() for the whole process. */
    BenchReport(const std::string &bench_name, int argc,
                char **argv);

    /** Record one named figure. */
    void figure(const std::string &name, double value);

    /** True when `--json` was requested. */
    bool enabled() const { return !path.empty(); }

    /** The `--threads N` value (0 = not given; resolve via
     * sweepThreads() / resolveThreadCount()). */
    unsigned threads() const { return thread_count; }

    /**
     * Write the report when `--json PATH` was given (no-op and
     * true otherwise). Returns false after printing an error when
     * the file cannot be written.
     */
    bool write() const;

  private:
    std::string name;
    std::string path;
    unsigned thread_count = 0;
    std::chrono::steady_clock::time_point started;
    std::vector<std::pair<std::string, double>> figures;
};

} // namespace benchutil
} // namespace tpupoint

#endif // TPUPOINT_BENCH_COMMON_HH

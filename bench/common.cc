#include "bench/common.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>

#include "core/json.hh"
#include "core/logging.hh"
#include "core/strings.hh"
#include "obs/progress.hh"
#include "profiler/profiler.hh"
#include "runtime/sweep.hh"

namespace tpupoint {
namespace benchutil {

double
workloadScale(WorkloadId id)
{
    switch (id) {
      // The short-running workloads (the paper's sub-20-minute
      // group) replay at or near full scale.
      case WorkloadId::BertMrpc: return 1.0;   // 344 steps
      case WorkloadId::BertCola: return 1.0;   // 801 steps
      case WorkloadId::BertSquad: return 0.3;  // ~2463 steps
      case WorkloadId::BertMnli: return 0.05;  // ~1840 steps
      case WorkloadId::DcganCifar10: return 0.2;
      case WorkloadId::DcganMnist: return 0.2;
      // The hour-scale workloads replay time-scaled.
      case WorkloadId::QanetSquad: return 0.01;
      case WorkloadId::RetinanetCoco: return 0.03;
      case WorkloadId::ResnetImagenet: return 0.008;
      case WorkloadId::QanetSquadHalf: return 0.01;
      case WorkloadId::RetinanetCocoHalf: return 0.03;
      case WorkloadId::ResnetCifar10: return 0.008;
    }
    return 0.01;
}

RuntimeWorkload
buildScaled(WorkloadId id)
{
    WorkloadOptions options;
    options.step_scale = workloadScale(id);
    return makeWorkload(id, options);
}

RunOutput
profiledRun(const RuntimeWorkload &workload,
            TpuGeneration generation,
            const PipelineConfig &pipeline)
{
    Simulator sim;
    SessionConfig config;
    config.device = TpuDeviceSpec::forGeneration(generation);
    config.pipeline = pipeline;
    TrainingSession session(sim, config, workload);
    TpuPointProfiler profiler(sim, session);
    profiler.start(/*analyzer=*/true);
    session.start(nullptr);
    sim.run();
    profiler.stop();

    RunOutput out;
    out.result = session.result();
    out.records = profiler.records();
    out.checkpoints = session.checkpoints().checkpoints();
    return out;
}

SessionResult
plainRun(const RuntimeWorkload &workload, TpuGeneration generation,
         const PipelineConfig &pipeline)
{
    Simulator sim;
    SessionConfig config;
    config.device = TpuDeviceSpec::forGeneration(generation);
    config.pipeline = pipeline;
    TrainingSession session(sim, config, workload);
    session.start(nullptr);
    sim.run();
    return session.result();
}

namespace {

/** Set by BenchReport when the bench was given `--threads N`. */
unsigned requested_sweep_threads = 0;

} // namespace

unsigned
sweepThreads()
{
    if (requested_sweep_threads > 0)
        return requested_sweep_threads;
    if (const char *env = std::getenv("TPUPOINT_SWEEP_THREADS")) {
        std::uint64_t parsed = 0;
        if (parseUint64(env, &parsed) && parsed > 0 &&
            parsed <= std::numeric_limits<unsigned>::max())
            return static_cast<unsigned>(parsed);
        warn("ignoring TPUPOINT_SWEEP_THREADS='", env,
             "': want a positive integer");
    }
    return 0; // 0 = SweepRunner resolves TPUPOINT_THREADS / hw.
}

namespace {

std::vector<SweepOutcome>
sweep(const std::vector<WorkloadId> &ids, TpuGeneration generation,
      const PipelineConfig &pipeline, bool profile)
{
    std::vector<SweepJob> jobs;
    jobs.reserve(ids.size());
    for (const WorkloadId id : ids) {
        SweepJob job;
        job.workload = buildScaled(id);
        job.config.device =
            TpuDeviceSpec::forGeneration(generation);
        job.config.pipeline = pipeline;
        job.profile = profile;
        jobs.push_back(std::move(job));
    }
    SweepOptions options;
    options.threads = sweepThreads();
    // Progress goes to stderr — a repainted status line on a
    // terminal, JSONL on a pipe — leaving the bench's stdout
    // tables untouched.
    obs::ProgressReporter reporter(
        std::cerr, obs::ProgressReporter::autoMode(2));
    options.progress = std::ref(reporter);
    auto outcomes = SweepRunner(options).run(jobs);
    reporter.finish();
    return outcomes;
}

} // namespace

std::vector<RunOutput>
profiledSweep(const std::vector<WorkloadId> &ids,
              TpuGeneration generation,
              const PipelineConfig &pipeline)
{
    auto outcomes = sweep(ids, generation, pipeline, true);
    std::vector<RunOutput> outputs(outcomes.size());
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        outputs[i].result = outcomes[i].result;
        outputs[i].records = std::move(outcomes[i].records);
        outputs[i].checkpoints =
            std::move(outcomes[i].checkpoints);
    }
    return outputs;
}

std::vector<SessionResult>
plainSweep(const std::vector<WorkloadId> &ids,
           TpuGeneration generation,
           const PipelineConfig &pipeline)
{
    auto outcomes = sweep(ids, generation, pipeline, false);
    std::vector<SessionResult> results(outcomes.size());
    for (std::size_t i = 0; i < outcomes.size(); ++i)
        results[i] = outcomes[i].result;
    return results;
}

void
banner(const std::string &title, const std::string &paper_reference)
{
    std::printf("==============================================="
                "=============================\n");
    std::printf("%s\n", title.c_str());
    std::printf("Reproduces: %s\n", paper_reference.c_str());
    std::printf("==============================================="
                "=============================\n");
}

BenchReport::BenchReport(const std::string &bench_name, int argc,
                         char **argv)
    : name(bench_name), started(std::chrono::steady_clock::now())
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc) {
            path = argv[++i];
        } else if (arg == "--threads" && i + 1 < argc) {
            std::uint64_t parsed = 0;
            if (!parseUint64(argv[++i], &parsed) ||
                parsed >
                    std::numeric_limits<unsigned>::max()) {
                std::fprintf(stderr,
                             "--threads wants an integer "
                             ">= 0, got '%s'\n",
                             argv[i]);
                std::exit(2);
            }
            thread_count = static_cast<unsigned>(parsed);
            requested_sweep_threads = thread_count;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--json PATH] "
                         "[--threads N]\n",
                         name.c_str());
            std::exit(2);
        }
    }
}

void
BenchReport::figure(const std::string &name_in, double value)
{
    figures.emplace_back(name_in, value);
}

bool
BenchReport::write() const
{
    if (path.empty())
        return true;
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - started)
            .count();
    std::ofstream out(path, std::ios::binary);
    if (out) {
        JsonWriter w(out);
        w.beginObject();
        w.field("bench", name);
        w.field("wall_ms", wall_ms);
        w.key("figures");
        w.beginObject();
        for (const auto &[key, value] : figures)
            w.field(key, value);
        w.endObject();
        w.endObject();
        out << '\n';
    }
    if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     path.c_str());
        return false;
    }
    std::printf("wrote %s\n", path.c_str());
    return true;
}

void
row(const std::vector<std::string> &cells,
    const std::vector<int> &widths)
{
    std::string line;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const int width =
            i < widths.size() ? widths[i] : 12;
        line += padLeft(cells[i],
                        static_cast<std::size_t>(width));
        line += "  ";
    }
    std::printf("%s\n", line.c_str());
}

} // namespace benchutil
} // namespace tpupoint

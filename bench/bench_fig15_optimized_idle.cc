/**
 * @file
 * Figure 15: TPU idle time of the naive implementations with and
 * without TPUPoint-Optimizer, on TPUv2 and TPUv3. The paper's naive
 * programs (no pipeline tuning) leave the TPU idle; the optimizer
 * recovers most of it.
 */

#include <cstdio>

#include "bench/common.hh"
#include "optimizer/optimizer.hh"

using namespace tpupoint;

int
main()
{
    benchutil::banner("Figure 15: idle time of naive "
                      "implementations, with/without "
                      "TPUPoint-Optimizer",
                      "Figure 15 + Section VII-C");

    const WorkloadId ids[] = {
        WorkloadId::BertSquad, WorkloadId::DcganCifar10,
        WorkloadId::QanetSquad, WorkloadId::RetinanetCoco};

    std::printf("%-16s %12s %12s %12s %12s\n", "Workload",
                "v2 naive", "v2 +opt", "v3 naive", "v3 +opt");
    for (const WorkloadId id : ids) {
        const RuntimeWorkload w = benchutil::buildScaled(id);
        SessionConfig naive;
        naive.pipeline = PipelineConfig::naive();

        naive.device = TpuDeviceSpec::v2();
        const OptimizationOutcome v2 =
            runOptimizationExperiment(w, naive);
        naive.device = TpuDeviceSpec::v3();
        const OptimizationOutcome v3 =
            runOptimizationExperiment(w, naive);

        std::printf("%-16s %11.2f%% %11.2f%% %11.2f%% %11.2f%%\n",
                    workloadName(id),
                    100 * v2.baseline.tpu_idle_fraction,
                    100 * v2.optimized.tpu_idle_fraction,
                    100 * v3.baseline.tpu_idle_fraction,
                    100 * v3.optimized.tpu_idle_fraction);
    }
    std::printf("\nPaper: the optimizer reduces naive-"
                "implementation idle time on both generations.\n");
    return 0;
}

/**
 * @file
 * Ablation: analysis-algorithm cost. Section VI-B notes that
 * k-means and DBSCAN "reach memory limitations for larger
 * workloads such as RetinaNet and ResNet", while OLS competes with
 * SimPoint-style clustering at a fraction of the cost. This
 * google-benchmark binary measures wall time of the three
 * algorithms against growing step counts and reports the resident
 * working set each needs (every step's feature vector for
 * k-means/DBSCAN versus three step records for OLS).
 */

#include <benchmark/benchmark.h>

#include "analyzer/dbscan.hh"
#include "analyzer/features.hh"
#include "analyzer/kmeans.hh"
#include "analyzer/ols.hh"
#include "analyzer/step_table.hh"
#include "bench/common.hh"

using namespace tpupoint;

namespace {

/** Profile DCGAN once and reuse the records for every benchmark. */
const std::vector<ProfileRecord> &
cachedRecords()
{
    static const std::vector<ProfileRecord> records = [] {
        const RuntimeWorkload w =
            benchutil::buildScaled(WorkloadId::DcganCifar10);
        return benchutil::profiledRun(w, TpuGeneration::V2)
            .records;
    }();
    return records;
}

/** A step table truncated to the first @p steps steps. */
StepTable
truncatedTable(std::size_t steps)
{
    const StepTable full = StepTable::fromRecords(cachedRecords());
    // Rebuild a table with only the first `steps` rows by packing
    // them into one synthetic record.
    ProfileRecord record;
    for (std::size_t i = 0; i < full.size() && i < steps; ++i)
        record.steps.push_back(full.at(i));
    return StepTable::fromRecords({record});
}

void
BM_KMeansSweep(benchmark::State &state)
{
    const StepTable table =
        truncatedTable(static_cast<std::size_t>(state.range(0)));
    const FeatureMatrix features = FeatureMatrix::build(table);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            kMeansSweep(features.rows(), 1, 15));
    }
    state.counters["working_set_bytes"] = static_cast<double>(
        features.rows().size() * features.dimensions() *
        sizeof(double));
}

void
BM_DbscanSweep(benchmark::State &state)
{
    const StepTable table =
        truncatedTable(static_cast<std::size_t>(state.range(0)));
    const FeatureMatrix features = FeatureMatrix::build(table);
    for (auto _ : state) {
        benchmark::DoNotOptimize(dbscanSweep(features.rows()));
    }
    state.counters["working_set_bytes"] = static_cast<double>(
        features.rows().size() * features.dimensions() *
        sizeof(double));
}

void
BM_OnlineLinearScan(benchmark::State &state)
{
    const StepTable table =
        truncatedTable(static_cast<std::size_t>(state.range(0)));
    std::size_t peak = 0;
    for (auto _ : state) {
        OnlineLinearScan ols;
        for (const auto &step : table.steps())
            ols.addStep(step);
        ols.finish();
        peak = ols.peakStepsHeld();
        benchmark::DoNotOptimize(ols.phases().size());
    }
    // OLS holds three step records regardless of run length.
    state.counters["working_set_steps"] =
        static_cast<double>(peak);
}

} // namespace

BENCHMARK(BM_KMeansSweep)->Arg(64)->Arg(128)->Arg(256)->Arg(512);
BENCHMARK(BM_DbscanSweep)->Arg(64)->Arg(128)->Arg(256)->Arg(512);
BENCHMARK(BM_OnlineLinearScan)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Arg(512);

BENCHMARK_MAIN();

/**
 * @file
 * Figure 5: DBSCAN clustering results — the ratio of noisy samples
 * to total samples as the minimum required samples sweeps 5..180 in
 * steps of 25. The paper finds 30..80 minimum samples optimal,
 * producing 3..13 clusters.
 */

#include <cstdio>

#include "analyzer/dbscan.hh"
#include "analyzer/features.hh"
#include "analyzer/step_table.hh"
#include "bench/common.hh"

using namespace tpupoint;

int
main()
{
    benchutil::banner("Figure 5: DBSCAN noise ratio vs minimum "
                      "samples (5..180 step 25)",
                      "Figure 5 + Section VI-A");

    bool header_printed = false;
    for (const WorkloadId id : allWorkloads()) {
        const RuntimeWorkload w = benchutil::buildScaled(id);
        const auto run =
            benchutil::profiledRun(w, TpuGeneration::V2);
        const StepTable table =
            StepTable::fromRecords(run.records);
        const FeatureMatrix features = FeatureMatrix::build(table);
        const DbscanSweep sweep = dbscanSweep(features.rows());

        if (!header_printed) {
            std::printf("%-16s", "min_samples =");
            for (const std::size_t m : sweep.min_samples_values)
                std::printf(" %6zu", m);
            std::printf("   elbow  clusters\n");
            header_printed = true;
        }
        std::printf("%-16s", workloadName(id));
        for (const double noise : sweep.noise_curve)
            std::printf(" %6.3f", noise);
        std::printf("   %5zu  %8d\n", sweep.elbow_min_samples,
                    sweep.best.clusters);
    }
    std::printf("\nPaper: 30..80 minimum samples are optimal and "
                "produce 3..13 clusters.\n");
    return 0;
}

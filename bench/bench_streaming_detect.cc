/**
 * @file
 * Streaming phase detection: the incremental analysis path serve
 * answers live `--query phases` from, measured against the batch
 * finalize it replaced. For each Table I workload the bench feeds
 * the profiled record stream through a streaming AnalysisSession,
 * taking a phase snapshot after every record — exactly serve's
 * per-poll pattern — and reports ingest+snapshot steps/sec, whether
 * the streaming OLS boundaries match the batch scan exactly (they
 * must), and how far the reservoir-sampled mini-batch k-means
 * coverage estimate lands from the batch answer.
 *
 * The bounded-cost claim is measured, not asserted: the same
 * pipeline runs over a 1x and a 10x replica of one workload's
 * stream, and the per-step cost ratio is reported. A streaming
 * layer that secretly re-scanned history (the old capped
 * whole-trace re-finalize) would show the ratio growing with trace
 * length; the incremental detectors hold it near 1.
 */

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "analyzer/analyzer.hh"
#include "bench/common.hh"

using namespace tpupoint;

namespace {

/** "BERT-MRPC" -> "bert_mrpc" for JSON figure keys. */
std::string
slug(const char *name)
{
    std::string out;
    for (const char *p = name; *p != '\0'; ++p) {
        const unsigned char c = static_cast<unsigned char>(*p);
        out.push_back(std::isalnum(c) != 0
                          ? static_cast<char>(std::tolower(c))
                          : '_');
    }
    return out;
}

/** @p copies back-to-back replicas, step ids and times shifted. */
std::vector<ProfileRecord>
replicateStream(const std::vector<ProfileRecord> &records,
                unsigned copies)
{
    StepId step_stride = 0;
    SimTime time_stride = 0;
    for (const ProfileRecord &record : records) {
        time_stride = std::max(time_stride, record.window_end);
        for (const StepStats &step : record.steps)
            step_stride = std::max(step_stride, step.step);
    }
    ++step_stride;
    time_stride += kMsec;

    std::vector<ProfileRecord> out;
    out.reserve(records.size() * copies);
    for (unsigned copy = 0; copy < copies; ++copy) {
        const StepId step_base = step_stride *
            static_cast<StepId>(copy);
        const SimTime time_base = time_stride *
            static_cast<SimTime>(copy);
        for (const ProfileRecord &record : records) {
            ProfileRecord shifted = record;
            shifted.sequence = out.size();
            shifted.window_begin += time_base;
            shifted.window_end += time_base;
            for (StepStats &step : shifted.steps) {
                step.step += step_base;
                step.begin += time_base;
                step.end += time_base;
            }
            out.push_back(std::move(shifted));
        }
    }
    return out;
}

struct StreamCost
{
    double seconds = 0.0;        ///< Best-of-N ingest+snapshot.
    std::uint64_t steps = 0;     ///< Rows aggregated.
    AnalysisSession session{AnalyzerOptions{}}; ///< Last run's.
};

/**
 * Serve's per-poll pattern: ingest one record, take a phase
 * snapshot. Best-of-@p iterations wall time; the session of the
 * final iteration survives for finalize-agreement checks.
 */
StreamCost
streamingPass(const std::vector<ProfileRecord> &records,
              const AnalyzerOptions &opts, int iterations)
{
    StreamCost cost;
    cost.seconds = 1e300;
    for (int iter = 0; iter < iterations; ++iter) {
        AnalysisSession session(opts);
        const auto start = std::chrono::steady_clock::now();
        for (const ProfileRecord &record : records) {
            session.ingest(record);
            (void)session.partialResult();
        }
        cost.seconds = std::min(
            cost.seconds,
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count());
        cost.steps = session.partialResult().steps_aggregated;
        cost.session = std::move(session);
    }
    return cost;
}

/** The streaming OLS answer equals the batch scan, span for span. */
bool
olsBoundariesExact(const StreamingSnapshot &snapshot,
                   const AnalysisResult &batch)
{
    if (snapshot.phases.size() != batch.ols_groups.size())
        return false;
    for (std::size_t i = 0; i < snapshot.phases.size(); ++i) {
        if (snapshot.phases[i].steps !=
                batch.ols_groups[i].steps ||
            snapshot.phases[i].duration !=
                batch.ols_groups[i].duration)
            return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    benchutil::BenchReport report("streaming_detect", argc, argv);
    benchutil::banner(
        "Streaming phase detection: per-poll incremental updates "
        "vs the batch finalize",
        "serve live phases (incremental OLS + reservoir k-means)");

    const std::vector<WorkloadId> ids = {
        WorkloadId::BertMrpc,      WorkloadId::DcganMnist,
        WorkloadId::QanetSquad,    WorkloadId::RetinanetCoco,
        WorkloadId::ResnetImagenet};
    const auto runs =
        benchutil::profiledSweep(ids, TpuGeneration::V3);

    constexpr int kIterations = 3;
    AnalyzerOptions ols_opts;
    ols_opts.algorithm = PhaseAlgorithm::OnlineLinearScan;
    ols_opts.streaming = true;
    AnalyzerOptions kmeans_opts;
    kmeans_opts.algorithm = PhaseAlgorithm::KMeans;
    kmeans_opts.streaming = true;

    std::printf("%-18s %8s %14s %10s %10s %10s %8s\n", "Workload",
                "steps", "steps/sec", "batch_cov", "stream_cov",
                "delta", "ols");
    bool all_exact = true;
    for (std::size_t i = 0; i < ids.size(); ++i) {
        const auto &records = runs[i].records;
        const std::string key = slug(workloadName(ids[i]));

        // The batch answer the streaming path is held against.
        AnalyzerOptions batch_opts;
        batch_opts.algorithm = PhaseAlgorithm::OnlineLinearScan;
        batch_opts.extra_algorithms = {PhaseAlgorithm::KMeans};
        const AnalysisResult batch =
            TpuPointAnalyzer(batch_opts).analyze(
                records, runs[i].checkpoints);
        const double batch_coverage =
            batch.detections[1].top3_coverage;

        // Serve's hot loop: incremental OLS, snapshot per record.
        StreamCost cost =
            streamingPass(records, ols_opts, kIterations);
        const double steps_per_sec =
            static_cast<double>(cost.steps) / cost.seconds;
        cost.session.finalize(runs[i].checkpoints);
        const PartialResult fin = cost.session.partialResult();
        const bool exact =
            !fin.snapshots.empty() &&
            olsBoundariesExact(fin.snapshots[0], batch);
        all_exact = all_exact && exact;

        // The sampled estimator's accuracy: mini-batch k-means
        // coverage over the reservoir vs the batch sweep.
        AnalysisSession kmeans_session(kmeans_opts);
        for (const ProfileRecord &record : records)
            kmeans_session.ingest(record);
        const PartialResult sampled =
            kmeans_session.partialResult();
        const double stream_coverage =
            sampled.snapshots.empty()
                ? 0.0
                : sampled.snapshots[0].top3_coverage;
        const double delta =
            std::abs(stream_coverage - batch_coverage);

        std::printf("%-18s %8llu %14.0f %10.3f %10.3f %10.3f "
                    "%8s\n",
                    workloadName(ids[i]),
                    static_cast<unsigned long long>(cost.steps),
                    steps_per_sec, batch_coverage,
                    stream_coverage, delta,
                    exact ? "exact" : "DIVERGED");
        report.figure(key + "_steps_per_sec", steps_per_sec);
        report.figure(key + "_ols_exact", exact ? 1.0 : 0.0);
        report.figure(key + "_kmeans_coverage_delta", delta);
    }

    // Bounded per-step cost: the same pipeline over a 10x longer
    // stream must not get more expensive per step.
    const auto &base = runs[1].records; // DCGAN-MNIST
    const std::vector<ProfileRecord> ten_x =
        replicateStream(base, 10);
    const StreamCost one =
        streamingPass(base, ols_opts, kIterations);
    const StreamCost ten =
        streamingPass(ten_x, ols_opts, kIterations);
    const double us_per_step_1x = 1e6 * one.seconds /
        static_cast<double>(one.steps);
    const double us_per_step_10x = 1e6 * ten.seconds /
        static_cast<double>(ten.steps);
    const double ratio = us_per_step_10x / us_per_step_1x;
    std::printf("\nper-step cost, DCGAN-MNIST stream: %.2f us at "
                "1x (%llu steps), %.2f us at 10x (%llu steps), "
                "ratio %.2fx (bounded: stays near 1)\n",
                us_per_step_1x,
                static_cast<unsigned long long>(one.steps),
                us_per_step_10x,
                static_cast<unsigned long long>(ten.steps), ratio);
    if (!all_exact)
        std::printf("\nWARNING: a streaming OLS answer diverged "
                    "from the batch scan\n");

    report.figure("per_step_us_1x", us_per_step_1x);
    report.figure("per_step_us_10x", us_per_step_10x);
    report.figure("per_step_cost_ratio_10x", ratio);
    report.figure("all_ols_exact", all_exact ? 1.0 : 0.0);
    return report.write() ? 0 : 1;
}

/**
 * @file
 * tpupoint-serve ingest throughput: how many concurrent live
 * traces one daemon sustains. 120 synthetic sessions spool into a
 * temp directory in interleaved slices (cut mid-chunk on purpose,
 * so every session exercises the truncated-tail "pending, more may
 * come" path between polls) while one SessionManager tail-follows
 * them all on a shared pool. Reports sessions ingested, aggregate
 * sessions/sec and events/sec, and the p99 per-chunk ingest
 * latency from the `serve.ingest_chunk_us` histogram. Sessions
 * evict immediately after finalize (evict TTL 0), so the run also
 * demonstrates bounded memory under churn.
 *
 * Two robustness phases follow the throughput run: a restart-
 * recovery phase (half-ingested journaled sessions, manager
 * dropped cold, rebuild timed — the `recovery_ms` figure) and an
 * overload phase (more sessions than the admission cap, shed then
 * re-admitted to completion — the `shed_rate` figure).
 */

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>
#ifdef __unix__
#include <unistd.h>
#endif

#include "bench/common.hh"
#include "core/logging.hh"
#include "obs/flight_recorder.hh"
#include "obs/logger.hh"
#include "obs/metrics.hh"
#include "proto/serialize.hh"
#include "serve/serve.hh"
#include "trace/record_stream.hh"

using namespace tpupoint;

namespace {

constexpr std::size_t kSessions = 120;
constexpr std::size_t kRecordsPerSession = 16;
constexpr std::size_t kStepsPerRecord = 8;
constexpr int kSliceRounds = 4;

/** One synthetic profile record: a few ops per step. */
ProfileRecord
makeRecord(std::uint64_t seq, StepId step_base)
{
    ProfileRecord record;
    record.sequence = seq;
    const SimTime span = 100 * kUsec;
    for (std::size_t i = 0; i < kStepsPerRecord; ++i) {
        StepStats step;
        step.step = step_base + static_cast<StepId>(i);
        step.begin = static_cast<SimTime>(step.step) * span;
        step.end = step.begin + span;
        for (const char *name :
             {"fusion", "MatMul", "InfeedDequeueTuple"}) {
            OpStats stats;
            stats.count = 1;
            stats.total_duration = 20 * kUsec;
            step.tpu_ops[name] = stats;
            step.tpu_busy += stats.total_duration;
        }
        OpStats host;
        host.count = 1;
        host.total_duration = 5 * kUsec;
        step.host_ops["OutfeedDequeueTuple"] = host;
        record.event_count += 4;
        record.steps.push_back(std::move(step));
    }
    record.window_begin = record.steps.front().begin;
    record.window_end = record.steps.back().end;
    return record;
}

/** The full wire bytes of one session's stream, multi-chunk. */
std::string
sessionStream()
{
    std::ostringstream out(std::ios::binary);
    RecordStreamOptions options;
    options.chunk_records = 2; // ~8 chunks per session.
    {
        RecordStreamWriter writer(out, options);
        StepId step = 0;
        for (std::size_t seq = 0; seq < kRecordsPerSession;
             ++seq) {
            writer.append(encodeProfileRecord(
                makeRecord(seq, step)));
            step += kStepsPerRecord;
        }
        writer.finish();
    }
    return out.str();
}

std::string
spoolDir()
{
    std::string dir = std::filesystem::temp_directory_path()
                          .string() +
        "/tpupoint_bench_serve";
#ifdef __unix__
    dir += "." + std::to_string(getpid());
#endif
    return dir;
}

} // namespace

int
main(int argc, char **argv)
{
    benchutil::BenchReport report("bench_serve", argc, argv);
    benchutil::banner(
        "TPUPoint serve: concurrent live-trace ingest",
        "fleet-scale serving of the Section III analyzer "
        "pipeline");

    const std::string stream = sessionStream();
    const std::string dir = spoolDir();
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    std::vector<std::string> paths;
    paths.reserve(kSessions);
    for (std::size_t i = 0; i < kSessions; ++i)
        paths.push_back(dir + "/session" + std::to_string(i) +
                        ".tpp");

    serve::ServeOptions options;
    options.spool_dir = dir;
    options.threads = benchutil::sweepThreads();
    options.idle_ttl_ms = 3600 * 1000; // Only finalize on Complete.
    options.evict_ttl_ms = 0;          // Evict as soon as final.
    options.max_finalizes_per_poll = 16;
    serve::SessionManager manager(options);

    const auto started = std::chrono::steady_clock::now();

    // Spool in interleaved slices: every session's file exists
    // from round 0 on, so all kSessions are live simultaneously,
    // and the cut points deliberately land mid-chunk.
    std::size_t previous_cut = 0;
    for (int round = 1; round <= kSliceRounds; ++round) {
        const std::size_t cut = round == kSliceRounds
            ? stream.size()
            : stream.size() * static_cast<std::size_t>(round) /
                kSliceRounds +
                7; // Off a chunk boundary on purpose.
        for (std::size_t i = 0; i < kSessions; ++i) {
            std::ofstream out(paths[i],
                              std::ios::binary | std::ios::app);
            out.write(stream.data() +
                          static_cast<std::ptrdiff_t>(
                              previous_cut),
                      static_cast<std::streamsize>(
                          cut - previous_cut));
        }
        previous_cut = cut;
        manager.poll();
    }

    // Drain: finalizes are capped per poll, so keep polling until
    // every session has been finalized and evicted.
    std::size_t polls = 0;
    while (!manager.stats().drained() && polls < 10000) {
        manager.poll();
        ++polls;
    }

    const double wall_s =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - started)
            .count();

    const serve::ServeStats stats = manager.stats();
    const auto snapshot =
        obs::MetricsRegistry::global().snapshot();
    double p99_chunk_ms = 0.0;
    const auto it =
        snapshot.histograms.find("serve.ingest_chunk_us");
    if (it != snapshot.histograms.end())
        p99_chunk_ms =
            obs::histogramQuantile(it->second, 0.99) / 1000.0;

    const double sessions_per_sec =
        wall_s > 0 ? static_cast<double>(stats.finalized +
                                         stats.evicted) /
                wall_s
                   : 0.0;
    const double events_per_sec =
        wall_s > 0 ? static_cast<double>(stats.events) / wall_s
                   : 0.0;

    std::printf("\nsimultaneous sessions   %zu\n", stats.sessions);
    std::printf("finalized + evicted     %zu\n",
                stats.finalized + stats.evicted);
    std::printf("records ingested        %llu\n",
                static_cast<unsigned long long>(stats.records));
    std::printf("events ingested         %llu\n",
                static_cast<unsigned long long>(stats.events));
    std::printf("wall time               %.3f s\n", wall_s);
    std::printf("sessions/sec            %.1f\n",
                sessions_per_sec);
    std::printf("events/sec              %.0f\n", events_per_sec);
    std::printf("p99 chunk ingest        %.3f ms\n",
                p99_chunk_ms);

    std::filesystem::remove_all(dir);

    if (stats.sessions < 100 ||
        stats.finalized + stats.evicted < kSessions) {
        std::fprintf(stderr,
                     "bench_serve: expected %zu sessions "
                     "finalized, got %zu of %zu\n",
                     kSessions, stats.finalized + stats.evicted,
                     stats.sessions);
        return 1;
    }

    // ---- Phase 2: restart recovery -------------------------------
    // Journal half-ingested sessions, drop the manager cold (the
    // "kill -9"), and time how long a rebuild takes to restore
    // every session from its committed offset.
    constexpr std::size_t kRecoverySessions = 32;
    const std::string recovery_dir = dir + ".recovery";
    std::filesystem::remove_all(recovery_dir);
    std::filesystem::create_directories(recovery_dir);
    for (std::size_t i = 0; i < kRecoverySessions; ++i) {
        std::ofstream out(recovery_dir + "/session" +
                              std::to_string(i) + ".tpp",
                          std::ios::binary);
        out.write(stream.data(),
                  static_cast<std::streamsize>(stream.size() / 2));
    }
    serve::ServeOptions recovery_options;
    recovery_options.spool_dir = recovery_dir;
    recovery_options.threads = benchutil::sweepThreads();
    recovery_options.idle_ttl_ms = 3600 * 1000;
    recovery_options.evict_ttl_ms = -1;
    recovery_options.journal_path =
        recovery_dir + "/serve.journal";
    {
        serve::SessionManager first(recovery_options);
        first.poll(); // Ingest the half-streams; journal commits.
    }
    const auto recovery_start = std::chrono::steady_clock::now();
    serve::SessionManager second(recovery_options);
    const double recovery_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - recovery_start)
            .count();
    const std::size_t recovered = second.stats().recovered;

    // Finish the streams to prove recovery resumes, not restarts.
    for (std::size_t i = 0; i < kRecoverySessions; ++i) {
        std::ofstream out(recovery_dir + "/session" +
                              std::to_string(i) + ".tpp",
                          std::ios::binary | std::ios::app);
        out.write(stream.data() +
                      static_cast<std::ptrdiff_t>(
                          stream.size() / 2),
                  static_cast<std::streamsize>(
                      stream.size() - stream.size() / 2));
    }
    std::size_t recovery_polls = 0;
    while (!second.stats().drained() && recovery_polls < 10000) {
        second.poll();
        ++recovery_polls;
    }
    const serve::ServeStats recovered_stats = second.stats();
    std::filesystem::remove_all(recovery_dir);

    std::printf("recovered sessions      %zu of %zu\n", recovered,
                kRecoverySessions);
    std::printf("recovery time           %.3f ms\n", recovery_ms);

    // ---- Phase 3: overload shedding ------------------------------
    // Four times more sessions than the admission cap: the excess
    // is shed at the door, then re-admitted and finished as
    // capacity frees — overload delays work, never loses it.
    constexpr std::size_t kShedSessions = 32;
    const std::string shed_dir = dir + ".shed";
    std::filesystem::remove_all(shed_dir);
    std::filesystem::create_directories(shed_dir);
    for (std::size_t i = 0; i < kShedSessions; ++i) {
        std::ofstream out(shed_dir + "/session" +
                              std::to_string(i) + ".tpp",
                          std::ios::binary);
        out.write(stream.data(),
                  static_cast<std::streamsize>(stream.size()));
    }
    serve::ServeOptions shed_options;
    shed_options.spool_dir = shed_dir;
    shed_options.threads = benchutil::sweepThreads();
    shed_options.idle_ttl_ms = 3600 * 1000;
    shed_options.evict_ttl_ms = 0;
    shed_options.max_finalizes_per_poll = 16;
    shed_options.max_sessions = kShedSessions / 4;
    serve::SessionManager overloaded(shed_options);
    overloaded.poll();
    const std::size_t shed_peak = overloaded.stats().shed;
    const double shed_rate = static_cast<double>(shed_peak) /
        static_cast<double>(kShedSessions);
    std::size_t shed_polls = 0;
    while (!overloaded.stats().drained() && shed_polls < 10000) {
        overloaded.poll();
        ++shed_polls;
    }
    const serve::ServeStats shed_stats = overloaded.stats();
    std::filesystem::remove_all(shed_dir);

    std::printf("shed at peak            %zu of %zu (rate %.2f)\n",
                shed_peak, kShedSessions, shed_rate);
    std::printf("finished after shed     %zu\n",
                shed_stats.finalized + shed_stats.evicted);

    if (recovered != kRecoverySessions ||
        recovered_stats.finalized < kRecoverySessions) {
        std::fprintf(stderr,
                     "bench_serve: recovery restored %zu of %zu "
                     "sessions (%zu finalized)\n",
                     recovered, kRecoverySessions,
                     recovered_stats.finalized);
        return 1;
    }
    if (shed_peak == 0 ||
        shed_stats.finalized + shed_stats.evicted <
            kShedSessions) {
        std::fprintf(stderr,
                     "bench_serve: shed phase finished %zu of %zu "
                     "sessions (peak shed %zu)\n",
                     shed_stats.finalized + shed_stats.evicted,
                     kShedSessions, shed_peak);
        return 1;
    }

    // ---- Phase 4: observability overhead -------------------------
    // The cost of leaving the structured logger on a hot path:
    // events below the stream threshold with the flight recorder
    // off (the production fast path — one level check), the same
    // events with the recorder on (serialize + ring write), and a
    // raw ring write of a pre-serialized payload.
    constexpr std::uint64_t kLogEvents = 200000;
    obs::Logger bench_logger;
    std::FILE *log_sink = std::tmpfile();
    bench_logger.setStream(log_sink);
    bench_logger.setFormat(obs::LogFormat::Json);
    LogConfig::setThreshold(LogLevel::Warn);
    obs::FlightRecorder &flight = obs::FlightRecorder::global();

    const auto timeLogLoop = [&] {
        const auto begin = std::chrono::steady_clock::now();
        for (std::uint64_t i = 0; i < kLogEvents; ++i)
            bench_logger.log(LogLevel::Debug, "bench",
                             "ingest tick",
                             {{"session", "bench"}, {"i", i}});
        return std::chrono::duration<double, std::nano>(
                   std::chrono::steady_clock::now() - begin)
                   .count() /
            static_cast<double>(kLogEvents);
    };

    flight.disable();
    const double log_off_ns = timeLogLoop();
    flight.enable();
    const double log_on_ns = timeLogLoop();

    const std::string payload =
        "{\"level\":\"debug\",\"component\":\"bench\","
        "\"msg\":\"ingest tick\"}";
    const auto ring_begin = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < kLogEvents; ++i)
        flight.record(payload);
    const double ring_ns =
        std::chrono::duration<double, std::nano>(
            std::chrono::steady_clock::now() - ring_begin)
            .count() /
        static_cast<double>(kLogEvents);
    flight.disable();
    LogConfig::setThreshold(LogLevel::Info);
    if (log_sink != nullptr)
        std::fclose(log_sink);

    std::printf("log event, recorder off %.1f ns\n", log_off_ns);
    std::printf("log event, recorder on  %.1f ns\n", log_on_ns);
    std::printf("flight ring write       %.1f ns\n", ring_ns);

    report.figure("sessions",
                  static_cast<double>(stats.sessions));
    report.figure("sessions_per_sec", sessions_per_sec);
    report.figure("events_per_sec", events_per_sec);
    report.figure("p99_chunk_ingest_ms", p99_chunk_ms);
    report.figure("recovery_ms", recovery_ms);
    report.figure("recovered_sessions",
                  static_cast<double>(recovered));
    report.figure("shed_rate", shed_rate);
    report.figure("log_event_flight_off_ns", log_off_ns);
    report.figure("log_event_flight_on_ns", log_on_ns);
    report.figure("flight_record_ns", ring_ns);
    return report.write() ? 0 : 1;
}

/**
 * @file The parallel-analysis determinism contract: whatever the
 * thread count, finalize() and the sweeps underneath it produce
 * bit-identical results — the same AnalysisResult, the same CSV,
 * the same JSON — and a borrowed pool behaves like an owned one.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "analyzer/analyzer.hh"
#include "analyzer/visualization.hh"
#include "core/thread_pool.hh"
#include "profiler/profiler.hh"
#include "proto/serialize.hh"
#include "runtime/sweep.hh"
#include "workloads/catalog.hh"

namespace tpupoint {
namespace {

std::vector<ProfileRecord>
profiledRecords()
{
    WorkloadOptions options;
    options.step_scale = 0.02;
    options.max_train_steps = 160;
    const RuntimeWorkload w =
        makeWorkload(WorkloadId::DcganMnist, options);
    Simulator sim;
    SessionConfig config;
    TrainingSession session(sim, config, w);
    TpuPointProfiler profiler(sim, session);
    profiler.start(true);
    session.start(nullptr);
    sim.run();
    profiler.stop();
    return profiler.records();
}

AnalysisResult
analyzeWith(const std::vector<ProfileRecord> &records,
            unsigned threads)
{
    AnalyzerOptions options;
    options.algorithm = PhaseAlgorithm::KMeans;
    options.extra_algorithms = {PhaseAlgorithm::Dbscan,
                                PhaseAlgorithm::OnlineLinearScan};
    options.threads = threads;
    return TpuPointAnalyzer(options).analyze(records);
}

/** Every field a thread count could possibly perturb. */
void
expectIdentical(const AnalysisResult &a, const AnalysisResult &b)
{
    ASSERT_EQ(a.phases.size(), b.phases.size());
    for (std::size_t i = 0; i < a.phases.size(); ++i) {
        EXPECT_EQ(a.phases[i].id, b.phases[i].id);
        EXPECT_EQ(a.phases[i].first_step, b.phases[i].first_step);
        EXPECT_EQ(a.phases[i].last_step, b.phases[i].last_step);
        EXPECT_EQ(a.phases[i].total_duration,
                  b.phases[i].total_duration);
    }
    // Exact double equality, not tolerance: the contract is
    // bit-identical, and any cross-thread reduction would break
    // it.
    EXPECT_EQ(a.top3_coverage, b.top3_coverage);
    EXPECT_EQ(a.kmeans.ssd_curve, b.kmeans.ssd_curve);
    EXPECT_EQ(a.kmeans.elbow_k, b.kmeans.elbow_k);
    EXPECT_EQ(a.kmeans.best.labels, b.kmeans.best.labels);
    EXPECT_EQ(a.kmeans.best.ssd, b.kmeans.best.ssd);

    ASSERT_EQ(a.detections.size(), b.detections.size());
    for (std::size_t i = 0; i < a.detections.size(); ++i) {
        const DetectorResult &da = a.detections[i];
        const DetectorResult &db = b.detections[i];
        EXPECT_EQ(da.algorithm, db.algorithm);
        EXPECT_EQ(da.phases.size(), db.phases.size());
        EXPECT_EQ(da.top3_coverage, db.top3_coverage);
        EXPECT_EQ(da.kmeans.ssd_curve, db.kmeans.ssd_curve);
        EXPECT_EQ(da.dbscan.noise_curve, db.dbscan.noise_curve);
    }
}

std::string
phaseCsv(const AnalysisResult &result)
{
    std::ostringstream out;
    writePhaseCsv(result, out);
    return out.str();
}

std::string
analysisJson(const AnalysisResult &result)
{
    std::ostringstream out;
    writeAnalysisJson(result, out);
    return out.str();
}

TEST(ParallelDeterminismTest, ThreadCountNeverChangesTheResult)
{
    const auto records = profiledRecords();
    const AnalysisResult serial = analyzeWith(records, 1);
    const AnalysisResult two = analyzeWith(records, 2);
    const AnalysisResult eight = analyzeWith(records, 8);
    expectIdentical(serial, two);
    expectIdentical(serial, eight);
}

TEST(ParallelDeterminismTest, ArtifactsAreByteIdentical)
{
    const auto records = profiledRecords();
    const AnalysisResult serial = analyzeWith(records, 1);
    const AnalysisResult parallel = analyzeWith(records, 8);
    EXPECT_EQ(phaseCsv(serial), phaseCsv(parallel));
    EXPECT_EQ(analysisJson(serial), analysisJson(parallel));
}

TEST(ParallelDeterminismTest, CallerPoolMatchesOwnedPool)
{
    const auto records = profiledRecords();
    AnalyzerOptions options;
    options.algorithm = PhaseAlgorithm::KMeans;
    options.threads = 1;
    const AnalysisResult owned =
        TpuPointAnalyzer(options).analyze(records);

    ThreadPool pool(4u);
    const AnalysisResult borrowed =
        TpuPointAnalyzer(options).analyze(records, {}, pool);
    expectIdentical(owned, borrowed);
}

TEST(ParallelDeterminismTest, SweepRunnerOnBorrowedPool)
{
    std::vector<SweepJob> jobs;
    for (const WorkloadId id :
         {WorkloadId::BertMrpc, WorkloadId::DcganMnist,
          WorkloadId::DcganCifar10}) {
        WorkloadOptions options;
        options.step_scale = 0.02;
        options.max_train_steps = 100;
        SweepJob job;
        job.workload = makeWorkload(id, options);
        jobs.push_back(std::move(job));
    }

    SweepOptions serial_options;
    serial_options.threads = 1;
    const auto serial = SweepRunner(serial_options).run(jobs);

    ThreadPool pool(4u);
    SweepOptions pooled_options;
    pooled_options.pool = &pool;
    const auto pooled = SweepRunner(pooled_options).run(jobs);

    ASSERT_EQ(serial.size(), pooled.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].result.wall_time,
                  pooled[i].result.wall_time);
        EXPECT_EQ(serial[i].result.steps_completed,
                  pooled[i].result.steps_completed);
        ASSERT_EQ(serial[i].records.size(),
                  pooled[i].records.size());
        for (std::size_t r = 0; r < serial[i].records.size();
             ++r) {
            EXPECT_EQ(
                encodeProfileRecord(serial[i].records[r]),
                encodeProfileRecord(pooled[i].records[r]));
        }
    }
}

} // namespace
} // namespace tpupoint

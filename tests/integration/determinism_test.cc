/**
 * @file Determinism and equivalence properties of the whole stack:
 * profiled runs replay bit-for-bit, profiling does not perturb the
 * schedule of completed work, and checkpoint restarts join up with
 * full runs.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "analyzer/analyzer.hh"
#include "profiler/profiler.hh"
#include "proto/serialize.hh"
#include "workloads/catalog.hh"

namespace tpupoint {
namespace {

RuntimeWorkload
workload(WorkloadId id = WorkloadId::DcganMnist,
         std::uint64_t steps = 120)
{
    WorkloadOptions options;
    options.step_scale = 0.02;
    options.max_train_steps = steps;
    return makeWorkload(id, options);
}

/** Serialize a profiled run for byte-level comparison. */
std::string
profiledRunBytes(const RuntimeWorkload &w, std::uint64_t seed)
{
    Simulator sim;
    SessionConfig config;
    config.seed = seed;
    TrainingSession session(sim, config, w);
    TpuPointProfiler profiler(sim, session);
    profiler.start(true);
    session.start(nullptr);
    sim.run();
    profiler.stop();
    std::ostringstream out;
    profiler.writeRecords(out);
    return out.str();
}

TEST(DeterminismTest, ProfiledRunsReplayBitForBit)
{
    const RuntimeWorkload w = workload();
    EXPECT_EQ(profiledRunBytes(w, 1), profiledRunBytes(w, 1));
}

TEST(DeterminismTest, DifferentSeedsDifferentJitter)
{
    const RuntimeWorkload w = workload();
    // Different seeds perturb host-pipeline jitter, so the raw
    // profile bytes differ...
    EXPECT_NE(profiledRunBytes(w, 1), profiledRunBytes(w, 2));
    // ...but the structural analysis is stable.
    auto analyze = [&](std::uint64_t seed) {
        std::istringstream in(profiledRunBytes(w, seed));
        ProfileReader reader(in);
        AnalysisResult result =
            TpuPointAnalyzer().analyze(reader.readAll());
        return result.phases.size();
    };
    EXPECT_EQ(analyze(1), analyze(2));
}

TEST(DeterminismTest, SplitRunMatchesFullRunStepCount)
{
    const RuntimeWorkload w = workload(WorkloadId::DcganMnist,
                                       100);
    auto steps_completed = [&](StepId start, StepId stop) {
        Simulator sim;
        SessionConfig config;
        config.start_step = start;
        config.stop_at_step = stop;
        TrainingSession session(sim, config, w);
        session.start(nullptr);
        sim.run();
        return session.result().steps_completed;
    };
    const std::uint64_t full = steps_completed(0, 0);
    const std::uint64_t first = steps_completed(0, 60);
    const std::uint64_t second = steps_completed(60, 0);
    EXPECT_EQ(first + second, full);
}

TEST(DeterminismTest, DeviceGenerationDoesNotChangeWorkDone)
{
    const RuntimeWorkload w = workload();
    auto ops_executed = [&](TpuGeneration gen) {
        Simulator sim;
        SessionConfig config;
        config.device = TpuDeviceSpec::forGeneration(gen);
        TrainingSession session(sim, config, w);
        session.start(nullptr);
        sim.run();
        return session.result().tpu.ops_executed;
    };
    // Same program, same operators — only the timing changes.
    EXPECT_EQ(ops_executed(TpuGeneration::V2),
              ops_executed(TpuGeneration::V3));
}

TEST(DeterminismTest, ProfilerDoesNotChangeStepOutcome)
{
    const RuntimeWorkload w = workload();
    auto run_steps = [&](bool profiled) {
        Simulator sim;
        TrainingSession session(sim, SessionConfig{}, w);
        std::unique_ptr<TpuPointProfiler> profiler;
        if (profiled) {
            profiler =
                std::make_unique<TpuPointProfiler>(sim, session);
            profiler->start(true);
        }
        session.start(nullptr);
        sim.run();
        return session.result().steps_completed;
    };
    EXPECT_EQ(run_steps(false), run_steps(true));
}

} // namespace
} // namespace tpupoint

/** @file Whole-toolchain integration: profile -> analyze -> files. */

#include <gtest/gtest.h>

#include <sstream>

#include "analyzer/visualization.hh"
#include "profiler/profiler.hh"
#include "proto/serialize.hh"
#include "workloads/catalog.hh"

namespace tpupoint {
namespace {

struct ProfiledRun
{
    std::vector<ProfileRecord> records;
    std::vector<CheckpointInfo> checkpoints;
    SessionResult result;
};

ProfiledRun
profileWorkload(WorkloadId id, TpuGeneration gen)
{
    WorkloadOptions options;
    options.step_scale = 0.02;
    options.max_train_steps = 300;
    const RuntimeWorkload w = makeWorkload(id, options);

    Simulator sim;
    SessionConfig config;
    config.device = TpuDeviceSpec::forGeneration(gen);
    TrainingSession session(sim, config, w);
    TpuPointProfiler profiler(sim, session);
    profiler.start(true);
    session.start(nullptr);
    sim.run();
    profiler.stop();

    ProfiledRun run;
    run.records = profiler.records();
    run.checkpoints = session.checkpoints().checkpoints();
    run.result = session.result();
    return run;
}

TEST(EndToEndTest, ProfileAnalyzeExportPipeline)
{
    const ProfiledRun run =
        profileWorkload(WorkloadId::DcganCifar10,
                        TpuGeneration::V2);
    ASSERT_FALSE(run.records.empty());

    AnalyzerOptions options;
    const AnalysisResult analysis = TpuPointAnalyzer(options)
        .analyze(run.records, run.checkpoints);
    EXPECT_GT(analysis.table.size(), 100u);
    EXPECT_GE(analysis.phases.size(), 2u);
    EXPECT_LE(analysis.phases.size(), 15u);
    EXPECT_GE(analysis.top3_coverage, 0.95);
    EXPECT_FALSE(analysis.checkpoints.empty());

    // Every output artifact is producible.
    std::ostringstream trace, csv, json, profile_bin;
    writeChromeTrace(analysis, run.records, trace);
    writePhaseCsv(analysis, csv);
    writeAnalysisJson(analysis, json);
    ProfileWriter writer(profile_bin);
    for (const auto &record : run.records)
        writer.write(record);
    writer.finish();
    EXPECT_GT(trace.str().size(), 100u);
    EXPECT_GT(csv.str().size(), 100u);
    EXPECT_GT(json.str().size(), 100u);

    // The binary profile round-trips to an equivalent analysis.
    std::istringstream replay(profile_bin.str());
    ProfileReader reader(replay);
    const auto decoded = reader.readAll();
    const AnalysisResult again =
        TpuPointAnalyzer(options).analyze(decoded);
    EXPECT_EQ(again.phases.size(), analysis.phases.size());
    EXPECT_DOUBLE_EQ(again.top3_coverage,
                     analysis.top3_coverage);
}

TEST(EndToEndTest, AllAlgorithmsAgreeOnDominantOps)
{
    const ProfiledRun run = profileWorkload(
        WorkloadId::BertSquad, TpuGeneration::V2);

    std::vector<std::string> winners;
    for (const PhaseAlgorithm algorithm :
         {PhaseAlgorithm::KMeans, PhaseAlgorithm::Dbscan,
          PhaseAlgorithm::OnlineLinearScan}) {
        AnalyzerOptions options;
        options.algorithm = algorithm;
        options.kmeans_fixed_k = 5;
        options.dbscan_fixed_min_samples = 30;
        const AnalysisResult analysis =
            TpuPointAnalyzer(options).analyze(run.records);
        const Phase *longest = analysis.longest();
        ASSERT_NE(longest, nullptr);
        const auto top = topOps(longest->tpu_ops, 1);
        ASSERT_FALSE(top.empty());
        winners.push_back(top[0].name);
    }
    // Section VI-B: the detectors identify a common set of the
    // most time-consuming operators.
    EXPECT_EQ(winners[0], winners[1]);
    EXPECT_EQ(winners[1], winners[2]);
}

TEST(EndToEndTest, CheckpointFastForwardSkipsWork)
{
    WorkloadOptions options;
    options.step_scale = 0.02;
    options.max_train_steps = 200;
    const RuntimeWorkload w =
        makeWorkload(WorkloadId::DcganCifar10, options);

    // Full run.
    Simulator full_sim;
    TrainingSession full(full_sim, SessionConfig{}, w);
    full.start(nullptr);
    full_sim.run();

    // Fast-forward to the phase beginning at step 150 via the
    // nearest checkpoint, as TPUPoint's restart support enables.
    const CheckpointInfo *nearest =
        full.checkpoints().nearest(150);
    ASSERT_NE(nearest, nullptr);
    SessionConfig restart;
    restart.start_step = nearest->step;
    Simulator ff_sim;
    TrainingSession resumed(ff_sim, restart, w);
    resumed.start(nullptr);
    ff_sim.run();

    EXPECT_LT(resumed.result().wall_time,
              full.result().wall_time);
    EXPECT_EQ(resumed.result().steps_completed,
              w.schedule.train_steps - nearest->step);
}

} // namespace
} // namespace tpupoint

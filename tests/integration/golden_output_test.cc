/**
 * @file
 * Golden byte-identity suite for the analyzer outputs. The columnar
 * refactor of the analyzer core (interned step tables, flat feature
 * matrix, zero-copy reads) must not change a single output byte:
 * every artifact here — analyze CSV/JSON, the exported trace, the
 * comparison report, and the salvage path — is compared verbatim
 * against goldens generated from the pre-refactor row-oriented
 * implementation, for --threads 1, 2 and 8.
 *
 * Regenerate (only when an output format intentionally changes):
 *   TPUPOINT_UPDATE_GOLDENS=1 ./integration_test \
 *       --gtest_filter='GoldenOutput*'
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analyzer/compare.hh"
#include "analyzer/visualization.hh"
#include "obs/trace_export.hh"
#include "profiler/profiler.hh"
#include "proto/serialize.hh"
#include "workloads/catalog.hh"

#ifndef TPUPOINT_GOLDEN_DIR
#error "TPUPOINT_GOLDEN_DIR must be defined by the build"
#endif

namespace tpupoint {
namespace {

struct ProfiledRun
{
    std::vector<ProfileRecord> records;
    std::vector<CheckpointInfo> checkpoints;
};

/** Deterministic profiled run (same recipe as end_to_end_test). */
ProfiledRun
profileWorkload(WorkloadId id, TpuGeneration gen)
{
    WorkloadOptions options;
    options.step_scale = 0.02;
    options.max_train_steps = 300;
    const RuntimeWorkload w = makeWorkload(id, options);

    Simulator sim;
    SessionConfig config;
    config.device = TpuDeviceSpec::forGeneration(gen);
    TrainingSession session(sim, config, w);
    TpuPointProfiler profiler(sim, session);
    profiler.start(true);
    session.start(nullptr);
    sim.run();
    profiler.stop();

    ProfiledRun run;
    run.records = profiler.records();
    run.checkpoints = session.checkpoints().checkpoints();
    return run;
}

/** Serialize a run to the binary container format. */
std::string
encodeProfile(const std::vector<ProfileRecord> &records)
{
    std::ostringstream out(std::ios::binary);
    ProfileWriter writer(out);
    for (const auto &record : records)
        writer.write(record);
    writer.finish();
    return out.str();
}

bool
updateGoldens()
{
    const char *env = std::getenv("TPUPOINT_UPDATE_GOLDENS");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/** Compare @p produced against the named golden file byte-wise. */
void
expectGolden(const std::string &name, const std::string &produced)
{
    const std::string path =
        std::string(TPUPOINT_GOLDEN_DIR) + "/" + name;
    if (updateGoldens()) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out) << "cannot write golden " << path;
        out << produced;
        return;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in) << "missing golden " << path
                    << " (run with TPUPOINT_UPDATE_GOLDENS=1)";
    std::ostringstream expected;
    expected << in.rdbuf();
    if (expected.str() != produced) {
        // Locate the first divergent byte for a usable failure.
        const std::string &a = expected.str();
        std::size_t i = 0;
        while (i < a.size() && i < produced.size() &&
               a[i] == produced[i])
            ++i;
        FAIL() << name << " differs from golden at byte " << i
               << " (golden " << a.size() << " bytes, produced "
               << produced.size() << " bytes)\n  golden  ...\""
               << a.substr(i > 30 ? i - 30 : 0, 60)
               << "\"\n  produced...\""
               << produced.substr(i > 30 ? i - 30 : 0, 60) << "\"";
    }
}

/** One full analysis with all three detectors at @p threads. */
AnalysisResult
analyzeAll(const std::vector<ProfileRecord> &records,
           const std::vector<CheckpointInfo> &checkpoints,
           unsigned threads, std::size_t max_dimensions = 100)
{
    AnalyzerOptions options;
    options.algorithm = PhaseAlgorithm::OnlineLinearScan;
    options.extra_algorithms = {PhaseAlgorithm::KMeans,
                                PhaseAlgorithm::Dbscan};
    options.threads = threads;
    options.features.max_dimensions = max_dimensions;
    return TpuPointAnalyzer(options).analyze(records, checkpoints);
}

std::string
phaseCsv(const AnalysisResult &analysis)
{
    std::ostringstream out;
    writePhaseCsv(analysis, out);
    return out.str();
}

std::string
analysisJson(const AnalysisResult &analysis)
{
    std::ostringstream out;
    writeAnalysisJson(analysis, out, /*pretty=*/true);
    return out.str();
}

const ProfiledRun &
runV2()
{
    static const ProfiledRun run =
        profileWorkload(WorkloadId::DcganCifar10,
                        TpuGeneration::V2);
    return run;
}

const ProfiledRun &
runV3()
{
    static const ProfiledRun run =
        profileWorkload(WorkloadId::DcganCifar10,
                        TpuGeneration::V3);
    return run;
}

TEST(GoldenOutput, AnalyzeCsvAndJsonAcrossThreadCounts)
{
    const ProfiledRun &run = runV2();
    ASSERT_FALSE(run.records.empty());

    const AnalysisResult serial =
        analyzeAll(run.records, run.checkpoints, 1);
    const std::string csv = phaseCsv(serial);
    const std::string json = analysisJson(serial);
    expectGolden("analyze_phases.csv", csv);
    expectGolden("analyze.json", json);

    for (const unsigned threads : {2u, 8u}) {
        const AnalysisResult parallel =
            analyzeAll(run.records, run.checkpoints, threads);
        EXPECT_EQ(phaseCsv(parallel), csv)
            << "CSV diverges at --threads " << threads;
        EXPECT_EQ(analysisJson(parallel), json)
            << "JSON diverges at --threads " << threads;
    }
}

TEST(GoldenOutput, PcaReducedAnalysis)
{
    // max_dimensions 8 forces the PCA reduction path (the DCGAN op
    // universe is wider than 8 raw dimensions). k-means is the
    // primary algorithm so the projected features' numerics reach
    // the serialized phases.
    const ProfiledRun &run = runV2();
    AnalyzerOptions options;
    options.algorithm = PhaseAlgorithm::KMeans;
    options.extra_algorithms = {PhaseAlgorithm::Dbscan};
    options.features.max_dimensions = 8;
    std::string json;
    for (const unsigned threads : {1u, 8u}) {
        options.threads = threads;
        const AnalysisResult analysis =
            TpuPointAnalyzer(options).analyze(run.records,
                                              run.checkpoints);
        EXPECT_TRUE(analysis.detections.size() == 2);
        const std::string produced = analysisJson(analysis);
        if (threads == 1) {
            json = produced;
            expectGolden("analyze_pca.json", json);
        } else {
            EXPECT_EQ(produced, json);
        }
    }
}

TEST(GoldenOutput, CompareReport)
{
    const AnalysisResult a =
        analyzeAll(runV2().records, runV2().checkpoints, 2);
    const AnalysisResult b =
        analyzeAll(runV3().records, runV3().checkpoints, 2);
    const AnalysisComparison comparison =
        compareAnalyses(a, b, "TPUv2", "TPUv3");
    std::ostringstream out;
    writeComparison(comparison, out);
    expectGolden("compare.txt", out.str());
}

TEST(GoldenOutput, ExportTrace)
{
    const ProfiledRun &run = runV2();
    const std::string profile = encodeProfile(run.records);

    // Stream through the reader exactly as tpupoint-export does.
    std::istringstream in(profile, std::ios::binary);
    ProfileReader reader(in);
    std::ostringstream out;
    obs::ProfileTraceOptions options;
    obs::ProfileTraceWriter writer(out, options);
    ProfileRecord record;
    while (reader.read(record))
        writer.add(record);
    writer.finish();
    expectGolden("export_trace.json", out.str());
}

// Streaming-vs-batch agreement across the Table I workloads the
// paper characterizes. Three claims, each at --threads 1, 2 and 8:
// a streaming-mode session's finalize() output is byte-identical
// to the batch path (so turning live phases on can never change
// an archived analysis); the streaming OLS phase boundaries equal
// the batch OLS groups exactly (the snapshot is the same fold,
// finished once); and the mini-batch k-means reservoir estimate
// of top-3 coverage lands within a pinned tolerance of the batch
// answer.
TEST(GoldenOutput, StreamingAgreementAcrossTableIWorkloads)
{
    constexpr WorkloadId kTableOne[] = {
        WorkloadId::BertMrpc,      WorkloadId::DcganMnist,
        WorkloadId::QanetSquad,    WorkloadId::RetinanetCoco,
        WorkloadId::ResnetImagenet};
    for (const WorkloadId id : kTableOne) {
        SCOPED_TRACE(workloadName(id));
        const ProfiledRun run =
            profileWorkload(id, TpuGeneration::V3);
        ASSERT_FALSE(run.records.empty());

        AnalyzerOptions batch_opts;
        batch_opts.algorithm = PhaseAlgorithm::OnlineLinearScan;
        batch_opts.extra_algorithms = {PhaseAlgorithm::KMeans};
        const AnalysisResult batch =
            TpuPointAnalyzer(batch_opts).analyze(run.records,
                                                 run.checkpoints);
        const std::string batch_json = analysisJson(batch);
        ASSERT_EQ(batch.detections.size(), 2u);
        const double batch_coverage =
            batch.detections[1].top3_coverage;

        for (const unsigned threads : {1u, 2u, 8u}) {
            AnalyzerOptions opts = batch_opts;
            opts.threads = threads;
            opts.streaming = true;
            AnalysisSession session(opts);
            for (const auto &record : run.records)
                session.ingest(record);
            const PartialResult mid = session.partialResult();
            ASSERT_EQ(mid.snapshots.size(), 2u);
            EXPECT_TRUE(mid.snapshots[0].exact);
            EXPECT_TRUE(mid.snapshots[1].sampled);

            const AnalysisResult streamed =
                session.finalize(run.checkpoints);
            EXPECT_EQ(analysisJson(streamed), batch_json)
                << "streaming output diverges at --threads "
                << threads;

            const PartialResult fin = session.partialResult();
            EXPECT_EQ(fin.steps_behind, 0u);
            const StreamingSnapshot &ols = fin.snapshots[0];
            ASSERT_EQ(ols.phases.size(), batch.ols_groups.size());
            for (std::size_t i = 0; i < ols.phases.size(); ++i) {
                EXPECT_EQ(ols.phases[i].steps,
                          batch.ols_groups[i].steps)
                    << "OLS phase " << i;
                EXPECT_EQ(ols.phases[i].duration,
                          batch.ols_groups[i].duration)
                    << "OLS phase " << i;
            }
            const StreamingSnapshot &kmeans = fin.snapshots[1];
            EXPECT_NEAR(kmeans.top3_coverage, batch_coverage,
                        0.15)
                << "k-means reservoir estimate drifted at "
                   "--threads "
                << threads;
        }
    }
}

TEST(GoldenOutput, SalvagedAnalysis)
{
    const ProfiledRun &run = runV2();
    std::string profile = encodeProfile(run.records);
    ASSERT_GT(profile.size(), 1024u);

    // Deterministic damage: corrupt one byte mid-stream (inside
    // some chunk payload) and truncate the end marker.
    profile[profile.size() / 2] ^= 0x5a;
    profile.resize(profile.size() - 4);

    std::string json;
    for (const unsigned threads : {1u, 2u, 8u}) {
        std::istringstream in(profile, std::ios::binary);
        ProfileReader reader(in, /*salvage=*/true);
        AnalyzerOptions options;
        options.algorithm = PhaseAlgorithm::OnlineLinearScan;
        options.extra_algorithms = {PhaseAlgorithm::KMeans,
                                    PhaseAlgorithm::Dbscan};
        options.threads = threads;
        AnalysisSession session(options);
        ProfileRecord record;
        while (reader.read(record))
            session.ingest(record);
        EXPECT_TRUE(reader.sawDamage());
        const AnalysisResult analysis =
            session.finalize(run.checkpoints);
        const std::string produced = analysisJson(analysis);
        if (threads == 1) {
            json = produced;
            expectGolden("salvage.json", json);
        } else {
            EXPECT_EQ(produced, json)
                << "salvage output diverges at --threads "
                << threads;
        }
    }
}

} // namespace
} // namespace tpupoint

/**
 * @file The paper's six observations, asserted as properties of the
 * reproduced platform + toolchain (Sections VI and VII).
 */

#include <gtest/gtest.h>

#include <map>

#include "analyzer/analyzer.hh"
#include "optimizer/optimizer.hh"
#include "profiler/profiler.hh"
#include "workloads/catalog.hh"

namespace tpupoint {
namespace {

struct Measured
{
    SessionResult result;
    std::vector<ProfileRecord> records;
};

Measured
measure(WorkloadId id, TpuGeneration gen,
        std::uint64_t max_steps = 300)
{
    WorkloadOptions options;
    options.step_scale = 0.02;
    options.max_train_steps = max_steps;
    const RuntimeWorkload w = makeWorkload(id, options);

    Simulator sim;
    SessionConfig config;
    config.device = TpuDeviceSpec::forGeneration(gen);
    TrainingSession session(sim, config, w);
    TpuPointProfiler profiler(sim, session);
    profiler.start(true);
    session.start(nullptr);
    sim.run();
    profiler.stop();
    return {session.result(), profiler.records()};
}

/** Observations 1 and 2, checked per workload. */
class PhaseObservations
    : public ::testing::TestWithParam<WorkloadId>
{
};

TEST_P(PhaseObservations, FewPhasesCoverMostExecution)
{
    const Measured m = measure(GetParam(), TpuGeneration::V2);
    AnalyzerOptions options;
    options.ols_threshold = 0.70;
    const AnalysisResult analysis =
        TpuPointAnalyzer(options).analyze(m.records);

    // Observation 1: a limited number of phases.
    EXPECT_GE(analysis.phases.size(), 1u);
    EXPECT_LE(analysis.phases.size(), 15u);
    // Observation 2: the 3 longest phases cover >= 95%.
    EXPECT_GE(analysis.top3_coverage, 0.95);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, PhaseObservations,
    ::testing::Values(WorkloadId::BertMrpc,
                      WorkloadId::BertSquad,
                      WorkloadId::DcganCifar10,
                      WorkloadId::QanetSquad,
                      WorkloadId::RetinanetCoco,
                      WorkloadId::ResnetImagenet));

TEST(Observations, ThreeAndFour_DataMovementDominatesHost)
{
    const Measured m =
        measure(WorkloadId::ResnetImagenet, TpuGeneration::V2);
    const AnalysisResult analysis =
        TpuPointAnalyzer().analyze(m.records);
    const Phase *longest = analysis.longest();
    ASSERT_NE(longest, nullptr);

    // The top host operators are the data-exchange ops.
    const auto host_top = topOps(longest->host_ops, 5);
    ASSERT_FALSE(host_top.empty());
    std::map<std::string, bool> in_top;
    for (const auto &op : host_top)
        in_top[op.name] = true;
    EXPECT_TRUE(in_top.count("OutfeedDequeueTuple") ||
                in_top.count("TransferBufferToInfeedLocked") ||
                in_top.count("DecodeAndCropJpeg"));

    // And the device spends real time idle (Observation 3).
    EXPECT_GT(m.result.tpu_idle_fraction, 0.10);
}

TEST(Observations, FusionTopsTheTpuOperators)
{
    // A compute-fed workload: fusion tops the TPU operators.
    const Measured dcgan =
        measure(WorkloadId::DcganCifar10, TpuGeneration::V2);
    const AnalysisResult dcgan_analysis =
        TpuPointAnalyzer().analyze(dcgan.records);
    const Phase *dcgan_longest = dcgan_analysis.longest();
    ASSERT_NE(dcgan_longest, nullptr);
    const auto dcgan_top = topOps(dcgan_longest->tpu_ops, 5);
    ASSERT_FALSE(dcgan_top.empty());
    EXPECT_EQ(dcgan_top[0].name, "fusion");

    // An infeed-bound workload: the Infeed stall joins the top
    // operators (as in several of Table II's columns) while
    // fusion and Reshape stay among the leaders.
    const Measured bert =
        measure(WorkloadId::BertSquad, TpuGeneration::V2);
    const AnalysisResult analysis =
        TpuPointAnalyzer().analyze(bert.records);
    const Phase *longest = analysis.longest();
    ASSERT_NE(longest, nullptr);
    const auto tpu_top = topOps(longest->tpu_ops, 5);
    ASSERT_FALSE(tpu_top.empty());
    bool fusion_in_top = false, reshape_in_top = false;
    for (const auto &op : tpu_top) {
        fusion_in_top |= op.name == "fusion";
        reshape_in_top |= op.name == "Reshape";
    }
    EXPECT_TRUE(fusion_in_top);
    EXPECT_TRUE(reshape_in_top);
}

TEST(Observations, Five_FasterTpuIdlesMore)
{
    double idle_v2 = 0, idle_v3 = 0;
    double mxu_v2 = 0, mxu_v3 = 0;
    const WorkloadId ids[] = {WorkloadId::BertSquad,
                              WorkloadId::DcganCifar10,
                              WorkloadId::ResnetImagenet};
    for (const WorkloadId id : ids) {
        const Measured v2 = measure(id, TpuGeneration::V2);
        const Measured v3 = measure(id, TpuGeneration::V3);
        idle_v2 += v2.result.tpu_idle_fraction;
        idle_v3 += v3.result.tpu_idle_fraction;
        mxu_v2 += v2.result.mxu_utilization;
        mxu_v3 += v3.result.mxu_utilization;
    }
    // Observation 5: idle grows and MXU utilization shrinks on
    // the faster generation.
    EXPECT_GT(idle_v3, idle_v2);
    EXPECT_LT(mxu_v3, mxu_v2);
    // Utilization roughly halves (paper: 22.72% -> 11.34%).
    EXPECT_LT(mxu_v3, 0.75 * mxu_v2);
}

TEST(Observations, Six_BottleneckShiftsWithDataset)
{
    const Measured imagenet =
        measure(WorkloadId::ResnetImagenet, TpuGeneration::V2);
    const Measured cifar =
        measure(WorkloadId::ResnetCifar10, TpuGeneration::V2);
    // Same model + methodology, different dataset: utilization
    // collapses and idle rises on CIFAR-10.
    EXPECT_LT(cifar.result.mxu_utilization,
              imagenet.result.mxu_utilization);
    EXPECT_GT(cifar.result.tpu_idle_fraction,
              imagenet.result.tpu_idle_fraction);
}

} // namespace
} // namespace tpupoint

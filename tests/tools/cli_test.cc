/**
 * @file CLI-level tests for the tpupoint-* tools, run as real
 * subprocesses. Pins the error contract — missing inputs and
 * unwritable output paths produce a clear message and a nonzero
 * exit — and the salvage workflow: `tpupoint-analyze --salvage`
 * analyzes a damaged profile reporting exactly what was dropped
 * while the plain invocation refuses it, and `tpupoint-salvage`
 * rewrites the damage away entirely.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#ifdef __unix__
#include <sys/wait.h>
#include <unistd.h>
#endif
#include <sstream>
#include <string>
#include <vector>

#include "core/json.hh"
#include "proto/serialize.hh"
#include "tests/analyzer/synthetic.hh"

namespace tpupoint {
namespace {

struct CommandResult
{
    int exit_code = -1;
    std::string output; ///< Combined stdout + stderr.
};

std::string tempPath(const std::string &name);

/** Run @p command, capturing its combined output. */
CommandResult
run(const std::string &command)
{
    // tempPath prefixes the pid: ctest runs each case as its own
    // process, possibly concurrently, and a shared path races.
    const std::string log = tempPath("cli_test_output.log");
    const int raw = std::system(
        (command + " > '" + log + "' 2>&1").c_str());
    CommandResult result;
#ifdef WEXITSTATUS
    result.exit_code = WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
#else
    result.exit_code = raw;
#endif
    std::ifstream in(log);
    std::ostringstream text;
    text << in.rdbuf();
    result.output = text.str();
    return result;
}

std::string
tempPath(const std::string &name)
{
#ifdef __unix__
    return testing::TempDir() + std::to_string(getpid()) + "." +
        name;
#else
    return testing::TempDir() + name;
#endif
}

/**
 * Write an analyzable profile: the canonical three-phase step
 * sequence, one record per chunk so chunk-level damage maps to
 * whole records.
 */
void
writeProfile(const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out);
    RecordStreamOptions options;
    options.chunk_records = 1;
    RecordStreamWriter framing(out, options);
    const auto steps = testutil::threePhaseRun();
    // Four windows so one dropped chunk still leaves an
    // analyzable majority.
    const std::size_t quarter = steps.size() / 4;
    for (std::uint64_t window = 0; window < 4; ++window) {
        const std::size_t begin = window * quarter;
        const std::size_t end =
            window == 3 ? steps.size() : begin + quarter;
        framing.append(encodeProfileRecord(testutil::makeRecord(
            {steps.begin() + static_cast<std::ptrdiff_t>(begin),
             steps.begin() + static_cast<std::ptrdiff_t>(end)},
            window)));
    }
    framing.finish();
    ASSERT_TRUE(out);
}

/** Flip a payload byte of the @p nth chunk in the file. */
void
corruptChunk(const std::string &path, int nth)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string bytes = buffer.str();
    std::size_t pos = 0;
    for (int i = 0; i <= nth; ++i) {
        pos = bytes.find("CHNK", pos ? pos + 1 : 0);
        ASSERT_NE(pos, std::string::npos);
    }
    const std::size_t payload = pos + 16;
    ASSERT_LT(payload, bytes.size());
    bytes[payload] = static_cast<char>(bytes[payload] ^ 0x5a);
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

TEST(CliTest, AnalyzeMissingProfileFailsClearly)
{
    const auto result = run(std::string(TPUPOINT_ANALYZE_BIN) +
                            " /nonexistent/no.profile");
    EXPECT_NE(result.exit_code, 0);
    EXPECT_NE(result.output.find("cannot open profile"),
              std::string::npos);
}

TEST(CliTest, AnalyzeUnwritableOutputFailsBeforeAnalyzing)
{
    const std::string profile = tempPath("ok.profile");
    writeProfile(profile);
    const auto result =
        run(std::string(TPUPOINT_ANALYZE_BIN) + " '" + profile +
            "' --out /nonexistent/dir/base");
    EXPECT_NE(result.exit_code, 0);
    EXPECT_NE(result.output.find("cannot write output base"),
              std::string::npos);
}

TEST(CliTest, AnalyzeUnknownOptionFailsWithUsage)
{
    const auto result = run(std::string(TPUPOINT_ANALYZE_BIN) +
                            " profile --frobnicate");
    EXPECT_EQ(result.exit_code, 2);
    EXPECT_NE(result.output.find("unknown option"),
              std::string::npos);
}

TEST(CliTest, ProfileUnwritableOutputFailsBeforeRunning)
{
    const auto result =
        run(std::string(TPUPOINT_PROFILE_BIN) +
            " --out /nonexistent/dir/x.profile");
    EXPECT_NE(result.exit_code, 0);
    EXPECT_NE(result.output.find("cannot write"),
              std::string::npos);
}

TEST(CliTest, ProfileRejectsBadFaultRate)
{
    const auto result = run(std::string(TPUPOINT_PROFILE_BIN) +
                            " --fault-error-rate 1.5");
    EXPECT_EQ(result.exit_code, 2);
    EXPECT_NE(result.output.find("--fault-error-rate"),
              std::string::npos);
}

TEST(CliTest, CompareMissingProfileFailsClearly)
{
    const std::string profile = tempPath("cmp.profile");
    writeProfile(profile);
    const auto result = run(std::string(TPUPOINT_COMPARE_BIN) +
                            " '" + profile +
                            "' /nonexistent/no.profile");
    EXPECT_NE(result.exit_code, 0);
    EXPECT_NE(result.output.find("cannot open profile"),
              std::string::npos);
}

TEST(CliTest, SalvageAnalyzeAcceptsWhatPlainAnalyzeRefuses)
{
    const std::string profile = tempPath("damaged.profile");
    writeProfile(profile);
    corruptChunk(profile, 1);

    // Plain analyze refuses the damaged profile...
    const auto plain =
        run(std::string(TPUPOINT_ANALYZE_BIN) + " '" + profile +
            "' --out " + tempPath("plain"));
    EXPECT_NE(plain.exit_code, 0);
    EXPECT_NE(plain.output.find("unreadable profile"),
              std::string::npos);

    // ...--salvage analyzes what survives and reports the loss.
    const auto salvaged =
        run(std::string(TPUPOINT_ANALYZE_BIN) + " '" + profile +
            "' --salvage --out " + tempPath("salvaged"));
    EXPECT_EQ(salvaged.exit_code, 0) << salvaged.output;
    EXPECT_NE(salvaged.output.find("salvage: dropped 1 chunks"),
              std::string::npos)
        << salvaged.output;
    // The artifacts were still written.
    std::ifstream summary(tempPath("salvaged") + ".summary.json");
    EXPECT_TRUE(summary.good());
}

TEST(CliTest, SalvageToolRewritesACleanProfile)
{
    const std::string damaged = tempPath("rewrite.profile");
    const std::string clean = tempPath("rewrite.clean.profile");
    writeProfile(damaged);
    corruptChunk(damaged, 2);

    const auto salvage = run(std::string(TPUPOINT_SALVAGE_BIN) +
                             " '" + damaged + "' '" + clean + "'");
    EXPECT_EQ(salvage.exit_code, 0) << salvage.output;
    EXPECT_NE(salvage.output.find("salvaged 3 records"),
              std::string::npos)
        << salvage.output;
    EXPECT_NE(salvage.output.find("dropped 1 chunks"),
              std::string::npos);

    // The rewritten profile passes plain (non-salvage) analysis.
    const auto analyze =
        run(std::string(TPUPOINT_ANALYZE_BIN) + " '" + clean +
            "' --out " + tempPath("rewritten"));
    EXPECT_EQ(analyze.exit_code, 0) << analyze.output;
}

TEST(CliTest, SalvageToolFailsOnMissingInput)
{
    const auto result =
        run(std::string(TPUPOINT_SALVAGE_BIN) +
            " /nonexistent/no.profile " + tempPath("out.profile"));
    EXPECT_NE(result.exit_code, 0);
    EXPECT_NE(result.output.find("cannot open profile"),
              std::string::npos);
}

TEST(CliTest, ExportWritesValidatedTraceJson)
{
    const std::string profile = tempPath("export.profile");
    const std::string trace = tempPath("export.trace.json");
    writeProfile(profile);

    const auto result = run(std::string(TPUPOINT_EXPORT_BIN) +
                            " '" + profile + "' -o '" + trace +
                            "' --check");
    EXPECT_EQ(result.exit_code, 0) << result.output;
    EXPECT_NE(result.output.find("exported 4 records"),
              std::string::npos)
        << result.output;
    EXPECT_NE(result.output.find("is valid JSON"),
              std::string::npos);

    std::ifstream in(trace);
    ASSERT_TRUE(in.good());
    std::ostringstream text;
    text << in.rdbuf();
    EXPECT_TRUE(validateJson(text.str()));
    EXPECT_NE(text.str().find("\"traceEvents\""),
              std::string::npos);
}

TEST(CliTest, ExportMissingProfileFailsClearly)
{
    const auto result = run(std::string(TPUPOINT_EXPORT_BIN) +
                            " /nonexistent/no.profile");
    EXPECT_NE(result.exit_code, 0);
    EXPECT_NE(result.output.find("cannot open profile"),
              std::string::npos);
}

TEST(CliTest, ExportRejectsMalformedStepRange)
{
    const std::string profile = tempPath("range.profile");
    writeProfile(profile);
    const auto result = run(std::string(TPUPOINT_EXPORT_BIN) +
                            " '" + profile + "' --steps 9:2");
    EXPECT_EQ(result.exit_code, 2);
    EXPECT_NE(result.output.find("--steps"), std::string::npos);
}

TEST(CliTest, ExportSalvagesDamagedProfiles)
{
    const std::string profile = tempPath("export_damaged.profile");
    const std::string trace = tempPath("export_damaged.json");
    writeProfile(profile);
    corruptChunk(profile, 1);

    // Plain export refuses the damaged profile...
    const auto plain = run(std::string(TPUPOINT_EXPORT_BIN) +
                           " '" + profile + "' -o '" + trace + "'");
    EXPECT_NE(plain.exit_code, 0);

    // ...--salvage exports the surviving windows.
    const auto salvaged =
        run(std::string(TPUPOINT_EXPORT_BIN) + " '" + profile +
            "' -o '" + trace + "' --salvage --check");
    EXPECT_EQ(salvaged.exit_code, 0) << salvaged.output;
    EXPECT_NE(salvaged.output.find("exported 3 records"),
              std::string::npos)
        << salvaged.output;
}

TEST(CliTest, ProfileWritesTelemetryDumps)
{
    const std::string profile = tempPath("telemetry.profile");
    const std::string spans = tempPath("telemetry.spans.json");
    const std::string metrics = tempPath("telemetry.metrics.json");
    const auto result =
        run(std::string(TPUPOINT_PROFILE_BIN) +
            " --workload dcgan-mnist --scale 0.02 --steps 40"
            " --out '" + profile + "' --trace-out '" + spans +
            "' --metrics-out '" + metrics + "'");
    EXPECT_EQ(result.exit_code, 0) << result.output;

    for (const std::string &path : {spans, metrics}) {
        std::ifstream in(path);
        ASSERT_TRUE(in.good()) << path;
        std::ostringstream text;
        text << in.rdbuf();
        EXPECT_TRUE(validateJson(text.str())) << path;
    }
    std::ifstream metrics_in(metrics);
    std::ostringstream metrics_text;
    metrics_text << metrics_in.rdbuf();
    EXPECT_NE(metrics_text.str().find("profiler.events_accepted"),
              std::string::npos);
}

TEST(CliTest, SalvageToolFailsWhenNothingSurvives)
{
    // A file with no recoverable chunks at all.
    const std::string junk = tempPath("junk.profile");
    {
        std::ofstream out(junk, std::ios::binary);
        out << "this is not a profile at all, not even close";
    }
    const auto result = run(std::string(TPUPOINT_SALVAGE_BIN) +
                            " '" + junk + "' " +
                            tempPath("junk.clean.profile"));
    EXPECT_NE(result.exit_code, 0);
    EXPECT_NE(result.output.find("nothing salvageable"),
              std::string::npos);
}

// The satellite fix for unchecked atoi: every numeric flag now
// rejects garbage, trailing junk, out-of-range and misplaced
// negatives with a clear message and exit 2 — instead of silently
// parsing "20x" as 20 or "abc" as 0.
TEST(CliTest, NumericFlagsRejectGarbage)
{
    const char *bad_analyze[] = {"--k abc", "--k 3x", "--k -2",
                                 "--k 99999999999999999999",
                                 "--min-samples -1",
                                 "--min-samples 1.5"};
    for (const char *flags : bad_analyze) {
        // The profile path is positional (argv[1]); flags follow.
        const auto result =
            run(std::string(TPUPOINT_ANALYZE_BIN) + " " +
                tempPath("never_read.tpp") + " " + flags);
        EXPECT_EQ(result.exit_code, 2) << flags;
        EXPECT_NE(result.output.find("wants an integer"),
                  std::string::npos)
            << flags << " said: " << result.output;
    }

    const char *bad_profile[] = {"--steps 10x", "--steps junk",
                                 "--steps -5", "--max-attempts 3.5",
                                 "--fault-seed 0x10"};
    for (const char *flags : bad_profile) {
        const auto result =
            run(std::string(TPUPOINT_PROFILE_BIN) + " " + flags +
                " --out " + tempPath("never_written.tpp"));
        EXPECT_EQ(result.exit_code, 2) << flags;
        EXPECT_NE(result.output.find("wants an integer"),
                  std::string::npos)
            << flags << " said: " << result.output;
    }

    const auto threads = run(std::string(TPUPOINT_ANALYZE_BIN) +
                             " " + tempPath("never_read.tpp") +
                             " --threads two");
    EXPECT_EQ(threads.exit_code, 2);
    EXPECT_NE(threads.output.find("wants an integer"),
              std::string::npos);
}

TEST(CliTest, ServeQueryRejectsUnknownSectionAndMissingStatus)
{
    const auto unknown = run(std::string(TPUPOINT_SERVE_BIN) +
                             " --query bogus --status x.json");
    EXPECT_EQ(unknown.exit_code, 2);
    EXPECT_NE(unknown.output.find("unknown query 'bogus'"),
              std::string::npos);

    const std::string absent = tempPath("serve_absent_status.json");
    std::remove(absent.c_str());
    const auto missing = run(std::string(TPUPOINT_SERVE_BIN) +
                             " --query phases --status '" +
                             absent + "'");
    EXPECT_EQ(missing.exit_code, 1);
    EXPECT_NE(missing.output.find("no status file"),
              std::string::npos);

    const auto no_spool = run(std::string(TPUPOINT_SERVE_BIN));
    EXPECT_EQ(no_spool.exit_code, 2);
    EXPECT_NE(no_spool.output.find("--spool"), std::string::npos);
}

TEST(CliTest, ServeDrainsSpoolAndAnswersQueries)
{
    const std::string spool = tempPath("serve_spool");
    std::filesystem::remove_all(spool);
    std::filesystem::create_directories(spool);
    writeProfile(spool + "/run.tpp");
    const std::string status = tempPath("serve_status.json");

    const auto serve = run(std::string(TPUPOINT_SERVE_BIN) +
                           " --spool '" + spool +
                           "' --status-out '" + status +
                           "' --poll-ms 10 --idle-ttl-ms 200"
                           " --threads 1 --drain");
    ASSERT_EQ(serve.exit_code, 0) << serve.output;
    EXPECT_NE(serve.output.find("1 sessions (1 finalized"),
              std::string::npos)
        << serve.output;

    for (const char *section :
         {"phases", "coverage", "sessions", "stats"}) {
        const auto query = run(std::string(TPUPOINT_SERVE_BIN) +
                               " --query " + section +
                               " --status '" + status + "'");
        EXPECT_EQ(query.exit_code, 0)
            << section << ": " << query.output;
        std::string why;
        EXPECT_TRUE(validateJson(query.output, &why))
            << section << ": " << why;
    }
    const auto phases = run(std::string(TPUPOINT_SERVE_BIN) +
                            " --query phases --status '" + status +
                            "'");
    EXPECT_NE(phases.output.find("\"run\""), std::string::npos);
    std::filesystem::remove_all(spool);
}

TEST(CliTest, ServeFlightRecorderAndObservabilityQueries)
{
    const std::string spool = tempPath("serve_obs_spool");
    std::filesystem::remove_all(spool);
    std::filesystem::create_directories(spool);
    writeProfile(spool + "/run.tpp");
    const std::string status = tempPath("serve_obs_status.json");
    const std::string flight = tempPath("serve_obs_flight.json");
    std::remove(flight.c_str());

    const auto serve = run(std::string(TPUPOINT_SERVE_BIN) +
                           " --spool '" + spool +
                           "' --status-out '" + status +
                           "' --flight-out '" + flight +
                           "' --poll-ms 10 --idle-ttl-ms 200"
                           " --threads 1 --drain");
    ASSERT_EQ(serve.exit_code, 0) << serve.output;

    // Health rides in the status document like any other section.
    const auto health = run(std::string(TPUPOINT_SERVE_BIN) +
                            " --query health --status '" + status +
                            "'");
    EXPECT_EQ(health.exit_code, 0) << health.output;
    std::string why;
    EXPECT_TRUE(validateJson(health.output, &why)) << why;
    EXPECT_NE(health.output.find("\"state\": \"ok\""),
              std::string::npos)
        << health.output;

    // Metrics come from the OpenMetrics sibling the daemon
    // published next to the status file.
    const auto metrics = run(std::string(TPUPOINT_SERVE_BIN) +
                             " --query metrics --status '" +
                             status + "'");
    EXPECT_EQ(metrics.exit_code, 0) << metrics.output;
    EXPECT_NE(metrics.output.find(
                  "serve_sessions_finalized_total 1"),
              std::string::npos)
        << metrics.output;
    EXPECT_NE(metrics.output.find("# EOF"), std::string::npos);

    // A clean exit still dumps the flight ring, attributed.
    std::ifstream in(flight, std::ios::binary);
    std::ostringstream doc;
    doc << in.rdbuf();
    ASSERT_FALSE(doc.str().empty());
    EXPECT_TRUE(validateJson(doc.str(), &why)) << why;
    EXPECT_NE(doc.str().find("shutdown: clean exit"),
              std::string::npos);
    std::filesystem::remove_all(spool);
}

TEST(CliTest, ServeRejectsGarbageRobustnessFlagValues)
{
    const char *bad_serve[] = {
        "--max-sessions garbage", "--max-inflight-bytes -1",
        "--quarantine-errors 1.5", "--journal-compact-bytes 0x10",
        "--io-fault-seed junk"};
    for (const char *flags : bad_serve) {
        const auto result =
            run(std::string(TPUPOINT_SERVE_BIN) + " " + flags);
        EXPECT_EQ(result.exit_code, 2) << flags;
        EXPECT_NE(result.output.find("wants an integer"),
                  std::string::npos)
            << flags << " said: " << result.output;
    }

    const auto fault = run(std::string(TPUPOINT_SERVE_BIN) +
                           " --io-fault bad=bogus");
    EXPECT_EQ(fault.exit_code, 2);
    EXPECT_NE(fault.output.find("--io-fault"), std::string::npos)
        << fault.output;
}

TEST(CliTest, ServeJournalSurvivesRestart)
{
    const std::string spool = tempPath("serve_journal_spool");
    std::filesystem::remove_all(spool);
    std::filesystem::create_directories(spool);
    writeProfile(spool + "/run.tpp");
    const std::string status = tempPath("serve_journal_status.json");
    const std::string journal = spool + "/serve.journal";

    const std::string daemon = std::string(TPUPOINT_SERVE_BIN) +
        " --spool '" + spool + "' --status-out '" + status +
        "' --journal '" + journal +
        "' --poll-ms 10 --idle-ttl-ms 200 --threads 1 --drain";
    const auto first = run(daemon);
    ASSERT_EQ(first.exit_code, 0) << first.output;
    EXPECT_NE(first.output.find("1 sessions (1 finalized"),
              std::string::npos)
        << first.output;

    // Restart against the same journal: the finalized session is
    // restored from the journal alone and marked as recovered.
    const auto second = run(daemon);
    ASSERT_EQ(second.exit_code, 0) << second.output;
    EXPECT_NE(second.output.find("1 sessions (1 finalized"),
              std::string::npos)
        << second.output;
    const auto sessions = run(std::string(TPUPOINT_SERVE_BIN) +
                              " --query sessions --status '" +
                              status + "'");
    EXPECT_EQ(sessions.exit_code, 0) << sessions.output;
    EXPECT_NE(sessions.output.find("\"recovered\""),
              std::string::npos)
        << sessions.output;
    std::filesystem::remove_all(spool);
}

TEST(CliTest, ServeMaxSessionsShedsThenFinishesEverySession)
{
    const std::string spool = tempPath("serve_shed_spool");
    std::filesystem::remove_all(spool);
    std::filesystem::create_directories(spool);
    writeProfile(spool + "/aaa.tpp");
    writeProfile(spool + "/bbb.tpp");
    const std::string status = tempPath("serve_shed_status.json");

    // One admission slot for two sessions: the second is shed at
    // the door, re-admitted once the first finishes, and the drain
    // still ends with both finalized.
    const auto serve = run(std::string(TPUPOINT_SERVE_BIN) +
                           " --spool '" + spool +
                           "' --status-out '" + status +
                           "' --max-sessions 1 --poll-ms 10"
                           " --idle-ttl-ms 200 --threads 1"
                           " --drain");
    ASSERT_EQ(serve.exit_code, 0) << serve.output;
    EXPECT_NE(serve.output.find("2 sessions (2 finalized"),
              std::string::npos)
        << serve.output;
    std::filesystem::remove_all(spool);
}

} // namespace
} // namespace tpupoint

/** @file GraphBuilder shape inference and the FLOP/byte cost model. */

#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/builder.hh"

namespace tpupoint {
namespace {

TEST(BuilderTest, InfeedCarriesTensorBytes)
{
    GraphBuilder gb("t", DataType::BF16);
    const NodeId x = gb.infeed(TensorShape{4, 8}, "in");
    const Graph g = gb.finish();
    EXPECT_EQ(g.node(x).kind, OpKind::InfeedDequeueTuple);
    EXPECT_EQ(g.node(x).bytes, 4u * 8 * 2);
    EXPECT_EQ(g.node(x).flops, 0u);
}

TEST(BuilderTest, MatMulFlopsAndShape)
{
    GraphBuilder gb("t", DataType::BF16);
    const NodeId x = gb.infeed(TensorShape{32, 128, 256}, "in");
    const NodeId y = gb.matmul(x, 512, "mm");
    const Graph g = gb.finish();
    // [32*128, 256] x [256, 512]
    EXPECT_EQ(g.node(y).shape, TensorShape({32, 128, 512}));
    EXPECT_EQ(g.node(y).flops,
              2ULL * 32 * 128 * 256 * 512);
    EXPECT_TRUE(g.node(y).mxu);
    // bytes: input + weights + output, all bf16.
    const std::uint64_t expected_bytes =
        (32ULL * 128 * 256 + 256ULL * 512 + 32ULL * 128 * 512) * 2;
    EXPECT_EQ(g.node(y).bytes, expected_bytes);
}

TEST(BuilderTest, BatchMatMulValidatesShapes)
{
    GraphBuilder gb("t", DataType::BF16);
    const NodeId a = gb.infeed(TensorShape{8, 16, 32}, "a");
    const NodeId b = gb.infeed(TensorShape{8, 32, 24}, "b");
    const NodeId c = gb.batchMatmul(a, b, "bmm");
    EXPECT_EQ(gb.outputShape(c), TensorShape({8, 16, 24}));
    const NodeId bad = gb.infeed(TensorShape{8, 31, 24}, "bad");
    EXPECT_THROW(gb.batchMatmul(a, bad, "boom"),
                 std::runtime_error);
    const Graph g = gb.finish();
    EXPECT_EQ(g.node(c).flops, 2ULL * 8 * 16 * 32 * 24);
}

TEST(BuilderTest, Conv2dShapeAndFlops)
{
    GraphBuilder gb("t", DataType::BF16);
    const NodeId x = gb.infeed(TensorShape{2, 32, 32, 16}, "in");
    const NodeId y = gb.conv2d(x, 64, 3, 2, "conv");
    const Graph g = gb.finish();
    EXPECT_EQ(g.node(y).shape, TensorShape({2, 16, 16, 64}));
    EXPECT_EQ(g.node(y).flops,
              2ULL * 2 * 16 * 16 * 64 * 3 * 3 * 16);
    EXPECT_TRUE(g.node(y).mxu);
}

TEST(BuilderTest, Conv2dRejectsNonNhwc)
{
    GraphBuilder gb("t");
    const NodeId x = gb.infeed(TensorShape{2, 32}, "in");
    EXPECT_THROW(gb.conv2d(x, 8, 3, 1, "conv"),
                 std::runtime_error);
}

TEST(BuilderTest, ConvBackpropsMatchForwardFlops)
{
    GraphBuilder gb("t", DataType::BF16);
    const NodeId x = gb.infeed(TensorShape{2, 16, 16, 8}, "in");
    const NodeId y = gb.conv2d(x, 32, 3, 1, "conv");
    const NodeId wg =
        gb.conv2dBackpropFilter(x, y, 3, "conv/wgrad");
    const NodeId ig = gb.conv2dBackpropInput(
        y, TensorShape{2, 16, 16, 8}, 3, "conv/igrad");
    const Graph g = gb.finish();
    EXPECT_EQ(g.node(wg).flops, g.node(y).flops);
    EXPECT_EQ(g.node(ig).shape, TensorShape({2, 16, 16, 8}));
    EXPECT_TRUE(g.node(wg).mxu);
    EXPECT_TRUE(g.node(ig).mxu);
}

TEST(BuilderTest, ReshapeRequiresSameElementCount)
{
    GraphBuilder gb("t");
    const NodeId x = gb.infeed(TensorShape{4, 6}, "in");
    const NodeId y = gb.reshape(x, TensorShape{2, 12}, "ok");
    EXPECT_EQ(gb.outputShape(y), TensorShape({2, 12}));
    EXPECT_THROW(gb.reshape(x, TensorShape{5, 5}, "bad"),
                 std::runtime_error);
    const Graph g = gb.finish();
    // Reshape is a full HBM copy: read + write.
    EXPECT_EQ(g.node(y).bytes, 2u * 4 * 6 * 2);
    EXPECT_EQ(g.node(y).flops, 0u);
}

TEST(BuilderTest, TransposePermutesShape)
{
    GraphBuilder gb("t");
    const NodeId x = gb.infeed(TensorShape{2, 3, 4}, "in");
    const NodeId y = gb.transpose(x, {2, 0, 1}, "tr");
    EXPECT_EQ(gb.outputShape(y), TensorShape({4, 2, 3}));
    EXPECT_THROW(gb.transpose(x, {0, 1}, "bad-rank"),
                 std::runtime_error);
    EXPECT_THROW(gb.transpose(x, {0, 1, 7}, "bad-axis"),
                 std::runtime_error);
    (void)gb.finish();
}

TEST(BuilderTest, ConcatSumsAlongAxis)
{
    GraphBuilder gb("t");
    const NodeId a = gb.infeed(TensorShape{2, 3}, "a");
    const NodeId b = gb.infeed(TensorShape{2, 5}, "b");
    const NodeId c = gb.concat({a, b}, 1, "cat");
    EXPECT_EQ(gb.outputShape(c), TensorShape({2, 8}));
    EXPECT_THROW(gb.concat({}, 0, "empty"), std::runtime_error);
    (void)gb.finish();
}

TEST(BuilderTest, ReduceAllYieldsScalar)
{
    GraphBuilder gb("t");
    const NodeId x = gb.infeed(TensorShape{16, 16}, "in");
    const NodeId s = gb.reduceAll(OpKind::Sum, x, "sum");
    EXPECT_EQ(gb.outputShape(s).rank(), 0u);
    const Graph g = gb.finish();
    EXPECT_EQ(g.node(s).flops, 16u * 16);
}

TEST(BuilderTest, ReduceLastAxisDropsOneDim)
{
    GraphBuilder gb("t");
    const NodeId x = gb.infeed(TensorShape{4, 5, 6}, "in");
    const NodeId r =
        gb.reduceLastAxis(OpKind::BiasAddGrad, x, "bg");
    EXPECT_EQ(gb.outputShape(r), TensorShape({4, 5}));
    (void)gb.finish();
}

TEST(BuilderTest, UnaryCostsScaleWithKind)
{
    GraphBuilder gb("t");
    const NodeId x = gb.infeed(TensorShape{10, 10}, "in");
    const NodeId relu = gb.unary(OpKind::Relu, x, "relu");
    const NodeId tanh = gb.unary(OpKind::Tanh, x, "tanh");
    const Graph g = gb.finish();
    EXPECT_EQ(g.node(relu).flops, 100u);
    EXPECT_EQ(g.node(tanh).flops, 800u); // transcendental
}

TEST(BuilderTest, GatherAppendsWidth)
{
    GraphBuilder gb("t");
    const NodeId ids =
        gb.infeed(TensorShape{8, 128}, "ids", DataType::I32);
    const NodeId emb = gb.gather(ids, 768, "emb");
    EXPECT_EQ(gb.outputShape(emb), TensorShape({8, 128, 768}));
    (void)gb.finish();
}

TEST(BuilderTest, PoolAndUpsample)
{
    GraphBuilder gb("t");
    const NodeId x = gb.infeed(TensorShape{1, 8, 8, 4}, "in");
    const NodeId p = gb.pool(OpKind::MaxPool, x, 2, 2, "pool");
    EXPECT_EQ(gb.outputShape(p), TensorShape({1, 4, 4, 4}));
    const NodeId u = gb.resizeNearest(p, 2, "up");
    EXPECT_EQ(gb.outputShape(u), TensorShape({1, 8, 8, 4}));
    (void)gb.finish();
}

TEST(BuilderTest, AllReduceChargesTwiceParamBytes)
{
    GraphBuilder gb("t");
    const NodeId x = gb.infeed(TensorShape{2}, "in");
    const NodeId ar = gb.allReduce(x, 1000, "ar");
    const Graph g = gb.finish();
    EXPECT_EQ(g.node(ar).kind, OpKind::AllReduce);
    EXPECT_EQ(g.node(ar).bytes, 2u * 1000 * 4);
}

TEST(BuilderTest, OutfeedTakesValueShape)
{
    GraphBuilder gb("t");
    const NodeId x = gb.infeed(TensorShape{3}, "in");
    const NodeId out = gb.outfeed(x, "out");
    const Graph g = gb.finish();
    EXPECT_EQ(g.node(out).kind, OpKind::OutfeedEnqueueTuple);
    EXPECT_EQ(g.node(out).bytes, 3u * 2);
}

} // namespace
} // namespace tpupoint

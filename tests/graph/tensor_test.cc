/** @file Tensor shapes and element types. */

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "graph/tensor.hh"

namespace tpupoint {
namespace {

TEST(DataTypeTest, SizesMatchDefinitions)
{
    EXPECT_EQ(dataTypeSize(DataType::F32), 4u);
    EXPECT_EQ(dataTypeSize(DataType::BF16), 2u);
    EXPECT_EQ(dataTypeSize(DataType::F16), 2u);
    EXPECT_EQ(dataTypeSize(DataType::I32), 4u);
    EXPECT_EQ(dataTypeSize(DataType::I64), 8u);
    EXPECT_EQ(dataTypeSize(DataType::U8), 1u);
    EXPECT_EQ(dataTypeSize(DataType::Bool), 1u);
}

TEST(DataTypeTest, Names)
{
    EXPECT_STREQ(dataTypeName(DataType::BF16), "bf16");
    EXPECT_STREQ(dataTypeName(DataType::I64), "i64");
}

TEST(TensorShapeTest, ScalarHasOneElement)
{
    TensorShape scalar;
    EXPECT_EQ(scalar.rank(), 0u);
    EXPECT_EQ(scalar.numElements(), 1);
    EXPECT_EQ(scalar.numBytes(DataType::F32), 4u);
    EXPECT_EQ(scalar.toString(), "[]");
}

TEST(TensorShapeTest, ElementAndByteCounts)
{
    TensorShape s{32, 128, 768};
    EXPECT_EQ(s.rank(), 3u);
    EXPECT_EQ(s.numElements(), 32 * 128 * 768);
    EXPECT_EQ(s.numBytes(DataType::BF16),
              static_cast<std::uint64_t>(32) * 128 * 768 * 2);
    EXPECT_EQ(s.dim(2), 768);
    EXPECT_EQ(s.toString(), "[32,128,768]");
}

TEST(TensorShapeTest, ZeroDimensionGivesZeroElements)
{
    TensorShape s{4, 0, 2};
    EXPECT_EQ(s.numElements(), 0);
}

TEST(TensorShapeTest, NegativeDimensionRejected)
{
    EXPECT_THROW(TensorShape({-1, 2}), std::runtime_error);
    EXPECT_THROW(
        TensorShape(std::vector<std::int64_t>{3, -7}),
        std::runtime_error);
}

TEST(TensorShapeTest, DimOutOfRangePanics)
{
    TensorShape s{2, 3};
    EXPECT_THROW(s.dim(2), std::logic_error);
}

TEST(TensorShapeTest, Equality)
{
    EXPECT_TRUE(TensorShape({1, 2}) == TensorShape({1, 2}));
    EXPECT_FALSE(TensorShape({1, 2}) == TensorShape({2, 1}));
}

} // namespace
} // namespace tpupoint

/** @file Schedule extraction and infeed/outfeed coalescing. */

#include <gtest/gtest.h>

#include "graph/builder.hh"
#include "graph/schedule.hh"

namespace tpupoint {
namespace {

TEST(ScheduleTest, MultipleInfeedsCoalesceToOne)
{
    GraphBuilder gb("t", DataType::BF16);
    const NodeId a = gb.infeed(TensorShape{2, 4}, "ids",
                               DataType::I32);
    const NodeId b = gb.infeed(TensorShape{2, 4}, "mask",
                               DataType::I32);
    const NodeId sum = gb.binary(OpKind::Add, a, b, "add");
    gb.outfeed(sum, "out");
    const StepSchedule s = extractSchedule(gb.finish());

    int infeed_ops = 0;
    for (const auto &op : s.ops)
        if (op.kind == OpKind::InfeedDequeueTuple)
            ++infeed_ops;
    EXPECT_EQ(infeed_ops, 1);
    // Coalesced byte total covers both tensors.
    EXPECT_EQ(s.infeed_bytes, 2u * (2 * 4 * 4));
    EXPECT_EQ(s.ops.front().kind, OpKind::InfeedDequeueTuple);
    EXPECT_EQ(s.ops.front().bytes, s.infeed_bytes);
}

TEST(ScheduleTest, OutfeedBytesTracked)
{
    GraphBuilder gb("t", DataType::BF16);
    const NodeId x = gb.infeed(TensorShape{8}, "in");
    gb.outfeed(x, "out");
    const StepSchedule s = extractSchedule(gb.finish());
    EXPECT_EQ(s.outfeed_bytes, 8u * 2);
    EXPECT_EQ(s.ops.back().kind, OpKind::OutfeedEnqueueTuple);
}

TEST(ScheduleTest, TotalsAndMxuFlops)
{
    GraphBuilder gb("t");
    const NodeId x = gb.infeed(TensorShape{4, 4}, "in");
    const NodeId mm = gb.matmul(x, 4, "mm");
    const NodeId relu = gb.unary(OpKind::Relu, mm, "relu");
    gb.outfeed(relu, "out");
    const Graph g = gb.finish();
    const StepSchedule s = extractSchedule(g);
    EXPECT_EQ(s.total_flops, g.totalFlops());
    EXPECT_EQ(s.mxu_flops, g.node(mm).flops);
    EXPECT_EQ(s.size(), g.size());
    EXPECT_EQ(s.model, "t");
}

TEST(ScheduleTest, TypeNamesMatchOpKinds)
{
    GraphBuilder gb("t");
    const NodeId x = gb.infeed(TensorShape{4, 4}, "in");
    const NodeId mm = gb.matmul(x, 4, "mm");
    gb.outfeed(mm, "out");
    const StepSchedule s = extractSchedule(gb.finish());
    EXPECT_STREQ(s.ops[1].typeName(), "MatMul");
}

} // namespace
} // namespace tpupoint

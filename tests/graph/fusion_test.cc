/** @file XLA-style fusion pass behaviour. */

#include <gtest/gtest.h>

#include "graph/builder.hh"
#include "graph/fusion.hh"

namespace tpupoint {
namespace {

TEST(FusionTest, ElementwiseChainFusesIntoMatMulRoot)
{
    GraphBuilder gb("t", DataType::BF16);
    const NodeId x = gb.infeed(TensorShape{8, 64}, "in");
    const NodeId mm = gb.matmul(x, 64, "mm");
    const NodeId bias = gb.biasAdd(mm, "bias");
    const NodeId act = gb.unary(OpKind::Relu, bias, "relu");
    gb.outfeed(act, "out");
    const Graph g = gb.finish();

    FusionStats stats;
    const Graph fused = fuseGraph(g, &stats);
    fused.validate();

    EXPECT_EQ(stats.groups_formed, 1u);
    EXPECT_EQ(stats.nodes_fused, 2u); // bias + relu absorbed
    EXPECT_EQ(fused.countKind(OpKind::Fusion), 1u);
    EXPECT_EQ(fused.countKind(OpKind::MatMul), 0u);
    EXPECT_EQ(fused.countKind(OpKind::BiasAdd), 0u);
    // infeed + fusion + outfeed
    EXPECT_EQ(fused.size(), 3u);
    EXPECT_GT(stats.bytes_elided, 0u);
}

TEST(FusionTest, FusionInheritsMxuAndSumsFlops)
{
    GraphBuilder gb("t");
    const NodeId x = gb.infeed(TensorShape{8, 64}, "in");
    const NodeId mm = gb.matmul(x, 64, "mm");
    const NodeId act = gb.unary(OpKind::Relu, mm, "relu");
    gb.outfeed(act, "out");
    const Graph g = gb.finish();
    const std::uint64_t flops_before =
        g.node(mm).flops + g.node(act).flops;

    const Graph fused = fuseGraph(g);
    const Node *fusion_node = nullptr;
    for (const auto &n : fused.nodes())
        if (n.kind == OpKind::Fusion)
            fusion_node = &n;
    ASSERT_NE(fusion_node, nullptr);
    EXPECT_TRUE(fusion_node->mxu);
    EXPECT_EQ(fusion_node->flops, flops_before);
}

TEST(FusionTest, MultiConsumerProducerBlocksFusion)
{
    GraphBuilder gb("t");
    const NodeId x = gb.infeed(TensorShape{8, 8}, "in");
    const NodeId mm = gb.matmul(x, 8, "mm");
    // Two consumers of mm: neither can absorb it.
    const NodeId r1 = gb.unary(OpKind::Relu, mm, "r1");
    const NodeId r2 = gb.unary(OpKind::Tanh, mm, "r2");
    gb.outfeed(r1, "out1");
    gb.outfeed(r2, "out2");
    const Graph fused = fuseGraph(gb.finish());
    // mm must survive as a standalone MatMul.
    EXPECT_EQ(fused.countKind(OpKind::MatMul), 1u);
    EXPECT_EQ(fused.countKind(OpKind::Fusion), 0u);
}

TEST(FusionTest, MemoryOpsDoNotFuse)
{
    GraphBuilder gb("t");
    const NodeId x = gb.infeed(TensorShape{4, 4}, "in");
    const NodeId rs = gb.reshape(x, TensorShape{16}, "rs");
    const NodeId relu = gb.unary(OpKind::Relu, rs, "relu");
    gb.outfeed(relu, "out");
    const Graph fused = fuseGraph(gb.finish());
    // Relu cannot fuse into the reshape (Memory class producer).
    EXPECT_EQ(fused.countKind(OpKind::Reshape), 1u);
    EXPECT_EQ(fused.countKind(OpKind::Relu), 1u);
}

TEST(FusionTest, InfeedBoundaryBlocksFusion)
{
    GraphBuilder gb("t");
    const NodeId x = gb.infeed(TensorShape{4, 4}, "in");
    const NodeId cast = gb.unary(OpKind::Cast, x, "cast");
    gb.outfeed(cast, "out");
    const Graph fused = fuseGraph(gb.finish());
    EXPECT_EQ(fused.countKind(OpKind::Cast), 1u);
    EXPECT_EQ(fused.countKind(OpKind::Fusion), 0u);
}

TEST(FusionTest, LongChainFormsSingleFusion)
{
    GraphBuilder gb("t");
    const NodeId x = gb.infeed(TensorShape{16, 16}, "in");
    NodeId y = gb.matmul(x, 16, "mm");
    y = gb.biasAdd(y, "b");
    y = gb.unary(OpKind::Relu, y, "r");
    y = gb.unary(OpKind::Mul, y, "m");
    y = gb.unary(OpKind::Tanh, y, "t");
    gb.outfeed(y, "out");
    FusionStats stats;
    const Graph fused = fuseGraph(gb.finish(), &stats);
    EXPECT_EQ(stats.groups_formed, 1u);
    EXPECT_EQ(stats.nodes_fused, 4u);
    EXPECT_EQ(fused.size(), 3u);
}

TEST(FusionTest, TotalFlopsPreserved)
{
    // Fusion elides memory traffic but never loses computation.
    GraphBuilder gb("t");
    const NodeId x = gb.infeed(TensorShape{32, 32}, "in");
    NodeId y = gb.matmul(x, 32, "mm1");
    y = gb.unary(OpKind::Relu, y, "r1");
    y = gb.matmul(y, 32, "mm2");
    y = gb.unary(OpKind::Gelu, y, "g1");
    gb.outfeed(y, "out");
    const Graph g = gb.finish();
    const Graph fused = fuseGraph(g);
    EXPECT_EQ(fused.totalFlops(), g.totalFlops());
    EXPECT_LE(fused.totalBytes(), g.totalBytes());
}

TEST(FusionTest, PlainGraphPassesThrough)
{
    GraphBuilder gb("t");
    const NodeId x = gb.infeed(TensorShape{4, 4}, "in");
    const NodeId rs = gb.reshape(x, TensorShape{16}, "rs");
    gb.outfeed(rs, "out");
    FusionStats stats;
    const Graph fused = fuseGraph(gb.finish(), &stats);
    EXPECT_EQ(stats.groups_formed, 0u);
    EXPECT_EQ(stats.nodes_fused, 0u);
    EXPECT_EQ(fused.size(), 3u);
}

} // namespace
} // namespace tpupoint

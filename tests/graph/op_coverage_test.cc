/** @file Exhaustive operator-taxonomy coverage. */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "graph/op.hh"

namespace tpupoint {
namespace {

TEST(OpCoverageTest, EveryKindHasANameAndClass)
{
    std::set<std::string> names;
    for (std::size_t i = 0; i < kNumOpKinds; ++i) {
        const OpKind kind = static_cast<OpKind>(i);
        const char *name = opKindName(kind);
        ASSERT_NE(name, nullptr);
        EXPECT_GT(std::string(name).size(), 0u);
        names.insert(name);
        // opKindClass is total over the enum.
        const OpClass cls = opKindClass(kind);
        EXPECT_TRUE(cls == OpClass::MxuCompute ||
                    cls == OpClass::VectorCompute ||
                    cls == OpClass::Memory ||
                    cls == OpClass::InfeedOutfeed ||
                    cls == OpClass::Collective);
    }
    // Names are unique.
    EXPECT_EQ(names.size(), kNumOpKinds);
}

TEST(OpCoverageTest, MxuKindsAreExactlyTheMatrixOps)
{
    std::size_t mxu_count = 0;
    for (std::size_t i = 0; i < kNumOpKinds; ++i) {
        const OpKind kind = static_cast<OpKind>(i);
        if (isMxuKind(kind)) {
            ++mxu_count;
            EXPECT_EQ(opKindClass(kind), OpClass::MxuCompute);
        }
    }
    // MatMul + Conv2D + the two conv backprops.
    EXPECT_EQ(mxu_count, 4u);
}

TEST(OpCoverageTest, FusableKindsAreVectorCompute)
{
    for (std::size_t i = 0; i < kNumOpKinds; ++i) {
        const OpKind kind = static_cast<OpKind>(i);
        if (isFusableElementwise(kind)) {
            EXPECT_EQ(opKindClass(kind), OpClass::VectorCompute)
                << opKindName(kind);
        }
    }
}

TEST(OpCoverageTest, BoundaryKindsAreNeverFusable)
{
    for (std::size_t i = 0; i < kNumOpKinds; ++i) {
        const OpKind kind = static_cast<OpKind>(i);
        const OpClass cls = opKindClass(kind);
        if (cls == OpClass::InfeedOutfeed ||
            cls == OpClass::Memory ||
            cls == OpClass::Collective ||
            cls == OpClass::MxuCompute) {
            EXPECT_FALSE(isFusableElementwise(kind))
                << opKindName(kind);
        }
    }
}

TEST(OpCoverageTest, TableTwoSpellingsPreserved)
{
    // The profiler's labels must match the paper's Table II
    // spellings exactly (including the lowercase `fusion` and the
    // hyphenated `all-reduce`).
    EXPECT_STREQ(opKindName(OpKind::Fusion), "fusion");
    EXPECT_STREQ(opKindName(OpKind::AllReduce), "all-reduce");
    EXPECT_STREQ(opKindName(OpKind::BiasAddGrad), "BiasAddGrad");
    EXPECT_STREQ(opKindName(OpKind::L2Loss), "L2Loss");
    EXPECT_STREQ(opKindName(OpKind::FusedBatchNormV3),
                 "FusedBatchNormV3");
    EXPECT_STREQ(opKindName(OpKind::Infeed), "Infeed");
    EXPECT_STREQ(opKindName(OpKind::Copy), "Copy");
    EXPECT_STREQ(opKindName(OpKind::Transpose), "Transpose");
    EXPECT_STREQ(opKindName(OpKind::Sum), "Sum");
}

} // namespace
} // namespace tpupoint

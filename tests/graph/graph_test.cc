/** @file Graph IR invariants. */

#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/graph.hh"

namespace tpupoint {
namespace {

Node
makeNode(OpKind kind, std::vector<NodeId> inputs,
         std::uint64_t flops = 10, std::uint64_t bytes = 20)
{
    Node n;
    n.kind = kind;
    n.name = opKindName(kind);
    n.inputs = std::move(inputs);
    n.shape = TensorShape{2, 2};
    n.flops = flops;
    n.bytes = bytes;
    n.mxu = isMxuKind(kind);
    return n;
}

TEST(GraphTest, AddAssignsSequentialIds)
{
    Graph g("test");
    const NodeId a = g.add(makeNode(OpKind::InfeedDequeueTuple, {}));
    const NodeId b = g.add(makeNode(OpKind::MatMul, {a}));
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 1u);
    EXPECT_EQ(g.size(), 2u);
    EXPECT_EQ(g.node(b).inputs[0], a);
    g.validate();
}

TEST(GraphTest, ForwardReferenceRejected)
{
    Graph g("test");
    EXPECT_THROW(g.add(makeNode(OpKind::Relu, {0})),
                 std::logic_error);
    g.add(makeNode(OpKind::InfeedDequeueTuple, {}));
    EXPECT_THROW(g.add(makeNode(OpKind::Relu, {5})),
                 std::logic_error);
}

TEST(GraphTest, NodeLookupOutOfRangePanics)
{
    Graph g("test");
    EXPECT_THROW(g.node(0), std::logic_error);
}

TEST(GraphTest, ConsumerCounts)
{
    Graph g("test");
    const NodeId a = g.add(makeNode(OpKind::InfeedDequeueTuple, {}));
    const NodeId b = g.add(makeNode(OpKind::MatMul, {a}));
    g.add(makeNode(OpKind::Relu, {a, b}));
    const auto counts = g.consumerCounts();
    EXPECT_EQ(counts[a], 2u);
    EXPECT_EQ(counts[b], 1u);
    EXPECT_EQ(counts[2], 0u);
}

TEST(GraphTest, TotalsAndKindCounts)
{
    Graph g("test");
    const NodeId a = g.add(
        makeNode(OpKind::InfeedDequeueTuple, {}, 0, 64));
    g.add(makeNode(OpKind::MatMul, {a}, 100, 32));
    g.add(makeNode(OpKind::MatMul, {a}, 200, 16));
    EXPECT_EQ(g.totalFlops(), 300u);
    EXPECT_EQ(g.totalBytes(), 112u);
    EXPECT_EQ(g.countKind(OpKind::MatMul), 2u);
    EXPECT_EQ(g.countKind(OpKind::Relu), 0u);
}

TEST(OpKindTest, NamesMatchTableII)
{
    EXPECT_STREQ(opKindName(OpKind::Fusion), "fusion");
    EXPECT_STREQ(opKindName(OpKind::AllReduce), "all-reduce");
    EXPECT_STREQ(opKindName(OpKind::Conv2DBackpropFilter),
                 "Conv2DBackpropFilter");
    EXPECT_STREQ(opKindName(OpKind::InfeedDequeueTuple),
                 "InfeedDequeueTuple");
    EXPECT_STREQ(opKindName(OpKind::FusedBatchNormGradV3),
                 "FusedBatchNormGradV3");
}

TEST(OpKindTest, ClassesAndMxu)
{
    EXPECT_TRUE(isMxuKind(OpKind::MatMul));
    EXPECT_TRUE(isMxuKind(OpKind::Conv2DBackpropInput));
    EXPECT_FALSE(isMxuKind(OpKind::Relu));
    EXPECT_EQ(opKindClass(OpKind::Reshape), OpClass::Memory);
    EXPECT_EQ(opKindClass(OpKind::Infeed),
              OpClass::InfeedOutfeed);
    EXPECT_EQ(opKindClass(OpKind::AllReduce),
              OpClass::Collective);
    EXPECT_EQ(opKindClass(OpKind::Softmax),
              OpClass::VectorCompute);
}

TEST(OpKindTest, FusableSetExcludesBoundaries)
{
    EXPECT_TRUE(isFusableElementwise(OpKind::Relu));
    EXPECT_TRUE(isFusableElementwise(OpKind::FusedBatchNormV3));
    EXPECT_TRUE(isFusableElementwise(OpKind::Softmax));
    EXPECT_FALSE(isFusableElementwise(OpKind::MatMul));
    EXPECT_FALSE(isFusableElementwise(OpKind::Reshape));
    EXPECT_FALSE(isFusableElementwise(OpKind::Infeed));
    EXPECT_FALSE(isFusableElementwise(OpKind::ArgMax));
}

} // namespace
} // namespace tpupoint

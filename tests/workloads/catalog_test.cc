/** @file Workload catalog: Table I parameters and scaling. */

#include <gtest/gtest.h>

#include "workloads/catalog.hh"

namespace tpupoint {
namespace {

TEST(CatalogTest, NinePrimaryWorkloads)
{
    EXPECT_EQ(allWorkloads().size(), 9u);
    EXPECT_EQ(reducedWorkloads().size(), 3u);
}

TEST(CatalogTest, NamesAreStable)
{
    EXPECT_STREQ(workloadName(WorkloadId::BertSquad),
                 "BERT-SQuAD");
    EXPECT_STREQ(workloadName(WorkloadId::ResnetImagenet),
                 "ResNet-ImageNet");
    EXPECT_STREQ(workloadName(WorkloadId::RetinanetCocoHalf),
                 "RetinaNet-COCO/2");
}

TEST(CatalogTest, TableOneDefaults)
{
    // DCGAN: batch 1024, 10000 steps, eval every 1000,
    // iterations_per_loop 100.
    const RuntimeWorkload dcgan =
        makeWorkload(WorkloadId::DcganCifar10);
    EXPECT_EQ(dcgan.batch_size, 1024u);
    EXPECT_EQ(dcgan.schedule.train_steps, 10000u);
    EXPECT_EQ(dcgan.schedule.steps_per_eval, 1000u);
    EXPECT_EQ(dcgan.schedule.iterations_per_loop, 100u);

    // BERT: batch 32, 3 epochs.
    const RuntimeWorkload bert =
        makeWorkload(WorkloadId::BertSquad);
    EXPECT_EQ(bert.batch_size, 32u);
    EXPECT_EQ(bert.schedule.train_steps,
              3 * (bert.dataset.num_examples / 32));

    // QANet: 5 epochs x 20000 steps.
    const RuntimeWorkload qanet =
        makeWorkload(WorkloadId::QanetSquad);
    EXPECT_EQ(qanet.schedule.train_steps, 100000u);

    // RetinaNet: batch 64, 15 epochs of 120k examples.
    const RuntimeWorkload retina =
        makeWorkload(WorkloadId::RetinanetCoco);
    EXPECT_EQ(retina.batch_size, 64u);
    EXPECT_EQ(retina.schedule.train_steps,
              15u * (120000 / 64));

    // ResNet: batch 1024, 112590 steps.
    const RuntimeWorkload resnet =
        makeWorkload(WorkloadId::ResnetImagenet);
    EXPECT_EQ(resnet.batch_size, 1024u);
    EXPECT_EQ(resnet.schedule.train_steps, 112590u);
}

TEST(CatalogTest, ScalingShrinksAllCadencesTogether)
{
    WorkloadOptions options;
    options.step_scale = 0.01;
    const RuntimeWorkload full =
        makeWorkload(WorkloadId::ResnetImagenet);
    const RuntimeWorkload scaled =
        makeWorkload(WorkloadId::ResnetImagenet, options);
    EXPECT_EQ(scaled.schedule.train_steps,
              full.schedule.train_steps / 100);
    // Cadences scale by the effective cadence scale: the requested
    // factor floored so the smallest cadence (ResNet's 48-step
    // eval pass) stays at one step — this keeps every overhead
    // ratio intact.
    const double cadence_scale = std::max(
        0.01, 1.0 / static_cast<double>(
            full.schedule.eval_steps));
    EXPECT_EQ(scaled.schedule.steps_per_eval,
              static_cast<std::uint64_t>(
                  static_cast<double>(
                      full.schedule.steps_per_eval) *
                  cadence_scale));
    EXPECT_EQ(scaled.schedule.checkpoint_interval,
              scaled.schedule.steps_per_eval);
    EXPECT_GE(scaled.schedule.eval_steps, 1u);
    EXPECT_LE(scaled.schedule.eval_steps,
              full.schedule.eval_steps);
    // The checkpoint payload shrinks with the cadences.
    EXPECT_LT(scaled.model_bytes, full.model_bytes);
    EXPECT_LT(scaled.fixed_cost_scale, 1.0);
    EXPECT_DOUBLE_EQ(full.fixed_cost_scale, 1.0);
}

TEST(CatalogTest, MaxTrainStepsCaps)
{
    WorkloadOptions options;
    options.max_train_steps = 123;
    const RuntimeWorkload w =
        makeWorkload(WorkloadId::QanetSquad, options);
    EXPECT_EQ(w.schedule.train_steps, 123u);
}

TEST(CatalogTest, SchedulesAreFusedAndCoalesced)
{
    const RuntimeWorkload w =
        makeWorkload(WorkloadId::BertMrpc);
    // Post-fusion schedules contain fusion ops...
    bool has_fusion = false;
    int infeeds = 0;
    for (const auto &op : w.train_schedule.ops) {
        has_fusion |= op.kind == OpKind::Fusion;
        infeeds += op.kind == OpKind::InfeedDequeueTuple;
    }
    EXPECT_TRUE(has_fusion);
    // ...and exactly one coalesced infeed per step.
    EXPECT_EQ(infeeds, 1);
    EXPECT_GT(w.train_schedule.infeed_bytes, 0u);
    EXPECT_GT(w.model_bytes, 0u);
}

TEST(CatalogTest, ResnetCifarKeepsModelChangesDataset)
{
    const RuntimeWorkload imagenet =
        makeWorkload(WorkloadId::ResnetImagenet);
    const RuntimeWorkload cifar =
        makeWorkload(WorkloadId::ResnetCifar10);
    EXPECT_EQ(cifar.dataset.name, "CIFAR10");
    // Same methodology, drastically smaller per-step compute.
    EXPECT_LT(cifar.train_schedule.total_flops,
              imagenet.train_schedule.total_flops / 10);
}

/** Property: every catalog entry builds a consistent workload. */
class CatalogProperty
    : public ::testing::TestWithParam<WorkloadId>
{
};

TEST_P(CatalogProperty, BuildsConsistentWorkload)
{
    WorkloadOptions options;
    options.step_scale = 0.02;
    const RuntimeWorkload w = makeWorkload(GetParam(), options);
    EXPECT_FALSE(w.name.empty());
    EXPECT_GT(w.batch_size, 0u);
    EXPECT_GT(w.schedule.train_steps, 0u);
    EXPECT_GT(w.train_schedule.size(), 0u);
    EXPECT_GT(w.eval_schedule.size(), 0u);
    EXPECT_LT(w.eval_schedule.total_flops,
              w.train_schedule.total_flops);
    EXPECT_GT(w.train_schedule.infeed_bytes, 0u);
    EXPECT_GT(w.train_schedule.mxu_flops, 0u);
    EXPECT_LE(w.schedule.iterations_per_loop,
              std::max<std::uint64_t>(
                  w.schedule.train_steps, 1));
}

INSTANTIATE_TEST_SUITE_P(
    AllEntries, CatalogProperty,
    ::testing::Values(WorkloadId::BertMrpc, WorkloadId::BertSquad,
                      WorkloadId::BertCola, WorkloadId::BertMnli,
                      WorkloadId::DcganCifar10,
                      WorkloadId::DcganMnist,
                      WorkloadId::QanetSquad,
                      WorkloadId::RetinanetCoco,
                      WorkloadId::ResnetImagenet,
                      WorkloadId::QanetSquadHalf,
                      WorkloadId::RetinanetCocoHalf,
                      WorkloadId::ResnetCifar10));

} // namespace
} // namespace tpupoint

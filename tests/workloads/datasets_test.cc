/** @file Dataset catalog fidelity to Table I. */

#include <gtest/gtest.h>

#include "core/types.hh"
#include "workloads/datasets.hh"

namespace tpupoint {
namespace {

TEST(DatasetsTest, SizesMatchTableOne)
{
    EXPECT_EQ(datasets::squad().total_bytes,
              static_cast<std::uint64_t>(422.27 * kMiB));
    EXPECT_EQ(datasets::mrpc().total_bytes,
              static_cast<std::uint64_t>(2.85 * kMiB));
    EXPECT_EQ(datasets::mnli().total_bytes,
              static_cast<std::uint64_t>(430.61 * kMiB));
    EXPECT_EQ(datasets::cola().total_bytes,
              static_cast<std::uint64_t>(1.44 * kMiB));
    EXPECT_EQ(datasets::cifar10().total_bytes,
              static_cast<std::uint64_t>(178.87 * kMiB));
    EXPECT_EQ(datasets::mnist().total_bytes,
              static_cast<std::uint64_t>(56.21 * kMiB));
    EXPECT_EQ(datasets::coco().total_bytes,
              static_cast<std::uint64_t>(48.49 * kGiB));
    EXPECT_EQ(datasets::imagenet().total_bytes,
              static_cast<std::uint64_t>(143.38 * kGiB));
}

TEST(DatasetsTest, KindsMatchContent)
{
    EXPECT_EQ(datasets::squad().kind,
              DatasetKind::TokenizedText);
    EXPECT_EQ(datasets::cifar10().kind, DatasetKind::RawImages);
    EXPECT_EQ(datasets::coco().kind, DatasetKind::JpegImages);
    EXPECT_EQ(datasets::imagenet().kind,
              DatasetKind::JpegImages);
}

TEST(DatasetsTest, ReducedVariantsAreHalved)
{
    const DatasetSpec full = datasets::squad();
    const DatasetSpec half = datasets::squadHalf();
    EXPECT_EQ(half.total_bytes, full.total_bytes / 2);
    EXPECT_EQ(half.num_examples, full.num_examples / 2);
    // Per-example character is unchanged.
    EXPECT_EQ(half.exampleBytes(), full.exampleBytes());

    const DatasetSpec coco_half = datasets::cocoHalf();
    EXPECT_EQ(coco_half.total_bytes,
              datasets::coco().total_bytes / 2);
}

TEST(DatasetsTest, JpegDatasetsExpandOnDecode)
{
    EXPECT_GT(datasets::coco().decode_expansion, 1.0);
    EXPECT_GT(datasets::imagenet().decodedExampleBytes(),
              datasets::imagenet().exampleBytes());
    EXPECT_DOUBLE_EQ(datasets::cifar10().decode_expansion, 1.0);
}

TEST(DatasetsTest, CocoIsTheNoisiest)
{
    // Object-detection inputs vary the most per example.
    EXPECT_GT(datasets::coco().cost_sigma,
              datasets::imagenet().cost_sigma);
    EXPECT_GT(datasets::imagenet().cost_sigma,
              datasets::squad().cost_sigma);
}

TEST(DatasetsTest, ExampleBytesAreReasonable)
{
    // ImageNet averages ~115 KiB per JPEG.
    const std::uint64_t imagenet_example =
        datasets::imagenet().exampleBytes();
    EXPECT_GT(imagenet_example, 80 * kKiB);
    EXPECT_LT(imagenet_example, 200 * kKiB);
    // COCO images are larger (~430 KiB).
    EXPECT_GT(datasets::coco().exampleBytes(),
              imagenet_example);
}

} // namespace
} // namespace tpupoint

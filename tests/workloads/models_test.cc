/** @file Model graph builders: structure, parameters, op mix. */

#include <gtest/gtest.h>

#include "graph/fusion.hh"
#include "workloads/models.hh"

namespace tpupoint {
namespace {

TEST(BertModelTest, ParameterCountMatchesBertBase)
{
    const ModelGraphs graphs = buildBert(32, 128);
    // BERT-Base: ~110M parameters.
    EXPECT_GT(graphs.parameters, 100'000'000u);
    EXPECT_LT(graphs.parameters, 120'000'000u);
    graphs.train.validate();
    graphs.eval.validate();
}

TEST(BertModelTest, TrainGraphHasBackwardOps)
{
    const ModelGraphs graphs = buildBert(8, 64);
    EXPECT_GT(graphs.train.countKind(OpKind::MatMul), 0u);
    EXPECT_GT(graphs.train.countKind(OpKind::LayerNormGrad), 0u);
    EXPECT_GT(graphs.train.countKind(OpKind::AllReduce), 0u);
    EXPECT_EQ(graphs.train.countKind(OpKind::ApplyAdam), 1u);
    // Eval is forward-only.
    EXPECT_EQ(graphs.eval.countKind(OpKind::LayerNormGrad), 0u);
    EXPECT_EQ(graphs.eval.countKind(OpKind::AllReduce), 0u);
    EXPECT_LT(graphs.eval.size(), graphs.train.size());
}

TEST(BertModelTest, AttentionEmitsReshapeAndTranspose)
{
    const ModelGraphs graphs = buildBert(8, 64);
    // Head split/merge creates heavy Reshape/Transpose traffic —
    // the reason those ops top Table II.
    EXPECT_GE(graphs.train.countKind(OpKind::Reshape), 48u);
    EXPECT_GE(graphs.train.countKind(OpKind::Transpose), 36u);
}

TEST(BertModelTest, EvalHasMetricOpsTrainLacks)
{
    const ModelGraphs graphs = buildBert(8, 64);
    EXPECT_GT(graphs.eval.countKind(OpKind::ArgMax), 0u);
    EXPECT_GT(graphs.eval.countKind(OpKind::Equal), 0u);
    EXPECT_EQ(graphs.train.countKind(OpKind::ArgMax), 0u);
    EXPECT_EQ(graphs.train.countKind(OpKind::Equal), 0u);
}

TEST(ResnetModelTest, ParameterCountMatchesResnet50)
{
    const ModelGraphs graphs = buildResnet(32, 224, 1000);
    // ResNet-50: ~25.6M parameters.
    EXPECT_GT(graphs.parameters, 23'000'000u);
    EXPECT_LT(graphs.parameters, 28'000'000u);
}

TEST(ResnetModelTest, HasFiftyThreeConvolutions)
{
    const ModelGraphs graphs = buildResnet(8, 224, 1000);
    // 1 stem + 16 blocks x 3 + 4 projections = 53 convs.
    EXPECT_EQ(graphs.train.countKind(OpKind::Conv2D), 53u);
    EXPECT_EQ(graphs.train.countKind(
                  OpKind::Conv2DBackpropFilter), 53u);
    EXPECT_EQ(graphs.train.countKind(OpKind::FusedBatchNormV3),
              53u);
}

TEST(ResnetModelTest, FlopsScaleWithResolution)
{
    const ModelGraphs small = buildResnet(8, 32, 10);
    const ModelGraphs large = buildResnet(8, 224, 10);
    // 224/32 = 7x linear -> ~49x flops.
    EXPECT_GT(large.train.totalFlops(),
              20 * small.train.totalFlops());
}

TEST(DcganModelTest, GeneratorAndTwoDiscriminatorPasses)
{
    const ModelGraphs graphs = buildDcgan(64, 32, 3);
    graphs.train.validate();
    // Generator upsamples...
    EXPECT_EQ(graphs.train.countKind(
                  OpKind::ResizeNearestNeighbor), 3u);
    // ...and both D(real) and D(fake) contribute convs.
    EXPECT_GE(graphs.train.countKind(OpKind::Conv2D), 9u);
    EXPECT_LT(graphs.parameters, 20'000'000u);
}

TEST(DcganModelTest, MnistPadsTo32)
{
    // 28px MNIST works on the 32px canvas without crashing.
    const ModelGraphs graphs = buildDcgan(64, 28, 3);
    graphs.train.validate();
}

TEST(QanetModelTest, StructureAndScale)
{
    const ModelGraphs graphs = buildQanet(8, 100, 30);
    graphs.train.validate();
    // 21 model-encoder blocks + 2 embedding encoders worth of
    // convolutions.
    EXPECT_GE(graphs.train.countKind(OpKind::Conv2D), 20u);
    EXPECT_GT(graphs.train.countKind(OpKind::Reshape), 100u);
    EXPECT_GT(graphs.parameters, 1'000'000u);
}

TEST(RetinanetModelTest, BackboneFpnAndHeads)
{
    const ModelGraphs graphs = buildRetinanet(4, 256);
    graphs.train.validate();
    // 53 backbone convs + FPN laterals/smoothing + two subnets at
    // five levels.
    EXPECT_GT(graphs.train.countKind(OpKind::Conv2D), 100u);
    // ~36M parameters for the detector.
    EXPECT_GT(graphs.parameters, 25'000'000u);
    EXPECT_LT(graphs.parameters, 90'000'000u);
}

/** Property: every model fuses substantially and keeps flops. */
struct ModelCase
{
    const char *name;
    ModelGraphs (*build)();
};

ModelGraphs buildBertCase() { return buildBert(8, 64); }
ModelGraphs buildDcganCase() { return buildDcgan(32, 32, 3); }
ModelGraphs buildQanetCase() { return buildQanet(8, 100, 30); }
ModelGraphs buildRetinaCase() { return buildRetinanet(2, 256); }
ModelGraphs buildResnetCase() { return buildResnet(8, 64, 100); }

class ModelFusionProperty
    : public ::testing::TestWithParam<ModelCase>
{
};

TEST_P(ModelFusionProperty, FusionShrinksGraphAndKeepsFlops)
{
    const ModelGraphs graphs = GetParam().build();
    FusionStats stats;
    const Graph fused = fuseGraph(graphs.train, &stats);
    fused.validate();
    EXPECT_GT(stats.groups_formed, 0u);
    EXPECT_LT(fused.size(), graphs.train.size());
    EXPECT_EQ(fused.totalFlops(), graphs.train.totalFlops());
    EXPECT_LT(fused.totalBytes(), graphs.train.totalBytes());
    EXPECT_GT(fused.countKind(OpKind::Fusion), 0u);
}

TEST_P(ModelFusionProperty, TrainGraphsHaveInfeedAndOutfeed)
{
    const ModelGraphs graphs = GetParam().build();
    EXPECT_GT(graphs.train.countKind(OpKind::InfeedDequeueTuple),
              0u);
    EXPECT_GT(graphs.train.countKind(
                  OpKind::OutfeedEnqueueTuple), 0u);
    EXPECT_GT(graphs.eval.countKind(OpKind::InfeedDequeueTuple),
              0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ModelFusionProperty,
    ::testing::Values(ModelCase{"bert", buildBertCase},
                      ModelCase{"dcgan", buildDcganCase},
                      ModelCase{"qanet", buildQanetCase},
                      ModelCase{"retinanet", buildRetinaCase},
                      ModelCase{"resnet", buildResnetCase}),
    [](const ::testing::TestParamInfo<ModelCase> &param_info) {
        return param_info.param.name;
    });

} // namespace
} // namespace tpupoint

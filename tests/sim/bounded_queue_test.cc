/** @file Bounded producer/consumer channel semantics. */

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/bounded_queue.hh"

namespace tpupoint {
namespace {

TEST(BoundedQueueTest, ZeroCapacityIsRejected)
{
    Simulator sim;
    EXPECT_THROW(BoundedQueue<int>(sim, 0), std::runtime_error);
}

TEST(BoundedQueueTest, PushThenPopDelivers)
{
    Simulator sim;
    BoundedQueue<int> q(sim, 2);
    bool accepted = false;
    int got = 0;
    q.push(42, [&] { accepted = true; });
    q.pop([&](int v) { got = v; });
    sim.run();
    EXPECT_TRUE(accepted);
    EXPECT_EQ(got, 42);
    EXPECT_TRUE(q.empty());
}

TEST(BoundedQueueTest, PopBeforePushParksConsumer)
{
    Simulator sim;
    BoundedQueue<int> q(sim, 1);
    int got = 0;
    q.pop([&](int v) { got = v; });
    EXPECT_EQ(q.blockedConsumers(), 1u);
    q.push(7, nullptr);
    sim.run();
    EXPECT_EQ(got, 7);
    EXPECT_EQ(q.blockedConsumers(), 0u);
}

TEST(BoundedQueueTest, FullQueueParksProducer)
{
    Simulator sim;
    BoundedQueue<int> q(sim, 1);
    int accepted = 0;
    q.push(1, [&] { ++accepted; });
    q.push(2, [&] { ++accepted; });
    sim.run();
    EXPECT_EQ(accepted, 1);
    EXPECT_EQ(q.blockedProducers(), 1u);
    EXPECT_TRUE(q.full());

    int got = 0;
    q.pop([&](int v) { got = v; });
    sim.run();
    EXPECT_EQ(got, 1);
    EXPECT_EQ(accepted, 2); // parked producer admitted
    EXPECT_EQ(q.blockedProducers(), 0u);
    EXPECT_EQ(q.size(), 1u);
}

TEST(BoundedQueueTest, FifoOrderPreserved)
{
    Simulator sim;
    BoundedQueue<int> q(sim, 4);
    for (int i = 0; i < 4; ++i)
        q.push(i, nullptr);
    std::vector<int> got;
    for (int i = 0; i < 4; ++i)
        q.pop([&](int v) { got.push_back(v); });
    sim.run();
    EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3}));
}

TEST(BoundedQueueTest, InterleavedProducersAndConsumers)
{
    Simulator sim;
    BoundedQueue<int> q(sim, 2);
    std::vector<int> got;
    // Producer chain: pushes 0..9 as fast as accepted.
    std::function<void(int)> produce = [&](int i) {
        if (i >= 10)
            return;
        q.push(i, [&produce, i] { produce(i + 1); });
    };
    // Consumer chain drains with a 5ns think time.
    std::function<void()> consume = [&]() {
        q.pop([&](int v) {
            got.push_back(v);
            if (v < 9)
                sim.schedule(5, consume);
        });
    };
    produce(0);
    consume();
    sim.run();
    ASSERT_EQ(got.size(), 10u);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
}

TEST(BoundedQueueTest, SetCapacityGrowAdmitsParkedProducers)
{
    Simulator sim;
    BoundedQueue<int> q(sim, 1);
    int accepted = 0;
    q.push(1, [&] { ++accepted; });
    q.push(2, [&] { ++accepted; });
    q.push(3, [&] { ++accepted; });
    sim.run();
    EXPECT_EQ(accepted, 1);
    q.setCapacity(3);
    sim.run();
    EXPECT_EQ(accepted, 3);
    EXPECT_EQ(q.size(), 3u);
}

TEST(BoundedQueueTest, SetCapacityShrinkDrainsNaturally)
{
    Simulator sim;
    BoundedQueue<int> q(sim, 3);
    for (int i = 0; i < 3; ++i)
        q.push(i, nullptr);
    sim.run();
    q.setCapacity(1);
    EXPECT_EQ(q.size(), 3u); // existing items stay
    int got = -1;
    q.pop([&](int v) { got = v; });
    sim.run();
    EXPECT_EQ(got, 0);
    EXPECT_EQ(q.size(), 2u);
    EXPECT_TRUE(q.full()); // still above the new capacity
}

TEST(BoundedQueueTest, SetCapacityZeroRejected)
{
    Simulator sim;
    BoundedQueue<int> q(sim, 1);
    EXPECT_THROW(q.setCapacity(0), std::runtime_error);
}

TEST(BoundedQueueTest, StructPayloadSurvivesHandoff)
{
    struct Payload
    {
        int id;
        std::vector<int> data;
    };
    Simulator sim;
    BoundedQueue<Payload> q(sim, 1);
    q.push(Payload{3, {1, 2, 3}}, nullptr);
    Payload got{};
    q.pop([&](Payload p) { got = std::move(p); });
    sim.run();
    EXPECT_EQ(got.id, 3);
    EXPECT_EQ(got.data.size(), 3u);
}

} // namespace
} // namespace tpupoint

/**
 * @file Randomized model-based tests: the event queue against a
 * sorted reference, and the bounded queue against a plain deque
 * model, under thousands of seeded random operations.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "core/rng.hh"
#include "sim/bounded_queue.hh"
#include "sim/event_queue.hh"

namespace tpupoint {
namespace {

/** EventQueue behaves like a stable sort by (time, insertion). */
class EventQueueModelProperty
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(EventQueueModelProperty, MatchesStableSortReference)
{
    Rng rng(GetParam());
    EventQueue queue;
    struct Expected
    {
        SimTime when;
        std::uint64_t order;
        int tag;
        EventId id;
        bool cancelled = false;
    };
    std::vector<Expected> reference;
    std::vector<int> fired;

    for (int i = 0; i < 500; ++i) {
        const SimTime when =
            static_cast<SimTime>(rng.nextBounded(100));
        const int tag = i;
        const EventId id = queue.schedule(
            when, [&fired, tag] { fired.push_back(tag); });
        reference.push_back(
            {when, static_cast<std::uint64_t>(i), tag, id});
    }
    // Cancel ~20% at random.
    for (auto &entry : reference) {
        if (rng.bernoulli(0.2)) {
            EXPECT_TRUE(queue.cancel(entry.id));
            entry.cancelled = true;
        }
    }

    while (!queue.empty())
        queue.pop().second();

    std::vector<Expected> live;
    for (const auto &entry : reference)
        if (!entry.cancelled)
            live.push_back(entry);
    std::stable_sort(live.begin(), live.end(),
                     [](const Expected &a, const Expected &b) {
                         return a.when < b.when;
                     });
    ASSERT_EQ(fired.size(), live.size());
    for (std::size_t i = 0; i < live.size(); ++i)
        EXPECT_EQ(fired[i], live[i].tag);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueModelProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21,
                                           34));

/** BoundedQueue delivers every item exactly once, in FIFO order,
 * never holding more than its capacity. */
class BoundedQueueModelProperty
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(BoundedQueueModelProperty, FifoExactlyOnceWithinCapacity)
{
    Rng rng(GetParam());
    Simulator sim;
    const std::size_t capacity = 1 + rng.nextBounded(5);
    BoundedQueue<int> queue(sim, capacity);

    const int total = 300;
    std::vector<int> received;

    // Producer: push items back to back; randomized think time.
    std::function<void(int)> produce = [&](int value) {
        if (value >= total)
            return;
        const SimTime think =
            static_cast<SimTime>(rng.nextBounded(4));
        sim.schedule(think, [&, value] {
            queue.push(value,
                       [&produce, value] { produce(value + 1); });
        });
    };
    // Consumer: randomized service time.
    std::function<void()> consume = [&]() {
        queue.pop([&](int value) {
            EXPECT_LE(queue.size(), capacity);
            received.push_back(value);
            if (static_cast<int>(received.size()) < total) {
                const SimTime service =
                    static_cast<SimTime>(rng.nextBounded(6));
                sim.schedule(service, consume);
            }
        });
    };
    produce(0);
    consume();
    sim.run();

    ASSERT_EQ(received.size(), static_cast<std::size_t>(total));
    for (int i = 0; i < total; ++i)
        EXPECT_EQ(received[static_cast<std::size_t>(i)], i);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundedQueueModelProperty,
                         ::testing::Values(11, 22, 33, 44, 55,
                                           66));

} // namespace
} // namespace tpupoint

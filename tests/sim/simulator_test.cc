/** @file Simulator clock semantics. */

#include <gtest/gtest.h>

#include <functional>
#include <stdexcept>
#include <vector>

#include "sim/simulator.hh"

namespace tpupoint {
namespace {

TEST(SimulatorTest, ClockAdvancesToEventTimes)
{
    Simulator sim;
    std::vector<SimTime> seen;
    sim.schedule(100, [&] { seen.push_back(sim.now()); });
    sim.schedule(50, [&] { seen.push_back(sim.now()); });
    const auto executed = sim.run();
    EXPECT_EQ(executed, 2u);
    EXPECT_EQ(seen, (std::vector<SimTime>{50, 100}));
    EXPECT_EQ(sim.now(), 100);
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents)
{
    Simulator sim;
    int fired = 0;
    std::function<void()> chain = [&]() {
        ++fired;
        if (fired < 5)
            sim.schedule(10, chain);
    };
    sim.schedule(10, chain);
    sim.run();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(sim.now(), 50);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(10, [&] { ++fired; });
    sim.schedule(20, [&] { ++fired; });
    sim.schedule(30, [&] { ++fired; });
    const auto executed = sim.runUntil(20);
    EXPECT_EQ(executed, 2u); // deadline-stamped events still run
    EXPECT_EQ(sim.now(), 20);
    EXPECT_FALSE(sim.idle());
    sim.run();
    EXPECT_EQ(fired, 3);
}

TEST(SimulatorTest, StopInterruptsRun)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(1, [&] {
        ++fired;
        sim.stop();
    });
    sim.schedule(2, [&] { ++fired; });
    sim.run();
    EXPECT_EQ(fired, 1);
    // A later run resumes the remaining events.
    sim.run();
    EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, NegativeDelayPanics)
{
    Simulator sim;
    EXPECT_THROW(sim.schedule(-1, [] {}), std::logic_error);
}

TEST(SimulatorTest, ScheduleAtPastPanics)
{
    Simulator sim;
    sim.schedule(100, [] {});
    sim.run();
    EXPECT_THROW(sim.scheduleAt(50, [] {}), std::logic_error);
}

TEST(SimulatorTest, CancelPreventsExecution)
{
    Simulator sim;
    bool fired = false;
    const EventId id = sim.schedule(5, [&] { fired = true; });
    EXPECT_TRUE(sim.cancel(id));
    sim.run();
    EXPECT_FALSE(fired);
}

TEST(SimulatorTest, EventsExecutedAccumulates)
{
    Simulator sim;
    for (int i = 0; i < 7; ++i)
        sim.schedule(i, [] {});
    sim.run();
    EXPECT_EQ(sim.eventsExecuted(), 7u);
    sim.schedule(1, [] {});
    sim.run();
    EXPECT_EQ(sim.eventsExecuted(), 8u);
}

} // namespace
} // namespace tpupoint

/**
 * @file FaultPlan: the deterministic, seeded transient-fault
 * schedule. Sampling must replay bit-for-bit for a fixed seed,
 * respect window boundaries, and hit configured rates closely
 * enough to drive the storage retry machinery.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/logging.hh"
#include "sim/fault.hh"

namespace tpupoint {
namespace {

TEST(FaultPlanTest, QuietPlanNeverInjects)
{
    FaultPlan quiet;
    EXPECT_FALSE(quiet.enabled());
    for (int i = 0; i < 1000; ++i) {
        const FaultDecision d = quiet.sample(i * kMsec);
        EXPECT_EQ(d.kind, FaultKind::None);
        EXPECT_FALSE(d.failed());
    }
    EXPECT_EQ(quiet.injectedTotal(), 0u);
    EXPECT_EQ(quiet.samples(), 1000u);
}

TEST(FaultPlanTest, SamplingIsDeterministicForAFixedSeed)
{
    const FaultSpec spec =
        FaultSpec::uniform(0.05, 0.05, 0.05);
    FaultPlan a(spec, 1234);
    FaultPlan b(spec, 1234);
    for (int i = 0; i < 5000; ++i) {
        const FaultDecision da = a.sample(i * kUsec);
        const FaultDecision db = b.sample(i * kUsec);
        ASSERT_EQ(da.kind, db.kind);
        ASSERT_EQ(da.extra_latency, db.extra_latency);
        ASSERT_EQ(da.completed_fraction, db.completed_fraction);
    }
    EXPECT_EQ(a.injectedTotal(), b.injectedTotal());
    EXPECT_GT(a.injectedTotal(), 0u);
    // Jitter draws come from the same stream and agree too.
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(a.jitter(), b.jitter());
}

TEST(FaultPlanTest, DifferentSeedsDiverge)
{
    const FaultSpec spec = FaultSpec::uniform(0.2);
    FaultPlan a(spec, 1);
    FaultPlan b(spec, 2);
    int disagreements = 0;
    for (int i = 0; i < 2000; ++i) {
        if (a.sample(0).kind != b.sample(0).kind)
            ++disagreements;
    }
    EXPECT_GT(disagreements, 0);
}

TEST(FaultPlanTest, SpecSeedOverridesFallback)
{
    FaultSpec spec = FaultSpec::uniform(0.2);
    spec.seed = 42;
    FaultPlan a(spec, 1);
    FaultPlan b(spec, 2);
    for (int i = 0; i < 2000; ++i)
        ASSERT_EQ(a.sample(0).kind, b.sample(0).kind);
}

TEST(FaultPlanTest, ErrorRateIsApproximatelyHonored)
{
    const FaultSpec spec = FaultSpec::uniform(0.10);
    FaultPlan plan(spec, 7);
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        plan.sample(0);
    const double rate =
        static_cast<double>(
            plan.injected(FaultKind::TransientError)) / n;
    EXPECT_NEAR(rate, 0.10, 0.01);
    EXPECT_EQ(plan.injected(FaultKind::LatencySpike), 0u);
    EXPECT_EQ(plan.injected(FaultKind::StreamReset), 0u);
}

TEST(FaultPlanTest, WindowsKeyToSimulatedTime)
{
    FaultWindow brownout;
    brownout.begin = 10 * kSec;
    brownout.end = 20 * kSec;
    brownout.error_rate = 1.0;
    FaultSpec spec;
    spec.windows.push_back(brownout);
    EXPECT_TRUE(spec.enabled());

    FaultPlan plan(spec, 99);
    EXPECT_EQ(plan.sample(9 * kSec).kind, FaultKind::None);
    EXPECT_EQ(plan.sample(10 * kSec).kind,
              FaultKind::TransientError);
    EXPECT_EQ(plan.sample(19 * kSec).kind,
              FaultKind::TransientError);
    EXPECT_EQ(plan.sample(20 * kSec).kind, FaultKind::None);
}

TEST(FaultPlanTest, DecisionShapesMatchTheirKinds)
{
    const FaultSpec spikes = FaultSpec::uniform(0, 1.0, 0);
    FaultPlan spike_plan(spikes, 3);
    for (int i = 0; i < 200; ++i) {
        const FaultDecision d = spike_plan.sample(0);
        ASSERT_EQ(d.kind, FaultKind::LatencySpike);
        EXPECT_FALSE(d.failed());
        EXPECT_GE(d.extra_latency, 0);
    }

    const FaultSpec resets = FaultSpec::uniform(0, 0, 1.0);
    FaultPlan reset_plan(resets, 3);
    for (int i = 0; i < 200; ++i) {
        const FaultDecision d = reset_plan.sample(0);
        ASSERT_EQ(d.kind, FaultKind::StreamReset);
        EXPECT_TRUE(d.failed());
        EXPECT_GE(d.completed_fraction, 0.0);
        EXPECT_LT(d.completed_fraction, 1.0);
    }
}

TEST(FaultPlanTest, InvalidSpecsAreRejected)
{
    FaultSpec bad_rate = FaultSpec::uniform(1.5);
    EXPECT_THROW(FaultPlan(bad_rate, 1), std::runtime_error);

    FaultSpec bad_window = FaultSpec::uniform(0.1);
    bad_window.windows[0].begin = 10 * kSec;
    bad_window.windows[0].end = 5 * kSec;
    EXPECT_THROW(FaultPlan(bad_window, 1), std::runtime_error);
}

TEST(FaultPlanTest, SummaryCountsInjections)
{
    FaultPlan plan(FaultSpec::uniform(1.0), 5);
    plan.sample(0);
    plan.sample(0);
    EXPECT_EQ(plan.injected(FaultKind::TransientError), 2u);
    EXPECT_EQ(plan.summary(),
              "errors=2 spikes=0 resets=0 of 2 samples");
}

TEST(PreemptionPlanTest, QuietPlanNeverFires)
{
    PreemptionPlan quiet;
    EXPECT_FALSE(quiet.enabled());
    EXPECT_EQ(quiet.poll(kTimeForever), nullptr);
    EXPECT_EQ(quiet.triggered(), 0u);
}

TEST(PreemptionPlanTest, ExplicitEventsSortAndConsumeInOrder)
{
    PreemptionSpec spec;
    spec.events.push_back(
        {20 * kSec, PreemptionKind::Maintenance});
    spec.events.push_back({5 * kSec, PreemptionKind::Eviction});
    PreemptionPlan plan(spec, 1);

    ASSERT_EQ(plan.events().size(), 2u);
    EXPECT_EQ(plan.events()[0].at, 5 * kSec);
    EXPECT_EQ(plan.events()[1].at, 20 * kSec);

    EXPECT_EQ(plan.poll(4 * kSec), nullptr);
    // Both events have landed by t=25s: poll consumes the earliest
    // first, one per call — a consumed event never fires twice.
    const PreemptionEvent *first = plan.poll(25 * kSec);
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(first->at, 5 * kSec);
    EXPECT_EQ(first->kind, PreemptionKind::Eviction);
    const PreemptionEvent *second = plan.poll(25 * kSec);
    ASSERT_NE(second, nullptr);
    EXPECT_EQ(second->at, 20 * kSec);
    EXPECT_EQ(second->kind, PreemptionKind::Maintenance);
    EXPECT_EQ(plan.poll(kTimeForever), nullptr);
    EXPECT_EQ(plan.triggered(), 2u);
    EXPECT_EQ(plan.summary(), "2 scheduled, 2 triggered, "
                              "0 discarded");
}

TEST(PreemptionPlanTest, DiscardUntilDropsWithoutFiring)
{
    PreemptionSpec spec;
    spec.events.push_back({5 * kSec, PreemptionKind::Eviction});
    spec.events.push_back({20 * kSec, PreemptionKind::Eviction});
    PreemptionPlan plan(spec, 1);

    plan.discardUntil(10 * kSec);
    EXPECT_EQ(plan.discarded(), 1u);
    const PreemptionEvent *next = plan.poll(kTimeForever);
    ASSERT_NE(next, nullptr);
    EXPECT_EQ(next->at, 20 * kSec);
    EXPECT_EQ(plan.triggered(), 1u);
}

TEST(PreemptionPlanTest, PoissonScheduleIsDeterministic)
{
    const PreemptionSpec spec = PreemptionSpec::poisson(2.0, 77);
    PreemptionPlan a(spec, 1);
    PreemptionPlan b(spec, 2); // spec seed overrides the fallback
    ASSERT_FALSE(a.events().empty());
    ASSERT_EQ(a.events().size(), b.events().size());
    for (std::size_t i = 0; i < a.events().size(); ++i) {
        EXPECT_EQ(a.events()[i].at, b.events()[i].at);
        EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
        if (i > 0)
            EXPECT_GE(a.events()[i].at, a.events()[i - 1].at);
    }
    // Backoff jitter comes from the same seeded stream.
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(a.jitter(), b.jitter());

    PreemptionPlan c(PreemptionSpec::poisson(2.0, 78), 1);
    const bool identical =
        a.events().size() == c.events().size() &&
        a.events()[0].at == c.events()[0].at;
    EXPECT_FALSE(identical);
}

TEST(PreemptionPlanTest, PoissonRateIsApproximatelyHonored)
{
    // 2 arrivals per hour over the default 30-day horizon: expect
    // about 1440 events.
    PreemptionPlan plan(PreemptionSpec::poisson(2.0, 9), 1);
    EXPECT_GT(plan.events().size(), 1200u);
    EXPECT_LT(plan.events().size(), 1700u);
}

TEST(PreemptionPlanTest, InvalidSpecsAreRejected)
{
    PreemptionSpec negative_rate;
    negative_rate.rate_per_hour = -1.0;
    EXPECT_THROW(PreemptionPlan(negative_rate, 1),
                 std::runtime_error);

    PreemptionSpec bad_share = PreemptionSpec::poisson(1.0);
    bad_share.maintenance_share = 1.5;
    EXPECT_THROW(PreemptionPlan(bad_share, 1),
                 std::runtime_error);
}

} // namespace
} // namespace tpupoint

/** @file Event-queue ordering, ties and cancellation. */

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/event_queue.hh"

namespace tpupoint {
namespace {

TEST(EventQueueTest, StartsEmpty)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
    EXPECT_EQ(q.nextTime(), kTimeForever);
}

TEST(EventQueueTest, PopsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    while (!q.empty()) {
        auto [when, fn] = q.pop();
        fn();
    }
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EqualTimesFireInInsertionOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    while (!q.empty())
        q.pop().second();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, CancelRemovesEvent)
{
    EventQueue q;
    bool fired = false;
    const EventId id = q.schedule(1, [&] { fired = true; });
    EXPECT_TRUE(q.cancel(id));
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(q.cancel(id)); // second cancel is a no-op
    EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelMiddleEventSkipsIt)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(1, [&] { order.push_back(1); });
    const EventId id = q.schedule(2, [&] { order.push_back(2); });
    q.schedule(3, [&] { order.push_back(3); });
    q.cancel(id);
    while (!q.empty())
        q.pop().second();
    EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueueTest, NextTimeSkipsCancelled)
{
    EventQueue q;
    const EventId early = q.schedule(1, [] {});
    q.schedule(9, [] {});
    q.cancel(early);
    EXPECT_EQ(q.nextTime(), 9);
}

TEST(EventQueueTest, PopEmptyPanics)
{
    EventQueue q;
    EXPECT_THROW(q.pop(), std::logic_error);
}

TEST(EventQueueTest, NullCallbackPanics)
{
    EventQueue q;
    EXPECT_THROW(q.schedule(0, EventQueue::Callback{}),
                 std::logic_error);
}

TEST(EventQueueTest, SizeTracksLiveEvents)
{
    EventQueue q;
    const EventId a = q.schedule(1, [] {});
    q.schedule(2, [] {});
    EXPECT_EQ(q.size(), 2u);
    q.cancel(a);
    EXPECT_EQ(q.size(), 1u);
    q.pop();
    EXPECT_EQ(q.size(), 0u);
}

} // namespace
} // namespace tpupoint

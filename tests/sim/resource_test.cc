/** @file Counted-resource acquisition semantics. */

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/resource.hh"

namespace tpupoint {
namespace {

TEST(ResourceTest, ZeroUnitsRejected)
{
    Simulator sim;
    EXPECT_THROW(Resource(sim, 0), std::runtime_error);
}

TEST(ResourceTest, GrantsUpToCapacity)
{
    Simulator sim;
    Resource r(sim, 2);
    int granted = 0;
    r.acquire([&] { ++granted; });
    r.acquire([&] { ++granted; });
    r.acquire([&] { ++granted; });
    sim.run();
    EXPECT_EQ(granted, 2);
    EXPECT_EQ(r.waiting(), 1u);
    EXPECT_EQ(r.freeUnits(), 0u);
}

TEST(ResourceTest, ReleaseWakesOldestWaiter)
{
    Simulator sim;
    Resource r(sim, 1);
    std::vector<int> order;
    r.acquire([&] { order.push_back(0); });
    r.acquire([&] { order.push_back(1); });
    r.acquire([&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{0}));
    r.release();
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
    r.release();
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(ResourceTest, OverReleasePanics)
{
    Simulator sim;
    Resource r(sim, 1);
    EXPECT_THROW(r.release(), std::logic_error);
}

TEST(ResourceTest, UseHoldsForDuration)
{
    Simulator sim;
    Resource r(sim, 1);
    SimTime first_done = 0, second_done = 0;
    r.use(100, [&] { first_done = sim.now(); });
    r.use(50, [&] { second_done = sim.now(); });
    sim.run();
    EXPECT_EQ(first_done, 100);
    // The second use waits for the first to release.
    EXPECT_EQ(second_done, 150);
    EXPECT_EQ(r.freeUnits(), 1u);
}

TEST(ResourceTest, ParallelUnitsOverlap)
{
    Simulator sim;
    Resource r(sim, 2);
    SimTime a = 0, b = 0;
    r.use(100, [&] { a = sim.now(); });
    r.use(100, [&] { b = sim.now(); });
    sim.run();
    EXPECT_EQ(a, 100);
    EXPECT_EQ(b, 100); // ran concurrently on two units
}

} // namespace
} // namespace tpupoint

/** @file Program analysis: adjustable-parameter discovery. */

#include <gtest/gtest.h>

#include "optimizer/program_analysis.hh"
#include "workloads/catalog.hh"

namespace tpupoint {
namespace {

TEST(ProgramAnalysisTest, DefaultConfigAllAdjustable)
{
    const RuntimeWorkload w = makeWorkload(WorkloadId::BertSquad);
    const ProgramAnalysis analysis = analyzeProgram(
        w, PipelineConfig{}, HostSpec::standard());
    EXPECT_EQ(analysis.adjustable.size(), 5u);
    EXPECT_TRUE(analysis.rejected.empty());
    EXPECT_FALSE(analysis.instrumentation_points.empty());
}

TEST(ProgramAnalysisTest, ParamsThatErrorAreNotAdjustable)
{
    // CoLA has only 8551 examples; a config already shuffling the
    // whole dataset cannot move the shuffle buffer anywhere valid
    // upward, but halving stays available — so it remains
    // adjustable. Pin it to 1 to block the downward move too.
    WorkloadOptions options;
    const RuntimeWorkload w =
        makeWorkload(WorkloadId::BertCola, options);
    PipelineConfig config;
    config.shuffle_buffer = 8551; // == dataset size
    ProgramAnalysis analysis =
        analyzeProgram(w, config, HostSpec::standard());
    // Doubling overflows the dataset, but halving is valid.
    EXPECT_TRUE(std::count(analysis.adjustable.begin(),
                           analysis.adjustable.end(),
                           TunableParam::ShuffleBuffer));

    // A parameter pinned at its only valid value is rejected.
    config.shuffle_buffer = 1;
    // Halving is impossible; doubling to 2 is valid, so still
    // adjustable — use a dataset of a single example to pin it.
    RuntimeWorkload tiny = w;
    tiny.dataset.num_examples = 1;
    analysis = analyzeProgram(tiny, config, HostSpec::standard());
    EXPECT_TRUE(std::count(analysis.rejected.begin(),
                           analysis.rejected.end(),
                           TunableParam::ShuffleBuffer));
}

TEST(ProgramAnalysisTest, InstrumentationCoversPipelineStages)
{
    const RuntimeWorkload w =
        makeWorkload(WorkloadId::DcganMnist);
    const ProgramAnalysis analysis = analyzeProgram(
        w, PipelineConfig{}, HostSpec::standard());
    bool has_map = false, has_step = false;
    for (const auto &point : analysis.instrumentation_points) {
        has_map |= point == "dataset.map";
        has_step |= point == "train.step";
    }
    EXPECT_TRUE(has_map);
    EXPECT_TRUE(has_step);
}

} // namespace
} // namespace tpupoint

/** @file Online tuner behaviour on live sessions. */

#include <gtest/gtest.h>

#include "optimizer/tuner.hh"
#include "workloads/catalog.hh"

namespace tpupoint {
namespace {

RuntimeWorkload
tunableWorkload()
{
    // A COCO-fed workload whose naive pipeline starves the TPU.
    WorkloadOptions options;
    options.step_scale = 0.02;
    options.max_train_steps = 500;
    return makeWorkload(WorkloadId::RetinanetCoco, options);
}

struct Rig
{
    Simulator sim;
    RuntimeWorkload workload = tunableWorkload();
    SessionConfig config;
    std::unique_ptr<TrainingSession> session;
    std::unique_ptr<TpuPointProfiler> profiler;
    std::unique_ptr<OnlineTuner> tuner;

    explicit Rig(const PipelineConfig &pipeline,
                 const TunerOptions &options = TunerOptions{})
    {
        config.pipeline = pipeline;
        session = std::make_unique<TrainingSession>(
            sim, config, workload);
        profiler = std::make_unique<TpuPointProfiler>(
            sim, *session);
        profiler->start(/*analyzer=*/false);
        tuner = std::make_unique<OnlineTuner>(
            sim, *session, *profiler, allTunableParams(),
            options);
    }

    void
    run()
    {
        tuner->start();
        session->start(nullptr);
        sim.run();
        tuner->stop();
        profiler->stop();
    }
};

TEST(TunerTest, DetectsCriticalPhaseAndImprovesNaiveRun)
{
    Rig rig(PipelineConfig::naive());
    rig.run();
    const OnlineTuner::Report &report = rig.tuner->report();
    EXPECT_TRUE(report.critical_phase_detected);
    EXPECT_TRUE(report.finished);
    EXPECT_GT(report.trials, 0u);
    EXPECT_GT(report.accepted, 0u);
    // The tuned pipeline has more parallelism than the naive one.
    EXPECT_GT(report.best_config.num_parallel_calls,
              report.initial_config.num_parallel_calls);
    // The session completed under the tuned configuration.
    EXPECT_EQ(rig.session->pipeline().config(),
              report.best_config);
    EXPECT_FALSE(report.log.empty());
}

TEST(TunerTest, KeepsDefaultsWhenNoImprovementExists)
{
    // A compute-bound workload: pipeline tuning cannot help.
    WorkloadOptions options;
    options.step_scale = 0.02;
    options.max_train_steps = 400;
    const RuntimeWorkload w =
        makeWorkload(WorkloadId::DcganMnist, options);

    Simulator sim;
    SessionConfig config;
    TrainingSession session(sim, config, w);
    TpuPointProfiler profiler(sim, session);
    profiler.start(false);
    OnlineTuner tuner(sim, session, profiler,
                      allTunableParams(), TunerOptions{});
    tuner.start();
    session.start(nullptr);
    sim.run();
    tuner.stop();
    profiler.stop();

    const OnlineTuner::Report &report = tuner.report();
    // Rejected trials revert: the final config equals a config no
    // worse than the initial one.
    EXPECT_EQ(session.pipeline().config(), report.best_config);
    if (report.accepted == 0) {
        EXPECT_EQ(report.best_config, report.initial_config);
    }
}

TEST(TunerTest, HonorsRestrictedParameterSet)
{
    Rig rig(PipelineConfig::naive());
    // Replace the tuner with one that may only touch prefetch.
    rig.tuner = std::make_unique<OnlineTuner>(
        rig.sim, *rig.session, *rig.profiler,
        std::vector<TunableParam>{TunableParam::PrefetchDepth},
        TunerOptions{});
    rig.run();
    const OnlineTuner::Report &report = rig.tuner->report();
    // Untouched parameters stay at their initial values.
    EXPECT_EQ(report.best_config.num_parallel_calls,
              report.initial_config.num_parallel_calls);
    EXPECT_EQ(report.best_config.num_parallel_reads,
              report.initial_config.num_parallel_reads);
    EXPECT_EQ(report.best_config.map_and_batch_fused,
              report.initial_config.map_and_batch_fused);
}

TEST(TunerTest, QualityGuardStaysConsistentThroughTuning)
{
    Rig rig(PipelineConfig::naive());
    rig.run();
    // If tuning had perturbed the output stream the tuner would
    // have refused further changes; the run finished cleanly.
    EXPECT_EQ(rig.session->result().steps_completed,
              rig.workload.schedule.train_steps);
}

} // namespace
} // namespace tpupoint

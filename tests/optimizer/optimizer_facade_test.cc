/** @file TpuPointOptimizer facade and the experiment harness. */

#include <gtest/gtest.h>

#include "optimizer/optimizer.hh"
#include "workloads/catalog.hh"

namespace tpupoint {
namespace {

RuntimeWorkload
workload(std::uint64_t steps = 400)
{
    WorkloadOptions options;
    options.step_scale = 0.02;
    options.max_train_steps = steps;
    return makeWorkload(WorkloadId::RetinanetCoco, options);
}

TEST(OptimizerTest, StartWiresEverything)
{
    Simulator sim;
    const RuntimeWorkload w = workload(100);
    SessionConfig config;
    config.pipeline = PipelineConfig::naive();
    TrainingSession session(sim, config, w);
    TpuPointOptimizer optimizer(sim, session);
    optimizer.start();
    EXPECT_FALSE(optimizer.programAnalysis().adjustable.empty());
    session.start(nullptr);
    sim.run();
    optimizer.stop();
    EXPECT_GT(optimizer.postProcessingTime(), 0);
    EXPECT_THROW(optimizer.start(), std::logic_error);
}

TEST(OptimizerTest, ExperimentImprovesNaiveRun)
{
    const RuntimeWorkload w = workload();
    SessionConfig naive;
    naive.pipeline = PipelineConfig::naive();
    const OptimizationOutcome outcome =
        runOptimizationExperiment(w, naive);

    // Output quality is unchanged: same steps completed.
    EXPECT_TRUE(outcome.output_quality_ok);
    EXPECT_EQ(outcome.baseline.steps_completed,
              outcome.optimized.steps_completed);
    // The optimized run beats the naive baseline even before
    // discounting post-processing.
    EXPECT_LT(outcome.optimized.wall_time,
              outcome.baseline.wall_time);
    // Idle drops, MXU utilization rises (Figures 15 and 16).
    EXPECT_LT(outcome.optimized.tpu_idle_fraction,
              outcome.baseline.tpu_idle_fraction);
    EXPECT_GT(outcome.optimized.mxu_utilization,
              outcome.baseline.mxu_utilization);
    EXPECT_NE(outcome.tuned_config, outcome.initial_config);
    EXPECT_GT(outcome.tuner_report.accepted, 0u);
}

TEST(OptimizerTest, PostProcessingPenalizesShortRuns)
{
    // Section VII-C: short workloads can take a performance hit
    // from waiting on the optimizer's post-processing.
    WorkloadOptions options;
    options.step_scale = 0.01;
    options.max_train_steps = 40;
    const RuntimeWorkload w =
        makeWorkload(WorkloadId::BertMrpc, options);
    SessionConfig config;
    const OptimizationOutcome outcome =
        runOptimizationExperiment(w, config);
    EXPECT_GT(outcome.optimized_wall_with_post,
              outcome.optimized.wall_time);
    EXPECT_LT(outcome.speedup(), 1.0);
}

TEST(OptimizerTest, ReportBeforeStartPanics)
{
    Simulator sim;
    const RuntimeWorkload w = workload(50);
    TrainingSession session(sim, SessionConfig{}, w);
    TpuPointOptimizer optimizer(sim, session);
    EXPECT_THROW(optimizer.report(), std::logic_error);
}

} // namespace
} // namespace tpupoint

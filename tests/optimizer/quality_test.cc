/** @file Output-quality guard. */

#include <gtest/gtest.h>

#include "optimizer/quality.hh"

namespace tpupoint {
namespace {

TEST(QualityGuardTest, MonotonicStreamIsConsistent)
{
    OutputQualityGuard guard;
    for (StepId s = 1; s <= 100; ++s)
        guard.onStep(s);
    EXPECT_TRUE(guard.consistent());
    EXPECT_EQ(guard.stepsObserved(), 100u);
}

TEST(QualityGuardTest, GapsAreAllowed)
{
    // Eval interleaves advance the pseudo-step counter, so gaps in
    // the train stream are normal.
    OutputQualityGuard guard;
    guard.onStep(1);
    guard.onStep(2);
    guard.onStep(15);
    EXPECT_TRUE(guard.consistent());
}

TEST(QualityGuardTest, DuplicateBreaksConsistency)
{
    OutputQualityGuard guard;
    guard.onStep(5);
    guard.onStep(5);
    EXPECT_FALSE(guard.consistent());
}

TEST(QualityGuardTest, ReorderingBreaksConsistency)
{
    OutputQualityGuard guard;
    guard.onStep(9);
    guard.onStep(3);
    EXPECT_FALSE(guard.consistent());
    // Once broken, stays broken.
    guard.onStep(10);
    EXPECT_FALSE(guard.consistent());
}

TEST(QualityGuardTest, PipelineParamsPreserveOutput)
{
    for (const TunableParam param : allTunableParams())
        EXPECT_TRUE(OutputQualityGuard::preservesOutput(param));
}

} // namespace
} // namespace tpupoint

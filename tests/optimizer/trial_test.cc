/** @file Checkpoint-based trial runs and offline search. */

#include <gtest/gtest.h>

#include <stdexcept>

#include "optimizer/trial.hh"
#include "workloads/catalog.hh"

namespace tpupoint {
namespace {

RuntimeWorkload
workload()
{
    WorkloadOptions options;
    options.step_scale = 0.02;
    options.max_train_steps = 400;
    return makeWorkload(WorkloadId::RetinanetCoco, options);
}

TEST(TrialRunnerTest, EvaluatesExactlyTheWindow)
{
    const RuntimeWorkload w = workload();
    TrialRunner runner(w, SessionConfig{}, 100, 60);
    const TrialResult result =
        runner.evaluate(PipelineConfig{});
    EXPECT_EQ(result.steps, 60u);
    EXPECT_GT(result.seconds_per_step, 0.0);
    EXPECT_GT(result.wall_time, result.train_window);
    EXPECT_EQ(runner.trialsRun(), 1u);
}

TEST(TrialRunnerTest, TrialIsMuchCheaperThanFullRun)
{
    const RuntimeWorkload w = workload();
    // Full run.
    Simulator sim;
    TrainingSession full(sim, SessionConfig{}, w);
    full.start(nullptr);
    sim.run();

    TrialRunner runner(w, SessionConfig{}, 200, 40);
    const TrialResult trial =
        runner.evaluate(PipelineConfig{});
    // "Online tuning without the need for complete program
    // execution": a trial replays a fraction of the run.
    EXPECT_LT(trial.wall_time, full.result().wall_time / 4);
}

TEST(TrialRunnerTest, RanksConfigsLikeSteadyState)
{
    const RuntimeWorkload w = workload();
    TrialRunner runner(w, SessionConfig{}, 100, 60);
    const TrialResult tuned =
        runner.evaluate(PipelineConfig{});
    const TrialResult naive =
        runner.evaluate(PipelineConfig::naive());
    EXPECT_LT(tuned.seconds_per_step, naive.seconds_per_step);
}

TEST(TrialRunnerTest, WindowValidation)
{
    const RuntimeWorkload w = workload();
    EXPECT_THROW(TrialRunner(w, SessionConfig{}, 0, 0),
                 std::runtime_error);
    EXPECT_THROW(TrialRunner(w, SessionConfig{},
                             w.schedule.train_steps, 10),
                 std::runtime_error);
}

TEST(TrialSearchTest, ImprovesNaiveConfigWithoutFullRuns)
{
    const RuntimeWorkload w = workload();
    TrialRunner runner(w, SessionConfig{}, 100, 50);
    const TrialSearchResult search = searchFromCheckpoint(
        runner, PipelineConfig::naive(), allTunableParams(),
        w.dataset, HostSpec::standard());

    EXPECT_GT(search.trials, 0u);
    EXPECT_GT(search.projectedSpeedup(), 1.5);
    EXPECT_GT(search.best_config.num_parallel_calls,
              PipelineConfig::naive().num_parallel_calls);
    EXPECT_FALSE(search.log.empty());
    // Every trial respected the validity envelope.
    EXPECT_TRUE(isValidConfig(search.best_config, w.dataset,
                              HostSpec::standard()));
}

TEST(TrialSearchTest, KeepsAlreadyGoodConfig)
{
    const RuntimeWorkload w = workload();
    TrialRunner runner(w, SessionConfig{}, 100, 50);
    // Start from a strong configuration.
    PipelineConfig strong;
    strong.num_parallel_calls = 32;
    strong.prefetch_depth = 8;
    const TrialSearchResult search = searchFromCheckpoint(
        runner, strong, allTunableParams(), w.dataset,
        HostSpec::standard());
    // The search never regresses below its starting point.
    EXPECT_LE(search.best_seconds_per_step,
              search.baseline_seconds_per_step + 1e-12);
}

} // namespace
} // namespace tpupoint

/** @file Adjustable-parameter space. */

#include <gtest/gtest.h>

#include "optimizer/parameters.hh"
#include "workloads/datasets.hh"

namespace tpupoint {
namespace {

TEST(ParametersTest, AllFiveParamsListed)
{
    EXPECT_EQ(allTunableParams().size(), 5u);
}

TEST(ParametersTest, GetSetRoundTrip)
{
    PipelineConfig config;
    for (const TunableParam param : allTunableParams()) {
        setParam(config, param, 4);
        EXPECT_EQ(getParam(config, param),
                  param == TunableParam::MapAndBatchFusion ? 1
                                                           : 4)
            << tunableParamName(param);
    }
    setParam(config, TunableParam::MapAndBatchFusion, 0);
    EXPECT_FALSE(config.map_and_batch_fused);
}

TEST(ParametersTest, NeighborLadderDoublesAndHalves)
{
    PipelineConfig config;
    config.num_parallel_calls = 8;
    EXPECT_EQ(*neighborValue(config,
                             TunableParam::ParallelCalls, +1),
              16);
    EXPECT_EQ(*neighborValue(config,
                             TunableParam::ParallelCalls, -1),
              4);
    config.num_parallel_calls = 1;
    EXPECT_FALSE(neighborValue(config,
                               TunableParam::ParallelCalls, -1)
                     .has_value());
}

TEST(ParametersTest, FusionFlagToggles)
{
    PipelineConfig config;
    config.map_and_batch_fused = false;
    EXPECT_EQ(*neighborValue(
                  config, TunableParam::MapAndBatchFusion, +1),
              1);
    // Already at the target: no neighbour.
    config.map_and_batch_fused = true;
    EXPECT_FALSE(neighborValue(config,
                               TunableParam::MapAndBatchFusion,
                               +1)
                     .has_value());
    EXPECT_EQ(*neighborValue(
                  config, TunableParam::MapAndBatchFusion, -1),
              0);
}

TEST(ParametersTest, ValidityConstraints)
{
    const DatasetSpec data = datasets::mrpc(); // 3668 examples
    const HostSpec host = HostSpec::standard();

    PipelineConfig ok;
    EXPECT_TRUE(isValidConfig(ok, data, host));

    PipelineConfig too_many_threads;
    too_many_threads.num_parallel_calls = 1000;
    EXPECT_FALSE(isValidConfig(too_many_threads, data, host));

    PipelineConfig big_shuffle;
    big_shuffle.shuffle_buffer = 100000; // beyond the dataset
    EXPECT_FALSE(isValidConfig(big_shuffle, data, host));

    PipelineConfig zero_prefetch;
    zero_prefetch.prefetch_depth = 0;
    EXPECT_FALSE(isValidConfig(zero_prefetch, data, host));

    PipelineConfig huge_prefetch;
    huge_prefetch.prefetch_depth = 1000;
    EXPECT_FALSE(isValidConfig(huge_prefetch, data, host));

    PipelineConfig bad_reads;
    bad_reads.num_parallel_reads = 0;
    EXPECT_FALSE(isValidConfig(bad_reads, data, host));
}

TEST(ParametersTest, NamesAreStable)
{
    EXPECT_STREQ(tunableParamName(TunableParam::ParallelCalls),
                 "num_parallel_calls");
    EXPECT_STREQ(
        tunableParamName(TunableParam::MapAndBatchFusion),
        "map_and_batch_fusion");
}

} // namespace
} // namespace tpupoint

/** @file RecordSpool backpressure and accounting. */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <string_view>

#include "trace/record_stream.hh"
#include "trace/spool.hh"

namespace tpupoint {
namespace {

TEST(RecordSpoolTest, SpooledStreamRoundTrips)
{
    std::ostringstream out;
    {
        RecordSpool spool(&out);
        spool.push("alpha");
        spool.push("beta");
        spool.push("");
        spool.finish();
        EXPECT_EQ(spool.records(), 3u);
        // Payload bytes plus the 4-byte length frame per record.
        EXPECT_EQ(spool.bytesSpooled(), 5u + 4 + 4 + 4 + 0 + 4);
        EXPECT_EQ(spool.bufferedBytes(), 0u);
        EXPECT_EQ(spool.bytesFlushed(), out.str().size());
    }
    std::istringstream in(out.str());
    RecordStreamReader reader(in);
    std::string_view payload;
    ASSERT_EQ(reader.next(payload), StreamStatus::Ok);
    EXPECT_EQ(payload, "alpha");
    ASSERT_EQ(reader.next(payload), StreamStatus::Ok);
    EXPECT_EQ(payload, "beta");
    ASSERT_EQ(reader.next(payload), StreamStatus::Ok);
    EXPECT_EQ(payload, "");
    EXPECT_EQ(reader.next(payload), StreamStatus::End);
}

TEST(RecordSpoolTest, BackpressureCountsStallsAndBoundsMemory)
{
    std::ostringstream out;
    RecordSpoolOptions options;
    options.max_buffered_bytes = 128;
    // Keep the stream's own chunk limits out of the way so the
    // spool's backpressure is what flushes.
    options.stream.chunk_records = 1u << 20;
    options.stream.chunk_bytes = 1u << 20;
    RecordSpool spool(&out, options);

    const std::string payload(100, 'p');
    for (int i = 0; i < 10; ++i) {
        spool.push(payload);
        EXPECT_LE(spool.bufferedBytes(),
                  options.max_buffered_bytes + payload.size() + 4);
    }
    EXPECT_GT(spool.stalls(), 0u);
    spool.finish();
    EXPECT_EQ(spool.records(), 10u);
}

TEST(RecordSpoolTest, NullSinkCountsWithoutStoring)
{
    RecordSpool spool(nullptr);
    for (int i = 0; i < 50; ++i)
        spool.push("0123456789");
    spool.finish();
    EXPECT_EQ(spool.records(), 50u);
    EXPECT_EQ(spool.bytesSpooled(), 50u * (10 + 4));
    // Everything framed was pushed through (and discarded).
    EXPECT_GT(spool.bytesFlushed(), spool.bytesSpooled());
}

} // namespace
} // namespace tpupoint

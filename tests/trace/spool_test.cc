/** @file RecordSpool backpressure and accounting. */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <string_view>

#include "trace/record_stream.hh"
#include "trace/spool.hh"

namespace tpupoint {
namespace {

TEST(RecordSpoolTest, SpooledStreamRoundTrips)
{
    std::ostringstream out;
    {
        RecordSpool spool(&out);
        spool.push("alpha");
        spool.push("beta");
        spool.push("");
        spool.finish();
        EXPECT_EQ(spool.records(), 3u);
        // Spooled bytes equal the bytes that actually reached the
        // sink — payloads, length frames, chunk framing and the
        // container header/end marker alike.
        EXPECT_EQ(spool.bytesSpooled(), out.str().size());
        EXPECT_EQ(spool.bufferedBytes(), 0u);
        EXPECT_EQ(spool.bytesFlushed(), out.str().size());
        EXPECT_EQ(spool.bytesSpooled(), spool.bytesFlushed());
    }
    std::istringstream in(out.str());
    RecordStreamReader reader(in);
    std::string_view payload;
    ASSERT_EQ(reader.next(payload), StreamStatus::Ok);
    EXPECT_EQ(payload, "alpha");
    ASSERT_EQ(reader.next(payload), StreamStatus::Ok);
    EXPECT_EQ(payload, "beta");
    ASSERT_EQ(reader.next(payload), StreamStatus::Ok);
    EXPECT_EQ(payload, "");
    EXPECT_EQ(reader.next(payload), StreamStatus::End);
}

TEST(RecordSpoolTest, BackpressureCountsStallsAndBoundsMemory)
{
    std::ostringstream out;
    RecordSpoolOptions options;
    options.max_buffered_bytes = 128;
    // Keep the stream's own chunk limits out of the way so the
    // spool's backpressure is what flushes.
    options.stream.chunk_records = 1u << 20;
    options.stream.chunk_bytes = 1u << 20;
    RecordSpool spool(&out, options);

    const std::string payload(100, 'p');
    for (int i = 0; i < 10; ++i) {
        spool.push(payload);
        EXPECT_LE(spool.bufferedBytes(),
                  options.max_buffered_bytes + payload.size() + 4);
    }
    EXPECT_GT(spool.stalls(), 0u);
    spool.finish();
    EXPECT_EQ(spool.records(), 10u);
}

TEST(RecordSpoolTest, NullSinkCountsWithoutStoring)
{
    RecordSpool spool(nullptr);
    for (int i = 0; i < 50; ++i)
        spool.push("0123456789");
    spool.finish();
    EXPECT_EQ(spool.records(), 50u);
    // Record traffic (payload + 4-byte length frame each) is a
    // strict lower bound; chunk and container framing rides along.
    EXPECT_GT(spool.bytesSpooled(), 50u * (10 + 4));
    // Everything framed was pushed through (and discarded): the
    // sink saw exactly the spooled bytes.
    EXPECT_EQ(spool.bytesFlushed(), spool.bytesSpooled());
}

TEST(RecordSpoolTest, SpooledBytesMatchSinkAtEveryFlushPoint)
{
    // Pin the accounting invariant: after finish() the spooled
    // count equals the sink's byte count exactly, and mid-stream
    // it equals flushed + buffered (never payload-only).
    std::ostringstream out;
    RecordSpoolOptions options;
    options.stream.chunk_records = 4;
    RecordSpool spool(&out, options);
    for (int i = 0; i < 11; ++i) {
        spool.push(std::string(static_cast<std::size_t>(i), 'x'));
        EXPECT_EQ(spool.bytesSpooled(),
                  spool.bytesFlushed() + spool.bufferedBytes());
        EXPECT_EQ(spool.bytesFlushed(), out.str().size());
    }
    spool.finish();
    EXPECT_EQ(spool.bytesSpooled(), out.str().size());
}

} // namespace
} // namespace tpupoint

/** @file Chunked record-stream framing: round trips and damage. */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/rng.hh"
#include "trace/record_stream.hh"

namespace tpupoint {
namespace {

// Wire offsets (see the format comment in record_stream.hh):
// header is 8 bytes, a chunk header is 16, so the first chunk's
// payload starts at byte 24.
constexpr std::size_t kHeaderSize = 8;
constexpr std::size_t kChunkHeaderSize = 16;
constexpr std::size_t kEndSize = 12;

std::vector<std::string>
randomPayloads(std::size_t count, std::uint32_t seed)
{
    Rng rng(seed);
    std::vector<std::string> payloads;
    payloads.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        std::string payload(rng.nextBounded(200), '\0');
        for (char &byte : payload)
            byte = static_cast<char>('a' + rng.nextBounded(26));
        payloads.push_back(std::move(payload));
    }
    return payloads;
}

std::string
writeStream(const std::vector<std::string> &payloads,
            const RecordStreamOptions &options = {})
{
    std::ostringstream out;
    RecordStreamWriter writer(out, options);
    for (const std::string &payload : payloads)
        writer.append(payload);
    writer.finish();
    return out.str();
}

TEST(RecordStreamTest, ZeroRecordStreamReadsCleanEnd)
{
    std::ostringstream out;
    {
        RecordStreamWriter writer(out);
        writer.finish();
        EXPECT_EQ(writer.records(), 0u);
        EXPECT_EQ(writer.bytesWritten(), kHeaderSize + kEndSize);
    }
    std::istringstream in(out.str());
    RecordStreamReader reader(in);
    std::string_view payload;
    EXPECT_EQ(reader.next(payload), StreamStatus::End);
    EXPECT_EQ(reader.records(), 0u);
    EXPECT_EQ(reader.version(), 5u);
    // Terminal state is sticky.
    EXPECT_EQ(reader.next(payload), StreamStatus::End);
}

TEST(RecordStreamTest, RoundTripAcrossManyChunks)
{
    const auto payloads = randomPayloads(257, 11);
    RecordStreamOptions options;
    options.chunk_records = 7; // Force many chunk boundaries.
    const std::string bytes = writeStream(payloads, options);

    std::istringstream in(bytes);
    RecordStreamReader reader(in);
    std::string_view payload;
    for (const std::string &expected : payloads) {
        ASSERT_EQ(reader.next(payload), StreamStatus::Ok);
        EXPECT_EQ(payload, expected);
    }
    EXPECT_EQ(reader.next(payload), StreamStatus::End);
    EXPECT_EQ(reader.records(), payloads.size());
}

TEST(RecordStreamTest, EmptyPayloadsRoundTrip)
{
    const std::vector<std::string> payloads = {"", "x", "", ""};
    std::istringstream in(writeStream(payloads));
    RecordStreamReader reader(in);
    std::string_view payload;
    for (const std::string &expected : payloads) {
        ASSERT_EQ(reader.next(payload), StreamStatus::Ok);
        EXPECT_EQ(payload, expected);
    }
    EXPECT_EQ(reader.next(payload), StreamStatus::End);
}

TEST(RecordStreamTest, DestructorSealsStream)
{
    std::ostringstream out;
    {
        RecordStreamWriter writer(out);
        writer.append("abc");
        // No finish(): the destructor must seal the stream.
    }
    std::istringstream in(out.str());
    RecordStreamReader reader(in);
    std::string_view payload;
    ASSERT_EQ(reader.next(payload), StreamStatus::Ok);
    EXPECT_EQ(payload, "abc");
    EXPECT_EQ(reader.next(payload), StreamStatus::End);
}

TEST(RecordStreamTest, TruncationMidChunkIsDetected)
{
    std::string bytes = writeStream(randomPayloads(40, 3));
    bytes.resize(bytes.size() / 2);
    std::istringstream in(bytes);
    RecordStreamReader reader(in);
    std::string_view payload;
    StreamStatus status;
    while ((status = reader.next(payload)) == StreamStatus::Ok) {
    }
    EXPECT_EQ(status, StreamStatus::Truncated);
    EXPECT_FALSE(reader.error().empty());
}

TEST(RecordStreamTest, TruncationMidChunkHeaderReusesBuffer)
{
    // The stream dies partway through a chunk *header* (not its
    // payload): every whole chunk before the cut is recovered
    // through the one reusable buffer, then the reader diagnoses
    // truncation instead of reading garbage.
    RecordStreamOptions options;
    options.chunk_records = 10;
    std::vector<std::string> payloads(30, std::string(100, 'p'));
    // All chunks are the same size; measure one via a one-chunk
    // reference stream.
    const std::string reference = writeStream(
        {payloads.begin(), payloads.begin() + 10}, options);
    const std::size_t chunk_size =
        reference.size() - kHeaderSize - kEndSize;
    std::string bytes = writeStream(payloads, options);
    // Cut 7 bytes into the third chunk's 16-byte header.
    bytes.resize(kHeaderSize + 2 * chunk_size + 7);

    std::istringstream in(bytes);
    RecordStreamReader reader(in);
    std::string_view payload;
    std::uint64_t produced = 0;
    StreamStatus status;
    while ((status = reader.next(payload)) == StreamStatus::Ok)
        ++produced;
    EXPECT_EQ(status, StreamStatus::Truncated);
    EXPECT_EQ(produced, 20u);
    // Equal-size chunks: the buffer grows for the first one and is
    // reused as-is for the second.
    EXPECT_EQ(reader.bufferGrowths(), 1u);
}

TEST(RecordStreamTest, MissingEndMarkerIsTruncation)
{
    // Cut exactly at the last chunk boundary: every chunk is
    // intact, only the end marker is gone. A length-prefixed
    // format would call this a clean EOF; the end marker is what
    // lets the reader tell "writer died" from "writer finished".
    std::string bytes = writeStream(randomPayloads(40, 4));
    bytes.resize(bytes.size() - kEndSize);
    std::istringstream in(bytes);
    RecordStreamReader reader(in);
    std::string_view payload;
    std::uint64_t produced = 0;
    StreamStatus status;
    while ((status = reader.next(payload)) == StreamStatus::Ok)
        ++produced;
    EXPECT_EQ(status, StreamStatus::Truncated);
    EXPECT_EQ(produced, 40u); // Every whole record is recovered.
}

TEST(RecordStreamTest, CorruptPayloadFailsChecksum)
{
    std::string bytes = writeStream(randomPayloads(40, 5));
    // Flip one payload byte inside the first chunk.
    const std::size_t victim =
        kHeaderSize + kChunkHeaderSize + 10;
    ASSERT_LT(victim, bytes.size());
    bytes[victim] = static_cast<char>(bytes[victim] ^ 0x40);
    std::istringstream in(bytes);
    RecordStreamReader reader(in);
    std::string_view payload;
    EXPECT_EQ(reader.next(payload), StreamStatus::Corrupt);
    EXPECT_NE(reader.error().find("checksum"), std::string::npos);
}

TEST(RecordStreamTest, BadChunkMarkerIsCorrupt)
{
    std::string bytes = writeStream(randomPayloads(4, 6));
    bytes[kHeaderSize] = 'X'; // First byte of the chunk marker.
    std::istringstream in(bytes);
    RecordStreamReader reader(in);
    std::string_view payload;
    EXPECT_EQ(reader.next(payload), StreamStatus::Corrupt);
}

TEST(RecordStreamTest, WrongVersionIsCorrupt)
{
    std::string bytes = writeStream({"abc"});
    bytes[4] = 9; // Version field follows the 4-byte magic.
    std::istringstream in(bytes);
    RecordStreamReader reader(in);
    EXPECT_EQ(reader.status(), StreamStatus::Corrupt);
    EXPECT_NE(reader.error().find("version"), std::string::npos);
}

TEST(RecordStreamTest, PriorVersion3IsStillAccepted)
{
    // Readers accept the v3..v4 range: a stream written before the
    // attempt-continuity tail existed must still read cleanly.
    std::string bytes = writeStream({"abc", "def"});
    bytes[4] = 3;
    std::istringstream in(bytes);
    RecordStreamReader reader(in);
    std::string_view payload;
    ASSERT_EQ(reader.next(payload), StreamStatus::Ok);
    EXPECT_EQ(payload, "abc");
    ASSERT_EQ(reader.next(payload), StreamStatus::Ok);
    EXPECT_EQ(payload, "def");
    EXPECT_EQ(reader.next(payload), StreamStatus::End);
    EXPECT_EQ(reader.version(), 3u);
}

TEST(RecordStreamTest, VersionBelowMinimumIsCorrupt)
{
    std::string bytes = writeStream({"abc"});
    bytes[4] = 2;
    std::istringstream in(bytes);
    RecordStreamReader reader(in);
    EXPECT_EQ(reader.status(), StreamStatus::Corrupt);
    EXPECT_NE(reader.error().find("version"), std::string::npos);
}

TEST(RecordStreamTest, ImplausiblePayloadSizeIsCorrupt)
{
    // Hand-craft a chunk header declaring a 1 GiB payload; the
    // reader must refuse the allocation, not attempt it.
    std::string bytes = writeStream({"abc"});
    const std::size_t size_field = kHeaderSize + 8;
    bytes[size_field + 0] = 0;
    bytes[size_field + 1] = 0;
    bytes[size_field + 2] = 0;
    bytes[size_field + 3] = 0x40; // 0x40000000 little-endian.
    std::istringstream in(bytes);
    RecordStreamReader reader(in);
    std::string_view payload;
    EXPECT_EQ(reader.next(payload), StreamStatus::Corrupt);
    EXPECT_NE(reader.error().find("payload size"),
              std::string::npos);
}

TEST(RecordStreamTest, EndMarkerCountMismatchIsCorrupt)
{
    RecordStreamOptions options;
    options.chunk_records = 2;
    std::string bytes = writeStream(randomPayloads(4, 7), options);
    // The record-count u64 sits after the end marker's u32.
    const std::size_t count_field = bytes.size() - 8;
    bytes[count_field] =
        static_cast<char>(bytes[count_field] + 1);
    std::istringstream in(bytes);
    RecordStreamReader reader(in);
    std::string_view payload;
    StreamStatus status;
    while ((status = reader.next(payload)) == StreamStatus::Ok) {
    }
    EXPECT_EQ(status, StreamStatus::Corrupt);
    EXPECT_NE(reader.error().find("end marker"),
              std::string::npos);
}

TEST(RecordStreamTest, ChunkSizeNeverExceedsConfiguredBytes)
{
    std::ostringstream out;
    RecordStreamOptions options;
    options.chunk_records = 1000000;
    options.chunk_bytes = 256;
    RecordStreamWriter writer(out, options);
    for (int i = 0; i < 100; ++i) {
        writer.append(std::string(100, 'z'));
        EXPECT_LT(writer.pendingBytes(), options.chunk_bytes);
    }
    writer.finish();
    EXPECT_EQ(writer.pendingBytes(), 0u);
    EXPECT_EQ(writer.bytesWritten(), out.str().size());
}

} // namespace
} // namespace tpupoint

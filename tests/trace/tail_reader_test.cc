/**
 * @file TailReader: incremental reads over a growing stream file.
 * Pins the one distinction the batch reader cannot draw — a tail
 * that stops mid-chunk is "pending, more may come" (nothing
 * consumed, nothing dropped), while structurally wrong bytes are
 * damage (salvaged or terminal, by mode) — plus offset resumption:
 * records arrive exactly once however the file growth is sliced.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>
#ifdef __unix__
#include <unistd.h>
#endif

#include "trace/record_stream.hh"
#include "trace/tail_reader.hh"

namespace tpupoint {
namespace {

std::string
tempPath(const std::string &name)
{
#ifdef __unix__
    return testing::TempDir() + std::to_string(getpid()) + "." +
        name;
#else
    return testing::TempDir() + name;
#endif
}

/** A sealed stream of "rec<i>" payloads, @p per_chunk per chunk. */
std::string
streamBytes(std::size_t records, std::size_t per_chunk = 2)
{
    std::ostringstream out(std::ios::binary);
    RecordStreamOptions options;
    options.chunk_records = per_chunk;
    RecordStreamWriter writer(out, options);
    for (std::size_t i = 0; i < records; ++i)
        writer.append("rec" + std::to_string(i));
    writer.finish();
    return out.str();
}

void
writeBytes(const std::string &path, std::string_view bytes,
           bool append = false)
{
    std::ofstream out(path,
                      append ? std::ios::binary | std::ios::app
                             : std::ios::binary |
                              std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

/** Collect payload copies from one poll. */
TailPoll
pollInto(TailReader &reader, std::vector<std::string> *records)
{
    return reader.poll([records](std::string_view payload) {
        records->push_back(std::string(payload));
    });
}

TEST(TailReaderTest, AbsentFileIsPending)
{
    const std::string path = tempPath("tail_absent.tpp");
    std::remove(path.c_str());
    TailReader reader(path);
    std::vector<std::string> records;
    const TailPoll pass = pollInto(reader, &records);
    EXPECT_EQ(pass.status, TailStatus::Pending);
    EXPECT_EQ(pass.records, 0u);
    EXPECT_FALSE(reader.sawDamage());
}

TEST(TailReaderTest, PartialHeaderIsPending)
{
    const std::string path = tempPath("tail_header.tpp");
    const std::string bytes = streamBytes(4);
    writeBytes(path, std::string_view(bytes).substr(0, 5));
    TailReader reader(path);
    std::vector<std::string> records;
    EXPECT_EQ(pollInto(reader, &records).status,
              TailStatus::Pending);
    EXPECT_EQ(reader.bytesConsumed(), 0u);
    EXPECT_FALSE(reader.sawDamage());
}

TEST(TailReaderTest, DeliversEveryRecordOnceAcrossSlicedGrowth)
{
    const std::string path = tempPath("tail_grow.tpp");
    const std::string bytes = streamBytes(10);
    TailReader reader(path);
    std::vector<std::string> records;

    // Grow the file in awkward slices (one lands mid-chunk).
    const std::size_t cuts[] = {9, bytes.size() / 2 + 3,
                                bytes.size()};
    std::size_t previous = 0;
    TailPoll last;
    for (const std::size_t cut : cuts) {
        writeBytes(path,
                   std::string_view(bytes).substr(
                       previous, cut - previous),
                   previous != 0);
        previous = cut;
        last = pollInto(reader, &records);
    }
    EXPECT_EQ(last.status, TailStatus::Complete);
    ASSERT_EQ(records.size(), 10u);
    for (std::size_t i = 0; i < records.size(); ++i)
        EXPECT_EQ(records[i], "rec" + std::to_string(i));
    EXPECT_TRUE(reader.complete());
    EXPECT_EQ(reader.bytesConsumed(), bytes.size());
    EXPECT_FALSE(reader.sawDamage());
}

TEST(TailReaderTest, MidChunkTailIsPendingNotDamage)
{
    const std::string path = tempPath("tail_midchunk.tpp");
    const std::string bytes = streamBytes(6);
    // Cut inside the last chunk's payload.
    writeBytes(path,
               std::string_view(bytes).substr(0,
                                              bytes.size() - 7));
    TailReader reader(path);
    std::vector<std::string> records;
    const TailPoll pass = pollInto(reader, &records);
    EXPECT_EQ(pass.status, TailStatus::Pending);
    EXPECT_FALSE(reader.sawDamage());
    EXPECT_FALSE(reader.complete());
    // The complete chunks were consumed; repolling the unchanged
    // file neither re-delivers nor drops anything.
    const std::size_t seen = records.size();
    EXPECT_EQ(pollInto(reader, &records).records, 0u);
    EXPECT_EQ(records.size(), seen);

    // The missing tail arrives: exactly the rest is delivered.
    writeBytes(path,
               std::string_view(bytes).substr(bytes.size() - 7),
               true);
    EXPECT_EQ(pollInto(reader, &records).status,
              TailStatus::Complete);
    EXPECT_EQ(records.size(), 6u);
}

TEST(TailReaderTest, SalvageDropsCorruptChunkAndReadsOn)
{
    const std::string path = tempPath("tail_corrupt.tpp");
    std::string bytes = streamBytes(8); // 4 chunks of 2.
    // Corrupt the second chunk's payload (first byte after its
    // 16-byte chunk header).
    const std::size_t second =
        bytes.find("CHNK", bytes.find("CHNK") + 1);
    ASSERT_NE(second, std::string::npos);
    bytes[second + 16] ^= 0x5a;
    writeBytes(path, bytes);

    TailReader reader(path);
    std::vector<std::string> records;
    const TailPoll pass = pollInto(reader, &records);
    EXPECT_EQ(pass.status, TailStatus::Complete);
    EXPECT_EQ(reader.chunksDropped(), 1u);
    // The end marker declared 8; the dropped chunk's 2 are known
    // lost.
    EXPECT_EQ(reader.recordsDropped(), 2u);
    EXPECT_TRUE(reader.sawDamage());
    ASSERT_EQ(records.size(), 6u);
    EXPECT_EQ(records[0], "rec0");
    EXPECT_EQ(records[2], "rec4"); // rec2/rec3 were the casualty.
}

TEST(TailReaderTest, StrictModeDamageIsTerminal)
{
    const std::string path = tempPath("tail_strict.tpp");
    std::string bytes = streamBytes(4);
    bytes[bytes.find("CHNK") + 16] ^= 0x5a;
    writeBytes(path, bytes);

    TailReaderOptions options;
    options.salvage = false;
    TailReader reader(path, options);
    std::vector<std::string> records;
    EXPECT_EQ(pollInto(reader, &records).status,
              TailStatus::Damaged);
    EXPECT_TRUE(reader.damaged());
    EXPECT_FALSE(reader.error().empty());
    // Terminal: repolls stay Damaged and consume nothing.
    const std::uint64_t consumed = reader.bytesConsumed();
    EXPECT_EQ(pollInto(reader, &records).status,
              TailStatus::Damaged);
    EXPECT_EQ(reader.bytesConsumed(), consumed);
    EXPECT_TRUE(records.empty());
}

TEST(TailReaderTest, ChunkHookReportsPerChunkRecordCounts)
{
    const std::string path = tempPath("tail_hook.tpp");
    writeBytes(path, streamBytes(6, /*per_chunk=*/3));
    TailReader reader(path);
    std::vector<std::size_t> chunk_counts;
    const TailPoll pass = reader.poll(
        [](std::string_view) {},
        [&chunk_counts](std::size_t records) {
            chunk_counts.push_back(records);
        });
    EXPECT_EQ(pass.status, TailStatus::Complete);
    EXPECT_EQ(pass.chunks, 2u);
    ASSERT_EQ(chunk_counts.size(), 2u);
    EXPECT_EQ(chunk_counts[0], 3u);
    EXPECT_EQ(chunk_counts[1], 3u);
}

TEST(TailReaderTest, OffsetLimitBoundsReplayExactly)
{
    const std::string path = tempPath("tail_limit.tpp");
    const std::string bytes = streamBytes(10);
    writeBytes(path, bytes);

    // Learn the offset after the first two chunks by polling an
    // unlimited reader's consumption — commits always land on
    // unit boundaries, which is what a journal records.
    TailReader probe(path);
    std::uint64_t boundary = 0;
    std::uint64_t seen = 0;
    probe.poll([](std::string_view) {},
               [&](std::size_t records) {
                   seen += records;
                   if (seen <= 4)
                       boundary = probe.bytesConsumed();
               });
    ASSERT_GT(boundary, 0u);

    // A limited reader stops exactly at the boundary...
    TailReader limited(path);
    std::vector<std::string> records;
    const TailPoll replay = limited.poll(
        [&records](std::string_view payload) {
            records.push_back(std::string(payload));
        },
        nullptr, boundary);
    EXPECT_EQ(replay.status, TailStatus::Pending);
    EXPECT_EQ(limited.bytesConsumed(), boundary);
    EXPECT_EQ(records.size(), 4u);
    EXPECT_FALSE(limited.sawDamage());

    // ...and an unlimited poll afterwards picks up the rest:
    // every record exactly once across the limit.
    EXPECT_EQ(pollInto(limited, &records).status,
              TailStatus::Complete);
    ASSERT_EQ(records.size(), 10u);
    for (std::size_t i = 0; i < records.size(); ++i)
        EXPECT_EQ(records[i], "rec" + std::to_string(i));
}

TEST(TailReaderTest, LimitAtOrBelowOffsetIsPendingNotUnderflow)
{
    const std::string path = tempPath("tail_limit_low.tpp");
    writeBytes(path, streamBytes(4));
    TailReader reader(path);
    std::vector<std::string> records;
    EXPECT_EQ(pollInto(reader, &records).status,
              TailStatus::Complete);
    const std::uint64_t consumed = reader.bytesConsumed();

    TailReader again(path);
    // Replay up to just before the end marker, then poll with a
    // limit *below* the offset: nothing more may be consumed and
    // nothing underflows.
    again.poll([](std::string_view) {}, nullptr, consumed - 12);
    const std::uint64_t offset = again.bytesConsumed();
    EXPECT_GT(offset, 8u);
    const TailPoll low =
        again.poll([](std::string_view) {}, nullptr, 8);
    EXPECT_EQ(low.bytes, 0u);
    EXPECT_EQ(low.status, TailStatus::Pending);
    EXPECT_EQ(again.bytesConsumed(), offset);
}

TEST(TailReaderTest, CompletedReaderKeepsReportingComplete)
{
    const std::string path = tempPath("tail_done.tpp");
    writeBytes(path, streamBytes(2));
    TailReader reader(path);
    std::vector<std::string> records;
    EXPECT_EQ(pollInto(reader, &records).status,
              TailStatus::Complete);
    EXPECT_EQ(pollInto(reader, &records).status,
              TailStatus::Complete);
    EXPECT_EQ(records.size(), 2u);
    EXPECT_EQ(reader.recordsProduced(), 2u);
}

} // namespace
} // namespace tpupoint

/**
 * @file Salvage-mode reading of damaged record streams. The CRC
 * per chunk bounds the blast radius of any corruption to the chunk
 * it hits: salvage mode must recover every intact chunk, report
 * exactly what was dropped, and never report Corrupt/Truncated.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "proto/serialize.hh"
#include "trace/record_stream.hh"

namespace tpupoint {
namespace {

/** Build a finished stream of @p count payloads, 2 per chunk. */
std::string
makeStream(int count)
{
    std::ostringstream out;
    RecordStreamOptions options;
    options.chunk_records = 2;
    RecordStreamWriter writer(out, options);
    for (int i = 0; i < count; ++i)
        writer.append("record-" + std::to_string(i));
    writer.finish();
    return out.str();
}

/** Byte offset of the @p nth (0-based) "CHNK" marker. */
std::size_t
chunkOffset(const std::string &bytes, int nth)
{
    std::size_t pos = 0;
    for (int i = 0; i <= nth; ++i) {
        pos = bytes.find("CHNK", pos ? pos + 1 : 0);
        EXPECT_NE(pos, std::string::npos);
    }
    return pos;
}

/** Flip one payload byte of the @p nth chunk (breaks its CRC). */
void
corruptChunkPayload(std::string &bytes, int nth)
{
    const std::size_t payload = chunkOffset(bytes, nth) + 16;
    ASSERT_LT(payload, bytes.size());
    bytes[payload] = static_cast<char>(bytes[payload] ^ 0x5a);
}

std::vector<std::string>
salvageAll(RecordStreamReader &reader)
{
    std::vector<std::string> records;
    std::string_view payload;
    while (reader.next(payload) == StreamStatus::Ok)
        records.emplace_back(payload);
    return records;
}

TEST(SalvageTest, IntactStreamSalvagesWithoutDamageReported)
{
    const std::string bytes = makeStream(6);
    std::istringstream in(bytes);
    RecordStreamReader reader(in, /*salvage=*/true);
    EXPECT_TRUE(reader.salvaging());
    const auto records = salvageAll(reader);
    EXPECT_EQ(records.size(), 6u);
    EXPECT_FALSE(reader.sawDamage());
    EXPECT_EQ(reader.chunksDropped(), 0u);
    EXPECT_EQ(reader.recordsDropped(), 0u);
    EXPECT_FALSE(reader.truncatedTail());
}

TEST(SalvageTest, MidStreamCorruptionDropsExactlyOneChunk)
{
    std::string bytes = makeStream(8); // chunks of records 0..7
    corruptChunkPayload(bytes, 1);     // records 2 and 3

    // The plain reader refuses the stream...
    {
        std::istringstream in(bytes);
        RecordStreamReader reader(in);
        std::string_view payload;
        StreamStatus status;
        while ((status = reader.next(payload)) == StreamStatus::Ok)
            ;
        EXPECT_EQ(status, StreamStatus::Corrupt);
    }

    // ...salvage recovers everything the CRCs vouch for.
    std::istringstream in(bytes);
    RecordStreamReader reader(in, /*salvage=*/true);
    const auto records = salvageAll(reader);
    ASSERT_EQ(records.size(), 6u);
    EXPECT_EQ(records[0], "record-0");
    EXPECT_EQ(records[1], "record-1");
    EXPECT_EQ(records[2], "record-4"); // resynced past the damage
    EXPECT_EQ(records.back(), "record-7");
    EXPECT_EQ(reader.chunksDropped(), 1u);
    EXPECT_EQ(reader.recordsDropped(), 2u); // via the end marker
    EXPECT_FALSE(reader.truncatedTail());
    EXPECT_TRUE(reader.sawDamage());
}

TEST(SalvageTest, FirstChunkCorruptionStillRecoversTheRest)
{
    std::string bytes = makeStream(6);
    corruptChunkPayload(bytes, 0);

    std::istringstream in(bytes);
    RecordStreamReader reader(in, /*salvage=*/true);
    const auto records = salvageAll(reader);
    ASSERT_EQ(records.size(), 4u);
    EXPECT_EQ(records[0], "record-2");
    EXPECT_EQ(reader.chunksDropped(), 1u);
    EXPECT_EQ(reader.recordsDropped(), 2u);
}

TEST(SalvageTest, BackToBackCorruptChunksBothDrop)
{
    std::string bytes = makeStream(10);
    corruptChunkPayload(bytes, 1);
    corruptChunkPayload(bytes, 2);

    std::istringstream in(bytes);
    RecordStreamReader reader(in, /*salvage=*/true);
    const auto records = salvageAll(reader);
    ASSERT_EQ(records.size(), 6u);
    EXPECT_EQ(records[0], "record-0");
    EXPECT_EQ(records[2], "record-6");
    EXPECT_EQ(reader.chunksDropped(), 2u);
    EXPECT_EQ(reader.recordsDropped(), 4u);
}

TEST(SalvageTest, ClobberedChunkMarkerResynchronizesByScanning)
{
    std::string bytes = makeStream(8);
    const std::size_t marker = chunkOffset(bytes, 2);
    bytes[marker] = 'X'; // "XHNK": the marker itself is gone

    std::istringstream in(bytes);
    RecordStreamReader reader(in, /*salvage=*/true);
    const auto records = salvageAll(reader);
    ASSERT_EQ(records.size(), 6u);
    EXPECT_EQ(records[3], "record-3");
    EXPECT_EQ(records[4], "record-6");
    EXPECT_EQ(reader.chunksDropped(), 1u);
    EXPECT_GT(reader.bytesSkipped(), 0u);
}

TEST(SalvageTest, TruncatedTailEndsTheStreamEarly)
{
    std::string bytes = makeStream(6);
    bytes.resize(bytes.size() - 20); // into the last chunk

    std::istringstream in(bytes);
    RecordStreamReader reader(in, /*salvage=*/true);
    const auto records = salvageAll(reader);
    EXPECT_LT(records.size(), 6u);
    EXPECT_TRUE(reader.truncatedTail());
    EXPECT_TRUE(reader.sawDamage());
    // Terminal state is sticky and never Corrupt/Truncated.
    std::string_view payload;
    EXPECT_EQ(reader.next(payload), StreamStatus::End);
}

TEST(SalvageTest, DamagedHeaderScansToTheFirstChunk)
{
    std::string bytes = makeStream(4);
    bytes[0] = 'Z'; // break the TPPF magic

    std::istringstream in(bytes);
    RecordStreamReader reader(in, /*salvage=*/true);
    const auto records = salvageAll(reader);
    EXPECT_EQ(records.size(), 4u);
    EXPECT_GT(reader.bytesSkipped(), 0u);
    EXPECT_TRUE(reader.sawDamage());
}

/**
 * Build a version-3 profile container: records without the v4
 * attempt tail (fixed-width u32+u32+u64+u64 = 24 bytes) or the v5
 * drop-count tail (u64 = 8 bytes), framed with the header version
 * patched back to 3.
 */
std::string
makeV3Profile(int count)
{
    std::ostringstream out;
    {
        RecordStreamOptions options;
        options.chunk_records = 1;
        RecordStreamWriter framing(out, options);
        for (int i = 0; i < count; ++i) {
            ProfileRecord record;
            record.sequence = static_cast<std::uint64_t>(i);
            record.window_begin = i * kSec;
            record.window_end = (i + 1) * kSec;
            record.retries = 40 + static_cast<std::uint64_t>(i);
            record.retry_time = (i + 1) * kMsec;
            std::string payload = encodeProfileRecord(record);
            payload.resize(payload.size() - 24 - 8);
            framing.append(payload);
        }
        framing.finish();
    }
    std::string bytes = out.str();
    bytes[4] = 3; // Version field follows the 4-byte magic.
    return bytes;
}

TEST(SalvageTest, V3RetryFieldsRoundTripThroughBothReaders)
{
    const std::string bytes = makeV3Profile(4);

    // The plain reader accepts the older container outright...
    {
        std::istringstream in(bytes);
        ProfileReader reader(in);
        const auto records = reader.readAll();
        ASSERT_EQ(records.size(), 4u);
        for (std::size_t i = 0; i < records.size(); ++i) {
            EXPECT_EQ(records[i].retries, 40 + i);
            EXPECT_EQ(records[i].retry_time,
                      static_cast<SimTime>(i + 1) * kMsec);
            EXPECT_EQ(records[i].attempt, 0u);
            EXPECT_FALSE(records[i].attempt_boundary);
        }
    }

    // ...and so does the salvage reader, with nothing reported
    // lost.
    std::istringstream in(bytes);
    ProfileReader reader(in, /*salvage=*/true);
    const auto records = reader.readAll();
    ASSERT_EQ(records.size(), 4u);
    EXPECT_EQ(records[2].retries, 42u);
    EXPECT_FALSE(reader.sawDamage());
}

TEST(SalvageTest, DamagedV3ProfileSalvagesRetryFields)
{
    std::string bytes = makeV3Profile(5);
    corruptChunkPayload(bytes, 1);

    std::istringstream in(bytes);
    ProfileReader reader(in, /*salvage=*/true);
    const auto records = reader.readAll();
    ASSERT_EQ(records.size(), 4u);
    EXPECT_EQ(records[0].retries, 40u);
    EXPECT_EQ(records[1].sequence, 2u); // resynced past the damage
    EXPECT_EQ(records[1].retries, 42u);
    EXPECT_EQ(records[1].retry_time, 3 * kMsec);
    EXPECT_EQ(reader.chunksDropped(), 1u);
    EXPECT_EQ(reader.recordsDropped(), 1u);
    EXPECT_TRUE(reader.sawDamage());
}

TEST(SalvageTest, ProfileReaderSalvagesDamagedProfiles)
{
    // A real ProfileRecord stream: 1 record per chunk so one
    // corrupted chunk costs exactly one record.
    std::ostringstream out;
    {
        RecordStreamOptions options;
        options.chunk_records = 1;
        RecordStreamWriter framing(out, options);
        for (int i = 0; i < 5; ++i) {
            ProfileRecord record;
            record.sequence = static_cast<std::uint64_t>(i);
            record.window_begin = i * kSec;
            record.window_end = (i + 1) * kSec;
            framing.append(encodeProfileRecord(record));
        }
        framing.finish();
    }
    std::string bytes = out.str();
    corruptChunkPayload(bytes, 2);

    {
        std::istringstream in(bytes);
        ProfileReader reader(in);
        ProfileRecord record;
        EXPECT_THROW(
            {
                while (reader.read(record))
                    ;
            },
            std::runtime_error);
    }

    std::istringstream in(bytes);
    ProfileReader reader(in, /*salvage=*/true);
    const auto records = reader.readAll();
    ASSERT_EQ(records.size(), 4u);
    EXPECT_EQ(records[0].sequence, 0u);
    EXPECT_EQ(records[2].sequence, 3u);
    EXPECT_EQ(reader.chunksDropped(), 1u);
    EXPECT_EQ(reader.recordsDropped(), 1u);
    EXPECT_TRUE(reader.sawDamage());
}

} // namespace
} // namespace tpupoint

/** @file Structured logger: formats, rate limiting, core capture. */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "core/json.hh"
#include "core/logging.hh"
#include "obs/flight_recorder.hh"
#include "obs/logger.hh"

namespace tpupoint {
namespace obs {
namespace {

/** Capture everything a Logger writes to its stream. */
class CapturedLogger
{
  public:
    CapturedLogger()
        : sink(std::tmpfile())
    {
        logger.setStream(sink);
    }

    ~CapturedLogger()
    {
        if (sink != nullptr)
            std::fclose(sink);
    }

    std::string
    text()
    {
        std::fflush(sink);
        std::rewind(sink);
        std::string out;
        char buffer[512];
        std::size_t n = 0;
        while ((n = std::fread(buffer, 1, sizeof(buffer), sink)) >
               0)
            out.append(buffer, n);
        return out;
    }

    std::vector<std::string>
    lines()
    {
        std::vector<std::string> out;
        std::istringstream stream(text());
        std::string line;
        while (std::getline(stream, line))
            out.push_back(line);
        return out;
    }

    Logger logger;

  private:
    std::FILE *sink;
};

struct LoggerTest : ::testing::Test
{
    void SetUp() override
    {
        FlightRecorder::global().disable();
        LogConfig::setThreshold(LogLevel::Debug);
    }
    void TearDown() override
    {
        Logger::uninstall();
        LogConfig::setThreshold(LogLevel::Info);
    }
};

TEST_F(LoggerTest, TextFormatCarriesComponentAndFields)
{
    CapturedLogger captured;
    captured.logger.setFormat(LogFormat::Text);
    captured.logger.log(LogLevel::Warn, "serve",
                        "session quarantined",
                        {{"session", "run1"},
                         {"attempt", std::uint64_t{3}}});
    const std::string out = captured.text();
    EXPECT_NE(out.find("tpupoint: warn: [serve] session "
                       "quarantined"),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("session=run1"), std::string::npos);
    EXPECT_NE(out.find("attempt=3"), std::string::npos);
}

TEST_F(LoggerTest, JsonFormatEmitsOneParseableObjectPerLine)
{
    CapturedLogger captured;
    captured.logger.setFormat(LogFormat::Json);
    captured.logger.log(LogLevel::Info, "serve", "discovered",
                        {{"session", "a\"b"}, {"live", 2}});
    captured.logger.log(LogLevel::Debug, "core", "plain");

    const auto lines = captured.lines();
    ASSERT_EQ(lines.size(), 2u);
    for (const std::string &line : lines) {
        std::string why;
        EXPECT_TRUE(validateJson(line, &why)) << line << ": "
                                              << why;
    }
    EXPECT_NE(lines[0].find("\"level\":\"info\""),
              std::string::npos);
    EXPECT_NE(lines[0].find("\"component\":\"serve\""),
              std::string::npos);
    // Hostile field values arrive escaped, never break the line.
    EXPECT_NE(lines[0].find("\"session\":\"a\\\"b\""),
              std::string::npos);
    EXPECT_NE(lines[0].find("\"live\":2"), std::string::npos);
    EXPECT_NE(lines[0].find("\"ts_ns\":"), std::string::npos);
}

TEST_F(LoggerTest, ThresholdFiltersStreamEmission)
{
    CapturedLogger captured;
    captured.logger.setFormat(LogFormat::Text);
    LogConfig::setThreshold(LogLevel::Warn);
    captured.logger.log(LogLevel::Info, "serve", "ignored");
    captured.logger.log(LogLevel::Warn, "serve", "kept");
    EXPECT_EQ(captured.logger.emitted(), 1u);
    EXPECT_EQ(captured.text().find("ignored"), std::string::npos);
}

TEST_F(LoggerTest, ParseFormatAcceptsKnownNamesOnly)
{
    LogFormat format = LogFormat::Text;
    EXPECT_TRUE(Logger::parseFormat("json", &format));
    EXPECT_EQ(format, LogFormat::Json);
    EXPECT_TRUE(Logger::parseFormat("jsonl", &format));
    EXPECT_EQ(format, LogFormat::Json);
    EXPECT_TRUE(Logger::parseFormat("text", &format));
    EXPECT_EQ(format, LogFormat::Text);
    EXPECT_FALSE(Logger::parseFormat("xml", &format));
    EXPECT_FALSE(Logger::parseFormat(nullptr, &format));
}

TEST_F(LoggerTest, LogSiteAdmitsFirstThenSuppressesInsideInterval)
{
    LogSite site(/*interval_ms=*/10);
    std::uint64_t suppressed = 99;
    const std::int64_t ms = 1000000;
    EXPECT_TRUE(site.admit(0, &suppressed));
    EXPECT_EQ(suppressed, 0u);
    EXPECT_FALSE(site.admit(1 * ms, &suppressed));
    EXPECT_FALSE(site.admit(2 * ms, &suppressed));
    EXPECT_EQ(site.suppressed(), 2u);
    // The next admission reports (and resets) the swallowed count.
    EXPECT_TRUE(site.admit(11 * ms, &suppressed));
    EXPECT_EQ(suppressed, 2u);
    EXPECT_EQ(site.suppressed(), 0u);
}

TEST_F(LoggerTest, LogLimitedAnnotatesSuppressedRuns)
{
    CapturedLogger captured;
    captured.logger.setFormat(LogFormat::Text);
    // Pre-load a site with two swallowed events at timestamps the
    // real monotonic clock has long passed: the next logLimited
    // admits and must drain the count into the emitted line.
    LogSite site(/*interval_ms=*/10);
    std::uint64_t ignored = 0;
    ASSERT_TRUE(site.admit(0, &ignored));
    ASSERT_FALSE(site.admit(1, &ignored));
    ASSERT_FALSE(site.admit(2, &ignored));
    captured.logger.logLimited(site, LogLevel::Warn, "obs",
                               "noisy");
    EXPECT_EQ(captured.logger.emitted(), 1u);
    EXPECT_NE(captured.text().find("suppressed=2"),
              std::string::npos)
        << captured.text();

    // A fresh site with an hour-long interval: the first call
    // through logLimited always admits, the immediate repeat is
    // swallowed and only counted.
    LogSite slow_site(/*interval_ms=*/3600 * 1000);
    captured.logger.logLimited(slow_site, LogLevel::Warn, "obs",
                               "first");
    captured.logger.logLimited(slow_site, LogLevel::Warn, "obs",
                               "second");
    EXPECT_EQ(captured.logger.emitted(), 2u);
    EXPECT_EQ(slow_site.suppressed(), 1u);
    EXPECT_EQ(captured.text().find("second"), std::string::npos);
}

TEST_F(LoggerTest, InstallCapturesLegacyCoreTraffic)
{
    std::FILE *sink = std::tmpfile();
    ASSERT_NE(sink, nullptr);
    Logger::global().setStream(sink);
    Logger::global().setFormat(LogFormat::Text);
    Logger::install();
    warn("spool directory vanished");
    Logger::uninstall();
    Logger::global().setStream(nullptr);

    std::fflush(sink);
    std::rewind(sink);
    std::string out;
    char buffer[512];
    std::size_t n = 0;
    while ((n = std::fread(buffer, 1, sizeof(buffer), sink)) > 0)
        out.append(buffer, n);
    std::fclose(sink);
    EXPECT_NE(out.find("[core] spool directory vanished"),
              std::string::npos)
        << out;
}

TEST_F(LoggerTest, MirrorsEveryEventToEnabledFlightRecorder)
{
    FlightRecorder &flight = FlightRecorder::global();
    flight.enable();
    const std::uint64_t before = flight.recorded();

    CapturedLogger captured;
    captured.logger.setFormat(LogFormat::Text);
    // Below the stream threshold — the terminal never sees it, the
    // black box still does.
    LogConfig::setThreshold(LogLevel::Warn);
    captured.logger.log(LogLevel::Debug, "serve",
                        "debug breadcrumb");
    flight.disable();

    EXPECT_EQ(captured.logger.emitted(), 0u);
    EXPECT_EQ(flight.recorded(), before + 1);
}

} // namespace
} // namespace obs
} // namespace tpupoint

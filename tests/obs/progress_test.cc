/** @file ProgressReporter rendering and event naming. */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/json.hh"
#include "obs/progress.hh"

namespace tpupoint {
namespace obs {
namespace {

ProgressEvent
makeEvent(ProgressEvent::Kind kind, std::size_t item)
{
    ProgressEvent event;
    event.kind = kind;
    event.item = item;
    event.total = 4;
    event.started = item + 1;
    return event;
}

TEST(ProgressTest, KindNamesAreStable)
{
    EXPECT_STREQ(progressKindName(ProgressEvent::Kind::Start),
                 "start");
    EXPECT_STREQ(progressKindName(ProgressEvent::Kind::Retry),
                 "retry");
    EXPECT_STREQ(progressKindName(ProgressEvent::Kind::Finish),
                 "finish");
}

TEST(ProgressTest, FinishedSumsTerminalStates)
{
    ProgressEvent event;
    event.succeeded = 2;
    event.preempted = 1;
    event.failed = 3;
    event.retried = 9; // retries are not terminal
    EXPECT_EQ(event.finished(), 6u);
}

TEST(ProgressTest, JsonlModeEmitsOneValidObjectPerEvent)
{
    std::ostringstream out;
    ProgressReporter reporter(out,
                              ProgressReporter::Mode::Jsonl);
    reporter(makeEvent(ProgressEvent::Kind::Start, 0));
    ProgressEvent done = makeEvent(ProgressEvent::Kind::Finish, 0);
    done.status = "ok";
    done.succeeded = 1;
    done.wall_seconds = 0.25;
    reporter(done);
    reporter.finish();

    std::istringstream lines(out.str());
    std::string line;
    std::size_t count = 0;
    while (std::getline(lines, line)) {
        std::string error;
        EXPECT_TRUE(validateJson(line, &error))
            << line << ": " << error;
        ++count;
    }
    EXPECT_EQ(count, 2u);
    EXPECT_NE(out.str().find("\"event\":\"start\""),
              std::string::npos);
    EXPECT_NE(out.str().find("\"status\":\"ok\""),
              std::string::npos);
}

TEST(ProgressTest, StatusLineRepaintsInPlaceUntilFinish)
{
    std::ostringstream out;
    {
        ProgressReporter reporter(
            out, ProgressReporter::Mode::StatusLine);
        reporter(makeEvent(ProgressEvent::Kind::Start, 0));
        reporter(makeEvent(ProgressEvent::Kind::Start, 1));
        EXPECT_EQ(out.str().find('\n'), std::string::npos);
        EXPECT_NE(out.str().find('\r'), std::string::npos);
    } // destructor finishes the line
    EXPECT_NE(out.str().find('\n'), std::string::npos);
}

} // namespace
} // namespace obs
} // namespace tpupoint

/** @file TraceSpan RAII semantics and SpanBuffer bounds. */

#include <gtest/gtest.h>

#include <thread>

#include "obs/flight_recorder.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"

namespace tpupoint {
namespace obs {
namespace {

TEST(SpanTest, ScopeExitRecordsTheSpan)
{
    SpanBuffer buffer(16);
    {
        TraceSpan span("work", buffer);
        EXPECT_EQ(buffer.size(), 0u); // not recorded until exit
    }
    ASSERT_EQ(buffer.size(), 1u);
    const SpanRecord record = buffer.snapshot().front();
    EXPECT_EQ(record.name, "work");
    EXPECT_GE(record.duration_ns(), 0);
    EXPECT_EQ(record.thread_id, currentThreadId());
}

TEST(SpanTest, ArgsArriveInAttachmentOrder)
{
    SpanBuffer buffer(16);
    {
        TraceSpan span("phase", buffer);
        span.arg("steps", std::uint64_t{97});
        span.arg("algorithm", "kmeans");
        span.arg("delta", -3.5);
    }
    const SpanRecord record = buffer.snapshot().front();
    ASSERT_EQ(record.args.size(), 3u);
    EXPECT_EQ(record.args[0].first, "steps");
    EXPECT_EQ(record.args[0].second, "97");
    EXPECT_EQ(record.args[1].first, "algorithm");
    EXPECT_EQ(record.args[1].second, "kmeans");
    EXPECT_EQ(record.args[2].first, "delta");
}

TEST(SpanTest, FinishIsIdempotent)
{
    SpanBuffer buffer(16);
    {
        TraceSpan span("once", buffer);
        span.finish();
        span.finish(); // no double record
    } // destructor after finish(): still one record
    EXPECT_EQ(buffer.size(), 1u);
}

TEST(SpanTest, FullBufferDropsAndCounts)
{
    SpanBuffer buffer(2);
    for (int i = 0; i < 5; ++i)
        TraceSpan("s", buffer).finish();
    EXPECT_EQ(buffer.size(), 2u);
    EXPECT_EQ(buffer.dropped(), 3u);
    buffer.clear();
    EXPECT_EQ(buffer.size(), 0u);
    EXPECT_EQ(buffer.dropped(), 0u);
}

TEST(SpanTest, OverflowBumpsGlobalDropCounter)
{
    const std::uint64_t before =
        MetricsRegistry::global().snapshot().counterOr(
            "obs.spans_dropped");
    SpanBuffer buffer(1);
    for (int i = 0; i < 4; ++i)
        TraceSpan("s", buffer).finish();
    EXPECT_EQ(MetricsRegistry::global().snapshot().counterOr(
                  "obs.spans_dropped"),
              before + 3);
}

TEST(SpanTest, CompletedSpansMirrorToEnabledFlightRecorder)
{
    FlightRecorder &flight = FlightRecorder::global();
    flight.enable();
    const std::uint64_t before = flight.recorded();
    SpanBuffer buffer(4);
    TraceSpan("mirrored", buffer).finish();
    flight.disable();
    EXPECT_EQ(flight.recorded(), before + 1);
}

TEST(SpanTest, SnapshotPreservesCompletionOrder)
{
    SpanBuffer buffer(8);
    TraceSpan("first", buffer).finish();
    TraceSpan("second", buffer).finish();
    const auto spans = buffer.snapshot();
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_EQ(spans[0].name, "first");
    EXPECT_EQ(spans[1].name, "second");
    EXPECT_LE(spans[0].begin_ns, spans[1].begin_ns);
}

TEST(SpanTest, ThreadIdsDistinguishRecordingThreads)
{
    SpanBuffer buffer(8);
    TraceSpan("main", buffer).finish();
    std::thread([&buffer] {
        TraceSpan("worker", buffer).finish();
    }).join();
    const auto spans = buffer.snapshot();
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_NE(spans[0].thread_id, spans[1].thread_id);
}

} // namespace
} // namespace obs
} // namespace tpupoint

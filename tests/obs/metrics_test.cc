/** @file Metrics registry: instruments, buckets, snapshots. */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

#include "core/json.hh"
#include "obs/metrics.hh"

namespace tpupoint {
namespace obs {
namespace {

TEST(MetricsTest, CounterAccumulatesAndResets)
{
    MetricsRegistry registry;
    Counter &c = registry.counter("events");
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(MetricsTest, GaugeIsLastWriteWins)
{
    MetricsRegistry registry;
    Gauge &g = registry.gauge("depth");
    g.set(7);
    g.set(-3);
    EXPECT_EQ(g.value(), -3);
}

TEST(MetricsTest, SameNameReturnsSameInstrument)
{
    MetricsRegistry registry;
    Counter &a = registry.counter("x");
    Counter &b = registry.counter("x");
    EXPECT_EQ(&a, &b);
    a.add(5);
    EXPECT_EQ(b.value(), 5u);
}

TEST(MetricsTest, HistogramBucketBoundariesAreInclusive)
{
    // Bounds 1, 2, 4, 8; bucket i counts v <= bound[i].
    HistogramOptions options;
    options.first_bound = 1;
    options.growth = 2;
    options.buckets = 4;
    MetricsRegistry registry;
    Histogram &h = registry.histogram("sizes", options);

    ASSERT_EQ(h.bounds().size(), 4u);
    EXPECT_EQ(h.bounds()[0], 1u);
    EXPECT_EQ(h.bounds()[1], 2u);
    EXPECT_EQ(h.bounds()[2], 4u);
    EXPECT_EQ(h.bounds()[3], 8u);

    EXPECT_EQ(h.bucketIndex(0), 0u);
    EXPECT_EQ(h.bucketIndex(1), 0u); // inclusive upper bound
    EXPECT_EQ(h.bucketIndex(2), 1u);
    EXPECT_EQ(h.bucketIndex(3), 2u);
    EXPECT_EQ(h.bucketIndex(4), 2u);
    EXPECT_EQ(h.bucketIndex(8), 3u);
    EXPECT_EQ(h.bucketIndex(9), 4u); // overflow bucket

    h.observe(1);
    h.observe(8);
    h.observe(8);
    h.observe(1000);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.sum(), 1017u);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(3), 2u);
    EXPECT_EQ(h.bucketCount(4), 1u);
}

TEST(MetricsTest, HistogramOptionsApplyOnlyOnCreation)
{
    MetricsRegistry registry;
    HistogramOptions small;
    small.buckets = 2;
    Histogram &first = registry.histogram("h", small);
    HistogramOptions big;
    big.buckets = 30;
    Histogram &second = registry.histogram("h", big);
    EXPECT_EQ(&first, &second);
    EXPECT_EQ(second.bounds().size(), 2u);
}

TEST(MetricsTest, SnapshotAndResetCoverEveryInstrument)
{
    MetricsRegistry registry;
    registry.counter("jobs").add(3);
    registry.gauge("queue").set(9);
    registry.histogram("lat").observe(5);

    const MetricsSnapshot snap = registry.snapshot();
    EXPECT_EQ(snap.counters.at("jobs"), 3u);
    EXPECT_EQ(snap.gauges.at("queue"), 9);
    EXPECT_EQ(snap.histograms.at("lat").count, 1u);
    EXPECT_EQ(snap.histograms.at("lat").sum, 5u);

    registry.reset();
    const MetricsSnapshot zeroed = registry.snapshot();
    EXPECT_EQ(zeroed.counters.at("jobs"), 0u);
    EXPECT_EQ(zeroed.gauges.at("queue"), 0);
    EXPECT_EQ(zeroed.histograms.at("lat").count, 0u);
}

TEST(MetricsTest, JsonDumpIsValidAndNameSorted)
{
    MetricsRegistry registry;
    registry.counter("b.second").add(2);
    registry.counter("a.first").add(1);
    registry.gauge("depth").set(4);
    registry.histogram("lat").observe(3);

    std::ostringstream out;
    registry.writeJson(out);
    std::string error;
    EXPECT_TRUE(validateJson(out.str(), &error)) << error;
    // Name-sorted field order keeps dumps diffable.
    EXPECT_LT(out.str().find("a.first"), out.str().find("b.second"));
    EXPECT_NE(out.str().find("\"counters\""), std::string::npos);
    EXPECT_NE(out.str().find("\"gauges\""), std::string::npos);
    EXPECT_NE(out.str().find("\"histograms\""), std::string::npos);
}

TEST(MetricsTest, TextDumpListsValues)
{
    MetricsRegistry registry;
    registry.counter("jobs").add(12);
    std::ostringstream out;
    registry.writeText(out);
    EXPECT_NE(out.str().find("jobs"), std::string::npos);
    EXPECT_NE(out.str().find("12"), std::string::npos);
}

TEST(MetricsTest, ConcurrentAddsNeverLoseCounts)
{
    MetricsRegistry registry;
    Counter &c = registry.counter("hot");
    constexpr int kThreads = 8;
    constexpr int kAdds = 10000;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&c] {
            for (int i = 0; i < kAdds; ++i)
                c.add();
        });
    }
    for (auto &w : workers)
        w.join();
    EXPECT_EQ(c.value(),
              static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST(MetricsTest, GlobalRegistryIsAProcessSingleton)
{
    EXPECT_EQ(&MetricsRegistry::global(),
              &MetricsRegistry::global());
}

TEST(MetricsTest, HistogramQuantileReportsBucketUpperBound)
{
    MetricsRegistry registry;
    HistogramOptions options;
    options.first_bound = 10;
    options.growth = 10;
    options.buckets = 3; // Bounds 10, 100, 1000.
    Histogram &h = registry.histogram("latency", options);
    // 90 observations in the first bucket, 9 in the second, 1 in
    // the third: a classic latency tail.
    for (int i = 0; i < 90; ++i)
        h.observe(5);
    for (int i = 0; i < 9; ++i)
        h.observe(50);
    h.observe(500);

    const auto snapshot = registry.snapshot();
    const auto &data = snapshot.histograms.at("latency");
    EXPECT_EQ(data.count, 100u);
    EXPECT_DOUBLE_EQ(histogramQuantile(data, 0.5), 10.0);
    EXPECT_DOUBLE_EQ(histogramQuantile(data, 0.9), 10.0);
    EXPECT_DOUBLE_EQ(histogramQuantile(data, 0.95), 100.0);
    EXPECT_DOUBLE_EQ(histogramQuantile(data, 0.99), 100.0);
    EXPECT_DOUBLE_EQ(histogramQuantile(data, 1.0), 1000.0);
}

TEST(MetricsTest, HistogramQuantileEdgeCases)
{
    MetricsSnapshot::HistogramData empty;
    EXPECT_DOUBLE_EQ(histogramQuantile(empty, 0.99), 0.0);

    MetricsRegistry registry;
    HistogramOptions options;
    options.first_bound = 10;
    options.growth = 10;
    options.buckets = 2; // Bounds 10, 100.
    Histogram &h = registry.histogram("overflow", options);
    h.observe(5);
    h.observe(12345); // Lands in the overflow bucket.
    const auto snapshot = registry.snapshot();
    const auto &data = snapshot.histograms.at("overflow");
    // Overflow observations can only report the last finite
    // bound — a lower bound on the truth, not an invention.
    EXPECT_DOUBLE_EQ(histogramQuantile(data, 1.0), 100.0);
    EXPECT_DOUBLE_EQ(histogramQuantile(data, 0.25), 10.0);
}

TEST(MetricsTest, HistogramQuantileSingleBucket)
{
    MetricsSnapshot::HistogramData data;
    data.count = 5;
    data.sum = 25;
    data.bounds = {10};
    data.bucket_counts = {5, 0};
    EXPECT_DOUBLE_EQ(histogramQuantile(data, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(histogramQuantile(data, 0.5), 10.0);
    EXPECT_DOUBLE_EQ(histogramQuantile(data, 1.0), 10.0);
}

TEST(MetricsTest, HistogramQuantileClampsDegenerateQ)
{
    MetricsSnapshot::HistogramData data;
    data.count = 4;
    data.bounds = {10, 100};
    data.bucket_counts = {2, 2, 0};
    // Out-of-range q clamps instead of indexing garbage; NaN
    // behaves as q=0, never casts into the rank arithmetic.
    EXPECT_DOUBLE_EQ(histogramQuantile(data, -3.0), 10.0);
    EXPECT_DOUBLE_EQ(histogramQuantile(data, 7.0), 100.0);
    EXPECT_DOUBLE_EQ(histogramQuantile(data, std::nan("")), 10.0);
}

TEST(MetricsTest, HistogramQuantileBoundaryRanks)
{
    MetricsSnapshot::HistogramData data;
    data.count = 100;
    data.bounds = {10, 100};
    data.bucket_counts = {50, 50, 0};
    // Rank ceil(q*N): the 50th observation still sits in bucket 0,
    // the 51st in bucket 1 — q=0.5 must not round up a bucket.
    EXPECT_DOUBLE_EQ(histogramQuantile(data, 0.5), 10.0);
    EXPECT_DOUBLE_EQ(histogramQuantile(data, 0.51), 100.0);
    EXPECT_DOUBLE_EQ(histogramQuantile(data, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(histogramQuantile(data, 1.0), 100.0);
}

TEST(MetricsTest, ParseMetricNameSplitsLabels)
{
    const ParsedMetricName plain = parseMetricName("serve.polls");
    EXPECT_EQ(plain.base, "serve.polls");
    EXPECT_TRUE(plain.labels.empty());

    const ParsedMetricName labeled = parseMetricName(
        "analyzer.ingest_bytes_per_sec{session=run1}");
    EXPECT_EQ(labeled.base, "analyzer.ingest_bytes_per_sec");
    ASSERT_EQ(labeled.labels.size(), 1u);
    EXPECT_EQ(labeled.labels[0].first, "session");
    EXPECT_EQ(labeled.labels[0].second, "run1");

    const ParsedMetricName multi =
        parseMetricName("m{a=1,b=two}");
    EXPECT_EQ(multi.base, "m");
    ASSERT_EQ(multi.labels.size(), 2u);
    EXPECT_EQ(multi.labels[1].first, "b");
    EXPECT_EQ(multi.labels[1].second, "two");
}

TEST(MetricsTest, EscapeLabelValueCoversSpecCharacters)
{
    EXPECT_EQ(escapeLabelValue("plain"), "plain");
    EXPECT_EQ(escapeLabelValue("a\"b"), "a\\\"b");
    EXPECT_EQ(escapeLabelValue("a\\b"), "a\\\\b");
    EXPECT_EQ(escapeLabelValue("a\nb"), "a\\nb");
    // A value exercising every escape at once survives intact.
    EXPECT_EQ(escapeLabelValue("\\\"\n"), "\\\\\\\"\\n");
}

TEST(MetricsTest, OpenMetricsGoldenExposition)
{
    MetricsSnapshot snap;
    snap.counters["analyzer.jobs{session=run1}"] = 7;
    snap.counters["serve.records_ingested"] = 42;
    snap.gauges["analyzer.ingest_bytes_per_sec{session=run1}"] =
        1024;
    MetricsSnapshot::HistogramData h;
    h.count = 3;
    h.sum = 30;
    h.bounds = {10, 100};
    h.bucket_counts = {2, 1, 0};
    snap.histograms["serve.ingest_chunk_us"] = h;

    std::ostringstream out;
    writeOpenMetrics(snap, out);
    EXPECT_EQ(out.str(),
              "# TYPE analyzer_jobs counter\n"
              "analyzer_jobs_total{session=\"run1\"} 7\n"
              "# TYPE serve_records_ingested counter\n"
              "serve_records_ingested_total 42\n"
              "# TYPE analyzer_ingest_bytes_per_sec gauge\n"
              "analyzer_ingest_bytes_per_sec{session=\"run1\"} "
              "1024\n"
              "# TYPE serve_ingest_chunk_us histogram\n"
              "serve_ingest_chunk_us_bucket{le=\"10\"} 2\n"
              "serve_ingest_chunk_us_bucket{le=\"100\"} 3\n"
              "serve_ingest_chunk_us_bucket{le=\"+Inf\"} 3\n"
              "serve_ingest_chunk_us_sum 30\n"
              "serve_ingest_chunk_us_count 3\n"
              "# EOF\n");
}

TEST(MetricsTest, OpenMetricsEscapesHostileLabelValues)
{
    MetricsSnapshot snap;
    snap.gauges["lag{session=evil\"name\\with\nnewline}"] = 5;
    std::ostringstream out;
    writeOpenMetrics(snap, out);
    EXPECT_NE(
        out.str().find(
            "lag{session=\"evil\\\"name\\\\with\\nnewline\"} 5"),
        std::string::npos)
        << out.str();
    // The exposition never carries a raw newline inside a label.
    EXPECT_EQ(out.str().find("evil\"name"), std::string::npos);
}

TEST(MetricsTest, JsonAndOpenMetricsAgreeOnOneSnapshot)
{
    MetricsRegistry registry;
    registry.counter("jobs").add(9);
    registry.gauge("depth{session=s1}").set(-4);
    HistogramOptions options;
    options.first_bound = 8;
    options.buckets = 2;
    registry.histogram("lat_us", options).observe(5);

    // Both renderings come from the *same* snapshot, so a scraper
    // reading the OpenMetrics file and an operator reading the
    // JSON dump can never disagree about a value.
    const MetricsSnapshot snap = registry.snapshot();
    std::ostringstream json, text;
    writeMetricsJson(snap, json);
    writeOpenMetrics(snap, text);

    std::string error;
    EXPECT_TRUE(validateJson(json.str(), &error)) << error;
    EXPECT_NE(json.str().find("\"jobs\":9"), std::string::npos)
        << json.str();
    EXPECT_NE(text.str().find("jobs_total 9"), std::string::npos);
    EXPECT_NE(json.str().find("\"depth{session=s1}\":-4"),
              std::string::npos)
        << json.str();
    EXPECT_NE(text.str().find("depth{session=\"s1\"} -4"),
              std::string::npos);
    EXPECT_NE(text.str().find("lat_us_count 1"),
              std::string::npos);
    // The terminator proves a scrape read the whole document.
    const std::string exposition = text.str();
    ASSERT_GE(exposition.size(), 6u);
    EXPECT_EQ(exposition.substr(exposition.size() - 6), "# EOF\n");
}

TEST(MetricsTest, OpenMetricsSanitizesNames)
{
    MetricsSnapshot snap;
    snap.counters["serve.odd-name"] = 1;
    snap.counters["9starts_with_digit"] = 2;
    std::ostringstream out;
    writeOpenMetrics(snap, out);
    EXPECT_NE(out.str().find("serve_odd_name_total 1"),
              std::string::npos);
    EXPECT_NE(out.str().find("_9starts_with_digit_total 2"),
              std::string::npos);
}

} // namespace
} // namespace obs
} // namespace tpupoint

/** @file Metrics registry: instruments, buckets, snapshots. */

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "core/json.hh"
#include "obs/metrics.hh"

namespace tpupoint {
namespace obs {
namespace {

TEST(MetricsTest, CounterAccumulatesAndResets)
{
    MetricsRegistry registry;
    Counter &c = registry.counter("events");
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(MetricsTest, GaugeIsLastWriteWins)
{
    MetricsRegistry registry;
    Gauge &g = registry.gauge("depth");
    g.set(7);
    g.set(-3);
    EXPECT_EQ(g.value(), -3);
}

TEST(MetricsTest, SameNameReturnsSameInstrument)
{
    MetricsRegistry registry;
    Counter &a = registry.counter("x");
    Counter &b = registry.counter("x");
    EXPECT_EQ(&a, &b);
    a.add(5);
    EXPECT_EQ(b.value(), 5u);
}

TEST(MetricsTest, HistogramBucketBoundariesAreInclusive)
{
    // Bounds 1, 2, 4, 8; bucket i counts v <= bound[i].
    HistogramOptions options;
    options.first_bound = 1;
    options.growth = 2;
    options.buckets = 4;
    MetricsRegistry registry;
    Histogram &h = registry.histogram("sizes", options);

    ASSERT_EQ(h.bounds().size(), 4u);
    EXPECT_EQ(h.bounds()[0], 1u);
    EXPECT_EQ(h.bounds()[1], 2u);
    EXPECT_EQ(h.bounds()[2], 4u);
    EXPECT_EQ(h.bounds()[3], 8u);

    EXPECT_EQ(h.bucketIndex(0), 0u);
    EXPECT_EQ(h.bucketIndex(1), 0u); // inclusive upper bound
    EXPECT_EQ(h.bucketIndex(2), 1u);
    EXPECT_EQ(h.bucketIndex(3), 2u);
    EXPECT_EQ(h.bucketIndex(4), 2u);
    EXPECT_EQ(h.bucketIndex(8), 3u);
    EXPECT_EQ(h.bucketIndex(9), 4u); // overflow bucket

    h.observe(1);
    h.observe(8);
    h.observe(8);
    h.observe(1000);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.sum(), 1017u);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(3), 2u);
    EXPECT_EQ(h.bucketCount(4), 1u);
}

TEST(MetricsTest, HistogramOptionsApplyOnlyOnCreation)
{
    MetricsRegistry registry;
    HistogramOptions small;
    small.buckets = 2;
    Histogram &first = registry.histogram("h", small);
    HistogramOptions big;
    big.buckets = 30;
    Histogram &second = registry.histogram("h", big);
    EXPECT_EQ(&first, &second);
    EXPECT_EQ(second.bounds().size(), 2u);
}

TEST(MetricsTest, SnapshotAndResetCoverEveryInstrument)
{
    MetricsRegistry registry;
    registry.counter("jobs").add(3);
    registry.gauge("queue").set(9);
    registry.histogram("lat").observe(5);

    const MetricsSnapshot snap = registry.snapshot();
    EXPECT_EQ(snap.counters.at("jobs"), 3u);
    EXPECT_EQ(snap.gauges.at("queue"), 9);
    EXPECT_EQ(snap.histograms.at("lat").count, 1u);
    EXPECT_EQ(snap.histograms.at("lat").sum, 5u);

    registry.reset();
    const MetricsSnapshot zeroed = registry.snapshot();
    EXPECT_EQ(zeroed.counters.at("jobs"), 0u);
    EXPECT_EQ(zeroed.gauges.at("queue"), 0);
    EXPECT_EQ(zeroed.histograms.at("lat").count, 0u);
}

TEST(MetricsTest, JsonDumpIsValidAndNameSorted)
{
    MetricsRegistry registry;
    registry.counter("b.second").add(2);
    registry.counter("a.first").add(1);
    registry.gauge("depth").set(4);
    registry.histogram("lat").observe(3);

    std::ostringstream out;
    registry.writeJson(out);
    std::string error;
    EXPECT_TRUE(validateJson(out.str(), &error)) << error;
    // Name-sorted field order keeps dumps diffable.
    EXPECT_LT(out.str().find("a.first"), out.str().find("b.second"));
    EXPECT_NE(out.str().find("\"counters\""), std::string::npos);
    EXPECT_NE(out.str().find("\"gauges\""), std::string::npos);
    EXPECT_NE(out.str().find("\"histograms\""), std::string::npos);
}

TEST(MetricsTest, TextDumpListsValues)
{
    MetricsRegistry registry;
    registry.counter("jobs").add(12);
    std::ostringstream out;
    registry.writeText(out);
    EXPECT_NE(out.str().find("jobs"), std::string::npos);
    EXPECT_NE(out.str().find("12"), std::string::npos);
}

TEST(MetricsTest, ConcurrentAddsNeverLoseCounts)
{
    MetricsRegistry registry;
    Counter &c = registry.counter("hot");
    constexpr int kThreads = 8;
    constexpr int kAdds = 10000;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&c] {
            for (int i = 0; i < kAdds; ++i)
                c.add();
        });
    }
    for (auto &w : workers)
        w.join();
    EXPECT_EQ(c.value(),
              static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST(MetricsTest, GlobalRegistryIsAProcessSingleton)
{
    EXPECT_EQ(&MetricsRegistry::global(),
              &MetricsRegistry::global());
}

TEST(MetricsTest, HistogramQuantileReportsBucketUpperBound)
{
    MetricsRegistry registry;
    HistogramOptions options;
    options.first_bound = 10;
    options.growth = 10;
    options.buckets = 3; // Bounds 10, 100, 1000.
    Histogram &h = registry.histogram("latency", options);
    // 90 observations in the first bucket, 9 in the second, 1 in
    // the third: a classic latency tail.
    for (int i = 0; i < 90; ++i)
        h.observe(5);
    for (int i = 0; i < 9; ++i)
        h.observe(50);
    h.observe(500);

    const auto snapshot = registry.snapshot();
    const auto &data = snapshot.histograms.at("latency");
    EXPECT_EQ(data.count, 100u);
    EXPECT_DOUBLE_EQ(histogramQuantile(data, 0.5), 10.0);
    EXPECT_DOUBLE_EQ(histogramQuantile(data, 0.9), 10.0);
    EXPECT_DOUBLE_EQ(histogramQuantile(data, 0.95), 100.0);
    EXPECT_DOUBLE_EQ(histogramQuantile(data, 0.99), 100.0);
    EXPECT_DOUBLE_EQ(histogramQuantile(data, 1.0), 1000.0);
}

TEST(MetricsTest, HistogramQuantileEdgeCases)
{
    MetricsSnapshot::HistogramData empty;
    EXPECT_DOUBLE_EQ(histogramQuantile(empty, 0.99), 0.0);

    MetricsRegistry registry;
    HistogramOptions options;
    options.first_bound = 10;
    options.growth = 10;
    options.buckets = 2; // Bounds 10, 100.
    Histogram &h = registry.histogram("overflow", options);
    h.observe(5);
    h.observe(12345); // Lands in the overflow bucket.
    const auto snapshot = registry.snapshot();
    const auto &data = snapshot.histograms.at("overflow");
    // Overflow observations can only report the last finite
    // bound — a lower bound on the truth, not an invention.
    EXPECT_DOUBLE_EQ(histogramQuantile(data, 1.0), 100.0);
    EXPECT_DOUBLE_EQ(histogramQuantile(data, 0.25), 10.0);
}

} // namespace
} // namespace obs
} // namespace tpupoint

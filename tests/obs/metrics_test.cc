/** @file Metrics registry: instruments, buckets, snapshots. */

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "core/json.hh"
#include "obs/metrics.hh"

namespace tpupoint {
namespace obs {
namespace {

TEST(MetricsTest, CounterAccumulatesAndResets)
{
    MetricsRegistry registry;
    Counter &c = registry.counter("events");
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(MetricsTest, GaugeIsLastWriteWins)
{
    MetricsRegistry registry;
    Gauge &g = registry.gauge("depth");
    g.set(7);
    g.set(-3);
    EXPECT_EQ(g.value(), -3);
}

TEST(MetricsTest, SameNameReturnsSameInstrument)
{
    MetricsRegistry registry;
    Counter &a = registry.counter("x");
    Counter &b = registry.counter("x");
    EXPECT_EQ(&a, &b);
    a.add(5);
    EXPECT_EQ(b.value(), 5u);
}

TEST(MetricsTest, HistogramBucketBoundariesAreInclusive)
{
    // Bounds 1, 2, 4, 8; bucket i counts v <= bound[i].
    HistogramOptions options;
    options.first_bound = 1;
    options.growth = 2;
    options.buckets = 4;
    MetricsRegistry registry;
    Histogram &h = registry.histogram("sizes", options);

    ASSERT_EQ(h.bounds().size(), 4u);
    EXPECT_EQ(h.bounds()[0], 1u);
    EXPECT_EQ(h.bounds()[1], 2u);
    EXPECT_EQ(h.bounds()[2], 4u);
    EXPECT_EQ(h.bounds()[3], 8u);

    EXPECT_EQ(h.bucketIndex(0), 0u);
    EXPECT_EQ(h.bucketIndex(1), 0u); // inclusive upper bound
    EXPECT_EQ(h.bucketIndex(2), 1u);
    EXPECT_EQ(h.bucketIndex(3), 2u);
    EXPECT_EQ(h.bucketIndex(4), 2u);
    EXPECT_EQ(h.bucketIndex(8), 3u);
    EXPECT_EQ(h.bucketIndex(9), 4u); // overflow bucket

    h.observe(1);
    h.observe(8);
    h.observe(8);
    h.observe(1000);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.sum(), 1017u);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(3), 2u);
    EXPECT_EQ(h.bucketCount(4), 1u);
}

TEST(MetricsTest, HistogramOptionsApplyOnlyOnCreation)
{
    MetricsRegistry registry;
    HistogramOptions small;
    small.buckets = 2;
    Histogram &first = registry.histogram("h", small);
    HistogramOptions big;
    big.buckets = 30;
    Histogram &second = registry.histogram("h", big);
    EXPECT_EQ(&first, &second);
    EXPECT_EQ(second.bounds().size(), 2u);
}

TEST(MetricsTest, SnapshotAndResetCoverEveryInstrument)
{
    MetricsRegistry registry;
    registry.counter("jobs").add(3);
    registry.gauge("queue").set(9);
    registry.histogram("lat").observe(5);

    const MetricsSnapshot snap = registry.snapshot();
    EXPECT_EQ(snap.counters.at("jobs"), 3u);
    EXPECT_EQ(snap.gauges.at("queue"), 9);
    EXPECT_EQ(snap.histograms.at("lat").count, 1u);
    EXPECT_EQ(snap.histograms.at("lat").sum, 5u);

    registry.reset();
    const MetricsSnapshot zeroed = registry.snapshot();
    EXPECT_EQ(zeroed.counters.at("jobs"), 0u);
    EXPECT_EQ(zeroed.gauges.at("queue"), 0);
    EXPECT_EQ(zeroed.histograms.at("lat").count, 0u);
}

TEST(MetricsTest, JsonDumpIsValidAndNameSorted)
{
    MetricsRegistry registry;
    registry.counter("b.second").add(2);
    registry.counter("a.first").add(1);
    registry.gauge("depth").set(4);
    registry.histogram("lat").observe(3);

    std::ostringstream out;
    registry.writeJson(out);
    std::string error;
    EXPECT_TRUE(validateJson(out.str(), &error)) << error;
    // Name-sorted field order keeps dumps diffable.
    EXPECT_LT(out.str().find("a.first"), out.str().find("b.second"));
    EXPECT_NE(out.str().find("\"counters\""), std::string::npos);
    EXPECT_NE(out.str().find("\"gauges\""), std::string::npos);
    EXPECT_NE(out.str().find("\"histograms\""), std::string::npos);
}

TEST(MetricsTest, TextDumpListsValues)
{
    MetricsRegistry registry;
    registry.counter("jobs").add(12);
    std::ostringstream out;
    registry.writeText(out);
    EXPECT_NE(out.str().find("jobs"), std::string::npos);
    EXPECT_NE(out.str().find("12"), std::string::npos);
}

TEST(MetricsTest, ConcurrentAddsNeverLoseCounts)
{
    MetricsRegistry registry;
    Counter &c = registry.counter("hot");
    constexpr int kThreads = 8;
    constexpr int kAdds = 10000;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&c] {
            for (int i = 0; i < kAdds; ++i)
                c.add();
        });
    }
    for (auto &w : workers)
        w.join();
    EXPECT_EQ(c.value(),
              static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST(MetricsTest, GlobalRegistryIsAProcessSingleton)
{
    EXPECT_EQ(&MetricsRegistry::global(),
              &MetricsRegistry::global());
}

} // namespace
} // namespace obs
} // namespace tpupoint

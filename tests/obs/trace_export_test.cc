/** @file Trace-event JSON export: golden format and filters. */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/json.hh"
#include "obs/trace_export.hh"
#include "tests/analyzer/synthetic.hh"

namespace tpupoint {
namespace obs {
namespace {

/** A hand-built window whose timings print as clean integers. */
ProfileRecord
tinyWindow()
{
    StepStats step;
    step.step = 3;
    step.begin = 1000; // ns -> 1 us in the trace
    step.end = 5000;
    OpStats matmul;
    matmul.count = 2;
    matmul.total_duration = 3000;
    step.tpu_ops["MatMul"] = matmul;
    OpStats recv;
    recv.count = 1;
    recv.total_duration = 1000;
    step.host_ops["Recv"] = recv;

    ProfileRecord record;
    record.sequence = 0;
    record.window_begin = 0;
    record.window_end = 10000;
    record.event_count = 3;
    record.tpu_idle_fraction = 0.5;
    record.mxu_utilization = 0.25;
    record.steps.push_back(step);
    return record;
}

ProfileRecord
boundaryMarker()
{
    ProfileRecord record;
    record.attempt_boundary = true;
    record.attempt = 2;
    record.window_begin = 10000;
    record.preempted_at_step = 7;
    record.resume_step = 4;
    return record;
}

/**
 * The golden test: pins the exported trace-event JSON byte for
 * byte. chrome://tracing and Perfetto both parse this document —
 * any change to the format must update this expectation
 * deliberately.
 */
TEST(TraceExportTest, GoldenProfileTrace)
{
    std::ostringstream out;
    writeProfileTrace({tinyWindow(), boundaryMarker()}, out);

    const std::string expected =
        "{\"traceEvents\":["
        // Track names (one metadata event per tid).
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
        "\"tid\":1,\"args\":{\"name\":\"Steps\"}},"
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
        "\"tid\":2,\"args\":{\"name\":\"TPU ops\"}},"
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
        "\"tid\":3,\"args\":{\"name\":\"Host ops\"}},"
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
        "\"tid\":4,\"args\":{\"name\":\"Profile windows\"}},"
        // The profile window itself.
        "{\"name\":\"profile 0\",\"ph\":\"X\",\"pid\":1,"
        "\"tid\":4,\"ts\":0,\"dur\":10,\"args\":{\"count\":3}},"
        // Device counters sampled with the window.
        "{\"name\":\"tpu_idle_fraction\",\"ph\":\"C\",\"pid\":1,"
        "\"ts\":0,\"args\":{\"value\":0.5}},"
        "{\"name\":\"mxu_utilization\",\"ph\":\"C\",\"pid\":1,"
        "\"ts\":0,\"args\":{\"value\":0.25}},"
        // One X event per step, then per per-step op row.
        "{\"name\":\"step 3\",\"ph\":\"X\",\"pid\":1,\"tid\":1,"
        "\"ts\":1,\"dur\":4},"
        "{\"name\":\"MatMul\",\"ph\":\"X\",\"pid\":1,\"tid\":2,"
        "\"ts\":1,\"dur\":3,\"args\":{\"count\":2}},"
        "{\"name\":\"Recv\",\"ph\":\"X\",\"pid\":1,\"tid\":3,"
        "\"ts\":1,\"dur\":1,\"args\":{\"count\":1}},"
        // Instant event at the attempt boundary.
        "{\"name\":\"preempted (attempt 2)\",\"ph\":\"i\","
        "\"pid\":1,\"tid\":1,\"ts\":10,\"s\":\"g\","
        "\"args\":{\"preempted_at_step\":7,\"resume_step\":4,"
        "\"attempt\":2}}"
        "],\"displayTimeUnit\":\"ms\"}";
    EXPECT_EQ(out.str(), expected);

    std::string error;
    EXPECT_TRUE(validateJson(out.str(), &error)) << error;
}

TEST(TraceExportTest, EveryOpBecomesOneDurationEvent)
{
    const auto steps = testutil::threePhaseRun(10, 2);
    const ProfileRecord record = testutil::makeRecord(steps);

    std::uint64_t op_rows = 0;
    for (const auto &s : record.steps)
        op_rows += s.tpu_ops.size() + s.host_ops.size();

    std::ostringstream out;
    ProfileTraceWriter writer(out);
    writer.add(record);
    writer.finish();
    // window + one per step + one per op row.
    EXPECT_EQ(writer.durationEvents(),
              1 + record.steps.size() + op_rows);
    EXPECT_EQ(writer.instantEvents(), 0u);

    std::string error;
    EXPECT_TRUE(validateJson(out.str(), &error)) << error;
}

TEST(TraceExportTest, StepRangeFilterCountsWhatItSkips)
{
    const ProfileRecord record =
        testutil::makeRecord(testutil::threePhaseRun(10, 2));
    ProfileTraceOptions options;
    options.first_step = 2;
    options.last_step = 4;

    std::ostringstream out;
    ProfileTraceWriter writer(out, options);
    writer.add(record);
    writer.finish();
    EXPECT_EQ(writer.stepsFiltered(), record.steps.size() - 3);
    EXPECT_NE(out.str().find("\"step 3\""), std::string::npos);
    EXPECT_EQ(out.str().find("\"step 7\""), std::string::npos);
}

TEST(TraceExportTest, OpAndCounterTracksCanBeSuppressed)
{
    ProfileTraceOptions options;
    options.include_ops = false;
    options.include_counters = false;

    std::ostringstream out;
    ProfileTraceWriter writer(out, options);
    writer.add(tinyWindow());
    writer.finish();
    EXPECT_EQ(out.str().find("MatMul"), std::string::npos);
    EXPECT_EQ(out.str().find("tpu_idle_fraction"),
              std::string::npos);
    EXPECT_NE(out.str().find("\"step 3\""), std::string::npos);
}

TEST(TraceExportTest, SpanTraceNormalizesToZeroOrigin)
{
    SpanRecord a;
    a.name = "analyze.ingest";
    a.thread_id = 1;
    a.begin_ns = 5'000'000;
    a.end_ns = 7'000'000;
    SpanRecord b;
    b.name = "analyze.kmeans";
    b.thread_id = 2;
    b.begin_ns = 6'000'000;
    b.end_ns = 6'500'000;
    b.args.emplace_back("steps", "97");

    std::ostringstream out;
    writeSpanTrace({a, b}, out);
    const std::string text = out.str();
    std::string error;
    EXPECT_TRUE(validateJson(text, &error)) << error;
    // Earliest span starts at ts 0; the later one at +1000 us.
    EXPECT_NE(text.find("\"ts\":0,\"dur\":2000"),
              std::string::npos);
    EXPECT_NE(text.find("\"ts\":1000,\"dur\":500"),
              std::string::npos);
    EXPECT_NE(text.find("\"pid\":2"), std::string::npos);
    EXPECT_NE(text.find("\"steps\":\"97\""), std::string::npos);
}

} // namespace
} // namespace obs
} // namespace tpupoint

/** @file Flight recorder: ring semantics, dumps, signal path. */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/io_faults.hh"
#include "core/json.hh"
#include "obs/flight_recorder.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"

#ifdef __unix__
#include <unistd.h>
#endif

namespace tpupoint {
namespace obs {
namespace {

std::string
tempPath(const std::string &name)
{
    std::string path = testing::TempDir();
#ifdef __unix__
    path += std::to_string(getpid()) + ".";
#endif
    path += name;
    std::error_code ec;
    std::filesystem::remove(path, ec);
    return path;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

struct FlightRecorderTest : ::testing::Test
{
    void TearDown() override
    {
        io::FaultInjector::global().reset();
    }
};

TEST_F(FlightRecorderTest, DisabledRecorderDropsEverything)
{
    FlightRecorder recorder(8);
    recorder.record("{\"a\":1}");
    EXPECT_EQ(recorder.recorded(), 0u);
}

TEST_F(FlightRecorderTest, WriteJsonRoundTripsRecordedEvents)
{
    FlightRecorder recorder(8);
    recorder.enable();
    recorder.record("{\"a\":1}");
    recorder.record("{\"b\":2}");

    std::ostringstream out;
    recorder.writeJson(out, "test \"reason\"");
    std::string why;
    EXPECT_TRUE(validateJson(out.str(), &why)) << out.str()
                                               << "\n"
                                               << why;
    EXPECT_NE(out.str().find("{\"a\":1}"), std::string::npos);
    EXPECT_NE(out.str().find("{\"b\":2}"), std::string::npos);
    // The reason lands escaped, and the live metrics registry
    // rides along so a dump is self-describing.
    EXPECT_NE(out.str().find("test \\\"reason\\\""),
              std::string::npos);
    EXPECT_NE(out.str().find("\"metrics\":"), std::string::npos);
}

TEST_F(FlightRecorderTest, RingRetainsOnlyTheMostRecentEvents)
{
    FlightRecorder recorder(4);
    recorder.enable();
    for (int i = 0; i < 10; ++i)
        recorder.record("{\"i\":" + std::to_string(i) + "}");
    EXPECT_EQ(recorder.recorded(), 10u);

    std::ostringstream out;
    recorder.writeJson(out, "wrap");
    EXPECT_EQ(out.str().find("{\"i\":0}"), std::string::npos);
    EXPECT_EQ(out.str().find("{\"i\":5}"), std::string::npos);
    for (int i = 6; i < 10; ++i)
        EXPECT_NE(out.str().find(
                      "{\"i\":" + std::to_string(i) + "}"),
                  std::string::npos)
            << i;
}

TEST_F(FlightRecorderTest, OversizeEntriesBecomeMarkers)
{
    FlightRecorder recorder(4);
    recorder.enable();
    const std::string huge(kFlightSlotBytes + 100, 'x');
    recorder.record(huge);
    EXPECT_EQ(recorder.droppedOversize(), 1u);

    std::ostringstream out;
    recorder.writeJson(out, "oversize");
    std::string why;
    EXPECT_TRUE(validateJson(out.str(), &why)) << why;
    EXPECT_NE(out.str().find("\"kind\":\"oversize\""),
              std::string::npos);
    // The payload itself never lands truncated-mid-JSON.
    EXPECT_EQ(out.str().find("xxx"), std::string::npos);
}

TEST_F(FlightRecorderTest, RecordSpanSerializesTheSpan)
{
    FlightRecorder recorder(4);
    recorder.enable();
    SpanRecord span;
    span.name = "serve.ingest";
    span.thread_id = 7;
    span.begin_ns = 100;
    span.end_ns = 350;
    span.args.emplace_back("session", "run1");
    recorder.recordSpan(span);

    std::ostringstream out;
    recorder.writeJson(out, "span");
    std::string why;
    EXPECT_TRUE(validateJson(out.str(), &why)) << why;
    EXPECT_NE(out.str().find("\"kind\":\"span\""),
              std::string::npos);
    EXPECT_NE(out.str().find("\"name\":\"serve.ingest\""),
              std::string::npos);
    EXPECT_NE(out.str().find("\"dur_ns\":250"),
              std::string::npos);
    EXPECT_NE(out.str().find("\"session\":\"run1\""),
              std::string::npos);
}

TEST_F(FlightRecorderTest, RecordSnapshotTruncatesAtSlotBudget)
{
    FlightRecorder recorder(4);
    recorder.enable();
    MetricsSnapshot snapshot;
    for (int i = 0; i < 100; ++i)
        snapshot.counters["very.long.counter.name.padding." +
                          std::to_string(i)] = i;
    recorder.recordSnapshot(snapshot);

    std::ostringstream out;
    recorder.writeJson(out, "snapshot");
    std::string why;
    ASSERT_TRUE(validateJson(out.str(), &why)) << why;
    EXPECT_NE(out.str().find("\"kind\":\"metrics\""),
              std::string::npos);
    EXPECT_NE(out.str().find("\"truncated\":true"),
              std::string::npos);
}

TEST_F(FlightRecorderTest, DumpPublishesAtomically)
{
    FlightRecorder recorder(4);
    recorder.enable();
    recorder.record("{\"event\":\"quarantine\"}");
    const std::string path = tempPath("flight_dump.json");
    std::string error;
    ASSERT_TRUE(recorder.dump(path, "quarantine: run1", &error))
        << error;
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

    const std::string doc = readFile(path);
    std::string why;
    EXPECT_TRUE(validateJson(doc, &why)) << why;
    EXPECT_NE(doc.find("\"reason\":\"quarantine: run1\""),
              std::string::npos);
    EXPECT_NE(doc.find("{\"event\":\"quarantine\"}"),
              std::string::npos);
}

TEST_F(FlightRecorderTest, DumpFailureLeavesNoTempBehind)
{
    FlightRecorder recorder(4);
    recorder.enable();
    recorder.record("{\"a\":1}");
    ASSERT_TRUE(io::FaultInjector::global().configure(
        "obs.flight_write=enospc@1"));
    const std::string path = tempPath("flight_fail.json");
    std::string error;
    EXPECT_FALSE(recorder.dump(path, "fails", &error));
    EXPECT_NE(error.find("enospc"), std::string::npos) << error;
    EXPECT_FALSE(std::filesystem::exists(path));
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST_F(FlightRecorderTest, SignalSafeDumpWritesParseableDocument)
{
    FlightRecorder recorder(4);
    recorder.enable();
    recorder.record("{\"last\":\"words\"}");
    const std::string path = tempPath("flight_signal.json");
    ASSERT_TRUE(recorder.setSignalDumpPath(path.c_str()));
    ASSERT_TRUE(recorder.signalSafeDump());

    const std::string doc = readFile(path);
    std::string why;
    EXPECT_TRUE(validateJson(doc, &why)) << doc << "\n" << why;
    EXPECT_NE(doc.find("\"reason\":\"signal\""),
              std::string::npos);
    EXPECT_NE(doc.find("{\"last\":\"words\"}"),
              std::string::npos);
}

TEST_F(FlightRecorderTest, SignalDumpPathRejectsOversizedPaths)
{
    FlightRecorder recorder(4);
    const std::string too_long(600, 'p');
    EXPECT_FALSE(recorder.setSignalDumpPath(too_long.c_str()));
    EXPECT_FALSE(recorder.signalSafeDump()); // No path: no-op.
}

TEST_F(FlightRecorderTest, ConcurrentRecordersNeverTearTheDump)
{
    FlightRecorder recorder(16);
    recorder.enable();
    std::atomic<bool> stop{false};
    std::vector<std::thread> writers;
    for (int t = 0; t < 4; ++t) {
        writers.emplace_back([&recorder, &stop, t] {
            std::uint64_t i = 0;
            while (!stop.load(std::memory_order_relaxed))
                recorder.record("{\"t\":" + std::to_string(t) +
                                ",\"i\":" +
                                std::to_string(i++) + "}");
        });
    }
    // Dump repeatedly while the ring churns: every produced
    // document must stay valid JSON (torn slots skipped, never
    // emitted).
    for (int pass = 0; pass < 20; ++pass) {
        std::ostringstream out;
        recorder.writeJson(out, "churn");
        std::string why;
        ASSERT_TRUE(validateJson(out.str(), &why))
            << why << "\n"
            << out.str();
    }
    stop.store(true, std::memory_order_relaxed);
    for (auto &w : writers)
        w.join();
}

} // namespace
} // namespace obs
} // namespace tpupoint

/**
 * @file
 * AnalysisPipeline error contract and ingest-metric labeling. The
 * batch tools' behavior is pinned exactly — a zero-record profile
 * is Empty with the historical message, never the streaming
 * layer's Pending — and chargeIngestMetrics routes concurrent
 * sessions to per-session gauges instead of one shared,
 * last-write-wins name.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#ifdef __unix__
#include <unistd.h>
#endif

#include "obs/metrics.hh"
#include "proto/serialize.hh"
#include "runtime/analysis_pipeline.hh"
#include "tests/analyzer/synthetic.hh"
#include "trace/record_stream.hh"

namespace tpupoint {
namespace runtime {
namespace {

std::string
tempPath(const std::string &name)
{
#ifdef __unix__
    return testing::TempDir() + std::to_string(getpid()) + "." +
        name;
#else
    return testing::TempDir() + name;
#endif
}

void
writeStream(const std::string &path, std::size_t records)
{
    std::ofstream out(path, std::ios::binary);
    RecordStreamWriter writer(out);
    const auto steps = testutil::threePhaseRun();
    for (std::size_t i = 0; i < records; ++i)
        writer.append(encodeProfileRecord(testutil::makeRecord(
            {steps[i % steps.size()]}, i)));
    writer.finish();
}

TEST(AnalysisPipelineTest, ErrorNamesAreStable)
{
    EXPECT_STREQ(pipelineErrorName(PipelineError::None), "none");
    EXPECT_STREQ(pipelineErrorName(PipelineError::OpenFailed),
                 "open-failed");
    EXPECT_STREQ(pipelineErrorName(PipelineError::Unreadable),
                 "unreadable");
    EXPECT_STREQ(pipelineErrorName(PipelineError::Empty), "empty");
    EXPECT_STREQ(pipelineErrorName(PipelineError::Pending),
                 "pending");
}

// The batch contract: a sealed zero-record profile is Empty, with
// the exact historical message. Pending exists only for the
// streaming layer, where "no records yet" is not a verdict.
TEST(AnalysisPipelineTest, BatchZeroRecordProfileIsEmptyNotPending)
{
    const std::string path = tempPath("pipeline_empty.tpp");
    writeStream(path, 0);

    AnalysisPipeline pipeline;
    const PipelineReport report =
        pipeline.streamProfile(path, [](const ProfileRecord &) {});
    EXPECT_EQ(report.error, PipelineError::Empty);
    EXPECT_EQ(report.message,
              "profile '" + path + "' contains no records");
    EXPECT_EQ(report.records, 0u);
    std::remove(path.c_str());
}

TEST(AnalysisPipelineTest, MissingProfileIsOpenFailed)
{
    const std::string path = tempPath("pipeline_missing.tpp");
    std::remove(path.c_str());
    AnalysisPipeline pipeline;
    AnalysisResult result;
    const PipelineReport report =
        pipeline.analyzeProfile(path, &result);
    EXPECT_EQ(report.error, PipelineError::OpenFailed);
    EXPECT_FALSE(report.message.empty());
}

TEST(AnalysisPipelineTest, AnalyzeChargesUnlabeledGaugeForBatch)
{
    auto &registry = obs::MetricsRegistry::global();
    registry.reset();
    const std::string path = tempPath("pipeline_batch.tpp");
    writeStream(path, 24);

    AnalysisPipeline pipeline;
    AnalysisResult result;
    const PipelineReport report =
        pipeline.analyzeProfile(path, &result);
    ASSERT_TRUE(report.ok()) << report.message;
    EXPECT_EQ(report.records, 24u);

    const obs::MetricsSnapshot snapshot = registry.snapshot();
    // Batch passes keep the historical unlabeled gauge name.
    EXPECT_NE(snapshot.gauges.find("analyzer.ingest_bytes_per_sec"),
              snapshot.gauges.end());
    const auto histogram = snapshot.histograms.find(
        "analyzer.ingest_bytes_per_sec");
    ASSERT_NE(histogram, snapshot.histograms.end());
    EXPECT_GE(histogram->second.count, 1u);
    std::remove(path.c_str());
}

TEST(AnalysisPipelineTest, ConcurrentSessionLabelsDoNotClobber)
{
    auto &registry = obs::MetricsRegistry::global();
    registry.reset();
    // Two interleaved sessions reporting very different rates:
    // with one shared gauge the first write would be lost.
    chargeIngestMetrics("fast", 1000, 8 * 1024 * 1024, 1.0);
    chargeIngestMetrics("slow", 10, 4 * 1024, 1.0);

    const obs::MetricsSnapshot snapshot = registry.snapshot();
    const auto fast = snapshot.gauges.find(
        "analyzer.ingest_bytes_per_sec{session=fast}");
    const auto slow = snapshot.gauges.find(
        "analyzer.ingest_bytes_per_sec{session=slow}");
    ASSERT_NE(fast, snapshot.gauges.end());
    ASSERT_NE(slow, snapshot.gauges.end());
    EXPECT_EQ(fast->second, 8 * 1024 * 1024);
    EXPECT_EQ(slow->second, 4 * 1024);
    // Neither session touched the unlabeled batch gauge...
    EXPECT_EQ(snapshot.gauges.find("analyzer.ingest_bytes_per_sec"),
              snapshot.gauges.end());
    // ...but both passes landed in the aggregate histogram.
    const auto histogram = snapshot.histograms.find(
        "analyzer.ingest_bytes_per_sec");
    ASSERT_NE(histogram, snapshot.histograms.end());
    EXPECT_EQ(histogram->second.count, 2u);
}

} // namespace
} // namespace runtime
} // namespace tpupoint

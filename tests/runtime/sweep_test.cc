/** @file SweepRunner: determinism across thread counts. */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analyzer/analyzer.hh"
#include "proto/serialize.hh"
#include "runtime/sweep.hh"
#include "workloads/catalog.hh"

namespace tpupoint {
namespace {

std::vector<SweepJob>
smallJobs()
{
    const WorkloadId ids[] = {
        WorkloadId::BertMrpc, WorkloadId::DcganCifar10,
        WorkloadId::DcganMnist, WorkloadId::BertCola};
    std::vector<SweepJob> jobs;
    for (const WorkloadId id : ids) {
        WorkloadOptions options;
        options.step_scale = 0.02;
        options.max_train_steps = 120;
        SweepJob job;
        job.workload = makeWorkload(id, options);
        jobs.push_back(std::move(job));
    }
    return jobs;
}

std::vector<SweepOutcome>
runWith(unsigned threads, const std::vector<SweepJob> &jobs)
{
    SweepOptions options;
    options.threads = threads;
    return SweepRunner(options).run(jobs);
}

TEST(SweepRunnerTest, OutcomesLandInJobOrder)
{
    const auto jobs = smallJobs();
    const auto outcomes = runWith(4, jobs);
    ASSERT_EQ(outcomes.size(), jobs.size());
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        EXPECT_EQ(outcomes[i].job_index, i);
        EXPECT_GT(outcomes[i].result.steps_completed, 0u);
        EXPECT_FALSE(outcomes[i].records.empty());
    }
}

TEST(SweepRunnerTest, ThreadCountNeverChangesResults)
{
    const auto jobs = smallJobs();
    const auto serial = runWith(1, jobs);
    const auto parallel = runWith(4, jobs);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        // Bitwise: every profile record serializes identically.
        ASSERT_EQ(serial[i].records.size(),
                  parallel[i].records.size());
        for (std::size_t r = 0; r < serial[i].records.size(); ++r) {
            EXPECT_EQ(encodeProfileRecord(serial[i].records[r]),
                      encodeProfileRecord(parallel[i].records[r]));
        }
        EXPECT_EQ(serial[i].result.wall_time,
                  parallel[i].result.wall_time);
        EXPECT_EQ(serial[i].result.steps_completed,
                  parallel[i].result.steps_completed);
        EXPECT_EQ(serial[i].profiler_bytes,
                  parallel[i].profiler_bytes);
        EXPECT_EQ(serial[i].profile_requests,
                  parallel[i].profile_requests);

        // And the downstream analysis agrees phase for phase.
        const AnalysisResult a =
            TpuPointAnalyzer().analyze(serial[i].records);
        const AnalysisResult b =
            TpuPointAnalyzer().analyze(parallel[i].records);
        ASSERT_EQ(a.phases.size(), b.phases.size());
        for (std::size_t p = 0; p < a.phases.size(); ++p) {
            EXPECT_EQ(a.phases[p].first_step,
                      b.phases[p].first_step);
            EXPECT_EQ(a.phases[p].last_step,
                      b.phases[p].last_step);
            EXPECT_EQ(a.phases[p].total_duration,
                      b.phases[p].total_duration);
        }
        EXPECT_DOUBLE_EQ(a.top3_coverage, b.top3_coverage);
    }
}

TEST(SweepRunnerTest, UnprofiledJobsCarryNoRecords)
{
    auto jobs = smallJobs();
    for (auto &job : jobs)
        job.profile = false;
    const auto outcomes = runWith(2, jobs);
    for (const auto &outcome : outcomes) {
        EXPECT_TRUE(outcome.records.empty());
        EXPECT_EQ(outcome.profiler_bytes, 0u);
        EXPECT_GT(outcome.result.steps_completed, 0u);
    }
}

TEST(SweepRunnerTest, DerivedSeedsDependOnIndexNotThreads)
{
    // The seed is a pure function of (base, salt, index) — the
    // worker that happens to run the job can never perturb it.
    const std::uint64_t a = SweepRunner::jobSeed(1, 2, 3);
    EXPECT_EQ(a, SweepRunner::jobSeed(1, 2, 3));
    EXPECT_NE(a, SweepRunner::jobSeed(1, 2, 4));
    EXPECT_NE(a, SweepRunner::jobSeed(1, 3, 3));
    EXPECT_NE(a, SweepRunner::jobSeed(2, 2, 3));

    auto jobs = smallJobs();
    SweepOptions options;
    options.threads = 3;
    options.derive_seeds = true;
    options.seed_salt = 42;
    const auto first = SweepRunner(options).run(jobs);
    const auto second = SweepRunner(options).run(jobs);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].result.wall_time,
                  second[i].result.wall_time);
    }
}

TEST(SweepRunnerTest, EmptyJobListIsFine)
{
    EXPECT_TRUE(SweepRunner().run({}).empty());
}

} // namespace
} // namespace tpupoint

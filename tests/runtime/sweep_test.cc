/** @file SweepRunner: determinism across thread counts. */

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "analyzer/analyzer.hh"
#include "proto/serialize.hh"
#include "runtime/sweep.hh"
#include "workloads/catalog.hh"

namespace tpupoint {
namespace {

std::vector<SweepJob>
smallJobs()
{
    const WorkloadId ids[] = {
        WorkloadId::BertMrpc, WorkloadId::DcganCifar10,
        WorkloadId::DcganMnist, WorkloadId::BertCola};
    std::vector<SweepJob> jobs;
    for (const WorkloadId id : ids) {
        WorkloadOptions options;
        options.step_scale = 0.02;
        options.max_train_steps = 120;
        SweepJob job;
        job.workload = makeWorkload(id, options);
        jobs.push_back(std::move(job));
    }
    return jobs;
}

std::vector<SweepOutcome>
runWith(unsigned threads, const std::vector<SweepJob> &jobs)
{
    SweepOptions options;
    options.threads = threads;
    return SweepRunner(options).run(jobs);
}

TEST(SweepRunnerTest, OutcomesLandInJobOrder)
{
    const auto jobs = smallJobs();
    const auto outcomes = runWith(4, jobs);
    ASSERT_EQ(outcomes.size(), jobs.size());
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        EXPECT_EQ(outcomes[i].job_index, i);
        EXPECT_GT(outcomes[i].result.steps_completed, 0u);
        EXPECT_FALSE(outcomes[i].records.empty());
    }
}

TEST(SweepRunnerTest, ThreadCountNeverChangesResults)
{
    const auto jobs = smallJobs();
    const auto serial = runWith(1, jobs);
    const auto parallel = runWith(4, jobs);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        // Bitwise: every profile record serializes identically.
        ASSERT_EQ(serial[i].records.size(),
                  parallel[i].records.size());
        for (std::size_t r = 0; r < serial[i].records.size(); ++r) {
            EXPECT_EQ(encodeProfileRecord(serial[i].records[r]),
                      encodeProfileRecord(parallel[i].records[r]));
        }
        EXPECT_EQ(serial[i].result.wall_time,
                  parallel[i].result.wall_time);
        EXPECT_EQ(serial[i].result.steps_completed,
                  parallel[i].result.steps_completed);
        EXPECT_EQ(serial[i].profiler_bytes,
                  parallel[i].profiler_bytes);
        EXPECT_EQ(serial[i].profile_requests,
                  parallel[i].profile_requests);

        // And the downstream analysis agrees phase for phase.
        const AnalysisResult a =
            TpuPointAnalyzer().analyze(serial[i].records);
        const AnalysisResult b =
            TpuPointAnalyzer().analyze(parallel[i].records);
        ASSERT_EQ(a.phases.size(), b.phases.size());
        for (std::size_t p = 0; p < a.phases.size(); ++p) {
            EXPECT_EQ(a.phases[p].first_step,
                      b.phases[p].first_step);
            EXPECT_EQ(a.phases[p].last_step,
                      b.phases[p].last_step);
            EXPECT_EQ(a.phases[p].total_duration,
                      b.phases[p].total_duration);
        }
        EXPECT_DOUBLE_EQ(a.top3_coverage, b.top3_coverage);
    }
}

TEST(SweepRunnerTest, UnprofiledJobsCarryNoRecords)
{
    auto jobs = smallJobs();
    for (auto &job : jobs)
        job.profile = false;
    const auto outcomes = runWith(2, jobs);
    for (const auto &outcome : outcomes) {
        EXPECT_TRUE(outcome.records.empty());
        EXPECT_EQ(outcome.profiler_bytes, 0u);
        EXPECT_GT(outcome.result.steps_completed, 0u);
    }
}

TEST(SweepRunnerTest, DerivedSeedsDependOnIndexNotThreads)
{
    // The seed is a pure function of (base, salt, index) — the
    // worker that happens to run the job can never perturb it.
    const std::uint64_t a = SweepRunner::jobSeed(1, 2, 3);
    EXPECT_EQ(a, SweepRunner::jobSeed(1, 2, 3));
    EXPECT_NE(a, SweepRunner::jobSeed(1, 2, 4));
    EXPECT_NE(a, SweepRunner::jobSeed(1, 3, 3));
    EXPECT_NE(a, SweepRunner::jobSeed(2, 2, 3));

    auto jobs = smallJobs();
    SweepOptions options;
    options.threads = 3;
    options.derive_seeds = true;
    options.seed_salt = 42;
    const auto first = SweepRunner(options).run(jobs);
    const auto second = SweepRunner(options).run(jobs);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].result.wall_time,
                  second[i].result.wall_time);
    }
}

TEST(SweepRunnerTest, EmptyJobListIsFine)
{
    EXPECT_TRUE(SweepRunner().run({}).empty());
}

TEST(SweepRunnerTest, FailingJobDoesNotPoisonTheSweep)
{
    auto jobs = smallJobs();
    // An invalid preemption spec makes the job throw when its
    // session constructs the plan.
    jobs[1].config.preemption.rate_per_hour = -1.0;

    const auto outcomes = SweepRunner(SweepOptions{}).run(jobs);
    ASSERT_EQ(outcomes.size(), jobs.size());
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        if (i == 1) {
            EXPECT_EQ(outcomes[i].status, JobStatus::Failed);
            EXPECT_FALSE(outcomes[i].ok());
            EXPECT_FALSE(outcomes[i].error.empty());
            EXPECT_TRUE(outcomes[i].records.empty());
        } else {
            // Every other job's outcome survives intact.
            EXPECT_EQ(outcomes[i].status, JobStatus::Ok);
            EXPECT_TRUE(outcomes[i].error.empty());
            EXPECT_GT(outcomes[i].result.steps_completed, 0u);
            EXPECT_FALSE(outcomes[i].records.empty());
        }
    }
}

TEST(SweepRunnerTest, StrictModeRethrowsTheFirstFailure)
{
    auto jobs = smallJobs();
    jobs[2].config.preemption.rate_per_hour = -1.0;
    SweepOptions options;
    options.strict = true;
    EXPECT_THROW(SweepRunner(options).run(jobs),
                 std::runtime_error);
}

TEST(SweepRunnerTest, JobRetriesDoNotMaskDeterministicFailures)
{
    auto jobs = smallJobs();
    jobs[0].config.preemption.rate_per_hour = -1.0;
    SweepOptions options;
    options.job_retries = 2;
    const auto outcomes = SweepRunner(options).run(jobs);
    EXPECT_EQ(outcomes[0].status, JobStatus::Failed);
    EXPECT_EQ(outcomes[1].status, JobStatus::Ok);
}

TEST(SweepRunnerTest, PreemptedJobStitchesAttempts)
{
    auto jobs = smallJobs();

    // Run clean once, then preempt job 1 midway through its run.
    const auto clean_outcomes = runWith(1, jobs);
    jobs[1].config.preemption =
        PreemptionSpec::at(clean_outcomes[1].result.wall_time / 2);

    const auto outcomes = runWith(2, jobs);
    const SweepOutcome &preempted = outcomes[1];
    EXPECT_EQ(preempted.status, JobStatus::Ok);
    ASSERT_GE(preempted.attempts, 2u);
    EXPECT_GT(preempted.replayed_steps, 0u);
    // Useful steps across attempts equal the requested steps.
    EXPECT_EQ(preempted.result.steps_completed,
              jobs[1].workload.schedule.train_steps);

    // The stream carries attempt-boundary records for stitching.
    std::size_t boundaries = 0;
    std::uint32_t max_attempt = 0;
    for (const auto &record : preempted.records) {
        boundaries += record.attempt_boundary ? 1 : 0;
        max_attempt = std::max(max_attempt, record.attempt);
    }
    EXPECT_EQ(boundaries, preempted.attempts - 1u);
    EXPECT_EQ(max_attempt, preempted.attempts - 1u);

    // The analyzer stitches the attempts into one profile: same
    // step universe as the uninterrupted run, replay counted once.
    const AnalysisResult stitched =
        TpuPointAnalyzer().analyze(preempted.records);
    EXPECT_EQ(stitched.attempts, preempted.attempts);
    EXPECT_EQ(stitched.replayed_steps, preempted.replayed_steps);
    const AnalysisResult clean =
        TpuPointAnalyzer().analyze(clean_outcomes[1].records);
    // Every train step appears exactly once (the table is keyed by
    // step id). The stitched run may carry fewer eval rows than the
    // clean one: a restarted attempt does not re-run eval rounds
    // already completed before the resume checkpoint, and the
    // preempted attempt's rows past that checkpoint are dropped.
    EXPECT_GE(stitched.table.size(),
              jobs[1].workload.schedule.train_steps);
    EXPECT_LE(stitched.table.size(), clean.table.size());

    // Untouched jobs report single attempts.
    EXPECT_EQ(outcomes[0].attempts, 1u);
    EXPECT_EQ(outcomes[0].replayed_steps, 0u);
}

TEST(SweepRunnerTest, ProgressEventsArriveInOrderPerJob)
{
    const auto jobs = smallJobs();
    // Sink invocations are serialized by the runner, so plain
    // vector appends are safe even with four workers.
    std::vector<obs::ProgressEvent> events;
    SweepOptions options;
    options.threads = 4;
    options.progress = [&events](const obs::ProgressEvent &e) {
        events.push_back(e);
    };
    const auto outcomes = SweepRunner(options).run(jobs);

    // Exactly one start and one finish per job, start first.
    ASSERT_EQ(events.size(), 2 * jobs.size());
    std::vector<int> starts(jobs.size(), 0);
    std::vector<int> finishes(jobs.size(), 0);
    for (const auto &event : events) {
        ASSERT_LT(event.item, jobs.size());
        EXPECT_EQ(event.total, jobs.size());
        if (event.kind == obs::ProgressEvent::Kind::Start) {
            EXPECT_EQ(finishes[event.item], 0)
                << "start after finish for job " << event.item;
            ++starts[event.item];
        } else if (event.kind ==
                   obs::ProgressEvent::Kind::Finish) {
            EXPECT_EQ(starts[event.item], 1);
            ++finishes[event.item];
            EXPECT_STREQ(event.status, "ok");
            EXPECT_GE(event.wall_seconds, 0.0);
        }
    }
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(starts[i], 1);
        EXPECT_EQ(finishes[i], 1);
    }

    // The last event's running totals equal the outcome totals.
    const obs::ProgressEvent &last = events.back();
    std::size_t ok = 0, preempted = 0, failed = 0;
    for (const auto &outcome : outcomes) {
        switch (outcome.status) {
          case JobStatus::Ok: ++ok; break;
          case JobStatus::Preempted: ++preempted; break;
          case JobStatus::Failed: ++failed; break;
        }
    }
    EXPECT_EQ(last.started, jobs.size());
    EXPECT_EQ(last.succeeded, ok);
    EXPECT_EQ(last.preempted, preempted);
    EXPECT_EQ(last.failed, failed);
    EXPECT_EQ(last.retried, 0u);
    EXPECT_EQ(last.finished(), jobs.size());
}

TEST(SweepRunnerTest, ProgressReportsRetriesAndFailures)
{
    auto jobs = smallJobs();
    jobs[1].config.preemption.rate_per_hour = -1.0;
    std::vector<obs::ProgressEvent> events;
    SweepOptions options;
    options.threads = 1;
    options.job_retries = 2;
    options.progress = [&events](const obs::ProgressEvent &e) {
        events.push_back(e);
    };
    const auto outcomes = SweepRunner(options).run(jobs);
    ASSERT_EQ(outcomes[1].status, JobStatus::Failed);

    // Job 1: start (attempt 1), two retries (attempts 2, 3), then
    // a failed finish; the retry totals accumulate.
    std::vector<const obs::ProgressEvent *> job1;
    for (const auto &event : events) {
        if (event.item == 1)
            job1.push_back(&event);
    }
    ASSERT_EQ(job1.size(), 4u);
    EXPECT_EQ(job1[0]->kind, obs::ProgressEvent::Kind::Start);
    EXPECT_EQ(job1[0]->attempt, 1u);
    EXPECT_EQ(job1[1]->kind, obs::ProgressEvent::Kind::Retry);
    EXPECT_EQ(job1[1]->attempt, 2u);
    EXPECT_EQ(job1[2]->kind, obs::ProgressEvent::Kind::Retry);
    EXPECT_EQ(job1[2]->attempt, 3u);
    EXPECT_EQ(job1[3]->kind, obs::ProgressEvent::Kind::Finish);
    EXPECT_STREQ(job1[3]->status, "failed");
    EXPECT_EQ(events.back().retried, 2u);
    EXPECT_EQ(events.back().failed, 1u);
    EXPECT_EQ(events.back().succeeded, jobs.size() - 1);
}

TEST(SweepRunnerTest, ProgressSinkNeverChangesResults)
{
    const auto jobs = smallJobs();
    const auto plain = runWith(2, jobs);
    SweepOptions options;
    options.threads = 2;
    options.progress = [](const obs::ProgressEvent &) {};
    const auto observed = SweepRunner(options).run(jobs);
    ASSERT_EQ(plain.size(), observed.size());
    for (std::size_t i = 0; i < plain.size(); ++i) {
        ASSERT_EQ(plain[i].records.size(),
                  observed[i].records.size());
        for (std::size_t r = 0; r < plain[i].records.size(); ++r) {
            EXPECT_EQ(encodeProfileRecord(plain[i].records[r]),
                      encodeProfileRecord(observed[i].records[r]));
        }
        EXPECT_EQ(plain[i].result.wall_time,
                  observed[i].result.wall_time);
    }
}

TEST(SweepRunnerTest, PreemptedSweepIsThreadCountInvariant)
{
    auto jobs = smallJobs();
    const auto clean = runWith(1, jobs);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        jobs[i].config.preemption =
            PreemptionSpec::at(clean[i].result.wall_time / 2);
    }
    const auto serial = runWith(1, jobs);
    const auto parallel = runWith(4, jobs);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].attempts, parallel[i].attempts);
        EXPECT_EQ(serial[i].replayed_steps,
                  parallel[i].replayed_steps);
        ASSERT_EQ(serial[i].records.size(),
                  parallel[i].records.size());
        for (std::size_t r = 0; r < serial[i].records.size(); ++r) {
            EXPECT_EQ(encodeProfileRecord(serial[i].records[r]),
                      encodeProfileRecord(parallel[i].records[r]));
        }
    }
}

} // namespace
} // namespace tpupoint

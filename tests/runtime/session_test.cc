/** @file End-to-end TrainingSession behaviour. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <stdexcept>
#include <string>

#include "host/host_ops.hh"
#include "profiler/collector.hh"
#include "runtime/session.hh"
#include "workloads/catalog.hh"

namespace tpupoint {
namespace {

RuntimeWorkload
smallWorkload(std::uint64_t steps = 50)
{
    WorkloadOptions options;
    options.step_scale = 0.01;
    options.max_train_steps = steps;
    return makeWorkload(WorkloadId::DcganCifar10, options);
}

TEST(SessionTest, RunsToCompletion)
{
    Simulator sim;
    const RuntimeWorkload w = smallWorkload();
    TrainingSession session(sim, SessionConfig{}, w);
    bool completed = false;
    session.start([&] { completed = true; });
    sim.run();
    ASSERT_TRUE(completed);
    ASSERT_TRUE(session.finished());
    const SessionResult &r = session.result();
    EXPECT_EQ(r.steps_completed, w.schedule.train_steps);
    EXPECT_GT(r.wall_time, 0);
    EXPECT_GT(r.train_window, 0);
    EXPECT_LE(r.train_window, r.wall_time);
    EXPECT_GT(r.tpu.busy, 0);
    EXPECT_GE(r.tpu_idle_fraction, 0.0);
    EXPECT_LE(r.tpu_idle_fraction, 1.0);
    EXPECT_GT(r.mxu_utilization, 0.0);
}

TEST(SessionTest, ResultBeforeCompletionPanics)
{
    Simulator sim;
    const RuntimeWorkload w = smallWorkload();
    TrainingSession session(sim, SessionConfig{}, w);
    EXPECT_THROW(session.result(), std::logic_error);
}

TEST(SessionTest, CheckpointsFollowInterval)
{
    Simulator sim;
    const RuntimeWorkload w = smallWorkload(60);
    TrainingSession session(sim, SessionConfig{}, w);
    session.start(nullptr);
    sim.run();
    const auto &checkpoints = session.result().checkpoints;
    // Checkpoints fire at host-loop granularity (the host only
    // regains control between RunGraph loops, as TPUEstimator
    // does): one save per loop that crossed an interval boundary,
    // plus the final save.
    const std::uint64_t loop =
        std::max<std::uint64_t>(w.schedule.iterations_per_loop, 1);
    const std::uint64_t effective_interval =
        std::max(w.schedule.checkpoint_interval, loop);
    const std::uint64_t lower =
        w.schedule.train_steps / effective_interval;
    const std::uint64_t upper = w.schedule.train_steps /
        w.schedule.checkpoint_interval + 1;
    EXPECT_GE(checkpoints.size(), lower);
    EXPECT_LE(checkpoints.size(), upper);
    EXPECT_GE(checkpoints.size(), 2u);
    // Ascending by step.
    for (std::size_t i = 1; i < checkpoints.size(); ++i)
        EXPECT_GE(checkpoints[i].step, checkpoints[i - 1].step);
}

TEST(SessionTest, StopAtStepEndsEarly)
{
    Simulator sim;
    const RuntimeWorkload w = smallWorkload(100);
    SessionConfig config;
    config.stop_at_step = 30;
    TrainingSession session(sim, config, w);
    session.start(nullptr);
    sim.run();
    EXPECT_EQ(session.result().steps_completed, 30u);
}

TEST(SessionTest, RestartFromCheckpointRunsRemainder)
{
    Simulator sim;
    const RuntimeWorkload w = smallWorkload(100);
    SessionConfig config;
    config.start_step = 60;
    TrainingSession session(sim, config, w);
    session.start(nullptr);
    sim.run();
    EXPECT_EQ(session.result().steps_completed, 40u);
}

TEST(SessionTest, ResumeRestoresAndNumbersStepsFromStart)
{
    Simulator sim;
    RuntimeWorkload w = smallWorkload(100);
    // Eval rounds borrow step ids past the train range; disable
    // them so the id bounds below are exact.
    w.schedule.steps_per_eval = 0;
    SessionConfig config;
    config.start_step = 60;
    TrainingSession session(sim, config, w);
    InMemoryTrace trace;
    session.traceHub().attach(&trace);
    StepId first_step = 0;
    session.setStepCallback([&](StepId step, SimTime) {
        if (first_step == 0)
            first_step = step;
        EXPECT_GT(step, 60u);
        EXPECT_LE(step, 100u);
    });
    session.start(nullptr);
    sim.run();

    // The resumed run restores from the step-60 checkpoint during
    // initialization and numbers its steps from there.
    EXPECT_EQ(first_step, 61u);
    EXPECT_EQ(session.result().steps_completed, 40u);
    bool saw_restore = false;
    for (const auto &event : trace.events())
        saw_restore |= std::strcmp(event.type, hostop::kRestoreV2) == 0;
    EXPECT_TRUE(saw_restore);
}

/** Per-step op-invocation counts for steps in [from, to]. */
std::map<StepId, std::map<std::string, std::uint64_t>>
stepOpCounts(const InMemoryTrace &trace, StepId from, StepId to)
{
    std::map<StepId, std::map<std::string, std::uint64_t>> counts;
    for (const auto &event : trace.events()) {
        if (event.step == kNoStep || event.step < from ||
            event.step > to)
            continue;
        ++counts[event.step][event.type];
    }
    return counts;
}

TEST(SessionTest, ResumedTraceTailMatchesUninterruptedRun)
{
    RuntimeWorkload w = smallWorkload(100);
    // Eval rounds consume step ids at every steps_per_eval
    // boundary, and a resumed run skips the rounds before its
    // start step — which would shift every later id. Disable eval
    // so the two runs number their steps identically.
    w.schedule.steps_per_eval = 0;
    auto run = [&](StepId start_step) {
        Simulator sim;
        SessionConfig config;
        config.start_step = start_step;
        TrainingSession session(sim, config, w);
        InMemoryTrace trace;
        session.traceHub().attach(&trace);
        session.start(nullptr);
        sim.run();
        // Durations differ (the resumed pipeline replays a
        // different Rng tail), so compare the op mix per step, a
        // few steps past the boundary to let the pipeline re-warm.
        return stepOpCounts(trace, 66, 100);
    };
    const auto full = run(0);
    const auto resumed = run(60);
    ASSERT_FALSE(resumed.empty());
    EXPECT_EQ(full, resumed);
}

TEST(SessionTest, PreemptionAbortsWithPartialResult)
{
    const RuntimeWorkload w = smallWorkload(100);
    const SimTime wall = [&] {
        Simulator sim;
        TrainingSession session(sim, SessionConfig{}, w);
        session.start(nullptr);
        sim.run();
        return session.result().wall_time;
    }();

    Simulator sim;
    SessionConfig config;
    config.preemption = PreemptionSpec::at(wall / 2);
    TrainingSession session(sim, config, w);
    InMemoryTrace trace;
    session.traceHub().attach(&trace);
    bool completed = false;
    session.start([&] { completed = true; });
    sim.run();

    // The session still completes (with a partial result), so the
    // orchestration layer can observe and restart it.
    ASSERT_TRUE(completed);
    ASSERT_TRUE(session.finished());
    const SessionResult &r = session.result();
    EXPECT_TRUE(r.preempted);
    EXPECT_EQ(r.preemption_kind, PreemptionKind::Eviction);
    EXPECT_GT(r.steps_completed, 0u);
    EXPECT_LT(r.steps_completed, w.schedule.train_steps);
    EXPECT_EQ(r.preempted_at, r.steps_completed);
    EXPECT_GE(r.wall_time, wall / 2);
    EXPECT_LT(r.wall_time, wall);

    bool saw_preempt = false;
    for (const auto &event : trace.events())
        saw_preempt |=
            std::strcmp(event.type, hostop::kDevicePreempted) == 0;
    EXPECT_TRUE(saw_preempt);
    EXPECT_EQ(session.preemptionPlan().triggered(), 1u);
}

TEST(SessionTest, MaintenancePreemptionReportsItsKind)
{
    Simulator sim;
    const RuntimeWorkload w = smallWorkload(100);
    SessionConfig config;
    config.preemption =
        PreemptionSpec::at(1 * kMsec, PreemptionKind::Maintenance);
    TrainingSession session(sim, config, w);
    session.start(nullptr);
    sim.run();
    EXPECT_TRUE(session.result().preempted);
    EXPECT_EQ(session.result().preemption_kind,
              PreemptionKind::Maintenance);
}

TEST(SessionTest, DeterministicAcrossRuns)
{
    const RuntimeWorkload w = smallWorkload();
    auto run = [&]() {
        Simulator sim;
        TrainingSession session(sim, SessionConfig{}, w);
        session.start(nullptr);
        sim.run();
        return session.result();
    };
    const SessionResult a = run();
    const SessionResult b = run();
    EXPECT_EQ(a.wall_time, b.wall_time);
    EXPECT_EQ(a.tpu.busy, b.tpu.busy);
    EXPECT_DOUBLE_EQ(a.mxu_utilization, b.mxu_utilization);
}

TEST(SessionTest, EventsFlowThroughTraceHub)
{
    Simulator sim;
    const RuntimeWorkload w = smallWorkload();
    TrainingSession session(sim, SessionConfig{}, w);
    InMemoryTrace trace;
    session.traceHub().attach(&trace);
    session.start(nullptr);
    sim.run();
    EXPECT_GT(trace.events().size(), 100u);
    EXPECT_EQ(session.traceHub().totalEvents(),
              trace.events().size());

    bool saw_host = false, saw_tpu = false;
    for (const auto &event : trace.events()) {
        saw_host |= event.device == EventDevice::Host;
        saw_tpu |= event.device == EventDevice::Tpu;
    }
    EXPECT_TRUE(saw_host);
    EXPECT_TRUE(saw_tpu);
}

TEST(SessionTest, StepCallbackSeesEveryStep)
{
    Simulator sim;
    const RuntimeWorkload w = smallWorkload(40);
    TrainingSession session(sim, SessionConfig{}, w);
    std::uint64_t calls = 0;
    StepId last = 0;
    session.setStepCallback([&](StepId step, SimTime step_time) {
        ++calls;
        EXPECT_GT(step, last);
        EXPECT_GT(step_time, 0);
        last = step;
    });
    session.start(nullptr);
    sim.run();
    // Train steps plus eval steps all surface.
    EXPECT_GE(calls, w.schedule.train_steps);
}

TEST(SessionTest, NaivePipelineIsSlower)
{
    const RuntimeWorkload w = smallWorkload(80);
    auto run = [&](const PipelineConfig &pipeline) {
        Simulator sim;
        SessionConfig config;
        config.pipeline = pipeline;
        TrainingSession session(sim, config, w);
        session.start(nullptr);
        sim.run();
        return session.result().wall_time;
    };
    EXPECT_LT(run(PipelineConfig{}),
              run(PipelineConfig::naive()));
}

TEST(SessionTest, V3FasterOrEqualButLessUtilized)
{
    const RuntimeWorkload w = smallWorkload(80);
    auto run = [&](TpuGeneration gen) {
        Simulator sim;
        SessionConfig config;
        config.device = TpuDeviceSpec::forGeneration(gen);
        TrainingSession session(sim, config, w);
        session.start(nullptr);
        sim.run();
        return session.result();
    };
    const SessionResult v2 = run(TpuGeneration::V2);
    const SessionResult v3 = run(TpuGeneration::V3);
    EXPECT_LE(v3.wall_time, v2.wall_time);
    // Observation 5 in miniature.
    EXPECT_LT(v3.mxu_utilization, v2.mxu_utilization);
    EXPECT_GT(v3.tpu_idle_fraction, v2.tpu_idle_fraction);
}

} // namespace
} // namespace tpupoint

/**
 * @file ResilientRunner: checkpoint-restart orchestration across
 * device preemptions. The accounting invariant under test: useful
 * steps across attempts sum to exactly the steps the run requested,
 * and a fixed seed replays the whole experiment bit-for-bit.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "runtime/resilient.hh"
#include "workloads/catalog.hh"

namespace tpupoint {
namespace {

RuntimeWorkload
smallWorkload(std::uint64_t steps = 80)
{
    WorkloadOptions options;
    options.step_scale = 0.01;
    options.max_train_steps = steps;
    return makeWorkload(WorkloadId::DcganCifar10, options);
}

/** Wall time of the uninterrupted run, for placing preemptions. */
SimTime
cleanWallTime(const RuntimeWorkload &w)
{
    Simulator sim;
    TrainingSession session(sim, SessionConfig{}, w);
    session.start(nullptr);
    sim.run();
    return session.result().wall_time;
}

ResilientResult
runResilient(const SessionConfig &config, const RuntimeWorkload &w,
             const ResilientOptions &opts = {})
{
    Simulator sim;
    ResilientRunner runner(sim, config, w, opts);
    return runner.run();
}

TEST(ResilientRunnerTest, QuietPlanRunsOneAttempt)
{
    const RuntimeWorkload w = smallWorkload();
    const ResilientResult r = runResilient(SessionConfig{}, w);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.attempts, 1u);
    EXPECT_EQ(r.useful_steps, w.schedule.train_steps);
    EXPECT_EQ(r.replayed_steps, 0u);
    EXPECT_EQ(r.backoff_time, 0);
    EXPECT_EQ(r.wall_time, cleanWallTime(w));
    ASSERT_EQ(r.attempt_log.size(), 1u);
    EXPECT_FALSE(r.attempt_log[0].preempted);
}

TEST(ResilientRunnerTest, CompletesExactlyRequestedSteps)
{
    const RuntimeWorkload w = smallWorkload();
    const SimTime wall = cleanWallTime(w);

    SessionConfig config;
    config.preemption = PreemptionSpec::at(wall / 2);
    const ResilientResult r = runResilient(config, w);

    EXPECT_TRUE(r.completed);
    ASSERT_GE(r.attempts, 2u);
    // The accounting invariant: useful progress across attempts
    // sums to exactly the requested steps, nothing double-counted.
    EXPECT_EQ(r.useful_steps, w.schedule.train_steps);
    EXPECT_EQ(r.total_steps_run,
              r.useful_steps + r.replayed_steps);
    EXPECT_GT(r.backoff_time, 0);
    EXPECT_GT(r.wall_time, wall);

    std::uint64_t useful = 0, run = 0;
    for (const auto &attempt : r.attempt_log) {
        useful += attempt.useful_steps;
        run += attempt.steps_run;
        EXPECT_EQ(attempt.replayed_steps,
                  attempt.steps_run - attempt.useful_steps);
    }
    EXPECT_EQ(useful, w.schedule.train_steps);
    EXPECT_EQ(run, r.total_steps_run);
    EXPECT_TRUE(r.attempt_log.front().preempted);
    EXPECT_FALSE(r.attempt_log.back().preempted);
    EXPECT_FALSE(r.final_result.preempted);
}

TEST(ResilientRunnerTest, RestartsFromACheckpointNotFromZero)
{
    const RuntimeWorkload w = smallWorkload();
    const SimTime wall = cleanWallTime(w);

    // Late preemption: by then the session has saved checkpoints,
    // so the restart must not replay the whole run.
    SessionConfig config;
    config.preemption = PreemptionSpec::at((wall * 3) / 4);
    const ResilientResult r = runResilient(config, w);

    ASSERT_TRUE(r.completed);
    ASSERT_GE(r.attempts, 2u);
    const AttemptOutcome &restart = r.attempt_log[1];
    EXPECT_GT(restart.start_step, 0u);
    EXPECT_LE(restart.start_step, r.attempt_log[0].reached_step);
    // The resume step is a step some attempt checkpointed.
    bool is_checkpoint = false;
    for (const auto &info : r.checkpoints)
        is_checkpoint |= info.step == restart.start_step;
    EXPECT_TRUE(is_checkpoint);
}

TEST(ResilientRunnerTest, ReplaysBitIdenticalForAFixedSeed)
{
    const RuntimeWorkload w = smallWorkload();
    const SimTime wall = cleanWallTime(w);

    SessionConfig config;
    config.seed = 1234;
    config.preemption = PreemptionSpec::at(wall / 2);
    config.preemption.rate_per_hour = 0;

    const ResilientResult a = runResilient(config, w);
    const ResilientResult b = runResilient(config, w);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.attempts, b.attempts);
    EXPECT_EQ(a.wall_time, b.wall_time);
    EXPECT_EQ(a.backoff_time, b.backoff_time);
    EXPECT_EQ(a.useful_steps, b.useful_steps);
    EXPECT_EQ(a.replayed_steps, b.replayed_steps);
    ASSERT_EQ(a.attempt_log.size(), b.attempt_log.size());
    for (std::size_t i = 0; i < a.attempt_log.size(); ++i) {
        EXPECT_EQ(a.attempt_log[i].start_step,
                  b.attempt_log[i].start_step);
        EXPECT_EQ(a.attempt_log[i].reached_step,
                  b.attempt_log[i].reached_step);
        EXPECT_EQ(a.attempt_log[i].began_at,
                  b.attempt_log[i].began_at);
        EXPECT_EQ(a.attempt_log[i].ended_at,
                  b.attempt_log[i].ended_at);
    }
    ASSERT_EQ(a.checkpoints.size(), b.checkpoints.size());
    for (std::size_t i = 0; i < a.checkpoints.size(); ++i) {
        EXPECT_EQ(a.checkpoints[i].step, b.checkpoints[i].step);
        EXPECT_EQ(a.checkpoints[i].saved_at,
                  b.checkpoints[i].saved_at);
    }
}

TEST(ResilientRunnerTest, BudgetExhaustionReportsPartialResult)
{
    const RuntimeWorkload w = smallWorkload();
    const SimTime wall = cleanWallTime(w);

    SessionConfig config;
    config.preemption = PreemptionSpec::at(wall / 3);
    ResilientOptions opts;
    opts.max_attempts = 1;

    Simulator sim;
    ResilientRunner runner(sim, config, w, opts);
    bool boundary_called = false;
    runner.setBoundaryHook(
        [&](const AttemptOutcome &, StepId) {
        boundary_called = true;
    });
    const ResilientResult r = runner.run();

    EXPECT_FALSE(r.completed);
    EXPECT_EQ(r.attempts, 1u);
    EXPECT_LT(r.useful_steps, w.schedule.train_steps);
    EXPECT_TRUE(r.final_result.preempted);
    EXPECT_EQ(r.backoff_time, 0);
    // No restart follows the last allowed attempt, so no boundary
    // record should be emitted either.
    EXPECT_FALSE(boundary_called);
}

TEST(ResilientRunnerTest, HooksFireOncePerAttemptAndBoundary)
{
    const RuntimeWorkload w = smallWorkload();
    const SimTime wall = cleanWallTime(w);

    SessionConfig config;
    config.preemption = PreemptionSpec::at(wall / 2);

    Simulator sim;
    ResilientRunner runner(sim, config, w);
    std::uint32_t attempt_calls = 0, boundary_calls = 0;
    StepId last_resume = 0;
    runner.setAttemptHook(
        [&](TrainingSession &, std::uint32_t attempt) {
        EXPECT_EQ(attempt, attempt_calls);
        ++attempt_calls;
    });
    runner.setBoundaryHook(
        [&](const AttemptOutcome &failed, StepId resume) {
        EXPECT_TRUE(failed.preempted);
        EXPECT_LE(resume, failed.reached_step);
        last_resume = resume;
        ++boundary_calls;
    });
    const ResilientResult r = runner.run();

    ASSERT_TRUE(r.completed);
    EXPECT_EQ(attempt_calls, r.attempts);
    EXPECT_EQ(boundary_calls, r.attempts - 1);
    EXPECT_EQ(last_resume, r.attempt_log.back().start_step);
}

TEST(ResilientRunnerTest, EventsDuringBackoffAreDiscarded)
{
    const RuntimeWorkload w = smallWorkload();
    const SimTime wall = cleanWallTime(w);

    // The second interruption lands moments after the first: the
    // aborted attempt is already gone when it fires, so it must be
    // dropped during the restart backoff, not charged to attempt 2.
    SessionConfig config;
    config.preemption.events.push_back(
        {wall / 2, PreemptionKind::Eviction});
    config.preemption.events.push_back(
        {wall / 2 + 10 * kMsec, PreemptionKind::Eviction});

    Simulator sim;
    ResilientRunner runner(sim, config, w);
    const ResilientResult r = runner.run();
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.attempts, 2u);
    EXPECT_EQ(runner.preemptionPlan().triggered(), 1u);
    EXPECT_EQ(runner.preemptionPlan().discarded(), 1u);
}

TEST(ResilientRunnerTest, InvalidOptionsAreRejected)
{
    const RuntimeWorkload w = smallWorkload();
    Simulator sim;

    ResilientOptions no_budget;
    no_budget.max_attempts = 0;
    EXPECT_THROW(
        ResilientRunner(sim, SessionConfig{}, w, no_budget),
        std::runtime_error);

    ResilientOptions bad_jitter;
    bad_jitter.jitter = 1.5;
    EXPECT_THROW(
        ResilientRunner(sim, SessionConfig{}, w, bad_jitter),
        std::runtime_error);

    ResilientOptions bad_multiplier;
    bad_multiplier.backoff_multiplier = 0.5;
    EXPECT_THROW(
        ResilientRunner(sim, SessionConfig{}, w, bad_multiplier),
        std::runtime_error);
}

} // namespace
} // namespace tpupoint

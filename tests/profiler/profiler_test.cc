/** @file TPUPoint-Profiler against live sessions. */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "profiler/profiler.hh"
#include "proto/serialize.hh"
#include "workloads/catalog.hh"

namespace tpupoint {
namespace {

RuntimeWorkload
smallWorkload(std::uint64_t steps = 60)
{
    WorkloadOptions options;
    options.step_scale = 0.01;
    options.max_train_steps = steps;
    return makeWorkload(WorkloadId::DcganCifar10, options);
}

TEST(ProfilerTest, CollectsRecordsOverWholeRun)
{
    Simulator sim;
    const RuntimeWorkload w = smallWorkload();
    TrainingSession session(sim, SessionConfig{}, w);
    ProfilerOptions options;
    options.profile_interval = 100 * kMsec;
    TpuPointProfiler profiler(sim, session, options);
    profiler.start(true);
    session.start(nullptr);
    sim.run();
    profiler.stop();

    EXPECT_FALSE(profiler.running());
    EXPECT_GT(profiler.requestsIssued(), 2u);
    ASSERT_FALSE(profiler.records().empty());

    // Sequences ascend; windows tile the run.
    StepId max_step = 0;
    std::uint64_t total_events = 0;
    for (std::size_t i = 0; i < profiler.records().size(); ++i) {
        const ProfileRecord &r = profiler.records()[i];
        if (i) {
            EXPECT_GE(r.window_begin,
                      profiler.records()[i - 1].window_begin);
        }
        total_events += r.event_count;
        for (const auto &s : r.steps)
            max_step = std::max(max_step, s.step);
    }
    EXPECT_GT(total_events, 0u);
    // The profiler saw training through the last step.
    EXPECT_GE(max_step, w.schedule.train_steps);
}

TEST(ProfilerTest, AnalyzerFlagControlsRecordingThread)
{
    const RuntimeWorkload w = smallWorkload();
    auto run = [&](bool analyzer) {
        Simulator sim;
        TrainingSession session(sim, SessionConfig{}, w);
        TpuPointProfiler profiler(sim, session);
        profiler.start(analyzer);
        session.start(nullptr);
        sim.run();
        profiler.stop();
        return profiler.bytesRecorded();
    };
    EXPECT_GT(run(true), 0u);   // records streamed to storage
    EXPECT_EQ(run(false), 0u);  // host-memory buffering only
}

TEST(ProfilerTest, ProfilingAddsBoundedOverhead)
{
    const RuntimeWorkload w = smallWorkload(100);
    auto run = [&](bool profiled) {
        Simulator sim;
        TrainingSession session(sim, SessionConfig{}, w);
        std::unique_ptr<TpuPointProfiler> profiler;
        if (profiled) {
            profiler = std::make_unique<TpuPointProfiler>(
                sim, session);
            profiler->start(true);
        }
        session.start(nullptr);
        sim.run();
        if (profiler)
            profiler->stop();
        return session.result().wall_time;
    };
    const SimTime plain = run(false);
    const SimTime traced = run(true);
    EXPECT_GE(traced, plain);
    // Section VII-C: overhead stays under 10%.
    EXPECT_LT(static_cast<double>(traced),
              1.10 * static_cast<double>(plain));
}

TEST(ProfilerTest, BreakpointStopsProfilingEarly)
{
    Simulator sim;
    const RuntimeWorkload w = smallWorkload(100);
    TrainingSession session(sim, SessionConfig{}, w);
    ProfilerOptions options;
    options.breakpoint = 20;
    // Breakpoints are checked when profile responses arrive, so
    // use a fine-grained interval for a sharp stop.
    options.profile_interval = 20 * kMsec;
    TpuPointProfiler profiler(sim, session, options);
    profiler.start(true);
    session.start(nullptr);
    sim.run();
    EXPECT_FALSE(profiler.running());
    // The session itself ran to the end regardless.
    EXPECT_EQ(session.result().steps_completed, 100u);
    // Only early steps were profiled.
    StepId max_step = 0;
    for (const auto &r : profiler.records())
        for (const auto &s : r.steps)
            max_step = std::max(max_step, s.step);
    EXPECT_LT(max_step, 60u);
}

TEST(ProfilerTest, WriteRecordsRoundTrips)
{
    Simulator sim;
    const RuntimeWorkload w = smallWorkload();
    TrainingSession session(sim, SessionConfig{}, w);
    TpuPointProfiler profiler(sim, session);
    profiler.start(true);
    session.start(nullptr);
    sim.run();
    profiler.stop();

    std::stringstream buffer;
    profiler.writeRecords(buffer);
    ProfileReader reader(buffer);
    const auto decoded = reader.readAll();
    EXPECT_EQ(decoded.size(), profiler.records().size());
}

TEST(ProfilerTest, StreamedProfileMatchesBufferedWriteRecords)
{
    const RuntimeWorkload w = smallWorkload();

    // Buffered path: retain every record, serialize at the end.
    Simulator buffered_sim;
    TrainingSession buffered_session(buffered_sim,
                                     SessionConfig{}, w);
    TpuPointProfiler buffered(buffered_sim, buffered_session);
    buffered.start(true);
    buffered_session.start(nullptr);
    buffered_sim.run();
    buffered.stop();
    std::stringstream buffered_bytes;
    buffered.writeRecords(buffered_bytes);

    // Streaming path: records go to the sink as harvested and are
    // never retained in host memory.
    Simulator streamed_sim;
    TrainingSession streamed_session(streamed_sim,
                                     SessionConfig{}, w);
    ProfilerOptions options;
    options.retain_records = false;
    TpuPointProfiler streamed(streamed_sim, streamed_session,
                              options);
    std::stringstream streamed_bytes;
    streamed.streamTo(streamed_bytes);
    streamed.start(true);
    streamed_session.start(nullptr);
    streamed_sim.run();
    streamed.stop();

    EXPECT_EQ(streamed.recordsRecorded(),
              buffered.recordsRecorded());

    // The streamed profile decodes to exactly the records the
    // buffered run retained, byte for byte.
    ProfileReader reader(streamed_bytes);
    const auto decoded = reader.readAll();
    ASSERT_EQ(decoded.size(), buffered.records().size());
    for (std::size_t i = 0; i < decoded.size(); ++i) {
        EXPECT_EQ(encodeProfileRecord(decoded[i]),
                  encodeProfileRecord(buffered.records()[i]));
    }

    // Retention off means the in-memory accessors refuse.
    EXPECT_THROW(streamed.records(), std::runtime_error);
}

TEST(ProfilerTest, StreamToAfterStartIsRejected)
{
    Simulator sim;
    const RuntimeWorkload w = smallWorkload();
    TrainingSession session(sim, SessionConfig{}, w);
    TpuPointProfiler profiler(sim, session);
    profiler.start(true);
    std::stringstream sink;
    EXPECT_THROW(profiler.streamTo(sink), std::runtime_error);
}

TEST(ProfilerTest, DoubleStartPanics)
{
    Simulator sim;
    const RuntimeWorkload w = smallWorkload();
    TrainingSession session(sim, SessionConfig{}, w);
    TpuPointProfiler profiler(sim, session);
    profiler.start(true);
    EXPECT_THROW(profiler.start(true), std::logic_error);
}

TEST(ProfilerTest, StopDetachesInstrumentation)
{
    Simulator sim;
    const RuntimeWorkload w = smallWorkload();
    TrainingSession session(sim, SessionConfig{}, w);
    TpuPointProfiler profiler(sim, session);
    profiler.start(true);
    EXPECT_NE(session.traceHub().attached(), nullptr);
    EXPECT_GT(session.tpu().traceOverhead(), 0);
    profiler.stop();
    EXPECT_EQ(session.traceHub().attached(), nullptr);
    EXPECT_EQ(session.tpu().traceOverhead(), 0);
}

TEST(ProfilerTest, BadIntervalRejected)
{
    Simulator sim;
    const RuntimeWorkload w = smallWorkload();
    TrainingSession session(sim, SessionConfig{}, w);
    ProfilerOptions options;
    options.profile_interval = 0;
    EXPECT_THROW(TpuPointProfiler(sim, session, options),
                 std::runtime_error);
}

} // namespace
} // namespace tpupoint

/** @file StatsCollector windowing and transport caps. */

#include <gtest/gtest.h>

#include "profiler/collector.hh"

namespace tpupoint {
namespace {

TraceEvent
makeEvent(const char *type, SimTime start, SimTime duration,
          StepId step, EventDevice device = EventDevice::Tpu)
{
    TraceEvent e;
    e.type = type;
    e.start = start;
    e.duration = duration;
    e.step = step;
    e.device = device;
    return e;
}

TEST(CollectorTest, AggregatesByStep)
{
    StatsCollector collector(0);
    collector.record(makeEvent("MatMul", 0, 10, 1));
    collector.record(makeEvent("MatMul", 10, 10, 1));
    collector.record(makeEvent("fusion", 30, 10, 2));
    EXPECT_EQ(collector.eventsInWindow(), 3u);

    const ProfileRecord record = collector.harvest(100);
    EXPECT_EQ(record.event_count, 3u);
    ASSERT_EQ(record.steps.size(), 2u);
    EXPECT_EQ(record.steps[0].step, 1u);
    EXPECT_EQ(record.steps[0].tpu_ops.at("MatMul").count, 2u);
    EXPECT_EQ(record.steps[1].step, 2u);
    EXPECT_FALSE(record.truncated);
    EXPECT_EQ(record.window_begin, 0);
    EXPECT_EQ(record.window_end, 100);
}

TEST(CollectorTest, HarvestResetsWindow)
{
    StatsCollector collector(0);
    collector.record(makeEvent("MatMul", 0, 10, 1));
    (void)collector.harvest(50);
    EXPECT_EQ(collector.eventsInWindow(), 0u);
    EXPECT_EQ(collector.windowBegin(), 50);
    collector.record(makeEvent("fusion", 60, 5, 2));
    const ProfileRecord second = collector.harvest(100);
    EXPECT_EQ(second.sequence, 1u);
    ASSERT_EQ(second.steps.size(), 1u);
    EXPECT_EQ(second.steps[0].step, 2u);
}

TEST(CollectorTest, NoStepEventsJoinLatestStep)
{
    StatsCollector collector(0);
    collector.record(makeEvent("MatMul", 0, 10, 7));
    collector.record(
        makeEvent("Recv", 10, 5, kNoStep, EventDevice::Host));
    const ProfileRecord record = collector.harvest(100);
    ASSERT_EQ(record.steps.size(), 1u);
    EXPECT_EQ(record.steps[0].step, 7u);
    EXPECT_EQ(record.steps[0].host_ops.at("Recv").count, 1u);
}

TEST(CollectorTest, EventCapTruncates)
{
    StatsCollector collector(0);
    for (std::uint64_t i = 0; i < kMaxEventsPerProfile + 10; ++i)
        collector.record(makeEvent("MatMul", 0, 1, 0));
    EXPECT_TRUE(collector.overflowed());
    const ProfileRecord record = collector.harvest(1);
    EXPECT_TRUE(record.truncated);
    EXPECT_EQ(record.event_count, kMaxEventsPerProfile);
    // The cap resets with the window.
    EXPECT_FALSE(collector.overflowed());
}

TEST(CollectorTest, DurationCapTruncates)
{
    StatsCollector collector(0);
    collector.record(makeEvent("MatMul", 0, 10, 0));
    // An event past the 60 s window limit is dropped.
    collector.record(
        makeEvent("MatMul", kMaxProfileDuration + kSec, 10, 0));
    EXPECT_TRUE(collector.overflowed());
    EXPECT_EQ(collector.eventsInWindow(), 1u);
}

TEST(CollectorTest, DroppedEventsAreCountedNotJustFlagged)
{
    StatsCollector collector(0);
    constexpr std::uint64_t kOverflow = 37;
    for (std::uint64_t i = 0; i < kMaxEventsPerProfile + kOverflow;
         ++i) {
        collector.record(makeEvent("MatMul", 0, 1, 0));
    }
    EXPECT_EQ(collector.eventsDropped(), kOverflow);

    const ProfileRecord record = collector.harvest(1);
    EXPECT_TRUE(record.truncated);
    EXPECT_EQ(record.events_dropped, kOverflow);
    // The drop count resets with the window, like the cap flag.
    EXPECT_EQ(collector.eventsDropped(), 0u);
    const ProfileRecord clean = collector.harvest(2);
    EXPECT_EQ(clean.events_dropped, 0u);
    EXPECT_FALSE(clean.truncated);
}

TEST(CollectorTest, MetadataComputedOverWindow)
{
    StatsCollector collector(0);
    TraceEvent busy = makeEvent("MatMul", 0, 400, 0);
    busy.mxu = true;
    busy.mxu_active = 100;
    collector.record(busy);
    const ProfileRecord record = collector.harvest(1000);
    // 400 of 1000 ns busy -> 60% idle; 100/1000 MXU.
    EXPECT_NEAR(record.tpu_idle_fraction, 0.6, 1e-9);
    EXPECT_NEAR(record.mxu_utilization, 0.1, 1e-9);
}

TEST(CollectorTest, HostEventsDoNotCountAsTpuBusy)
{
    StatsCollector collector(0);
    collector.record(
        makeEvent("RunGraph", 0, 500, 0, EventDevice::Host));
    const ProfileRecord record = collector.harvest(1000);
    EXPECT_NEAR(record.tpu_idle_fraction, 1.0, 1e-9);
}

} // namespace
} // namespace tpupoint

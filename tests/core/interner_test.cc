#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/interner.hh"

namespace tpupoint {
namespace {

TEST(StringInterner, AssignsDenseIdsInFirstSeenOrder)
{
    StringInterner interner;
    EXPECT_EQ(interner.intern("conv2d"), 0u);
    EXPECT_EQ(interner.intern("matmul"), 1u);
    EXPECT_EQ(interner.intern("conv2d"), 0u);
    EXPECT_EQ(interner.intern("relu"), 2u);
    EXPECT_EQ(interner.size(), 3u);
}

TEST(StringInterner, ViewRoundTrips)
{
    StringInterner interner;
    const auto id = interner.intern("crossreplicasum");
    EXPECT_EQ(interner.view(id), "crossreplicasum");
    EXPECT_EQ(interner.view(interner.intern("fusion.3")), "fusion.3");
}

TEST(StringInterner, LookupDoesNotIntern)
{
    StringInterner interner;
    std::uint32_t id = 99;
    EXPECT_FALSE(interner.lookup("absent", id));
    EXPECT_EQ(interner.size(), 0u);
    interner.intern("present");
    EXPECT_TRUE(interner.lookup("present", id));
    EXPECT_EQ(id, 0u);
}

TEST(StringInterner, InternDoesNotKeepCallerStorage)
{
    StringInterner interner;
    std::uint32_t id;
    {
        std::string transient = "short-lived-op-name";
        id = interner.intern(transient);
        transient.assign(transient.size(), 'x');
    }
    EXPECT_EQ(interner.view(id), "short-lived-op-name");
}

TEST(StringInterner, ViewsStayValidAsTableGrows)
{
    StringInterner interner;
    const std::string_view first = interner.view(interner.intern("op0"));
    for (int i = 1; i < 2000; ++i)
        interner.intern("op" + std::to_string(i));
    EXPECT_EQ(first, "op0");
    EXPECT_EQ(interner.size(), 2000u);
}

TEST(StringInterner, ConcurrentInterningAgreesOnIds)
{
    StringInterner interner;
    constexpr int kNames = 200;
    constexpr int kThreads = 8;
    std::vector<std::vector<std::uint32_t>> ids(kThreads);
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&interner, &ids, t] {
            ids[t].reserve(kNames);
            for (int i = 0; i < kNames; ++i)
                ids[t].push_back(
                    interner.intern("op" + std::to_string(i)));
        });
    }
    for (auto &w : workers)
        w.join();
    EXPECT_EQ(interner.size(), static_cast<std::size_t>(kNames));
    // Every thread must have received the same id for each name.
    for (int t = 1; t < kThreads; ++t)
        EXPECT_EQ(ids[t], ids[0]);
    for (int i = 0; i < kNames; ++i)
        EXPECT_EQ(interner.view(ids[0][i]), "op" + std::to_string(i));
}

TEST(StringInterner, GlobalIsASingleton)
{
    EXPECT_EQ(&StringInterner::global(), &StringInterner::global());
}

} // namespace
} // namespace tpupoint

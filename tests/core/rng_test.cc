/** @file Deterministic RNG behaviour and distribution sanity. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/rng.hh"

namespace tpupoint {
namespace {

TEST(SplitMix64Test, IsDeterministic)
{
    SplitMix64 a(42), b(42);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge)
{
    SplitMix64 a(1), b(2);
    EXPECT_NE(a.next(), b.next());
}

TEST(RngTest, SameSeedSameStream)
{
    Rng a(7), b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(7), b(8);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        if (a.nextU64() == b.nextU64())
            ++equal;
    EXPECT_EQ(equal, 0);
}

TEST(RngTest, NextDoubleInUnitInterval)
{
    Rng rng(1);
    for (int i = 0; i < 10000; ++i) {
        const double x = rng.nextDouble();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(RngTest, UniformRespectsBounds)
{
    Rng rng(2);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.uniform(-3.0, 5.0);
        EXPECT_GE(x, -3.0);
        EXPECT_LT(x, 5.0);
    }
}

TEST(RngTest, NextBoundedStaysInRange)
{
    Rng rng(3);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t x = rng.nextBounded(10);
        EXPECT_LT(x, 10u);
        seen.insert(x);
    }
    // Every residue should be hit with 5000 draws.
    EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, NextBoundedZeroPanics)
{
    Rng rng(4);
    EXPECT_THROW(rng.nextBounded(0), std::logic_error);
}

TEST(RngTest, GaussianMomentsApproximatelyStandard)
{
    Rng rng(5);
    const int n = 50000;
    double sum = 0, sum2 = 0;
    for (int i = 0; i < n; ++i) {
        const double x = rng.nextGaussian();
        sum += x;
        sum2 += x * x;
    }
    const double mean = sum / n;
    const double var = sum2 / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.03);
    EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, GaussianScalesMeanAndStddev)
{
    Rng rng(6);
    const int n = 50000;
    double sum = 0;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, LogNormalIsPositive)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GT(rng.logNormal(0.0, 0.5), 0.0);
}

TEST(RngTest, LogNormalMedianNearExpMu)
{
    Rng rng(8);
    std::vector<double> samples;
    for (int i = 0; i < 20001; ++i)
        samples.push_back(rng.logNormal(0.0, 0.3));
    std::nth_element(samples.begin(),
                     samples.begin() + 10000, samples.end());
    EXPECT_NEAR(samples[10000], 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequencyMatchesP)
{
    Rng rng(9);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        if (rng.bernoulli(0.25))
            ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(RngTest, ExponentialMeanIsInverseRate)
{
    Rng rng(10);
    double sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(4.0);
    EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(RngTest, ExponentialRejectsNonPositiveRate)
{
    Rng rng(11);
    EXPECT_THROW(rng.exponential(0.0), std::logic_error);
}

TEST(RngTest, ForkedStreamsAreIndependentAndDeterministic)
{
    Rng parent_a(12), parent_b(12);
    Rng child_a = parent_a.fork();
    Rng child_b = parent_b.fork();
    // Fork is deterministic.
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(child_a.nextU64(), child_b.nextU64());
    // Parent stream continues identically after forking.
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(parent_a.nextU64(), parent_b.nextU64());
}

/** Property sweep: bounded generation respects arbitrary bounds. */
class RngBoundedProperty
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RngBoundedProperty, AllDrawsBelowBound)
{
    const std::uint64_t bound = GetParam();
    Rng rng(bound * 2654435761u + 1);
    for (int i = 0; i < 2000; ++i)
        EXPECT_LT(rng.nextBounded(bound), bound);
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundedProperty,
                         ::testing::Values(1, 2, 3, 7, 10, 100,
                                           1000, 1u << 20,
                                           1ull << 40));

} // namespace
} // namespace tpupoint

/** @file Vector and matrix primitives used by clustering/PCA. */

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/math.hh"

namespace tpupoint {
namespace {

TEST(VectorMathTest, DotAndNorm)
{
    const FeatureVector a{1, 2, 3};
    const FeatureVector b{4, 5, 6};
    EXPECT_EQ(dot(a, b), 32.0);
    EXPECT_DOUBLE_EQ(l2Norm({3, 4}), 5.0);
}

TEST(VectorMathTest, DotDimensionMismatchPanics)
{
    EXPECT_THROW(dot({1, 2}, {1, 2, 3}), std::logic_error);
}

TEST(VectorMathTest, Distances)
{
    EXPECT_EQ(squaredDistance({0, 0}, {3, 4}), 25.0);
    EXPECT_EQ(euclideanDistance({0, 0}, {3, 4}), 5.0);
    EXPECT_EQ(squaredDistance({1, 1}, {1, 1}), 0.0);
}

TEST(VectorMathTest, AddAndScaleInPlace)
{
    FeatureVector a{1, 2};
    addInPlace(a, {3, 4});
    EXPECT_EQ(a[0], 4.0);
    EXPECT_EQ(a[1], 6.0);
    scaleInPlace(a, 0.5);
    EXPECT_EQ(a[0], 2.0);
    EXPECT_EQ(a[1], 3.0);
}

TEST(VectorMathTest, NormalizeHandlesZeroVector)
{
    FeatureVector z{0, 0, 0};
    normalizeInPlace(z);
    EXPECT_EQ(z[0], 0.0);
    FeatureVector v{0, 3, 4};
    normalizeInPlace(v);
    EXPECT_NEAR(l2Norm(v), 1.0, 1e-12);
}

TEST(VectorMathTest, MeanVector)
{
    const auto mean = meanVector({{0, 0}, {2, 4}, {4, 8}});
    ASSERT_EQ(mean.size(), 2u);
    EXPECT_EQ(mean[0], 2.0);
    EXPECT_EQ(mean[1], 4.0);
    EXPECT_TRUE(meanVector({}).empty());
}

TEST(MatrixTest, MultiplyAndTranspose)
{
    Matrix m(2, 3);
    // [1 2 3; 4 5 6]
    int value = 1;
    for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            m.at(r, c) = value++;
    const FeatureVector result = m.multiply({1, 1, 1});
    ASSERT_EQ(result.size(), 2u);
    EXPECT_EQ(result[0], 6.0);
    EXPECT_EQ(result[1], 15.0);

    const Matrix t = m.transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 2u);
    EXPECT_EQ(t.at(2, 1), 6.0);
}

TEST(MatrixTest, OutOfRangeAccessPanics)
{
    Matrix m(2, 2);
    EXPECT_THROW(m.at(2, 0), std::logic_error);
    EXPECT_THROW(m.multiply({1, 2, 3}), std::logic_error);
}

TEST(MatrixTest, CovarianceOfKnownData)
{
    // Two perfectly correlated dimensions.
    const std::vector<FeatureVector> data{
        {1, 2}, {2, 4}, {3, 6}};
    const Matrix cov = Matrix::covariance(data);
    // var(x) = 2/3, var(y) = 8/3, cov = 4/3.
    EXPECT_NEAR(cov.at(0, 0), 2.0 / 3.0, 1e-12);
    EXPECT_NEAR(cov.at(1, 1), 8.0 / 3.0, 1e-12);
    EXPECT_NEAR(cov.at(0, 1), 4.0 / 3.0, 1e-12);
    EXPECT_NEAR(cov.at(1, 0), cov.at(0, 1), 1e-12);
}

TEST(MatrixTest, CovarianceRejectsBadInput)
{
    EXPECT_THROW(
        Matrix::covariance(std::vector<FeatureVector>{}),
        std::runtime_error);
    EXPECT_THROW(Matrix::covariance({{1, 2}, {1}}),
                 std::runtime_error);
}

} // namespace
} // namespace tpupoint

/** @file CSV writer quoting and structure checks. */

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "core/csv.hh"

namespace tpupoint {
namespace {

TEST(CsvWriterTest, HeaderAndRows)
{
    std::ostringstream out;
    CsvWriter csv(out);
    csv.header({"a", "b"});
    csv.field("x").field(std::int64_t{2});
    csv.endRow();
    EXPECT_EQ(out.str(), "a,b\r\nx,2\r\n");
    EXPECT_EQ(csv.rows(), 1u);
}

TEST(CsvWriterTest, QuotesOnlyWhenNeeded)
{
    EXPECT_EQ(CsvWriter::quote("plain"), "plain");
    EXPECT_EQ(CsvWriter::quote("with,comma"), "\"with,comma\"");
    EXPECT_EQ(CsvWriter::quote("with\"quote"),
              "\"with\"\"quote\"");
    EXPECT_EQ(CsvWriter::quote("line\nbreak"),
              "\"line\nbreak\"");
}

TEST(CsvWriterTest, DoubleFormatsWithDecimals)
{
    std::ostringstream out;
    CsvWriter csv(out);
    csv.field(1.23456, 2);
    csv.endRow();
    EXPECT_EQ(out.str(), "1.23\r\n");
}

TEST(CsvWriterTest, ColumnCountMismatchPanics)
{
    std::ostringstream out;
    CsvWriter csv(out);
    csv.header({"a", "b"});
    csv.field("only-one");
    EXPECT_THROW(csv.endRow(), std::logic_error);
}

TEST(CsvWriterTest, EmptyRowPanics)
{
    std::ostringstream out;
    CsvWriter csv(out);
    EXPECT_THROW(csv.endRow(), std::logic_error);
}

TEST(CsvWriterTest, LateHeaderPanics)
{
    std::ostringstream out;
    CsvWriter csv(out);
    csv.field("data");
    csv.endRow();
    EXPECT_THROW(csv.header({"too", "late"}), std::logic_error);
}

TEST(CsvWriterTest, UnsignedAndSignedFields)
{
    std::ostringstream out;
    CsvWriter csv(out);
    csv.field(std::uint64_t{18446744073709551615ULL})
        .field(std::int64_t{-5});
    csv.endRow();
    EXPECT_EQ(out.str(), "18446744073709551615,-5\r\n");
}

} // namespace
} // namespace tpupoint

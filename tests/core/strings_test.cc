/** @file String utility behaviour. */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "core/strings.hh"
#include "core/types.hh"

namespace tpupoint {
namespace {

TEST(StringsTest, JoinEmptyAndNonEmpty)
{
    EXPECT_EQ(join({}, ","), "");
    EXPECT_EQ(join({"a"}, ","), "a");
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringsTest, SplitKeepsEmptyFields)
{
    const auto parts = split("a,,b", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[2], "b");
}

TEST(StringsTest, SplitWithoutDelimiterIsWhole)
{
    const auto parts = split("hello", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "hello");
}

TEST(StringsTest, SplitJoinRoundTrip)
{
    const std::string text = "x,y,z,w";
    EXPECT_EQ(join(split(text, ','), ","), text);
}

TEST(StringsTest, StartsEndsWith)
{
    EXPECT_TRUE(startsWith("tpu:MatMul", "tpu:"));
    EXPECT_FALSE(startsWith("tpu", "tpu:"));
    EXPECT_TRUE(endsWith("model.ckpt", ".ckpt"));
    EXPECT_FALSE(endsWith("ckpt", "model.ckpt"));
    EXPECT_TRUE(startsWith("abc", ""));
    EXPECT_TRUE(endsWith("abc", ""));
}

TEST(StringsTest, TrimRemovesSurroundingWhitespace)
{
    EXPECT_EQ(trim("  hi \t\n"), "hi");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim(" \t "), "");
    EXPECT_EQ(trim("inner space"), "inner space");
}

TEST(StringsTest, ToLower)
{
    EXPECT_EQ(toLower("TPUPoint"), "tpupoint");
    EXPECT_EQ(toLower("abc123"), "abc123");
}

TEST(StringsTest, FormatDouble)
{
    EXPECT_EQ(formatDouble(1.2345, 2), "1.23");
    EXPECT_EQ(formatDouble(1.0, 0), "1");
    EXPECT_EQ(formatDouble(-0.5, 1), "-0.5");
}

TEST(StringsTest, FormatBytesPicksUnits)
{
    EXPECT_EQ(formatBytes(512), "512 B");
    EXPECT_EQ(formatBytes(2048), "2.00 KiB");
    EXPECT_EQ(formatBytes(static_cast<std::uint64_t>(1.44 * kMiB)),
              "1.44 MiB");
    EXPECT_EQ(formatBytes(48ULL * kGiB), "48.00 GiB");
}

TEST(StringsTest, FormatDurationPicksUnits)
{
    EXPECT_EQ(formatDuration(500), "500 ns");
    EXPECT_EQ(formatDuration(1500), "1.50 us");
    EXPECT_EQ(formatDuration(230 * kMsec), "230.00 ms");
    EXPECT_EQ(formatDuration(3 * kSec / 2), "1.50 s");
}

TEST(StringsTest, Padding)
{
    EXPECT_EQ(padLeft("ab", 5), "   ab");
    EXPECT_EQ(padRight("ab", 5), "ab   ");
    EXPECT_EQ(padLeft("abcdef", 3), "abcdef");
    EXPECT_EQ(padRight("abcdef", 3), "abcdef");
}

TEST(StringsTest, ParseInt64AcceptsOnlyWholeIntegers)
{
    std::int64_t value = 0;
    EXPECT_TRUE(parseInt64("42", &value));
    EXPECT_EQ(value, 42);
    EXPECT_TRUE(parseInt64("-7", &value));
    EXPECT_EQ(value, -7);
    EXPECT_TRUE(parseInt64("0", &value));
    EXPECT_EQ(value, 0);
    EXPECT_TRUE(parseInt64("9223372036854775807", &value));
    EXPECT_EQ(value, std::numeric_limits<std::int64_t>::max());

    // Failures leave the value untouched.
    value = 123;
    EXPECT_FALSE(parseInt64("", &value));
    EXPECT_FALSE(parseInt64("abc", &value));
    EXPECT_FALSE(parseInt64("12abc", &value)); // Trailing junk.
    EXPECT_FALSE(parseInt64("1.5", &value));
    EXPECT_FALSE(parseInt64(" 42", &value)); // No silent trim.
    EXPECT_FALSE(parseInt64("42 ", &value));
    EXPECT_FALSE(parseInt64("9223372036854775808",
                            &value)); // Overflow.
    EXPECT_FALSE(parseInt64("-9223372036854775809", &value));
    EXPECT_EQ(value, 123);
}

TEST(StringsTest, ParseUint64RejectsSignsAndOverflow)
{
    std::uint64_t value = 0;
    EXPECT_TRUE(parseUint64("0", &value));
    EXPECT_EQ(value, 0u);
    EXPECT_TRUE(parseUint64("18446744073709551615", &value));
    EXPECT_EQ(value, std::numeric_limits<std::uint64_t>::max());

    value = 99;
    EXPECT_FALSE(parseUint64("-1", &value)); // No wrap to huge.
    EXPECT_FALSE(parseUint64("+1", &value));
    EXPECT_FALSE(parseUint64("", &value));
    EXPECT_FALSE(parseUint64("1e3", &value));
    EXPECT_FALSE(parseUint64("18446744073709551616", &value));
    EXPECT_EQ(value, 99u);
}

} // namespace
} // namespace tpupoint

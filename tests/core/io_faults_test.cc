/**
 * @file Host-side I/O fail points (core/io_faults). Pins the spec
 * grammar, the hit-indexed firing rules (once, @N, @N+, seeded
 * rate), the precise filesystem effects of each fault kind (what
 * lands on disk before the failure reports), and that an unarmed
 * injector lets every operation through.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#ifdef __unix__
#include <unistd.h>
#endif

#include "core/io_faults.hh"

namespace tpupoint {
namespace {

std::string
tempPath(const std::string &name)
{
#ifdef __unix__
    return testing::TempDir() + std::to_string(getpid()) + "." +
        name;
#else
    return testing::TempDir() + name;
#endif
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/** Clean process-wide injector state around every test. */
struct IoFaultsTest : ::testing::Test
{
    void SetUp() override { io::FaultInjector::global().reset(); }
    void TearDown() override
    {
        io::FaultInjector::global().reset();
    }
};

TEST_F(IoFaultsTest, UnarmedInjectorPassesEverythingThrough)
{
    auto &injector = io::FaultInjector::global();
    EXPECT_FALSE(injector.armed());
    EXPECT_EQ(injector.sample("any.site"), io::FaultKind::None);
    EXPECT_EQ(injector.injectedTotal(), 0u);
}

TEST_F(IoFaultsTest, SpecGrammarParsesEveryForm)
{
    auto &injector = io::FaultInjector::global();
    std::string why;
    EXPECT_TRUE(injector.configure(
        "a=enospc,b=eio@3,c=short@2+,d=torn~0.5", &why))
        << why;
    EXPECT_TRUE(injector.armed());
}

TEST_F(IoFaultsTest, MalformedSpecsAreAtomicallyRejected)
{
    auto &injector = io::FaultInjector::global();
    std::string why;
    EXPECT_FALSE(injector.configure("a=bogus", &why));
    EXPECT_FALSE(why.empty());
    EXPECT_FALSE(injector.configure("nodelimiter", &why));
    EXPECT_FALSE(injector.configure("a=eio~1.5", &why));
    EXPECT_FALSE(injector.configure("a=eio@0", &why));
    // A bad entry anywhere rejects the whole spec: no rules added.
    EXPECT_FALSE(injector.configure("good=eio,bad=", &why));
    EXPECT_FALSE(injector.armed());
    EXPECT_EQ(injector.sample("good"), io::FaultKind::None);
}

TEST_F(IoFaultsTest, HitIndexedRuleFiresExactlyOnce)
{
    auto &injector = io::FaultInjector::global();
    ASSERT_TRUE(injector.configure("site=eio@2"));
    EXPECT_EQ(injector.sample("site"), io::FaultKind::None);
    EXPECT_EQ(injector.sample("site"), io::FaultKind::IoError);
    EXPECT_EQ(injector.sample("site"), io::FaultKind::None);
    EXPECT_EQ(injector.sample("other"), io::FaultKind::None);
    EXPECT_EQ(injector.hits("site"), 3u);
    EXPECT_EQ(injector.injected("site"), 1u);
    EXPECT_EQ(injector.injectedTotal(), 1u);
}

TEST_F(IoFaultsTest, PersistentRuleFiresFromItsHitOnward)
{
    auto &injector = io::FaultInjector::global();
    ASSERT_TRUE(injector.configure("site=enospc@2+"));
    EXPECT_EQ(injector.sample("site"), io::FaultKind::None);
    EXPECT_EQ(injector.sample("site"), io::FaultKind::DiskFull);
    EXPECT_EQ(injector.sample("site"), io::FaultKind::DiskFull);
    EXPECT_EQ(injector.injected("site"), 2u);
}

TEST_F(IoFaultsTest, RateRuleIsSeedDeterministic)
{
    auto &injector = io::FaultInjector::global();
    ASSERT_TRUE(injector.configure("site=eio~0.5"));

    const auto run = [&](std::uint64_t seed) {
        injector.setSeed(seed);
        std::string pattern;
        for (int i = 0; i < 64; ++i)
            pattern += injector.sample("site") ==
                    io::FaultKind::None
                ? '.'
                : 'X';
        return pattern;
    };
    const std::string first = run(7);
    EXPECT_EQ(first, run(7)); // Same seed, same fate sequence.
    EXPECT_NE(first, run(8));
    EXPECT_NE(first.find('X'), std::string::npos);
    EXPECT_NE(first.find('.'), std::string::npos);
}

TEST_F(IoFaultsTest, EnvironmentVariableConfiguresTheInjector)
{
#ifdef __unix__
    auto &injector = io::FaultInjector::global();
    ASSERT_EQ(setenv("TPUPOINT_IO_FAULTS", "env.site=eio", 1), 0);
    std::string why;
    EXPECT_TRUE(injector.loadFromEnvironment(&why)) << why;
    EXPECT_EQ(injector.sample("env.site"), io::FaultKind::IoError);

    injector.reset();
    ASSERT_EQ(setenv("TPUPOINT_IO_FAULTS", "garbage", 1), 0);
    EXPECT_FALSE(injector.loadFromEnvironment(&why));

    ASSERT_EQ(unsetenv("TPUPOINT_IO_FAULTS"), 0);
    injector.reset();
    EXPECT_TRUE(injector.loadFromEnvironment(&why));
    EXPECT_FALSE(injector.armed());
#endif
}

TEST_F(IoFaultsTest, IoErrorWriteLandsNothing)
{
    auto &injector = io::FaultInjector::global();
    ASSERT_TRUE(injector.configure("w=eio"));
    const std::string path = tempPath("iofault_eio.bin");
    std::filesystem::remove(path);
    std::string why;
    EXPECT_FALSE(
        io::writeFileWithFaults("w", path, "payload", &why));
    EXPECT_FALSE(why.empty());
    EXPECT_FALSE(std::filesystem::exists(path));
}

TEST_F(IoFaultsTest, DiskFullWriteLandsAPartialPrefix)
{
    auto &injector = io::FaultInjector::global();
    ASSERT_TRUE(injector.configure("w=enospc"));
    const std::string path = tempPath("iofault_enospc.bin");
    std::string why;
    EXPECT_FALSE(io::writeFileWithFaults("w", path,
                                         "0123456789", &why));
    const std::string landed = slurp(path);
    EXPECT_LT(landed.size(), 10u); // Partial...
    EXPECT_EQ(landed, std::string("0123456789").substr(
                          0, landed.size())); // ...prefix.
    std::filesystem::remove(path);
}

TEST_F(IoFaultsTest, ShortWriteLandsAllButTheLastByte)
{
    auto &injector = io::FaultInjector::global();
    ASSERT_TRUE(injector.configure("w=short"));
    const std::string path = tempPath("iofault_short.bin");
    std::string why;
    EXPECT_FALSE(io::writeFileWithFaults("w", path, "abcd", &why));
    EXPECT_EQ(slurp(path), "abc");
    std::filesystem::remove(path);
}

TEST_F(IoFaultsTest, TornRenameLeavesSourceAndTargetUntouched)
{
    auto &injector = io::FaultInjector::global();
    ASSERT_TRUE(injector.configure("r=torn"));
    const std::string from = tempPath("iofault_torn.tmp");
    const std::string to = tempPath("iofault_torn.out");
    ASSERT_TRUE(io::writeFileWithFaults("unfaulted", from, "new"));
    ASSERT_TRUE(io::writeFileWithFaults("unfaulted", to, "old"));
    std::string why;
    EXPECT_FALSE(io::renameWithFaults("r", from, to, &why));
    EXPECT_EQ(slurp(from), "new"); // The crash window: temp stays,
    EXPECT_EQ(slurp(to), "old");   // target never replaced.

    // The next attempt (the rule fired once) goes through.
    EXPECT_TRUE(io::renameWithFaults("r", from, to, &why)) << why;
    EXPECT_EQ(slurp(to), "new");
    EXPECT_FALSE(std::filesystem::exists(from));
    std::filesystem::remove(to);
}

TEST_F(IoFaultsTest, SummaryCountsRulesHitsAndInjections)
{
    auto &injector = io::FaultInjector::global();
    ASSERT_TRUE(injector.configure("s=eio"));
    injector.sample("s");
    injector.sample("s");
    const std::string summary = injector.summary();
    EXPECT_NE(summary.find("1 rule"), std::string::npos);
    EXPECT_NE(summary.find("2 hits"), std::string::npos);
    EXPECT_NE(summary.find("1 injected"), std::string::npos);
}

} // namespace
} // namespace tpupoint

/** @file Streaming JSON writer structure and escaping. */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "core/json.hh"

namespace tpupoint {
namespace {

TEST(JsonWriterTest, EmptyObject)
{
    std::ostringstream out;
    JsonWriter w(out);
    w.beginObject();
    w.endObject();
    EXPECT_EQ(out.str(), "{}");
    EXPECT_TRUE(w.complete());
}

TEST(JsonWriterTest, SimpleFields)
{
    std::ostringstream out;
    JsonWriter w(out);
    w.beginObject();
    w.field("name", "tpu");
    w.field("count", std::int64_t{3});
    w.field("ratio", 0.5);
    w.field("ok", true);
    w.key("none");
    w.nullValue();
    w.endObject();
    EXPECT_EQ(out.str(),
              "{\"name\":\"tpu\",\"count\":3,\"ratio\":0.5,"
              "\"ok\":true,\"none\":null}");
}

TEST(JsonWriterTest, NestedArrays)
{
    std::ostringstream out;
    JsonWriter w(out);
    w.beginArray();
    w.value(std::int64_t{1});
    w.beginArray();
    w.value(std::int64_t{2});
    w.endArray();
    w.beginObject();
    w.field("x", std::int64_t{3});
    w.endObject();
    w.endArray();
    EXPECT_EQ(out.str(), "[1,[2],{\"x\":3}]");
    EXPECT_TRUE(w.complete());
}

TEST(JsonWriterTest, EscapesSpecialCharacters)
{
    EXPECT_EQ(JsonWriter::escape("a\"b"), "a\\\"b");
    EXPECT_EQ(JsonWriter::escape("back\\slash"), "back\\\\slash");
    EXPECT_EQ(JsonWriter::escape("line\nbreak"), "line\\nbreak");
    EXPECT_EQ(JsonWriter::escape("tab\there"), "tab\\there");
    EXPECT_EQ(JsonWriter::escape(std::string(1, '\x01')),
              "\\u0001");
}

TEST(JsonWriterTest, NonFiniteNumbersBecomeNull)
{
    std::ostringstream out;
    JsonWriter w(out);
    w.beginArray();
    w.value(std::nan(""));
    w.endArray();
    EXPECT_EQ(out.str(), "[null]");
}

TEST(JsonWriterTest, ValueWithoutKeyPanics)
{
    std::ostringstream out;
    JsonWriter w(out);
    w.beginObject();
    EXPECT_THROW(w.value("oops"), std::logic_error);
}

TEST(JsonWriterTest, DoubleKeyPanics)
{
    std::ostringstream out;
    JsonWriter w(out);
    w.beginObject();
    w.key("a");
    EXPECT_THROW(w.key("b"), std::logic_error);
}

TEST(JsonWriterTest, MismatchedClosePanics)
{
    std::ostringstream out;
    JsonWriter w(out);
    w.beginObject();
    EXPECT_THROW(w.endArray(), std::logic_error);
}

TEST(JsonWriterTest, DanglingKeyAtClosePanics)
{
    std::ostringstream out;
    JsonWriter w(out);
    w.beginObject();
    w.key("k");
    EXPECT_THROW(w.endObject(), std::logic_error);
}

TEST(JsonWriterTest, SecondRootPanics)
{
    std::ostringstream out;
    JsonWriter w(out);
    w.value("one");
    EXPECT_THROW(w.value("two"), std::logic_error);
}

TEST(JsonWriterTest, PrettyPrintingIndents)
{
    std::ostringstream out;
    JsonWriter w(out, /*pretty=*/true);
    w.beginObject();
    w.field("a", std::int64_t{1});
    w.endObject();
    EXPECT_EQ(out.str(), "{\n  \"a\": 1\n}");
}

TEST(JsonWriterTest, CompleteOnlyWhenBalanced)
{
    std::ostringstream out;
    JsonWriter w(out);
    EXPECT_FALSE(w.complete());
    w.beginArray();
    EXPECT_FALSE(w.complete());
    w.endArray();
    EXPECT_TRUE(w.complete());
}

TEST(JsonValidatorTest, AcceptsWellFormedDocuments)
{
    EXPECT_TRUE(validateJson("{}"));
    EXPECT_TRUE(validateJson("[]"));
    EXPECT_TRUE(validateJson("null"));
    EXPECT_TRUE(validateJson("true"));
    EXPECT_TRUE(validateJson("-12.5e3"));
    EXPECT_TRUE(validateJson("\"text with \\\"quotes\\\"\""));
    EXPECT_TRUE(validateJson(
        "{\"a\":[1,2,{\"b\":null}],\"c\":\"\\u00e9\"}"));
    EXPECT_TRUE(validateJson("  [1, 2]  \n")); // edge whitespace
}

TEST(JsonValidatorTest, RejectsMalformedDocuments)
{
    EXPECT_FALSE(validateJson(""));
    EXPECT_FALSE(validateJson("{"));
    EXPECT_FALSE(validateJson("[1,]"));
    EXPECT_FALSE(validateJson("{\"a\":1,}"));
    EXPECT_FALSE(validateJson("{'a':1}"));
    EXPECT_FALSE(validateJson("nul"));
    EXPECT_FALSE(validateJson("01"));
    EXPECT_FALSE(validateJson("\"unterminated"));
    EXPECT_FALSE(validateJson("{} trailing"));
    EXPECT_FALSE(validateJson("NaN"));
}

TEST(JsonValidatorTest, ErrorCarriesAnOffsetAndReason)
{
    std::string error;
    EXPECT_FALSE(validateJson("{\"a\":}", &error));
    EXPECT_FALSE(error.empty());
}

TEST(JsonValidatorTest, WriterOutputAlwaysValidates)
{
    std::ostringstream out;
    JsonWriter w(out);
    w.beginObject();
    w.field("name", "a\"b\\c\nnewline");
    w.field("nan", std::nan("")); // emitted as null
    w.key("list");
    w.beginArray();
    w.value(std::int64_t{-1});
    w.value(0.25);
    w.endArray();
    w.endObject();
    std::string error;
    EXPECT_TRUE(validateJson(out.str(), &error)) << error;
}

} // namespace
} // namespace tpupoint

/**
 * @file ThreadPool: inline fallback, graceful shutdown with queued
 * tasks, exception propagation, bounded-queue backpressure, forEach
 * coverage and hook accounting.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/thread_pool.hh"

namespace tpupoint {
namespace {

TEST(ResolveThreadCountTest, RequestedWinsOverEverything)
{
    ::setenv("TPUPOINT_THREADS", "7", 1);
    EXPECT_EQ(resolveThreadCount(3), 3u);
    ::unsetenv("TPUPOINT_THREADS");
}

TEST(ResolveThreadCountTest, EnvironmentFillsInZero)
{
    ::setenv("TPUPOINT_THREADS", "5", 1);
    EXPECT_EQ(resolveThreadCount(0), 5u);
    ::unsetenv("TPUPOINT_THREADS");
}

TEST(ResolveThreadCountTest, FallsBackToHardwareMinimumOne)
{
    ::unsetenv("TPUPOINT_THREADS");
    EXPECT_GE(resolveThreadCount(0), 1u);
}

TEST(ThreadPoolTest, ZeroWorkersIsInlineInCallingThread)
{
    ThreadPool pool(0u);
    EXPECT_TRUE(pool.inlineMode());
    EXPECT_EQ(pool.workers(), 0u);

    const std::thread::id caller = std::this_thread::get_id();
    std::thread::id ran_on;
    auto future = pool.submit([&]() { ran_on = caller; });
    // Inline mode executes before submit() returns.
    EXPECT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPoolTest, OneWorkerIsAlsoInline)
{
    ThreadPool pool(1u);
    EXPECT_TRUE(pool.inlineMode());
}

TEST(ThreadPoolTest, SubmitCarriesResult)
{
    ThreadPool pool(2u);
    auto future = pool.submit([]() { return 41 + 1; });
    EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionThroughFuture)
{
    ThreadPool pool(2u);
    auto future = pool.submit([]() -> int {
        throw std::runtime_error("task failed");
    });
    EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, InlineSubmitPropagatesExceptionToo)
{
    ThreadPool pool(0u);
    auto future = pool.submit(
        []() { throw std::runtime_error("inline failure"); });
    EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks)
{
    std::atomic<int> executed{0};
    constexpr int kTasks = 64;
    {
        ThreadPool pool(2u);
        for (int i = 0; i < kTasks; ++i) {
            pool.submit([&executed]() {
                // Slow tasks guarantee a backlog is still queued
                // when the destructor runs.
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
                executed.fetch_add(1);
            });
        }
    }
    // Shutdown drained everything rather than dropping the queue.
    EXPECT_EQ(executed.load(), kTasks);
}

TEST(ThreadPoolTest, ForEachCoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4u);
    constexpr std::size_t kItems = 100;
    std::vector<std::atomic<int>> hits(kItems);
    pool.forEach(kItems,
                 [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kItems; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;

    const ThreadPool::Stats stats = pool.stats();
    EXPECT_EQ(stats.submitted, kItems);
    EXPECT_EQ(stats.executed, kItems);
}

TEST(ThreadPoolTest, ForEachRethrowsLowestIndexError)
{
    ThreadPool pool(4u);
    const auto run = [&]() {
        pool.forEach(32, [](std::size_t i) {
            if (i == 7 || i == 19)
                throw std::runtime_error("item " +
                                         std::to_string(i));
        });
    };
    // Whatever order the workers hit the failures, the reported
    // error is the lowest index — same as the serial path.
    try {
        run();
        FAIL() << "forEach did not rethrow";
    } catch (const std::runtime_error &error) {
        EXPECT_STREQ(error.what(), "item 7");
    }
}

TEST(ThreadPoolTest, InlineForEachMatchesSerialSemantics)
{
    ThreadPool pool(0u);
    std::vector<std::size_t> order;
    pool.forEach(5, [&](std::size_t i) { order.push_back(i); });
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, BoundedQueueStillCompletesEverything)
{
    ThreadPoolOptions options;
    options.workers = 2;
    options.queue_capacity = 4;
    ThreadPool pool(options);
    std::atomic<int> executed{0};
    constexpr int kTasks = 200;
    for (int i = 0; i < kTasks; ++i)
        pool.submit([&executed]() { executed.fetch_add(1); });
    pool.helpWhile(
        [&]() { return executed.load() == kTasks; });
    EXPECT_EQ(executed.load(), kTasks);
    // The cap held: the queue never grew past capacity.
    EXPECT_LE(pool.stats().max_queue_depth,
              options.queue_capacity);
}

TEST(ThreadPoolTest, RunOnePendingTaskReportsEmptyQueues)
{
    ThreadPool inline_pool(0u);
    EXPECT_FALSE(inline_pool.runOnePendingTask());
    ThreadPool pool(2u);
    pool.forEach(8, [](std::size_t) {});
    EXPECT_FALSE(pool.runOnePendingTask());
}

TEST(ThreadPoolTest, HooksSeeEveryTaskWithItsLabel)
{
    std::atomic<int> done_count{0};
    std::atomic<int> labeled{0};
    ThreadPoolOptions options;
    options.workers = 2;
    options.hooks.on_task_done =
        [&](const TaskTiming &timing) {
            done_count.fetch_add(1);
            if (timing.label &&
                std::string(timing.label) == "unit.task")
                labeled.fetch_add(1);
            EXPECT_GE(timing.finished_ns, timing.started_ns);
            EXPECT_GE(timing.started_ns, timing.enqueued_ns);
        };
    {
        ThreadPool pool(options);
        pool.forEach(16, [](std::size_t) {}, "unit.task");
    }
    EXPECT_EQ(done_count.load(), 16);
    EXPECT_EQ(labeled.load(), 16);
}

TEST(ThreadPoolTest, NestedForEachDoesNotDeadlock)
{
    ThreadPool pool(2u);
    std::atomic<int> inner_runs{0};
    // Outer tasks fan out their own inner work on the same pool —
    // the analyzer's detector → elbow-sweep shape. Waiters help,
    // so this completes even with every worker inside an outer
    // task.
    pool.forEach(4, [&](std::size_t) {
        pool.forEach(8, [&](std::size_t) {
            inner_runs.fetch_add(1);
        });
    });
    EXPECT_EQ(inner_runs.load(), 32);
}

} // namespace
} // namespace tpupoint

/** @file Logging thresholds and error-reporting contracts. */

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>

#include "core/logging.hh"

namespace tpupoint {
namespace {

class LoggingTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        previous = LogConfig::threshold();
    }

    void
    TearDown() override
    {
        LogConfig::setThreshold(previous);
    }

    LogLevel previous = LogLevel::Info;
};

TEST_F(LoggingTest, ThresholdRoundTrips)
{
    LogConfig::setThreshold(LogLevel::Warn);
    EXPECT_EQ(LogConfig::threshold(), LogLevel::Warn);
    LogConfig::setThreshold(LogLevel::Debug);
    EXPECT_EQ(LogConfig::threshold(), LogLevel::Debug);
}

TEST_F(LoggingTest, FatalThrowsRuntimeError)
{
    LogConfig::setThreshold(LogLevel::Panic); // keep stderr quiet
    EXPECT_THROW(fatal("user misconfigured ", 42),
                 std::runtime_error);
    try {
        fatal("bad value ", 7);
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("bad value 7"),
                  std::string::npos);
    }
}

TEST_F(LoggingTest, PanicThrowsLogicError)
{
    LogConfig::setThreshold(LogLevel::Panic);
    EXPECT_THROW(panic("invariant ", "broken"),
                 std::logic_error);
    // panic is NOT a runtime_error: internal bugs are
    // distinguishable from user errors.
    try {
        panic("x");
    } catch (const std::runtime_error &) {
        FAIL() << "panic must not be a runtime_error";
    } catch (const std::logic_error &) {
        SUCCEED();
    }
}

TEST_F(LoggingTest, ConcatenateFormatsMixedTypes)
{
    EXPECT_EQ(detail::concatenate("a=", 1, " b=", 2.5, " c=",
                                  'x'),
              "a=1 b=2.5 c=x");
    EXPECT_EQ(detail::concatenate(), "");
}

TEST_F(LoggingTest, ParseLevelAcceptsKnownNamesOnly)
{
    LogLevel level = LogLevel::Info;
    EXPECT_TRUE(LogConfig::parseLevel("debug", &level));
    EXPECT_EQ(level, LogLevel::Debug);
    EXPECT_TRUE(LogConfig::parseLevel("warn", &level));
    EXPECT_EQ(level, LogLevel::Warn);
    EXPECT_TRUE(LogConfig::parseLevel("info", &level));
    EXPECT_EQ(level, LogLevel::Info);
    EXPECT_FALSE(LogConfig::parseLevel("verbose", &level));
    EXPECT_FALSE(LogConfig::parseLevel("", &level));
    // A failed parse never clobbers the output.
    EXPECT_EQ(level, LogLevel::Info);
}

TEST_F(LoggingTest, EnvironmentVariableSetsTheThreshold)
{
    ASSERT_EQ(setenv("TPUPOINT_LOG_LEVEL", "debug", 1), 0);
    EXPECT_TRUE(LogConfig::loadFromEnvironment());
    EXPECT_EQ(LogConfig::threshold(), LogLevel::Debug);

    ASSERT_EQ(setenv("TPUPOINT_LOG_LEVEL", "warn", 1), 0);
    EXPECT_TRUE(LogConfig::loadFromEnvironment());
    EXPECT_EQ(LogConfig::threshold(), LogLevel::Warn);

    // Garbage and absence both leave the threshold untouched.
    ASSERT_EQ(setenv("TPUPOINT_LOG_LEVEL", "shouting", 1), 0);
    EXPECT_FALSE(LogConfig::loadFromEnvironment());
    EXPECT_EQ(LogConfig::threshold(), LogLevel::Warn);
    ASSERT_EQ(unsetenv("TPUPOINT_LOG_LEVEL"), 0);
    EXPECT_FALSE(LogConfig::loadFromEnvironment());
    EXPECT_EQ(LogConfig::threshold(), LogLevel::Warn);
}

TEST_F(LoggingTest, InformAndWarnDoNotThrow)
{
    LogConfig::setThreshold(LogLevel::Panic); // suppress output
    EXPECT_NO_THROW(inform("status ", 1));
    EXPECT_NO_THROW(warn("watch out ", 2));
    EXPECT_NO_THROW(debugLog("detail ", 3));
}

} // namespace
} // namespace tpupoint

/** @file Streaming statistics accumulators. */

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/rng.hh"
#include "core/stats.hh"

namespace tpupoint {
namespace {

TEST(SummaryTest, EmptySummaryIsZero)
{
    Summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.sum(), 0.0);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(SummaryTest, SingleSample)
{
    Summary s;
    s.add(4.5);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_EQ(s.mean(), 4.5);
    EXPECT_EQ(s.min(), 4.5);
    EXPECT_EQ(s.max(), 4.5);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(SummaryTest, MatchesNaiveComputation)
{
    Rng rng(1);
    std::vector<double> xs;
    Summary s;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.uniform(-50, 50);
        xs.push_back(x);
        s.add(x);
    }
    double sum = 0;
    for (const double x : xs)
        sum += x;
    const double mean = sum / xs.size();
    double var = 0;
    for (const double x : xs)
        var += (x - mean) * (x - mean);
    var /= xs.size();
    EXPECT_NEAR(s.mean(), mean, 1e-9);
    EXPECT_NEAR(s.variance(), var, 1e-7);
    EXPECT_NEAR(s.stddev(), std::sqrt(var), 1e-7);
}

TEST(SummaryTest, MergeEqualsSingleStream)
{
    Rng rng(2);
    Summary whole, left, right;
    for (int i = 0; i < 500; ++i) {
        const double x = rng.gaussian(3.0, 2.0);
        whole.add(x);
        (i % 2 ? left : right).add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), whole.variance(), 1e-7);
    EXPECT_EQ(left.min(), whole.min());
    EXPECT_EQ(left.max(), whole.max());
}

TEST(SummaryTest, MergeWithEmptyIsIdentity)
{
    Summary a, b;
    a.add(1.0);
    a.add(2.0);
    const double mean = a.mean();
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_EQ(a.mean(), mean);
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_EQ(b.mean(), mean);
}

TEST(SummaryTest, ResetClearsEverything)
{
    Summary s;
    s.add(10);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
}

TEST(HistogramTest, RejectsBadConstruction)
{
    EXPECT_THROW(Histogram(0, 10, 0), std::runtime_error);
    EXPECT_THROW(Histogram(10, 10, 4), std::runtime_error);
    EXPECT_THROW(Histogram(10, 5, 4), std::runtime_error);
}

TEST(HistogramTest, BinsCountCorrectly)
{
    Histogram h(0, 10, 10);
    for (int i = 0; i < 10; ++i)
        h.add(i + 0.5);
    for (std::size_t b = 0; b < 10; ++b)
        EXPECT_EQ(h.binCount(b), 1u);
    EXPECT_EQ(h.total(), 10u);
}

TEST(HistogramTest, OutOfRangeFoldsIntoEdges)
{
    Histogram h(0, 10, 10);
    h.add(-5);
    h.add(100);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(9), 1u);
}

TEST(HistogramTest, BinCountOutOfRangePanics)
{
    Histogram h(0, 1, 2);
    EXPECT_THROW(h.binCount(2), std::logic_error);
}

TEST(HistogramTest, QuantileApproximatesUniform)
{
    Histogram h(0, 100, 100);
    for (int i = 0; i < 100000; ++i)
        h.add(static_cast<double>(i % 100) + 0.5);
    EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
    EXPECT_NEAR(h.quantile(0.9), 90.0, 2.0);
    EXPECT_NEAR(h.quantile(0.0), 0.0, 1.1);
}

TEST(HistogramTest, QuantileOnEmptyReturnsLow)
{
    Histogram h(5, 10, 5);
    EXPECT_EQ(h.quantile(0.5), 5.0);
}

TEST(EwmaTest, FirstSamplePrimes)
{
    Ewma e(0.5);
    EXPECT_FALSE(e.hasValue());
    e.add(10.0);
    EXPECT_TRUE(e.hasValue());
    EXPECT_EQ(e.value(), 10.0);
}

TEST(EwmaTest, ConvergesTowardConstant)
{
    Ewma e(0.3);
    e.add(0.0);
    for (int i = 0; i < 50; ++i)
        e.add(5.0);
    EXPECT_NEAR(e.value(), 5.0, 1e-6);
}

TEST(EwmaTest, RejectsBadAlpha)
{
    EXPECT_THROW(Ewma(0.0), std::runtime_error);
    EXPECT_THROW(Ewma(1.5), std::runtime_error);
}

TEST(PercentTest, HandlesZeroWhole)
{
    EXPECT_EQ(percent(5, 0), 0.0);
    EXPECT_EQ(percent(1, 4), 25.0);
}

} // namespace
} // namespace tpupoint

/** @file Synthetic step/record builders shared by analyzer tests. */

#ifndef TPUPOINT_TESTS_ANALYZER_SYNTHETIC_HH
#define TPUPOINT_TESTS_ANALYZER_SYNTHETIC_HH

#include <string>
#include <vector>

#include "proto/record.hh"

namespace tpupoint {
namespace testutil {

/**
 * Build one StepStats with the given TPU op labels (each one
 * invocation of 10us-ish) and a step span of @p span.
 */
inline StepStats
makeStep(StepId step, const std::vector<std::string> &tpu_ops,
         const std::vector<std::string> &host_ops = {},
         SimTime span = 100 * kUsec)
{
    StepStats s;
    s.step = step;
    s.begin = static_cast<SimTime>(step) * span;
    s.end = s.begin + span;
    // Earlier-listed ops are the most time-consuming, so the
    // first label (e.g. "fusion") tops the phase rankings.
    SimTime weight = static_cast<SimTime>(tpu_ops.size());
    for (const auto &name : tpu_ops) {
        OpStats stats;
        stats.count = 1;
        stats.total_duration = 10 * kUsec * weight;
        --weight;
        s.tpu_ops[name] = stats;
        s.tpu_busy += stats.total_duration;
    }
    for (const auto &name : host_ops) {
        OpStats stats;
        stats.count = 1;
        stats.total_duration = 5 * kUsec;
        s.host_ops[name] = stats;
    }
    return s;
}

/** Wrap steps into a single profile record. */
inline ProfileRecord
makeRecord(std::vector<StepStats> steps, std::uint64_t seq = 0)
{
    ProfileRecord record;
    record.sequence = seq;
    if (!steps.empty()) {
        record.window_begin = steps.front().begin;
        record.window_end = steps.back().end;
    }
    for (const auto &s : steps)
        record.event_count +=
            s.tpu_ops.size() + s.host_ops.size();
    record.steps = std::move(steps);
    return record;
}

/**
 * A canonical three-phase run: init step, N train steps, M eval
 * steps, then N more train steps — the structure TPUPoint's
 * workloads exhibit.
 */
inline std::vector<StepStats>
threePhaseRun(std::size_t train_steps = 40,
              std::size_t eval_steps = 8)
{
    const std::vector<std::string> init_ops{};
    const std::vector<std::string> init_host{
        "InitializeHostForDistributedTpu", "StartProgram",
        "RestoreV2"};
    const std::vector<std::string> train_ops{
        "fusion", "MatMul", "Reshape", "Conv2DBackpropFilter",
        "Conv2DBackpropInput", "all-reduce",
        "InfeedDequeueTuple", "OutfeedEnqueueTuple"};
    const std::vector<std::string> train_host{
        "OutfeedDequeueTuple", "TransferBufferToInfeedLocked",
        "Recv", "LinearizeX32"};
    const std::vector<std::string> eval_ops{
        "fusion", "MatMul", "Reshape", "ArgMax", "Equal",
        "Squeeze", "InfeedDequeueTuple", "OutfeedEnqueueTuple"};
    const std::vector<std::string> eval_host{
        "OutfeedDequeueTuple", "TransferBufferToInfeedLocked",
        "ArgMax", "Equal", "Mean", "ConcatV2", "Squeeze"};

    std::vector<StepStats> steps;
    StepId id = 0;
    steps.push_back(makeStep(id++, init_ops, init_host,
                             5000 * kUsec));
    for (std::size_t i = 0; i < train_steps; ++i)
        steps.push_back(makeStep(id++, train_ops, train_host));
    for (std::size_t i = 0; i < eval_steps; ++i)
        steps.push_back(makeStep(id++, eval_ops, eval_host,
                                 60 * kUsec));
    for (std::size_t i = 0; i < train_steps; ++i)
        steps.push_back(makeStep(id++, train_ops, train_host));
    return steps;
}

} // namespace testutil
} // namespace tpupoint

#endif // TPUPOINT_TESTS_ANALYZER_SYNTHETIC_HH

/** @file Step table aggregation across profile records. */

#include <gtest/gtest.h>

#include <stdexcept>

#include "analyzer/step_table.hh"
#include "tests/analyzer/synthetic.hh"

namespace tpupoint {
namespace {

using testutil::makeRecord;
using testutil::makeStep;

TEST(StepTableTest, MergesRecordsByStep)
{
    // Step 2 spans two profile windows.
    auto first = makeRecord(
        {makeStep(1, {"fusion"}), makeStep(2, {"fusion"})}, 0);
    auto second = makeRecord(
        {makeStep(2, {"MatMul"}), makeStep(3, {"fusion"})}, 1);
    const StepTable table =
        StepTable::fromRecords({first, second});

    ASSERT_EQ(table.size(), 3u);
    EXPECT_EQ(table.at(0).step, 1u);
    EXPECT_EQ(table.at(1).step, 2u);
    EXPECT_EQ(table.at(2).step, 3u);
    // The merged step carries both windows' ops.
    EXPECT_EQ(table.at(1).tpu_ops.size(), 2u);
    EXPECT_TRUE(table.at(1).tpu_ops.count("fusion"));
    EXPECT_TRUE(table.at(1).tpu_ops.count("MatMul"));
}

TEST(StepTableTest, StepsAreAscendingRegardlessOfInput)
{
    auto record = makeRecord({makeStep(9, {"a"}),
                              makeStep(3, {"b"}),
                              makeStep(7, {"c"})});
    const StepTable table = StepTable::fromRecords({record});
    ASSERT_EQ(table.size(), 3u);
    EXPECT_EQ(table.at(0).step, 3u);
    EXPECT_EQ(table.at(1).step, 7u);
    EXPECT_EQ(table.at(2).step, 9u);
}

TEST(StepTableTest, TotalDurationSumsSpans)
{
    auto record = makeRecord(
        {makeStep(0, {"a"}, {}, 100), makeStep(1, {"a"}, {}, 50)});
    const StepTable table = StepTable::fromRecords({record});
    EXPECT_EQ(table.totalDuration(), 150);
}

TEST(StepTableTest, OpUniverseIsSortedAndPrefixed)
{
    auto record = makeRecord(
        {makeStep(0, {"MatMul"}, {"RunGraph"}),
         makeStep(1, {"fusion"}, {"Recv"})});
    const StepTable table = StepTable::fromRecords({record});
    const auto universe = table.opUniverse();
    ASSERT_EQ(universe.size(), 4u);
    EXPECT_EQ(universe[0], "host:Recv");
    EXPECT_EQ(universe[1], "host:RunGraph");
    EXPECT_EQ(universe[2], "tpu:MatMul");
    EXPECT_EQ(universe[3], "tpu:fusion");
}

TEST(StepTableTest, DropAfterErasesTailAndReportsSpan)
{
    StepTableBuilder builder;
    builder.ingest(makeRecord({makeStep(1, {"a"}, {}, 100),
                               makeStep(2, {"a"}, {}, 100),
                               makeStep(3, {"a"}, {}, 100),
                               makeStep(4, {"a"}, {}, 100)}));
    SimTime span = 0;
    EXPECT_EQ(builder.dropAfter(2, &span), 2u);
    EXPECT_EQ(span, 200);
    EXPECT_EQ(builder.stepsAggregated(), 2u);
    // Idempotent once the tail is gone.
    EXPECT_EQ(builder.dropAfter(2), 0u);

    const StepTable table = std::move(builder).build();
    ASSERT_EQ(table.size(), 2u);
    EXPECT_EQ(table.at(1).step, 2u);
}

TEST(StepTableTest, DropAfterCountsMergedWindowEnvelope)
{
    // Step 3 arrives in two windows (its envelope widens on the
    // second merge) and step 5 arrives before step 4; the dropped
    // span must reflect the merged columnar rows, not the raw
    // ingest order.
    StepTableBuilder builder;
    builder.ingest(makeRecord({makeStep(2, {"a"}, {}, 100),
                               makeStep(3, {"a"}, {}, 100)}));
    builder.ingest(makeRecord({makeStep(3, {"a"}, {}, 100),
                               makeStep(5, {"a"}, {}, 100)}));
    builder.ingest(makeRecord({makeStep(4, {"a"}, {}, 100)}));
    SimTime span = 0;
    // Drops steps 3 (merged, same envelope), 4 and 5.
    EXPECT_EQ(builder.dropAfter(2, &span), 3u);
    EXPECT_EQ(span, 300);
    const StepTable table = std::move(builder).build();
    ASSERT_EQ(table.size(), 1u);
    EXPECT_EQ(table.stepId(0), 2u);
}

TEST(StepTableTest, MarkReplayedFlagsReingestedRange)
{
    StepTableBuilder builder;
    builder.ingest(makeRecord({makeStep(1, {"a"}),
                               makeStep(2, {"a"}),
                               makeStep(3, {"a"})}));
    // The dead attempt reached step 3, the restart resumes at 1:
    // steps (1, 3] come back as replays.
    builder.dropAfter(1);
    builder.markReplayed(1, 3);
    builder.ingest(makeRecord(
        {makeStep(2, {"a"}), makeStep(3, {"a"}),
         makeStep(4, {"a"})},
        1));

    const StepTable table = std::move(builder).build();
    ASSERT_EQ(table.size(), 4u);
    EXPECT_FALSE(table.at(0).replayed); // step 1
    EXPECT_TRUE(table.at(1).replayed);  // step 2: replayed
    EXPECT_TRUE(table.at(2).replayed);  // step 3: replayed
    EXPECT_FALSE(table.at(3).replayed); // step 4: new progress
    // Replayed steps count once: one row each, single-window span
    // and a single op invocation, not a doubled aggregate.
    EXPECT_EQ(table.at(1).end - table.at(1).begin,
              100 * kUsec);
    EXPECT_EQ(table.at(1).tpu_ops.at("a").count, 1u);
}

TEST(StepTableTest, MarkReplayedEmptyRangeIsIgnored)
{
    StepTableBuilder builder;
    builder.markReplayed(5, 5);
    builder.markReplayed(7, 3);
    builder.ingest(makeRecord({makeStep(5, {"a"}),
                               makeStep(4, {"a"})}));
    const StepTable table = std::move(builder).build();
    EXPECT_FALSE(table.at(0).replayed);
    EXPECT_FALSE(table.at(1).replayed);
}

TEST(StepTableTest, EmptyInput)
{
    const StepTable table = StepTable::fromRecords({});
    EXPECT_EQ(table.size(), 0u);
    EXPECT_EQ(table.totalDuration(), 0);
    EXPECT_TRUE(table.opUniverse().empty());
    EXPECT_THROW(table.at(0), std::logic_error);
}

} // namespace
} // namespace tpupoint

/** @file Step table aggregation across profile records. */

#include <gtest/gtest.h>

#include <stdexcept>

#include "analyzer/step_table.hh"
#include "tests/analyzer/synthetic.hh"

namespace tpupoint {
namespace {

using testutil::makeRecord;
using testutil::makeStep;

TEST(StepTableTest, MergesRecordsByStep)
{
    // Step 2 spans two profile windows.
    auto first = makeRecord(
        {makeStep(1, {"fusion"}), makeStep(2, {"fusion"})}, 0);
    auto second = makeRecord(
        {makeStep(2, {"MatMul"}), makeStep(3, {"fusion"})}, 1);
    const StepTable table =
        StepTable::fromRecords({first, second});

    ASSERT_EQ(table.size(), 3u);
    EXPECT_EQ(table.at(0).step, 1u);
    EXPECT_EQ(table.at(1).step, 2u);
    EXPECT_EQ(table.at(2).step, 3u);
    // The merged step carries both windows' ops.
    EXPECT_EQ(table.at(1).tpu_ops.size(), 2u);
    EXPECT_TRUE(table.at(1).tpu_ops.count("fusion"));
    EXPECT_TRUE(table.at(1).tpu_ops.count("MatMul"));
}

TEST(StepTableTest, StepsAreAscendingRegardlessOfInput)
{
    auto record = makeRecord({makeStep(9, {"a"}),
                              makeStep(3, {"b"}),
                              makeStep(7, {"c"})});
    const StepTable table = StepTable::fromRecords({record});
    ASSERT_EQ(table.size(), 3u);
    EXPECT_EQ(table.at(0).step, 3u);
    EXPECT_EQ(table.at(1).step, 7u);
    EXPECT_EQ(table.at(2).step, 9u);
}

TEST(StepTableTest, TotalDurationSumsSpans)
{
    auto record = makeRecord(
        {makeStep(0, {"a"}, {}, 100), makeStep(1, {"a"}, {}, 50)});
    const StepTable table = StepTable::fromRecords({record});
    EXPECT_EQ(table.totalDuration(), 150);
}

TEST(StepTableTest, OpUniverseIsSortedAndPrefixed)
{
    auto record = makeRecord(
        {makeStep(0, {"MatMul"}, {"RunGraph"}),
         makeStep(1, {"fusion"}, {"Recv"})});
    const StepTable table = StepTable::fromRecords({record});
    const auto universe = table.opUniverse();
    ASSERT_EQ(universe.size(), 4u);
    EXPECT_EQ(universe[0], "host:Recv");
    EXPECT_EQ(universe[1], "host:RunGraph");
    EXPECT_EQ(universe[2], "tpu:MatMul");
    EXPECT_EQ(universe[3], "tpu:fusion");
}

TEST(StepTableTest, EmptyInput)
{
    const StepTable table = StepTable::fromRecords({});
    EXPECT_EQ(table.size(), 0u);
    EXPECT_EQ(table.totalDuration(), 0);
    EXPECT_TRUE(table.opUniverse().empty());
    EXPECT_THROW(table.at(0), std::logic_error);
}

} // namespace
} // namespace tpupoint

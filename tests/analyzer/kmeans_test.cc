/** @file k-means clustering and the k-sweep. */

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "analyzer/kmeans.hh"

namespace tpupoint {
namespace {

/** Three well-separated blobs in 2-D. */
std::vector<FeatureVector>
threeBlobs(int per_blob = 40)
{
    Rng rng(1);
    const double centers[3][2] = {{0, 0}, {50, 0}, {0, 50}};
    std::vector<FeatureVector> points;
    for (const auto &center : centers) {
        for (int i = 0; i < per_blob; ++i) {
            points.push_back({center[0] + rng.gaussian(0, 1),
                              center[1] + rng.gaussian(0, 1)});
        }
    }
    return points;
}

TEST(KMeansTest, SeparatesObviousBlobs)
{
    const auto points = threeBlobs();
    Rng rng(2);
    const KMeansResult result = kMeansCluster(points, 3, rng);
    EXPECT_EQ(result.k, 3);
    // Each blob maps to exactly one label.
    for (int blob = 0; blob < 3; ++blob) {
        std::set<int> labels;
        for (int i = 0; i < 40; ++i)
            labels.insert(result.labels[
                static_cast<std::size_t>(blob * 40 + i)]);
        EXPECT_EQ(labels.size(), 1u);
    }
    // SSD is tiny compared to the blob separation.
    EXPECT_LT(result.ssd, 120 * 10.0);
}

TEST(KMeansTest, KOneCentroidIsTheMean)
{
    const std::vector<FeatureVector> points{{0, 0}, {2, 2},
                                            {4, 4}};
    Rng rng(3);
    const KMeansResult result = kMeansCluster(points, 1, rng);
    ASSERT_EQ(result.centroids.size(), 1u);
    EXPECT_NEAR(result.centroids[0][0], 2.0, 1e-9);
    EXPECT_NEAR(result.centroids[0][1], 2.0, 1e-9);
}

TEST(KMeansTest, KClampedToPointCount)
{
    const std::vector<FeatureVector> points{{1}, {2}};
    Rng rng(4);
    const KMeansResult result = kMeansCluster(points, 10, rng);
    EXPECT_EQ(result.k, 2);
}

TEST(KMeansTest, EmptyDataRejected)
{
    Rng rng(5);
    EXPECT_THROW(kMeansCluster(std::vector<FeatureVector>{}, 2, rng), std::runtime_error);
}

TEST(KMeansTest, DeterministicGivenSeed)
{
    const auto points = threeBlobs();
    Rng a(6), b(6);
    const KMeansResult ra = kMeansCluster(points, 4, a);
    const KMeansResult rb = kMeansCluster(points, 4, b);
    EXPECT_EQ(ra.labels, rb.labels);
    EXPECT_EQ(ra.ssd, rb.ssd);
}

TEST(KMeansSweepTest, SsdDecreasesAndElbowFindsBlobCount)
{
    const auto points = threeBlobs();
    const KMeansSweep sweep = kMeansSweep(points, 1, 10);
    ASSERT_EQ(sweep.ssd_curve.size(), 10u);
    // SSD is (weakly) decreasing in k for well-separated data.
    EXPECT_GT(sweep.ssd_curve[0], sweep.ssd_curve[2]);
    EXPECT_GT(sweep.ssd_curve[2], sweep.ssd_curve[9] - 1e-9);
    // The elbow lands on the true cluster count.
    EXPECT_EQ(sweep.elbow_k, 3);
    EXPECT_EQ(sweep.best.k, 3);
}

TEST(KMeansSweepTest, InvalidRangeRejected)
{
    const auto points = threeBlobs(5);
    EXPECT_THROW(kMeansSweep(points, 0, 5), std::runtime_error);
    EXPECT_THROW(kMeansSweep(points, 5, 2), std::runtime_error);
}

TEST(KMeansTest, IdenticalPointsDegenerate)
{
    const std::vector<FeatureVector> points(
        20, FeatureVector{3, 3});
    Rng rng(7);
    const KMeansResult result = kMeansCluster(points, 3, rng);
    EXPECT_EQ(result.ssd, 0.0);
}

} // namespace
} // namespace tpupoint

/** @file Phase construction, coverage and operator ranking. */

#include <gtest/gtest.h>

#include <stdexcept>

#include "analyzer/phases.hh"
#include "tests/analyzer/synthetic.hh"

namespace tpupoint {
namespace {

using testutil::makeRecord;
using testutil::makeStep;

StepTable
simpleTable()
{
    return StepTable::fromRecords({makeRecord(
        {makeStep(0, {"fusion"}, {}, 100),
         makeStep(1, {"fusion"}, {}, 100),
         makeStep(2, {"ArgMax"}, {}, 50),
         makeStep(3, {"fusion"}, {}, 100)})});
}

TEST(PhasesTest, FromLabelsGroupsByCluster)
{
    const StepTable table = simpleTable();
    const std::vector<int> labels{0, 0, 1, 0};
    const auto phases = phasesFromLabels(table, labels);
    ASSERT_EQ(phases.size(), 2u);
    EXPECT_EQ(phases[0].size(), 3u);
    EXPECT_EQ(phases[0].total_duration, 300);
    EXPECT_EQ(phases[1].size(), 1u);
    EXPECT_EQ(phases[1].first_step, 2u);
    EXPECT_FALSE(phases[0].is_noise);
}

TEST(PhasesTest, NoiseLabelsBecomeOnePseudoPhase)
{
    const StepTable table = simpleTable();
    const std::vector<int> labels{-1, 0, -1, 0};
    const auto phases = phasesFromLabels(table, labels);
    ASSERT_EQ(phases.size(), 2u);
    // Ordered map: noise (-1) sorts first.
    EXPECT_TRUE(phases[0].is_noise);
    EXPECT_EQ(phases[0].size(), 2u);
}

TEST(PhasesTest, LabelMismatchPanics)
{
    const StepTable table = simpleTable();
    EXPECT_THROW(phasesFromLabels(table, {0, 1}),
                 std::logic_error);
}

TEST(PhasesTest, FromGroupsMapsSpansToSteps)
{
    const StepTable table = simpleTable();
    OnlineLinearScan::Group train;
    train.spans.push_back({0, 1, 2, 200});
    train.spans.push_back({3, 3, 1, 100});
    train.steps = 3;
    train.duration = 300;
    OnlineLinearScan::Group eval;
    eval.spans.push_back({2, 2, 1, 50});
    eval.steps = 1;
    eval.duration = 50;

    const auto phases = phasesFromGroups(table, {train, eval});
    ASSERT_EQ(phases.size(), 2u);
    EXPECT_EQ(phases[0].size(), 3u);
    EXPECT_EQ(phases[0].total_duration, 300);
    EXPECT_EQ(phases[0].first_step, 0u);
    EXPECT_EQ(phases[0].last_step, 3u);
    EXPECT_EQ(phases[1].size(), 1u);
}

TEST(PhasesTest, AggregatesOpMaps)
{
    const StepTable table = simpleTable();
    const auto phases = phasesFromLabels(table, {0, 0, 0, 0});
    ASSERT_EQ(phases.size(), 1u);
    EXPECT_EQ(phases[0].tpu_ops.at("fusion").count, 3u);
    EXPECT_EQ(phases[0].tpu_ops.at("ArgMax").count, 1u);
}

TEST(PhasesTest, CoverageOfTopPhases)
{
    std::vector<Phase> phases(4);
    phases[0].total_duration = 700;
    phases[1].total_duration = 200;
    phases[2].total_duration = 80;
    phases[3].total_duration = 20;
    EXPECT_NEAR(topPhaseCoverage(phases, 1), 0.7, 1e-9);
    EXPECT_NEAR(topPhaseCoverage(phases, 3), 0.98, 1e-9);
    EXPECT_NEAR(topPhaseCoverage(phases, 10), 1.0, 1e-9);
    EXPECT_EQ(topPhaseCoverage({}, 3), 0.0);
}

TEST(PhasesTest, LongestPhaseAndOrdering)
{
    std::vector<Phase> phases(3);
    phases[0].id = 0;
    phases[0].total_duration = 10;
    phases[1].id = 1;
    phases[1].total_duration = 100;
    phases[2].id = 2;
    phases[2].total_duration = 50;
    EXPECT_EQ(longestPhase(phases)->id, 1);
    const auto sorted = phasesByDuration(phases);
    EXPECT_EQ(sorted[0]->id, 1);
    EXPECT_EQ(sorted[1]->id, 2);
    EXPECT_EQ(sorted[2]->id, 0);
    EXPECT_EQ(longestPhase({}), nullptr);
}

TEST(PhasesTest, TopOpsRanksByDuration)
{
    OpStatsMap ops;
    ops["fusion"] = OpStats{10, 500};
    ops["MatMul"] = OpStats{5, 300};
    ops["Reshape"] = OpStats{50, 150};
    ops["Copy"] = OpStats{1, 50};

    const auto top2 = topOps(ops, 2);
    ASSERT_EQ(top2.size(), 2u);
    EXPECT_EQ(top2[0].name, "fusion");
    EXPECT_EQ(top2[1].name, "MatMul");
    EXPECT_NEAR(top2[0].share, 0.5, 1e-9);
    EXPECT_EQ(top2[0].count, 10u);

    // Asking for more than exist returns them all.
    EXPECT_EQ(topOps(ops, 10).size(), 4u);
    EXPECT_TRUE(topOps({}, 5).empty());
}

TEST(PhasesTest, TopOpsTieBreaksByName)
{
    OpStatsMap ops;
    ops["b"] = OpStats{1, 100};
    ops["a"] = OpStats{1, 100};
    const auto top = topOps(ops, 2);
    EXPECT_EQ(top[0].name, "a");
    EXPECT_EQ(top[1].name, "b");
}

} // namespace
} // namespace tpupoint

/** @file PhaseDetector registry: builtins, multi-algorithm
 * finalize, and custom-detector interposition. */

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "analyzer/analyzer.hh"
#include "analyzer/detector.hh"
#include "tests/analyzer/synthetic.hh"

namespace tpupoint {
namespace {

using testutil::makeRecord;
using testutil::threePhaseRun;

std::vector<ProfileRecord>
syntheticRecords()
{
    return {makeRecord(threePhaseRun())};
}

TEST(DetectorRegistryTest, BuiltinsAreRegistered)
{
    std::set<PhaseAlgorithm> seen;
    for (const PhaseDetector *detector : registeredDetectors())
        seen.insert(detector->algorithm());
    EXPECT_TRUE(seen.count(PhaseAlgorithm::KMeans));
    EXPECT_TRUE(seen.count(PhaseAlgorithm::Dbscan));
    EXPECT_TRUE(seen.count(PhaseAlgorithm::OnlineLinearScan));
}

TEST(DetectorRegistryTest, LookupMatchesAlgorithmAndName)
{
    for (const PhaseAlgorithm algorithm :
         {PhaseAlgorithm::KMeans, PhaseAlgorithm::Dbscan,
          PhaseAlgorithm::OnlineLinearScan}) {
        const PhaseDetector &detector = detectorFor(algorithm);
        EXPECT_EQ(detector.algorithm(), algorithm);
        EXPECT_STREQ(detector.name(),
                     phaseAlgorithmName(algorithm));
    }
}

TEST(DetectorRegistryTest, FeatureNeedsMatchTheAlgorithms)
{
    // The clustering detectors read the feature matrix; OLS works
    // on the aggregated table alone, so a pure-OLS run skips the
    // feature pass entirely.
    EXPECT_TRUE(
        detectorFor(PhaseAlgorithm::KMeans).needsFeatures());
    EXPECT_TRUE(
        detectorFor(PhaseAlgorithm::Dbscan).needsFeatures());
    EXPECT_FALSE(detectorFor(PhaseAlgorithm::OnlineLinearScan)
                     .needsFeatures());
}

TEST(DetectorTest, MultiAlgorithmRunProducesOneDetectionEach)
{
    AnalyzerOptions options;
    options.algorithm = PhaseAlgorithm::KMeans;
    options.extra_algorithms = {PhaseAlgorithm::Dbscan,
                                PhaseAlgorithm::OnlineLinearScan};
    options.threads = 4;
    const AnalysisResult result =
        TpuPointAnalyzer(options).analyze(syntheticRecords());

    ASSERT_EQ(result.detections.size(), 3u);
    EXPECT_EQ(result.detections[0].algorithm,
              PhaseAlgorithm::KMeans);
    EXPECT_EQ(result.detections[1].algorithm,
              PhaseAlgorithm::Dbscan);
    EXPECT_EQ(result.detections[2].algorithm,
              PhaseAlgorithm::OnlineLinearScan);
    for (const DetectorResult &detection : result.detections)
        EXPECT_FALSE(detection.phases.empty());

    // The flat fields mirror the primary detection.
    EXPECT_EQ(result.algorithm, PhaseAlgorithm::KMeans);
    EXPECT_EQ(result.phases.size(),
              result.detections[0].phases.size());
    EXPECT_DOUBLE_EQ(result.top3_coverage,
                     result.detections[0].top3_coverage);
    EXPECT_EQ(result.kmeans.elbow_k,
              result.detections[0].kmeans.elbow_k);
}

TEST(DetectorTest, ExtrasMatchSingleAlgorithmRuns)
{
    // Each detection of a multi-algorithm run is the same result
    // the algorithm produces when it runs alone.
    AnalyzerOptions multi;
    multi.algorithm = PhaseAlgorithm::OnlineLinearScan;
    multi.extra_algorithms = {PhaseAlgorithm::KMeans};
    const AnalysisResult both =
        TpuPointAnalyzer(multi).analyze(syntheticRecords());
    ASSERT_EQ(both.detections.size(), 2u);

    AnalyzerOptions solo;
    solo.algorithm = PhaseAlgorithm::KMeans;
    const AnalysisResult alone =
        TpuPointAnalyzer(solo).analyze(syntheticRecords());

    const DetectorResult &extra = both.detections[1];
    EXPECT_EQ(extra.kmeans.elbow_k, alone.kmeans.elbow_k);
    EXPECT_EQ(extra.kmeans.ssd_curve, alone.kmeans.ssd_curve);
    EXPECT_EQ(extra.phases.size(), alone.phases.size());
    EXPECT_DOUBLE_EQ(extra.top3_coverage, alone.top3_coverage);
}

TEST(DetectorTest, DuplicateExtrasCollapse)
{
    AnalyzerOptions options;
    options.algorithm = PhaseAlgorithm::OnlineLinearScan;
    options.extra_algorithms = {PhaseAlgorithm::OnlineLinearScan,
                                PhaseAlgorithm::KMeans,
                                PhaseAlgorithm::KMeans};
    const AnalysisResult result =
        TpuPointAnalyzer(options).analyze(syntheticRecords());
    ASSERT_EQ(result.detections.size(), 2u);
    EXPECT_EQ(result.detections[0].algorithm,
              PhaseAlgorithm::OnlineLinearScan);
    EXPECT_EQ(result.detections[1].algorithm,
              PhaseAlgorithm::KMeans);
}

/** Interposable stub standing in for the DBSCAN builtin. */
class StubDetector final : public PhaseDetector
{
  public:
    explicit StubDetector(int *calls) : call_count(calls) {}

    PhaseAlgorithm
    algorithm() const override
    {
        return PhaseAlgorithm::Dbscan;
    }

    const char *name() const override { return "stub"; }

    bool needsFeatures() const override { return false; }

    DetectorResult
    detect(const StepTable &, const FeatureMatrix *,
           const AnalyzerOptions &, ThreadPool *) const override
    {
        ++*call_count;
        DetectorResult out;
        out.algorithm = PhaseAlgorithm::Dbscan;
        return out;
    }

  private:
    int *call_count;
};

TEST(DetectorTest, CustomDetectorReplacesAndRestores)
{
    int calls = 0;
    registerPhaseDetector(std::make_unique<StubDetector>(&calls));
    EXPECT_STREQ(detectorFor(PhaseAlgorithm::Dbscan).name(),
                 "stub");

    AnalyzerOptions options;
    options.algorithm = PhaseAlgorithm::Dbscan;
    const AnalysisResult stubbed =
        TpuPointAnalyzer(options).analyze(syntheticRecords());
    EXPECT_EQ(calls, 1);
    EXPECT_TRUE(stubbed.phases.empty());

    // Restore the builtin so later suites in this binary see the
    // real algorithm again.
    registerPhaseDetector(
        makeBuiltinDetector(PhaseAlgorithm::Dbscan));
    const AnalysisResult real =
        TpuPointAnalyzer(options).analyze(syntheticRecords());
    EXPECT_EQ(calls, 1);
    EXPECT_FALSE(real.phases.empty());
}

} // namespace
} // namespace tpupoint

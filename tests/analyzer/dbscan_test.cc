/** @file DBSCAN clustering and the min-samples sweep. */

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "analyzer/dbscan.hh"
#include "core/rng.hh"

namespace tpupoint {
namespace {

/** Two dense blobs plus a few stragglers. */
std::vector<FeatureVector>
blobsWithNoise()
{
    Rng rng(1);
    std::vector<FeatureVector> points;
    for (int i = 0; i < 50; ++i)
        points.push_back({rng.gaussian(0, 0.5),
                          rng.gaussian(0, 0.5)});
    for (int i = 0; i < 50; ++i)
        points.push_back({rng.gaussian(20, 0.5),
                          rng.gaussian(20, 0.5)});
    // Stragglers far from both blobs.
    points.push_back({100, -100});
    points.push_back({-100, 100});
    points.push_back({60, 60});
    return points;
}

TEST(DbscanTest, FindsBlobsAndMarksNoise)
{
    const auto points = blobsWithNoise();
    const DbscanResult result = dbscanCluster(points, 3.0, 5);
    EXPECT_EQ(result.clusters, 2);
    EXPECT_EQ(result.noise_points, 3u);
    EXPECT_NEAR(result.noise_ratio, 3.0 / 103.0, 1e-9);
    // Both blobs are internally consistent.
    std::set<int> first_blob, second_blob;
    for (int i = 0; i < 50; ++i) {
        first_blob.insert(result.labels[
            static_cast<std::size_t>(i)]);
        second_blob.insert(result.labels[
            static_cast<std::size_t>(50 + i)]);
    }
    EXPECT_EQ(first_blob.size(), 1u);
    EXPECT_EQ(second_blob.size(), 1u);
    EXPECT_NE(*first_blob.begin(), *second_blob.begin());
    // Stragglers carry the noise label.
    EXPECT_EQ(result.labels[100], kDbscanNoise);
}

TEST(DbscanTest, HighMinSamplesTurnsEverythingToNoise)
{
    const auto points = blobsWithNoise();
    const DbscanResult result = dbscanCluster(points, 3.0, 80);
    EXPECT_EQ(result.clusters, 0);
    EXPECT_EQ(result.noise_points, points.size());
    EXPECT_DOUBLE_EQ(result.noise_ratio, 1.0);
}

TEST(DbscanTest, HugeEpsMakesOneCluster)
{
    const auto points = blobsWithNoise();
    const DbscanResult result = dbscanCluster(points, 1e6, 5);
    EXPECT_EQ(result.clusters, 1);
    EXPECT_EQ(result.noise_points, 0u);
}

TEST(DbscanTest, ParameterValidation)
{
    const std::vector<FeatureVector> points{{0}};
    EXPECT_THROW(dbscanCluster(points, 0.0, 5),
                 std::runtime_error);
    EXPECT_THROW(dbscanCluster(points, 1.0, 0),
                 std::runtime_error);
}

TEST(DbscanTest, SuggestEpsCoversClusterScale)
{
    const auto points = blobsWithNoise();
    const double eps = suggestEps(points);
    // Big enough to knit a dense blob, far smaller than the
    // blob separation.
    EXPECT_GT(eps, 0.1);
    EXPECT_LT(eps, 20.0);
}

TEST(DbscanSweepTest, NoiseGrowsWithMinSamples)
{
    const auto points = blobsWithNoise();
    const DbscanSweep sweep = dbscanSweep(points, 3.0, 5, 105, 25);
    ASSERT_EQ(sweep.min_samples_values.size(), 5u);
    // Noise ratio is monotonically non-decreasing in min_samples.
    for (std::size_t i = 1; i < sweep.noise_curve.size(); ++i)
        EXPECT_GE(sweep.noise_curve[i] + 1e-12,
                  sweep.noise_curve[i - 1]);
    // Paper sweep convention: 5..180 step 25.
    EXPECT_EQ(sweep.min_samples_values[0], 5u);
    EXPECT_EQ(sweep.min_samples_values[1], 30u);
    EXPECT_GT(sweep.elbow_min_samples, 0u);
}

TEST(DbscanSweepTest, ZeroStrideRejected)
{
    const std::vector<FeatureVector> points{{0}, {1}};
    EXPECT_THROW(dbscanSweep(points, 1.0, 5, 50, 0),
                 std::runtime_error);
}

TEST(DbscanTest, BorderPointsJoinCluster)
{
    // A line of points each within eps of the next: core points
    // chain, endpoints become border members.
    std::vector<FeatureVector> points;
    for (int i = 0; i < 10; ++i)
        points.push_back({static_cast<double>(i), 0.0});
    const DbscanResult result = dbscanCluster(points, 1.5, 3);
    EXPECT_EQ(result.clusters, 1);
    EXPECT_EQ(result.noise_points, 0u);
}

} // namespace
} // namespace tpupoint

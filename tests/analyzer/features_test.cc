/** @file Feature extraction: dimensions, normalization, PCA cap. */

#include <gtest/gtest.h>

#include "analyzer/features.hh"
#include "tests/analyzer/synthetic.hh"

namespace tpupoint {
namespace {

using testutil::makeRecord;
using testutil::makeStep;

TEST(FeaturesTest, TwoDimensionsPerOp)
{
    auto record = makeRecord({makeStep(0, {"fusion", "MatMul"}),
                              makeStep(1, {"fusion"})});
    const StepTable table = StepTable::fromRecords({record});
    const FeatureMatrix features = FeatureMatrix::build(table);
    // 2 distinct ops x (count, duration) = 4 dims.
    EXPECT_EQ(features.dimensions(), 4u);
    EXPECT_EQ(features.rows().size(), 2u);
    EXPECT_FALSE(features.pcaApplied());
    EXPECT_EQ(features.rawDimensions().size(), 2u);
}

TEST(FeaturesTest, CountsOnlyOption)
{
    auto record = makeRecord({makeStep(0, {"fusion", "MatMul"})});
    const StepTable table = StepTable::fromRecords({record});
    FeatureOptions options;
    options.include_durations = false;
    const FeatureMatrix features =
        FeatureMatrix::build(table, options);
    EXPECT_EQ(features.dimensions(), 2u);
}

TEST(FeaturesTest, MissingOpsAreZero)
{
    auto record = makeRecord({makeStep(0, {"fusion", "MatMul"}),
                              makeStep(1, {"fusion"})});
    const StepTable table = StepTable::fromRecords({record});
    FeatureOptions options;
    options.normalize = false;
    const FeatureMatrix features =
        FeatureMatrix::build(table, options);
    // Step 1 lacks MatMul: some dimension must be exactly zero.
    // (rows() returns by value; bind it before indexing in.)
    const std::vector<FeatureVector> rows = features.rows();
    bool has_zero = false;
    for (const double x : rows[1])
        has_zero |= x == 0.0;
    EXPECT_TRUE(has_zero);
}

TEST(FeaturesTest, NormalizationBoundsDimensions)
{
    auto record = makeRecord({makeStep(0, {"fusion"}),
                              makeStep(1, {"fusion"})});
    const StepTable table = StepTable::fromRecords({record});
    const FeatureMatrix features = FeatureMatrix::build(table);
    for (const auto &row : features.rows())
        for (const double x : row) {
            EXPECT_GE(x, -1.0);
            EXPECT_LE(x, 1.0);
        }
}

TEST(FeaturesTest, PcaCapsDimensions)
{
    // Manufacture steps with many distinct op labels.
    std::vector<StepStats> steps;
    for (StepId s = 0; s < 20; ++s) {
        std::vector<std::string> ops;
        for (int i = 0; i < 40; ++i)
            ops.push_back("op_" + std::to_string(i) + "_" +
                          std::to_string(s % 4));
        steps.push_back(makeStep(s, ops));
    }
    const StepTable table =
        StepTable::fromRecords({makeRecord(steps)});
    FeatureOptions options;
    options.max_dimensions = 10;
    const FeatureMatrix features =
        FeatureMatrix::build(table, options);
    EXPECT_TRUE(features.pcaApplied());
    EXPECT_LE(features.dimensions(), 10u);
    EXPECT_EQ(features.rows().size(), 20u);
}

TEST(FeaturesTest, PaperDefaultCapIsOneHundred)
{
    EXPECT_EQ(FeatureOptions{}.max_dimensions, 100u);
}

TEST(FeaturesTest, EmptyTable)
{
    const StepTable table = StepTable::fromRecords({});
    const FeatureMatrix features = FeatureMatrix::build(table);
    EXPECT_EQ(features.rows().size(), 0u);
    EXPECT_EQ(features.dimensions(), 0u);
}

} // namespace
} // namespace tpupoint

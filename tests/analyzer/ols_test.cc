/** @file Online Linear Scan: Equation 1 and phase aggregation. */

#include <gtest/gtest.h>

#include <stdexcept>

#include "analyzer/ols.hh"
#include "tests/analyzer/synthetic.hh"

namespace tpupoint {
namespace {

using testutil::makeStep;
using testutil::threePhaseRun;

TEST(OlsSimilarityTest, EquationOneExamples)
{
    // Identical sets -> 1.0.
    const auto a = makeStep(0, {"fusion", "MatMul"});
    const auto b = makeStep(1, {"fusion", "MatMul"});
    EXPECT_DOUBLE_EQ(OnlineLinearScan::stepSimilarity(a, b), 1.0);

    // Disjoint sets -> 0.0.
    const auto c = makeStep(2, {"Reshape"});
    EXPECT_DOUBLE_EQ(OnlineLinearScan::stepSimilarity(a, c), 0.0);

    // Subset: intersection over the *smaller* set -> 1.0.
    const auto d = makeStep(3, {"fusion"});
    EXPECT_DOUBLE_EQ(OnlineLinearScan::stepSimilarity(a, d), 1.0);

    // Partial overlap: |{fusion}| / min(2, 2) = 0.5.
    const auto e = makeStep(4, {"fusion", "Reshape"});
    EXPECT_DOUBLE_EQ(OnlineLinearScan::stepSimilarity(a, e), 0.5);
}

TEST(OlsSimilarityTest, EmptySets)
{
    const auto empty1 = makeStep(0, {});
    const auto empty2 = makeStep(1, {});
    const auto full = makeStep(2, {"MatMul"});
    EXPECT_DOUBLE_EQ(
        OnlineLinearScan::stepSimilarity(empty1, empty2), 1.0);
    EXPECT_DOUBLE_EQ(
        OnlineLinearScan::stepSimilarity(empty1, full), 0.0);
}

TEST(OlsSimilarityTest, DevicePrefixSeparatesNamesakes)
{
    // A host ArgMax and a TPU ArgMax are different events.
    const auto host_side = makeStep(0, {}, {"ArgMax"});
    const auto tpu_side = makeStep(1, {"ArgMax"}, {});
    EXPECT_DOUBLE_EQ(
        OnlineLinearScan::stepSimilarity(host_side, tpu_side),
        0.0);
}

TEST(OlsTest, UniformRunIsOnePhase)
{
    OnlineLinearScan ols;
    for (StepId i = 0; i < 50; ++i)
        ols.addStep(makeStep(i, {"fusion", "MatMul"}));
    ols.finish();
    EXPECT_EQ(ols.spans().size(), 1u);
    EXPECT_EQ(ols.phases().size(), 1u);
    EXPECT_EQ(ols.phases()[0].steps, 50u);
}

TEST(OlsTest, ThreePhaseRunFindsThreePhases)
{
    OnlineLinearScan ols(OlsOptions{0.70});
    for (const auto &step : threePhaseRun())
        ols.addStep(step);
    ols.finish();
    // init | train | eval | train -> 4 segments...
    EXPECT_EQ(ols.spans().size(), 4u);
    // ...but the two train segments share a signature: 3 phases.
    EXPECT_EQ(ols.phases().size(), 3u);
}

TEST(OlsTest, RecurringPhaseAggregatesDurations)
{
    OnlineLinearScan ols(OlsOptions{0.70});
    const auto steps = threePhaseRun(10, 4);
    for (const auto &step : steps)
        ols.addStep(step);
    ols.finish();
    // The aggregated train phase owns both segments.
    const OnlineLinearScan::Group *train = nullptr;
    for (const auto &group : ols.phases())
        if (group.spans.size() == 2)
            train = &group;
    ASSERT_NE(train, nullptr);
    EXPECT_EQ(train->steps, 20u);
}

TEST(OlsTest, ThresholdZeroMergesEverything)
{
    OnlineLinearScan ols(OlsOptions{0.0});
    for (const auto &step : threePhaseRun())
        ols.addStep(step);
    ols.finish();
    EXPECT_EQ(ols.phases().size(), 1u);
}

TEST(OlsTest, PhaseCountMonotoneInThreshold)
{
    const auto steps = threePhaseRun();
    std::size_t previous = 0;
    for (const double threshold :
         {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
        OnlineLinearScan ols(OlsOptions{threshold});
        for (const auto &step : steps)
            ols.addStep(step);
        ols.finish();
        EXPECT_GE(ols.phases().size(), previous);
        previous = ols.phases().size();
    }
}

TEST(OlsTest, ConstantMemoryFootprint)
{
    OnlineLinearScan ols;
    for (StepId i = 0; i < 10000; ++i)
        ols.addStep(makeStep(i, {"fusion"}));
    ols.finish();
    // OLS never holds more than the 3-step sliding window.
    EXPECT_LE(ols.peakStepsHeld(), 3u);
}

TEST(OlsTest, UsageErrors)
{
    EXPECT_THROW(OnlineLinearScan(OlsOptions{-0.1}),
                 std::runtime_error);
    EXPECT_THROW(OnlineLinearScan(OlsOptions{1.5}),
                 std::runtime_error);
    OnlineLinearScan ols;
    EXPECT_THROW(ols.phases(), std::logic_error);
    ols.finish();
    EXPECT_THROW(ols.addStep(makeStep(0, {"x"})),
                 std::logic_error);
}

TEST(OlsTest, FinishIsIdempotent)
{
    OnlineLinearScan ols;
    ols.addStep(makeStep(0, {"fusion"}));
    ols.finish();
    ols.finish();
    EXPECT_EQ(ols.phases().size(), 1u);
}

/** Property sweep over thresholds: spans partition the steps. */
class OlsPartitionProperty
    : public ::testing::TestWithParam<double>
{
};

TEST_P(OlsPartitionProperty, SpansCoverAllStepsExactlyOnce)
{
    const auto steps = threePhaseRun();
    OnlineLinearScan ols(OlsOptions{GetParam()});
    for (const auto &step : steps)
        ols.addStep(step);
    ols.finish();
    std::size_t covered = 0;
    StepId previous_last = 0;
    bool first = true;
    for (const auto &span : ols.spans()) {
        EXPECT_LE(span.first_step, span.last_step);
        if (!first) {
            EXPECT_EQ(span.first_step, previous_last + 1);
        }
        previous_last = span.last_step;
        first = false;
        covered += span.steps;
    }
    EXPECT_EQ(covered, steps.size());
    // Group steps also account for every step.
    std::size_t grouped = 0;
    for (const auto &group : ols.phases())
        grouped += group.steps;
    EXPECT_EQ(grouped, steps.size());
}

INSTANTIATE_TEST_SUITE_P(Thresholds, OlsPartitionProperty,
                         ::testing::Values(0.0, 0.3, 0.5, 0.7,
                                           0.9, 1.0));

} // namespace
} // namespace tpupoint

/**
 * @file The incremental phase-detection layer (analyzer/streaming):
 * the determinism contract (snapshots are a pure function of the
 * settled prefix, never of how it was chunked across ingests), the
 * seeded reservoir, rewind handling across attempt stitches,
 * streaming-vs-batch finalize agreement, the batch-fallback adapter
 * for DBSCAN, the registry override hook, and partialResult()'s
 * staleness accounting.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "analyzer/analyzer.hh"
#include "analyzer/detector.hh"
#include "analyzer/streaming.hh"
#include "obs/metrics.hh"
#include "tests/analyzer/synthetic.hh"

namespace tpupoint {
namespace {

AnalyzerOptions
streamingOptions(PhaseAlgorithm algorithm =
                     PhaseAlgorithm::OnlineLinearScan)
{
    AnalyzerOptions opts;
    opts.algorithm = algorithm;
    opts.streaming = true;
    return opts;
}

/** Ingest @p steps into a fresh session, @p chunk steps/record. */
AnalysisSession
ingestChunked(const AnalyzerOptions &opts,
              const std::vector<StepStats> &steps,
              std::size_t chunk)
{
    AnalysisSession session(opts);
    std::uint64_t seq = 0;
    for (std::size_t i = 0; i < steps.size(); i += chunk) {
        const std::size_t end =
            std::min(steps.size(), i + chunk);
        session.ingest(testutil::makeRecord(
            {steps.begin() + static_cast<std::ptrdiff_t>(i),
             steps.begin() + static_cast<std::ptrdiff_t>(end)},
            seq++));
    }
    return session;
}

void
expectSameSnapshot(const StreamingSnapshot &a,
                   const StreamingSnapshot &b)
{
    EXPECT_EQ(a.algorithm, b.algorithm);
    EXPECT_EQ(a.steps_observed, b.steps_observed);
    EXPECT_EQ(a.exact, b.exact);
    EXPECT_EQ(a.sampled, b.sampled);
    EXPECT_DOUBLE_EQ(a.top3_coverage, b.top3_coverage);
    ASSERT_EQ(a.phases.size(), b.phases.size());
    for (std::size_t i = 0; i < a.phases.size(); ++i) {
        EXPECT_EQ(a.phases[i].id, b.phases[i].id);
        EXPECT_EQ(a.phases[i].first_step, b.phases[i].first_step);
        EXPECT_EQ(a.phases[i].last_step, b.phases[i].last_step);
        EXPECT_EQ(a.phases[i].steps, b.phases[i].steps);
        EXPECT_EQ(a.phases[i].duration, b.phases[i].duration);
        EXPECT_EQ(a.phases[i].noise, b.phases[i].noise);
    }
}

void
expectSameDetection(const DetectorResult &a,
                    const DetectorResult &b)
{
    EXPECT_EQ(a.algorithm, b.algorithm);
    EXPECT_DOUBLE_EQ(a.top3_coverage, b.top3_coverage);
    ASSERT_EQ(a.phases.size(), b.phases.size());
    for (std::size_t i = 0; i < a.phases.size(); ++i) {
        EXPECT_EQ(a.phases[i].id, b.phases[i].id);
        EXPECT_EQ(a.phases[i].members, b.phases[i].members);
        EXPECT_EQ(a.phases[i].first_step, b.phases[i].first_step);
        EXPECT_EQ(a.phases[i].last_step, b.phases[i].last_step);
        EXPECT_EQ(a.phases[i].total_duration,
                  b.phases[i].total_duration);
        EXPECT_EQ(a.phases[i].is_noise, b.phases[i].is_noise);
    }
    ASSERT_EQ(a.ols_spans.size(), b.ols_spans.size());
    for (std::size_t i = 0; i < a.ols_spans.size(); ++i) {
        EXPECT_EQ(a.ols_spans[i].first_step,
                  b.ols_spans[i].first_step);
        EXPECT_EQ(a.ols_spans[i].last_step,
                  b.ols_spans[i].last_step);
        EXPECT_EQ(a.ols_spans[i].steps, b.ols_spans[i].steps);
        EXPECT_EQ(a.ols_spans[i].duration,
                  b.ols_spans[i].duration);
    }
    ASSERT_EQ(a.ols_groups.size(), b.ols_groups.size());
    for (std::size_t i = 0; i < a.ols_groups.size(); ++i) {
        EXPECT_EQ(a.ols_groups[i].signature,
                  b.ols_groups[i].signature);
        EXPECT_EQ(a.ols_groups[i].steps, b.ols_groups[i].steps);
        EXPECT_EQ(a.ols_groups[i].duration,
                  b.ols_groups[i].duration);
    }
}

// The determinism contract: the snapshot depends on the settled
// prefix, not on how records chunked it. One step per record, the
// whole run in one record, and a ragged chunking must all land on
// identical snapshots — for the exact OLS stream and the sampled
// k-means reservoir alike.
TEST(StreamingTest, SnapshotsAreArrivalPatternIndependent)
{
    AnalyzerOptions opts = streamingOptions();
    opts.extra_algorithms.push_back(PhaseAlgorithm::KMeans);
    const auto steps = testutil::threePhaseRun();

    const AnalysisSession fine = ingestChunked(opts, steps, 1);
    const AnalysisSession ragged = ingestChunked(opts, steps, 7);
    const AnalysisSession whole =
        ingestChunked(opts, steps, steps.size());

    const PartialResult a = fine.partialResult();
    const PartialResult b = ragged.partialResult();
    const PartialResult c = whole.partialResult();
    EXPECT_EQ(a.steps_aggregated, steps.size());
    EXPECT_EQ(a.steps_aggregated, b.steps_aggregated);
    EXPECT_EQ(a.steps_observed, b.steps_observed);
    EXPECT_EQ(a.steps_observed, c.steps_observed);
    ASSERT_EQ(a.snapshots.size(), 2u);
    ASSERT_EQ(b.snapshots.size(), 2u);
    ASSERT_EQ(c.snapshots.size(), 2u);
    for (std::size_t i = 0; i < a.snapshots.size(); ++i) {
        expectSameSnapshot(a.snapshots[i], b.snapshots[i]);
        expectSameSnapshot(a.snapshots[i], c.snapshots[i]);
    }
    // The primary OLS snapshot is exact and found the structure.
    EXPECT_TRUE(a.snapshots[0].exact);
    EXPECT_FALSE(a.snapshots[0].phases.empty());
    EXPECT_TRUE(a.snapshots[1].sampled);
    EXPECT_FALSE(a.snapshots[1].phases.empty());
}

// The newest row is withheld until a later step settles it, so
// mid-stream the detectors trail aggregation by exactly the open
// row; finalize() flushes it and the staleness reaches zero.
TEST(StreamingTest, PartialResultReportsStaleness)
{
    const auto steps = testutil::threePhaseRun();
    AnalysisSession session(streamingOptions());
    for (std::size_t i = 0; i < steps.size(); ++i) {
        session.ingest(testutil::makeRecord({steps[i]}, i));
        const PartialResult partial = session.partialResult();
        EXPECT_EQ(partial.steps_aggregated, i + 1);
        EXPECT_EQ(partial.steps_observed, i);
        EXPECT_EQ(partial.steps_behind, 1u);
    }
    const AnalysisResult result = session.finalize();
    EXPECT_FALSE(result.phases.empty());
    const PartialResult final_partial = session.partialResult();
    EXPECT_EQ(final_partial.steps_aggregated, steps.size());
    EXPECT_EQ(final_partial.steps_observed, steps.size());
    EXPECT_EQ(final_partial.steps_behind, 0u);
    ASSERT_EQ(final_partial.snapshots.size(), 1u);
    // Post-finalize the exact stream reports the batch phases.
    EXPECT_EQ(final_partial.snapshots[0].phases.size(),
              result.phases.size());
}

// Without opts.streaming, ingest stays aggregation-only: no
// snapshots, counters still filled, finalize unchanged.
TEST(StreamingTest, NonStreamingSessionsHaveNoSnapshots)
{
    AnalysisSession session{AnalyzerOptions{}};
    const auto steps = testutil::threePhaseRun();
    session.ingest(testutil::makeRecord(steps));
    const PartialResult partial = session.partialResult();
    EXPECT_EQ(partial.steps_aggregated, steps.size());
    EXPECT_EQ(partial.steps_observed, 0u);
    EXPECT_TRUE(partial.snapshots.empty());
}

// Streaming mode must not change what finalize() returns — for
// OLS the completed stream *is* the batch scan; k-means and DBSCAN
// delegate to their batch detectors.
TEST(StreamingTest, StreamingFinalizeMatchesBatch)
{
    const auto steps = testutil::threePhaseRun();
    for (const PhaseAlgorithm algorithm :
         {PhaseAlgorithm::OnlineLinearScan, PhaseAlgorithm::KMeans,
          PhaseAlgorithm::Dbscan}) {
        AnalyzerOptions batch_opts;
        batch_opts.algorithm = algorithm;
        AnalyzerOptions stream_opts = batch_opts;
        stream_opts.streaming = true;

        AnalysisSession batch =
            ingestChunked(batch_opts, steps, 5);
        AnalysisSession streamed =
            ingestChunked(stream_opts, steps, 5);
        const AnalysisResult expected = batch.finalize();
        const AnalysisResult actual = streamed.finalize();
        ASSERT_EQ(actual.detections.size(),
                  expected.detections.size());
        expectSameDetection(actual.detections[0],
                            expected.detections[0]);
        EXPECT_DOUBLE_EQ(actual.top3_coverage,
                         expected.top3_coverage);
    }
}

// An attempt stitch rewrites history: the restart's records fold
// into rows the detectors already consumed, so the streams reset
// and re-observe — and the finished analysis still matches the
// batch answer over the same stitched record sequence.
TEST(StreamingTest, AttemptStitchRewindsAndStillMatchesBatch)
{
    const auto steps = testutil::threePhaseRun();
    ASSERT_GT(steps.size(), 30u);
    std::vector<ProfileRecord> records;
    std::uint64_t seq = 0;
    // Attempt 0 reaches step 29...
    for (std::size_t i = 0; i < 30; ++i)
        records.push_back(
            testutil::makeRecord({steps[i]}, seq++));
    // ...dies, and the restart resumes from its checkpoint at
    // step 20: steps 20..29 are replayed.
    ProfileRecord boundary;
    boundary.attempt = 1;
    boundary.attempt_boundary = true;
    boundary.preempted_at_step = 29;
    boundary.resume_step = 20;
    boundary.window_begin = steps[29].end;
    boundary.window_end = steps[29].end;
    records.push_back(boundary);
    for (std::size_t i = 20; i < steps.size(); ++i) {
        ProfileRecord record =
            testutil::makeRecord({steps[i]}, seq++);
        record.attempt = 1;
        records.push_back(record);
    }

    AnalyzerOptions stream_opts = streamingOptions();
    AnalysisSession streamed(stream_opts);
    for (const ProfileRecord &record : records) {
        streamed.ingest(record);
        // Staleness never underflows across the rewind.
        const PartialResult partial = streamed.partialResult();
        EXPECT_GE(partial.steps_aggregated,
                  partial.steps_observed);
    }

    AnalysisSession batch{AnalyzerOptions{}};
    for (const ProfileRecord &record : records)
        batch.ingest(record);

    const AnalysisResult actual = streamed.finalize();
    const AnalysisResult expected = batch.finalize();
    EXPECT_EQ(actual.attempts, 2u);
    expectSameDetection(actual.detections[0],
                        expected.detections[0]);
}

// DBSCAN's streaming stand-in: quiet snapshots (never a wrong
// answer), full batch fidelity at finalize.
TEST(StreamingTest, DbscanFallbackAdapterSnapshotsEmpty)
{
    const auto steps = testutil::threePhaseRun();
    AnalysisSession session = ingestChunked(
        streamingOptions(PhaseAlgorithm::Dbscan), steps, 4);
    const PartialResult partial = session.partialResult();
    ASSERT_EQ(partial.snapshots.size(), 1u);
    EXPECT_EQ(partial.snapshots[0].algorithm,
              PhaseAlgorithm::Dbscan);
    EXPECT_TRUE(partial.snapshots[0].phases.empty());
    EXPECT_FALSE(partial.snapshots[0].exact);
    EXPECT_EQ(partial.snapshots[0].steps_observed,
              steps.size() - 1);
    const AnalysisResult result = session.finalize();
    EXPECT_FALSE(result.phases.empty());
}

// The reservoir is a pure function of (seed, prefix): a different
// seed is allowed to sample differently, but the same seed must
// reproduce the same snapshot even when the reservoir is far
// smaller than the trace.
TEST(StreamingTest, ReservoirSamplingIsSeedDeterministic)
{
    AnalyzerOptions opts = streamingOptions(PhaseAlgorithm::KMeans);
    opts.streaming_reservoir = 16; // Much smaller than the run.
    const auto steps = testutil::threePhaseRun();

    const AnalysisSession one = ingestChunked(opts, steps, 3);
    const AnalysisSession two = ingestChunked(opts, steps, 11);
    const PartialResult a = one.partialResult();
    const PartialResult b = two.partialResult();
    ASSERT_EQ(a.snapshots.size(), 1u);
    ASSERT_EQ(b.snapshots.size(), 1u);
    EXPECT_TRUE(a.snapshots[0].sampled);
    EXPECT_FALSE(a.snapshots[0].phases.empty());
    expectSameSnapshot(a.snapshots[0], b.snapshots[0]);
}

// Ingest in streaming mode charges the per-detector step-cost
// histogram observability hooks.
TEST(StreamingTest, StreamStepHistogramRecordsFeeds)
{
    obs::MetricsRegistry::global().reset();
    const auto steps = testutil::threePhaseRun();
    AnalysisSession session =
        ingestChunked(streamingOptions(), steps, 1);
    session.finalize();
    const obs::MetricsSnapshot snapshot =
        obs::MetricsRegistry::global().snapshot();
    const auto it = snapshot.histograms.find(
        "analyzer.stream_step_us{detector=OLS}");
    ASSERT_NE(it, snapshot.histograms.end());
    EXPECT_GT(it->second.count, 0u);
}

/** A registry-override detector that stamps a marker phase. */
class MarkerDetector final : public StreamingDetector
{
  public:
    PhaseAlgorithm
    algorithm() const override
    {
        return PhaseAlgorithm::KMeans;
    }

    const char *name() const override { return "marker"; }

    void
    observeSteps(const std::vector<StepDelta> &deltas) override
    {
        observed += deltas.size();
    }

    void reset() override { observed = 0; }

    StreamingSnapshot
    snapshot() const override
    {
        StreamingSnapshot out;
        out.algorithm = PhaseAlgorithm::KMeans;
        out.steps_observed = observed;
        StreamingPhase marker;
        marker.id = 424242;
        marker.steps = observed;
        out.phases.push_back(marker);
        return out;
    }

    DetectorResult
    finalize(const StepTable &table, const FeatureMatrix *features,
             const AnalyzerOptions &options,
             ThreadPool *pool) override
    {
        return detectorFor(PhaseAlgorithm::KMeans)
            .detect(table, features, options, pool);
    }

  private:
    std::uint64_t observed = 0;
};

// registerStreamingDetector interposes on sessions created while
// the override is live; a null factory restores the builtin.
TEST(StreamingTest, RegistryOverrideInterposesAndRestores)
{
    registerStreamingDetector(
        PhaseAlgorithm::KMeans, [](const AnalyzerOptions &) {
            return std::make_unique<MarkerDetector>();
        });
    const auto steps = testutil::threePhaseRun();
    {
        AnalysisSession session = ingestChunked(
            streamingOptions(PhaseAlgorithm::KMeans), steps, 8);
        const PartialResult partial = session.partialResult();
        ASSERT_EQ(partial.snapshots.size(), 1u);
        ASSERT_EQ(partial.snapshots[0].phases.size(), 1u);
        EXPECT_EQ(partial.snapshots[0].phases[0].id, 424242);
        // finalize still routes through the batch detector.
        const AnalysisResult result = session.finalize();
        EXPECT_FALSE(result.phases.empty());
    }
    registerStreamingDetector(PhaseAlgorithm::KMeans, nullptr);
    AnalysisSession session = ingestChunked(
        streamingOptions(PhaseAlgorithm::KMeans), steps, 8);
    const PartialResult partial = session.partialResult();
    ASSERT_EQ(partial.snapshots.size(), 1u);
    EXPECT_TRUE(partial.snapshots[0].sampled);
}

} // namespace
} // namespace tpupoint

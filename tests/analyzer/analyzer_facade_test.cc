/** @file TpuPointAnalyzer facade across all three algorithms. */

#include <gtest/gtest.h>

#include "analyzer/analyzer.hh"
#include "tests/analyzer/synthetic.hh"

namespace tpupoint {
namespace {

using testutil::makeRecord;
using testutil::threePhaseRun;

std::vector<ProfileRecord>
syntheticRecords()
{
    return {makeRecord(threePhaseRun())};
}

TEST(AnalyzerTest, OlsFindsThreePhasesWithFullCoverage)
{
    AnalyzerOptions options;
    options.algorithm = PhaseAlgorithm::OnlineLinearScan;
    const AnalysisResult result =
        TpuPointAnalyzer(options).analyze(syntheticRecords());
    EXPECT_EQ(result.algorithm,
              PhaseAlgorithm::OnlineLinearScan);
    EXPECT_EQ(result.phases.size(), 3u);
    EXPECT_NEAR(result.top3_coverage, 1.0, 1e-9);
    EXPECT_FALSE(result.ols_groups.empty());
    ASSERT_NE(result.longest(), nullptr);
    // The train phase dominates.
    EXPECT_TRUE(result.longest()->tpu_ops.count("fusion"));
}

TEST(AnalyzerTest, KMeansSweepSelectsSmallK)
{
    AnalyzerOptions options;
    options.algorithm = PhaseAlgorithm::KMeans;
    const AnalysisResult result =
        TpuPointAnalyzer(options).analyze(syntheticRecords());
    EXPECT_GE(result.kmeans.elbow_k, 2);
    EXPECT_LE(result.kmeans.elbow_k, 6);
    EXPECT_EQ(result.kmeans.k_values.size(), 15u);
    EXPECT_GE(result.top3_coverage, 0.95);
}

TEST(AnalyzerTest, KMeansFixedKIsHonored)
{
    AnalyzerOptions options;
    options.algorithm = PhaseAlgorithm::KMeans;
    options.kmeans_fixed_k = 5;
    const AnalysisResult result =
        TpuPointAnalyzer(options).analyze(syntheticRecords());
    EXPECT_EQ(result.kmeans.best.k, 5);
    EXPECT_LE(result.phases.size(), 5u);
}

TEST(AnalyzerTest, DbscanSweepAndFixedMinSamples)
{
    AnalyzerOptions sweep;
    sweep.algorithm = PhaseAlgorithm::Dbscan;
    const AnalysisResult swept =
        TpuPointAnalyzer(sweep).analyze(syntheticRecords());
    EXPECT_FALSE(swept.dbscan.noise_curve.empty());
    EXPECT_GT(swept.phases.size(), 0u);

    AnalyzerOptions fixed;
    fixed.algorithm = PhaseAlgorithm::Dbscan;
    fixed.dbscan_fixed_min_samples = 30;
    const AnalysisResult result =
        TpuPointAnalyzer(fixed).analyze(syntheticRecords());
    EXPECT_EQ(result.dbscan.best.min_samples, 30u);
    EXPECT_GE(result.phases.size(), 1u);

    // An extreme min-samples turns every step into noise — which
    // the paper then treats as a cluster of its own.
    AnalyzerOptions extreme;
    extreme.algorithm = PhaseAlgorithm::Dbscan;
    extreme.dbscan_fixed_min_samples = 200;
    const AnalysisResult noisy =
        TpuPointAnalyzer(extreme).analyze(syntheticRecords());
    bool has_noise_phase = false;
    for (const auto &phase : noisy.phases)
        has_noise_phase |= phase.is_noise;
    EXPECT_TRUE(has_noise_phase);
}

TEST(AnalyzerTest, ChecksAssociateNearestCheckpoint)
{
    std::vector<CheckpointInfo> checkpoints;
    CheckpointInfo a;
    a.step = 10;
    a.saved_at = 1000;
    CheckpointInfo b;
    b.step = 60;
    b.saved_at = 2000;
    checkpoints.push_back(a);
    checkpoints.push_back(b);

    AnalyzerOptions options;
    const AnalysisResult result = TpuPointAnalyzer(options)
        .analyze(syntheticRecords(), checkpoints);
    ASSERT_EQ(result.checkpoints.size(), result.phases.size());
    for (const auto &assoc : result.checkpoints) {
        EXPECT_TRUE(assoc.checkpoint_step == 10 ||
                    assoc.checkpoint_step == 60);
    }
    // A phase containing step 60 associates at distance zero.
    bool zero_distance = false;
    for (const auto &assoc : result.checkpoints)
        zero_distance |= assoc.distance == 0;
    EXPECT_TRUE(zero_distance);
}

TEST(AnalyzerTest, StitchesAttemptBoundariesWithoutDoubleCount)
{
    // Attempt 0 runs steps 0..30 and is preempted; the restart
    // resumes from a step-20 checkpoint and re-runs 21..30 before
    // continuing to 50. The uninterrupted equivalent is the same
    // run without the boundary.
    const std::vector<StepStats> all = threePhaseRun(21, 8);
    ASSERT_EQ(all.size(), 51u);

    std::vector<ProfileRecord> stitched;
    stitched.push_back(makeRecord(
        {all.begin(), all.begin() + 31}, 0));
    ProfileRecord boundary;
    boundary.attempt = 1;
    boundary.attempt_boundary = true;
    boundary.preempted_at_step = 30;
    boundary.resume_step = 20;
    stitched.push_back(boundary);
    ProfileRecord rerun =
        makeRecord({all.begin() + 21, all.end()}, 1);
    rerun.attempt = 1;
    stitched.push_back(rerun);

    const AnalysisResult a =
        TpuPointAnalyzer().analyze(stitched);
    const AnalysisResult b = TpuPointAnalyzer().analyze(
        {makeRecord(all)});

    EXPECT_EQ(a.attempts, 2u);
    EXPECT_EQ(a.replayed_steps, 10u); // steps 21..30
    EXPECT_EQ(a.discarded_steps, 10u); // dropped rows 21..30
    EXPECT_GT(a.discarded_time, 0);
    std::uint64_t flagged = 0;
    for (const auto &row : a.table.steps())
        flagged += row.replayed ? 1 : 0;
    EXPECT_EQ(flagged, 10u);

    // Identical aggregates to the uninterrupted run: nothing
    // counted twice, nothing lost.
    ASSERT_EQ(a.table.size(), b.table.size());
    EXPECT_EQ(a.table.totalDuration(), b.table.totalDuration());
    for (std::size_t i = 0; i < a.table.size(); ++i) {
        EXPECT_EQ(a.table.at(i).step, b.table.at(i).step);
        EXPECT_EQ(a.table.at(i).tpu_busy, b.table.at(i).tpu_busy);
    }
    EXPECT_EQ(b.attempts, 1u);
    EXPECT_EQ(b.replayed_steps, 0u);
}

TEST(AnalyzerTest, EmptyRecordsYieldEmptyResult)
{
    const AnalysisResult result =
        TpuPointAnalyzer().analyze({});
    EXPECT_EQ(result.phases.size(), 0u);
    EXPECT_EQ(result.table.size(), 0u);
    EXPECT_EQ(result.longest(), nullptr);
}

TEST(AnalyzerTest, AlgorithmNames)
{
    EXPECT_STREQ(phaseAlgorithmName(PhaseAlgorithm::KMeans),
                 "k-means");
    EXPECT_STREQ(phaseAlgorithmName(PhaseAlgorithm::Dbscan),
                 "DBSCAN");
    EXPECT_STREQ(
        phaseAlgorithmName(PhaseAlgorithm::OnlineLinearScan),
        "OLS");
}

/** Property: all algorithms cover every step with their phases. */
class AnalyzerCoverageProperty
    : public ::testing::TestWithParam<PhaseAlgorithm>
{
};

TEST_P(AnalyzerCoverageProperty, PhasesPartitionSteps)
{
    AnalyzerOptions options;
    options.algorithm = GetParam();
    const AnalysisResult result =
        TpuPointAnalyzer(options).analyze(syntheticRecords());
    std::size_t covered = 0;
    for (const auto &phase : result.phases)
        covered += phase.size();
    EXPECT_EQ(covered, result.table.size());
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, AnalyzerCoverageProperty,
    ::testing::Values(PhaseAlgorithm::KMeans,
                      PhaseAlgorithm::Dbscan,
                      PhaseAlgorithm::OnlineLinearScan));

} // namespace
} // namespace tpupoint

/** @file Cross-run analysis comparison (the Table II view). */

#include <gtest/gtest.h>

#include <sstream>

#include "analyzer/compare.hh"
#include "tests/analyzer/synthetic.hh"

namespace tpupoint {
namespace {

using testutil::makeRecord;
using testutil::makeStep;

AnalysisResult
analyzeSteps(std::vector<StepStats> steps)
{
    return TpuPointAnalyzer().analyze(
        {makeRecord(std::move(steps))});
}

TEST(CompareTest, SharesAndDeltas)
{
    std::vector<StepStats> run_a, run_b;
    for (StepId i = 0; i < 20; ++i) {
        run_a.push_back(makeStep(i, {"fusion", "MatMul"},
                                 {"OutfeedDequeueTuple"}));
        // Run B spends relatively more on Reshape (fusion still
        // tops both, as in Table II).
        run_b.push_back(makeStep(i,
                                 {"fusion", "Reshape", "MatMul"},
                                 {"OutfeedDequeueTuple"}));
    }
    const AnalysisComparison comparison = compareAnalyses(
        analyzeSteps(run_a), analyzeSteps(run_b), "TPUv2",
        "TPUv3");

    EXPECT_EQ(comparison.label_a, "TPUv2");
    EXPECT_TRUE(comparison.same_top_tpu_op); // fusion tops both

    // Reshape exists only in run B.
    const OpShareDelta *reshape = nullptr;
    for (const auto &delta : comparison.tpu_ops)
        if (delta.name == "Reshape")
            reshape = &delta;
    ASSERT_NE(reshape, nullptr);
    EXPECT_EQ(reshape->share_a, 0.0);
    EXPECT_GT(reshape->share_b, 0.0);
    EXPECT_GT(reshape->delta(), 0.0);
}

TEST(CompareTest, MoversFilterByThreshold)
{
    std::vector<StepStats> run_a, run_b;
    for (StepId i = 0; i < 10; ++i) {
        run_a.push_back(makeStep(i, {"fusion"}));
        run_b.push_back(makeStep(i, {"Infeed", "fusion"}));
    }
    const AnalysisComparison comparison = compareAnalyses(
        analyzeSteps(run_a), analyzeSteps(run_b));
    // Infeed went from 0% to a majority share (and fusion shrank
    // by the same amount) — both are movers.
    const auto movers = comparison.movers(0.25);
    ASSERT_GE(movers.size(), 2u);
    bool infeed_moved = false;
    for (const auto &delta : movers) {
        if (delta.name == "Infeed") {
            infeed_moved = true;
            EXPECT_GT(delta.delta(), 0.25);
        }
    }
    EXPECT_TRUE(infeed_moved);
    // An absurd threshold filters everything.
    EXPECT_TRUE(comparison.movers(2.0).empty());
}

TEST(CompareTest, EmptyAnalysesAreSafe)
{
    AnalysisResult empty_a, empty_b;
    const AnalysisComparison comparison =
        compareAnalyses(empty_a, empty_b);
    EXPECT_FALSE(comparison.same_top_tpu_op);
    EXPECT_TRUE(comparison.tpu_ops.empty());
    std::ostringstream out;
    writeComparison(comparison, out);
    EXPECT_FALSE(out.str().empty());
}

TEST(CompareTest, ReportMentionsOperatorsAndLabels)
{
    std::vector<StepStats> run_a, run_b;
    for (StepId i = 0; i < 10; ++i) {
        run_a.push_back(makeStep(i, {"fusion", "MatMul"}));
        run_b.push_back(makeStep(i, {"fusion", "Reshape"}));
    }
    const AnalysisComparison comparison = compareAnalyses(
        analyzeSteps(run_a), analyzeSteps(run_b), "v2", "v3");
    std::ostringstream out;
    writeComparison(comparison, out);
    const std::string report = out.str();
    EXPECT_NE(report.find("v2"), std::string::npos);
    EXPECT_NE(report.find("v3"), std::string::npos);
    EXPECT_NE(report.find("fusion"), std::string::npos);
    EXPECT_NE(report.find("Reshape"), std::string::npos);
}

} // namespace
} // namespace tpupoint

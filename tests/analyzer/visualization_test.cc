/** @file Analyzer output files: chrome trace, CSV, JSON summary. */

#include <gtest/gtest.h>

#include <sstream>

#include "analyzer/visualization.hh"
#include "tests/analyzer/synthetic.hh"

namespace tpupoint {
namespace {

using testutil::makeRecord;
using testutil::threePhaseRun;

AnalysisResult
analyzed(std::vector<ProfileRecord> &records_out)
{
    records_out = {makeRecord(threePhaseRun())};
    AnalyzerOptions options;
    return TpuPointAnalyzer(options).analyze(records_out);
}

TEST(VisualizationTest, ChromeTraceHasBothTracks)
{
    std::vector<ProfileRecord> records;
    const AnalysisResult analysis = analyzed(records);
    std::ostringstream out;
    writeChromeTrace(analysis, records, out);
    const std::string json = out.str();

    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("Profile Breakdown"), std::string::npos);
    EXPECT_NE(json.find("Phase Breakdown"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("displayTimeUnit"), std::string::npos);
    // One slice per phase.
    std::size_t phase_slices = 0, pos = 0;
    while ((pos = json.find("\"phase ", pos)) !=
           std::string::npos) {
        ++phase_slices;
        ++pos;
    }
    EXPECT_EQ(phase_slices, analysis.phases.size());
}

TEST(VisualizationTest, CsvHasOneRowPerPhase)
{
    std::vector<ProfileRecord> records;
    const AnalysisResult analysis = analyzed(records);
    std::ostringstream out;
    writePhaseCsv(analysis, out);
    const std::string csv = out.str();

    // Header + phases rows.
    std::size_t lines = 0, pos = 0;
    while ((pos = csv.find("\r\n", pos)) != std::string::npos) {
        ++lines;
        pos += 2;
    }
    EXPECT_EQ(lines, analysis.phases.size() + 1);
    EXPECT_NE(csv.find("top_tpu_ops"), std::string::npos);
    EXPECT_NE(csv.find("fusion"), std::string::npos);
}

TEST(VisualizationTest, JsonSummaryCarriesTopOps)
{
    std::vector<ProfileRecord> records;
    const AnalysisResult analysis = analyzed(records);
    std::ostringstream out;
    writeAnalysisJson(analysis, out);
    const std::string json = out.str();
    EXPECT_NE(json.find("\"algorithm\": \"OLS\""),
              std::string::npos);
    EXPECT_NE(json.find("\"top3_coverage\""), std::string::npos);
    EXPECT_NE(json.find("\"top_tpu_ops\""), std::string::npos);
    EXPECT_NE(json.find("\"top_host_ops\""), std::string::npos);
    EXPECT_NE(json.find("\"checkpoints\""), std::string::npos);
}

TEST(VisualizationTest, EmptyAnalysisStillWellFormed)
{
    AnalysisResult empty;
    std::ostringstream trace, csv, json;
    writeChromeTrace(empty, std::vector<ProfileWindowInfo>{},
                     trace);
    writePhaseCsv(empty, csv);
    writeAnalysisJson(empty, json);
    EXPECT_NE(trace.str().find("traceEvents"), std::string::npos);
    EXPECT_FALSE(csv.str().empty());
    EXPECT_FALSE(json.str().empty());
}

} // namespace
} // namespace tpupoint

/** @file PCA via power iteration. */

#include <gtest/gtest.h>

#include <cmath>

#include "analyzer/pca.hh"

namespace tpupoint {
namespace {

TEST(PcaTest, RecoversDominantDirection)
{
    // Points spread along (1, 1)/sqrt(2) with tiny noise.
    Rng rng(1);
    std::vector<FeatureVector> points;
    for (int i = 0; i < 500; ++i) {
        const double t = rng.gaussian(0, 10);
        const double n = rng.gaussian(0, 0.1);
        points.push_back({t + n, t - n});
    }
    Rng pca_rng(2);
    const PcaModel model = fitPca(points, 1, pca_rng);
    ASSERT_EQ(model.components.size(), 1u);
    const FeatureVector &c = model.components[0];
    // Direction (up to sign) is (1, 1)/sqrt(2).
    EXPECT_NEAR(std::abs(c[0]), std::sqrt(0.5), 0.02);
    EXPECT_NEAR(std::abs(c[1]), std::sqrt(0.5), 0.02);
    EXPECT_GT(model.eigenvalues[0], 50.0);
}

TEST(PcaTest, ComponentsAreOrthonormal)
{
    Rng rng(3);
    std::vector<FeatureVector> points;
    for (int i = 0; i < 300; ++i) {
        points.push_back({rng.gaussian(0, 5), rng.gaussian(0, 2),
                          rng.gaussian(0, 1)});
    }
    Rng pca_rng(4);
    const PcaModel model = fitPca(points, 3, pca_rng);
    ASSERT_EQ(model.components.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_NEAR(l2Norm(model.components[i]), 1.0, 1e-6);
        for (std::size_t j = i + 1; j < 3; ++j) {
            EXPECT_NEAR(dot(model.components[i],
                            model.components[j]),
                        0.0, 1e-3);
        }
    }
    // Eigenvalues descend.
    EXPECT_GE(model.eigenvalues[0], model.eigenvalues[1]);
    EXPECT_GE(model.eigenvalues[1], model.eigenvalues[2]);
}

TEST(PcaTest, ProjectionReducesDimension)
{
    Rng rng(5);
    std::vector<FeatureVector> points;
    for (int i = 0; i < 100; ++i) {
        FeatureVector p(10);
        for (auto &x : p)
            x = rng.nextDouble();
        points.push_back(std::move(p));
    }
    Rng pca_rng(6);
    const PcaModel model = fitPca(points, 4, pca_rng);
    const auto projected = model.projectAll(points);
    ASSERT_EQ(projected.size(), points.size());
    for (const auto &p : projected)
        EXPECT_EQ(p.size(), model.components.size());
}

TEST(PcaTest, RequestedComponentsCappedByDimension)
{
    std::vector<FeatureVector> points{{1, 2}, {3, 4}, {5, 7}};
    Rng rng(7);
    const PcaModel model = fitPca(points, 10, rng);
    EXPECT_LE(model.components.size(), 2u);
}

TEST(PcaTest, DegenerateDataStopsEarly)
{
    // All identical points: zero variance everywhere.
    std::vector<FeatureVector> points(10, FeatureVector{1, 2, 3});
    Rng rng(8);
    const PcaModel model = fitPca(points, 3, rng);
    EXPECT_TRUE(model.components.empty());
}

TEST(PcaTest, EmptyDataRejected)
{
    Rng rng(9);
    EXPECT_THROW(fitPca(std::vector<FeatureVector>{}, 2, rng), std::runtime_error);
}

} // namespace
} // namespace tpupoint

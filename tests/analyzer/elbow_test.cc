/** @file Elbow-method heuristic. */

#include <gtest/gtest.h>

#include <stdexcept>

#include "analyzer/elbow.hh"

namespace tpupoint {
namespace {

TEST(ElbowTest, FindsSharpKnee)
{
    // SSD-style curve with an obvious knee at x = 4.
    const std::vector<double> x{1, 2, 3, 4, 5, 6, 7, 8};
    const std::vector<double> y{100, 60, 30, 10, 9, 8, 7, 6};
    EXPECT_EQ(elbowIndex(x, y), 3u);
}

TEST(ElbowTest, LinearCurveHasNoStrongElbow)
{
    const std::vector<double> x{1, 2, 3, 4, 5};
    const std::vector<double> y{50, 40, 30, 20, 10};
    // Any interior point is equally (un)distinguished; the result
    // must at least be an interior index.
    const std::size_t idx = elbowIndex(x, y);
    EXPECT_GE(idx, 1u);
    EXPECT_LE(idx, 3u);
}

TEST(ElbowTest, TinyCurvesReturnZero)
{
    EXPECT_EQ(elbowIndex({}, {}), 0u);
    EXPECT_EQ(elbowIndex({1}, {5}), 0u);
    EXPECT_EQ(elbowIndex({1, 2}, {5, 4}), 0u);
}

TEST(ElbowTest, FlatCurveReturnsInterior)
{
    const std::vector<double> x{1, 2, 3, 4};
    const std::vector<double> y{5, 5, 5, 5};
    const std::size_t idx = elbowIndex(x, y);
    EXPECT_GE(idx, 1u);
    EXPECT_LE(idx, 2u);
}

TEST(ElbowTest, MismatchedArraysPanic)
{
    EXPECT_THROW(elbowIndex({1, 2}, {1}), std::logic_error);
}

TEST(ElbowTest, NoiseCurveKneeForDbscanShape)
{
    // Noise-ratio style: rises slowly then jumps.
    const std::vector<double> x{5, 30, 55, 80, 105, 130, 155, 180};
    const std::vector<double> y{0.02, 0.03, 0.05, 0.08,
                                0.35,  0.6,  0.8,  0.95};
    const std::size_t idx = elbowIndex(x, y);
    // The knee sits where the noise starts exploding.
    EXPECT_GE(idx, 2u);
    EXPECT_LE(idx, 4u);
}

} // namespace
} // namespace tpupoint

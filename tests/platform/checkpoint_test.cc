/** @file Checkpoint manager registry and nearest-checkpoint query. */

#include <gtest/gtest.h>

#include "host/checkpoint.hh"
#include "profiler/collector.hh"

namespace tpupoint {
namespace {

struct Rig
{
    Simulator sim;
    StorageBucket storage{sim, StorageSpec{}};
    InMemoryTrace trace;
    CheckpointManager ckpt{sim, storage, 100 * kMiB, &trace};
};

TEST(CheckpointTest, SaveRegistersCheckpointAndEmitsSaveV2)
{
    Rig rig;
    bool done = false;
    rig.ckpt.save(100, [&] { done = true; });
    rig.sim.run();
    EXPECT_TRUE(done);
    ASSERT_EQ(rig.ckpt.checkpoints().size(), 1u);
    EXPECT_EQ(rig.ckpt.checkpoints()[0].step, 100u);
    EXPECT_EQ(rig.ckpt.checkpoints()[0].bytes, 100 * kMiB);
    EXPECT_GT(rig.ckpt.checkpoints()[0].saved_at, 0);
    ASSERT_EQ(rig.trace.events().size(), 1u);
    EXPECT_STREQ(rig.trace.events()[0].type, "SaveV2");
    EXPECT_EQ(rig.storage.bytesWritten(), 100 * kMiB);
}

TEST(CheckpointTest, RestoreEmitsRestoreV2AndReadsStorage)
{
    Rig rig;
    bool done = false;
    rig.ckpt.restore(0, [&] { done = true; });
    rig.sim.run();
    EXPECT_TRUE(done);
    ASSERT_EQ(rig.trace.events().size(), 1u);
    EXPECT_STREQ(rig.trace.events()[0].type, "RestoreV2");
    EXPECT_EQ(rig.storage.bytesRead(), 100 * kMiB);
    // Restoring registers nothing.
    EXPECT_TRUE(rig.ckpt.checkpoints().empty());
}

TEST(CheckpointTest, NearestPicksSmallestDistance)
{
    Rig rig;
    rig.ckpt.save(100, nullptr);
    rig.ckpt.save(200, nullptr);
    rig.ckpt.save(300, nullptr);
    rig.sim.run();

    EXPECT_EQ(rig.ckpt.nearest(90)->step, 100u);
    EXPECT_EQ(rig.ckpt.nearest(149)->step, 100u);
    EXPECT_EQ(rig.ckpt.nearest(151)->step, 200u);
    EXPECT_EQ(rig.ckpt.nearest(1000)->step, 300u);
    EXPECT_EQ(rig.ckpt.nearest(200)->step, 200u);
}

TEST(CheckpointTest, NearestTiesBreakTowardTheEarlierStep)
{
    // Equidistant checkpoints resolve to the earlier one: resuming
    // earlier replays work, resuming later would skip it.
    Rig rig;
    rig.ckpt.save(100, nullptr);
    rig.ckpt.save(200, nullptr);
    rig.sim.run();
    EXPECT_EQ(rig.ckpt.nearest(150)->step, 100u);
}

TEST(CheckpointTest, NearestOnEmptyIsNull)
{
    Rig rig;
    EXPECT_EQ(rig.ckpt.nearest(5), nullptr);
}

} // namespace
} // namespace tpupoint

/** @file Infeed driver and outfeed drain. */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "host/infeed.hh"
#include "profiler/collector.hh"

namespace tpupoint {
namespace {

TEST(InfeedDriverTest, ForwardsBatchesAcrossPcie)
{
    Simulator sim;
    BoundedQueue<HostBatch> prefetch(sim, 4);
    InfeedQueue device(sim, 2);
    InMemoryTrace trace;
    InfeedDriver driver(sim, prefetch, device, 16e9, &trace);
    driver.start();

    for (StepId s = 0; s < 3; ++s) {
        HostBatch batch;
        batch.step = s;
        batch.bytes = 16'000'000; // 1 ms at 16 GB/s
        prefetch.push(batch, nullptr);
    }
    std::vector<DeviceBatch> got;
    std::function<void()> drain = [&]() {
        device.pop([&](DeviceBatch b) {
            got.push_back(b);
            if (got.size() < 3)
                drain();
        });
    };
    drain();
    sim.run();

    ASSERT_EQ(got.size(), 3u);
    EXPECT_EQ(driver.transferred(), 3u);
    EXPECT_EQ(got[0].step, 0u);
    EXPECT_EQ(got[2].step, 2u);
    // Link held for ~1 ms per batch.
    EXPECT_NEAR(static_cast<double>(driver.linkBusy()), 3e6,
                1e4);

    bool saw_transfer = false, saw_enqueue = false;
    for (const auto &event : trace.events()) {
        const std::string type = event.type;
        if (type == "TransferBufferToInfeedLocked")
            saw_transfer = true;
        if (type == "InfeedEnqueueTuple")
            saw_enqueue = true;
        EXPECT_EQ(event.device, EventDevice::Host);
    }
    EXPECT_TRUE(saw_transfer);
    EXPECT_TRUE(saw_enqueue);
}

TEST(InfeedDriverTest, BlocksWhenDeviceQueueFull)
{
    Simulator sim;
    BoundedQueue<HostBatch> prefetch(sim, 8);
    InfeedQueue device(sim, 1);
    InfeedDriver driver(sim, prefetch, device, 16e9, nullptr);
    driver.start();
    for (StepId s = 0; s < 4; ++s) {
        HostBatch batch;
        batch.step = s;
        batch.bytes = 1024;
        prefetch.push(batch, nullptr);
    }
    sim.run();
    // One in the queue, one parked in the push.
    EXPECT_LE(driver.transferred(), 2u);
    EXPECT_EQ(device.size(), 1u);
}

TEST(OutfeedDrainTest, ChargesWaitToOutfeedDequeueTuple)
{
    Simulator sim;
    OutfeedQueue device(sim, 4);
    InMemoryTrace trace;
    OutfeedDrain drain(sim, device, 16e9, &trace);
    std::vector<StepId> completed;
    drain.start([&](StepResult r) {
        completed.push_back(r.step);
    });

    // Publish a result 5 ms in: the drain has been blocked since
    // t=0, so the dequeue op spans >= 5 ms.
    sim.schedule(5 * kMsec, [&] {
        StepResult r;
        r.step = 9;
        r.bytes = 64;
        r.tpu_finished = sim.now();
        device.push(r, nullptr);
    });
    sim.run();

    ASSERT_EQ(completed.size(), 1u);
    EXPECT_EQ(completed[0], 9u);
    EXPECT_EQ(drain.drained(), 1u);
    ASSERT_FALSE(trace.events().empty());
    const TraceEvent &event = trace.events().front();
    EXPECT_STREQ(event.type, "OutfeedDequeueTuple");
    EXPECT_GE(event.duration, 5 * kMsec);
    EXPECT_EQ(event.step, 9u);
}

TEST(OutfeedDrainTest, DoubleStartPanics)
{
    Simulator sim;
    OutfeedQueue device(sim, 1);
    OutfeedDrain drain(sim, device, 16e9, nullptr);
    drain.start(nullptr);
    EXPECT_THROW(drain.start(nullptr), std::logic_error);
}

} // namespace
} // namespace tpupoint

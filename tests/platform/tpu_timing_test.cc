/** @file Roofline op-timing model. */

#include <gtest/gtest.h>

#include "tpu/timing.hh"

namespace tpupoint {
namespace {

ScheduledOp
makeOp(OpKind kind, std::uint64_t flops, std::uint64_t bytes,
       bool mxu)
{
    ScheduledOp op;
    op.kind = kind;
    op.name = opKindName(kind);
    op.flops = flops;
    op.bytes = bytes;
    op.mxu = mxu;
    return op;
}

TEST(TpuTimingTest, ComputeBoundMatMul)
{
    const TpuDeviceSpec spec = TpuDeviceSpec::v2();
    // Heavy flops, light bytes: duration = flops / effective rate.
    const auto op = makeOp(OpKind::MatMul, 1ULL << 40, 1024, true);
    const double seconds = static_cast<double>(1ULL << 40) /
        (spec.peak_flops * spec.mxu_efficiency);
    const SimTime expected =
        static_cast<SimTime>(seconds * 1e9 + 0.5) +
        spec.op_overhead;
    EXPECT_EQ(opDuration(spec, op), expected);
}

TEST(TpuTimingTest, MemoryBoundReshape)
{
    const TpuDeviceSpec spec = TpuDeviceSpec::v2();
    const std::uint64_t bytes = 1ULL << 30;
    const auto op = makeOp(OpKind::Reshape, 0, bytes, false);
    const SimTime expected = hbmTime(spec, bytes) +
        spec.op_overhead;
    EXPECT_EQ(opDuration(spec, op), expected);
}

TEST(TpuTimingTest, RooflineTakesTheMax)
{
    const TpuDeviceSpec spec = TpuDeviceSpec::v2();
    // Tiny flops but huge bytes: HBM side dominates even for MXU.
    const auto op =
        makeOp(OpKind::MatMul, 1000, 1ULL << 32, true);
    EXPECT_EQ(opDuration(spec, op),
              hbmTime(spec, 1ULL << 32) + spec.op_overhead);
}

TEST(TpuTimingTest, CollectiveUsesInterconnect)
{
    const TpuDeviceSpec spec = TpuDeviceSpec::v2();
    const std::uint64_t bytes = 1ULL << 28;
    const auto op = makeOp(OpKind::AllReduce, 0, bytes, false);
    const double seconds =
        static_cast<double>(bytes) / spec.ici_bandwidth;
    EXPECT_EQ(opDuration(spec, op),
              static_cast<SimTime>(seconds * 1e9 + 0.5) +
                  spec.op_overhead);
}

TEST(TpuTimingTest, MxuFusionUsesMatrixThroughput)
{
    const TpuDeviceSpec spec = TpuDeviceSpec::v2();
    const auto mxu_fusion =
        makeOp(OpKind::Fusion, 1ULL << 36, 64, true);
    const auto vec_fusion =
        makeOp(OpKind::Fusion, 1ULL << 36, 64, false);
    // The MXU-rooted fusion is much faster than the vector one.
    EXPECT_LT(opDuration(spec, mxu_fusion),
              opDuration(spec, vec_fusion));
}

TEST(TpuTimingTest, V3IsFasterButNotTwiceAsFast)
{
    const TpuDeviceSpec v2 = TpuDeviceSpec::v2();
    const TpuDeviceSpec v3 = TpuDeviceSpec::v3();
    const auto op =
        makeOp(OpKind::MatMul, 1ULL << 40, 1024, true);
    const SimTime t2 = opDuration(v2, op);
    const SimTime t3 = opDuration(v3, op);
    EXPECT_LT(t3, t2);
    // Efficiency drops on the wider arrays (Observation 5):
    // speedup stays well below the 2x peak ratio.
    EXPECT_GT(static_cast<double>(t3),
              static_cast<double>(t2) / 2.0);
}

TEST(TpuTimingTest, MxuActiveTimeOnlyForMxuOps)
{
    const TpuDeviceSpec spec = TpuDeviceSpec::v2();
    const auto mxu_op =
        makeOp(OpKind::MatMul, 1ULL << 30, 64, true);
    const auto vec_op =
        makeOp(OpKind::Relu, 1ULL << 30, 64, false);
    EXPECT_GT(mxuActiveTime(spec, mxu_op), 0);
    EXPECT_EQ(mxuActiveTime(spec, vec_op), 0);
    // Active time uses raw peak: always <= the op duration's
    // compute side.
    EXPECT_LT(mxuActiveTime(spec, mxu_op),
              opDuration(spec, mxu_op));
}

TEST(TpuTimingTest, PcieTimeLinearInBytes)
{
    const TpuDeviceSpec spec = TpuDeviceSpec::v2();
    EXPECT_NEAR(static_cast<double>(pcieTime(spec, 16'000'000)),
                1e6, 1.0); // 16 MB over 16 GB/s = 1 ms
    EXPECT_EQ(pcieTime(spec, 0), 0);
}

} // namespace
} // namespace tpupoint

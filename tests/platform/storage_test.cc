/** @file Storage bucket transfer model. */

#include <gtest/gtest.h>

#include <stdexcept>

#include "host/storage.hh"

namespace tpupoint {
namespace {

TEST(StorageTest, SingleStreamReadTiming)
{
    Simulator sim;
    StorageSpec spec;
    spec.stream_bandwidth = 100e6; // 100 MB/s
    spec.request_latency = 10 * kMsec;
    StorageBucket bucket(sim, spec);

    SimTime done_at = 0;
    bucket.read(100'000'000, 1, [&] { done_at = sim.now(); });
    sim.run();
    // 1 s transfer + 10 ms latency.
    EXPECT_EQ(done_at, kSec + 10 * kMsec);
    EXPECT_EQ(bucket.bytesRead(), 100'000'000u);
}

TEST(StorageTest, ParallelStreamsDivideTheTransfer)
{
    Simulator sim;
    StorageSpec spec;
    spec.stream_bandwidth = 100e6;
    spec.request_latency = 0;
    StorageBucket bucket(sim, spec);

    SimTime done_at = 0;
    bucket.read(100'000'000, 4, [&] { done_at = sim.now(); });
    sim.run();
    EXPECT_EQ(done_at, kSec / 4);
}

TEST(StorageTest, StreamsAreCappedByPool)
{
    Simulator sim;
    StorageSpec spec;
    spec.stream_bandwidth = 100e6;
    spec.request_latency = 0;
    spec.max_streams = 2;
    StorageBucket bucket(sim, spec);

    SimTime done_at = 0;
    bucket.read(100'000'000, 16, [&] { done_at = sim.now(); });
    sim.run();
    // Only 2 streams actually run: 50 MB each -> 0.5 s.
    EXPECT_EQ(done_at, kSec / 2);
}

TEST(StorageTest, ConcurrentReadsContendForStreams)
{
    Simulator sim;
    StorageSpec spec;
    spec.stream_bandwidth = 100e6;
    spec.request_latency = 0;
    spec.max_streams = 1;
    StorageBucket bucket(sim, spec);

    SimTime first = 0, second = 0;
    bucket.read(100'000'000, 1, [&] { first = sim.now(); });
    bucket.read(100'000'000, 1, [&] { second = sim.now(); });
    sim.run();
    EXPECT_EQ(first, kSec);
    EXPECT_EQ(second, 2 * kSec); // serialized on the one stream
}

TEST(StorageTest, WriteAccumulatesCounter)
{
    Simulator sim;
    StorageBucket bucket(sim, StorageSpec{});
    bucket.write(1234, nullptr);
    sim.run();
    EXPECT_EQ(bucket.bytesWritten(), 1234u);
}

TEST(StorageTest, ZeroStreamReadRejected)
{
    Simulator sim;
    StorageBucket bucket(sim, StorageSpec{});
    EXPECT_THROW(bucket.read(1, 0, nullptr), std::runtime_error);
}

} // namespace
} // namespace tpupoint

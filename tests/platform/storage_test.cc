/** @file Storage bucket transfer model. */

#include <gtest/gtest.h>

#include <stdexcept>

#include "host/storage.hh"

namespace tpupoint {
namespace {

TEST(StorageTest, SingleStreamReadTiming)
{
    Simulator sim;
    StorageSpec spec;
    spec.stream_bandwidth = 100e6; // 100 MB/s
    spec.request_latency = 10 * kMsec;
    StorageBucket bucket(sim, spec);

    SimTime done_at = 0;
    bucket.read(100'000'000, 1, [&] { done_at = sim.now(); });
    sim.run();
    // 1 s transfer + 10 ms latency.
    EXPECT_EQ(done_at, kSec + 10 * kMsec);
    EXPECT_EQ(bucket.bytesRead(), 100'000'000u);
}

TEST(StorageTest, ParallelStreamsDivideTheTransfer)
{
    Simulator sim;
    StorageSpec spec;
    spec.stream_bandwidth = 100e6;
    spec.request_latency = 0;
    StorageBucket bucket(sim, spec);

    SimTime done_at = 0;
    bucket.read(100'000'000, 4, [&] { done_at = sim.now(); });
    sim.run();
    EXPECT_EQ(done_at, kSec / 4);
}

TEST(StorageTest, StreamsAreCappedByPool)
{
    Simulator sim;
    StorageSpec spec;
    spec.stream_bandwidth = 100e6;
    spec.request_latency = 0;
    spec.max_streams = 2;
    StorageBucket bucket(sim, spec);

    SimTime done_at = 0;
    bucket.read(100'000'000, 16, [&] { done_at = sim.now(); });
    sim.run();
    // Only 2 streams actually run: 50 MB each -> 0.5 s.
    EXPECT_EQ(done_at, kSec / 2);
}

TEST(StorageTest, ConcurrentReadsContendForStreams)
{
    Simulator sim;
    StorageSpec spec;
    spec.stream_bandwidth = 100e6;
    spec.request_latency = 0;
    spec.max_streams = 1;
    StorageBucket bucket(sim, spec);

    SimTime first = 0, second = 0;
    bucket.read(100'000'000, 1, [&] { first = sim.now(); });
    bucket.read(100'000'000, 1, [&] { second = sim.now(); });
    sim.run();
    EXPECT_EQ(first, kSec);
    EXPECT_EQ(second, 2 * kSec); // serialized on the one stream
}

TEST(StorageTest, WriteAccumulatesCounter)
{
    Simulator sim;
    StorageBucket bucket(sim, StorageSpec{});
    bucket.write(1234, nullptr);
    sim.run();
    EXPECT_EQ(bucket.bytesWritten(), 1234u);
}

TEST(StorageTest, ZeroStreamReadRejected)
{
    Simulator sim;
    StorageBucket bucket(sim, StorageSpec{});
    EXPECT_THROW(bucket.read(1, 0, nullptr), std::runtime_error);
}

TEST(StorageTest, SplitSharesAlwaysSumToTheRequest)
{
    for (std::uint64_t bytes :
         {0ull, 1ull, 7ull, 1000ull, 99'999'999ull}) {
        for (int streams : {1, 2, 3, 7, 64}) {
            const auto shares =
                StorageBucket::splitShares(bytes, streams);
            ASSERT_EQ(shares.size(),
                      static_cast<std::size_t>(streams));
            std::uint64_t total = 0;
            for (const std::uint64_t share : shares)
                total += share;
            EXPECT_EQ(total, bytes)
                << bytes << " bytes over " << streams
                << " streams";
        }
    }
    // The remainder rides on the last stream.
    const auto shares = StorageBucket::splitShares(10, 3);
    EXPECT_EQ(shares[0], 3u);
    EXPECT_EQ(shares[1], 3u);
    EXPECT_EQ(shares[2], 4u);
}

TEST(StorageTest, IndivisibleReadChargesTheExactByteCount)
{
    Simulator sim;
    StorageSpec spec;
    spec.stream_bandwidth = 100e6;
    spec.request_latency = 0;
    StorageBucket bucket(sim, spec);

    // 100,000,001 bytes over 4 streams: the last stream carries
    // 25,000,001 bytes and finishes last.
    SimTime done_at = 0;
    bucket.read(100'000'001, 4, [&] { done_at = sim.now(); });
    sim.run();
    const SimTime expected = static_cast<SimTime>(
        25'000'001.0 / 100e6 * 1e9 + 0.5);
    EXPECT_EQ(done_at, expected);
    EXPECT_EQ(bucket.bytesRead(), 100'000'001u);
}

TEST(StorageTest, ZeroByteWriteStillPaysTheRoundTrip)
{
    Simulator sim;
    StorageSpec spec;
    spec.request_latency = 10 * kMsec;
    StorageBucket bucket(sim, spec);

    SimTime done_at = -1;
    bucket.write(0, [&] { done_at = sim.now(); });
    EXPECT_EQ(done_at, -1); // strictly asynchronous
    sim.run();
    EXPECT_EQ(done_at, 10 * kMsec);
    EXPECT_EQ(bucket.bytesWritten(), 0u);
}

TEST(StorageTest, TransientErrorsRetryAndCompleteDeterministically)
{
    const auto run = [](std::uint64_t seed) {
        Simulator sim;
        StorageSpec spec;
        spec.stream_bandwidth = 100e6;
        spec.request_latency = kMsec;
        StorageBucket bucket(sim, spec);

        FaultSpec faults = FaultSpec::uniform(0.5);
        faults.seed = seed;
        FaultPlan plan(faults, 0);
        bucket.injectFaults(&plan);

        SimTime done_at = 0;
        int completions = 0;
        for (int i = 0; i < 20; ++i) {
            bucket.read(1'000'000, 2, [&] {
                ++completions;
                done_at = sim.now();
            });
        }
        sim.run();
        EXPECT_EQ(completions, 20);
        EXPECT_GT(bucket.retriesPerformed(), 0u);
        EXPECT_GT(bucket.retryTime(), 0);
        return done_at;
    };

    const SimTime first = run(77);
    const SimTime second = run(77);
    EXPECT_EQ(first, second); // fixed seed replays bit-for-bit

    // Retries cost time: a faulted run finishes after a clean one.
    Simulator sim;
    StorageSpec spec;
    spec.stream_bandwidth = 100e6;
    spec.request_latency = kMsec;
    StorageBucket clean(sim, spec);
    SimTime clean_done = 0;
    for (int i = 0; i < 20; ++i)
        clean.read(1'000'000, 2, [&] { clean_done = sim.now(); });
    sim.run();
    EXPECT_GT(first, clean_done);
}

TEST(StorageTest, RetryEventsCarryStepAndReachTheSink)
{
    struct CapturingSink : TraceSink {
        std::vector<TraceEvent> events;
        void record(const TraceEvent &event) override
        {
            events.push_back(event);
        }
    };

    Simulator sim;
    StorageSpec spec;
    spec.request_latency = kMsec;
    StorageBucket bucket(sim, spec);
    FaultPlan plan(FaultSpec::uniform(1.0, 0, 0), 5);
    RetryPolicy budget;
    budget.max_attempts = 3;
    budget.op_timeout = 0;
    bucket.injectFaults(&plan, budget);
    CapturingSink sink;
    bucket.setTraceSink(&sink);

    // Every attempt errors: the budget exhausts after 3 tries and
    // two StorageRetry events were emitted on the way.
    bucket.write(1000, nullptr, /*step=*/42);
    EXPECT_THROW(sim.run(), std::runtime_error);
    ASSERT_EQ(sink.events.size(), 2u);
    for (const auto &event : sink.events) {
        EXPECT_STREQ(event.type, "StorageRetry");
        EXPECT_EQ(event.step, 42u);
        EXPECT_EQ(event.device, EventDevice::Host);
        EXPECT_GT(event.duration, 0);
    }
    EXPECT_EQ(bucket.retriesPerformed(), 2u);
}

TEST(StorageTest, OpTimeoutFailsHardInsteadOfWedging)
{
    Simulator sim;
    StorageSpec spec;
    spec.request_latency = kMsec;
    StorageBucket bucket(sim, spec);
    FaultPlan plan(FaultSpec::uniform(1.0), 9);
    RetryPolicy policy;
    policy.max_attempts = 1000;
    policy.op_timeout = 100 * kMsec;
    bucket.injectFaults(&plan, policy);

    bucket.write(1000, nullptr);
    EXPECT_THROW(sim.run(), std::runtime_error);
}

TEST(StorageTest, InvalidRetryPoliciesAreRejected)
{
    Simulator sim;
    StorageBucket bucket(sim, StorageSpec{});
    FaultPlan plan(FaultSpec::uniform(0.1), 1);

    RetryPolicy no_attempts;
    no_attempts.max_attempts = 0;
    EXPECT_THROW(bucket.injectFaults(&plan, no_attempts),
                 std::runtime_error);

    RetryPolicy bad_jitter;
    bad_jitter.jitter = 2.0;
    EXPECT_THROW(bucket.injectFaults(&plan, bad_jitter),
                 std::runtime_error);

    RetryPolicy shrinking;
    shrinking.backoff_multiplier = 0.5;
    EXPECT_THROW(bucket.injectFaults(&plan, shrinking),
                 std::runtime_error);
}

} // namespace
} // namespace tpupoint

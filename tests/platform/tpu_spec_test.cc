/** @file TPU generation specifications (Section II). */

#include <gtest/gtest.h>

#include "tpu/spec.hh"

namespace tpupoint {
namespace {

TEST(TpuSpecTest, GenerationNames)
{
    EXPECT_STREQ(tpuGenerationName(TpuGeneration::V2), "TPUv2");
    EXPECT_STREQ(tpuGenerationName(TpuGeneration::V3), "TPUv3");
}

TEST(TpuSpecTest, V3DoublesMxusAndHbm)
{
    const TpuDeviceSpec v2 = TpuDeviceSpec::v2();
    const TpuDeviceSpec v3 = TpuDeviceSpec::v3();
    // "TPUv3 contains twice as many MXUs as TPUv2 and twice the
    // HBM" (Section II-A).
    EXPECT_EQ(v3.totalMxus(), 2 * v2.totalMxus());
    EXPECT_EQ(v3.hbm_bytes, 2 * v2.hbm_bytes);
    EXPECT_DOUBLE_EQ(v3.peak_flops, 2 * v2.peak_flops);
}

TEST(TpuSpecTest, V2MatchesPaperNumbers)
{
    const TpuDeviceSpec v2 = TpuDeviceSpec::v2();
    // 45 TFLOPS and 2 MXUs x 8 GiB per chip.
    EXPECT_DOUBLE_EQ(v2.peak_flops / v2.num_chips, 45e12);
    EXPECT_EQ(v2.mxus_per_chip, 2);
    EXPECT_EQ(v2.hbm_bytes /
                  static_cast<std::uint64_t>(v2.totalMxus()),
              8ULL * kGiB);
}

TEST(TpuSpecTest, HostLinkIsGenerationIndependent)
{
    // The host-side bottleneck does not improve with the TPU
    // generation — the root of Observation 5.
    EXPECT_DOUBLE_EQ(TpuDeviceSpec::v2().pcie_bandwidth,
                     TpuDeviceSpec::v3().pcie_bandwidth);
}

TEST(TpuSpecTest, ForGenerationDispatches)
{
    EXPECT_EQ(TpuDeviceSpec::forGeneration(TpuGeneration::V2).name,
              "TPUv2-8");
    EXPECT_EQ(TpuDeviceSpec::forGeneration(TpuGeneration::V3).name,
              "TPUv3-8");
}

} // namespace
} // namespace tpupoint

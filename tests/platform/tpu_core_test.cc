/** @file TpuCore execution, accounting and event emission. */

#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/builder.hh"
#include "profiler/collector.hh"
#include "tpu/core.hh"
#include "tpu/timing.hh"

namespace tpupoint {
namespace {

/** A minimal step: infeed -> matmul -> outfeed. */
StepSchedule
tinySchedule()
{
    GraphBuilder gb("tiny", DataType::BF16);
    const NodeId x = gb.infeed(TensorShape{64, 64}, "in");
    const NodeId mm = gb.matmul(x, 64, "mm");
    gb.outfeed(mm, "out");
    return extractSchedule(gb.finish());
}

struct Rig
{
    Simulator sim;
    InfeedQueue infeed{sim, 2};
    OutfeedQueue outfeed{sim, 4};
    TpuDeviceSpec spec = TpuDeviceSpec::v2();
    TpuCore core{sim, spec, infeed, outfeed};
    InMemoryTrace trace;

    Rig() { core.setSink(&trace); }

    void
    feed(StepId step, std::uint64_t bytes)
    {
        DeviceBatch batch;
        batch.step = step;
        batch.bytes = bytes;
        infeed.push(batch, nullptr);
    }

    void
    drain()
    {
        outfeed.pop([](StepResult) {});
    }
};

TEST(TpuCoreTest, ExecutesOneStep)
{
    Rig rig;
    const StepSchedule schedule = tinySchedule();
    rig.feed(7, schedule.infeed_bytes);
    rig.drain();
    bool done = false;
    rig.core.runStep(schedule, 7, [&] { done = true; });
    rig.sim.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(rig.core.counters().steps_completed, 1u);
    EXPECT_EQ(rig.core.counters().ops_executed, schedule.size());
    EXPECT_GT(rig.core.counters().busy, 0);
    EXPECT_GT(rig.core.counters().mxu_active, 0);
}

TEST(TpuCoreTest, EventsCoverEveryOp)
{
    Rig rig;
    const StepSchedule schedule = tinySchedule();
    rig.feed(3, schedule.infeed_bytes);
    rig.drain();
    rig.core.runStep(schedule, 3, nullptr);
    rig.sim.run();
    // infeed (no wait -> no Infeed event), matmul, outfeed.
    ASSERT_EQ(rig.trace.events().size(), 3u);
    EXPECT_STREQ(rig.trace.events()[0].type, "InfeedDequeueTuple");
    EXPECT_STREQ(rig.trace.events()[1].type, "MatMul");
    EXPECT_STREQ(rig.trace.events()[2].type,
                 "OutfeedEnqueueTuple");
    for (const auto &event : rig.trace.events()) {
        EXPECT_EQ(event.step, 3u);
        EXPECT_EQ(event.device, EventDevice::Tpu);
        EXPECT_GT(event.duration, 0);
    }
    EXPECT_TRUE(rig.trace.events()[1].mxu);
    EXPECT_GT(rig.trace.events()[1].mxu_active, 0);
}

TEST(TpuCoreTest, InfeedStallCountsAsIdleAndEmitsInfeedEvent)
{
    Rig rig;
    const StepSchedule schedule = tinySchedule();
    rig.drain();
    rig.core.runStep(schedule, 1, nullptr);
    // Deliver the batch late.
    rig.sim.schedule(1 * kMsec, [&] {
        rig.feed(1, schedule.infeed_bytes);
    });
    rig.sim.run();
    EXPECT_GE(rig.core.counters().idle, 1 * kMsec);
    bool saw_infeed_wait = false;
    for (const auto &event : rig.trace.events()) {
        if (std::string_view(event.type) == "Infeed") {
            saw_infeed_wait = true;
            EXPECT_GE(event.duration, 1 * kMsec);
        }
    }
    EXPECT_TRUE(saw_infeed_wait);
}

TEST(TpuCoreTest, FullOutfeedBlocksDevice)
{
    Simulator sim;
    InfeedQueue infeed(sim, 4);
    OutfeedQueue outfeed(sim, 1);
    TpuCore core(sim, TpuDeviceSpec::v2(), infeed, outfeed);
    const StepSchedule schedule = tinySchedule();

    // Two steps, no drain: the second outfeed push must block.
    for (StepId s = 0; s < 2; ++s) {
        DeviceBatch batch;
        batch.step = s;
        batch.bytes = schedule.infeed_bytes;
        infeed.push(batch, nullptr);
    }
    int done = 0;
    core.runStep(schedule, 0, [&] {
        ++done;
        core.runStep(schedule, 1, [&] { ++done; });
    });
    sim.run();
    EXPECT_EQ(done, 1); // second step is wedged on the outfeed
    // Draining unblocks it.
    outfeed.pop([](StepResult) {});
    outfeed.pop([](StepResult) {});
    sim.run();
    EXPECT_EQ(done, 2);
}

TEST(TpuCoreTest, OverlappingStepsPanic)
{
    Rig rig;
    const StepSchedule schedule = tinySchedule();
    rig.core.runStep(schedule, 0, nullptr);
    EXPECT_THROW(rig.core.runStep(schedule, 1, nullptr),
                 std::logic_error);
}

TEST(TpuCoreTest, TraceOverheadSlowsOps)
{
    const StepSchedule schedule = tinySchedule();

    auto run_with_overhead = [&](SimTime overhead) {
        Rig rig;
        rig.core.setTraceOverhead(overhead);
        rig.feed(0, schedule.infeed_bytes);
        rig.drain();
        rig.core.runStep(schedule, 0, nullptr);
        rig.sim.run();
        return rig.core.counters().busy;
    };
    const SimTime plain = run_with_overhead(0);
    const SimTime traced = run_with_overhead(10 * kUsec);
    EXPECT_GT(traced, plain);
}

TEST(TpuCoreTest, ResultCarriesOutfeedBytes)
{
    Rig rig;
    const StepSchedule schedule = tinySchedule();
    rig.feed(5, schedule.infeed_bytes);
    StepResult got;
    rig.outfeed.pop([&](StepResult r) { got = r; });
    rig.core.runStep(schedule, 5, nullptr);
    rig.sim.run();
    EXPECT_EQ(got.step, 5u);
    EXPECT_EQ(got.bytes, schedule.outfeed_bytes);
    EXPECT_GT(got.tpu_finished, 0);
}

} // namespace
} // namespace tpupoint

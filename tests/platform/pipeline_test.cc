/** @file Input-pipeline production, events and tunability. */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "host/pipeline.hh"
#include "profiler/collector.hh"
#include "workloads/datasets.hh"

namespace tpupoint {
namespace {

struct Rig
{
    Simulator sim;
    StorageBucket storage{sim, StorageSpec{}};
    InMemoryTrace trace;

    std::unique_ptr<InputPipeline>
    make(const DatasetSpec &data, std::uint64_t batch,
         std::uint64_t device_bytes, const PipelineConfig &cfg)
    {
        return std::make_unique<InputPipeline>(
            sim, HostSpec::standard(), storage, data, batch,
            device_bytes, cfg, Rng(1), &trace);
    }
};

/** Drain @p n batches, returning completion time. */
SimTime
drainAll(Simulator &sim, InputPipeline &pipe, std::uint64_t n)
{
    SimTime last = 0;
    std::function<void()> drain = [&]() {
        pipe.output().pop([&](HostBatch) {
            last = sim.now();
            if (--n > 0)
                drain();
        });
    };
    drain();
    sim.run();
    return last;
}

TEST(PipelineTest, ProducesRequestedBatchCount)
{
    Rig rig;
    auto pipe = rig.make(datasets::mrpc(), 32, 1 << 16,
                         PipelineConfig{});
    pipe->start(0, 10);
    drainAll(rig.sim, *pipe, 10);
    EXPECT_EQ(pipe->counters().batches_produced, 10u);
}

TEST(PipelineTest, BatchesCarryDeviceBytesAndSequentialSteps)
{
    Rig rig;
    auto pipe = rig.make(datasets::mrpc(), 32, 4096,
                         PipelineConfig{});
    pipe->start(5, 3);
    std::vector<HostBatch> got;
    std::function<void()> drain = [&]() {
        pipe->output().pop([&](HostBatch b) {
            got.push_back(b);
            if (got.size() < 3)
                drain();
        });
    };
    drain();
    rig.sim.run();
    ASSERT_EQ(got.size(), 3u);
    EXPECT_EQ(got[0].step, 5u);
    EXPECT_EQ(got[2].step, 7u);
    for (const auto &b : got)
        EXPECT_EQ(b.bytes, 4096u);
}

TEST(PipelineTest, TextPipelineEmitsTextOps)
{
    Rig rig;
    auto pipe = rig.make(datasets::squad(), 32, 1 << 16,
                         PipelineConfig{});
    pipe->start(0, 2);
    drainAll(rig.sim, *pipe, 2);
    std::set<std::string> types;
    for (const auto &event : rig.trace.events())
        types.insert(event.type);
    EXPECT_TRUE(types.count("ParseExample"));
    EXPECT_TRUE(types.count("BuildPaddedOutput"));
    EXPECT_TRUE(types.count("LinearizeX32"));
    EXPECT_TRUE(types.count("Recv"));
    EXPECT_FALSE(types.count("DecodeAndCropJpeg"));
}

TEST(PipelineTest, JpegPipelineEmitsImageOps)
{
    Rig rig;
    auto pipe = rig.make(datasets::coco(), 8, 1 << 20,
                         PipelineConfig{});
    pipe->start(0, 2);
    drainAll(rig.sim, *pipe, 2);
    std::set<std::string> types;
    for (const auto &event : rig.trace.events())
        types.insert(event.type);
    EXPECT_TRUE(types.count("DecodeAndCropJpeg"));
    EXPECT_TRUE(types.count("ResizeBicubic"));
}

TEST(PipelineTest, MoreParallelCallsIsFaster)
{
    const DatasetSpec data = datasets::coco();
    auto run = [&](int calls) {
        Rig rig;
        PipelineConfig cfg;
        cfg.num_parallel_calls = calls;
        auto pipe = rig.make(data, 16, 1 << 20, cfg);
        pipe->start(0, 6);
        return drainAll(rig.sim, *pipe, 6);
    };
    EXPECT_LT(run(16), run(1));
}

TEST(PipelineTest, NaiveConfigIsSlower)
{
    const DatasetSpec data = datasets::coco();
    auto run = [&](const PipelineConfig &cfg) {
        Rig rig;
        auto pipe = rig.make(data, 16, 1 << 20, cfg);
        pipe->start(0, 6);
        return drainAll(rig.sim, *pipe, 6);
    };
    EXPECT_LT(run(PipelineConfig{}),
              run(PipelineConfig::naive()));
}

TEST(PipelineTest, SetConfigTakesEffectLive)
{
    Rig rig;
    auto pipe = rig.make(datasets::coco(), 16, 1 << 20,
                         PipelineConfig::naive());
    pipe->start(0, 4);
    PipelineConfig tuned;
    tuned.num_parallel_calls = 32;
    tuned.prefetch_depth = 8;
    pipe->setConfig(tuned);
    EXPECT_EQ(pipe->config().num_parallel_calls, 32);
    EXPECT_EQ(pipe->output().capacity(), 8u);
    drainAll(rig.sim, *pipe, 4);
    EXPECT_EQ(pipe->counters().batches_produced, 4u);
}

TEST(PipelineTest, StageCountersAccumulate)
{
    Rig rig;
    auto pipe = rig.make(datasets::squad(), 32, 1 << 16,
                         PipelineConfig{});
    pipe->start(0, 5);
    drainAll(rig.sim, *pipe, 5);
    EXPECT_GT(pipe->counters().read_busy, 0);
    EXPECT_GT(pipe->counters().process_busy, 0);
    EXPECT_GT(pipe->counters().linearize_busy, 0);
}

TEST(PipelineTest, ByteAccountingHelpers)
{
    Rig rig;
    const DatasetSpec data = datasets::coco();
    auto pipe = rig.make(data, 16, 1 << 20, PipelineConfig{});
    EXPECT_EQ(pipe->storedBatchBytes(),
              16u * data.exampleBytes());
    EXPECT_EQ(pipe->decodedBatchBytes(),
              16u * data.decodedExampleBytes());
}

TEST(PipelineTest, ZeroBatchRejected)
{
    Rig rig;
    EXPECT_THROW(rig.make(datasets::mrpc(), 0, 64,
                          PipelineConfig{}),
                 std::runtime_error);
}

TEST(PipelineTest, DoubleStartPanics)
{
    Rig rig;
    auto pipe = rig.make(datasets::mrpc(), 32, 64,
                         PipelineConfig{});
    pipe->start(0, 1);
    EXPECT_THROW(pipe->start(0, 1), std::logic_error);
}

} // namespace
} // namespace tpupoint

/**
 * @file Failure/degradation injection: a degraded storage service
 * or a starved host must surface in exactly the places TPUPoint
 * looks — TPU idle time, the Infeed/Recv operators and the phase
 * tables — rather than wedging the platform.
 */

#include <gtest/gtest.h>

#include "analyzer/analyzer.hh"
#include "profiler/collector.hh"
#include "profiler/profiler.hh"
#include "workloads/catalog.hh"

namespace tpupoint {
namespace {

RuntimeWorkload
workload()
{
    WorkloadOptions options;
    options.step_scale = 0.05;
    options.max_train_steps = 150;
    return makeWorkload(WorkloadId::DcganCifar10, options);
}

struct MeasuredRun
{
    SessionResult result;
    std::vector<ProfileRecord> records;
};

MeasuredRun
runWith(const StorageSpec &storage)
{
    Simulator sim;
    SessionConfig config;
    config.storage = storage;
    const RuntimeWorkload w = workload();
    TrainingSession session(sim, config, w);
    TpuPointProfiler profiler(sim, session);
    profiler.start(true);
    session.start(nullptr);
    sim.run();
    profiler.stop();
    return {session.result(), profiler.records()};
}

struct FaultedRun
{
    SessionResult result;
    std::vector<ProfileRecord> records;
    std::uint64_t retries = 0;
    SimTime retry_time = 0;
    std::uint64_t injected = 0;
};

FaultedRun
runWithFaults(const FaultSpec &faults, std::uint64_t seed)
{
    Simulator sim;
    SessionConfig config;
    config.faults = faults;
    config.seed = seed;
    const RuntimeWorkload w = workload();
    TrainingSession session(sim, config, w);
    TpuPointProfiler profiler(sim, session);
    profiler.start(true);
    session.start(nullptr);
    sim.run();
    profiler.stop();
    return {session.result(), profiler.records(),
            session.storageBucket().retriesPerformed(),
            session.storageBucket().retryTime(),
            session.faultPlan().injectedTotal()};
}

TEST(FailureInjectionTest, DegradedStorageStillCompletes)
{
    StorageSpec degraded;
    degraded.stream_bandwidth = 2e6; // 2 MB/s: a sick bucket
    degraded.request_latency = 200 * kMsec;
    degraded.max_streams = 2;

    const MeasuredRun healthy = runWith(StorageSpec{});
    const MeasuredRun sick = runWith(degraded);

    // The run completes either way...
    EXPECT_EQ(healthy.result.steps_completed,
              sick.result.steps_completed);
    // ...but the degradation is visible exactly where TPUPoint
    // looks: wall time and TPU idle.
    EXPECT_GT(sick.result.wall_time, healthy.result.wall_time);
    EXPECT_GT(sick.result.tpu_idle_fraction,
              healthy.result.tpu_idle_fraction + 0.2);
    EXPECT_LT(sick.result.mxu_utilization,
              healthy.result.mxu_utilization);
}

TEST(FailureInjectionTest, AnalyzerPinpointsTheStarvation)
{
    StorageSpec degraded;
    degraded.stream_bandwidth = 2e6;
    degraded.request_latency = 200 * kMsec;
    degraded.max_streams = 2;
    const MeasuredRun sick = runWith(degraded);

    const AnalysisResult analysis =
        TpuPointAnalyzer().analyze(sick.records);
    const Phase *longest = analysis.longest();
    ASSERT_NE(longest, nullptr);

    // The device-side Infeed stall tops the TPU operators and the
    // storage reads (Recv) dominate the host side.
    const auto tpu_top = topOps(longest->tpu_ops, 3);
    ASSERT_FALSE(tpu_top.empty());
    EXPECT_EQ(tpu_top[0].name, "Infeed");
    const auto host_top = topOps(longest->host_ops, 3);
    bool recv_dominates = false;
    for (const auto &op : host_top)
        recv_dominates |= op.name == "Recv";
    EXPECT_TRUE(recv_dominates);
}

TEST(FailureInjectionTest, SingleThreadHostStillCompletes)
{
    Simulator sim;
    SessionConfig config;
    config.host.physical_cores = 1;
    config.host.smt_ways = 1;
    config.pipeline = PipelineConfig::naive();
    const RuntimeWorkload w = workload();
    TrainingSession session(sim, config, w);
    session.start(nullptr);
    sim.run();
    EXPECT_EQ(session.result().steps_completed,
              w.schedule.train_steps);
    EXPECT_GT(session.result().tpu_idle_fraction, 0.3);
}

TEST(FailureInjectionTest, TransientFaultsRetryToCompletion)
{
    const FaultedRun healthy = runWithFaults(FaultSpec{}, 1);
    const FaultedRun faulted =
        runWithFaults(FaultSpec::uniform(0.01), 1);

    // A 1% transient-error plan completes the full run...
    EXPECT_EQ(faulted.result.steps_completed,
              healthy.result.steps_completed);
    EXPECT_GT(faulted.injected, 0u);
    EXPECT_GT(faulted.retries, 0u);
    EXPECT_GT(faulted.retry_time, 0);
    // ...and the extra wall time shows up as infeed/idle, exactly
    // where TPUPoint looks.
    EXPECT_GT(faulted.result.wall_time, healthy.result.wall_time);
    EXPECT_GE(faulted.result.tpu_idle_fraction,
              healthy.result.tpu_idle_fraction);
}

TEST(FailureInjectionTest, FaultedRunsReplayBitForBit)
{
    const FaultSpec faults = FaultSpec::uniform(0.01, 0.01, 0.002);
    const FaultedRun a = runWithFaults(faults, 7);
    const FaultedRun b = runWithFaults(faults, 7);

    EXPECT_EQ(a.result.wall_time, b.result.wall_time);
    EXPECT_EQ(a.result.steps_completed, b.result.steps_completed);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.retry_time, b.retry_time);
    EXPECT_EQ(a.injected, b.injected);

    // A different seed draws a different fault schedule.
    const FaultedRun c = runWithFaults(faults, 8);
    EXPECT_NE(a.retries, c.retries);
}

TEST(FailureInjectionTest, RetriesSurfaceInProfileRecords)
{
    // A heavy plan so every profile window sees some retries.
    const FaultedRun faulted =
        runWithFaults(FaultSpec::uniform(0.25), 3);

    std::uint64_t recorded_retries = 0;
    SimTime recorded_retry_time = 0;
    bool retry_op_in_host_table = false;
    for (const ProfileRecord &record : faulted.records) {
        recorded_retries += record.retries;
        recorded_retry_time += record.retry_time;
        for (const auto &step : record.steps)
            retry_op_in_host_table |=
                step.host_ops.count("StorageRetry") > 0;
    }
    EXPECT_GT(recorded_retries, 0u);
    EXPECT_GT(recorded_retry_time, 0);
    EXPECT_TRUE(retry_op_in_host_table);

    // The analyzer still produces a phase structure from the
    // faulted records, with the slowdown attributed to input.
    const AnalysisResult analysis =
        TpuPointAnalyzer().analyze(faulted.records);
    EXPECT_FALSE(analysis.phases.empty());
}

TEST(TraceHubTest, CountsWithAndWithoutSink)
{
    TraceHub hub;
    TraceEvent event;
    event.type = "MatMul";
    hub.record(event);
    EXPECT_EQ(hub.totalEvents(), 1u); // counted even when dropped
    EXPECT_EQ(hub.attached(), nullptr);

    InMemoryTrace trace;
    hub.attach(&trace);
    hub.record(event);
    EXPECT_EQ(hub.totalEvents(), 2u);
    ASSERT_EQ(trace.events().size(), 1u);

    hub.attach(nullptr);
    hub.record(event);
    EXPECT_EQ(trace.events().size(), 1u); // detached
    EXPECT_EQ(hub.totalEvents(), 3u);

    trace.clear();
    EXPECT_TRUE(trace.events().empty());
}

} // namespace
} // namespace tpupoint

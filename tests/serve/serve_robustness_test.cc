/**
 * @file Crash safety and overload hardening for the serve daemon
 * core. Pins: admission control (max-sessions / max-inflight-bytes
 * shed *new* work deterministically and re-admit it in discovery
 * order, never dropping an admitted stream), the quarantine
 * watchdog (repeated ingest errors isolate one session instead of
 * poisoning every poll), journal-backed restart recovery (a
 * rebuilt manager resumes every session from its committed offset
 * and produces byte-identical coverage, with no event lost or
 * double-counted), and status-publish hardening (a failed publish
 * is counted and retried, never a crash, never stale-temp litter).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>
#ifdef __unix__
#include <unistd.h>
#endif

#include "core/io_faults.hh"
#include "core/json.hh"
#include "obs/metrics.hh"
#include "proto/serialize.hh"
#include "serve/journal.hh"
#include "serve/serve.hh"
#include "tests/analyzer/synthetic.hh"
#include "trace/record_stream.hh"

namespace tpupoint {
namespace {

std::string
tempDir(const std::string &name)
{
    std::string dir = testing::TempDir();
#ifdef __unix__
    dir += std::to_string(getpid()) + ".";
#endif
    dir += name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

/** The canonical three-phase run as a multi-chunk stream. */
std::string
analyzableStream()
{
    std::ostringstream out(std::ios::binary);
    RecordStreamOptions options;
    options.chunk_records = 4;
    RecordStreamWriter writer(out, options);
    const auto steps = testutil::threePhaseRun();
    for (std::size_t i = 0; i < steps.size(); ++i)
        writer.append(encodeProfileRecord(
            testutil::makeRecord({steps[i]}, i)));
    writer.finish();
    return out.str();
}

void
writeFile(const std::string &path, std::string_view bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

void
appendFile(const std::string &path, std::string_view bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

/** Manager wired to a fake clock the test advances. */
struct ManagedSpool
{
    explicit ManagedSpool(const std::string &dir_name)
        : dir(tempDir(dir_name))
    {
        options.spool_dir = dir;
        options.threads = 1;
        options.idle_ttl_ms = 1000;
        options.evict_ttl_ms = -1;
        options.now_ms = [this] { return now; };
    }

    void
    start()
    {
        manager = std::make_unique<serve::SessionManager>(options);
    }

    // By value: two status() calls may appear in one EXPECT_EQ,
    // where a reference into a cached vector would dangle.
    serve::SessionStatus
    status(const std::string &name)
    {
        for (const auto &status : manager->sessions())
            if (status.name == name)
                return status;
        ADD_FAILURE() << "no session named " << name;
        return {};
    }

    std::string
    section(const std::string &key)
    {
        std::ostringstream json;
        manager->writeStatusJson(json);
        std::string out;
        EXPECT_TRUE(serve::extractStatusSection(json.str(), key,
                                                &out))
            << "no section " << key;
        return out;
    }

    std::string dir;
    serve::ServeOptions options;
    std::int64_t now = 0;
    std::unique_ptr<serve::SessionManager> manager;
};

struct ServeRobustnessTest : ::testing::Test
{
    void SetUp() override
    {
        io::FaultInjector::global().reset();
        obs::MetricsRegistry::global().reset();
    }
    void TearDown() override
    {
        io::FaultInjector::global().reset();
    }
};

TEST_F(ServeRobustnessTest, MaxSessionsShedsAndReadmitsInOrder)
{
    ManagedSpool spool("robust_shed");
    spool.options.max_sessions = 1;
    spool.start();
    const std::string stream = analyzableStream();
    writeFile(spool.dir + "/aaa.tpp", stream);
    writeFile(spool.dir + "/bbb.tpp", stream);

    // aaa is admitted (and, being a sealed stream, runs all the
    // way to Finalized within the poll); bbb is refused at the
    // door with nothing ingested.
    spool.manager->poll();
    EXPECT_EQ(spool.status("aaa").state,
              serve::SessionState::Finalized);
    EXPECT_EQ(spool.status("bbb").state,
              serve::SessionState::Shed);
    EXPECT_EQ(spool.status("bbb").bytes, 0u); // Never started.

    // Shed is a live-ish state: a draining daemon must not exit
    // while parked work remains.
    serve::ServeStats stats = spool.manager->stats();
    EXPECT_EQ(stats.shed, 1u);
    EXPECT_FALSE(stats.drained());

    // The status document names the state for operators.
    const std::string sessions_json = spool.section("sessions");
    EXPECT_NE(sessions_json.find("\"shed\""), std::string::npos);
    std::string why;
    EXPECT_TRUE(validateJson(sessions_json, &why)) << why;

    spool.manager->poll(); // Capacity freed: bbb re-admitted.
    EXPECT_EQ(spool.status("bbb").state,
              serve::SessionState::Finalized);
    EXPECT_TRUE(spool.manager->stats().drained());

    // The shed session lost nothing: identical analysis outcome.
    EXPECT_EQ(spool.status("bbb").records,
              spool.status("aaa").records);
    EXPECT_EQ(spool.status("bbb").phases.size(),
              spool.status("aaa").phases.size());

    const auto snapshot =
        obs::MetricsRegistry::global().snapshot();
    EXPECT_EQ(snapshot.counterOr("serve.sessions_shed"), 1u);
    EXPECT_EQ(snapshot.counterOr("serve.sessions_readmitted"),
              1u);
}

TEST_F(ServeRobustnessTest, MaxInflightBytesShedsNewSessions)
{
    ManagedSpool spool("robust_bytes");
    spool.options.max_inflight_bytes = 1;
    spool.start();
    const std::string stream = analyzableStream();
    // An unfinished stream holds its bytes in flight.
    writeFile(spool.dir + "/live.tpp",
              std::string_view(stream).substr(
                  0, stream.size() / 2));
    spool.manager->poll();
    EXPECT_EQ(spool.status("live").state,
              serve::SessionState::Ingesting);
    EXPECT_GT(spool.status("live").bytes, 0u);

    writeFile(spool.dir + "/next.tpp", stream);
    // The scan sheds `next` (live bytes are over budget) before
    // `live` idles out and finalizes later in the same poll.
    spool.now = 2000;
    spool.manager->poll();
    EXPECT_EQ(spool.status("next").state,
              serve::SessionState::Shed);
    EXPECT_EQ(spool.status("live").state,
              serve::SessionState::Finalized);
    spool.manager->poll(); // Budget freed: next runs to the end.
    EXPECT_EQ(spool.status("next").state,
              serve::SessionState::Finalized);
    EXPECT_TRUE(spool.manager->stats().drained());
}

TEST_F(ServeRobustnessTest, RepeatedIngestErrorsQuarantine)
{
    ManagedSpool spool("robust_quarantine");
    spool.options.quarantine_errors = 3;
    spool.start();
    writeFile(spool.dir + "/sick.tpp", analyzableStream());
    writeFile(spool.dir + "/healthy.tpp", analyzableStream());

    // Every spool read on this manager fails — but only `sick`
    // and `healthy` sample the site, and both error equally; to
    // isolate one session the fault targets the first N samples.
    // Simpler and deterministic: fail every read, watch both
    // sessions hit the watchdog without taking the manager down.
    ASSERT_TRUE(io::FaultInjector::global().configure(
        "serve.spool_read=eio@1+"));
    for (int i = 0; i < 3; ++i)
        spool.manager->poll();

    EXPECT_EQ(spool.status("sick").state,
              serve::SessionState::Quarantined);
    EXPECT_EQ(spool.status("healthy").state,
              serve::SessionState::Quarantined);
    EXPECT_NE(spool.status("sick").error.find("eio"),
              std::string::npos);

    const serve::ServeStats stats = spool.manager->stats();
    EXPECT_EQ(stats.quarantined, 2u);
    // Quarantine is terminal: the fleet counts as drained, and
    // further polls are cheap no-ops that do not re-touch the bad
    // sessions.
    EXPECT_TRUE(stats.drained());
    spool.manager->poll();
    EXPECT_EQ(io::FaultInjector::global().hits(
                  "serve.spool_read"),
              6u);

    const auto snapshot =
        obs::MetricsRegistry::global().snapshot();
    EXPECT_EQ(
        snapshot.counterOr("serve.sessions_quarantined"), 2u);
    EXPECT_EQ(snapshot.counterOr("serve.ingest_errors"), 6u);
}

TEST_F(ServeRobustnessTest, OneTransientErrorDoesNotQuarantine)
{
    ManagedSpool spool("robust_transient");
    spool.options.quarantine_errors = 3;
    spool.start();
    writeFile(spool.dir + "/blip.tpp", analyzableStream());
    ASSERT_TRUE(io::FaultInjector::global().configure(
        "serve.spool_read=eio@1"));
    spool.manager->poll(); // Fails once...
    spool.manager->poll(); // ...then recovers and completes.
    spool.manager->poll();
    EXPECT_EQ(spool.status("blip").state,
              serve::SessionState::Finalized);
    EXPECT_GT(spool.status("blip").records, 0u);
}

TEST_F(ServeRobustnessTest, RestartRecoveryMatchesUninterrupted)
{
    const std::string stream = analyzableStream();

    // Baseline: one uninterrupted run over the same bytes.
    ManagedSpool baseline("robust_baseline");
    baseline.start();
    writeFile(baseline.dir + "/run.tpp", stream);
    baseline.manager->poll();
    baseline.manager->poll();
    ASSERT_EQ(baseline.status("run").state,
              serve::SessionState::Finalized);
    const std::string expected_coverage =
        baseline.section("coverage");
    const std::string expected_phases =
        baseline.section("phases");

    // Chaos: ingest half, "crash" (drop the manager cold), then
    // restart against the journal and let the rest stream in.
    ManagedSpool chaos("robust_chaos");
    chaos.options.journal_path = chaos.dir + "/serve.journal";
    chaos.start();
    writeFile(chaos.dir + "/run.tpp",
              std::string_view(stream).substr(0,
                                              stream.size() / 2));
    chaos.manager->poll();
    const serve::SessionStatus mid = chaos.status("run");
    ASSERT_GT(mid.records, 0u);
    ASSERT_FALSE(mid.complete);
    const std::uint64_t committed = mid.bytes;
    chaos.manager.reset(); // The "kill -9".

    appendFile(chaos.dir + "/run.tpp",
               std::string_view(stream).substr(stream.size() / 2));
    chaos.start();
    const serve::SessionStatus restored = chaos.status("run");
    EXPECT_TRUE(restored.recovered);
    EXPECT_EQ(restored.bytes, committed);
    EXPECT_EQ(restored.records, mid.records);
    EXPECT_EQ(restored.events, mid.events);
    EXPECT_EQ(chaos.manager->stats().recovered, 1u);

    chaos.manager->poll(); // Resumes *past* the committed offset.
    chaos.manager->poll();
    ASSERT_EQ(chaos.status("run").state,
              serve::SessionState::Finalized);

    // No event lost, none double-counted: byte-identical analysis.
    EXPECT_EQ(chaos.status("run").records,
              baseline.status("run").records);
    EXPECT_EQ(chaos.status("run").events,
              baseline.status("run").events);
    EXPECT_EQ(chaos.section("coverage"), expected_coverage);
    EXPECT_EQ(chaos.section("phases"), expected_phases);

    const auto snapshot =
        obs::MetricsRegistry::global().snapshot();
    EXPECT_EQ(snapshot.counterOr("serve.sessions_recovered"),
              1u);
    // Replay charges no ingest metrics: the records counter holds
    // exactly one copy of every record across both processes.
    EXPECT_EQ(snapshot.counterOr("serve.records_ingested"),
              baseline.status("run").records +
                  chaos.status("run").records);
}

TEST_F(ServeRobustnessTest, FinalizedSessionsRecoverWithoutSpool)
{
    ManagedSpool first("robust_finalized");
    first.options.journal_path = first.dir + "/serve.journal";
    first.start();
    writeFile(first.dir + "/done.tpp", analyzableStream());
    first.manager->poll();
    first.manager->poll();
    ASSERT_EQ(first.status("done").state,
              serve::SessionState::Finalized);
    const std::string expected_phases = first.section("phases");
    first.manager.reset();

    // The spool file is gone; the journal alone answers queries.
    std::filesystem::remove(first.dir + "/done.tpp");
    first.start();
    const serve::SessionStatus restored = first.status("done");
    EXPECT_EQ(restored.state, serve::SessionState::Finalized);
    EXPECT_TRUE(restored.recovered);
    EXPECT_FALSE(restored.phases.empty());
    EXPECT_EQ(first.section("phases"), expected_phases);
    first.manager->poll();
    EXPECT_TRUE(first.manager->stats().drained());
}

TEST_F(ServeRobustnessTest, TamperedSpoolQuarantinesOnRecovery)
{
    ManagedSpool spool("robust_tampered");
    spool.options.journal_path = spool.dir + "/serve.journal";
    spool.start();
    const std::string stream = analyzableStream();
    writeFile(spool.dir + "/run.tpp",
              std::string_view(stream).substr(0,
                                              stream.size() / 2));
    spool.manager->poll();
    ASSERT_GT(spool.status("run").records, 0u);
    spool.manager.reset();

    // The spool file was rewritten behind the daemon's back: the
    // journaled offsets no longer describe these bytes. Recovery
    // must refuse to trust the mismatch, not serve wrong phases.
    writeFile(spool.dir + "/run.tpp", "not the same bytes at all");
    spool.start();
    EXPECT_EQ(spool.status("run").state,
              serve::SessionState::Quarantined);
    EXPECT_NE(spool.status("run").error.find("diverged"),
              std::string::npos);
}

TEST_F(ServeRobustnessTest, PublishFailureIsCountedNotFatal)
{
    ManagedSpool spool("robust_publish");
    spool.start();
    spool.manager->poll();
    const std::string status_path = spool.dir + "/status.json";

    ASSERT_TRUE(io::FaultInjector::global().configure(
        "serve.status_write=enospc,serve.status_rename=torn@1"));

    // Write fails: no stale temp, error counted, caller retries.
    std::string why;
    EXPECT_FALSE(
        serve::publishStatus(*spool.manager, status_path, &why));
    EXPECT_FALSE(why.empty());
    EXPECT_FALSE(
        std::filesystem::exists(status_path + ".tmp"));
    EXPECT_FALSE(std::filesystem::exists(status_path));

    // Rename fails (the torn window): same guarantees.
    EXPECT_FALSE(
        serve::publishStatus(*spool.manager, status_path, &why));
    EXPECT_FALSE(
        std::filesystem::exists(status_path + ".tmp"));

    // Next tick, the disk behaves: the publish lands whole.
    EXPECT_TRUE(
        serve::publishStatus(*spool.manager, status_path, &why))
        << why;
    std::ifstream in(status_path, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    EXPECT_TRUE(validateJson(text.str(), &why)) << why;

    const auto snapshot =
        obs::MetricsRegistry::global().snapshot();
    EXPECT_EQ(
        snapshot.counterOr("serve.status_publish_errors"), 2u);
}

TEST_F(ServeRobustnessTest, SweepRemovesStalePublishTemp)
{
    const std::string dir = tempDir("robust_sweep");
    const std::string status_path = dir + "/status.json";
    writeFile(status_path + ".tmp", "{\"half\":");
    EXPECT_TRUE(serve::sweepStalePublish(status_path));
    EXPECT_FALSE(
        std::filesystem::exists(status_path + ".tmp"));
    EXPECT_FALSE(serve::sweepStalePublish(status_path));
}

} // namespace
} // namespace tpupoint

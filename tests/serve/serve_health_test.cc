/** @file Health/SLO reporting and observability publishing. */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "core/io_faults.hh"
#include "core/json.hh"
#include "obs/flight_recorder.hh"
#include "obs/metrics.hh"
#include "proto/serialize.hh"
#include "serve/serve.hh"
#include "tests/analyzer/synthetic.hh"
#include "trace/record_stream.hh"

#ifdef __unix__
#include <unistd.h>
#endif

namespace tpupoint {
namespace {

std::string
tempDir(const std::string &name)
{
    std::string dir = testing::TempDir();
#ifdef __unix__
    dir += std::to_string(getpid()) + ".";
#endif
    dir += name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

std::string
analyzableStream()
{
    std::ostringstream out(std::ios::binary);
    RecordStreamOptions options;
    options.chunk_records = 4;
    RecordStreamWriter writer(out, options);
    const auto steps = testutil::threePhaseRun();
    for (std::size_t i = 0; i < steps.size(); ++i)
        writer.append(encodeProfileRecord(
            testutil::makeRecord({steps[i]}, i)));
    writer.finish();
    return out.str();
}

void
writeFile(const std::string &path, std::string_view bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

/** Manager wired to a fake clock the test advances. */
struct ManagedSpool
{
    explicit ManagedSpool(const std::string &dir_name)
        : dir(tempDir(dir_name))
    {
        options.spool_dir = dir;
        options.threads = 1;
        options.idle_ttl_ms = 1000;
        options.evict_ttl_ms = -1;
        options.now_ms = [this] { return now; };
    }

    void
    start()
    {
        manager = std::make_unique<serve::SessionManager>(options);
    }

    std::string
    section(const std::string &key)
    {
        std::ostringstream json;
        manager->writeStatusJson(json);
        std::string out;
        EXPECT_TRUE(serve::extractStatusSection(json.str(), key,
                                                &out))
            << "no section " << key;
        return out;
    }

    std::string dir;
    serve::ServeOptions options;
    std::int64_t now = 0;
    std::unique_ptr<serve::SessionManager> manager;
};

struct ServeHealthTest : ::testing::Test
{
    void SetUp() override
    {
        io::FaultInjector::global().reset();
        obs::MetricsRegistry::global().reset();
        obs::FlightRecorder::global().disable();
    }
    void TearDown() override
    {
        io::FaultInjector::global().reset();
        obs::FlightRecorder::global().disable();
    }
};

TEST_F(ServeHealthTest, CleanFleetReportsOk)
{
    ManagedSpool spool("health_ok");
    spool.start();
    writeFile(spool.dir + "/run.tpp", analyzableStream());
    spool.manager->poll();

    const serve::HealthReport report = spool.manager->health();
    EXPECT_EQ(report.state, serve::HealthState::Ok);
    EXPECT_TRUE(report.issues.empty());
    EXPECT_STREQ(serve::healthStateName(report.state), "ok");
}

TEST_F(ServeHealthTest, ShedSessionDegrades)
{
    ManagedSpool spool("health_shed");
    spool.options.max_sessions = 1;
    spool.start();
    const std::string stream = analyzableStream();
    writeFile(spool.dir + "/aaa.tpp", stream);
    writeFile(spool.dir + "/bbb.tpp", stream);
    spool.manager->poll();

    const serve::HealthReport report = spool.manager->health();
    EXPECT_EQ(report.state, serve::HealthState::Degraded);
    ASSERT_EQ(report.issues.size(), 1u);
    EXPECT_EQ(report.issues[0].kind, "shed");
    EXPECT_EQ(report.issues[0].session, "bbb");
}

TEST_F(ServeHealthTest, QuarantinedSessionIsUnhealthyAndDumps)
{
    ManagedSpool spool("health_quarantine");
    spool.options.quarantine_errors = 1;
    spool.options.flight_path =
        spool.dir + "/serve.flight.json";
    spool.start();
    obs::FlightRecorder::global().enable();
    writeFile(spool.dir + "/sick.tpp", analyzableStream());
    ASSERT_TRUE(io::FaultInjector::global().configure(
        "serve.spool_read=eio@1+"));
    spool.manager->poll();

    const serve::HealthReport report = spool.manager->health();
    EXPECT_EQ(report.state, serve::HealthState::Unhealthy);
    ASSERT_EQ(report.issues.size(), 1u);
    EXPECT_EQ(report.issues[0].kind, "quarantined");
    EXPECT_EQ(report.issues[0].session, "sick");
    EXPECT_NE(report.issues[0].detail.find("eio"),
              std::string::npos);

    // The incident left a black box behind, valid and attributed.
    const std::string doc = readFile(spool.options.flight_path);
    ASSERT_FALSE(doc.empty());
    std::string why;
    EXPECT_TRUE(validateJson(doc, &why)) << why;
    EXPECT_NE(doc.find("\"reason\":\"quarantine: sick\""),
              std::string::npos);
}

TEST_F(ServeHealthTest, IngestLagSloDegradesAndSetsGauges)
{
    ManagedSpool spool("health_lag");
    spool.options.slo_max_lag_ms = 500;
    spool.options.idle_ttl_ms = 60 * 1000; // Stay live, lagging.
    spool.start();
    const std::string stream = analyzableStream();
    // An unfinished stream: the session ingests, then stalls.
    writeFile(spool.dir + "/slow.tpp",
              std::string_view(stream).substr(
                  0, stream.size() / 2));
    spool.manager->poll();
    spool.now = 2000;
    spool.manager->poll();

    const serve::HealthReport report = spool.manager->health();
    EXPECT_EQ(report.state, serve::HealthState::Degraded);
    ASSERT_EQ(report.issues.size(), 1u);
    EXPECT_EQ(report.issues[0].kind, "slo-ingest-lag");
    EXPECT_EQ(report.issues[0].session, "slow");
    EXPECT_EQ(report.max_lag_session, "slow");
    EXPECT_GE(report.max_lag_ms, 2000);

    const auto snapshot =
        obs::MetricsRegistry::global().snapshot();
    EXPECT_GE(snapshot.gaugeOr(
                  "serve.session_lag_ms{session=slow}"),
              2000);
    EXPECT_GE(snapshot.gaugeOr("serve.ingest_lag_max_ms"), 2000);
}

TEST_F(ServeHealthTest, LagGaugeDropsToZeroOnceFinalized)
{
    ManagedSpool spool("health_lag_clear");
    spool.options.idle_ttl_ms = 1000;
    spool.start();
    const std::string stream = analyzableStream();
    writeFile(spool.dir + "/done.tpp", stream);
    spool.manager->poll();
    spool.now = 5000;
    spool.manager->poll();

    const auto snapshot =
        obs::MetricsRegistry::global().snapshot();
    EXPECT_EQ(snapshot.gaugeOr(
                  "serve.session_lag_ms{session=done}", -1),
              0);
}

TEST_F(ServeHealthTest, IngestP99SloDegrades)
{
    ManagedSpool spool("health_p99");
    spool.options.slo_p99_ingest_us = 1;
    spool.start();
    // Force a pathological tail directly into the shared
    // histogram: with an SLO of 1us, any real ingest violates it.
    obs::MetricsRegistry::global()
        .histogram("serve.ingest_chunk_us")
        .observe(1 << 20);
    const serve::HealthReport report = spool.manager->health();
    EXPECT_EQ(report.state, serve::HealthState::Degraded);
    ASSERT_EQ(report.issues.size(), 1u);
    EXPECT_EQ(report.issues[0].kind, "slo-p99-ingest");
    EXPECT_TRUE(report.issues[0].session.empty());
    EXPECT_GT(report.p99_ingest_us, 1.0);
}

TEST_F(ServeHealthTest, StatusDocumentCarriesHealthSection)
{
    ManagedSpool spool("health_section");
    spool.options.max_sessions = 1;
    spool.start();
    const std::string stream = analyzableStream();
    writeFile(spool.dir + "/aaa.tpp", stream);
    writeFile(spool.dir + "/bbb.tpp", stream);
    spool.manager->poll();

    const std::string health_json = spool.section("health");
    std::string why;
    ASSERT_TRUE(validateJson(health_json, &why)) << why;
    EXPECT_NE(health_json.find("\"state\":\"degraded\""),
              std::string::npos)
        << health_json;
    EXPECT_NE(health_json.find("\"kind\":\"shed\""),
              std::string::npos);
    EXPECT_NE(health_json.find("\"issues\":"),
              std::string::npos);
}

TEST_F(ServeHealthTest, PublishMetricsWritesOpenMetricsAtomically)
{
    ManagedSpool spool("health_metrics");
    spool.start();
    writeFile(spool.dir + "/run.tpp", analyzableStream());
    spool.manager->poll();

    const std::string path = spool.dir + "/status.json.metrics";
    std::string error;
    ASSERT_TRUE(serve::publishMetrics(path, &error)) << error;
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

    const std::string text = readFile(path);
    EXPECT_NE(text.find("# TYPE serve_sessions_discovered "
                        "counter"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("serve_sessions_discovered_total 1"),
              std::string::npos);
    // Labeled per-session gauges survive with proper label syntax.
    EXPECT_NE(
        text.find("serve_session_lag_ms{session=\"run\"}"),
        std::string::npos)
        << text;
    EXPECT_NE(text.find("serve_ingest_chunk_us_bucket"),
              std::string::npos);
    ASSERT_GE(text.size(), 6u);
    EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
}

TEST_F(ServeHealthTest, PublishMetricsFailureLeavesNoTemp)
{
    ManagedSpool spool("health_metrics_fail");
    spool.start();
    ASSERT_TRUE(io::FaultInjector::global().configure(
        "serve.metrics_write=enospc@1"));
    const std::string path = spool.dir + "/m.metrics";
    std::string error;
    EXPECT_FALSE(serve::publishMetrics(path, &error));
    EXPECT_NE(error.find("enospc"), std::string::npos);
    EXPECT_FALSE(std::filesystem::exists(path));
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
    const auto snapshot =
        obs::MetricsRegistry::global().snapshot();
    EXPECT_EQ(
        snapshot.counterOr("serve.metrics_publish_errors"), 1u);
}

TEST_F(ServeHealthTest, PollRecordsSnapshotWhenFlightEnabled)
{
    obs::FlightRecorder &flight = obs::FlightRecorder::global();
    flight.enable();
    const std::uint64_t before = flight.recorded();
    ManagedSpool spool("health_flight_poll");
    spool.start();
    spool.manager->poll();
    flight.disable();
    EXPECT_GT(flight.recorded(), before);
}

} // namespace
} // namespace tpupoint

/**
 * @file
 * Serve session eviction really releases memory. This binary
 * replaces global operator new/delete with a size-tracking pair
 * (16-byte size prefix, atomic live-byte counter) and drives a
 * SessionManager through several rounds of session churn with
 * immediate eviction. If finalize dropped the tail reader and
 * analysis state but eviction leaked the AnalysisResult — or
 * nothing were released at all — live bytes would grow by roughly
 * the ingested volume every round; with eviction working, each
 * round leaves only a compact SessionStatus behind.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#ifdef __unix__
#include <unistd.h>
#endif

#include "proto/serialize.hh"
#include "serve/serve.hh"
#include "tests/analyzer/synthetic.hh"
#include "trace/record_stream.hh"

// Binary-wide live-byte accounting: every plain new carries a
// size prefix so the matching delete can subtract what it frees.
// The default nothrow forms forward to these; the aligned forms
// are left alone (they pair with aligned delete, never with us).
namespace {
std::atomic<std::uint64_t> live_bytes{0};
constexpr std::size_t kPrefix = alignof(std::max_align_t);
} // namespace

void *
operator new(std::size_t size)
{
    void *raw = std::malloc(size + kPrefix);
    if (!raw)
        throw std::bad_alloc();
    *static_cast<std::size_t *>(raw) = size;
    live_bytes.fetch_add(size, std::memory_order_relaxed);
    return static_cast<char *>(raw) + kPrefix;
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void *p) noexcept
{
    if (!p)
        return;
    void *raw = static_cast<char *>(p) - kPrefix;
    live_bytes.fetch_sub(*static_cast<std::size_t *>(raw),
                         std::memory_order_relaxed);
    std::free(raw);
}

void
operator delete[](void *p) noexcept
{
    ::operator delete(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    ::operator delete(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    ::operator delete(p);
}

namespace tpupoint {
namespace {

std::string
tempDir()
{
    std::string dir = testing::TempDir();
#ifdef __unix__
    dir += std::to_string(getpid()) + ".";
#endif
    dir += "serve_eviction";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

std::string
sessionStream()
{
    std::ostringstream out(std::ios::binary);
    RecordStreamOptions options;
    options.chunk_records = 8;
    RecordStreamWriter writer(out, options);
    const auto steps = testutil::threePhaseRun();
    for (std::size_t i = 0; i < steps.size(); ++i)
        writer.append(encodeProfileRecord(
            testutil::makeRecord({steps[i]}, i)));
    writer.finish();
    return out.str();
}

TEST(ServeEvictionTest, ChurnedSessionsDoNotAccumulateMemory)
{
    const std::string dir = tempDir();
    const std::string stream = sessionStream();

    serve::ServeOptions options;
    options.spool_dir = dir;
    options.threads = 1;
    options.idle_ttl_ms = 3600 * 1000; // Finalize on Complete only.
    options.evict_ttl_ms = 0;          // Evict immediately after.
    options.max_finalizes_per_poll = 16;
    serve::SessionManager manager(options);

    constexpr int kRounds = 6;
    constexpr int kSessionsPerRound = 8;
    const auto runRound = [&](int round) {
        for (int i = 0; i < kSessionsPerRound; ++i) {
            std::ofstream out(dir + "/r" + std::to_string(round) +
                                  "s" + std::to_string(i) + ".tpp",
                              std::ios::binary);
            out.write(stream.data(),
                      static_cast<std::streamsize>(stream.size()));
        }
        // drained() is true between rounds (everything from the
        // last round was evicted), so poll at least once to
        // discover the new files before testing it.
        int polls = 0;
        do {
            manager.poll();
            ++polls;
        } while (!manager.stats().drained() && polls < 100);
        ASSERT_TRUE(manager.stats().drained());
    };

    runRound(0);
    const std::uint64_t baseline =
        live_bytes.load(std::memory_order_relaxed);
    for (int round = 1; round < kRounds; ++round)
        runRound(round);
    const std::uint64_t final_live =
        live_bytes.load(std::memory_order_relaxed);

    const serve::ServeStats stats = manager.stats();
    EXPECT_EQ(stats.sessions,
              static_cast<std::size_t>(kRounds *
                                       kSessionsPerRound));
    EXPECT_EQ(stats.evicted, stats.sessions);

    // (kRounds - 1) extra rounds ingested this much profile data;
    // retaining per-session live state (tail buffers, step tables,
    // analysis results) would hold at least that many bytes live.
    const std::uint64_t ingested = (kRounds - 1) *
        kSessionsPerRound * stream.size();
    const std::uint64_t growth =
        final_live > baseline ? final_live - baseline : 0;
    // What legitimately survives per session is a compact
    // SessionStatus (phase summaries, a labeled gauge entry):
    // a few KB, not the ingested volume.
    EXPECT_LT(growth, ingested / 4)
        << "growth " << growth << " of " << ingested
        << " ingested bytes stayed live across "
        << stats.evicted << " evicted sessions";
    EXPECT_LT(growth, 512u * 1024u);
}

} // namespace
} // namespace tpupoint

/**
 * @file The serve session journal (serve/journal). Pins the entry
 * codec round trip, replay of every damage shape recovery must
 * survive — torn final record, CRC-corrupt entry mid-file,
 * truncated checkpoint, foreign file — last-wins folding of
 * duplicate session entries, compaction, the injected-fault append
 * path (which leaves a *real* torn tail), and concurrent appends
 * (the TSan case).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>
#ifdef __unix__
#include <unistd.h>
#endif

#include "core/io_faults.hh"
#include "serve/journal.hh"

namespace tpupoint {
namespace {

std::string
tempPath(const std::string &name)
{
#ifdef __unix__
    return testing::TempDir() + std::to_string(getpid()) + "." +
        name;
#else
    return testing::TempDir() + name;
#endif
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

void
spit(const std::string &path, std::string_view bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

serve::SessionStatus
makeStatus(const std::string &name, std::uint64_t bytes,
           serve::SessionState state =
               serve::SessionState::Ingesting)
{
    serve::SessionStatus status;
    status.name = name;
    status.path = "/spool/" + name + ".tpp";
    status.state = state;
    status.pending = false;
    status.complete = state == serve::SessionState::Finalized;
    status.records = bytes / 100;
    status.events = bytes / 10;
    status.bytes = bytes;
    status.chunks = bytes / 1000;
    status.error = bytes % 2 ? "salvaged a torn chunk" : "";
    if (state == serve::SessionState::Finalized) {
        status.algorithm = "ols";
        status.steps = 120;
        status.top3_coverage = 0.91;
        serve::PhaseSummary phase;
        phase.id = 1;
        phase.first_step = 3;
        phase.last_step = 90;
        phase.steps = 88;
        phase.duration_ms = 1234.5;
        phase.noise = false;
        status.phases.push_back(phase);
        phase.id = -1;
        phase.noise = true;
        status.phases.push_back(phase);
    }
    return status;
}

struct JournalTest : ::testing::Test
{
    void SetUp() override { io::FaultInjector::global().reset(); }
    void TearDown() override
    {
        io::FaultInjector::global().reset();
    }
};

TEST_F(JournalTest, EntryCodecRoundTripsEveryField)
{
    const serve::SessionStatus in =
        makeStatus("run", 12345, serve::SessionState::Finalized);
    serve::SessionStatus out;
    ASSERT_TRUE(serve::decodeJournalEntry(
        serve::encodeJournalEntry(in), &out));
    EXPECT_EQ(out.name, in.name);
    EXPECT_EQ(out.path, in.path);
    EXPECT_EQ(out.state, in.state);
    EXPECT_EQ(out.pending, in.pending);
    EXPECT_EQ(out.complete, in.complete);
    EXPECT_EQ(out.records, in.records);
    EXPECT_EQ(out.events, in.events);
    EXPECT_EQ(out.bytes, in.bytes);
    EXPECT_EQ(out.chunks, in.chunks);
    EXPECT_EQ(out.error, in.error);
    EXPECT_EQ(out.algorithm, in.algorithm);
    EXPECT_EQ(out.steps, in.steps);
    EXPECT_DOUBLE_EQ(out.top3_coverage, in.top3_coverage);
    ASSERT_EQ(out.phases.size(), in.phases.size());
    EXPECT_EQ(out.phases[0].id, 1);
    EXPECT_EQ(out.phases[0].steps, 88u);
    EXPECT_DOUBLE_EQ(out.phases[0].duration_ms, 1234.5);
    EXPECT_EQ(out.phases[1].id, -1);
    EXPECT_TRUE(out.phases[1].noise);
}

TEST_F(JournalTest, TruncatedOrTrailingBytesFailDecode)
{
    const std::string payload = serve::encodeJournalEntry(
        makeStatus("run", 500));
    serve::SessionStatus out;
    EXPECT_FALSE(serve::decodeJournalEntry(
        std::string_view(payload).substr(0, payload.size() - 1),
        &out));
    EXPECT_FALSE(
        serve::decodeJournalEntry(payload + "x", &out));
    EXPECT_FALSE(serve::decodeJournalEntry("", &out));
}

TEST_F(JournalTest, MissingAndEmptyJournalsReplayClean)
{
    const std::string path = tempPath("journal_absent.tppj");
    std::filesystem::remove(path);
    serve::JournalReplay replay;
    EXPECT_TRUE(serve::replayJournal(path, &replay));
    EXPECT_TRUE(replay.entries.empty());
    EXPECT_FALSE(replay.damaged);

    spit(path, "");
    EXPECT_TRUE(serve::replayJournal(path, &replay));
    EXPECT_TRUE(replay.entries.empty());
    EXPECT_FALSE(replay.damaged);
    std::filesystem::remove(path);
}

TEST_F(JournalTest, ForeignFileIsAnErrorNotASilentWipe)
{
    const std::string path = tempPath("journal_foreign.tppj");
    spit(path, "#!/bin/sh\necho not a journal\n");
    serve::JournalReplay replay;
    std::string why;
    EXPECT_FALSE(serve::replayJournal(path, &replay, &why));
    EXPECT_FALSE(why.empty());
    std::filesystem::remove(path);
}

TEST_F(JournalTest, AppendCommitReplayRoundTrips)
{
    const std::string path = tempPath("journal_roundtrip.tppj");
    std::filesystem::remove(path);
    {
        serve::JournalWriter writer(path);
        ASSERT_TRUE(writer.open());
        ASSERT_TRUE(writer.append(makeStatus("a", 100)));
        ASSERT_TRUE(writer.append(makeStatus("b", 200)));
        ASSERT_TRUE(writer.append(
            makeStatus("a", 900,
                       serve::SessionState::Finalized)));
        ASSERT_TRUE(writer.commit());
        EXPECT_EQ(writer.entriesAppended(), 3u);
        EXPECT_EQ(writer.errors(), 0u);
    }
    serve::JournalReplay replay;
    ASSERT_TRUE(serve::replayJournal(path, &replay));
    EXPECT_FALSE(replay.damaged);
    ASSERT_EQ(replay.entries.size(), 3u);

    // Duplicate session entries fold last-wins, first-appearance
    // order preserved.
    const auto folded =
        serve::foldJournalEntries(replay.entries);
    ASSERT_EQ(folded.size(), 2u);
    EXPECT_EQ(folded[0].name, "a");
    EXPECT_EQ(folded[0].bytes, 900u);
    EXPECT_EQ(folded[0].state, serve::SessionState::Finalized);
    EXPECT_EQ(folded[1].name, "b");
    EXPECT_EQ(folded[1].bytes, 200u);
    std::filesystem::remove(path);
}

TEST_F(JournalTest, TornFinalRecordIsToleratedNotFatal)
{
    const std::string path = tempPath("journal_torn.tppj");
    std::filesystem::remove(path);
    {
        serve::JournalWriter writer(path);
        ASSERT_TRUE(writer.open());
        ASSERT_TRUE(writer.append(makeStatus("a", 100)));
        ASSERT_TRUE(writer.append(makeStatus("b", 200)));
        ASSERT_TRUE(writer.commit());
    }
    // The crash landed mid-append: chop the tail mid-entry.
    const std::string bytes = slurp(path);
    spit(path, std::string_view(bytes)
                   .substr(0, bytes.size() - 7));

    serve::JournalReplay replay;
    ASSERT_TRUE(serve::replayJournal(path, &replay));
    EXPECT_TRUE(replay.damaged);
    EXPECT_FALSE(replay.detail.empty());
    ASSERT_EQ(replay.entries.size(), 1u);
    EXPECT_EQ(replay.entries[0].name, "a");
    std::filesystem::remove(path);
}

TEST_F(JournalTest, CorruptEntryMidFileStopsAtTheLastGoodOne)
{
    const std::string path = tempPath("journal_corrupt.tppj");
    std::filesystem::remove(path);
    std::uint64_t first_end = 0;
    {
        serve::JournalWriter writer(path);
        ASSERT_TRUE(writer.open());
        ASSERT_TRUE(writer.append(makeStatus("a", 100)));
        first_end = writer.size();
        ASSERT_TRUE(writer.append(makeStatus("b", 200)));
        ASSERT_TRUE(writer.append(makeStatus("c", 300)));
        ASSERT_TRUE(writer.commit());
    }
    // Flip one payload byte inside entry "b": its CRC now lies.
    std::string bytes = slurp(path);
    bytes[first_end + 20] ^= 0x40;
    spit(path, bytes);

    serve::JournalReplay replay;
    ASSERT_TRUE(serve::replayJournal(path, &replay));
    EXPECT_TRUE(replay.damaged);
    // Replay must stop — never resync forward past corruption to
    // invent state for "c" that may itself be suspect.
    ASSERT_EQ(replay.entries.size(), 1u);
    EXPECT_EQ(replay.entries[0].name, "a");
    EXPECT_EQ(replay.bytes_replayed, first_end);
    std::filesystem::remove(path);
}

TEST_F(JournalTest, CompactionFoldsHistoryAndKeepsAppending)
{
    const std::string path = tempPath("journal_compact.tppj");
    std::filesystem::remove(path);
    serve::JournalWriter writer(path);
    ASSERT_TRUE(writer.open());
    for (int i = 0; i < 50; ++i)
        ASSERT_TRUE(
            writer.append(makeStatus("a", 100 + 10 * i)));
    ASSERT_TRUE(writer.commit());
    const std::uint64_t before = writer.size();

    std::vector<serve::SessionStatus> snapshot;
    snapshot.push_back(makeStatus("a", 590));
    ASSERT_TRUE(writer.compact(snapshot));
    EXPECT_LT(writer.size(), before);

    // Appends continue on the compacted file.
    ASSERT_TRUE(writer.append(
        makeStatus("a", 700, serve::SessionState::Finalized)));
    ASSERT_TRUE(writer.commit());

    serve::JournalReplay replay;
    ASSERT_TRUE(serve::replayJournal(path, &replay));
    EXPECT_FALSE(replay.damaged);
    ASSERT_EQ(replay.entries.size(), 2u);
    const auto folded =
        serve::foldJournalEntries(replay.entries);
    ASSERT_EQ(folded.size(), 1u);
    EXPECT_EQ(folded[0].bytes, 700u);
    std::filesystem::remove(path);
}

TEST_F(JournalTest, TruncatedCheckpointLeavesOldJournalIntact)
{
    const std::string path = tempPath("journal_ckpt.tppj");
    std::filesystem::remove(path);
    serve::JournalWriter writer(path);
    ASSERT_TRUE(writer.open());
    ASSERT_TRUE(writer.append(makeStatus("a", 100)));
    ASSERT_TRUE(writer.append(makeStatus("a", 200)));
    ASSERT_TRUE(writer.commit());

    // The checkpoint write dies short: compaction must fail
    // without touching the live journal or littering a temp file.
    ASSERT_TRUE(io::FaultInjector::global().configure(
        "serve.journal_checkpoint=short"));
    std::vector<serve::SessionStatus> snapshot;
    snapshot.push_back(makeStatus("a", 200));
    EXPECT_FALSE(writer.compact(snapshot));
    EXPECT_GT(writer.errors(), 0u);
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

    serve::JournalReplay replay;
    ASSERT_TRUE(serve::replayJournal(path, &replay));
    EXPECT_FALSE(replay.damaged);
    EXPECT_EQ(replay.entries.size(), 2u);

    // Same for the rename window (temp written, publish torn).
    io::FaultInjector::global().reset();
    ASSERT_TRUE(io::FaultInjector::global().configure(
        "serve.journal_rename=torn"));
    EXPECT_FALSE(writer.compact(snapshot));
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
    ASSERT_TRUE(serve::replayJournal(path, &replay));
    EXPECT_EQ(replay.entries.size(), 2u);

    // And with the injector quiet again, the same compact works.
    io::FaultInjector::global().reset();
    EXPECT_TRUE(writer.compact(snapshot));
    ASSERT_TRUE(serve::replayJournal(path, &replay));
    EXPECT_EQ(replay.entries.size(), 1u);
    std::filesystem::remove(path);
}

TEST_F(JournalTest, InjectedAppendFaultLeavesARealTornTail)
{
    const std::string path = tempPath("journal_enospc.tppj");
    std::filesystem::remove(path);
    ASSERT_TRUE(io::FaultInjector::global().configure(
        "serve.journal_append=enospc@2"));
    serve::JournalWriter writer(path);
    ASSERT_TRUE(writer.open());
    ASSERT_TRUE(writer.append(makeStatus("a", 100)));
    // The disk fills mid-append: half a frame lands.
    EXPECT_FALSE(writer.append(makeStatus("b", 200)));
    EXPECT_GT(writer.errors(), 0u);
    ASSERT_TRUE(writer.commit());

    // Replay walks the good prefix and discards the torn tail —
    // the exact recovery path a real ENOSPC crash exercises.
    serve::JournalReplay replay;
    ASSERT_TRUE(serve::replayJournal(path, &replay));
    EXPECT_TRUE(replay.damaged);
    ASSERT_EQ(replay.entries.size(), 1u);
    EXPECT_EQ(replay.entries[0].name, "a");
    std::filesystem::remove(path);
}

TEST_F(JournalTest, ConcurrentAppendsAreSerializedSafely)
{
    const std::string path = tempPath("journal_threads.tppj");
    std::filesystem::remove(path);
    serve::JournalWriter writer(path);
    ASSERT_TRUE(writer.open());

    // Commit-while-ingest: several threads hammer append/commit/
    // size concurrently. TSan runs this binary; every frame must
    // land whole.
    constexpr int kThreads = 4;
    constexpr int kAppends = 25;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&writer, t] {
            for (int i = 0; i < kAppends; ++i) {
                writer.append(makeStatus(
                    "s" + std::to_string(t),
                    static_cast<std::uint64_t>(100 * i)));
                if (i % 5 == 0)
                    writer.commit();
                (void)writer.size();
            }
        });
    for (std::thread &thread : threads)
        thread.join();
    ASSERT_TRUE(writer.commit());
    EXPECT_EQ(writer.entriesAppended(),
              static_cast<std::uint64_t>(kThreads * kAppends));

    serve::JournalReplay replay;
    ASSERT_TRUE(serve::replayJournal(path, &replay));
    EXPECT_FALSE(replay.damaged);
    EXPECT_EQ(replay.entries.size(),
              static_cast<std::size_t>(kThreads * kAppends));
    EXPECT_EQ(serve::foldJournalEntries(replay.entries).size(),
              static_cast<std::size_t>(kThreads));
    std::filesystem::remove(path);
}

} // namespace
} // namespace tpupoint

/**
 * @file serve::SessionManager: the tpupoint-serve daemon core.
 * Pins the session lifecycle (discovering → ingesting → quiescent
 * → finalized → evicted) against an injected clock, the streaming
 * layer's "pending, no data yet" semantics for a live truncated
 * trace, per-session-labeled ingest metrics that concurrent
 * sessions cannot clobber, concurrent many-session ingest over the
 * shared pool (the interner/metrics race test the TSan suite
 * walks), and the status-document query path.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>
#ifdef __unix__
#include <unistd.h>
#endif

#include "core/json.hh"
#include "obs/metrics.hh"
#include "proto/serialize.hh"
#include "serve/serve.hh"
#include "tests/analyzer/synthetic.hh"
#include "trace/record_stream.hh"

namespace tpupoint {
namespace {

std::string
tempDir(const std::string &name)
{
    std::string dir = testing::TempDir();
#ifdef __unix__
    dir += std::to_string(getpid()) + ".";
#endif
    dir += name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

/** The canonical three-phase run as a multi-chunk stream. */
std::string
analyzableStream()
{
    std::ostringstream out(std::ios::binary);
    RecordStreamOptions options;
    options.chunk_records = 4;
    RecordStreamWriter writer(out, options);
    const auto steps = testutil::threePhaseRun();
    // One record per step so the stream spans many chunks.
    for (std::size_t i = 0; i < steps.size(); ++i)
        writer.append(encodeProfileRecord(
            testutil::makeRecord({steps[i]}, i)));
    writer.finish();
    return out.str();
}

void
writeFile(const std::string &path, std::string_view bytes)
{
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

/** Manager wired to a fake clock the test advances. */
struct ManagedSpool
{
    explicit ManagedSpool(const std::string &dir_name,
                          unsigned threads = 1)
        : dir(tempDir(dir_name))
    {
        options.spool_dir = dir;
        options.threads = threads;
        options.idle_ttl_ms = 1000;
        options.evict_ttl_ms = 5000;
        options.now_ms = [this] { return now; };
        manager = std::make_unique<serve::SessionManager>(options);
    }

    const serve::SessionStatus &
    status(const std::string &name)
    {
        statuses = manager->sessions();
        for (const auto &status : statuses)
            if (status.name == name)
                return status;
        static serve::SessionStatus missing;
        ADD_FAILURE() << "no session named " << name;
        return missing;
    }

    std::string dir;
    serve::ServeOptions options;
    std::int64_t now = 0;
    std::unique_ptr<serve::SessionManager> manager;
    std::vector<serve::SessionStatus> statuses;
};

TEST(ServeTest, CompleteStreamFinalizesImmediately)
{
    ManagedSpool spool("serve_complete");
    writeFile(spool.dir + "/run.tpp", analyzableStream());
    spool.manager->poll(); // Discover + ingest to Complete.
    spool.manager->poll(); // Finalize.
    const auto &status = spool.status("run");
    EXPECT_EQ(status.state, serve::SessionState::Finalized);
    EXPECT_TRUE(status.complete);
    EXPECT_FALSE(status.pending);
    EXPECT_GT(status.records, 0u);
    EXPECT_GT(status.steps, 0u);
    EXPECT_FALSE(status.phases.empty());
    EXPECT_GT(status.top3_coverage, 0.0);
    EXPECT_TRUE(status.error.empty());
}

TEST(ServeTest, LiveTraceWithNoRecordsYetIsPendingNotEmpty)
{
    ManagedSpool spool("serve_pending");
    const std::string bytes = analyzableStream();
    // Header plus a sliver of the first chunk: zero complete
    // records, but the writer may still be appending.
    writeFile(spool.dir + "/young.tpp",
              std::string_view(bytes).substr(0, 14));
    spool.manager->poll();
    const auto &status = spool.status("young");
    EXPECT_TRUE(status.pending);
    EXPECT_EQ(status.records, 0u);
    EXPECT_TRUE(status.error.empty());
    // The header's bytes count as progress, so the session is
    // already Ingesting — but still pending, never Empty.
    EXPECT_EQ(status.state, serve::SessionState::Ingesting);
}

TEST(ServeTest, QuiescentStreamFinalizesAfterIdleTtl)
{
    ManagedSpool spool("serve_quiescent");
    const std::string bytes = analyzableStream();
    // Most of the stream, cut mid-chunk, never completed.
    writeFile(spool.dir + "/dead.tpp",
              std::string_view(bytes).substr(
                  0, bytes.size() * 2 / 3 + 3));
    spool.manager->poll();
    EXPECT_EQ(spool.status("dead").state,
              serve::SessionState::Ingesting);

    // Writer stays silent past the idle TTL: declared dead,
    // analyzed with what salvage recovered.
    spool.now += spool.options.idle_ttl_ms + 1;
    spool.manager->poll(); // Notices quiescence.
    spool.manager->poll(); // Finalizes.
    const auto &status = spool.status("dead");
    EXPECT_EQ(status.state, serve::SessionState::Finalized);
    EXPECT_FALSE(status.pending);
    EXPECT_GT(status.records, 0u);
    EXPECT_GT(status.steps, 0u);
}

TEST(ServeTest, RecordlessStreamDeclaredDeadReportsNoRecords)
{
    ManagedSpool spool("serve_recordless");
    const std::string bytes = analyzableStream();
    writeFile(spool.dir + "/empty.tpp",
              std::string_view(bytes).substr(0, 10));
    spool.manager->poll();
    EXPECT_TRUE(spool.status("empty").pending);
    spool.now += spool.options.idle_ttl_ms + 1;
    spool.manager->poll();
    spool.manager->poll();
    const auto &status = spool.status("empty");
    EXPECT_EQ(status.state, serve::SessionState::Finalized);
    // Once declared dead, "pending" resolves to a final verdict.
    EXPECT_FALSE(status.pending);
    EXPECT_EQ(status.records, 0u);
    EXPECT_EQ(status.error, "stream ended with no records");
}

TEST(ServeTest, EvictionReleasesResultKeepsSummary)
{
    ManagedSpool spool("serve_evict");
    writeFile(spool.dir + "/run.tpp", analyzableStream());
    spool.manager->poll();
    spool.manager->poll();
    ASSERT_EQ(spool.status("run").state,
              serve::SessionState::Finalized);
    const auto summary = spool.status("run").phases;
    ASSERT_FALSE(summary.empty());

    spool.now += spool.options.evict_ttl_ms + 1;
    spool.manager->poll();
    const auto &status = spool.status("run");
    EXPECT_EQ(status.state, serve::SessionState::Evicted);
    // The compact summary survives eviction for queries.
    EXPECT_EQ(status.phases.size(), summary.size());
    EXPECT_GT(status.top3_coverage, 0.0);

    const serve::ServeStats stats = spool.manager->stats();
    EXPECT_EQ(stats.evicted, 1u);
    EXPECT_TRUE(stats.drained());
}

TEST(ServeTest, PerSessionIngestMetricsDoNotClobber)
{
    auto &registry = obs::MetricsRegistry::global();
    registry.reset();
    ManagedSpool spool("serve_metrics");
    const std::string bytes = analyzableStream();
    writeFile(spool.dir + "/alpha.tpp", bytes);
    // Different size so equal rates are unlikely even in theory.
    writeFile(spool.dir + "/beta.tpp",
              std::string_view(bytes).substr(
                  0, bytes.size() / 2 + 5));
    spool.manager->poll();

    const obs::MetricsSnapshot snapshot = registry.snapshot();
    const auto alpha = snapshot.gauges.find(
        "analyzer.ingest_bytes_per_sec{session=alpha}");
    const auto beta = snapshot.gauges.find(
        "analyzer.ingest_bytes_per_sec{session=beta}");
    ASSERT_NE(alpha, snapshot.gauges.end());
    ASSERT_NE(beta, snapshot.gauges.end());
    EXPECT_GT(alpha->second, 0);
    EXPECT_GT(beta->second, 0);
    // Both passes also landed in the aggregate histogram.
    const auto aggregate = snapshot.histograms.find(
        "analyzer.ingest_bytes_per_sec");
    ASSERT_NE(aggregate, snapshot.histograms.end());
    EXPECT_GE(aggregate->second.count, 2u);
    // The per-chunk ingest latency histogram saw every chunk.
    const auto latency =
        snapshot.histograms.find("serve.ingest_chunk_us");
    ASSERT_NE(latency, snapshot.histograms.end());
    EXPECT_GT(latency->second.count, 0u);
}

// Many sessions ingesting concurrently on a real pool: every
// worker interns op names into the global StringInterner and
// observes shared registry instruments at once. The TSan suite
// runs this against the thread sanitizer.
TEST(ServeTest, ConcurrentSessionsIngestSafely)
{
    ManagedSpool spool("serve_concurrent", /*threads=*/8);
    spool.options.idle_ttl_ms = 0;
    const std::string bytes = analyzableStream();
    constexpr int kSessions = 24;
    for (int i = 0; i < kSessions; ++i)
        writeFile(spool.dir + "/s" + std::to_string(i) + ".tpp",
                  bytes);
    int polls = 0;
    while (!spool.manager->stats().drained() && polls < 200) {
        spool.manager->poll();
        spool.now += 10;
        ++polls;
    }
    const serve::ServeStats stats = spool.manager->stats();
    EXPECT_EQ(stats.sessions,
              static_cast<std::size_t>(kSessions));
    EXPECT_EQ(stats.finalized + stats.evicted,
              static_cast<std::size_t>(kSessions));
    for (const auto &status : spool.manager->sessions()) {
        EXPECT_TRUE(status.complete);
        EXPECT_GT(status.steps, 0u);
        EXPECT_TRUE(status.error.empty()) << status.error;
    }
}

TEST(ServeTest, FinalizesAreCappedPerPoll)
{
    ManagedSpool spool("serve_capped");
    spool.options.max_finalizes_per_poll = 1;
    spool.manager = std::make_unique<serve::SessionManager>(
        spool.options);
    const std::string bytes = analyzableStream();
    for (int i = 0; i < 3; ++i)
        writeFile(spool.dir + "/s" + std::to_string(i) + ".tpp",
                  bytes);
    // Each poll ingests then finalizes at most one session.
    spool.manager->poll();
    EXPECT_EQ(spool.manager->stats().finalized, 1u);
    spool.manager->poll();
    EXPECT_EQ(spool.manager->stats().finalized, 2u);
    spool.manager->poll();
    EXPECT_EQ(spool.manager->stats().finalized, 3u);
}

TEST(ServeTest, StatusJsonValidatesAndSectionsExtract)
{
    ManagedSpool spool("serve_status");
    writeFile(spool.dir + "/run.tpp", analyzableStream());
    spool.manager->poll();
    spool.manager->poll();

    std::ostringstream out;
    spool.manager->writeStatusJson(out);
    const std::string status = out.str();
    std::string why;
    EXPECT_TRUE(validateJson(status, &why)) << why;

    for (const char *section :
         {"sessions", "phases", "coverage", "stats"}) {
        std::string value;
        ASSERT_TRUE(serve::extractStatusSection(status, section,
                                                &value))
            << section;
        EXPECT_TRUE(validateJson(value, &why))
            << section << ": " << why;
    }
    std::string value;
    EXPECT_FALSE(
        serve::extractStatusSection(status, "nope", &value));

    // The phases section names the finalized session.
    ASSERT_TRUE(
        serve::extractStatusSection(status, "phases", &value));
    EXPECT_NE(value.find("\"run\""), std::string::npos);
}

// A writer mid-stream: live phases publish while the session is
// still ingesting, marked inexact and staleness-stamped, then the
// finalize pass replaces them with the exact answer.
TEST(ServeTest, LivePhasesPublishMidIngest)
{
    ManagedSpool spool("serve_live_phases");
    const std::string bytes = analyzableStream();
    // Most of the stream, cut mid-chunk: ingest makes progress
    // but the session stays live.
    writeFile(spool.dir + "/grow.tpp",
              std::string_view(bytes).substr(
                  0, bytes.size() * 2 / 3));
    spool.manager->poll();

    const auto mid = spool.status("grow");
    ASSERT_EQ(mid.state, serve::SessionState::Ingesting);
    EXPECT_EQ(mid.detector, "OLS");
    EXPECT_FALSE(mid.phases.empty());
    EXPECT_FALSE(mid.phases_exact);
    EXPECT_GT(mid.steps_behind, 0u);
    EXPECT_GT(mid.top3_coverage, 0.0);

    // The status document answers `--query phases` for the live
    // session, carrying the staleness fields.
    std::ostringstream out;
    spool.manager->writeStatusJson(out);
    std::string section;
    ASSERT_TRUE(serve::extractStatusSection(out.str(), "phases",
                                            &section));
    EXPECT_NE(section.find("\"grow\""), std::string::npos);
    EXPECT_NE(section.find("steps_behind"), std::string::npos);
    std::string coverage;
    ASSERT_TRUE(serve::extractStatusSection(out.str(), "coverage",
                                            &coverage));
    EXPECT_NE(coverage.find("\"grow\""), std::string::npos);

    // The writer finishes; finalize supersedes the snapshot with
    // the exact batch answer and the staleness drains to zero.
    writeFile(spool.dir + "/grow.tpp", bytes);
    spool.manager->poll(); // Ingest the rest (complete).
    spool.manager->poll(); // Finalize.
    const auto &fin = spool.status("grow");
    EXPECT_EQ(fin.state, serve::SessionState::Finalized);
    EXPECT_TRUE(fin.phases_exact);
    EXPECT_EQ(fin.steps_behind, 0u);
    EXPECT_FALSE(fin.phases.empty());
    EXPECT_GT(fin.top3_coverage, 0.0);
}

// --no-live-phases: mid-ingest queries stay quiet, finalize-only
// answers exactly as before the streaming path existed.
TEST(ServeTest, LivePhasesDisabledKeepsMidIngestQuiet)
{
    ManagedSpool spool("serve_no_live");
    spool.options.live_phases = false;
    spool.manager =
        std::make_unique<serve::SessionManager>(spool.options);
    const std::string bytes = analyzableStream();
    writeFile(spool.dir + "/still.tpp",
              std::string_view(bytes).substr(
                  0, bytes.size() * 2 / 3));
    spool.manager->poll();
    const auto mid = spool.status("still");
    ASSERT_EQ(mid.state, serve::SessionState::Ingesting);
    EXPECT_TRUE(mid.phases.empty());
    EXPECT_EQ(mid.top3_coverage, 0.0);

    writeFile(spool.dir + "/still.tpp", bytes);
    spool.manager->poll();
    spool.manager->poll();
    const auto &fin = spool.status("still");
    EXPECT_EQ(fin.state, serve::SessionState::Finalized);
    EXPECT_TRUE(fin.phases_exact);
    EXPECT_FALSE(fin.phases.empty());
}

// Restart mid-ingest: recovery replays the spool through the
// streaming session and re-derives the same live snapshot the
// lost process had published.
TEST(ServeTest, RestartMidIngestRecoversLivePhases)
{
    ManagedSpool spool("serve_live_restart");
    spool.options.journal_path =
        spool.dir + "/serve.journal";
    spool.manager =
        std::make_unique<serve::SessionManager>(spool.options);
    const std::string bytes = analyzableStream();
    writeFile(spool.dir + "/grow.tpp",
              std::string_view(bytes).substr(
                  0, bytes.size() * 2 / 3));
    spool.manager->poll();
    const auto before = spool.status("grow");
    ASSERT_EQ(before.state, serve::SessionState::Ingesting);
    ASSERT_FALSE(before.phases.empty());
    ASSERT_TRUE(spool.manager->commitJournal());

    // "Crash" and restart against the same spool + journal.
    spool.manager =
        std::make_unique<serve::SessionManager>(spool.options);
    const auto after = spool.status("grow");
    EXPECT_EQ(after.state, serve::SessionState::Ingesting);
    EXPECT_EQ(after.detector, "OLS");
    EXPECT_FALSE(after.phases_exact);
    ASSERT_EQ(after.phases.size(), before.phases.size());
    for (std::size_t i = 0; i < after.phases.size(); ++i) {
        EXPECT_EQ(after.phases[i].first_step,
                  before.phases[i].first_step);
        EXPECT_EQ(after.phases[i].last_step,
                  before.phases[i].last_step);
        EXPECT_EQ(after.phases[i].steps, before.phases[i].steps);
    }
    EXPECT_DOUBLE_EQ(after.top3_coverage, before.top3_coverage);

    // The recovered session still finalizes normally.
    writeFile(spool.dir + "/grow.tpp", bytes);
    spool.manager->poll();
    spool.manager->poll();
    const auto &fin = spool.status("grow");
    EXPECT_EQ(fin.state, serve::SessionState::Finalized);
    EXPECT_TRUE(fin.phases_exact);
    EXPECT_EQ(fin.steps_behind, 0u);
}

TEST(ServeTest, ExtractSectionSurvivesTrickyStrings)
{
    const std::string doc =
        "{\"a\":\"s{[\\\"x\\\"]}\",\"list\":[1,2,{\"k\":\"}\"}],"
        "\"b\":{\"n\":-1.5e3,\"t\":true}}";
    std::string value;
    ASSERT_TRUE(serve::extractStatusSection(doc, "list", &value));
    EXPECT_EQ(value, "[1,2,{\"k\":\"}\"}]");
    ASSERT_TRUE(serve::extractStatusSection(doc, "b", &value));
    EXPECT_EQ(value, "{\"n\":-1.5e3,\"t\":true}");
    ASSERT_TRUE(serve::extractStatusSection(doc, "a", &value));
    EXPECT_EQ(value, "\"s{[\\\"x\\\"]}\"");
    EXPECT_FALSE(serve::extractStatusSection(doc, "n", &value));
}

} // namespace
} // namespace tpupoint

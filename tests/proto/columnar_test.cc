/**
 * @file
 * Columnar record decode: equivalence with the row decoder, buffer
 * reuse, and the steady-state zero-allocation guarantee of the
 * analyzer's read loop.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>

#include "core/rng.hh"
#include "proto/serialize.hh"

// Binary-wide allocation counter: every operator new in this test
// binary bumps it, so a test can assert that a code region
// performed no heap allocation at all.
namespace {
std::atomic<std::uint64_t> allocation_count{0};
}

void *
operator new(std::size_t size)
{
    allocation_count.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace tpupoint {
namespace {

/** A record over a small fixed op vocabulary. */
ProfileRecord
vocabRecord(Rng &rng, std::uint64_t sequence)
{
    ProfileRecord record;
    record.sequence = sequence;
    record.window_begin =
        static_cast<SimTime>(sequence * 1000);
    record.window_end = record.window_begin + 1000;
    record.event_count = 10 + rng.nextBounded(100);
    record.tpu_idle_fraction = rng.nextDouble();
    record.mxu_utilization = rng.nextDouble();
    const char *tpu_names[] = {"fusion", "MatMul", "Reshape",
                               "CrossReplicaSum"};
    const char *host_names[] = {"InfeedEnqueueTuple", "RunGraph"};
    for (std::size_t i = 0; i < 3; ++i) {
        StepStats step;
        step.step = sequence * 3 + i;
        step.begin = static_cast<SimTime>(step.step * 100);
        step.end = step.begin + 100;
        step.tpu_busy = 60;
        step.tpu_idle = 40;
        step.mxu_active = 30;
        for (const char *name : tpu_names) {
            OpStats stats;
            stats.count = 1 + rng.nextBounded(20);
            stats.total_duration =
                static_cast<SimTime>(rng.nextBounded(10000));
            step.tpu_ops[name] = stats;
        }
        for (const char *name : host_names) {
            OpStats stats;
            stats.count = 1 + rng.nextBounded(5);
            stats.total_duration =
                static_cast<SimTime>(rng.nextBounded(10000));
            step.host_ops[name] = stats;
        }
        record.steps.push_back(std::move(step));
    }
    return record;
}

/** Columnar ops of step @p i resolved back to a name-keyed map. */
OpStatsMap
materialize(OpStatsSpan ops)
{
    const StringInterner &interner = StringInterner::global();
    OpStatsMap out;
    for (const ColumnarOpStats &entry : ops) {
        OpStats &stats = out[std::string(interner.view(entry.op))];
        stats.count = entry.count;
        stats.total_duration = entry.total_duration;
    }
    return out;
}

void
expectSameStats(const OpStatsMap &expected, const OpStatsMap &got)
{
    ASSERT_EQ(expected.size(), got.size());
    for (const auto &[name, stats] : expected) {
        ASSERT_TRUE(got.count(name)) << name;
        EXPECT_EQ(stats.count, got.at(name).count);
        EXPECT_EQ(stats.total_duration,
                  got.at(name).total_duration);
    }
}

TEST(ColumnarTest, MatchesRowDecode)
{
    Rng rng(11);
    std::stringstream buffer;
    ProfileWriter writer(buffer);
    for (std::uint64_t i = 0; i < 8; ++i)
        writer.write(vocabRecord(rng, i));
    writer.finish();
    const std::string bytes = buffer.str();

    std::istringstream row_in(bytes);
    std::istringstream col_in(bytes);
    ProfileReader row_reader(row_in);
    ProfileReader col_reader(col_in);
    ProfileRecord row;
    ColumnarRecord col;
    while (row_reader.read(row)) {
        ASSERT_TRUE(col_reader.read(col));
        EXPECT_EQ(row.sequence, col.sequence);
        EXPECT_EQ(row.window_begin, col.window_begin);
        EXPECT_EQ(row.window_end, col.window_end);
        EXPECT_EQ(row.event_count, col.event_count);
        EXPECT_EQ(row.truncated, col.truncated);
        EXPECT_DOUBLE_EQ(row.tpu_idle_fraction,
                         col.tpu_idle_fraction);
        EXPECT_DOUBLE_EQ(row.mxu_utilization,
                         col.mxu_utilization);
        ASSERT_EQ(row.steps.size(), col.stepCount());
        for (std::size_t i = 0; i < col.stepCount(); ++i) {
            const StepStats &step = row.steps[i];
            EXPECT_EQ(step.step, col.step[i]);
            EXPECT_EQ(step.begin, col.begin[i]);
            EXPECT_EQ(step.end, col.end[i]);
            EXPECT_EQ(step.tpu_busy, col.tpu_busy[i]);
            EXPECT_EQ(step.tpu_idle, col.tpu_idle[i]);
            EXPECT_EQ(step.mxu_active, col.mxu_active[i]);
            EXPECT_EQ(step.span(), col.stepSpan(i));
            expectSameStats(step.host_ops,
                            materialize(col.hostOps(i)));
            expectSameStats(step.tpu_ops,
                            materialize(col.tpuOps(i)));
        }
    }
    ASSERT_FALSE(col_reader.read(col));
}

TEST(ColumnarTest, EntriesAreIdSortedWithinStep)
{
    Rng rng(12);
    std::stringstream buffer;
    ProfileWriter writer(buffer);
    writer.write(vocabRecord(rng, 0));
    writer.finish();
    ProfileReader reader(buffer);
    ColumnarRecord record;
    ASSERT_TRUE(reader.read(record));
    for (std::size_t i = 0; i < record.stepCount(); ++i) {
        for (OpStatsSpan ops :
             {record.hostOps(i), record.tpuOps(i)}) {
            for (std::size_t k = 1; k < ops.size(); ++k)
                EXPECT_LT(ops[k - 1].op, ops[k].op);
        }
    }
}

TEST(ColumnarTest, ClearRetainsCapacity)
{
    ColumnarRecord record;
    record.step.assign(100, 0);
    record.tpu_ops.assign(400, {});
    const std::size_t step_cap = record.step.capacity();
    const std::size_t ops_cap = record.tpu_ops.capacity();
    record.clear();
    EXPECT_EQ(record.stepCount(), 0u);
    EXPECT_TRUE(record.tpu_ops.empty());
    EXPECT_EQ(record.step.capacity(), step_cap);
    EXPECT_EQ(record.tpu_ops.capacity(), ops_cap);
}

TEST(ColumnarTest, SteadyStateReadLoopDoesNotAllocate)
{
    // A long stream over a fixed op vocabulary: after a warm-up
    // prefix has sized the chunk buffer, the reused record and the
    // interner, the remaining reads must perform zero heap
    // allocations (the tentpole guarantee of the columnar path).
    Rng rng(13);
    std::stringstream buffer;
    ProfileWriter writer(buffer);
    constexpr std::uint64_t kRecords = 200;
    for (std::uint64_t i = 0; i < kRecords; ++i)
        writer.write(vocabRecord(rng, i));
    writer.finish();

    ProfileReader reader(buffer);
    ColumnarRecord record;
    std::uint64_t produced = 0;
    for (; produced < kRecords / 2; ++produced)
        ASSERT_TRUE(reader.read(record));

    const std::uint64_t growths_before = reader.bufferGrowths();
    const std::uint64_t allocations_before =
        allocation_count.load(std::memory_order_relaxed);
    while (reader.read(record))
        ++produced;
    const std::uint64_t allocations_after =
        allocation_count.load(std::memory_order_relaxed);

    EXPECT_EQ(produced, kRecords);
    EXPECT_EQ(allocations_after - allocations_before, 0u);
    EXPECT_EQ(reader.bufferGrowths(), growths_before);
}

} // namespace
} // namespace tpupoint

/** @file Statistical record aggregation semantics. */

#include <gtest/gtest.h>

#include <stdexcept>

#include "proto/record.hh"

namespace tpupoint {
namespace {

TraceEvent
makeEvent(const char *type, SimTime start, SimTime duration,
          StepId step, EventDevice device,
          SimTime mxu_active = 0)
{
    TraceEvent e;
    e.type = type;
    e.start = start;
    e.duration = duration;
    e.step = step;
    e.device = device;
    e.mxu = mxu_active > 0;
    e.mxu_active = mxu_active;
    return e;
}

TEST(StepStatsTest, AccumulatesOpStatistics)
{
    StepStats s;
    s.step = 4;
    s.add(makeEvent("MatMul", 10, 5, 4, EventDevice::Tpu, 2));
    s.add(makeEvent("MatMul", 20, 7, 4, EventDevice::Tpu, 3));
    s.add(makeEvent("RunGraph", 0, 3, 4, EventDevice::Host));

    EXPECT_EQ(s.tpu_ops.at("MatMul").count, 2u);
    EXPECT_EQ(s.tpu_ops.at("MatMul").total_duration, 12);
    EXPECT_EQ(s.host_ops.at("RunGraph").count, 1u);
    EXPECT_EQ(s.tpu_busy, 12);
    EXPECT_EQ(s.mxu_active, 5);
    EXPECT_EQ(s.begin, 0);
    EXPECT_EQ(s.end, 27);
    EXPECT_EQ(s.span(), 27);
}

TEST(StepStatsTest, InfeedWaitCountsAsIdleNotBusy)
{
    StepStats s;
    s.step = 1;
    s.add(makeEvent("Infeed", 0, 100, 1, EventDevice::Tpu));
    s.add(makeEvent("MatMul", 100, 50, 1, EventDevice::Tpu, 10));
    EXPECT_EQ(s.tpu_idle, 100);
    EXPECT_EQ(s.tpu_busy, 50);
}

TEST(StepStatsTest, MergeCombinesMaps)
{
    StepStats a, b;
    a.step = b.step = 3;
    a.add(makeEvent("MatMul", 0, 5, 3, EventDevice::Tpu, 1));
    b.add(makeEvent("MatMul", 50, 7, 3, EventDevice::Tpu, 2));
    b.add(makeEvent("Relu", 57, 1, 3, EventDevice::Tpu));
    a.merge(b);
    EXPECT_EQ(a.tpu_ops.at("MatMul").count, 2u);
    EXPECT_EQ(a.tpu_ops.at("Relu").count, 1u);
    EXPECT_EQ(a.tpu_busy, 13);
    EXPECT_EQ(a.mxu_active, 3);
    EXPECT_EQ(a.end, 58);
}

TEST(StepStatsTest, MergeDifferentStepsPanics)
{
    StepStats a, b;
    a.step = 1;
    b.step = 2;
    EXPECT_THROW(a.merge(b), std::logic_error);
}

TEST(StepStatsTest, OpSetIsPrefixedAndSorted)
{
    StepStats s;
    s.step = 0;
    s.add(makeEvent("MatMul", 0, 1, 0, EventDevice::Tpu));
    s.add(makeEvent("RunGraph", 0, 1, 0, EventDevice::Host));
    s.add(makeEvent("Relu", 0, 1, 0, EventDevice::Tpu));
    const auto set = s.opSet();
    ASSERT_EQ(set.size(), 3u);
    EXPECT_EQ(set[0], "host:RunGraph");
    EXPECT_EQ(set[1], "tpu:MatMul");
    EXPECT_EQ(set[2], "tpu:Relu");
}

TEST(ProfileRecordTest, TotalOpCount)
{
    ProfileRecord record;
    StepStats s;
    s.step = 0;
    s.add(makeEvent("MatMul", 0, 1, 0, EventDevice::Tpu));
    s.add(makeEvent("MatMul", 1, 1, 0, EventDevice::Tpu));
    s.add(makeEvent("RunGraph", 0, 1, 0, EventDevice::Host));
    record.steps.push_back(s);
    EXPECT_EQ(record.totalOpCount(), 3u);
    record.window_begin = 10;
    record.window_end = 50;
    EXPECT_EQ(record.span(), 40);
}

} // namespace
} // namespace tpupoint

/** @file Profile binary serialization round trip. */

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "core/rng.hh"
#include "proto/serialize.hh"

namespace tpupoint {
namespace {

/** Build a deterministic pseudo-random record. */
ProfileRecord
randomRecord(Rng &rng, std::uint64_t sequence)
{
    ProfileRecord record;
    record.sequence = sequence;
    record.window_begin =
        static_cast<SimTime>(rng.nextBounded(1u << 30));
    record.window_end = record.window_begin +
        static_cast<SimTime>(rng.nextBounded(1u << 30));
    record.event_count = rng.nextBounded(100000);
    record.truncated = rng.bernoulli(0.3);
    record.events_dropped =
        record.truncated ? 1 + rng.nextBounded(5000) : 0;
    record.tpu_idle_fraction = rng.nextDouble();
    record.mxu_utilization = rng.nextDouble();
    record.retries = rng.nextBounded(100);
    record.retry_time =
        static_cast<SimTime>(rng.nextBounded(1u << 30));

    const std::size_t steps = 1 + rng.nextBounded(5);
    for (std::size_t i = 0; i < steps; ++i) {
        StepStats step;
        step.step = sequence * 100 + i;
        step.begin = static_cast<SimTime>(rng.nextBounded(1000));
        step.end = step.begin +
            static_cast<SimTime>(rng.nextBounded(10000));
        step.tpu_busy =
            static_cast<SimTime>(rng.nextBounded(5000));
        step.tpu_idle =
            static_cast<SimTime>(rng.nextBounded(5000));
        step.mxu_active =
            static_cast<SimTime>(rng.nextBounded(2000));
        const char *tpu_names[] = {"fusion", "MatMul", "Reshape"};
        const char *host_names[] = {"OutfeedDequeueTuple",
                                    "RunGraph"};
        for (const char *name : tpu_names) {
            OpStats stats;
            stats.count = 1 + rng.nextBounded(50);
            stats.total_duration =
                static_cast<SimTime>(rng.nextBounded(100000));
            step.tpu_ops[name] = stats;
        }
        for (const char *name : host_names) {
            OpStats stats;
            stats.count = 1 + rng.nextBounded(10);
            stats.total_duration =
                static_cast<SimTime>(rng.nextBounded(100000));
            step.host_ops[name] = stats;
        }
        record.steps.push_back(std::move(step));
    }
    return record;
}

void
expectEqualRecords(const ProfileRecord &a, const ProfileRecord &b)
{
    EXPECT_EQ(a.sequence, b.sequence);
    EXPECT_EQ(a.window_begin, b.window_begin);
    EXPECT_EQ(a.window_end, b.window_end);
    EXPECT_EQ(a.event_count, b.event_count);
    EXPECT_EQ(a.truncated, b.truncated);
    EXPECT_DOUBLE_EQ(a.tpu_idle_fraction, b.tpu_idle_fraction);
    EXPECT_DOUBLE_EQ(a.mxu_utilization, b.mxu_utilization);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.retry_time, b.retry_time);
    EXPECT_EQ(a.attempt, b.attempt);
    EXPECT_EQ(a.attempt_boundary, b.attempt_boundary);
    EXPECT_EQ(a.preempted_at_step, b.preempted_at_step);
    EXPECT_EQ(a.resume_step, b.resume_step);
    EXPECT_EQ(a.events_dropped, b.events_dropped);
    ASSERT_EQ(a.steps.size(), b.steps.size());
    for (std::size_t i = 0; i < a.steps.size(); ++i) {
        const StepStats &x = a.steps[i];
        const StepStats &y = b.steps[i];
        EXPECT_EQ(x.step, y.step);
        EXPECT_EQ(x.begin, y.begin);
        EXPECT_EQ(x.end, y.end);
        EXPECT_EQ(x.tpu_busy, y.tpu_busy);
        EXPECT_EQ(x.tpu_idle, y.tpu_idle);
        EXPECT_EQ(x.mxu_active, y.mxu_active);
        ASSERT_EQ(x.tpu_ops.size(), y.tpu_ops.size());
        for (const auto &[name, stats] : x.tpu_ops) {
            ASSERT_TRUE(y.tpu_ops.count(name));
            EXPECT_EQ(stats.count, y.tpu_ops.at(name).count);
            EXPECT_EQ(stats.total_duration,
                      y.tpu_ops.at(name).total_duration);
        }
        ASSERT_EQ(x.host_ops.size(), y.host_ops.size());
    }
}

TEST(SerializeTest, RoundTripSingleRecord)
{
    Rng rng(1);
    const ProfileRecord original = randomRecord(rng, 0);
    std::stringstream buffer;
    ProfileWriter writer(buffer);
    writer.write(original);
    writer.finish();
    EXPECT_EQ(writer.written(), 1u);

    ProfileReader reader(buffer);
    ProfileRecord decoded;
    ASSERT_TRUE(reader.read(decoded));
    expectEqualRecords(original, decoded);
    ASSERT_FALSE(reader.read(decoded)); // clean EOF
}

TEST(SerializeTest, RoundTripManyRecordsFuzz)
{
    Rng rng(99);
    std::vector<ProfileRecord> originals;
    std::stringstream buffer;
    ProfileWriter writer(buffer);
    for (std::uint64_t i = 0; i < 25; ++i) {
        originals.push_back(randomRecord(rng, i));
        writer.write(originals.back());
    }
    writer.finish();
    ProfileReader reader(buffer);
    const std::vector<ProfileRecord> decoded = reader.readAll();
    ASSERT_EQ(decoded.size(), originals.size());
    for (std::size_t i = 0; i < decoded.size(); ++i)
        expectEqualRecords(originals[i], decoded[i]);
}

TEST(SerializeTest, StreamedReadMatchesReadAll)
{
    Rng rng(7);
    std::stringstream buffer;
    ProfileWriter writer(buffer);
    for (std::uint64_t i = 0; i < 40; ++i)
        writer.write(randomRecord(rng, i));
    writer.finish();
    const std::string bytes = buffer.str();

    std::istringstream streamed_in(bytes);
    ProfileReader streamed(streamed_in);
    std::vector<ProfileRecord> one_at_a_time;
    ProfileRecord record;
    while (streamed.read(record))
        one_at_a_time.push_back(record);

    std::istringstream bulk_in(bytes);
    ProfileReader bulk(bulk_in);
    const std::vector<ProfileRecord> all = bulk.readAll();

    ASSERT_EQ(one_at_a_time.size(), all.size());
    for (std::size_t i = 0; i < all.size(); ++i) {
        expectEqualRecords(one_at_a_time[i], all[i]);
        // Byte-identical, not just field-equal.
        EXPECT_EQ(encodeProfileRecord(one_at_a_time[i]),
                  encodeProfileRecord(all[i]));
    }
}

TEST(SerializeTest, EmptyProfileReadsZeroRecords)
{
    std::stringstream buffer;
    ProfileWriter writer(buffer);
    writer.finish();
    ProfileReader reader(buffer);
    ProfileRecord record;
    EXPECT_FALSE(reader.read(record));
    EXPECT_EQ(reader.recordsRead(), 0u);
}

TEST(SerializeTest, BadMagicIsRejected)
{
    std::stringstream buffer;
    buffer << "NOPExxxxxxxxxxxxxxxx";
    EXPECT_THROW(ProfileReader reader(buffer),
                 std::runtime_error);
}

TEST(SerializeTest, TruncatedStreamIsRejected)
{
    Rng rng(2);
    std::stringstream buffer;
    ProfileWriter writer(buffer);
    writer.write(randomRecord(rng, 0));
    writer.finish();
    std::string bytes = buffer.str();
    bytes.resize(bytes.size() / 2);
    std::stringstream truncated(bytes);
    ProfileReader reader(truncated);
    ProfileRecord record;
    EXPECT_THROW(reader.read(record), std::runtime_error);
}

TEST(SerializeTest, V4RoundTripCarriesAttemptFields)
{
    Rng rng(11);
    ProfileRecord original = randomRecord(rng, 4);
    original.attempt = 3;
    original.attempt_boundary = true;
    original.preempted_at_step = 480;
    original.resume_step = 450;

    ProfileRecord decoded;
    ASSERT_TRUE(
        decodeProfileRecord(encodeProfileRecord(original),
                            decoded));
    expectEqualRecords(original, decoded);
    EXPECT_EQ(decoded.attempt, 3u);
    EXPECT_TRUE(decoded.attempt_boundary);
    EXPECT_EQ(decoded.preempted_at_step, 480u);
    EXPECT_EQ(decoded.resume_step, 450u);
}

/** The 24-byte v4 attempt tail: u32 + u32 + u64 + u64. */
constexpr std::size_t kAttemptTailBytes = 24;

/** The 8-byte v5 drop-count tail: one u64. */
constexpr std::size_t kDropTailBytes = 8;

TEST(SerializeTest, V3PayloadWithoutAttemptTailStillDecodes)
{
    Rng rng(12);
    ProfileRecord original = randomRecord(rng, 9);
    original.retries = 17;
    original.retry_time = 123 * kMsec;

    // Strip the fixed-width v4 + v5 tails: exactly what a v3
    // writer emitted. The v3 retry fields must survive unchanged
    // and the newer fields take their defaults.
    original.events_dropped = 0; // not representable in v3
    std::string payload = encodeProfileRecord(original);
    ASSERT_GT(payload.size(),
              kAttemptTailBytes + kDropTailBytes);
    payload.resize(payload.size() - kAttemptTailBytes -
                   kDropTailBytes);

    ProfileRecord decoded;
    ASSERT_TRUE(decodeProfileRecord(payload, decoded));
    expectEqualRecords(original, decoded);
    EXPECT_EQ(decoded.retries, 17u);
    EXPECT_EQ(decoded.retry_time, 123 * kMsec);
    EXPECT_EQ(decoded.attempt, 0u);
    EXPECT_FALSE(decoded.attempt_boundary);
    EXPECT_EQ(decoded.preempted_at_step, 0u);
    EXPECT_EQ(decoded.resume_step, 0u);
}

TEST(SerializeTest, V4PayloadWithoutDropTailStillDecodes)
{
    Rng rng(21);
    ProfileRecord original = randomRecord(rng, 3);
    original.attempt = 2;
    original.attempt_boundary = true;
    original.preempted_at_step = 800;
    original.resume_step = 750;

    // Strip only the v5 drop-count tail: exactly what a v4 writer
    // emitted. The attempt fields must survive and the drop count
    // must default to zero.
    original.events_dropped = 0; // not representable in v4
    std::string payload = encodeProfileRecord(original);
    ASSERT_GT(payload.size(), kDropTailBytes);
    payload.resize(payload.size() - kDropTailBytes);

    ProfileRecord decoded;
    ASSERT_TRUE(decodeProfileRecord(payload, decoded));
    expectEqualRecords(original, decoded);
    EXPECT_EQ(decoded.attempt, 2u);
    EXPECT_TRUE(decoded.attempt_boundary);
    EXPECT_EQ(decoded.events_dropped, 0u);
}

TEST(SerializeTest, PartialAttemptTailIsRejected)
{
    Rng rng(13);
    std::string payload =
        encodeProfileRecord(randomRecord(rng, 0));
    // A tail that is present but cut short is damage, not a v3
    // payload.
    payload.resize(payload.size() - kAttemptTailBytes / 2);
    ProfileRecord decoded;
    EXPECT_FALSE(decodeProfileRecord(payload, decoded));
}

TEST(SerializeTest, JsonOutputContainsKeyFields)
{
    Rng rng(3);
    const ProfileRecord record = randomRecord(rng, 7);
    std::ostringstream out;
    profileRecordToJson(record, out);
    const std::string json = out.str();
    EXPECT_NE(json.find("\"sequence\":7"), std::string::npos);
    EXPECT_NE(json.find("\"steps\""), std::string::npos);
    EXPECT_NE(json.find("\"tpu_ops\""), std::string::npos);
    EXPECT_NE(json.find("fusion"), std::string::npos);
}

} // namespace
} // namespace tpupoint

/**
 * @file
 * Shared argument parsing for the command-line tools: a declarative
 * flag table (FlagParser) that derives `--help` and the usage line
 * from the same declarations it parses with, plus the workload /
 * algorithm name maps and telemetry helpers.
 */

#ifndef TPUPOINT_TOOLS_CLI_COMMON_HH
#define TPUPOINT_TOOLS_CLI_COMMON_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "analyzer/analyzer.hh"
#include "core/strings.hh"
#include "obs/metrics.hh"
#include "obs/trace_export.hh"
#include "proto/serialize.hh"
#include "workloads/catalog.hh"

namespace tpupoint {
namespace cli {

/**
 * Declarative command-line parser. Each tool declares its flags
 * once — name, optional short alias, value placeholder, one-line
 * help, and an apply callback — and FlagParser handles matching
 * (`--flag value` and `--flag=value` both work), the generated
 * usage line, an automatic `--help`, and the error contract the
 * CLI tests pin: "unknown option X" and "missing value for X" on
 * stderr with exit code 2.
 */
class FlagParser
{
  public:
    enum class Outcome {
        Ok,   ///< All arguments consumed; proceed.
        Help, ///< --help printed; exit 0.
        Error ///< Message printed; exit 2.
    };

    /**
     * @param tool The executable name for the usage line.
     * @param positionals Usage text for positional arguments
     *     ("PROFILE"), or "" when the tool takes none.
     */
    FlagParser(std::string tool, std::string positionals)
        : tool_name(std::move(tool)),
          positional_usage(std::move(positionals))
    {
    }

    /**
     * A flag taking a value. @p apply returns false to abort
     * parsing (after printing its own diagnostic); the parser then
     * reports Outcome::Error.
     */
    void
    option(const char *name, const char *value_name,
           const char *help,
           std::function<bool(const char *)> apply)
    {
        flags.push_back(Flag{name, "", value_name, help,
                             std::move(apply), nullptr});
    }

    /** option() with a short alias ("-o" for "--out"). */
    void
    optionWithAlias(const char *name, const char *alias,
                    const char *value_name, const char *help,
                    std::function<bool(const char *)> apply)
    {
        flags.push_back(Flag{name, alias, value_name, help,
                             std::move(apply), nullptr});
    }

    /** A boolean switch (no value). */
    void
    toggle(const char *name, const char *help,
           std::function<void()> apply)
    {
        flags.push_back(
            Flag{name, "", "", help, nullptr, std::move(apply)});
    }

    /** The generated one-line usage string (no trailing \n). */
    std::string
    usage() const
    {
        std::string out = "usage: " + tool_name;
        if (!positional_usage.empty())
            out += " " + positional_usage;
        for (const Flag &flag : flags) {
            out += " [" + flag.name;
            if (!flag.value_name.empty())
                out += " " + flag.value_name;
            out += "]";
        }
        return out;
    }

    /** Print usage + per-flag help to @p out. */
    void
    printHelp(std::FILE *out) const
    {
        std::fprintf(out, "%s\n\noptions:\n", usage().c_str());
        for (const Flag &flag : flags) {
            std::string left = "  " + flag.name;
            if (!flag.alias.empty())
                left += ", " + flag.alias;
            if (!flag.value_name.empty())
                left += " " + flag.value_name;
            std::fprintf(out, "%-34s %s\n", left.c_str(),
                         flag.help.c_str());
        }
        std::fprintf(out, "%-34s %s\n", "  --help",
                     "show this help and exit");
    }

    /** Parse argv[@p begin .. argc). */
    Outcome
    parse(int argc, char **argv, int begin)
    {
        for (int i = begin; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--help" || arg == "-h") {
                printHelp(stdout);
                return Outcome::Help;
            }
            const std::size_t eq = arg.find('=');
            const std::string key =
                eq == std::string::npos ? arg : arg.substr(0, eq);
            const Flag *flag = find(key);
            if (flag == nullptr) {
                std::fprintf(stderr, "unknown option %s\n",
                             arg.c_str());
                return Outcome::Error;
            }
            if (flag->value_name.empty()) {
                // A boolean switch: "--salvage=x" is not a form
                // it takes.
                if (eq != std::string::npos) {
                    std::fprintf(stderr, "unknown option %s\n",
                                 arg.c_str());
                    return Outcome::Error;
                }
                flag->on_set();
                continue;
            }
            std::string value;
            if (eq != std::string::npos) {
                value = arg.substr(eq + 1);
            } else {
                if (i + 1 >= argc) {
                    std::fprintf(stderr,
                                 "missing value for %s\n",
                                 arg.c_str());
                    return Outcome::Error;
                }
                value = argv[++i];
            }
            if (!flag->on_value(value.c_str()))
                return Outcome::Error;
        }
        return Outcome::Ok;
    }

  private:
    struct Flag
    {
        std::string name;
        std::string alias;
        std::string value_name; ///< "" = boolean switch.
        std::string help;
        std::function<bool(const char *)> on_value;
        std::function<void()> on_set;
    };

    const Flag *
    find(const std::string &key) const
    {
        for (const Flag &flag : flags) {
            if (key == flag.name ||
                (!flag.alias.empty() && key == flag.alias))
                return &flag;
        }
        return nullptr;
    }

    std::string tool_name;
    std::string positional_usage;
    std::vector<Flag> flags;
};

/**
 * Checked CLI integer parse: the whole of @p text must be one
 * decimal integer in [@p min, @p max]. On failure prints
 * "FLAG wants an integer in [min, max], got 'text'" to stderr and
 * returns false — `--steps banana` is a diagnosed error, never a
 * silent zero, and an overflowing value never wraps.
 */
inline bool
parseInt(const char *flag, const char *text, std::int64_t min,
         std::int64_t max, std::int64_t *value)
{
    std::int64_t parsed = 0;
    if (!tpupoint::parseInt64(text, &parsed) || parsed < min ||
        parsed > max) {
        std::fprintf(stderr,
                     "%s wants an integer in [%lld, %lld], "
                     "got '%s'\n",
                     flag, static_cast<long long>(min),
                     static_cast<long long>(max), text);
        return false;
    }
    *value = parsed;
    return true;
}

/** parseInt for unsigned ranges ('-1' is rejected, not wrapped). */
inline bool
parseUint(const char *flag, const char *text, std::uint64_t max,
          std::uint64_t *value)
{
    std::uint64_t parsed = 0;
    if (!tpupoint::parseUint64(text, &parsed) || parsed > max) {
        std::fprintf(stderr,
                     "%s wants an integer in [0, %llu], got "
                     "'%s'\n",
                     flag, static_cast<unsigned long long>(max),
                     text);
        return false;
    }
    *value = parsed;
    return true;
}

/**
 * Register the standard `--threads N` knob on @p parser, storing
 * into @p threads: 0 (the conventional default) resolves through
 * TPUPOINT_THREADS / hardware concurrency at pool construction,
 * 1 is the serial path, and results are bit-identical either way.
 */
inline void
addThreadsFlag(FlagParser &parser, unsigned *threads)
{
    parser.option(
        "--threads", "N",
        "analysis worker threads (default: TPUPOINT_THREADS or "
        "hardware concurrency; results identical for any N)",
        [threads](const char *value) {
            std::uint64_t parsed = 0;
            if (!parseUint("--threads", value,
                           std::numeric_limits<unsigned>::max(),
                           &parsed))
                return false;
            *threads = static_cast<unsigned>(parsed);
            return true;
        });
}

/** Map a CLI workload name to its id; false when unknown. */
inline bool
parseWorkload(const std::string &name, WorkloadId *id)
{
    if (name == "bert-mrpc")
        *id = WorkloadId::BertMrpc;
    else if (name == "bert-squad")
        *id = WorkloadId::BertSquad;
    else if (name == "bert-cola")
        *id = WorkloadId::BertCola;
    else if (name == "bert-mnli")
        *id = WorkloadId::BertMnli;
    else if (name == "dcgan-cifar10")
        *id = WorkloadId::DcganCifar10;
    else if (name == "dcgan-mnist")
        *id = WorkloadId::DcganMnist;
    else if (name == "qanet")
        *id = WorkloadId::QanetSquad;
    else if (name == "qanet-half")
        *id = WorkloadId::QanetSquadHalf;
    else if (name == "retinanet")
        *id = WorkloadId::RetinanetCoco;
    else if (name == "retinanet-half")
        *id = WorkloadId::RetinanetCocoHalf;
    else if (name == "resnet")
        *id = WorkloadId::ResnetImagenet;
    else if (name == "resnet-cifar10")
        *id = WorkloadId::ResnetCifar10;
    else
        return false;
    return true;
}

/** Map a CLI algorithm name to the analyzer enum. */
inline bool
parseAlgorithm(const std::string &name, PhaseAlgorithm *algorithm)
{
    if (name == "ols")
        *algorithm = PhaseAlgorithm::OnlineLinearScan;
    else if (name == "kmeans")
        *algorithm = PhaseAlgorithm::KMeans;
    else if (name == "dbscan")
        *algorithm = PhaseAlgorithm::Dbscan;
    else
        return false;
    return true;
}

/**
 * Check that the input profile can be opened before any output
 * path is created or probed, so a missing input fails with the
 * canonical "cannot open profile" message and no stray artifacts.
 */
inline bool
profileReadable(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr,
                     "error: cannot open profile '%s'\n",
                     path.c_str());
        return false;
    }
    return true;
}

/**
 * Write the tool's self-telemetry (`--trace-out`: the span buffer
 * as trace-event JSON; `--metrics-out`: the metrics registry as
 * JSON). Empty paths are skipped. Returns false (after printing an
 * error) when a requested file cannot be written.
 */
inline bool
writeTelemetry(const std::string &trace_out,
               const std::string &metrics_out)
{
    const auto write = [](const std::string &path,
                          const auto &writer) -> bool {
        std::ofstream out(path, std::ios::binary);
        if (out)
            writer(out);
        if (!out) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         path.c_str());
            return false;
        }
        return true;
    };
    bool ok = true;
    if (!trace_out.empty()) {
        ok = write(trace_out, [](std::ostream &out) {
            obs::writeSpanTrace(obs::SpanBuffer::global(), out);
        }) && ok;
    }
    if (!metrics_out.empty()) {
        ok = write(metrics_out, [](std::ostream &out) {
            obs::MetricsRegistry::global().writeJson(out);
        }) && ok;
    }
    return ok;
}

/**
 * Charge a salvage-mode reader's damage tallies to the metrics
 * registry. Called by the tools (proto/ cannot depend on obs/).
 */
inline void
recordSalvageMetrics(const ProfileReader &reader)
{
    if (!reader.sawDamage())
        return;
    auto &registry = obs::MetricsRegistry::global();
    registry.counter("salvage.chunks_dropped")
        .add(reader.chunksDropped());
    registry.counter("salvage.records_dropped")
        .add(reader.recordsDropped());
    registry.counter("salvage.bytes_skipped")
        .add(reader.bytesSkipped());
}

} // namespace cli
} // namespace tpupoint

#endif // TPUPOINT_TOOLS_CLI_COMMON_HH

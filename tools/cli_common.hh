/**
 * @file
 * Shared argument parsing for the command-line tools.
 */

#ifndef TPUPOINT_TOOLS_CLI_COMMON_HH
#define TPUPOINT_TOOLS_CLI_COMMON_HH

#include <cstdio>
#include <fstream>
#include <string>

#include "analyzer/analyzer.hh"
#include "obs/metrics.hh"
#include "obs/trace_export.hh"
#include "proto/serialize.hh"
#include "workloads/catalog.hh"

namespace tpupoint {
namespace cli {

/** Map a CLI workload name to its id; false when unknown. */
inline bool
parseWorkload(const std::string &name, WorkloadId *id)
{
    if (name == "bert-mrpc")
        *id = WorkloadId::BertMrpc;
    else if (name == "bert-squad")
        *id = WorkloadId::BertSquad;
    else if (name == "bert-cola")
        *id = WorkloadId::BertCola;
    else if (name == "bert-mnli")
        *id = WorkloadId::BertMnli;
    else if (name == "dcgan-cifar10")
        *id = WorkloadId::DcganCifar10;
    else if (name == "dcgan-mnist")
        *id = WorkloadId::DcganMnist;
    else if (name == "qanet")
        *id = WorkloadId::QanetSquad;
    else if (name == "qanet-half")
        *id = WorkloadId::QanetSquadHalf;
    else if (name == "retinanet")
        *id = WorkloadId::RetinanetCoco;
    else if (name == "retinanet-half")
        *id = WorkloadId::RetinanetCocoHalf;
    else if (name == "resnet")
        *id = WorkloadId::ResnetImagenet;
    else if (name == "resnet-cifar10")
        *id = WorkloadId::ResnetCifar10;
    else
        return false;
    return true;
}

/** Map a CLI algorithm name to the analyzer enum. */
inline bool
parseAlgorithm(const std::string &name, PhaseAlgorithm *algorithm)
{
    if (name == "ols")
        *algorithm = PhaseAlgorithm::OnlineLinearScan;
    else if (name == "kmeans")
        *algorithm = PhaseAlgorithm::KMeans;
    else if (name == "dbscan")
        *algorithm = PhaseAlgorithm::Dbscan;
    else
        return false;
    return true;
}

/**
 * Write the tool's self-telemetry (`--trace-out`: the span buffer
 * as trace-event JSON; `--metrics-out`: the metrics registry as
 * JSON). Empty paths are skipped. Returns false (after printing an
 * error) when a requested file cannot be written.
 */
inline bool
writeTelemetry(const std::string &trace_out,
               const std::string &metrics_out)
{
    const auto write = [](const std::string &path,
                          const auto &writer) -> bool {
        std::ofstream out(path, std::ios::binary);
        if (out)
            writer(out);
        if (!out) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         path.c_str());
            return false;
        }
        return true;
    };
    bool ok = true;
    if (!trace_out.empty()) {
        ok = write(trace_out, [](std::ostream &out) {
            obs::writeSpanTrace(obs::SpanBuffer::global(), out);
        }) && ok;
    }
    if (!metrics_out.empty()) {
        ok = write(metrics_out, [](std::ostream &out) {
            obs::MetricsRegistry::global().writeJson(out);
        }) && ok;
    }
    return ok;
}

/**
 * Charge a salvage-mode reader's damage tallies to the metrics
 * registry. Called by the tools (proto/ cannot depend on obs/).
 */
inline void
recordSalvageMetrics(const ProfileReader &reader)
{
    if (!reader.sawDamage())
        return;
    auto &registry = obs::MetricsRegistry::global();
    registry.counter("salvage.chunks_dropped")
        .add(reader.chunksDropped());
    registry.counter("salvage.records_dropped")
        .add(reader.recordsDropped());
    registry.counter("salvage.bytes_skipped")
        .add(reader.bytesSkipped());
}

} // namespace cli
} // namespace tpupoint

#endif // TPUPOINT_TOOLS_CLI_COMMON_HH

/**
 * @file
 * Shared argument parsing for the command-line tools.
 */

#ifndef TPUPOINT_TOOLS_CLI_COMMON_HH
#define TPUPOINT_TOOLS_CLI_COMMON_HH

#include <string>

#include "analyzer/analyzer.hh"
#include "workloads/catalog.hh"

namespace tpupoint {
namespace cli {

/** Map a CLI workload name to its id; false when unknown. */
inline bool
parseWorkload(const std::string &name, WorkloadId *id)
{
    if (name == "bert-mrpc")
        *id = WorkloadId::BertMrpc;
    else if (name == "bert-squad")
        *id = WorkloadId::BertSquad;
    else if (name == "bert-cola")
        *id = WorkloadId::BertCola;
    else if (name == "bert-mnli")
        *id = WorkloadId::BertMnli;
    else if (name == "dcgan-cifar10")
        *id = WorkloadId::DcganCifar10;
    else if (name == "dcgan-mnist")
        *id = WorkloadId::DcganMnist;
    else if (name == "qanet")
        *id = WorkloadId::QanetSquad;
    else if (name == "qanet-half")
        *id = WorkloadId::QanetSquadHalf;
    else if (name == "retinanet")
        *id = WorkloadId::RetinanetCoco;
    else if (name == "retinanet-half")
        *id = WorkloadId::RetinanetCocoHalf;
    else if (name == "resnet")
        *id = WorkloadId::ResnetImagenet;
    else if (name == "resnet-cifar10")
        *id = WorkloadId::ResnetCifar10;
    else
        return false;
    return true;
}

/** Map a CLI algorithm name to the analyzer enum. */
inline bool
parseAlgorithm(const std::string &name, PhaseAlgorithm *algorithm)
{
    if (name == "ols")
        *algorithm = PhaseAlgorithm::OnlineLinearScan;
    else if (name == "kmeans")
        *algorithm = PhaseAlgorithm::KMeans;
    else if (name == "dbscan")
        *algorithm = PhaseAlgorithm::Dbscan;
    else
        return false;
    return true;
}

} // namespace cli
} // namespace tpupoint

#endif // TPUPOINT_TOOLS_CLI_COMMON_HH

/**
 * @file
 * `tpupoint-serve`: the long-running ingest daemon. Points at a
 * spool directory that recording threads write profile streams
 * into, tail-follows every stream as it grows (salvage-tolerant:
 * a torn tail is "pending", not "broken"), runs one incremental
 * analysis session per trace on a shared thread pool, and
 * publishes a JSON status document that `--query` reads back out
 * while ingest is still live.
 *
 * Daemon mode:
 *   tpupoint-serve --spool DIR --status-out status.json
 * Crash-safe daemon (restart resumes where the last run left off):
 *   tpupoint-serve --spool DIR --journal serve.journal ...
 * Black box + scrape endpoint:
 *   tpupoint-serve --spool DIR --status-out status.json \
 *       --flight-out serve.flight.json
 *   (SIGUSR2 dumps the flight ring on demand; a crash signal or
 *   quarantine dumps it automatically; status.json.metrics carries
 *   the OpenMetrics exposition, refreshed atomically every tick.)
 * Query mode (against a running daemon's published files):
 *   tpupoint-serve --query phases --status status.json
 *   (phases/coverage answer mid-ingest with live streaming
 *   snapshots — each entry carries `exact` and `steps_behind` so
 *   readers can tell a snapshot from a finalized answer; pass
 *   --no-live-phases to the daemon to restore finalize-only
 *   answers)
 *   tpupoint-serve --query health --status status.json
 *   tpupoint-serve --query metrics --status status.json
 *
 * Run with --help for the full flag list.
 */

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "core/io_faults.hh"
#include "core/json.hh"
#include "core/strings.hh"
#include "obs/flight_recorder.hh"
#include "obs/logger.hh"
#include "obs/metrics.hh"
#include "serve/serve.hh"
#include "tools/cli_common.hh"

using namespace tpupoint;

namespace {

/**
 * The only thing a signal handler may touch. Everything else —
 * logging, the final journal commit, the status publish — happens
 * on the main loop after it observes the flag; nothing
 * async-signal-unsafe runs in signal context.
 */
volatile std::sig_atomic_t g_stop = 0;

void
onSignal(int)
{
    g_stop = 1;
}

/**
 * On-demand black box: SIGUSR2 dumps the flight ring to the
 * registered path without stopping the daemon. signalSafeDump()
 * keeps to open/write/fsync/close on pre-serialized bytes, so the
 * whole handler is async-signal-safe.
 */
void
onDumpRequest(int)
{
    obs::FlightRecorder::global().signalSafeDump();
}

/**
 * Fatal-signal path: salvage the flight ring, then re-raise with
 * the default disposition so the process still dies with the
 * original signal (exit status, core file and all).
 */
void
onCrash(int sig)
{
    obs::FlightRecorder::global().signalSafeDump();
    std::signal(sig, SIG_DFL);
    std::raise(sig);
}

void
installSignalHandlers(bool flight_armed)
{
#if defined(_WIN32)
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    if (flight_armed)
        std::signal(SIGSEGV, onCrash);
#else
    // sigaction without SA_RESTART: a delivered signal interrupts
    // the sleep slice (EINTR) so shutdown is prompt even mid-wait.
    struct sigaction action = {};
    action.sa_handler = onSignal;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;
    sigaction(SIGINT, &action, nullptr);
    sigaction(SIGTERM, &action, nullptr);
    if (!flight_armed) {
        // No dump path registered: SIGUSR2 would be a silent
        // no-op, and the default disposition (terminate) is more
        // honest than swallowing it.
        return;
    }
    struct sigaction dump = {};
    dump.sa_handler = onDumpRequest;
    sigemptyset(&dump.sa_mask);
    dump.sa_flags = SA_RESTART; // A dump must not abort a sleep.
    sigaction(SIGUSR2, &dump, nullptr);

    struct sigaction crash = {};
    crash.sa_handler = onCrash;
    sigemptyset(&crash.sa_mask);
    crash.sa_flags = 0;
    sigaction(SIGSEGV, &crash, nullptr);
    sigaction(SIGBUS, &crash, nullptr);
    sigaction(SIGILL, &crash, nullptr);
    sigaction(SIGFPE, &crash, nullptr);
    sigaction(SIGABRT, &crash, nullptr);
#endif
}

/**
 * `--query metrics`: print the daemon's OpenMetrics exposition.
 * Not a status-document section — it is the sibling file the
 * daemon publishes next to the status doc every tick — so it only
 * gets a cheap structural check (the `# EOF` terminator proves the
 * atomic rename completed) rather than JSON validation.
 */
int
runMetricsQuery(const std::string &metrics_path)
{
    std::ifstream in(metrics_path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr,
                     "error: no metrics file '%s' (is the daemon "
                     "running with --status-out?)\n",
                     metrics_path.c_str());
        return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    const std::string exposition = text.str();
    if (exposition.find("# EOF") == std::string::npos) {
        std::fprintf(stderr,
                     "error: metrics file '%s' is truncated (no "
                     "# EOF terminator)\n",
                     metrics_path.c_str());
        return 1;
    }
    std::fputs(exposition.c_str(), stdout);
    return 0;
}

int
runQuery(const std::string &query, const std::string &status_path,
         const std::string &openmetrics_path)
{
    if (query != "phases" && query != "coverage" &&
        query != "sessions" && query != "stats" &&
        query != "health" && query != "metrics") {
        std::fprintf(stderr,
                     "unknown query '%s' (want phases|coverage|"
                     "sessions|stats|health|metrics)\n",
                     query.c_str());
        return 2;
    }
    if (status_path.empty() &&
        (query != "metrics" || openmetrics_path.empty())) {
        std::fprintf(stderr,
                     "--query wants --status PATH (the daemon's "
                     "--status-out file)\n");
        return 2;
    }
    if (query == "metrics")
        return runMetricsQuery(openmetrics_path.empty()
                                   ? status_path + ".metrics"
                                   : openmetrics_path);
    std::ifstream in(status_path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr,
                     "error: no status file '%s' (is the daemon "
                     "running with --status-out?)\n",
                     status_path.c_str());
        return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    const std::string status = text.str();
    std::string section;
    if (!serve::extractStatusSection(status, query, &section)) {
        std::fprintf(stderr,
                     "error: status file '%s' has no '%s' "
                     "section\n",
                     status_path.c_str(), query.c_str());
        return 1;
    }
    std::string why;
    if (!validateJson(section, &why)) {
        std::fprintf(stderr,
                     "error: status section '%s' is not valid "
                     "JSON: %s\n",
                     query.c_str(), why.c_str());
        return 1;
    }
    std::printf("%s\n", section.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    serve::ServeOptions serve_options;
    std::string status_out;
    std::string openmetrics_path;
    std::string metrics_out;
    std::string trace_out;
    std::string stop_file;
    std::string query;
    std::string status_in;
    std::int64_t poll_ms = 200;
    std::int64_t run_for_ms = -1;
    bool once = false;
    bool drain = false;

    cli::FlagParser parser("tpupoint-serve", "");
    parser.option("--spool", "DIR",
                  "spool directory to watch for *.tpp streams",
                  [&](const char *value) {
                      serve_options.spool_dir = value;
                      return true;
                  });
    parser.option("--suffix", "S",
                  "trace filename suffix (default .tpp)",
                  [&](const char *value) {
                      serve_options.suffix = value;
                      return true;
                  });
    parser.option("--status-out", "PATH",
                  "publish the status document here after every "
                  "poll (atomic rename)",
                  [&](const char *value) {
                      status_out = value;
                      return true;
                  });
    parser.option("--poll-ms", "N",
                  "delay between spool polls (default 200)",
                  [&](const char *value) {
                      return cli::parseInt("--poll-ms", value, 0,
                                           3600 * 1000, &poll_ms);
                  });
    parser.option("--idle-ttl-ms", "N",
                  "finalize a stream after this long with no "
                  "growth (default 2000)",
                  [&](const char *value) {
                      return cli::parseInt(
                          "--idle-ttl-ms", value, 0,
                          std::numeric_limits<
                              std::int32_t>::max(),
                          &serve_options.idle_ttl_ms);
                  });
    parser.option("--evict-ttl-ms", "N",
                  "release a finalized session's memory after "
                  "this long (default 10000; -1 = never)",
                  [&](const char *value) {
                      return cli::parseInt(
                          "--evict-ttl-ms", value, -1,
                          std::numeric_limits<
                              std::int32_t>::max(),
                          &serve_options.evict_ttl_ms);
                  });
    parser.option("--max-finalizes", "N",
                  "finalizes run per poll at most (default 4)",
                  [&](const char *value) {
                      std::uint64_t parsed = 0;
                      if (!cli::parseUint("--max-finalizes", value,
                                          1024, &parsed))
                          return false;
                      serve_options.max_finalizes_per_poll =
                          static_cast<std::size_t>(parsed);
                      return true;
                  });
    parser.option("--algorithm", "ols|kmeans|dbscan",
                  "phase detector for every session "
                  "(default ols)",
                  [&](const char *value) {
                      if (!cli::parseAlgorithm(
                              value,
                              &serve_options.analyzer
                                   .algorithm)) {
                          std::fprintf(stderr,
                                       "unknown algorithm\n");
                          return false;
                      }
                      return true;
                  });
    parser.toggle("--no-live-phases",
                  "disable incremental phase detection: phases "
                  "and coverage appear only after finalize",
                  [&]() { serve_options.live_phases = false; });
    parser.toggle("--no-salvage",
                  "strict tail reads: structural damage parks the "
                  "session instead of resynchronizing",
                  [&]() { serve_options.salvage = false; });
    parser.option("--journal", "PATH",
                  "durable session journal: restart resumes every "
                  "session from its committed offset",
                  [&](const char *value) {
                      serve_options.journal_path = value;
                      return true;
                  });
    parser.option("--journal-compact-bytes", "N",
                  "compact the journal once it outgrows this "
                  "(default 1048576)",
                  [&](const char *value) {
                      return cli::parseUint(
                          "--journal-compact-bytes", value,
                          std::numeric_limits<
                              std::uint64_t>::max(),
                          &serve_options.journal_compact_bytes);
                  });
    parser.option("--max-sessions", "N",
                  "admit at most N live sessions; excess spool "
                  "files are shed until capacity frees "
                  "(default 0 = unlimited)",
                  [&](const char *value) {
                      std::uint64_t parsed = 0;
                      if (!cli::parseUint("--max-sessions", value,
                                          1u << 20, &parsed))
                          return false;
                      serve_options.max_sessions =
                          static_cast<std::size_t>(parsed);
                      return true;
                  });
    parser.option("--max-inflight-bytes", "N",
                  "shed new sessions while live sessions hold at "
                  "least N ingested bytes (default 0 = unlimited)",
                  [&](const char *value) {
                      return cli::parseUint(
                          "--max-inflight-bytes", value,
                          std::numeric_limits<
                              std::uint64_t>::max(),
                          &serve_options.max_inflight_bytes);
                  });
    parser.option("--openmetrics", "PATH",
                  "OpenMetrics text exposition path: the daemon "
                  "rewrites it atomically every tick, --query "
                  "metrics reads it (default <status>.metrics)",
                  [&](const char *value) {
                      openmetrics_path = value;
                      return true;
                  });
    parser.option("--flight-out", "PATH",
                  "arm the flight recorder and dump its ring here "
                  "on quarantine, fatal signal, SIGUSR2 and "
                  "shutdown",
                  [&](const char *value) {
                      serve_options.flight_path = value;
                      return true;
                  });
    parser.option("--slo-p99-ingest-us", "N",
                  "health degrades when the ingest-chunk p99 "
                  "exceeds N microseconds (default 0 = off)",
                  [&](const char *value) {
                      return cli::parseInt(
                          "--slo-p99-ingest-us", value, 0,
                          std::numeric_limits<
                              std::int32_t>::max(),
                          &serve_options.slo_p99_ingest_us);
                  });
    parser.option("--slo-max-lag-ms", "N",
                  "health degrades when a live session goes N ms "
                  "without ingest progress (default 0 = off)",
                  [&](const char *value) {
                      return cli::parseInt(
                          "--slo-max-lag-ms", value, 0,
                          std::numeric_limits<
                              std::int32_t>::max(),
                          &serve_options.slo_max_lag_ms);
                  });
    parser.option("--quarantine-errors", "N",
                  "quarantine a session after N consecutive "
                  "ingest errors (default 3; 0 = never)",
                  [&](const char *value) {
                      return cli::parseUint(
                          "--quarantine-errors", value, 1u << 20,
                          &serve_options.quarantine_errors);
                  });
    parser.option("--io-fault", "SPEC",
                  "inject host-I/O faults, e.g. "
                  "serve.status_write=enospc@2 (testing)",
                  [&](const char *value) {
                      std::string why;
                      if (!io::FaultInjector::global().configure(
                              value, &why)) {
                          std::fprintf(stderr, "--io-fault: %s\n",
                                       why.c_str());
                          return false;
                      }
                      return true;
                  });
    parser.option("--io-fault-seed", "N",
                  "seed for rate-based injected faults",
                  [&](const char *value) {
                      std::uint64_t seed = 0;
                      if (!cli::parseUint(
                              "--io-fault-seed", value,
                              std::numeric_limits<
                                  std::uint64_t>::max(),
                              &seed))
                          return false;
                      io::FaultInjector::global().setSeed(seed);
                      return true;
                  });
    cli::addThreadsFlag(parser, &serve_options.threads);
    parser.option("--run-for-ms", "N",
                  "exit cleanly after this long (default: run "
                  "until signaled)",
                  [&](const char *value) {
                      return cli::parseInt(
                          "--run-for-ms", value, 0,
                          std::numeric_limits<
                              std::int32_t>::max(),
                          &run_for_ms);
                  });
    parser.toggle("--once", "one poll pass, then exit",
                  [&]() { once = true; });
    parser.toggle("--drain",
                  "exit once every discovered session is "
                  "finalized or evicted",
                  [&]() { drain = true; });
    parser.option("--stop-file", "PATH",
                  "exit cleanly once this file exists",
                  [&](const char *value) {
                      stop_file = value;
                      return true;
                  });
    parser.option("--query", "SECTION",
                  "query mode: print one published section "
                  "(phases|coverage|sessions|stats|health|"
                  "metrics) and exit",
                  [&](const char *value) {
                      query = value;
                      return true;
                  });
    parser.option("--status", "PATH",
                  "status file to query (the daemon's "
                  "--status-out)",
                  [&](const char *value) {
                      status_in = value;
                      return true;
                  });
    parser.option("--trace-out", "PATH",
                  "write the daemon's own wall-time spans as "
                  "trace-event JSON",
                  [&](const char *value) {
                      trace_out = value;
                      return true;
                  });
    parser.option("--metrics-out", "PATH",
                  "write the process metrics registry as JSON on "
                  "exit",
                  [&](const char *value) {
                      metrics_out = value;
                      return true;
                  });

    switch (parser.parse(argc, argv, 1)) {
      case cli::FlagParser::Outcome::Help: return 0;
      case cli::FlagParser::Outcome::Error: return 2;
      case cli::FlagParser::Outcome::Ok: break;
    }

    if (!query.empty())
        return runQuery(query, status_in, openmetrics_path);

    if (serve_options.spool_dir.empty()) {
        std::fprintf(stderr, "%s\n", parser.usage().c_str());
        std::fprintf(stderr,
                     "tpupoint-serve wants --spool DIR (daemon) "
                     "or --query SECTION --status PATH\n");
        return 2;
    }

    std::string why;
    if (!io::FaultInjector::global().loadFromEnvironment(&why)) {
        std::fprintf(stderr, "TPUPOINT_IO_FAULTS: %s\n",
                     why.c_str());
        return 2;
    }

    // One flag upgrade makes every legacy inform()/warn() in the
    // process a structured event under component "core";
    // TPUPOINT_LOG_FORMAT=json turns the whole stream into JSONL.
    obs::Logger::install();

    obs::FlightRecorder &flight = obs::FlightRecorder::global();
    const bool flight_armed = !serve_options.flight_path.empty();
    if (flight_armed) {
        flight.enable();
        if (!flight.setSignalDumpPath(
                serve_options.flight_path.c_str())) {
            std::fprintf(stderr,
                         "--flight-out: path too long for the "
                         "signal-context buffer\n");
            return 2;
        }
    }
    // The handlers read FlightRecorder::global(); constructing it
    // above (not lazily in signal context) keeps them safe.
    installSignalHandlers(flight_armed);

    if (!openmetrics_path.empty() && status_out.empty()) {
        std::fprintf(stderr,
                     "--openmetrics wants --status-out (it is "
                     "published on the status tick)\n");
        return 2;
    }
    if (openmetrics_path.empty() && !status_out.empty())
        openmetrics_path = status_out + ".metrics";

    // A crash mid-publish leaves `status.json.tmp` behind; sweep
    // it so readers never pick up a stale half-document.
    if (!status_out.empty() &&
        serve::sweepStalePublish(status_out))
        obs::logWarn("serve",
                     "removed stale status temp from a previous "
                     "run",
                     {{"path", status_out + ".tmp"}});
    if (!openmetrics_path.empty())
        serve::sweepStalePublish(openmetrics_path);

    serve::SessionManager manager(serve_options);
    const auto started = std::chrono::steady_clock::now();
    for (;;) {
        manager.poll();
        if (!status_out.empty()) {
            // A failed publish is a retry-next-tick event, never
            // an exit: the daemon outlives a transiently full or
            // flaky disk.
            std::string publish_error;
            if (!serve::publishStatus(manager, status_out,
                                      &publish_error)) {
                static obs::LogSite status_site(1000);
                obs::Logger::global().logLimited(
                    status_site, LogLevel::Warn, "serve",
                    "status publish failed; retrying next poll",
                    {{"path", status_out},
                     {"error", publish_error}});
            }
            // The scrape file rides the same tick, so the two
            // documents never drift more than one poll apart.
            if (!serve::publishMetrics(openmetrics_path,
                                       &publish_error)) {
                static obs::LogSite metrics_site(1000);
                obs::Logger::global().logLimited(
                    metrics_site, LogLevel::Warn, "serve",
                    "metrics publish failed; retrying next poll",
                    {{"path", openmetrics_path},
                     {"error", publish_error}});
            }
        }
        if (g_stop || once)
            break;
        if (drain && manager.stats().drained())
            break;
        if (run_for_ms >= 0 &&
            std::chrono::duration_cast<
                std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - started)
                    .count() >= run_for_ms)
            break;
        if (!stop_file.empty()) {
            std::error_code ec;
            if (std::filesystem::exists(stop_file, ec))
                break;
        }
        // Sleep in short slices so a signal or stop file is
        // honored promptly even with a long poll interval. An
        // interrupted sleep (EINTR from a delivered signal) is
        // normal control flow, not an error: re-check g_stop and
        // carry on.
        std::int64_t slept = 0;
        while (slept < poll_ms && !g_stop) {
            const std::int64_t slice =
                std::min<std::int64_t>(poll_ms - slept, 50);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(slice));
            slept += slice;
        }
    }

    // Graceful drain (SIGTERM/SIGINT or a natural exit): flush
    // every pending journal snapshot, publish the final status
    // document, and report a clean exit — a supervisor restart
    // then resumes from exactly this state.
    if (!manager.commitJournal())
        obs::logWarn("serve",
                     "final journal commit failed; restart will "
                     "re-ingest the gap");
    if (!status_out.empty()) {
        serve::publishStatus(manager, status_out);
        serve::publishMetrics(openmetrics_path);
    }
    if (flight_armed) {
        // The shutdown black box: whether the exit came from a
        // signal, --run-for-ms, --drain or a stop file, the flight
        // file on disk ends with a dump that says so.
        const char *reason = g_stop ? "shutdown: signal"
                                    : "shutdown: clean exit";
        obs::logInfo("serve", "shutting down",
                     {{"reason", reason}});
        std::string dump_error;
        if (!flight.dump(serve_options.flight_path, reason,
                         &dump_error))
            obs::logWarn("serve", "shutdown flight dump failed",
                         {{"path", serve_options.flight_path},
                          {"error", dump_error}});
    }

    const serve::ServeStats tallies = manager.stats();
    std::printf("serve: %zu sessions (%zu finalized, %zu "
                "evicted), %llu records, %llu events\n",
                tallies.sessions, tallies.finalized,
                tallies.evicted,
                static_cast<unsigned long long>(tallies.records),
                static_cast<unsigned long long>(tallies.events));
    if (!cli::writeTelemetry(trace_out, metrics_out))
        return 1;
    return 0;
}

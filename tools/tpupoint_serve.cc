/**
 * @file
 * `tpupoint-serve`: the long-running ingest daemon. Points at a
 * spool directory that recording threads write profile streams
 * into, tail-follows every stream as it grows (salvage-tolerant:
 * a torn tail is "pending", not "broken"), runs one incremental
 * analysis session per trace on a shared thread pool, and
 * publishes a JSON status document that `--query` reads back out
 * while ingest is still live.
 *
 * Daemon mode:
 *   tpupoint-serve --spool DIR --status-out status.json
 * Query mode (against a running daemon's status file):
 *   tpupoint-serve --query phases --status status.json
 *
 * Run with --help for the full flag list.
 */

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "core/json.hh"
#include "core/strings.hh"
#include "serve/serve.hh"
#include "tools/cli_common.hh"

using namespace tpupoint;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void
onSignal(int)
{
    g_stop = 1;
}

/** Publish the status document atomically: tmp file + rename. */
bool
writeStatusFile(const serve::SessionManager &manager,
                const std::string &path)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary);
        if (out) {
            manager.writeStatusJson(out);
            out << '\n';
        }
        if (!out) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         tmp.c_str());
            return false;
        }
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::fprintf(stderr, "error: cannot publish %s: %s\n",
                     path.c_str(), ec.message().c_str());
        return false;
    }
    return true;
}

int
runQuery(const std::string &query, const std::string &status_path)
{
    if (query != "phases" && query != "coverage" &&
        query != "sessions" && query != "stats") {
        std::fprintf(stderr,
                     "unknown query '%s' (want "
                     "phases|coverage|sessions|stats)\n",
                     query.c_str());
        return 2;
    }
    if (status_path.empty()) {
        std::fprintf(stderr,
                     "--query wants --status PATH (the daemon's "
                     "--status-out file)\n");
        return 2;
    }
    std::ifstream in(status_path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr,
                     "error: no status file '%s' (is the daemon "
                     "running with --status-out?)\n",
                     status_path.c_str());
        return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    const std::string status = text.str();
    std::string section;
    if (!serve::extractStatusSection(status, query, &section)) {
        std::fprintf(stderr,
                     "error: status file '%s' has no '%s' "
                     "section\n",
                     status_path.c_str(), query.c_str());
        return 1;
    }
    std::string why;
    if (!validateJson(section, &why)) {
        std::fprintf(stderr,
                     "error: status section '%s' is not valid "
                     "JSON: %s\n",
                     query.c_str(), why.c_str());
        return 1;
    }
    std::printf("%s\n", section.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    serve::ServeOptions serve_options;
    std::string status_out;
    std::string metrics_out;
    std::string trace_out;
    std::string stop_file;
    std::string query;
    std::string status_in;
    std::int64_t poll_ms = 200;
    std::int64_t run_for_ms = -1;
    bool once = false;
    bool drain = false;

    cli::FlagParser parser("tpupoint-serve", "");
    parser.option("--spool", "DIR",
                  "spool directory to watch for *.tpp streams",
                  [&](const char *value) {
                      serve_options.spool_dir = value;
                      return true;
                  });
    parser.option("--suffix", "S",
                  "trace filename suffix (default .tpp)",
                  [&](const char *value) {
                      serve_options.suffix = value;
                      return true;
                  });
    parser.option("--status-out", "PATH",
                  "publish the status document here after every "
                  "poll (atomic rename)",
                  [&](const char *value) {
                      status_out = value;
                      return true;
                  });
    parser.option("--poll-ms", "N",
                  "delay between spool polls (default 200)",
                  [&](const char *value) {
                      return cli::parseInt("--poll-ms", value, 0,
                                           3600 * 1000, &poll_ms);
                  });
    parser.option("--idle-ttl-ms", "N",
                  "finalize a stream after this long with no "
                  "growth (default 2000)",
                  [&](const char *value) {
                      return cli::parseInt(
                          "--idle-ttl-ms", value, 0,
                          std::numeric_limits<
                              std::int32_t>::max(),
                          &serve_options.idle_ttl_ms);
                  });
    parser.option("--evict-ttl-ms", "N",
                  "release a finalized session's memory after "
                  "this long (default 10000; -1 = never)",
                  [&](const char *value) {
                      return cli::parseInt(
                          "--evict-ttl-ms", value, -1,
                          std::numeric_limits<
                              std::int32_t>::max(),
                          &serve_options.evict_ttl_ms);
                  });
    parser.option("--max-finalizes", "N",
                  "finalizes run per poll at most (default 4)",
                  [&](const char *value) {
                      std::uint64_t parsed = 0;
                      if (!cli::parseUint("--max-finalizes", value,
                                          1024, &parsed))
                          return false;
                      serve_options.max_finalizes_per_poll =
                          static_cast<std::size_t>(parsed);
                      return true;
                  });
    parser.option("--algorithm", "ols|kmeans|dbscan",
                  "phase detector for every session "
                  "(default ols)",
                  [&](const char *value) {
                      if (!cli::parseAlgorithm(
                              value,
                              &serve_options.analyzer
                                   .algorithm)) {
                          std::fprintf(stderr,
                                       "unknown algorithm\n");
                          return false;
                      }
                      return true;
                  });
    parser.toggle("--no-salvage",
                  "strict tail reads: structural damage parks the "
                  "session instead of resynchronizing",
                  [&]() { serve_options.salvage = false; });
    cli::addThreadsFlag(parser, &serve_options.threads);
    parser.option("--run-for-ms", "N",
                  "exit cleanly after this long (default: run "
                  "until signaled)",
                  [&](const char *value) {
                      return cli::parseInt(
                          "--run-for-ms", value, 0,
                          std::numeric_limits<
                              std::int32_t>::max(),
                          &run_for_ms);
                  });
    parser.toggle("--once", "one poll pass, then exit",
                  [&]() { once = true; });
    parser.toggle("--drain",
                  "exit once every discovered session is "
                  "finalized or evicted",
                  [&]() { drain = true; });
    parser.option("--stop-file", "PATH",
                  "exit cleanly once this file exists",
                  [&](const char *value) {
                      stop_file = value;
                      return true;
                  });
    parser.option("--query", "SECTION",
                  "query mode: print one status section "
                  "(phases|coverage|sessions|stats) and exit",
                  [&](const char *value) {
                      query = value;
                      return true;
                  });
    parser.option("--status", "PATH",
                  "status file to query (the daemon's "
                  "--status-out)",
                  [&](const char *value) {
                      status_in = value;
                      return true;
                  });
    parser.option("--trace-out", "PATH",
                  "write the daemon's own wall-time spans as "
                  "trace-event JSON",
                  [&](const char *value) {
                      trace_out = value;
                      return true;
                  });
    parser.option("--metrics-out", "PATH",
                  "write the process metrics registry as JSON on "
                  "exit",
                  [&](const char *value) {
                      metrics_out = value;
                      return true;
                  });

    switch (parser.parse(argc, argv, 1)) {
      case cli::FlagParser::Outcome::Help: return 0;
      case cli::FlagParser::Outcome::Error: return 2;
      case cli::FlagParser::Outcome::Ok: break;
    }

    if (!query.empty())
        return runQuery(query, status_in);

    if (serve_options.spool_dir.empty()) {
        std::fprintf(stderr, "%s\n", parser.usage().c_str());
        std::fprintf(stderr,
                     "tpupoint-serve wants --spool DIR (daemon) "
                     "or --query SECTION --status PATH\n");
        return 2;
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    serve::SessionManager manager(serve_options);
    const auto started = std::chrono::steady_clock::now();
    for (;;) {
        manager.poll();
        if (!status_out.empty() &&
            !writeStatusFile(manager, status_out))
            return 1;
        if (g_stop || once)
            break;
        if (drain && manager.stats().drained())
            break;
        if (run_for_ms >= 0 &&
            std::chrono::duration_cast<
                std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - started)
                    .count() >= run_for_ms)
            break;
        if (!stop_file.empty()) {
            std::error_code ec;
            if (std::filesystem::exists(stop_file, ec))
                break;
        }
        // Sleep in short slices so a signal or stop file is
        // honored promptly even with a long poll interval.
        std::int64_t slept = 0;
        while (slept < poll_ms && !g_stop) {
            const std::int64_t slice =
                std::min<std::int64_t>(poll_ms - slept, 50);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(slice));
            slept += slice;
        }
    }

    const serve::ServeStats tallies = manager.stats();
    std::printf("serve: %zu sessions (%zu finalized, %zu "
                "evicted), %llu records, %llu events\n",
                tallies.sessions, tallies.finalized,
                tallies.evicted,
                static_cast<unsigned long long>(tallies.records),
                static_cast<unsigned long long>(tallies.events));
    if (!cli::writeTelemetry(trace_out, metrics_out))
        return 1;
    return 0;
}

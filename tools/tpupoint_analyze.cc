/**
 * @file
 * `tpupoint-analyze`: the offline half of the toolchain. Reads a
 * binary profile written by `tpupoint-profile` (or
 * TpuPointProfiler::writeRecords), runs TPUPoint-Analyzer with the
 * chosen phase detector, prints the phase summary and writes the
 * chrome://tracing JSON, phase CSV and analysis JSON next to the
 * input.
 *
 * Usage:
 *   tpupoint-analyze PROFILE [options]
 *     --algorithm ols|kmeans|dbscan       (default ols)
 *     --threshold F       OLS similarity threshold (default 0.70)
 *     --k N               fixed k for k-means (default: 1..15 sweep)
 *     --min-samples N     fixed DBSCAN min-samples (default: sweep)
 *     --out BASE          output base path (default: PROFILE)
 *     --salvage           analyze what survives in a damaged
 *                         profile instead of failing on the first
 *                         corrupt chunk; reports what was dropped
 *     --trace-out PATH    write the tool's own wall-time spans as
 *                         trace-event JSON (Perfetto-loadable)
 *     --metrics-out PATH  write the process metrics registry as
 *                         JSON
 */

#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <string>
#include <vector>

#include "analyzer/visualization.hh"
#include "core/strings.hh"
#include "proto/serialize.hh"
#include "tools/cli_common.hh"

using namespace tpupoint;

namespace {

std::vector<CheckpointInfo>
loadCheckpoints(const std::string &path)
{
    std::vector<CheckpointInfo> out;
    std::ifstream in(path);
    CheckpointInfo info;
    while (in >> info.step >> info.saved_at >> info.bytes)
        out.push_back(info);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: tpupoint-analyze PROFILE "
                     "[--algorithm ols|kmeans|dbscan] "
                     "[--threshold F] [--k N] "
                     "[--min-samples N] [--out BASE] "
                     "[--salvage]\n");
        return 2;
    }
    const std::string profile_path = argv[1];
    std::string out_base = profile_path;
    bool salvage = false;
    std::string trace_out;
    std::string metrics_out;
    AnalyzerOptions options;

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--algorithm") {
            if (!cli::parseAlgorithm(next(),
                                     &options.algorithm)) {
                std::fprintf(stderr, "unknown algorithm\n");
                return 2;
            }
        } else if (arg == "--threshold") {
            options.ols_threshold = std::atof(next());
        } else if (arg == "--k") {
            options.kmeans_fixed_k = std::atoi(next());
        } else if (arg == "--min-samples") {
            options.dbscan_fixed_min_samples =
                static_cast<std::size_t>(std::atoll(next()));
        } else if (arg == "--out") {
            out_base = next();
        } else if (arg == "--salvage") {
            salvage = true;
        } else if (arg == "--trace-out") {
            trace_out = next();
        } else if (arg == "--metrics-out") {
            metrics_out = next();
        } else {
            std::fprintf(stderr, "unknown option %s\n",
                         arg.c_str());
            return 2;
        }
    }

    std::ifstream in(profile_path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr,
                     "error: cannot open profile '%s'\n",
                     profile_path.c_str());
        return 1;
    }

    // Probe the output base before the (possibly long) analysis so
    // a bad --out fails immediately, not after minutes of work.
    {
        std::ofstream probe(out_base + ".trace.json",
                            std::ios::binary);
        if (!probe) {
            std::fprintf(stderr,
                         "error: cannot write output base '%s'\n",
                         out_base.c_str());
            return 1;
        }
    }

    // Stream the profile: each record is folded into the analysis
    // as it is decoded, so memory stays bounded by one chunk plus
    // the aggregated step table, not the profile size.
    AnalysisSession session(options);
    std::vector<ProfileWindowInfo> windows;
    try {
        ProfileReader reader(in, salvage);
        ProfileRecord record;
        while (reader.read(record)) {
            // Attempt-boundary markers are zero-width stitching
            // directives, not profile windows; keep them out of
            // the trace viewer's window track.
            if (!record.attempt_boundary)
                windows.emplace_back(record);
            session.ingest(record);
        }
        cli::recordSalvageMetrics(reader);
        if (salvage && reader.sawDamage()) {
            std::printf(
                "salvage: dropped %llu chunks, %llu records, "
                "skipped %llu bytes%s\n",
                static_cast<unsigned long long>(
                    reader.chunksDropped()),
                static_cast<unsigned long long>(
                    reader.recordsDropped()),
                static_cast<unsigned long long>(
                    reader.bytesSkipped()),
                reader.truncatedTail() ? ", truncated tail" : "");
        } else if (salvage) {
            std::printf("salvage: profile is intact\n");
        }
    } catch (const std::exception &error) {
        std::fprintf(stderr,
                     "error: unreadable profile '%s': %s\n",
                     profile_path.c_str(), error.what());
        return 1;
    }
    if (session.recordsIngested() == 0) {
        std::fprintf(stderr,
                     "error: profile '%s' contains no records\n",
                     profile_path.c_str());
        return 1;
    }

    const auto checkpoints =
        loadCheckpoints(profile_path + ".checkpoints");
    std::printf("loaded %llu profile records, %zu checkpoints\n",
                static_cast<unsigned long long>(
                    session.recordsIngested()),
                checkpoints.size());

    const AnalysisResult analysis = session.finalize(checkpoints);

    if (analysis.dropped_events > 0) {
        std::printf("warning: profiler dropped %llu events at "
                    "transport caps; capped windows undercount\n",
                    static_cast<unsigned long long>(
                        analysis.dropped_events));
    }

    if (analysis.attempts > 1) {
        // A stitched multi-attempt profile: report what the
        // preemptions cost. Replayed steps are in the table once,
        // marked; discarded rows never made it in.
        std::printf("\nattempts: %u (preempted %u times); "
                    "%llu steps replayed, %llu dropped at "
                    "boundaries (%s lost)\n",
                    analysis.attempts, analysis.attempts - 1,
                    static_cast<unsigned long long>(
                        analysis.replayed_steps),
                    static_cast<unsigned long long>(
                        analysis.discarded_steps),
                    formatDuration(
                        analysis.discarded_time).c_str());
    }

    std::printf("\n%s: %zu steps -> %zu phases (top-3 coverage "
                "%.1f%%)\n",
                phaseAlgorithmName(analysis.algorithm),
                analysis.table.size(), analysis.phases.size(),
                100 * analysis.top3_coverage);
    for (const auto *phase : phasesByDuration(analysis.phases)) {
        std::printf("  phase %d%s: steps %llu..%llu, %zu steps, "
                    "%s\n",
                    phase->id, phase->is_noise ? " (noise)" : "",
                    static_cast<unsigned long long>(
                        phase->first_step),
                    static_cast<unsigned long long>(
                        phase->last_step),
                    phase->size(),
                    formatDuration(
                        phase->total_duration).c_str());
    }
    const Phase *longest = analysis.longest();
    if (longest) {
        std::printf("\nlongest phase — top TPU ops:");
        for (const auto &op : topOps(longest->tpu_ops, 5))
            std::printf(" %s(%.0f%%)", op.name.c_str(),
                        100 * op.share);
        std::printf("\nlongest phase — top host ops:");
        for (const auto &op : topOps(longest->host_ops, 5))
            std::printf(" %s(%.0f%%)", op.name.c_str(),
                        100 * op.share);
        std::printf("\n");
    }

    const auto write_artifact =
        [](const std::string &path, const auto &writer) -> bool {
        std::ofstream out(path, std::ios::binary);
        if (out)
            writer(out);
        if (!out) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         path.c_str());
            return false;
        }
        return true;
    };
    const bool wrote_all =
        write_artifact(out_base + ".trace.json",
                       [&](std::ostream &out) {
                           writeChromeTrace(analysis, windows,
                                            out);
                       }) &
        write_artifact(out_base + ".phases.csv",
                       [&](std::ostream &out) {
                           writePhaseCsv(analysis, out);
                       }) &
        write_artifact(out_base + ".summary.json",
                       [&](std::ostream &out) {
                           writeAnalysisJson(analysis, out);
                       });
    if (!wrote_all)
        return 1;
    std::printf("\nwrote %s.trace.json, %s.phases.csv, "
                "%s.summary.json\n",
                out_base.c_str(), out_base.c_str(),
                out_base.c_str());
    if (!cli::writeTelemetry(trace_out, metrics_out))
        return 1;
    return 0;
}

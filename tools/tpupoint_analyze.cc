/**
 * @file
 * `tpupoint-analyze`: the offline half of the toolchain. Reads a
 * binary profile written by `tpupoint-profile` (or
 * TpuPointProfiler::writeRecords), runs TPUPoint-Analyzer with the
 * chosen phase detector(s), prints the phase summary and writes the
 * chrome://tracing JSON, phase CSV and analysis JSON next to the
 * input. Loading and analysis run through the shared
 * runtime::AnalysisPipeline; `--threads` sizes the pool that phase
 * detectors and their sweeps fan out on (results are bit-identical
 * for any thread count).
 *
 * Run with --help for the full flag list.
 */

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <string>
#include <vector>

#include "analyzer/visualization.hh"
#include "core/strings.hh"
#include "runtime/analysis_pipeline.hh"
#include "tools/cli_common.hh"

using namespace tpupoint;

namespace {

std::vector<CheckpointInfo>
loadCheckpoints(const std::string &path)
{
    std::vector<CheckpointInfo> out;
    std::ifstream in(path);
    CheckpointInfo info;
    while (in >> info.step >> info.saved_at >> info.bytes)
        out.push_back(info);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_base;
    std::string trace_out;
    std::string metrics_out;
    runtime::PipelineOptions pipeline_options;
    pipeline_options.threads = 0; // TPUPOINT_THREADS, else hw
    AnalyzerOptions &options = pipeline_options.analyzer;

    cli::FlagParser parser("tpupoint-analyze", "PROFILE");
    parser.option("--algorithm", "ols|kmeans|dbscan",
                  "phase detector (default ols)",
                  [&](const char *value) {
                      if (!cli::parseAlgorithm(
                              value, &options.algorithm)) {
                          std::fprintf(stderr,
                                       "unknown algorithm\n");
                          return false;
                      }
                      return true;
                  });
    parser.option("--also", "ols|kmeans|dbscan",
                  "additional detector to run over the same table "
                  "(repeatable)",
                  [&](const char *value) {
                      PhaseAlgorithm extra;
                      if (!cli::parseAlgorithm(value, &extra)) {
                          std::fprintf(stderr,
                                       "unknown algorithm\n");
                          return false;
                      }
                      options.extra_algorithms.push_back(extra);
                      return true;
                  });
    parser.option("--threshold", "F",
                  "OLS similarity threshold (default 0.70)",
                  [&](const char *value) {
                      options.ols_threshold = std::atof(value);
                      return true;
                  });
    parser.option("--k", "N",
                  "fixed k for k-means (default: 1..15 sweep)",
                  [&](const char *value) {
                      std::int64_t parsed = 0;
                      if (!cli::parseInt(
                              "--k", value, 0,
                              std::numeric_limits<int>::max(),
                              &parsed))
                          return false;
                      options.kmeans_fixed_k =
                          static_cast<int>(parsed);
                      return true;
                  });
    parser.option("--min-samples", "N",
                  "fixed DBSCAN min-samples (default: sweep)",
                  [&](const char *value) {
                      std::uint64_t parsed = 0;
                      if (!cli::parseUint(
                              "--min-samples", value,
                              std::numeric_limits<
                                  std::uint32_t>::max(),
                              &parsed))
                          return false;
                      options.dbscan_fixed_min_samples =
                          static_cast<std::size_t>(parsed);
                      return true;
                  });
    parser.option("--out", "BASE",
                  "output base path (default: PROFILE)",
                  [&](const char *value) {
                      out_base = value;
                      return true;
                  });
    parser.toggle("--salvage",
                  "analyze what survives in a damaged profile and "
                  "report what was dropped",
                  [&]() { pipeline_options.salvage = true; });
    cli::addThreadsFlag(parser, &pipeline_options.threads);
    parser.option("--trace-out", "PATH",
                  "write the tool's own wall-time spans as "
                  "trace-event JSON",
                  [&](const char *value) {
                      trace_out = value;
                      return true;
                  });
    parser.option("--metrics-out", "PATH",
                  "write the process metrics registry as JSON",
                  [&](const char *value) {
                      metrics_out = value;
                      return true;
                  });

    if (argc < 2) {
        std::fprintf(stderr, "%s\n", parser.usage().c_str());
        return 2;
    }
    const std::string profile_path = argv[1];
    if (profile_path == "--help" || profile_path == "-h") {
        parser.printHelp(stdout);
        return 0;
    }
    switch (parser.parse(argc, argv, 2)) {
      case cli::FlagParser::Outcome::Help: return 0;
      case cli::FlagParser::Outcome::Error: return 2;
      case cli::FlagParser::Outcome::Ok: break;
    }
    if (out_base.empty())
        out_base = profile_path;

    if (!cli::profileReadable(profile_path))
        return 1;

    // Probe the output base before the (possibly long) analysis so
    // a bad --out fails immediately, not after minutes of work.
    {
        std::ofstream probe(out_base + ".trace.json",
                            std::ios::binary);
        if (!probe) {
            std::fprintf(stderr,
                         "error: cannot write output base '%s'\n",
                         out_base.c_str());
            return 1;
        }
    }

    // Stream the profile through the shared pipeline; the windows
    // for the trace viewer are collected off the same pass.
    runtime::AnalysisPipeline pipeline(pipeline_options);
    std::vector<ProfileWindowInfo> windows;
    const auto checkpoints =
        loadCheckpoints(profile_path + ".checkpoints");
    AnalysisResult analysis;
    const runtime::PipelineReport report = pipeline.analyzeProfile(
        profile_path, &analysis, checkpoints,
        [&windows](const ColumnarRecord &record) {
            // Attempt-boundary markers are zero-width stitching
            // directives, not profile windows; keep them out of
            // the trace viewer's window track.
            if (!record.attempt_boundary)
                windows.emplace_back(record);
        });
    if (!report.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     report.message.c_str());
        return 1;
    }
    if (pipeline_options.salvage)
        std::printf("%s\n", report.salvageSummary().c_str());

    std::printf("loaded %llu profile records, %zu checkpoints\n",
                static_cast<unsigned long long>(report.records),
                checkpoints.size());

    if (analysis.dropped_events > 0) {
        std::printf("warning: profiler dropped %llu events at "
                    "transport caps; capped windows undercount\n",
                    static_cast<unsigned long long>(
                        analysis.dropped_events));
    }

    if (analysis.attempts > 1) {
        // A stitched multi-attempt profile: report what the
        // preemptions cost. Replayed steps are in the table once,
        // marked; discarded rows never made it in.
        std::printf("\nattempts: %u (preempted %u times); "
                    "%llu steps replayed, %llu dropped at "
                    "boundaries (%s lost)\n",
                    analysis.attempts, analysis.attempts - 1,
                    static_cast<unsigned long long>(
                        analysis.replayed_steps),
                    static_cast<unsigned long long>(
                        analysis.discarded_steps),
                    formatDuration(
                        analysis.discarded_time).c_str());
    }

    std::printf("\n%s: %zu steps -> %zu phases (top-3 coverage "
                "%.1f%%)\n",
                phaseAlgorithmName(analysis.algorithm),
                analysis.table.size(), analysis.phases.size(),
                100 * analysis.top3_coverage);
    for (const auto *phase : phasesByDuration(analysis.phases)) {
        std::printf("  phase %d%s: steps %llu..%llu, %zu steps, "
                    "%s\n",
                    phase->id, phase->is_noise ? " (noise)" : "",
                    static_cast<unsigned long long>(
                        phase->first_step),
                    static_cast<unsigned long long>(
                        phase->last_step),
                    phase->size(),
                    formatDuration(
                        phase->total_duration).c_str());
    }
    // Extra detectors requested with --also: one summary line each.
    for (std::size_t i = 1; i < analysis.detections.size(); ++i) {
        const DetectorResult &extra = analysis.detections[i];
        std::printf("also %s: %zu phases (top-3 coverage "
                    "%.1f%%)\n",
                    phaseAlgorithmName(extra.algorithm),
                    extra.phases.size(),
                    100 * extra.top3_coverage);
    }
    const Phase *longest = analysis.longest();
    if (longest) {
        std::printf("\nlongest phase — top TPU ops:");
        for (const auto &op : topOps(longest->tpu_ops, 5))
            std::printf(" %s(%.0f%%)", op.name.c_str(),
                        100 * op.share);
        std::printf("\nlongest phase — top host ops:");
        for (const auto &op : topOps(longest->host_ops, 5))
            std::printf(" %s(%.0f%%)", op.name.c_str(),
                        100 * op.share);
        std::printf("\n");
    }

    const auto write_artifact =
        [](const std::string &path, const auto &writer) -> bool {
        std::ofstream out(path, std::ios::binary);
        if (out)
            writer(out);
        if (!out) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         path.c_str());
            return false;
        }
        return true;
    };
    const bool wrote_all =
        write_artifact(out_base + ".trace.json",
                       [&](std::ostream &out) {
                           writeChromeTrace(analysis, windows,
                                            out);
                       }) &
        write_artifact(out_base + ".phases.csv",
                       [&](std::ostream &out) {
                           writePhaseCsv(analysis, out);
                       }) &
        write_artifact(out_base + ".summary.json",
                       [&](std::ostream &out) {
                           writeAnalysisJson(analysis, out);
                       });
    if (!wrote_all)
        return 1;
    std::printf("\nwrote %s.trace.json, %s.phases.csv, "
                "%s.summary.json\n",
                out_base.c_str(), out_base.c_str(),
                out_base.c_str());
    if (!cli::writeTelemetry(trace_out, metrics_out))
        return 1;
    return 0;
}

/**
 * @file
 * `tpupoint-validate-json`: gate one or more JSON files through the
 * toolchain's own RFC 8259 validator (core/json.hh). CI uses it to
 * must-parse machine-readable artifacts — bench `--json` reports,
 * metrics dumps — without depending on an external JSON tool.
 * Exits 0 when every file validates, 1 otherwise.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/json.hh"

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: tpupoint-validate-json FILE...\n");
        return 2;
    }
    bool ok = true;
    for (int i = 1; i < argc; ++i) {
        std::ifstream in(argv[i], std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "error: cannot open '%s'\n",
                         argv[i]);
            ok = false;
            continue;
        }
        std::ostringstream text;
        text << in.rdbuf();
        std::string error;
        if (!tpupoint::validateJson(text.str(), &error)) {
            std::fprintf(stderr, "error: %s: %s\n", argv[i],
                         error.c_str());
            ok = false;
            continue;
        }
        std::printf("%s: valid JSON\n", argv[i]);
    }
    return ok ? 0 : 1;
}

/**
 * @file
 * `tpupoint-export`: convert a binary profile written by
 * `tpupoint-profile` into trace-event JSON loadable in Perfetto or
 * chrome://tracing. Each per-step operator row becomes an `X`
 * duration event on its device track, steps and profile windows get
 * their own tracks, idle/MXU device meta-data becomes counter
 * tracks, and every attempt boundary (preemption) becomes an
 * instant event. The profile streams through the shared
 * runtime::AnalysisPipeline reader (records are never materialized
 * as a list).
 *
 * Run with --help for the full flag list.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "core/json.hh"
#include "obs/trace_export.hh"
#include "runtime/analysis_pipeline.hh"
#include "tools/cli_common.hh"

using namespace tpupoint;

namespace {

/** Parse "A:B" into an inclusive step range. */
bool
parseStepRange(const char *text, StepId *first, StepId *last)
{
    const char *colon = std::strchr(text, ':');
    if (!colon || colon == text || colon[1] == '\0')
        return false;
    char *end = nullptr;
    *first = std::strtoull(text, &end, 10);
    if (end != colon)
        return false;
    *last = std::strtoull(colon + 1, &end, 10);
    if (*end != '\0')
        return false;
    return *first <= *last;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path;
    obs::ProfileTraceOptions options;
    runtime::PipelineOptions pipeline_options;
    bool check = false;

    cli::FlagParser parser("tpupoint-export", "PROFILE");
    parser.optionWithAlias(
        "--out", "-o", "PATH",
        "output path (default: PROFILE.trace.json)",
        [&](const char *value) {
            out_path = value;
            return true;
        });
    parser.option("--steps", "A:B",
                  "export only steps A through B inclusive",
                  [&](const char *value) {
                      if (!parseStepRange(value,
                                          &options.first_step,
                                          &options.last_step)) {
                          std::fprintf(
                              stderr,
                              "error: --steps wants A:B with "
                              "A <= B\n");
                          return false;
                      }
                      return true;
                  });
    parser.toggle("--no-ops",
                  "skip per-op rows (steps + windows only)",
                  [&]() { options.include_ops = false; });
    parser.toggle("--no-counters",
                  "skip the idle/MXU counter tracks",
                  [&]() { options.include_counters = false; });
    parser.toggle("--pretty", "indent the JSON",
                  [&]() { options.pretty = true; });
    parser.toggle("--salvage",
                  "convert what survives in a damaged profile "
                  "instead of failing on the first bad chunk",
                  [&]() { pipeline_options.salvage = true; });
    parser.toggle("--check",
                  "re-read the written file and validate it as "
                  "JSON (exit 1 on malformed output)",
                  [&]() { check = true; });

    if (argc < 2) {
        std::fprintf(stderr, "%s\n", parser.usage().c_str());
        return 2;
    }
    const std::string profile_path = argv[1];
    if (profile_path == "--help" || profile_path == "-h") {
        parser.printHelp(stdout);
        return 0;
    }
    switch (parser.parse(argc, argv, 2)) {
      case cli::FlagParser::Outcome::Help: return 0;
      case cli::FlagParser::Outcome::Error: return 2;
      case cli::FlagParser::Outcome::Ok: break;
    }
    if (out_path.empty())
        out_path = profile_path + ".trace.json";

    if (!cli::profileReadable(profile_path))
        return 1;

    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     out_path.c_str());
        return 1;
    }

    // Stream records straight from the pipeline's profile reader
    // into the trace writer: memory stays bounded by one record
    // however large the profile is.
    const runtime::AnalysisPipeline pipeline(pipeline_options);
    obs::ProfileTraceWriter writer(out, options);
    const runtime::PipelineReport report = pipeline.streamProfile(
        profile_path, [&writer](const ProfileRecord &record) {
            writer.add(record);
        });
    if (!report.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     report.message.c_str());
        return 1;
    }
    writer.finish();
    if (report.saw_damage)
        std::printf("%s\n", report.salvageSummary().c_str());
    std::printf("exported %llu records: %llu duration events, "
                "%llu instant events",
                static_cast<unsigned long long>(report.records),
                static_cast<unsigned long long>(
                    writer.durationEvents()),
                static_cast<unsigned long long>(
                    writer.instantEvents()));
    if (writer.stepsFiltered() > 0)
        std::printf(", %llu steps outside --steps",
                    static_cast<unsigned long long>(
                        writer.stepsFiltered()));
    std::printf("\n");
    if (report.events_dropped > 0)
        std::printf("warning: profiler dropped %llu events at "
                    "transport caps; capped windows "
                    "undercount\n",
                    static_cast<unsigned long long>(
                        report.events_dropped));
    out.flush();
    if (!out) {
        std::fprintf(stderr, "error: failed writing %s\n",
                     out_path.c_str());
        return 1;
    }
    out.close();

    if (check) {
        std::ifstream reread(out_path, std::ios::binary);
        std::ostringstream text;
        text << reread.rdbuf();
        std::string error;
        if (!reread || !validateJson(text.str(), &error)) {
            std::fprintf(stderr,
                         "error: %s is not valid JSON: %s\n",
                         out_path.c_str(), error.c_str());
            return 1;
        }
        std::printf("checked: %s is valid JSON (%zu bytes)\n",
                    out_path.c_str(), text.str().size());
    }

    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}

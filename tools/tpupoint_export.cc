/**
 * @file
 * `tpupoint-export`: convert a binary profile written by
 * `tpupoint-profile` into trace-event JSON loadable in Perfetto or
 * chrome://tracing. Each per-step operator row becomes an `X`
 * duration event on its device track, steps and profile windows get
 * their own tracks, idle/MXU device meta-data becomes counter
 * tracks, and every attempt boundary (preemption) becomes an
 * instant event.
 *
 * Usage:
 *   tpupoint-export PROFILE [options]
 *     -o PATH           output path (default: PROFILE.trace.json)
 *     --steps A:B       export only steps A through B inclusive
 *     --no-ops          skip per-op rows (steps + windows only)
 *     --no-counters     skip the idle/MXU counter tracks
 *     --pretty          indent the JSON
 *     --salvage         convert what survives in a damaged profile
 *                       instead of failing on the first bad chunk
 *     --check           re-read the written file and validate it
 *                       as JSON (exit 1 on malformed output)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>

#include "core/json.hh"
#include "obs/trace_export.hh"
#include "proto/serialize.hh"
#include "tools/cli_common.hh"

using namespace tpupoint;

namespace {

/** Parse "A:B" into an inclusive step range. */
bool
parseStepRange(const char *text, StepId *first, StepId *last)
{
    const char *colon = std::strchr(text, ':');
    if (!colon || colon == text || colon[1] == '\0')
        return false;
    char *end = nullptr;
    *first = std::strtoull(text, &end, 10);
    if (end != colon)
        return false;
    *last = std::strtoull(colon + 1, &end, 10);
    if (*end != '\0')
        return false;
    return *first <= *last;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: tpupoint-export PROFILE [-o PATH] "
                     "[--steps A:B] [--no-ops] [--no-counters] "
                     "[--pretty] [--salvage] [--check]\n");
        return 2;
    }
    const std::string profile_path = argv[1];
    std::string out_path = profile_path + ".trace.json";
    obs::ProfileTraceOptions options;
    bool salvage = false;
    bool check = false;

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "-o" || arg == "--out") {
            out_path = next();
        } else if (arg == "--steps") {
            if (!parseStepRange(next(), &options.first_step,
                                &options.last_step)) {
                std::fprintf(stderr,
                             "error: --steps wants A:B with "
                             "A <= B\n");
                return 2;
            }
        } else if (arg == "--no-ops") {
            options.include_ops = false;
        } else if (arg == "--no-counters") {
            options.include_counters = false;
        } else if (arg == "--pretty") {
            options.pretty = true;
        } else if (arg == "--salvage") {
            salvage = true;
        } else if (arg == "--check") {
            check = true;
        } else {
            std::fprintf(stderr, "unknown option %s\n",
                         arg.c_str());
            return 2;
        }
    }

    std::ifstream in(profile_path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr,
                     "error: cannot open profile '%s'\n",
                     profile_path.c_str());
        return 1;
    }
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     out_path.c_str());
        return 1;
    }

    // Stream records straight from the profile reader into the
    // trace writer: memory stays bounded by one record however
    // large the profile is.
    std::uint64_t records = 0;
    std::uint64_t dropped_events = 0;
    try {
        ProfileReader reader(in, salvage);
        obs::ProfileTraceWriter writer(out, options);
        ProfileRecord record;
        while (reader.read(record)) {
            ++records;
            dropped_events += record.events_dropped;
            writer.add(record);
        }
        writer.finish();
        cli::recordSalvageMetrics(reader);
        if (salvage && reader.sawDamage()) {
            std::printf(
                "salvage: dropped %llu chunks, %llu records, "
                "skipped %llu bytes%s\n",
                static_cast<unsigned long long>(
                    reader.chunksDropped()),
                static_cast<unsigned long long>(
                    reader.recordsDropped()),
                static_cast<unsigned long long>(
                    reader.bytesSkipped()),
                reader.truncatedTail() ? ", truncated tail" : "");
        }
        if (records == 0) {
            std::fprintf(stderr,
                         "error: profile '%s' contains no "
                         "records\n",
                         profile_path.c_str());
            return 1;
        }
        std::printf("exported %llu records: %llu duration events, "
                    "%llu instant events",
                    static_cast<unsigned long long>(records),
                    static_cast<unsigned long long>(
                        writer.durationEvents()),
                    static_cast<unsigned long long>(
                        writer.instantEvents()));
        if (writer.stepsFiltered() > 0)
            std::printf(", %llu steps outside --steps",
                        static_cast<unsigned long long>(
                            writer.stepsFiltered()));
        std::printf("\n");
        if (dropped_events > 0)
            std::printf("warning: profiler dropped %llu events at "
                        "transport caps; capped windows "
                        "undercount\n",
                        static_cast<unsigned long long>(
                            dropped_events));
    } catch (const std::exception &error) {
        std::fprintf(stderr,
                     "error: unreadable profile '%s': %s\n",
                     profile_path.c_str(), error.what());
        return 1;
    }
    out.flush();
    if (!out) {
        std::fprintf(stderr, "error: failed writing %s\n",
                     out_path.c_str());
        return 1;
    }
    out.close();

    if (check) {
        std::ifstream reread(out_path, std::ios::binary);
        std::ostringstream text;
        text << reread.rdbuf();
        std::string error;
        if (!reread || !validateJson(text.str(), &error)) {
            std::fprintf(stderr,
                         "error: %s is not valid JSON: %s\n",
                         out_path.c_str(), error.c_str());
            return 1;
        }
        std::printf("checked: %s is valid JSON (%zu bytes)\n",
                    out_path.c_str(), text.str().size());
    }

    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}

/**
 * @file
 * `tpupoint-salvage`: rewrite a damaged profile as a clean one.
 * Reads the input in salvage mode — corrupt chunks are dropped,
 * the reader resynchronizes on the next chunk marker, a truncated
 * tail ends the stream early — and writes every surviving record
 * into a fresh, fully framed profile that the rest of the
 * toolchain accepts without `--salvage`.
 *
 * Usage:
 *   tpupoint-salvage DAMAGED_PROFILE CLEAN_PROFILE
 */

#include <cstdio>
#include <exception>
#include <fstream>
#include <string>

#include "proto/serialize.hh"

using namespace tpupoint;

int
main(int argc, char **argv)
{
    if (argc != 3) {
        std::fprintf(stderr,
                     "usage: tpupoint-salvage DAMAGED_PROFILE "
                     "CLEAN_PROFILE\n");
        return 2;
    }
    const std::string in_path = argv[1];
    const std::string out_path = argv[2];

    std::ifstream in(in_path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr,
                     "error: cannot open profile '%s'\n",
                     in_path.c_str());
        return 1;
    }
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
        std::fprintf(stderr, "error: cannot write '%s'\n",
                     out_path.c_str());
        return 1;
    }

    std::uint64_t salvaged = 0;
    ProfileReader reader(in, /*salvage=*/true);
    try {
        ProfileWriter writer(out);
        ProfileRecord record;
        while (reader.read(record)) {
            writer.write(record);
            ++salvaged;
        }
        writer.finish();
    } catch (const std::exception &error) {
        std::fprintf(stderr, "error: salvage failed: %s\n",
                     error.what());
        return 1;
    }
    out.flush();
    if (!out) {
        std::fprintf(stderr, "error: failed writing '%s'\n",
                     out_path.c_str());
        return 1;
    }

    std::printf("salvaged %llu records",
                static_cast<unsigned long long>(salvaged));
    if (reader.sawDamage()) {
        std::printf(" (dropped %llu chunks, %llu records, "
                    "skipped %llu bytes%s)",
                    static_cast<unsigned long long>(
                        reader.chunksDropped()),
                    static_cast<unsigned long long>(
                        reader.recordsDropped()),
                    static_cast<unsigned long long>(
                        reader.bytesSkipped()),
                    reader.truncatedTail() ? ", truncated tail"
                                           : "");
    } else {
        std::printf(" (input was intact)");
    }
    std::printf("\n");

    if (salvaged == 0) {
        std::fprintf(stderr,
                     "error: nothing salvageable in '%s'\n",
                     in_path.c_str());
        return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}

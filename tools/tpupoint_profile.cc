/**
 * @file
 * `tpupoint-profile`: run one catalog workload under
 * TPUPoint-Profiler and write the binary profile (plus the
 * checkpoint registry) to disk — the front half of the toolchain,
 * separated so profiles can be analyzed offline (and repeatedly)
 * with `tpupoint-analyze`.
 *
 * Usage:
 *   tpupoint-profile [options]
 *     --workload NAME   bert-mrpc|bert-squad|bert-cola|bert-mnli|
 *                       dcgan-cifar10|dcgan-mnist|qanet|retinanet|
 *                       resnet|resnet-cifar10        (default dcgan)
 *     --tpu v2|v3       TPU generation               (default v2)
 *     --scale F         step-scale factor            (default 0.05)
 *     --steps N         hard cap on train steps      (default none)
 *     --naive           use the naive pipeline configuration
 *     --out PATH        output profile path (default tpupoint.profile)
 *     --fault-error-rate F  storage transient-error probability
 *                           per transfer              (default 0)
 *     --fault-seed N    fault-plan seed (default: session seed)
 *     --preempt-at S    device interruption at S simulated seconds
 *                       (repeatable)                  (default none)
 *     --preempt-rate F  Poisson interruptions per simulated hour
 *                       (default 0)
 *     --preempt-seed N  preemption-plan seed (default: session seed)
 *     --max-attempts N  restart budget under preemption (default 8)
 *     --trace-out PATH  write the tool's own wall-time spans as
 *                       trace-event JSON (Perfetto-loadable)
 *     --metrics-out PATH  write the process metrics registry as JSON
 *
 * With preemptions scheduled the run is orchestrated by
 * ResilientRunner: each interruption aborts the session at the next
 * safe boundary, the run restarts from the nearest checkpoint, and
 * every attempt streams into the same profile with attempt-boundary
 * records so `tpupoint-analyze` can stitch the attempts back into
 * one continuous step table. Exit status 1 when the attempt budget
 * runs out before the requested steps complete.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "profiler/profiler.hh"
#include "proto/serialize.hh"
#include "runtime/resilient.hh"
#include "runtime/session.hh"
#include "tools/cli_common.hh"
#include "workloads/catalog.hh"

using namespace tpupoint;

int
main(int argc, char **argv)
{
    std::string workload_name = "dcgan-cifar10";
    std::string tpu = "v2";
    std::string out_path = "tpupoint.profile";
    double scale = 0.05;
    std::uint64_t max_steps = 0;
    double fault_error_rate = 0;
    std::uint64_t fault_seed = 0;
    std::vector<double> preempt_at;
    double preempt_rate = 0;
    std::uint64_t preempt_seed = 0;
    std::uint32_t max_attempts = 8;
    bool naive = false;
    std::string trace_out;
    std::string metrics_out;

    cli::FlagParser parser("tpupoint-profile", "");
    const auto string_into = [](std::string *into) {
        return [into](const char *value) {
            *into = value;
            return true;
        };
    };
    const auto double_into = [](double *into) {
        return [into](const char *value) {
            *into = std::atof(value);
            return true;
        };
    };
    const auto u64_into = [](const char *flag,
                             std::uint64_t *into) {
        return [flag, into](const char *value) {
            return cli::parseUint(
                flag, value,
                std::numeric_limits<std::uint64_t>::max(), into);
        };
    };
    parser.option("--workload", "NAME",
                  "bert-mrpc|bert-squad|bert-cola|bert-mnli|"
                  "dcgan-cifar10|dcgan-mnist|qanet|retinanet|"
                  "resnet|resnet-cifar10 (default dcgan-cifar10)",
                  string_into(&workload_name));
    parser.option("--tpu", "v2|v3",
                  "TPU generation (default v2)",
                  string_into(&tpu));
    parser.option("--scale", "F",
                  "step-scale factor (default 0.05)",
                  double_into(&scale));
    parser.option("--steps", "N",
                  "hard cap on train steps (default none)",
                  u64_into("--steps", &max_steps));
    parser.option("--fault-error-rate", "F",
                  "storage transient-error probability per "
                  "transfer (default 0)",
                  double_into(&fault_error_rate));
    parser.option("--fault-seed", "N",
                  "fault-plan seed (default: session seed)",
                  u64_into("--fault-seed", &fault_seed));
    parser.option("--preempt-at", "S",
                  "device interruption at S simulated seconds "
                  "(repeatable)",
                  [&preempt_at](const char *value) {
                      preempt_at.push_back(std::atof(value));
                      return true;
                  });
    parser.option("--preempt-rate", "F",
                  "Poisson interruptions per simulated hour "
                  "(default 0)",
                  double_into(&preempt_rate));
    parser.option("--preempt-seed", "N",
                  "preemption-plan seed (default: session seed)",
                  u64_into("--preempt-seed", &preempt_seed));
    parser.option("--max-attempts", "N",
                  "restart budget under preemption (default 8)",
                  [&max_attempts](const char *value) {
                      std::uint64_t parsed = 0;
                      if (!cli::parseUint(
                              "--max-attempts", value,
                              std::numeric_limits<
                                  std::uint32_t>::max(),
                              &parsed))
                          return false;
                      max_attempts =
                          static_cast<std::uint32_t>(parsed);
                      return true;
                  });
    parser.toggle("--naive",
                  "use the naive pipeline configuration",
                  [&naive]() { naive = true; });
    parser.option("--out", "PATH",
                  "output profile path "
                  "(default tpupoint.profile)",
                  string_into(&out_path));
    parser.option("--trace-out", "PATH",
                  "write the tool's own wall-time spans as "
                  "trace-event JSON (Perfetto-loadable)",
                  string_into(&trace_out));
    parser.option("--metrics-out", "PATH",
                  "write the process metrics registry as JSON",
                  string_into(&metrics_out));
    switch (parser.parse(argc, argv, 1)) {
      case cli::FlagParser::Outcome::Help: return 0;
      case cli::FlagParser::Outcome::Error: return 2;
      case cli::FlagParser::Outcome::Ok: break;
    }

    WorkloadId id;
    if (!cli::parseWorkload(workload_name, &id)) {
        std::fprintf(stderr, "unknown workload '%s'\n",
                     workload_name.c_str());
        return 2;
    }

    WorkloadOptions options;
    options.step_scale = scale;
    options.max_train_steps = max_steps;
    const RuntimeWorkload workload = makeWorkload(id, options);

    Simulator sim;
    SessionConfig config;
    config.device = tpu == "v3" ? TpuDeviceSpec::v3()
                                : TpuDeviceSpec::v2();
    if (naive)
        config.pipeline = PipelineConfig::naive();
    if (fault_error_rate < 0 || fault_error_rate > 1) {
        std::fprintf(stderr,
                     "error: --fault-error-rate must be in "
                     "[0, 1]\n");
        return 2;
    }
    if (fault_error_rate > 0) {
        config.faults = FaultSpec::uniform(fault_error_rate);
        config.faults.seed = fault_seed;
    }
    if (preempt_rate < 0) {
        std::fprintf(stderr,
                     "error: --preempt-rate must be >= 0\n");
        return 2;
    }
    if (max_attempts < 1) {
        std::fprintf(stderr,
                     "error: --max-attempts must be >= 1\n");
        return 2;
    }
    for (double at : preempt_at) {
        if (at < 0) {
            std::fprintf(stderr,
                         "error: --preempt-at must be >= 0\n");
            return 2;
        }
        config.preemption.events.push_back(
            {static_cast<SimTime>(at * kSec),
             PreemptionKind::Eviction});
    }
    config.preemption.rate_per_hour = preempt_rate;
    config.preemption.seed = preempt_seed;

    // Open the sink up front and stream records to it as they are
    // harvested: memory stays bounded by the spool, not the run
    // length, and an unwritable path fails before the run starts.
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     out_path.c_str());
        return 1;
    }

    std::printf("profiling %s on %s (%llu train steps%s)...\n",
                workload.name.c_str(), config.device.name.c_str(),
                static_cast<unsigned long long>(
                    workload.schedule.train_steps),
                naive ? ", naive pipeline" : "");

    int exit_code = 0;
    std::vector<CheckpointInfo> checkpoints;

    if (config.preemption.enabled()) {
        // Preemption-resilient path: ResilientRunner orchestrates
        // the attempts; each one gets a fresh attempt-stamped
        // profiler streaming into one shared spool (one container,
        // sealed once), with attempt-boundary records interleaved
        // for the analyzer's stitching pass.
        RecordSpool spool(&out);
        ResilientOptions ropts;
        ropts.max_attempts = max_attempts;
        ResilientRunner runner(sim, config, workload, ropts);
        std::unique_ptr<TpuPointProfiler> profiler;
        std::uint64_t records_total = 0;

        runner.setAttemptHook(
            [&](TrainingSession &session, std::uint32_t attempt) {
            if (profiler)
                records_total += profiler->recordsRecorded();
            ProfilerOptions popts;
            popts.retain_records = false;
            popts.attempt = attempt;
            profiler = std::make_unique<TpuPointProfiler>(
                sim, session, popts);
            profiler->streamTo(spool);
            profiler->start(/*analyzer=*/true);
        });
        runner.setBoundaryHook(
            [&](const AttemptOutcome &failed, StepId resume) {
            ProfileRecord boundary;
            boundary.attempt = failed.index + 1;
            boundary.attempt_boundary = true;
            boundary.preempted_at_step = failed.reached_step;
            boundary.resume_step = resume;
            boundary.window_begin = failed.ended_at;
            boundary.window_end = failed.ended_at;
            spool.push(encodeProfileRecord(boundary));
        });

        const ResilientResult result = runner.run();
        if (profiler)
            records_total += profiler->recordsRecorded();
        spool.finish();

        std::printf("done: wall %.1f s across %u attempt%s, "
                    "%llu profile records\n",
                    toSeconds(result.wall_time), result.attempts,
                    result.attempts == 1 ? "" : "s",
                    static_cast<unsigned long long>(
                        records_total));
        std::printf("preemptions: %s; %llu useful steps, "
                    "%llu replayed, %.1f s restart backoff\n",
                    runner.preemptionPlan().summary().c_str(),
                    static_cast<unsigned long long>(
                        result.useful_steps),
                    static_cast<unsigned long long>(
                        result.replayed_steps),
                    toSeconds(result.backoff_time));
        checkpoints = result.checkpoints;
        if (!result.completed) {
            std::fprintf(stderr,
                         "error: attempt budget (%u) exhausted at "
                         "step %llu of %llu\n",
                         max_attempts,
                         static_cast<unsigned long long>(
                             result.final_result.preempted_at),
                         static_cast<unsigned long long>(
                             workload.schedule.train_steps));
            exit_code = 1;
        }
    } else {
        TrainingSession session(sim, config, workload);
        ProfilerOptions profiler_options;
        profiler_options.retain_records = false;
        TpuPointProfiler profiler(sim, session, profiler_options);
        profiler.streamTo(out);
        profiler.start(/*analyzer=*/true);
        session.start(nullptr);
        sim.run();
        profiler.stop();

        const SessionResult &result = session.result();
        std::printf("done: wall %.1f s, idle %.1f%%, MXU %.1f%%, "
                    "%llu profile records\n",
                    toSeconds(result.wall_time),
                    100 * result.tpu_idle_fraction,
                    100 * result.mxu_utilization,
                    static_cast<unsigned long long>(
                        profiler.recordsRecorded()));
        if (session.faultPlan().enabled()) {
            std::printf(
                "faults: %s; %llu retries, %.2f s retried\n",
                session.faultPlan().summary().c_str(),
                static_cast<unsigned long long>(
                    session.storageBucket().retriesPerformed()),
                toSeconds(session.storageBucket().retryTime()));
        }
        checkpoints = session.checkpoints().checkpoints();
    }

    out.flush();
    if (!out) {
        std::fprintf(stderr, "error: failed writing %s\n",
                     out_path.c_str());
        return 1;
    }

    // Checkpoint registry alongside, for phase fast-forwarding;
    // under preemption it accumulates every attempt's saves.
    std::ofstream ckpt_out(out_path + ".checkpoints");
    for (const auto &info : checkpoints) {
        ckpt_out << info.step << ' ' << info.saved_at << ' '
                 << info.bytes << '\n';
    }
    if (!ckpt_out) {
        std::fprintf(stderr, "error: cannot write %s.checkpoints\n",
                     out_path.c_str());
        return 1;
    }
    std::printf("wrote %s and %s.checkpoints\n", out_path.c_str(),
                out_path.c_str());
    if (!cli::writeTelemetry(trace_out, metrics_out))
        return 1;
    return exit_code;
}

/**
 * @file
 * `tpupoint-profile`: run one catalog workload under
 * TPUPoint-Profiler and write the binary profile (plus the
 * checkpoint registry) to disk — the front half of the toolchain,
 * separated so profiles can be analyzed offline (and repeatedly)
 * with `tpupoint-analyze`.
 *
 * Usage:
 *   tpupoint-profile [options]
 *     --workload NAME   bert-mrpc|bert-squad|bert-cola|bert-mnli|
 *                       dcgan-cifar10|dcgan-mnist|qanet|retinanet|
 *                       resnet|resnet-cifar10        (default dcgan)
 *     --tpu v2|v3       TPU generation               (default v2)
 *     --scale F         step-scale factor            (default 0.05)
 *     --steps N         hard cap on train steps      (default none)
 *     --naive           use the naive pipeline configuration
 *     --out PATH        output profile path (default tpupoint.profile)
 *     --fault-error-rate F  storage transient-error probability
 *                           per transfer              (default 0)
 *     --fault-seed N    fault-plan seed (default: session seed)
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "profiler/profiler.hh"
#include "proto/serialize.hh"
#include "runtime/session.hh"
#include "tools/cli_common.hh"
#include "workloads/catalog.hh"

using namespace tpupoint;

int
main(int argc, char **argv)
{
    std::string workload_name = "dcgan-cifar10";
    std::string tpu = "v2";
    std::string out_path = "tpupoint.profile";
    double scale = 0.05;
    std::uint64_t max_steps = 0;
    double fault_error_rate = 0;
    std::uint64_t fault_seed = 0;
    bool naive = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--workload") {
            workload_name = next();
        } else if (arg == "--tpu") {
            tpu = next();
        } else if (arg == "--scale") {
            scale = std::atof(next());
        } else if (arg == "--steps") {
            max_steps =
                static_cast<std::uint64_t>(std::atoll(next()));
        } else if (arg == "--fault-error-rate") {
            fault_error_rate = std::atof(next());
        } else if (arg == "--fault-seed") {
            fault_seed =
                static_cast<std::uint64_t>(std::atoll(next()));
        } else if (arg == "--naive") {
            naive = true;
        } else if (arg == "--out") {
            out_path = next();
        } else {
            std::fprintf(stderr, "unknown option %s\n",
                         arg.c_str());
            return 2;
        }
    }

    WorkloadId id;
    if (!cli::parseWorkload(workload_name, &id)) {
        std::fprintf(stderr, "unknown workload '%s'\n",
                     workload_name.c_str());
        return 2;
    }

    WorkloadOptions options;
    options.step_scale = scale;
    options.max_train_steps = max_steps;
    const RuntimeWorkload workload = makeWorkload(id, options);

    Simulator sim;
    SessionConfig config;
    config.device = tpu == "v3" ? TpuDeviceSpec::v3()
                                : TpuDeviceSpec::v2();
    if (naive)
        config.pipeline = PipelineConfig::naive();
    if (fault_error_rate < 0 || fault_error_rate > 1) {
        std::fprintf(stderr,
                     "error: --fault-error-rate must be in "
                     "[0, 1]\n");
        return 2;
    }
    if (fault_error_rate > 0) {
        config.faults = FaultSpec::uniform(fault_error_rate);
        config.faults.seed = fault_seed;
    }

    // Open the sink up front and stream records to it as they are
    // harvested: memory stays bounded by the spool, not the run
    // length, and an unwritable path fails before the run starts.
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     out_path.c_str());
        return 1;
    }

    std::printf("profiling %s on %s (%llu train steps%s)...\n",
                workload.name.c_str(), config.device.name.c_str(),
                static_cast<unsigned long long>(
                    workload.schedule.train_steps),
                naive ? ", naive pipeline" : "");

    TrainingSession session(sim, config, workload);
    ProfilerOptions profiler_options;
    profiler_options.retain_records = false;
    TpuPointProfiler profiler(sim, session, profiler_options);
    profiler.streamTo(out);
    profiler.start(/*analyzer=*/true);
    session.start(nullptr);
    sim.run();
    profiler.stop();
    out.flush();
    if (!out) {
        std::fprintf(stderr, "error: failed writing %s\n",
                     out_path.c_str());
        return 1;
    }

    const SessionResult &result = session.result();
    std::printf("done: wall %.1f s, idle %.1f%%, MXU %.1f%%, "
                "%llu profile records\n",
                toSeconds(result.wall_time),
                100 * result.tpu_idle_fraction,
                100 * result.mxu_utilization,
                static_cast<unsigned long long>(
                    profiler.recordsRecorded()));
    if (session.faultPlan().enabled()) {
        std::printf("faults: %s; %llu retries, %.2f s retried\n",
                    session.faultPlan().summary().c_str(),
                    static_cast<unsigned long long>(
                        session.storageBucket().retriesPerformed()),
                    toSeconds(
                        session.storageBucket().retryTime()));
    }

    // Checkpoint registry alongside, for phase fast-forwarding.
    std::ofstream ckpt_out(out_path + ".checkpoints");
    for (const auto &info :
         session.checkpoints().checkpoints()) {
        ckpt_out << info.step << ' ' << info.saved_at << ' '
                 << info.bytes << '\n';
    }
    if (!ckpt_out) {
        std::fprintf(stderr, "error: cannot write %s.checkpoints\n",
                     out_path.c_str());
        return 1;
    }
    std::printf("wrote %s and %s.checkpoints\n", out_path.c_str(),
                out_path.c_str());
    return 0;
}

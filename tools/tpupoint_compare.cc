/**
 * @file
 * `tpupoint-compare`: compare two saved profiles (e.g. the same
 * workload on TPUv2 and TPUv3, or before/after a pipeline change):
 * phase counts, whether the top TPU operator is consistent, and
 * the operator-share deltas of the longest phases — the Table II /
 * Observation 5 view of two runs. Both profiles run through the
 * shared runtime::AnalysisPipeline on one `--threads` pool.
 *
 * Run with --help for the full flag list.
 */

#include <cstdio>
#include <iostream>
#include <string>

#include "analyzer/compare.hh"
#include "runtime/analysis_pipeline.hh"
#include "tools/cli_common.hh"

using namespace tpupoint;

namespace {

/**
 * Stream one profile straight into an analysis. Unopenable,
 * unreadable and empty profiles all fail loudly with a nonzero
 * exit instead of comparing garbage.
 */
AnalysisResult
analyzeProfile(const runtime::AnalysisPipeline &pipeline,
               const std::string &path)
{
    AnalysisResult analysis;
    const runtime::PipelineReport report =
        pipeline.analyzeProfile(path, &analysis);
    if (!report.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     report.message.c_str());
        std::exit(1);
    }
    return analysis;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string label_a;
    std::string label_b;
    runtime::PipelineOptions pipeline_options;
    pipeline_options.threads = 0; // TPUPOINT_THREADS, else hw

    cli::FlagParser parser("tpupoint-compare",
                           "PROFILE_A PROFILE_B");
    parser.option("--label-a", "X",
                  "display label for the first profile",
                  [&](const char *value) {
                      label_a = value;
                      return true;
                  });
    parser.option("--label-b", "Y",
                  "display label for the second profile",
                  [&](const char *value) {
                      label_b = value;
                      return true;
                  });
    parser.option(
        "--algorithm", "ols|kmeans|dbscan",
        "phase detector for both profiles (default ols)",
        [&](const char *value) {
            if (!cli::parseAlgorithm(
                    value,
                    &pipeline_options.analyzer.algorithm)) {
                std::fprintf(stderr, "unknown algorithm\n");
                return false;
            }
            return true;
        });
    cli::addThreadsFlag(parser, &pipeline_options.threads);

    if (argc >= 2) {
        const std::string first = argv[1];
        if (first == "--help" || first == "-h") {
            parser.printHelp(stdout);
            return 0;
        }
    }
    if (argc < 3) {
        std::fprintf(stderr, "%s\n", parser.usage().c_str());
        return 2;
    }
    const std::string path_a = argv[1];
    const std::string path_b = argv[2];
    switch (parser.parse(argc, argv, 3)) {
      case cli::FlagParser::Outcome::Help: return 0;
      case cli::FlagParser::Outcome::Error: return 2;
      case cli::FlagParser::Outcome::Ok: break;
    }
    if (label_a.empty())
        label_a = path_a;
    if (label_b.empty())
        label_b = path_b;

    // One pipeline, one pool: both analyses share the --threads
    // knob (and its workers), sequentially per profile.
    const runtime::AnalysisPipeline pipeline(pipeline_options);
    const AnalysisResult a = analyzeProfile(pipeline, path_a);
    const AnalysisResult b = analyzeProfile(pipeline, path_b);
    const AnalysisComparison comparison =
        compareAnalyses(a, b, label_a, label_b);
    writeComparison(comparison, std::cout);

    const auto movers = comparison.movers(0.05);
    if (!movers.empty()) {
        std::printf("\noperators moving >= 5 pp:\n");
        for (const auto &delta : movers) {
            std::printf("  %-30s %+5.1f pp\n",
                        delta.name.c_str(),
                        100 * delta.delta());
        }
    }
    return 0;
}

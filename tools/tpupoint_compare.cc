/**
 * @file
 * `tpupoint-compare`: compare two saved profiles (e.g. the same
 * workload on TPUv2 and TPUv3, or before/after a pipeline change):
 * phase counts, whether the top TPU operator is consistent, and
 * the operator-share deltas of the longest phases — the Table II /
 * Observation 5 view of two runs.
 *
 * Usage:
 *   tpupoint-compare PROFILE_A PROFILE_B [--label-a X]
 *                    [--label-b Y] [--algorithm ols|kmeans|dbscan]
 */

#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>
#include <string>

#include "analyzer/compare.hh"
#include "proto/serialize.hh"
#include "tools/cli_common.hh"

using namespace tpupoint;

namespace {

/**
 * Stream one profile straight into an analysis. Unopenable,
 * unreadable and empty profiles all fail loudly with a nonzero
 * exit instead of comparing garbage.
 */
AnalysisResult
analyzeProfile(const std::string &path,
               const AnalyzerOptions &options)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr,
                     "error: cannot open profile '%s'\n",
                     path.c_str());
        std::exit(1);
    }
    AnalysisSession session(options);
    try {
        ProfileReader reader(in);
        ProfileRecord record;
        while (reader.read(record))
            session.ingest(record);
    } catch (const std::exception &error) {
        std::fprintf(stderr,
                     "error: unreadable profile '%s': %s\n",
                     path.c_str(), error.what());
        std::exit(1);
    }
    if (session.recordsIngested() == 0) {
        std::fprintf(stderr,
                     "error: profile '%s' contains no records\n",
                     path.c_str());
        std::exit(1);
    }
    return session.finalize();
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3) {
        std::fprintf(stderr,
                     "usage: tpupoint-compare PROFILE_A PROFILE_B"
                     " [--label-a X] [--label-b Y]"
                     " [--algorithm ols|kmeans|dbscan]\n");
        return 2;
    }
    const std::string path_a = argv[1];
    const std::string path_b = argv[2];
    std::string label_a = path_a;
    std::string label_b = path_b;
    AnalyzerOptions options;

    for (int i = 3; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--label-a") {
            label_a = next();
        } else if (arg == "--label-b") {
            label_b = next();
        } else if (arg == "--algorithm") {
            if (!cli::parseAlgorithm(next(),
                                     &options.algorithm)) {
                std::fprintf(stderr, "unknown algorithm\n");
                return 2;
            }
        } else {
            std::fprintf(stderr, "unknown option %s\n",
                         arg.c_str());
            return 2;
        }
    }

    const AnalysisResult a = analyzeProfile(path_a, options);
    const AnalysisResult b = analyzeProfile(path_b, options);
    const AnalysisComparison comparison =
        compareAnalyses(a, b, label_a, label_b);
    writeComparison(comparison, std::cout);

    const auto movers = comparison.movers(0.05);
    if (!movers.empty()) {
        std::printf("\noperators moving >= 5 pp:\n");
        for (const auto &delta : movers) {
            std::printf("  %-30s %+5.1f pp\n",
                        delta.name.c_str(),
                        100 * delta.delta());
        }
    }
    return 0;
}

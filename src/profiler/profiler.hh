/**
 * @file
 * TPUPoint-Profiler (Section III): the core of the toolchain. A
 * profiling thread periodically requests profiles from the TPU
 * while training continues uninterrupted; an optional recording
 * thread persists each statistical record to cloud storage for
 * TPUPoint-Analyzer. Mirrors the Figure 2 programming interface:
 *
 * @code
 *   TpuPointProfiler profiler(sim, session, options);
 *   profiler.start(/\*analyzer=*\/true);
 *   session.start(...);   // estimator.train(...)
 *   sim.run();
 *   profiler.stop();
 * @endcode
 *
 * The recording path is streaming: harvested records are framed
 * through a backpressured RecordSpool (trace transport layer) and
 * can be spooled directly to a caller-supplied stream via
 * streamTo(), keeping host memory bounded for arbitrarily long
 * runs. In-memory retention for the optimizer path stays available
 * through ProfilerOptions::retain_records.
 */

#ifndef TPUPOINT_PROFILER_PROFILER_HH
#define TPUPOINT_PROFILER_PROFILER_HH

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "obs/span.hh"
#include "profiler/collector.hh"
#include "proto/serialize.hh"
#include "runtime/session.hh"
#include "sim/simulator.hh"
#include "trace/spool.hh"

namespace tpupoint {

/** TPUPoint-Profiler options. */
struct ProfilerOptions
{
    /** Period between profile requests to the Cloud TPU. */
    SimTime profile_interval = 1 * kSec;

    /**
     * Per-op instrumentation cost while profiling is active (the
     * source of the <10 % overhead Section VII-C reports).
     */
    SimTime trace_overhead_per_op = 120;

    /** Stop profiling when this step completes (0 = whole run). */
    StepId breakpoint = 0;

    /**
     * Keep harvested records in host memory (records()). The
     * optimizer and the in-process analyze examples need this;
     * long-running stream-to-disk profiling turns it off for
     * bounded memory.
     */
    bool retain_records = true;

    /** Recording-thread spool: chunking and backpressure. */
    RecordSpoolOptions spool;

    /**
     * Attempt index stamped into every harvested record (container
     * v4). A resilient run profiles each attempt with a fresh
     * profiler; the stamp lets the analyzer stitch the attempts
     * back into one continuous profile.
     */
    std::uint32_t attempt = 0;
};

/**
 * The profiler. One instance profiles one TrainingSession.
 */
class TpuPointProfiler
{
  public:
    TpuPointProfiler(Simulator &simulator, TrainingSession &session,
                     const ProfilerOptions &options = {});

    ~TpuPointProfiler();

    /**
     * Stream the recorded profile to @p out while the run
     * progresses (the recording thread's storage bucket). Must be
     * called before start(); the stream is sealed at stop().
     */
    void streamTo(std::ostream &out);

    /**
     * Record through an externally owned spool instead of creating
     * one. The spool is shared — several profilers (one per attempt
     * of a resilient run) can write the same container, with the
     * owner interleaving attempt-boundary records and sealing the
     * stream once the whole run is over; stop() leaves it open.
     * Must be called before start(); @p shared must outlive the
     * profiler.
     */
    void streamTo(RecordSpool &shared);

    /**
     * Begin profiling. With @p analyzer true the recording thread
     * persists every record through the spool (to the streamTo()
     * sink when one is attached) for post-execution analysis; with
     * false records are only buffered in host memory (the
     * TPUPoint-Optimizer path).
     */
    void start(bool analyzer = true);

    /** Stop profiling: harvest and store the final record. */
    void stop();

    /** True between start() and stop(). */
    bool running() const { return active; }

    /**
     * All records harvested so far (host-memory buffer).
     * @pre ProfilerOptions::retain_records
     */
    const std::vector<ProfileRecord> &records() const;

    /** Records harvested, independent of retention. */
    std::uint64_t recordsRecorded() const
    {
        return records_recorded;
    }

    /** Serialize all retained records in the binary format. */
    void writeRecords(std::ostream &out) const;

    /** Bytes the recording thread pushed to cloud storage. */
    std::uint64_t bytesRecorded() const { return recorded_bytes; }

    /** Times the recording spool hit its backpressure bound. */
    std::uint64_t spoolStalls() const
    {
        return spool ? spool->stalls() : 0;
    }

    /** Profile requests issued. */
    std::uint64_t requestsIssued() const { return requests; }

  private:
    void scheduleNextRequest();
    void handleResponse();

    Simulator &sim;
    TrainingSession &session;
    ProfilerOptions opts;
    StatsCollector collector;
    std::unique_ptr<obs::TraceSpan> run_span;
    std::vector<ProfileRecord> profile_records;
    std::unique_ptr<RecordSpool> spool;
    RecordSpool *external_spool = nullptr;
    std::ostream *sink = nullptr;
    bool active = false;
    bool analyzer_enabled = false;
    EventId pending_request = 0;
    std::uint64_t requests = 0;
    std::uint64_t recorded_bytes = 0;
    std::uint64_t records_recorded = 0;
};

} // namespace tpupoint

#endif // TPUPOINT_PROFILER_PROFILER_HH

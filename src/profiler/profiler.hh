/**
 * @file
 * TPUPoint-Profiler (Section III): the core of the toolchain. A
 * profiling thread periodically requests profiles from the TPU
 * while training continues uninterrupted; an optional recording
 * thread persists each statistical record to cloud storage for
 * TPUPoint-Analyzer. Mirrors the Figure 2 programming interface:
 *
 * @code
 *   TpuPointProfiler profiler(sim, session, options);
 *   profiler.start(/\*analyzer=*\/true);
 *   session.start(...);   // estimator.train(...)
 *   sim.run();
 *   profiler.stop();
 * @endcode
 */

#ifndef TPUPOINT_PROFILER_PROFILER_HH
#define TPUPOINT_PROFILER_PROFILER_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "profiler/collector.hh"
#include "proto/serialize.hh"
#include "runtime/session.hh"
#include "sim/simulator.hh"

namespace tpupoint {

/** TPUPoint-Profiler options. */
struct ProfilerOptions
{
    /** Period between profile requests to the Cloud TPU. */
    SimTime profile_interval = 1 * kSec;

    /**
     * Per-op instrumentation cost while profiling is active (the
     * source of the <10 % overhead Section VII-C reports).
     */
    SimTime trace_overhead_per_op = 120;

    /** Stop profiling when this step completes (0 = whole run). */
    StepId breakpoint = 0;
};

/**
 * The profiler. One instance profiles one TrainingSession.
 */
class TpuPointProfiler
{
  public:
    TpuPointProfiler(Simulator &simulator, TrainingSession &session,
                     const ProfilerOptions &options = {});

    ~TpuPointProfiler();

    /**
     * Begin profiling. With @p analyzer true the recording thread
     * persists every record to the session's storage bucket for
     * post-execution analysis; with false records are only buffered
     * in host memory (the TPUPoint-Optimizer path).
     */
    void start(bool analyzer = true);

    /** Stop profiling: harvest and store the final record. */
    void stop();

    /** True between start() and stop(). */
    bool running() const { return active; }

    /** All records harvested so far (host-memory buffer). */
    const std::vector<ProfileRecord> &records() const
    {
        return profile_records;
    }

    /** Serialize all records in the binary profile format. */
    void writeRecords(std::ostream &out) const;

    /** Bytes the recording thread pushed to cloud storage. */
    std::uint64_t bytesRecorded() const { return recorded_bytes; }

    /** Profile requests issued. */
    std::uint64_t requestsIssued() const { return requests; }

  private:
    void scheduleNextRequest();
    void handleResponse();

    Simulator &sim;
    TrainingSession &session;
    ProfilerOptions opts;
    StatsCollector collector;
    std::vector<ProfileRecord> profile_records;
    bool active = false;
    bool analyzer_enabled = false;
    EventId pending_request = 0;
    std::uint64_t requests = 0;
    std::uint64_t recorded_bytes = 0;
};

} // namespace tpupoint

#endif // TPUPOINT_PROFILER_PROFILER_HH

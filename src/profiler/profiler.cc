#include "profiler/profiler.hh"

#include "core/logging.hh"
#include "obs/metrics.hh"

namespace tpupoint {

TpuPointProfiler::TpuPointProfiler(Simulator &simulator,
                                   TrainingSession &session_ref,
                                   const ProfilerOptions &options)
    : sim(simulator), session(session_ref), opts(options),
      collector(simulator.now())
{
    if (opts.profile_interval <= 0)
        fatal("TpuPointProfiler: profile interval must be positive");
}

TpuPointProfiler::~TpuPointProfiler()
{
    if (active) {
        // Detach cleanly; the session may outlive the profiler.
        session.traceHub().attach(nullptr);
        session.tpu().setTraceOverhead(0);
        if (pending_request)
            sim.cancel(pending_request);
    }
}

void
TpuPointProfiler::streamTo(std::ostream &out)
{
    if (active)
        fatal("TpuPointProfiler::streamTo: profiler is running");
    if (spool || external_spool)
        fatal("TpuPointProfiler::streamTo: stream already open");
    sink = &out;
}

void
TpuPointProfiler::streamTo(RecordSpool &shared)
{
    if (active)
        fatal("TpuPointProfiler::streamTo: profiler is running");
    if (spool || external_spool || sink)
        fatal("TpuPointProfiler::streamTo: stream already open");
    external_spool = &shared;
}

void
TpuPointProfiler::start(bool analyzer)
{
    if (active)
        panic("TpuPointProfiler::start called while running");
    active = true;
    analyzer_enabled = analyzer;
    collector = StatsCollector(sim.now());
    run_span = std::make_unique<obs::TraceSpan>("profiler.run");
    run_span->arg("attempt",
                  static_cast<std::uint64_t>(opts.attempt));
    if (analyzer_enabled && !spool && !external_spool) {
        // The recording thread's bounded spool; without a
        // streamTo() sink it only accounts for the traffic.
        spool = std::make_unique<RecordSpool>(sink, opts.spool);
    }
    session.traceHub().attach(&collector);
    session.tpu().setTraceOverhead(opts.trace_overhead_per_op);
    scheduleNextRequest();
}

void
TpuPointProfiler::scheduleNextRequest()
{
    pending_request =
        sim.schedule(opts.profile_interval, [this]() {
            pending_request = 0;
            handleResponse();
            if (!active)
                return;
            if (session.finished()) {
                // The TensorFlow application completed; issue the
                // final request and terminate the threads.
                stop();
                return;
            }
            if (opts.breakpoint &&
                session.currentStep() >= opts.breakpoint) {
                stop();
                return;
            }
            scheduleNextRequest();
        });
}

void
TpuPointProfiler::handleResponse()
{
    ++requests;
    ProfileRecord record = collector.harvest(sim.now());
    if (record.event_count == 0 && record.steps.empty())
        return; // nothing happened in this window
    record.attempt = opts.attempt;
    ++records_recorded;
    RecordSpool *out_spool =
        external_spool ? external_spool : spool.get();
    if (analyzer_enabled && out_spool) {
        // The recording thread frames the statistical record
        // through the spool and streams it toward cloud storage
        // while profiling continues.
        const std::uint64_t before = out_spool->bytesSpooled();
        out_spool->push(encodeProfileRecord(record));
        const std::uint64_t bytes =
            out_spool->bytesSpooled() - before;
        recorded_bytes += bytes;
        session.storageBucket().write(bytes, nullptr);
    }
    if (opts.retain_records)
        profile_records.push_back(std::move(record));
}

const std::vector<ProfileRecord> &
TpuPointProfiler::records() const
{
    if (!opts.retain_records && records_recorded > 0)
        fatal("TpuPointProfiler::records: retention is disabled "
              "(streaming-only profile)");
    return profile_records;
}

void
TpuPointProfiler::writeRecords(std::ostream &out) const
{
    if (!opts.retain_records && records_recorded > 0)
        fatal("TpuPointProfiler::writeRecords: retention is "
              "disabled; use streamTo() before start()");
    ProfileWriter writer(out);
    for (const auto &record : profile_records)
        writer.write(record);
    writer.finish();
}

void
TpuPointProfiler::stop()
{
    if (!active)
        return;
    handleResponse(); // the last profile request
    session.traceHub().attach(nullptr);
    session.tpu().setTraceOverhead(0);
    if (pending_request) {
        sim.cancel(pending_request);
        pending_request = 0;
    }
    // An owned spool seals its container here; a shared external
    // spool stays open — its owner seals after the final attempt.
    if (spool)
        spool->finish();
    active = false;

    // Fold this run's transport totals into the process metrics.
    // Only the owned spool is charged here: a shared spool's totals
    // belong to its owner, or attempts would double count.
    auto &registry = obs::MetricsRegistry::global();
    registry.counter("profiler.requests").add(requests);
    registry.counter("profiler.windows_recorded")
        .add(records_recorded);
    registry.counter("spool.bytes").add(recorded_bytes);
    if (spool) {
        registry.counter("spool.chunks").add(spool->chunksSpooled());
        registry.counter("spool.stalls").add(spool->stalls());
    }
    if (run_span) {
        run_span->arg("requests", requests);
        run_span->arg("windows", records_recorded);
        run_span->arg("bytes", recorded_bytes);
        run_span->finish();
        run_span.reset();
    }
}

} // namespace tpupoint

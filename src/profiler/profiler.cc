#include "profiler/profiler.hh"

#include <sstream>

#include "core/logging.hh"

namespace tpupoint {

TpuPointProfiler::TpuPointProfiler(Simulator &simulator,
                                   TrainingSession &session_ref,
                                   const ProfilerOptions &options)
    : sim(simulator), session(session_ref), opts(options),
      collector(simulator.now())
{
    if (opts.profile_interval <= 0)
        fatal("TpuPointProfiler: profile interval must be positive");
}

TpuPointProfiler::~TpuPointProfiler()
{
    if (active) {
        // Detach cleanly; the session may outlive the profiler.
        session.traceHub().attach(nullptr);
        session.tpu().setTraceOverhead(0);
        if (pending_request)
            sim.cancel(pending_request);
    }
}

void
TpuPointProfiler::start(bool analyzer)
{
    if (active)
        panic("TpuPointProfiler::start called while running");
    active = true;
    analyzer_enabled = analyzer;
    collector = StatsCollector(sim.now());
    session.traceHub().attach(&collector);
    session.tpu().setTraceOverhead(opts.trace_overhead_per_op);
    scheduleNextRequest();
}

void
TpuPointProfiler::scheduleNextRequest()
{
    pending_request =
        sim.schedule(opts.profile_interval, [this]() {
            pending_request = 0;
            handleResponse();
            if (!active)
                return;
            if (session.finished()) {
                // The TensorFlow application completed; issue the
                // final request and terminate the threads.
                stop();
                return;
            }
            if (opts.breakpoint &&
                session.currentStep() >= opts.breakpoint) {
                stop();
                return;
            }
            scheduleNextRequest();
        });
}

void
TpuPointProfiler::handleResponse()
{
    ++requests;
    ProfileRecord record = collector.harvest(sim.now());
    if (record.event_count == 0 && record.steps.empty())
        return; // nothing happened in this window
    if (analyzer_enabled) {
        // The recording thread serializes the statistical record
        // and streams it to cloud storage while profiling
        // continues.
        std::ostringstream buffer;
        ProfileWriter writer(buffer);
        writer.write(record);
        const std::uint64_t bytes = buffer.str().size();
        recorded_bytes += bytes;
        session.storageBucket().write(bytes, nullptr);
    }
    profile_records.push_back(std::move(record));
}

void
TpuPointProfiler::writeRecords(std::ostream &out) const
{
    ProfileWriter writer(out);
    for (const auto &record : profile_records)
        writer.write(record);
}

void
TpuPointProfiler::stop()
{
    if (!active)
        return;
    handleResponse(); // the last profile request
    session.traceHub().attach(nullptr);
    session.tpu().setTraceOverhead(0);
    if (pending_request) {
        sim.cancel(pending_request);
        pending_request = 0;
    }
    active = false;
}

} // namespace tpupoint

#include "profiler/collector.hh"

#include <algorithm>
#include <string_view>

#include "host/host_ops.hh"
#include "obs/logger.hh"

namespace tpupoint {

namespace {

/**
 * A saturated window drops every further event, so the drop report
 * must be per-interval, not per-event — one structured line with
 * the running tally, never a line per dropped event.
 */
void
reportDrop(const char *why, std::uint64_t dropped_total)
{
    static obs::LogSite drop_site(5000);
    obs::Logger::global().logLimited(
        drop_site, LogLevel::Warn, "profiler",
        "profile window saturated; dropping events",
        {{"cause", why}, {"dropped", dropped_total}});
}

} // namespace

StatsCollector::StatsCollector(SimTime start)
    : window_begin(start),
      accepted_metric(&obs::MetricsRegistry::global().counter(
          "profiler.events_accepted")),
      dropped_metric(&obs::MetricsRegistry::global().counter(
          "profiler.events_dropped"))
{
}

void
StatsCollector::record(const TraceEvent &event)
{
    if (events >= kMaxEventsPerProfile) {
        truncated = true;
        ++dropped;
        dropped_metric->add(1);
        reportDrop("event cap", dropped);
        return;
    }
    if (event.end() - window_begin > kMaxProfileDuration) {
        truncated = true;
        ++dropped;
        dropped_metric->add(1);
        reportDrop("duration cap", dropped);
        return;
    }
    StepId step = event.step;
    if (step == kNoStep) {
        step = latest_step; // out-of-step events join the current
    } else {
        latest_step = std::max(latest_step, step);
    }
    auto [it, inserted] = steps.try_emplace(step);
    if (inserted)
        it->second.step = step;
    it->second.add(event);
    if (event.type &&
        std::string_view(event.type) == hostop::kStorageRetry) {
        // Surface fault-induced retries as window meta-data so the
        // analyzer can attribute slowdown without op-name lookups.
        ++retry_events;
        retry_time += event.duration;
    }
    ++events;
    accepted_metric->add(1);
}

ProfileRecord
StatsCollector::harvest(SimTime window_end)
{
    ProfileRecord record;
    record.sequence = sequence++;
    record.window_begin = window_begin;
    record.window_end = window_end;
    record.event_count = events;
    record.truncated = truncated;
    record.events_dropped = dropped;
    record.retries = retry_events;
    record.retry_time = retry_time;

    SimTime busy = 0;
    SimTime mxu = 0;
    record.steps.reserve(steps.size());
    for (auto &[step, stats] : steps) {
        busy += stats.tpu_busy;
        mxu += stats.mxu_active;
        record.steps.push_back(std::move(stats));
    }
    const double span = static_cast<double>(record.span());
    if (span > 0) {
        record.tpu_idle_fraction =
            std::max(0.0, 1.0 - static_cast<double>(busy) / span);
        record.mxu_utilization = static_cast<double>(mxu) / span;
    }

    steps.clear();
    events = 0;
    dropped = 0;
    truncated = false;
    retry_events = 0;
    retry_time = 0;
    window_begin = window_end;
    return record;
}

} // namespace tpupoint

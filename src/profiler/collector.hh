/**
 * @file
 * The statistics collector behind TPUPoint-Profiler. It consumes
 * the raw event stream and maintains per-step operator statistics
 * for the current profile window — "by storing only statistical
 * information in a profile, TPUPoint-Profiler reduces memory
 * consumption and accelerates the post-processing" (Section III-A).
 */

#ifndef TPUPOINT_PROFILER_COLLECTOR_HH
#define TPUPOINT_PROFILER_COLLECTOR_HH

#include <cstdint>
#include <map>

#include "obs/metrics.hh"
#include "proto/event.hh"
#include "proto/limits.hh"
#include "proto/record.hh"

namespace tpupoint {

/**
 * Aggregates trace events into the per-step summaries of one
 * profile window. Enforces the transport caps: once a window holds
 * 1,000,000 events or spans 60 s, further events are dropped and
 * the harvested record is flagged truncated.
 */
class StatsCollector : public TraceSink
{
  public:
    /** Begin the first window at @p start. */
    explicit StatsCollector(SimTime start = 0);

    void record(const TraceEvent &event) override;

    /**
     * Close the current window and return its record; a fresh
     * window begins at @p window_end.
     */
    ProfileRecord harvest(SimTime window_end);

    /** Events accepted into the current window. */
    std::uint64_t eventsInWindow() const { return events; }

    /** Events rejected from the current window after a cap. */
    std::uint64_t eventsDropped() const { return dropped; }

    /** True once the current window hit a transport cap. */
    bool overflowed() const { return truncated; }

    /** Start timestamp of the current window. */
    SimTime windowBegin() const { return window_begin; }

  private:
    std::map<StepId, StepStats> steps;
    SimTime window_begin;
    std::uint64_t events = 0;
    std::uint64_t dropped = 0;
    std::uint64_t sequence = 0;
    bool truncated = false;
    StepId latest_step = 0;
    std::uint64_t retry_events = 0;
    SimTime retry_time = 0;

    /** Registry counters, resolved once so the per-event path is a
     * relaxed atomic increment with no registry lookup. Pointers
     * (not references) keep the collector assignable — the profiler
     * replaces its collector at every start(). */
    obs::Counter *accepted_metric;
    obs::Counter *dropped_metric;
};

/**
 * A sink that retains raw events (tests and visualization demos
 * only — the production path never stores raw events).
 */
class InMemoryTrace : public TraceSink
{
  public:
    void
    record(const TraceEvent &event) override
    {
        trace.push_back(event);
    }

    const std::vector<TraceEvent> &events() const { return trace; }

    void clear() { trace.clear(); }

  private:
    std::vector<TraceEvent> trace;
};

} // namespace tpupoint

#endif // TPUPOINT_PROFILER_COLLECTOR_HH

/**
 * @file
 * Scoped wall-time spans for the toolchain itself: how long the
 * *tools* spent profiling, ingesting, clustering or restarting — as
 * opposed to the simulated time the tools reason about. A TraceSpan
 * measures the wall time between its construction and destruction
 * (std::chrono::steady_clock) and deposits a SpanRecord into a
 * bounded in-memory buffer, attributed with the recording thread
 * and optional key=value args. Spans never touch the Simulator or
 * any seeded stream, so instrumented and uninstrumented runs are
 * bit-identical.
 */

#ifndef TPUPOINT_OBS_SPAN_HH
#define TPUPOINT_OBS_SPAN_HH

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace tpupoint {
namespace obs {

/** One completed span. Times are steady-clock nanoseconds. */
struct SpanRecord
{
    std::string name;
    std::uint64_t thread_id = 0;
    std::int64_t begin_ns = 0;
    std::int64_t end_ns = 0;
    std::vector<std::pair<std::string, std::string>> args;

    std::int64_t duration_ns() const { return end_ns - begin_ns; }
};

/**
 * Bounded, thread-safe buffer of completed spans. Once full,
 * further spans are dropped and counted — self-telemetry must
 * never grow without bound inside a long sweep.
 */
class SpanBuffer
{
  public:
    explicit SpanBuffer(std::size_t capacity = 8192);

    /** The process-wide buffer the CLI tools dump. */
    static SpanBuffer &global();

    /** Deposit one completed span. */
    void add(SpanRecord record);

    /** Copy of every retained span, in completion order. */
    std::vector<SpanRecord> snapshot() const;

    /** Spans retained. */
    std::size_t size() const;

    /** Spans rejected because the buffer was full. */
    std::uint64_t dropped() const;

    /** Retention bound. */
    std::size_t capacity() const { return bound; }

    /** Forget everything (tests and per-run dumps). */
    void clear();

  private:
    mutable std::mutex guard;
    std::vector<SpanRecord> spans;
    std::size_t bound;
    std::uint64_t rejected = 0;
};

/**
 * RAII span: times the enclosing scope on the wall clock and
 * records into a SpanBuffer (the global one by default) when the
 * scope exits.
 *
 * @code
 *   {
 *       obs::TraceSpan span("analyze.kmeans");
 *       span.arg("steps", table.size());
 *       ... // work
 *   }   // span recorded here
 * @endcode
 */
class TraceSpan
{
  public:
    explicit TraceSpan(std::string name,
                       SpanBuffer &buffer = SpanBuffer::global());

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

    /** Records the span. */
    ~TraceSpan();

    /** Attach one key=value argument. */
    TraceSpan &arg(std::string key, std::string value);
    TraceSpan &arg(std::string key, std::uint64_t value);
    TraceSpan &arg(std::string key, std::int64_t value);
    TraceSpan &arg(std::string key, double value);

    /** Close and record the span before scope exit. Idempotent. */
    void finish();

  private:
    SpanBuffer &sink;
    SpanRecord record;
    std::chrono::steady_clock::time_point started;
    bool done = false;
};

/** Stable identifier for the calling thread (for span records). */
std::uint64_t currentThreadId();

} // namespace obs
} // namespace tpupoint

#endif // TPUPOINT_OBS_SPAN_HH

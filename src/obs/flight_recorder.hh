/**
 * @file
 * The flight recorder: a bounded, lock-free ring of the process's
 * most recent observability events — structured log lines, span
 * completions and periodic metrics snapshots — kept pre-serialized
 * so the ring can be dumped from contexts where serialization is
 * forbidden. It is the serve daemon's black box: when a session is
 * quarantined, when the process takes a fatal signal, or when an
 * operator sends SIGUSR2, the last few hundred events land in a
 * `.flight.json` file that explains what the process was doing in
 * the moments before.
 *
 * Two dump paths with different contracts:
 *
 *  - dump(): normal context. Serializes the ring plus a live
 *    metrics snapshot and publishes via temp file + atomic rename
 *    (through the "obs.flight_write"/"obs.flight_rename" io fail
 *    points), so readers never observe a half-written document.
 *  - signalSafeDump(): async-signal context. Because every ring
 *    entry is already a complete JSON object, the handler only
 *    open()s, write()s constant punctuation plus slot bytes,
 *    fsync()s and close()s — all async-signal-safe; no allocation,
 *    no formatting, no locks. The target path is registered ahead
 *    of time with setSignalDumpPath().
 *
 * record() is lock-free: a relaxed fetch_add claims a sequence
 * number, the slot is stamped invalid, filled, then stamped with
 * seq+1 (release). Dumpers re-check the stamp after copying and
 * drop torn slots — a recorder must never block or corrupt the
 * thing it is observing. Entries larger than a slot are counted
 * (`dropped_oversize`) and replaced with a marker, never truncated
 * into invalid JSON. Nothing here touches the sim clock; enabling
 * the recorder cannot perturb a run.
 */

#ifndef TPUPOINT_OBS_FLIGHT_RECORDER_HH
#define TPUPOINT_OBS_FLIGHT_RECORDER_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>

namespace tpupoint {
namespace obs {

struct MetricsSnapshot;
struct SpanRecord;

/** Bytes of serialized JSON one ring slot can hold. */
constexpr std::size_t kFlightSlotBytes = 1008;

class FlightRecorder
{
  public:
    /**
     * @param slots Ring capacity in entries; the recorder retains
     *     the most recent `slots` events.
     */
    explicit FlightRecorder(std::size_t slots = 256);
    ~FlightRecorder();

    FlightRecorder(const FlightRecorder &) = delete;
    FlightRecorder &operator=(const FlightRecorder &) = delete;

    /** The process-wide recorder the Logger and serve mirror to. */
    static FlightRecorder &global();

    /**
     * Arm the recorder. Until enabled, record() is a single relaxed
     * load — the tax on processes that never dump.
     */
    void enable();

    /** Disarm (tests). Does not clear retained entries. */
    void disable();

    bool
    enabled() const
    {
        return armed.load(std::memory_order_relaxed);
    }

    /**
     * Deposit one pre-serialized JSON *object* ("{...}", no
     * trailing newline). Oversize entries are counted and replaced
     * with a marker object. Lock-free; safe from any thread.
     */
    void record(std::string_view json_object);

    /** Serialize + record one completed span. */
    void recordSpan(const SpanRecord &span);

    /**
     * Serialize + record a compact metrics snapshot (counters and
     * gauges; histograms summarized as count/sum). Stops cleanly at
     * the slot budget with `"truncated":true`.
     */
    void recordSnapshot(const MetricsSnapshot &snapshot);

    /** Entries recorded since construction (monotonic). */
    std::uint64_t recorded() const;

    /** Entries replaced by an oversize marker. */
    std::uint64_t droppedOversize() const;

    /** Ring capacity in entries. */
    std::size_t capacity() const { return slot_count; }

    /**
     * Write the flight document:
     * {"reason":..,"recorded":..,"events":[...],"metrics":{...}}.
     * Events are oldest-first; torn slots are skipped.
     */
    void writeJson(std::ostream &out,
                   std::string_view reason) const;

    /**
     * Publish the flight document to @p path atomically (temp +
     * rename). @return false with @p error set on failure; the
     * daemon treats that as retryable, never fatal.
     */
    bool dump(const std::string &path, std::string_view reason,
              std::string *error = nullptr) const;

    /**
     * Register @p path for signalSafeDump(); copied into a fixed
     * buffer so signal context never touches the heap. Paths
     * longer than the buffer are rejected.
     */
    bool setSignalDumpPath(const char *path);

    /**
     * Dump the ring to the registered path using only
     * async-signal-safe calls (open/write/fsync/close). Safe to
     * call from a signal handler; a best-effort no-op when no path
     * is registered or the recorder is disabled.
     * @return true when the file was written and fsynced.
     */
    bool signalSafeDump() const;

  private:
    struct Slot;

    std::size_t slot_count;
    std::unique_ptr<Slot[]> slots;
    std::atomic<std::uint64_t> next{0};
    std::atomic<std::uint64_t> oversize{0};
    std::atomic<std::uint64_t> contended{0};
    std::atomic<bool> armed{false};
    char signal_path[512] = {0};
    std::atomic<bool> signal_path_set{false};
};

} // namespace obs
} // namespace tpupoint

#endif // TPUPOINT_OBS_FLIGHT_RECORDER_HH

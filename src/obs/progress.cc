#include "obs/progress.hh"

#include <cstdio>

#ifdef __unix__
#include <unistd.h>
#endif

#include "core/json.hh"
#include "core/logging.hh"

namespace tpupoint {
namespace obs {

const char *
progressKindName(ProgressEvent::Kind kind)
{
    switch (kind) {
      case ProgressEvent::Kind::Start: return "start";
      case ProgressEvent::Kind::Retry: return "retry";
      case ProgressEvent::Kind::Finish: return "finish";
    }
    panic("progressKindName: unknown kind");
}

ProgressReporter::ProgressReporter(std::ostream &out, Mode mode)
    : stream(out), render_mode(mode)
{
}

ProgressReporter::~ProgressReporter()
{
    finish();
}

ProgressReporter::Mode
ProgressReporter::autoMode(int fd)
{
#ifdef __unix__
    if (isatty(fd))
        return Mode::StatusLine;
#else
    (void)fd;
#endif
    return Mode::Jsonl;
}

void
ProgressReporter::operator()(const ProgressEvent &event)
{
    if (render_mode == Mode::Jsonl) {
        // One self-contained object per line; flushed so tailing
        // the stream sees each event as it happens.
        JsonWriter w(stream);
        w.beginObject();
        w.field("event", progressKindName(event.kind));
        w.field("job", static_cast<std::uint64_t>(event.item));
        w.field("total", static_cast<std::uint64_t>(event.total));
        w.field("attempt",
                static_cast<std::uint64_t>(event.attempt));
        if (event.kind == ProgressEvent::Kind::Finish) {
            w.field("status", event.status);
            w.field("wall_s", event.wall_seconds);
        }
        w.field("started",
                static_cast<std::uint64_t>(event.started));
        w.field("succeeded",
                static_cast<std::uint64_t>(event.succeeded));
        w.field("preempted",
                static_cast<std::uint64_t>(event.preempted));
        w.field("failed",
                static_cast<std::uint64_t>(event.failed));
        w.field("retried",
                static_cast<std::uint64_t>(event.retried));
        w.endObject();
        stream << '\n';
        stream.flush();
        return;
    }

    // Status line: repaint in place. Trailing spaces wipe leftover
    // characters from a longer previous line.
    char line[160];
    if (event.kind == ProgressEvent::Kind::Finish) {
        std::snprintf(line, sizeof(line),
                      "[%zu/%zu] job %zu %s (%.1fs)  "
                      "ok:%zu preempted:%zu failed:%zu",
                      event.finished(), event.total, event.item,
                      event.status, event.wall_seconds,
                      event.succeeded, event.preempted,
                      event.failed);
    } else {
        std::snprintf(line, sizeof(line),
                      "[%zu/%zu] job %zu %s (attempt %u)",
                      event.finished(), event.total, event.item,
                      progressKindName(event.kind),
                      event.attempt);
    }
    stream << '\r' << line << "          " << std::flush;
    line_open = true;
}

void
ProgressReporter::finish()
{
    if (render_mode == Mode::StatusLine && line_open) {
        stream << '\n' << std::flush;
        line_open = false;
    }
}

} // namespace obs
} // namespace tpupoint

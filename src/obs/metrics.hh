/**
 * @file
 * Process-wide metrics registry: named counters, gauges and
 * exponential-bucket histograms for the toolchain's own telemetry.
 * The hot-path contract is the one production metric libraries
 * offer: instruments are registered once (under a lock) and then
 * held by pointer/reference, so recording is a single relaxed
 * atomic operation with no lock and no lookup. Everything here
 * measures the *tools* (events spooled, retries performed, jobs
 * completed) — nothing feeds back into simulated time, so metrics
 * can never perturb a run's determinism.
 */

#ifndef TPUPOINT_OBS_METRICS_HH
#define TPUPOINT_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tpupoint {
namespace obs {

/** Monotonically increasing event count. */
class Counter
{
  public:
    /** Add @p n to the counter (relaxed; hot-path safe). */
    void
    add(std::uint64_t n = 1)
    {
        total.fetch_add(n, std::memory_order_relaxed);
    }

    /** Current value. */
    std::uint64_t
    value() const
    {
        return total.load(std::memory_order_relaxed);
    }

    /** Reset to zero (tests and per-run dumps). */
    void reset() { total.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> total{0};
};

/** Last-write-wins instantaneous value. */
class Gauge
{
  public:
    void
    set(std::int64_t v)
    {
        current.store(v, std::memory_order_relaxed);
    }

    std::int64_t
    value() const
    {
        return current.load(std::memory_order_relaxed);
    }

    void reset() { current.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::int64_t> current{0};
};

/** Histogram bucketing: fixed exponential boundaries. */
struct HistogramOptions
{
    /** Upper bound of the first bucket. */
    std::uint64_t first_bound = 1;

    /** Ratio between consecutive bucket bounds (>= 2). */
    std::uint64_t growth = 2;

    /** Finite buckets; one implicit overflow bucket follows. */
    std::size_t buckets = 20;
};

/**
 * Fixed-exponential-bucket histogram. Bucket i counts observations
 * v <= first_bound * growth^i; the final (overflow) bucket counts
 * everything larger. observe() is lock-free: one bounded scan over
 * precomputed bounds plus three atomic adds, the last of which
 * (the observation count) is the release that publishes the other
 * two to acquiring readers.
 */
class Histogram
{
  public:
    explicit Histogram(const HistogramOptions &options = {});

    /** Record one observation. */
    void observe(std::uint64_t value);

    /**
     * Observations recorded. Acquire-paired with observe()'s
     * final release increment: read count() first and the
     * subsequent sum()/bucketCount() reads cover at least those
     * observations — no torn count-without-sum snapshots.
     */
    std::uint64_t
    count() const
    {
        return observations.load(std::memory_order_acquire);
    }

    /** Sum of all observations. */
    std::uint64_t
    sum() const
    {
        return total.load(std::memory_order_relaxed);
    }

    /** Inclusive upper bounds, one per finite bucket. */
    const std::vector<std::uint64_t> &bounds() const
    {
        return upper_bounds;
    }

    /** Count in bucket @p index (bounds().size() = overflow). */
    std::uint64_t bucketCount(std::size_t index) const;

    /** Index of the bucket @p value falls into. */
    std::size_t bucketIndex(std::uint64_t value) const;

    /** Reset all buckets (tests and per-run dumps). */
    void reset();

  private:
    std::vector<std::uint64_t> upper_bounds;
    std::vector<std::atomic<std::uint64_t>> counts;
    std::atomic<std::uint64_t> observations{0};
    std::atomic<std::uint64_t> total{0};
};

/** Point-in-time copy of every instrument, for tests and dumps. */
struct MetricsSnapshot
{
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, std::int64_t> gauges;

    struct HistogramData
    {
        std::uint64_t count = 0;
        std::uint64_t sum = 0;
        std::vector<std::uint64_t> bounds;
        std::vector<std::uint64_t> bucket_counts; ///< +1 overflow.
    };
    std::map<std::string, HistogramData> histograms;

    /**
     * Counter value, or @p fallback when the counter was never
     * registered — the common test/bench shape ("how many sessions
     * were shed?" where the answer may legitimately be "the
     * counter never fired").
     */
    std::uint64_t
    counterOr(const std::string &name,
              std::uint64_t fallback = 0) const
    {
        const auto it = counters.find(name);
        return it == counters.end() ? fallback : it->second;
    }

    /** Gauge value, or @p fallback when never registered. */
    std::int64_t
    gaugeOr(const std::string &name,
            std::int64_t fallback = 0) const
    {
        const auto it = gauges.find(name);
        return it == gauges.end() ? fallback : it->second;
    }
};

/**
 * Approximate quantile from bucketed data: the inclusive upper
 * bound of the bucket holding the @p q-th observation (q in 0..1 —
 * 0.99 for a p99). Bucketed data can only bound the true quantile,
 * so this reports the conservative (upper) edge; an observation
 * landing in the overflow bucket reports the last finite bound,
 * a *lower* bound on the truth. Zero observations report 0.
 * q outside [0, 1] (including NaN) clamps: non-positive and NaN
 * behave as q=0 (the first occupied bucket's bound), q >= 1 as the
 * last occupied bucket's bound.
 */
double histogramQuantile(const MetricsSnapshot::HistogramData &data,
                         double q);

/**
 * Registry names are flat strings; the serve path labels
 * per-session instruments by appending "{key=value}" to the base
 * name ("analyzer.ingest_bytes_per_sec{session=run1}"). This
 * splits that convention back apart for exposition formats that
 * carry labels natively. Labels are comma-separated, '=' splits
 * key from value, values are raw (a session name containing ','
 * or '=' does not round-trip — the spool naming contract). A name
 * without '{' has no labels.
 */
struct ParsedMetricName
{
    std::string base;
    std::vector<std::pair<std::string, std::string>> labels;
};
ParsedMetricName parseMetricName(std::string_view name);

/**
 * OpenMetrics text exposition of one snapshot. Conventions:
 * metric names sanitized to [a-zA-Z0-9_:] (dots become
 * underscores), counters suffixed `_total`, histograms expanded to
 * cumulative `_bucket{le="..."}` samples (closing with le="+Inf")
 * plus `_sum` and `_count`, label values escaped per the spec
 * ('\' -> '\\', '"' -> '\"', newline -> '\n'), one `# TYPE` line
 * per metric family, and a final `# EOF` terminator. Families are
 * name-sorted, so the output is golden-pinnable.
 */
void writeOpenMetrics(const MetricsSnapshot &snapshot,
                      std::ostream &out);

/** OpenMetrics label-value escaping (exposed for tests). */
std::string escapeLabelValue(std::string_view value);

/**
 * JSON dump of one snapshot (the body of
 * MetricsRegistry::writeJson, exposed so callers can render the
 * same snapshot as both JSON and OpenMetrics text, guaranteed in
 * sync).
 */
void writeMetricsJson(const MetricsSnapshot &snapshot,
                      std::ostream &out, bool pretty = false);

/**
 * The registry. Instruments are created on first use and live for
 * the process; the returned references stay valid forever, which is
 * what makes the cache-the-pointer hot-path pattern safe.
 */
class MetricsRegistry
{
  public:
    /** The process-wide registry. */
    static MetricsRegistry &global();

    /** Get or create the named counter. */
    Counter &counter(std::string_view name);

    /** Get or create the named gauge. */
    Gauge &gauge(std::string_view name);

    /**
     * Get or create the named histogram. Options apply only on
     * creation; later calls return the existing instrument.
     */
    Histogram &histogram(std::string_view name,
                         const HistogramOptions &options = {});

    /** Copy every instrument's current value. */
    MetricsSnapshot snapshot() const;

    /** Zero every instrument (registrations survive). */
    void reset();

    /**
     * Dump as JSON: {"counters":{...},"gauges":{...},
     * "histograms":{name:{count,sum,buckets:[{le,count}...]}}}.
     * Field order is stable (name-sorted) for golden tests.
     */
    void writeJson(std::ostream &out, bool pretty = false) const;

    /** Dump as "name value" lines, counters then gauges then
     * histogram summaries. */
    void writeText(std::ostream &out) const;

    /** Dump the current snapshot as OpenMetrics text (see the
     * free writeOpenMetrics for the format contract). */
    void writeOpenMetrics(std::ostream &out) const;

  private:
    mutable std::mutex registration;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>>
        counters;
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>>
        gauges;
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>>
        histograms;
};

} // namespace obs
} // namespace tpupoint

#endif // TPUPOINT_OBS_METRICS_HH

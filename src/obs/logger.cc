#include "obs/logger.hh"

#include <chrono>
#include <cstdlib>
#include <limits>

#include "core/json.hh"
#include "obs/flight_recorder.hh"

namespace tpupoint {
namespace obs {

namespace {

std::int64_t
steadyNowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now()
                   .time_since_epoch())
        .count();
}

/** core/logging sink trampoline (legacy inform/warn traffic). */
void
coreSink(LogLevel level, const std::string &msg)
{
    Logger::global().log(level, "core", msg);
}

} // namespace

bool
LogSite::admit(std::int64_t now_ns,
               std::uint64_t *suppressed_out)
{
    for (;;) {
        std::int64_t last =
            last_ns.load(std::memory_order_relaxed);
        const bool ever_admitted =
            last != std::numeric_limits<std::int64_t>::min();
        if (ever_admitted && now_ns - last < interval_ns) {
            suppressed_count.fetch_add(
                1, std::memory_order_relaxed);
            return false;
        }
        if (last_ns.compare_exchange_strong(
                last, now_ns, std::memory_order_relaxed)) {
            if (suppressed_out != nullptr)
                *suppressed_out = suppressed_count.exchange(
                    0, std::memory_order_relaxed);
            return true;
        }
        // Another thread won the slot this interval; our event is
        // one of the suppressed repeats. Loop re-reads and counts.
    }
}

Logger::Logger() = default;

Logger &
Logger::global()
{
    static Logger *logger = new Logger();
    return *logger;
}

bool
Logger::parseFormat(const char *name, LogFormat *format)
{
    if (name == nullptr)
        return false;
    const std::string_view text(name);
    if (text == "text")
        *format = LogFormat::Text;
    else if (text == "json" || text == "jsonl")
        *format = LogFormat::Json;
    else
        return false;
    return true;
}

void
Logger::setFormat(LogFormat format)
{
    format_resolved.store(true, std::memory_order_relaxed);
    wire.store(format, std::memory_order_relaxed);
}

LogFormat
Logger::format() const
{
    if (!format_resolved.exchange(true,
                                  std::memory_order_relaxed)) {
        LogFormat parsed;
        if (parseFormat(std::getenv("TPUPOINT_LOG_FORMAT"),
                        &parsed))
            wire.store(parsed, std::memory_order_relaxed);
    }
    return wire.load(std::memory_order_relaxed);
}

void
Logger::setStream(std::FILE *stream)
{
    std::lock_guard<std::mutex> lock(guard);
    out = stream != nullptr ? stream : stderr;
}

std::uint64_t
Logger::emitted() const
{
    return emit_count.load(std::memory_order_relaxed);
}

void
Logger::install()
{
    setLogSink(&coreSink);
}

void
Logger::uninstall()
{
    setLogSink(nullptr);
}

void
Logger::log(LogLevel level, std::string_view component,
            std::string_view message,
            std::initializer_list<LogField> fields)
{
    emit(level, component, message, fields, 0);
}

void
Logger::logLimited(LogSite &site, LogLevel level,
                   std::string_view component,
                   std::string_view message,
                   std::initializer_list<LogField> fields)
{
    std::uint64_t suppressed = 0;
    if (!site.admit(steadyNowNs(), &suppressed))
        return;
    emit(level, component, message, fields, suppressed);
}

void
Logger::emit(LogLevel level, std::string_view component,
             std::string_view message,
             std::initializer_list<LogField> fields,
             std::uint64_t suppressed)
{
    const std::int64_t ts_ns = steadyNowNs();

    // The JSONL form feeds both the json wire format and the
    // flight-recorder mirror, so build it whenever either wants it.
    FlightRecorder &flight = FlightRecorder::global();
    const bool to_stream = level >= LogConfig::threshold();
    const LogFormat encoding = format();
    const bool want_json =
        flight.enabled() ||
        (to_stream && encoding == LogFormat::Json);

    std::string json;
    if (want_json) {
        json.reserve(128 + message.size());
        json += "{\"ts_ns\":";
        json += std::to_string(ts_ns);
        json += ",\"level\":\"";
        json += logLevelName(level);
        json += "\",\"component\":\"";
        json += JsonWriter::escape(component);
        json += "\",\"msg\":\"";
        json += JsonWriter::escape(message);
        json += "\"";
        for (const LogField &field : fields) {
            json += ",\"";
            json += JsonWriter::escape(field.key);
            json += "\":";
            if (field.quoted) {
                json += "\"";
                json += JsonWriter::escape(field.value);
                json += "\"";
            } else {
                json += field.value;
            }
        }
        if (suppressed > 0) {
            json += ",\"suppressed\":";
            json += std::to_string(suppressed);
        }
        json += "}";
        flight.record(json);
    }

    if (!to_stream)
        return;

    std::string line;
    if (encoding == LogFormat::Json) {
        line = std::move(json);
    } else {
        line.reserve(64 + message.size());
        line += "tpupoint: ";
        line += logLevelName(level);
        line += ": [";
        line += component;
        line += "] ";
        line += message;
        for (const LogField &field : fields) {
            line += " ";
            line += field.key;
            line += "=";
            line += field.value;
        }
        if (suppressed > 0) {
            line += " suppressed=";
            line += std::to_string(suppressed);
        }
    }

    std::lock_guard<std::mutex> lock(guard);
    std::fprintf(out, "%s\n", line.c_str());
    std::fflush(out);
    emit_count.fetch_add(1, std::memory_order_relaxed);
}

} // namespace obs
} // namespace tpupoint

#include "obs/flight_recorder.hh"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "core/io_faults.hh"
#include "core/json.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"

namespace tpupoint {
namespace obs {

/**
 * One ring slot. `stamp` holds seq+1 once the payload is complete;
 * 0 marks empty-or-being-written. `busy` is a try-lock shared by
 * writers and dumpers: whoever fails the exchange walks away
 * (writers drop the event, dumpers skip the slot), so the
 * non-atomic length/bytes are only ever touched exclusively and a
 * dump never emits a torn payload.
 */
struct FlightRecorder::Slot
{
    std::atomic<std::uint64_t> stamp{0};
    /**
     * Writer claim. Two writers land on one slot only when the
     * ring wraps a full lap mid-write; the loser drops its event
     * (the ring keeps newest-only anyway) rather than racing the
     * payload write.
     */
    std::atomic<bool> busy{false};
    std::uint32_t length = 0;
    char bytes[kFlightSlotBytes];
};

FlightRecorder::FlightRecorder(std::size_t slots_wanted)
    : slot_count(slots_wanted ? slots_wanted : 1),
      slots(new Slot[slot_count])
{
}

FlightRecorder::~FlightRecorder() = default;

FlightRecorder &
FlightRecorder::global()
{
    static FlightRecorder *recorder = new FlightRecorder();
    return *recorder;
}

void
FlightRecorder::enable()
{
    armed.store(true, std::memory_order_relaxed);
}

void
FlightRecorder::disable()
{
    armed.store(false, std::memory_order_relaxed);
}

void
FlightRecorder::record(std::string_view json_object)
{
    if (!enabled())
        return;
    if (json_object.size() > kFlightSlotBytes) {
        oversize.fetch_add(1, std::memory_order_relaxed);
        char marker[64];
        const int n = std::snprintf(
            marker, sizeof(marker),
            "{\"kind\":\"oversize\",\"bytes\":%zu}",
            json_object.size());
        if (n <= 0)
            return;
        record(std::string_view(marker,
                                static_cast<std::size_t>(n)));
        return;
    }
    const std::uint64_t seq =
        next.fetch_add(1, std::memory_order_relaxed);
    Slot &slot = slots[seq % slot_count];
    if (slot.busy.exchange(true, std::memory_order_acquire)) {
        contended.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    // Invalidate first so a dumper racing this overwrite sees a
    // torn slot, not a stale-stamp/new-bytes mismatch.
    slot.stamp.store(0, std::memory_order_release);
    slot.length = static_cast<std::uint32_t>(json_object.size());
    std::memcpy(slot.bytes, json_object.data(),
                json_object.size());
    slot.stamp.store(seq + 1, std::memory_order_release);
    slot.busy.store(false, std::memory_order_release);
}

void
FlightRecorder::recordSpan(const SpanRecord &span)
{
    if (!enabled())
        return;
    std::string line;
    line.reserve(160);
    line += "{\"kind\":\"span\",\"name\":\"";
    line += JsonWriter::escape(span.name);
    line += "\",\"tid\":";
    line += std::to_string(span.thread_id);
    line += ",\"begin_ns\":";
    line += std::to_string(span.begin_ns);
    line += ",\"dur_ns\":";
    line += std::to_string(span.duration_ns());
    for (const auto &[key, value] : span.args) {
        line += ",\"";
        line += JsonWriter::escape(key);
        line += "\":\"";
        line += JsonWriter::escape(value);
        line += "\"";
    }
    line += "}";
    record(line);
}

void
FlightRecorder::recordSnapshot(const MetricsSnapshot &snapshot)
{
    if (!enabled())
        return;
    // Budget with room for the closing "},"truncated":true}" tail
    // so the entry is always a complete object.
    constexpr std::size_t kBudget = kFlightSlotBytes - 32;
    const std::int64_t ts =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count();
    std::string line;
    line.reserve(kFlightSlotBytes);
    line += "{\"kind\":\"metrics\",\"ts_ns\":";
    line += std::to_string(ts);
    line += ",\"values\":{";
    bool truncated = false;
    bool first = true;
    const auto append = [&](const std::string &name,
                            const std::string &value) {
        if (truncated)
            return;
        std::string entry;
        entry.reserve(name.size() + value.size() + 8);
        if (!first)
            entry += ",";
        entry += "\"";
        entry += JsonWriter::escape(name);
        entry += "\":";
        entry += value;
        if (line.size() + entry.size() > kBudget) {
            truncated = true;
            return;
        }
        line += entry;
        first = false;
    };
    for (const auto &[name, value] : snapshot.counters)
        append(name, std::to_string(value));
    for (const auto &[name, value] : snapshot.gauges)
        append(name, std::to_string(value));
    for (const auto &[name, data] : snapshot.histograms)
        append(name + ".count", std::to_string(data.count));
    line += "}";
    if (truncated)
        line += ",\"truncated\":true";
    line += "}";
    record(line);
}

std::uint64_t
FlightRecorder::recorded() const
{
    return next.load(std::memory_order_relaxed);
}

std::uint64_t
FlightRecorder::droppedOversize() const
{
    return oversize.load(std::memory_order_relaxed);
}

void
FlightRecorder::writeJson(std::ostream &out,
                          std::string_view reason) const
{
    const std::uint64_t end =
        next.load(std::memory_order_acquire);
    const std::uint64_t begin =
        end > slot_count ? end - slot_count : 0;

    out << "{\"reason\":\"" << JsonWriter::escape(reason)
        << "\",\"recorded\":" << end
        << ",\"dropped_oversize\":" << droppedOversize()
        << ",\"dropped_contended\":"
        << contended.load(std::memory_order_relaxed)
        << ",\"events\":[";
    bool first = true;
    std::vector<char> copy(kFlightSlotBytes);
    for (std::uint64_t seq = begin; seq < end; ++seq) {
        Slot &slot = slots[seq % slot_count];
        // Claim the slot: mutual exclusion with writers makes the
        // length/bytes copy race-free. A slot someone else holds
        // is mid-overwrite — skip it like a torn stamp.
        if (slot.busy.exchange(true, std::memory_order_acquire))
            continue;
        const std::uint64_t stamp =
            slot.stamp.load(std::memory_order_acquire);
        const std::uint32_t length = slot.length;
        const bool keep =
            stamp == seq + 1 && length <= kFlightSlotBytes;
        if (keep)
            std::memcpy(copy.data(), slot.bytes, length);
        slot.busy.store(false, std::memory_order_release);
        if (!keep)
            continue; // Overwritten or never completed: skip.
        if (!first)
            out << ",";
        out << "\n";
        out.write(copy.data(), length);
        first = false;
    }
    out << "\n],\"metrics\":";
    MetricsRegistry::global().writeJson(out);
    out << "}\n";
}

bool
FlightRecorder::dump(const std::string &path,
                     std::string_view reason,
                     std::string *error) const
{
    std::ostringstream doc;
    writeJson(doc, reason);
    const std::string tmp = path + ".tmp";
    std::string why;
    bool ok = io::writeFileWithFaults("obs.flight_write", tmp,
                                      doc.str(), &why);
    if (ok &&
        !io::renameWithFaults("obs.flight_rename", tmp, path,
                              &why))
        ok = false;
    if (!ok) {
        std::error_code ec;
        std::filesystem::remove(tmp, ec);
        if (error != nullptr)
            *error = why;
        return false;
    }
    return true;
}

bool
FlightRecorder::setSignalDumpPath(const char *path)
{
    const std::size_t length = std::strlen(path);
    if (length == 0 || length >= sizeof(signal_path))
        return false;
    std::memcpy(signal_path, path, length + 1);
    signal_path_set.store(true, std::memory_order_release);
    return true;
}

#if defined(__unix__) || defined(__APPLE__)

namespace {

/** write() the whole buffer, tolerating EINTR/short writes. */
bool
writeAll(int fd, const char *bytes, std::size_t length)
{
    std::size_t done = 0;
    while (done < length) {
        const ssize_t n =
            ::write(fd, bytes + done, length - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        done += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

bool
FlightRecorder::signalSafeDump() const
{
    // Everything below is on the POSIX async-signal-safe list:
    // open, write, fsync, close, memcpy. No allocation, no locks,
    // no formatting — slot payloads were serialized at record time.
    if (!signal_path_set.load(std::memory_order_acquire))
        return false;
    const int fd = ::open(signal_path,
                          O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        return false;
    static const char prefix[] =
        "{\"reason\":\"signal\",\"events\":[";
    bool ok = writeAll(fd, prefix, sizeof(prefix) - 1);
    const std::uint64_t end =
        next.load(std::memory_order_acquire);
    const std::uint64_t begin =
        end > slot_count ? end - slot_count : 0;
    bool first = true;
    char copy[kFlightSlotBytes];
    for (std::uint64_t seq = begin; ok && seq < end; ++seq) {
        Slot &slot = slots[seq % slot_count];
        // exchange on a lock-free atomic is signal-safe, and a
        // held slot is skipped, never waited on — the interrupted
        // thread may be the holder.
        if (slot.busy.exchange(true, std::memory_order_acquire))
            continue;
        const std::uint64_t stamp =
            slot.stamp.load(std::memory_order_acquire);
        const std::uint32_t length = slot.length;
        const bool keep =
            stamp == seq + 1 && length <= kFlightSlotBytes;
        if (keep)
            std::memcpy(copy, slot.bytes, length);
        slot.busy.store(false, std::memory_order_release);
        if (!keep)
            continue;
        if (!first)
            ok = ok && writeAll(fd, ",\n", 2);
        else
            ok = ok && writeAll(fd, "\n", 1);
        ok = ok && writeAll(fd, copy, length);
        first = false;
    }
    static const char suffix[] = "\n]}\n";
    ok = ok && writeAll(fd, suffix, sizeof(suffix) - 1);
    if (::fsync(fd) != 0)
        ok = false;
    ::close(fd);
    return ok;
}

#else // !__unix__

bool
FlightRecorder::signalSafeDump() const
{
    // No async-signal-safety contract to honor off POSIX; a stdio
    // best effort beats losing the black box.
    if (!signal_path_set.load(std::memory_order_acquire))
        return false;
    std::FILE *out = std::fopen(signal_path, "wb");
    if (out == nullptr)
        return false;
    std::ostringstream doc;
    writeJson(doc, "signal");
    const std::string text = doc.str();
    const bool ok = std::fwrite(text.data(), 1, text.size(),
                                out) == text.size();
    std::fclose(out);
    return ok;
}

#endif

} // namespace obs
} // namespace tpupoint

/**
 * @file
 * Standard observability wiring for core::ThreadPool: hooks that
 * charge every executed task to the global MetricsRegistry
 * (counters `pool.<name>.tasks` / `.steals`, gauge
 * `.queue_depth`, histograms `.task_us` / `.queue_wait_us`) and
 * deposit a wall-time span per *labeled* task into the global
 * SpanBuffer. Like every obs instrument, the hooks measure wall
 * time only — they never touch simulated time or seeded streams,
 * so instrumented and bare pools produce bit-identical results.
 */

#ifndef TPUPOINT_OBS_POOL_METRICS_HH
#define TPUPOINT_OBS_POOL_METRICS_HH

#include <string>

#include "core/thread_pool.hh"

namespace tpupoint {
namespace obs {

/**
 * Build hooks that publish pool telemetry under
 * `pool.<pool_name>.*`. The instruments are registered once here
 * and captured by reference, so the per-task hot path is lock-free
 * relaxed-atomic updates.
 */
ThreadPoolHooks instrumentedPoolHooks(const std::string &pool_name);

} // namespace obs
} // namespace tpupoint

#endif // TPUPOINT_OBS_POOL_METRICS_HH

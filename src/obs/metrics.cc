#include "obs/metrics.hh"

#include <limits>

#include "core/json.hh"
#include "core/logging.hh"

namespace tpupoint {
namespace obs {

Histogram::Histogram(const HistogramOptions &options)
{
    if (options.buckets == 0)
        fatal("Histogram: at least one bucket is required");
    if (options.growth < 2)
        fatal("Histogram: growth factor must be >= 2");
    upper_bounds.reserve(options.buckets);
    std::uint64_t bound =
        options.first_bound > 0 ? options.first_bound : 1;
    for (std::size_t i = 0; i < options.buckets; ++i) {
        upper_bounds.push_back(bound);
        // Saturate instead of wrapping: every further bucket keeps
        // the max bound and the scan stops at the first match.
        if (bound > std::numeric_limits<std::uint64_t>::max() /
                        options.growth) {
            bound = std::numeric_limits<std::uint64_t>::max();
        } else {
            bound *= options.growth;
        }
    }
    counts = std::vector<std::atomic<std::uint64_t>>(
        upper_bounds.size() + 1);
}

std::size_t
Histogram::bucketIndex(std::uint64_t value) const
{
    for (std::size_t i = 0; i < upper_bounds.size(); ++i) {
        if (value <= upper_bounds[i])
            return i;
    }
    return upper_bounds.size(); // overflow bucket
}

void
Histogram::observe(std::uint64_t value)
{
    counts[bucketIndex(value)].fetch_add(
        1, std::memory_order_relaxed);
    total.fetch_add(value, std::memory_order_relaxed);
    // Release-publish last: a reader that acquires `observations`
    // == N is guaranteed to see the bucket and sum updates of all
    // N observations, so a snapshot's sum can never undercount
    // its own count (it may include newer observations, which is
    // benign — monotonic, never torn).
    observations.fetch_add(1, std::memory_order_release);
}

std::uint64_t
Histogram::bucketCount(std::size_t index) const
{
    if (index >= counts.size())
        panic("Histogram::bucketCount: index out of range");
    return counts[index].load(std::memory_order_relaxed);
}

void
Histogram::reset()
{
    for (auto &bucket : counts)
        bucket.store(0, std::memory_order_relaxed);
    observations.store(0, std::memory_order_relaxed);
    total.store(0, std::memory_order_relaxed);
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry *registry = new MetricsRegistry();
    return *registry;
}

Counter &
MetricsRegistry::counter(std::string_view name)
{
    std::lock_guard<std::mutex> lock(registration);
    auto it = counters.find(name);
    if (it == counters.end()) {
        it = counters
                 .emplace(std::string(name),
                          std::make_unique<Counter>())
                 .first;
    }
    return *it->second;
}

Gauge &
MetricsRegistry::gauge(std::string_view name)
{
    std::lock_guard<std::mutex> lock(registration);
    auto it = gauges.find(name);
    if (it == gauges.end()) {
        it = gauges
                 .emplace(std::string(name),
                          std::make_unique<Gauge>())
                 .first;
    }
    return *it->second;
}

Histogram &
MetricsRegistry::histogram(std::string_view name,
                           const HistogramOptions &options)
{
    std::lock_guard<std::mutex> lock(registration);
    auto it = histograms.find(name);
    if (it == histograms.end()) {
        it = histograms
                 .emplace(std::string(name),
                          std::make_unique<Histogram>(options))
                 .first;
    }
    return *it->second;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(registration);
    MetricsSnapshot snap;
    for (const auto &[name, counter] : counters)
        snap.counters[name] = counter->value();
    for (const auto &[name, gauge] : gauges)
        snap.gauges[name] = gauge->value();
    for (const auto &[name, histogram] : histograms) {
        MetricsSnapshot::HistogramData data;
        data.count = histogram->count();
        data.sum = histogram->sum();
        data.bounds = histogram->bounds();
        data.bucket_counts.reserve(data.bounds.size() + 1);
        for (std::size_t i = 0; i <= data.bounds.size(); ++i)
            data.bucket_counts.push_back(
                histogram->bucketCount(i));
        snap.histograms[name] = std::move(data);
    }
    return snap;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(registration);
    for (const auto &[name, counter] : counters)
        counter->reset();
    for (const auto &[name, gauge] : gauges)
        gauge->reset();
    for (const auto &[name, histogram] : histograms)
        histogram->reset();
}

void
MetricsRegistry::writeJson(std::ostream &out, bool pretty) const
{
    writeMetricsJson(snapshot(), out, pretty);
}

void
writeMetricsJson(const MetricsSnapshot &snap, std::ostream &out,
                 bool pretty)
{
    JsonWriter w(out, pretty);
    w.beginObject();
    w.key("counters");
    w.beginObject();
    for (const auto &[name, value] : snap.counters)
        w.field(name, value);
    w.endObject();
    w.key("gauges");
    w.beginObject();
    for (const auto &[name, value] : snap.gauges)
        w.field(name, value);
    w.endObject();
    w.key("histograms");
    w.beginObject();
    for (const auto &[name, data] : snap.histograms) {
        w.key(name);
        w.beginObject();
        w.field("count", data.count);
        w.field("sum", data.sum);
        w.key("buckets");
        w.beginArray();
        for (std::size_t i = 0; i < data.bucket_counts.size();
             ++i) {
            w.beginObject();
            w.key("le");
            if (i < data.bounds.size())
                w.value(data.bounds[i]);
            else
                w.value("inf");
            w.field("count", data.bucket_counts[i]);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endObject();
    w.endObject();
}

ParsedMetricName
parseMetricName(std::string_view name)
{
    ParsedMetricName parsed;
    const std::size_t brace = name.find('{');
    if (brace == std::string_view::npos ||
        name.back() != '}') {
        parsed.base = std::string(name);
        return parsed;
    }
    parsed.base = std::string(name.substr(0, brace));
    std::string_view body =
        name.substr(brace + 1, name.size() - brace - 2);
    while (!body.empty()) {
        const std::size_t comma = body.find(',');
        const std::string_view entry =
            comma == std::string_view::npos
                ? body
                : body.substr(0, comma);
        const std::size_t eq = entry.find('=');
        if (eq != std::string_view::npos)
            parsed.labels.emplace_back(
                std::string(entry.substr(0, eq)),
                std::string(entry.substr(eq + 1)));
        if (comma == std::string_view::npos)
            break;
        body.remove_prefix(comma + 1);
    }
    return parsed;
}

std::string
escapeLabelValue(std::string_view value)
{
    std::string out;
    out.reserve(value.size());
    for (const char c : value) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '"': out += "\\\""; break;
          case '\n': out += "\\n"; break;
          default: out += c;
        }
    }
    return out;
}

namespace {

/** OpenMetrics name charset: [a-zA-Z0-9_:], no leading digit. */
std::string
sanitizeMetricName(std::string_view name)
{
    std::string out;
    out.reserve(name.size());
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
            (c >= 'A' && c <= 'Z') ||
            (c >= '0' && c <= '9') || c == '_' || c == ':';
        out += ok ? c : '_';
    }
    if (out.empty() || (out[0] >= '0' && out[0] <= '9'))
        out.insert(out.begin(), '_');
    return out;
}

/** `{key="escaped",...}` or "" when label-less. */
std::string
renderLabels(const ParsedMetricName &parsed)
{
    if (parsed.labels.empty())
        return "";
    std::string out = "{";
    bool first = true;
    for (const auto &[key, value] : parsed.labels) {
        if (!first)
            out += ",";
        out += sanitizeMetricName(key);
        out += "=\"";
        out += escapeLabelValue(value);
        out += "\"";
        first = false;
    }
    out += "}";
    return out;
}

/** Emit `# TYPE family kind` once per family (names arrive
 * sorted, so labeled variants of one base are adjacent). */
void
typeLineOnce(std::ostream &out, std::string &last_family,
             const std::string &family, const char *kind)
{
    if (family == last_family)
        return;
    out << "# TYPE " << family << ' ' << kind << '\n';
    last_family = family;
}

} // namespace

void
writeOpenMetrics(const MetricsSnapshot &snap, std::ostream &out)
{
    std::string last_family;

    for (const auto &[name, value] : snap.counters) {
        const ParsedMetricName parsed = parseMetricName(name);
        const std::string family =
            sanitizeMetricName(parsed.base);
        typeLineOnce(out, last_family, family, "counter");
        out << family << "_total" << renderLabels(parsed) << ' '
            << value << '\n';
    }

    for (const auto &[name, value] : snap.gauges) {
        const ParsedMetricName parsed = parseMetricName(name);
        const std::string family =
            sanitizeMetricName(parsed.base);
        typeLineOnce(out, last_family, family, "gauge");
        out << family << renderLabels(parsed) << ' ' << value
            << '\n';
    }

    for (const auto &[name, data] : snap.histograms) {
        const ParsedMetricName parsed = parseMetricName(name);
        const std::string family =
            sanitizeMetricName(parsed.base);
        typeLineOnce(out, last_family, family, "histogram");
        // OpenMetrics buckets are cumulative; `le` is the
        // inclusive upper bound. Extra labels precede le.
        std::string labels = renderLabels(parsed);
        std::string label_prefix;
        if (labels.empty())
            label_prefix = "{";
        else {
            label_prefix = labels;
            label_prefix.back() = ',';
        }
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < data.bucket_counts.size();
             ++i) {
            cumulative += data.bucket_counts[i];
            out << family << "_bucket" << label_prefix << "le=\"";
            if (i < data.bounds.size())
                out << data.bounds[i];
            else
                out << "+Inf";
            out << "\"} " << cumulative << '\n';
        }
        // A histogram constructed but never observed still closes
        // its bucket series at +Inf.
        if (data.bucket_counts.size() <= data.bounds.size())
            out << family << "_bucket" << label_prefix
                << "le=\"+Inf\"} " << cumulative << '\n';
        out << family << "_sum" << labels << ' ' << data.sum
            << '\n';
        out << family << "_count" << labels << ' ' << data.count
            << '\n';
    }

    out << "# EOF\n";
}

void
MetricsRegistry::writeOpenMetrics(std::ostream &out) const
{
    obs::writeOpenMetrics(snapshot(), out);
}

void
MetricsRegistry::writeText(std::ostream &out) const
{
    const MetricsSnapshot snap = snapshot();
    for (const auto &[name, value] : snap.counters)
        out << name << ' ' << value << '\n';
    for (const auto &[name, value] : snap.gauges)
        out << name << ' ' << value << '\n';
    for (const auto &[name, data] : snap.histograms) {
        out << name << " count=" << data.count
            << " sum=" << data.sum << '\n';
    }
}

double
histogramQuantile(const MetricsSnapshot::HistogramData &data,
                  double q)
{
    if (data.count == 0 || data.bucket_counts.empty())
        return 0.0;
    // NaN fails every comparison; !(q >= 0) catches it alongside
    // the negatives so the rank arithmetic below never casts NaN.
    if (!(q >= 0.0))
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    // The observation whose bucket we report: rank ceil(q * N),
    // clamped to [1, N].
    auto rank = static_cast<std::uint64_t>(
        q * static_cast<double>(data.count));
    if (static_cast<double>(rank) <
        q * static_cast<double>(data.count))
        ++rank;
    if (rank == 0)
        rank = 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < data.bucket_counts.size(); ++i) {
        seen += data.bucket_counts[i];
        if (seen >= rank) {
            if (i < data.bounds.size())
                return static_cast<double>(data.bounds[i]);
            break;
        }
    }
    // Overflow bucket: the last finite bound is all we can say.
    return data.bounds.empty()
        ? 0.0
        : static_cast<double>(data.bounds.back());
}

} // namespace obs
} // namespace tpupoint

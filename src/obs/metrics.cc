#include "obs/metrics.hh"

#include <limits>

#include "core/json.hh"
#include "core/logging.hh"

namespace tpupoint {
namespace obs {

Histogram::Histogram(const HistogramOptions &options)
{
    if (options.buckets == 0)
        fatal("Histogram: at least one bucket is required");
    if (options.growth < 2)
        fatal("Histogram: growth factor must be >= 2");
    upper_bounds.reserve(options.buckets);
    std::uint64_t bound =
        options.first_bound > 0 ? options.first_bound : 1;
    for (std::size_t i = 0; i < options.buckets; ++i) {
        upper_bounds.push_back(bound);
        // Saturate instead of wrapping: every further bucket keeps
        // the max bound and the scan stops at the first match.
        if (bound > std::numeric_limits<std::uint64_t>::max() /
                        options.growth) {
            bound = std::numeric_limits<std::uint64_t>::max();
        } else {
            bound *= options.growth;
        }
    }
    counts = std::vector<std::atomic<std::uint64_t>>(
        upper_bounds.size() + 1);
}

std::size_t
Histogram::bucketIndex(std::uint64_t value) const
{
    for (std::size_t i = 0; i < upper_bounds.size(); ++i) {
        if (value <= upper_bounds[i])
            return i;
    }
    return upper_bounds.size(); // overflow bucket
}

void
Histogram::observe(std::uint64_t value)
{
    counts[bucketIndex(value)].fetch_add(
        1, std::memory_order_relaxed);
    total.fetch_add(value, std::memory_order_relaxed);
    // Release-publish last: a reader that acquires `observations`
    // == N is guaranteed to see the bucket and sum updates of all
    // N observations, so a snapshot's sum can never undercount
    // its own count (it may include newer observations, which is
    // benign — monotonic, never torn).
    observations.fetch_add(1, std::memory_order_release);
}

std::uint64_t
Histogram::bucketCount(std::size_t index) const
{
    if (index >= counts.size())
        panic("Histogram::bucketCount: index out of range");
    return counts[index].load(std::memory_order_relaxed);
}

void
Histogram::reset()
{
    for (auto &bucket : counts)
        bucket.store(0, std::memory_order_relaxed);
    observations.store(0, std::memory_order_relaxed);
    total.store(0, std::memory_order_relaxed);
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry *registry = new MetricsRegistry();
    return *registry;
}

Counter &
MetricsRegistry::counter(std::string_view name)
{
    std::lock_guard<std::mutex> lock(registration);
    auto it = counters.find(name);
    if (it == counters.end()) {
        it = counters
                 .emplace(std::string(name),
                          std::make_unique<Counter>())
                 .first;
    }
    return *it->second;
}

Gauge &
MetricsRegistry::gauge(std::string_view name)
{
    std::lock_guard<std::mutex> lock(registration);
    auto it = gauges.find(name);
    if (it == gauges.end()) {
        it = gauges
                 .emplace(std::string(name),
                          std::make_unique<Gauge>())
                 .first;
    }
    return *it->second;
}

Histogram &
MetricsRegistry::histogram(std::string_view name,
                           const HistogramOptions &options)
{
    std::lock_guard<std::mutex> lock(registration);
    auto it = histograms.find(name);
    if (it == histograms.end()) {
        it = histograms
                 .emplace(std::string(name),
                          std::make_unique<Histogram>(options))
                 .first;
    }
    return *it->second;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(registration);
    MetricsSnapshot snap;
    for (const auto &[name, counter] : counters)
        snap.counters[name] = counter->value();
    for (const auto &[name, gauge] : gauges)
        snap.gauges[name] = gauge->value();
    for (const auto &[name, histogram] : histograms) {
        MetricsSnapshot::HistogramData data;
        data.count = histogram->count();
        data.sum = histogram->sum();
        data.bounds = histogram->bounds();
        data.bucket_counts.reserve(data.bounds.size() + 1);
        for (std::size_t i = 0; i <= data.bounds.size(); ++i)
            data.bucket_counts.push_back(
                histogram->bucketCount(i));
        snap.histograms[name] = std::move(data);
    }
    return snap;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(registration);
    for (const auto &[name, counter] : counters)
        counter->reset();
    for (const auto &[name, gauge] : gauges)
        gauge->reset();
    for (const auto &[name, histogram] : histograms)
        histogram->reset();
}

void
MetricsRegistry::writeJson(std::ostream &out, bool pretty) const
{
    const MetricsSnapshot snap = snapshot();
    JsonWriter w(out, pretty);
    w.beginObject();
    w.key("counters");
    w.beginObject();
    for (const auto &[name, value] : snap.counters)
        w.field(name, value);
    w.endObject();
    w.key("gauges");
    w.beginObject();
    for (const auto &[name, value] : snap.gauges)
        w.field(name, value);
    w.endObject();
    w.key("histograms");
    w.beginObject();
    for (const auto &[name, data] : snap.histograms) {
        w.key(name);
        w.beginObject();
        w.field("count", data.count);
        w.field("sum", data.sum);
        w.key("buckets");
        w.beginArray();
        for (std::size_t i = 0; i < data.bucket_counts.size();
             ++i) {
            w.beginObject();
            w.key("le");
            if (i < data.bounds.size())
                w.value(data.bounds[i]);
            else
                w.value("inf");
            w.field("count", data.bucket_counts[i]);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endObject();
    w.endObject();
}

void
MetricsRegistry::writeText(std::ostream &out) const
{
    const MetricsSnapshot snap = snapshot();
    for (const auto &[name, value] : snap.counters)
        out << name << ' ' << value << '\n';
    for (const auto &[name, value] : snap.gauges)
        out << name << ' ' << value << '\n';
    for (const auto &[name, data] : snap.histograms) {
        out << name << " count=" << data.count
            << " sum=" << data.sum << '\n';
    }
}

double
histogramQuantile(const MetricsSnapshot::HistogramData &data,
                  double q)
{
    if (data.count == 0 || data.bucket_counts.empty())
        return 0.0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    // The observation whose bucket we report: rank ceil(q * N),
    // clamped to [1, N].
    auto rank = static_cast<std::uint64_t>(
        q * static_cast<double>(data.count));
    if (static_cast<double>(rank) <
        q * static_cast<double>(data.count))
        ++rank;
    if (rank == 0)
        rank = 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < data.bucket_counts.size(); ++i) {
        seen += data.bucket_counts[i];
        if (seen >= rank) {
            if (i < data.bounds.size())
                return static_cast<double>(data.bounds[i]);
            break;
        }
    }
    // Overflow bucket: the last finite bound is all we can say.
    return data.bounds.empty()
        ? 0.0
        : static_cast<double>(data.bounds.back());
}

} // namespace obs
} // namespace tpupoint

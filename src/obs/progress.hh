/**
 * @file
 * Progress reporting for long multi-job operations (the parallel
 * SweepRunner above all). The producer invokes a ProgressSink on
 * every item start/retry/finish with running totals; the bundled
 * ProgressReporter renders those events either as a single
 * in-place status line (interactive terminals) or as one JSON
 * object per line (pipes, CI logs), so a multi-minute sweep is
 * never silent and machines can tail the JSONL.
 */

#ifndef TPUPOINT_OBS_PROGRESS_HH
#define TPUPOINT_OBS_PROGRESS_HH

#include <cstddef>
#include <functional>
#include <ostream>

namespace tpupoint {
namespace obs {

/** One progress notification. */
struct ProgressEvent
{
    enum class Kind : std::uint8_t {
        Start,  ///< An item began executing.
        Retry,  ///< An item failed and is being re-run.
        Finish, ///< An item reached a terminal status.
    };

    Kind kind = Kind::Start;
    std::size_t item = 0;  ///< Item (job) index.
    std::size_t total = 0; ///< Items in the whole operation.

    /** 1-based try number for this item. */
    unsigned attempt = 1;

    /** Terminal status name ("ok", "preempted", "failed"); only
     * meaningful for Finish events. */
    const char *status = "";

    /** Item wall-clock time in seconds (Finish events). */
    double wall_seconds = 0;

    /** Running totals *after* this event. */
    std::size_t started = 0;
    std::size_t succeeded = 0;
    std::size_t preempted = 0;
    std::size_t failed = 0;
    std::size_t retried = 0;

    /** Items in a terminal state. */
    std::size_t
    finished() const
    {
        return succeeded + preempted + failed;
    }
};

/** Printable event-kind name ("start", "retry", "finish"). */
const char *progressKindName(ProgressEvent::Kind kind);

/**
 * Callback invoked per progress event. Producers serialize the
 * invocations (events arrive one at a time, in a consistent order
 * per item), so sinks need no locking of their own.
 */
using ProgressSink = std::function<void(const ProgressEvent &)>;

/**
 * Standard renderer. StatusLine mode repaints one
 * carriage-return-terminated line per event and needs finish() (or
 * destruction) to emit the final newline; Jsonl mode appends one
 * self-contained JSON object per event.
 */
class ProgressReporter
{
  public:
    enum class Mode { StatusLine, Jsonl };

    ProgressReporter(std::ostream &out, Mode mode);

    ~ProgressReporter();

    /** Render one event (usable directly as a ProgressSink). */
    void operator()(const ProgressEvent &event);

    /** Terminate a status line with a newline. Idempotent. */
    void finish();

    Mode mode() const { return render_mode; }

    /**
     * The mode to use for a stream attached to @p fd: StatusLine
     * when the descriptor is an interactive terminal, Jsonl
     * otherwise (pipes, files, CI).
     */
    static Mode autoMode(int fd);

  private:
    std::ostream &stream;
    Mode render_mode;
    bool line_open = false;
};

} // namespace obs
} // namespace tpupoint

#endif // TPUPOINT_OBS_PROGRESS_HH

#include "obs/pool_metrics.hh"

#include "obs/metrics.hh"
#include "obs/span.hh"

namespace tpupoint {
namespace obs {

ThreadPoolHooks
instrumentedPoolHooks(const std::string &pool_name)
{
    auto &registry = MetricsRegistry::global();
    const std::string prefix = "pool." + pool_name;

    // Register once, capture by reference: registry references
    // stay valid for the process lifetime, so each hook invocation
    // is relaxed atomics with no lock and no lookup.
    Counter &tasks = registry.counter(prefix + ".tasks");
    Counter &steals = registry.counter(prefix + ".steals");
    Gauge &depth_gauge = registry.gauge(prefix + ".queue_depth");
    HistogramOptions latency;
    latency.first_bound = 64; // microseconds; ~64us .. ~67s
    Histogram &task_us =
        registry.histogram(prefix + ".task_us", latency);
    Histogram &queue_wait_us =
        registry.histogram(prefix + ".queue_wait_us", latency);

    ThreadPoolHooks hooks;
    hooks.on_task_done = [&tasks, &task_us,
                          &queue_wait_us](const TaskTiming &t) {
        tasks.add(1);
        task_us.observe(
            static_cast<std::uint64_t>(t.run_ns() / 1000));
        queue_wait_us.observe(
            static_cast<std::uint64_t>(t.queued_ns() / 1000));
        if (t.label != nullptr) {
            // One wall-time span per labeled task; SpanBuffer is
            // bounded, so a very long sweep drops (and counts)
            // the excess instead of growing without bound.
            SpanRecord record;
            record.name = t.label;
            record.thread_id = currentThreadId();
            record.begin_ns = t.started_ns;
            record.end_ns = t.finished_ns;
            record.args.emplace_back(
                "queue_wait_us",
                std::to_string(t.queued_ns() / 1000));
            if (t.stolen)
                record.args.emplace_back("stolen", "true");
            SpanBuffer::global().add(std::move(record));
        }
    };
    hooks.on_queue_depth = [&depth_gauge](std::size_t depth) {
        depth_gauge.set(static_cast<std::int64_t>(depth));
    };
    hooks.on_steal = [&steals]() { steals.add(1); };
    return hooks;
}

} // namespace obs
} // namespace tpupoint

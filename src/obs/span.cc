#include "obs/span.hh"

#include <atomic>
#include <cstdio>

#include "obs/flight_recorder.hh"
#include "obs/logger.hh"
#include "obs/metrics.hh"

namespace tpupoint {
namespace obs {

namespace {

/** Small dense thread ids: nicer trace tracks than hashed
 * std::thread::id values. */
std::uint64_t
nextThreadId()
{
    static std::atomic<std::uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

std::int64_t
nowNs(std::chrono::steady_clock::time_point at)
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               at.time_since_epoch())
        .count();
}

} // namespace

std::uint64_t
currentThreadId()
{
    thread_local std::uint64_t id = nextThreadId();
    return id;
}

SpanBuffer::SpanBuffer(std::size_t capacity)
    : bound(capacity ? capacity : 1)
{
}

SpanBuffer &
SpanBuffer::global()
{
    static SpanBuffer *buffer = new SpanBuffer();
    return *buffer;
}

void
SpanBuffer::add(SpanRecord record)
{
    FlightRecorder &flight = FlightRecorder::global();
    if (flight.enabled())
        flight.recordSpan(record);
    {
        std::lock_guard<std::mutex> lock(guard);
        if (spans.size() < bound) {
            spans.push_back(std::move(record));
            return;
        }
        ++rejected;
    }
    // Overflow is silent truncation no more: every dropped span is
    // counted, and the condition is reported once per interval
    // instead of once per span (a long sweep can drop millions).
    static Counter &drop_counter =
        MetricsRegistry::global().counter("obs.spans_dropped");
    drop_counter.add(1);
    static LogSite overflow_site(10000);
    Logger::global().logLimited(
        overflow_site, LogLevel::Warn, "obs",
        "span buffer full; dropping spans",
        {{"capacity", static_cast<std::uint64_t>(bound)},
         {"last", record.name}});
}

std::vector<SpanRecord>
SpanBuffer::snapshot() const
{
    std::lock_guard<std::mutex> lock(guard);
    return spans;
}

std::size_t
SpanBuffer::size() const
{
    std::lock_guard<std::mutex> lock(guard);
    return spans.size();
}

std::uint64_t
SpanBuffer::dropped() const
{
    std::lock_guard<std::mutex> lock(guard);
    return rejected;
}

void
SpanBuffer::clear()
{
    std::lock_guard<std::mutex> lock(guard);
    spans.clear();
    rejected = 0;
}

TraceSpan::TraceSpan(std::string name, SpanBuffer &buffer)
    : sink(buffer), started(std::chrono::steady_clock::now())
{
    record.name = std::move(name);
    record.thread_id = currentThreadId();
    record.begin_ns = nowNs(started);
}

TraceSpan::~TraceSpan()
{
    finish();
}

TraceSpan &
TraceSpan::arg(std::string key, std::string value)
{
    record.args.emplace_back(std::move(key), std::move(value));
    return *this;
}

TraceSpan &
TraceSpan::arg(std::string key, std::uint64_t value)
{
    return arg(std::move(key), std::to_string(value));
}

TraceSpan &
TraceSpan::arg(std::string key, std::int64_t value)
{
    return arg(std::move(key), std::to_string(value));
}

TraceSpan &
TraceSpan::arg(std::string key, double value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    return arg(std::move(key), std::string(buf));
}

void
TraceSpan::finish()
{
    if (done)
        return;
    done = true;
    record.end_ns = nowNs(std::chrono::steady_clock::now());
    sink.add(std::move(record));
}

} // namespace obs
} // namespace tpupoint

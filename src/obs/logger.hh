/**
 * @file
 * Structured logging for the toolchain's long-running components.
 * core/logging's inform()/warn() free functions answer "print a
 * line a human reads at a terminal"; a fleet daemon needs the other
 * contract — every event machine-parseable, attributable to a
 * component, carrying its context (session, job, attempt) as
 * key/value fields, and rate-limited per call site so a wedged
 * session cannot flood the log. obs::Logger is that emitter:
 *
 *  - two wire formats, selected by TPUPOINT_LOG_FORMAT or
 *    setFormat(): "text" (one human line, `key=value` suffix) and
 *    "json" (one JSONL object per event: ts_ns, level, component,
 *    msg, then the fields);
 *  - timestamps are steady-clock nanoseconds — monotonic, so two
 *    events order correctly even across an NTP step, and never
 *    derived from the sim clock, so logging cannot perturb a run;
 *  - every event (including ones below the stderr threshold) is
 *    mirrored into the FlightRecorder when it is enabled: the
 *    black box retains debug-level context the terminal never saw;
 *  - LogSite gives each call site an independent token-bucket-ish
 *    limiter: the first event passes, repeats inside the interval
 *    are counted, and the next admitted event carries a
 *    `suppressed=N` field instead of N spam lines;
 *  - install() routes core/logging's legacy traffic (every
 *    existing inform/warn/fatal in the tree) through this logger
 *    under component "core", so one flag upgrade makes the whole
 *    process structured.
 */

#ifndef TPUPOINT_OBS_LOGGER_HH
#define TPUPOINT_OBS_LOGGER_HH

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <limits>
#include <mutex>
#include <string>
#include <string_view>

#include "core/logging.hh"

namespace tpupoint {
namespace obs {

/** Output encodings. */
enum class LogFormat : std::uint8_t {
    Text, ///< "tpupoint: level: [component] msg key=value ..."
    Json, ///< One JSON object per line (JSONL).
};

/** One key/value attachment on a log event. */
struct LogField
{
    LogField(std::string_view k, std::string_view v)
        : key(k), value(v), quoted(true)
    {
    }

    LogField(std::string_view k, const char *v)
        : key(k), value(v), quoted(true)
    {
    }

    LogField(std::string_view k, const std::string &v)
        : key(k), value(v), quoted(true)
    {
    }

    LogField(std::string_view k, std::uint64_t v)
        : key(k), value(std::to_string(v)), quoted(false)
    {
    }

    LogField(std::string_view k, std::int64_t v)
        : key(k), value(std::to_string(v)), quoted(false)
    {
    }

    LogField(std::string_view k, int v)
        : key(k), value(std::to_string(v)), quoted(false)
    {
    }

    LogField(std::string_view k, bool v)
        : key(k), value(v ? "true" : "false"), quoted(false)
    {
    }

    std::string key;
    std::string value;
    bool quoted; ///< JSON: emit as string (true) or literal.
};

/**
 * Per-call-site rate limiter. Declare one `static LogSite site;`
 * next to the noisy log statement; the logger admits the first
 * event, suppresses (and counts) repeats inside `interval_ms`, and
 * annotates the next admitted event with the suppressed count.
 * Thread-safe; admission is a CAS on the last-admitted timestamp.
 */
class LogSite
{
  public:
    explicit LogSite(std::int64_t interval_ms = 1000)
        : interval_ns(interval_ms * 1000000)
    {
    }

    /**
     * @param now_ns Monotonic now (injectable for tests).
     * @param suppressed_out Events swallowed since the last
     *     admission; only meaningful when admitted.
     * @return true when this event may be emitted.
     */
    bool admit(std::int64_t now_ns,
               std::uint64_t *suppressed_out);

    /** Events suppressed and not yet reported. */
    std::uint64_t
    suppressed() const
    {
        return suppressed_count.load(std::memory_order_relaxed);
    }

  private:
    std::int64_t interval_ns;
    std::atomic<std::int64_t> last_ns{
        std::numeric_limits<std::int64_t>::min()};
    std::atomic<std::uint64_t> suppressed_count{0};
};

class Logger
{
  public:
    Logger();

    /** The process-wide logger. */
    static Logger &global();

    /**
     * Emit one structured event. Threshold filtering follows
     * LogConfig::threshold() for the stream; the FlightRecorder
     * mirror (when enabled) receives every event regardless, so
     * the black box out-remembers the terminal.
     */
    void log(LogLevel level, std::string_view component,
             std::string_view message,
             std::initializer_list<LogField> fields = {});

    /** log() gated by @p site's rate limit; admitted events carry
     * a `suppressed=N` field after any suppression run. */
    void logLimited(LogSite &site, LogLevel level,
                    std::string_view component,
                    std::string_view message,
                    std::initializer_list<LogField> fields = {});

    /** Select the wire format (overrides the environment). */
    void setFormat(LogFormat format);

    LogFormat format() const;

    /** Parse "text" / "json". @return false otherwise. */
    static bool parseFormat(const char *name, LogFormat *format);

    /**
     * Redirect emission (tests capture; default stderr). Pass
     * nullptr to restore stderr.
     */
    void setStream(std::FILE *stream);

    /** Events written to the stream (post-threshold). */
    std::uint64_t emitted() const;

    /**
     * Route core/logging's inform()/warn()/fatal() traffic through
     * the global logger under component "core". Idempotent.
     */
    static void install();

    /** Restore core/logging's default stderr line (tests). */
    static void uninstall();

  private:
    void emit(LogLevel level, std::string_view component,
              std::string_view message,
              std::initializer_list<LogField> fields,
              std::uint64_t suppressed);

    mutable std::mutex guard;
    std::FILE *out = stderr;
    mutable std::atomic<LogFormat> wire{LogFormat::Text};
    std::atomic<std::uint64_t> emit_count{0};
    mutable std::atomic<bool> format_resolved{false};
};

/** Convenience wrappers over Logger::global(). */
inline void
logInfo(std::string_view component, std::string_view message,
        std::initializer_list<LogField> fields = {})
{
    Logger::global().log(LogLevel::Info, component, message,
                         fields);
}

inline void
logWarn(std::string_view component, std::string_view message,
        std::initializer_list<LogField> fields = {})
{
    Logger::global().log(LogLevel::Warn, component, message,
                         fields);
}

inline void
logDebug(std::string_view component, std::string_view message,
         std::initializer_list<LogField> fields = {})
{
    Logger::global().log(LogLevel::Debug, component, message,
                         fields);
}

} // namespace obs
} // namespace tpupoint

#endif // TPUPOINT_OBS_LOGGER_HH

/**
 * @file
 * Trace-event JSON export: the bridge between TPUPoint's recorded
 * profiles (and the toolchain's own spans) and the viewers the real
 * Cloud TPU stack feeds — chrome://tracing and Perfetto both load
 * the trace-event JSON produced here. Two sources share the format:
 *
 *  - ProfileTraceWriter turns a stream of ProfileRecords into
 *    device/host tracks: one `X` duration event per per-step
 *    operator row, a step track, a profile-window track, counter
 *    tracks for idle/MXU, and an instant event at every
 *    attempt-boundary (preemption) marker.
 *  - writeSpanTrace turns the obs::SpanBuffer self-telemetry into
 *    one track per tool thread.
 *
 * All timestamps are microseconds, as the trace-event spec
 * requires; profile tracks carry simulated time, span tracks carry
 * wall time (normalized to start at zero).
 */

#ifndef TPUPOINT_OBS_TRACE_EXPORT_HH
#define TPUPOINT_OBS_TRACE_EXPORT_HH

#include <cstdint>
#include <memory>
#include <ostream>
#include <vector>

#include "core/json.hh"
#include "obs/span.hh"
#include "proto/record.hh"

namespace tpupoint {
namespace obs {

/** Profile-export knobs. */
struct ProfileTraceOptions
{
    /** Export only steps in [first_step, last_step]. The default
     * range covers every step. */
    StepId first_step = 0;
    StepId last_step = kNoStep;

    /** Emit per-step operator rows (the bulk of the events). */
    bool include_ops = true;

    /** Emit idle-fraction / MXU counter tracks. */
    bool include_counters = true;

    /** Pretty-print the JSON. */
    bool pretty = false;
};

/**
 * Streaming exporter: records are added one at a time as the
 * profile reader produces them, so memory stays bounded by one
 * record regardless of profile size. finish() (or destruction)
 * closes the JSON document.
 */
class ProfileTraceWriter
{
  public:
    ProfileTraceWriter(std::ostream &out,
                       const ProfileTraceOptions &options = {});

    ProfileTraceWriter(const ProfileTraceWriter &) = delete;
    ProfileTraceWriter &operator=(const ProfileTraceWriter &) =
        delete;

    ~ProfileTraceWriter();

    /** Export one record (window, steps, ops or boundary). */
    void add(const ProfileRecord &record);

    /** Close the trace document. Idempotent. */
    void finish();

    /** `X` duration events emitted so far. */
    std::uint64_t durationEvents() const { return x_events; }

    /** Instant (attempt-boundary) events emitted so far. */
    std::uint64_t instantEvents() const { return i_events; }

    /** Steps skipped by the [first_step, last_step] filter. */
    std::uint64_t stepsFiltered() const { return filtered; }

  private:
    void metadataEvent(int tid, const char *label);
    void durationEvent(const std::string &name, int tid,
                       SimTime start, SimTime duration,
                       std::uint64_t count = 0);
    void opRows(const StepStats &step, const OpStatsMap &ops,
                int tid);

    std::ostream &stream;
    ProfileTraceOptions opts;
    JsonWriter json;
    bool finished = false;
    std::uint64_t x_events = 0;
    std::uint64_t i_events = 0;
    std::uint64_t filtered = 0;
};

/** One-shot export over materialized records. */
void writeProfileTrace(const std::vector<ProfileRecord> &records,
                       std::ostream &out,
                       const ProfileTraceOptions &options = {});

/**
 * Export the toolchain's own spans: one track per recording
 * thread, wall times normalized so the earliest span starts at 0.
 */
void writeSpanTrace(const std::vector<SpanRecord> &spans,
                    std::ostream &out, bool pretty = false);

/** Convenience: export a SpanBuffer's current contents. */
void writeSpanTrace(const SpanBuffer &buffer, std::ostream &out,
                    bool pretty = false);

} // namespace obs
} // namespace tpupoint

#endif // TPUPOINT_OBS_TRACE_EXPORT_HH

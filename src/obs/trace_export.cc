#include "obs/trace_export.hh"

#include <algorithm>
#include <string>

namespace tpupoint {
namespace obs {

namespace {

/** Track ids within the profile process (pid 1). */
constexpr int kStepTrack = 1;
constexpr int kTpuTrack = 2;
constexpr int kHostTrack = 3;
constexpr int kWindowTrack = 4;

/** Nanoseconds -> trace-event microseconds. */
double
toTraceUs(SimTime t)
{
    return static_cast<double>(t) / 1e3;
}

} // namespace

ProfileTraceWriter::ProfileTraceWriter(
    std::ostream &out, const ProfileTraceOptions &options)
    : stream(out), opts(options), json(out, options.pretty)
{
    json.beginObject();
    json.key("traceEvents");
    json.beginArray();
    metadataEvent(kStepTrack, "Steps");
    metadataEvent(kTpuTrack, "TPU ops");
    metadataEvent(kHostTrack, "Host ops");
    metadataEvent(kWindowTrack, "Profile windows");
}

ProfileTraceWriter::~ProfileTraceWriter()
{
    finish();
}

void
ProfileTraceWriter::metadataEvent(int tid, const char *label)
{
    json.beginObject();
    json.field("name", "thread_name");
    json.field("ph", "M");
    json.field("pid", 1);
    json.field("tid", tid);
    json.key("args");
    json.beginObject();
    json.field("name", label);
    json.endObject();
    json.endObject();
}

void
ProfileTraceWriter::durationEvent(const std::string &name, int tid,
                                  SimTime start, SimTime duration,
                                  std::uint64_t count)
{
    json.beginObject();
    json.field("name", name);
    json.field("ph", "X");
    json.field("pid", 1);
    json.field("tid", tid);
    json.field("ts", toTraceUs(start));
    json.field("dur", toTraceUs(duration));
    if (count > 0) {
        json.key("args");
        json.beginObject();
        json.field("count", count);
        json.endObject();
    }
    json.endObject();
    ++x_events;
}

void
ProfileTraceWriter::opRows(const StepStats &step,
                           const OpStatsMap &ops, int tid)
{
    // Each operator's aggregate time becomes one slice; slices are
    // laid out head to tail from the step's start, so a step reads
    // as a flame row of its operator mix (aggregate durations, not
    // individual invocation times — the profiler only keeps
    // statistics).
    SimTime cursor = step.begin;
    for (const auto &[name, stats] : ops) {
        durationEvent(name, tid, cursor, stats.total_duration,
                      stats.count);
        cursor += stats.total_duration;
    }
}

void
ProfileTraceWriter::add(const ProfileRecord &record)
{
    if (finished)
        return;
    if (record.attempt_boundary) {
        // A preemption: the previous attempt died here and the
        // next one resumes from a restored checkpoint.
        json.beginObject();
        json.field("name",
                   "preempted (attempt " +
                       std::to_string(record.attempt) + ")");
        json.field("ph", "i");
        json.field("pid", 1);
        json.field("tid", kStepTrack);
        json.field("ts", toTraceUs(record.window_begin));
        json.field("s", "g");
        json.key("args");
        json.beginObject();
        json.field("preempted_at_step",
                   record.preempted_at_step);
        json.field("resume_step", record.resume_step);
        json.field("attempt", static_cast<std::uint64_t>(
            record.attempt));
        json.endObject();
        json.endObject();
        ++i_events;
        return;
    }

    const std::string window_name =
        "profile " + std::to_string(record.sequence) +
        (record.truncated ? " (truncated)" : "");
    const SimTime window_span =
        record.window_end > record.window_begin
            ? record.window_end - record.window_begin
            : 0;
    durationEvent(window_name, kWindowTrack, record.window_begin,
                  window_span, record.event_count);

    if (opts.include_counters) {
        for (const auto &[counter, value] :
             {std::pair<const char *, double>{
                  "tpu_idle_fraction", record.tpu_idle_fraction},
              std::pair<const char *, double>{
                  "mxu_utilization", record.mxu_utilization}}) {
            json.beginObject();
            json.field("name", counter);
            json.field("ph", "C");
            json.field("pid", 1);
            json.field("ts", toTraceUs(record.window_begin));
            json.key("args");
            json.beginObject();
            json.field("value", value);
            json.endObject();
            json.endObject();
        }
    }

    for (const auto &step : record.steps) {
        if (step.step < opts.first_step ||
            step.step > opts.last_step) {
            ++filtered;
            continue;
        }
        durationEvent("step " + std::to_string(step.step),
                      kStepTrack, step.begin, step.span());
        if (!opts.include_ops)
            continue;
        opRows(step, step.tpu_ops, kTpuTrack);
        opRows(step, step.host_ops, kHostTrack);
    }
}

void
ProfileTraceWriter::finish()
{
    if (finished)
        return;
    finished = true;
    json.endArray();
    json.field("displayTimeUnit", "ms");
    json.endObject();
}

void
writeProfileTrace(const std::vector<ProfileRecord> &records,
                  std::ostream &out,
                  const ProfileTraceOptions &options)
{
    ProfileTraceWriter writer(out, options);
    for (const auto &record : records)
        writer.add(record);
    writer.finish();
}

void
writeSpanTrace(const std::vector<SpanRecord> &spans,
               std::ostream &out, bool pretty)
{
    // Normalize to the earliest span: steady-clock epochs are
    // arbitrary, trace viewers want the run to start near zero.
    std::int64_t origin = 0;
    bool first = true;
    for (const auto &span : spans) {
        if (first || span.begin_ns < origin) {
            origin = span.begin_ns;
            first = false;
        }
    }

    JsonWriter w(out, pretty);
    w.beginObject();
    w.key("traceEvents");
    w.beginArray();
    for (const auto &span : spans) {
        w.beginObject();
        w.field("name", span.name);
        w.field("ph", "X");
        w.field("pid", 2);
        w.field("tid", span.thread_id);
        w.field("ts",
                static_cast<double>(span.begin_ns - origin) / 1e3);
        w.field("dur",
                static_cast<double>(span.duration_ns()) / 1e3);
        if (!span.args.empty()) {
            w.key("args");
            w.beginObject();
            for (const auto &[key, value] : span.args)
                w.field(key, value);
            w.endObject();
        }
        w.endObject();
    }
    w.endArray();
    w.field("displayTimeUnit", "ms");
    w.endObject();
}

void
writeSpanTrace(const SpanBuffer &buffer, std::ostream &out,
               bool pretty)
{
    writeSpanTrace(buffer.snapshot(), out, pretty);
}

} // namespace obs
} // namespace tpupoint

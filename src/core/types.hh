/**
 * @file
 * Fundamental scalar types shared across the TPUPoint code base.
 */

#ifndef TPUPOINT_CORE_TYPES_HH
#define TPUPOINT_CORE_TYPES_HH

#include <cstdint>
#include <limits>

namespace tpupoint {

/**
 * Simulated time in nanoseconds. All simulator clocks, event stamps
 * and profile durations use this unit. 64 signed bits cover ~292
 * years of simulated time, far beyond any training run.
 */
using SimTime = std::int64_t;

/** A step index within a training session (TensorFlow global step). */
using StepId = std::uint64_t;

/** Sentinel for "no step associated with this event". */
inline constexpr StepId kNoStep = std::numeric_limits<StepId>::max();

/** Sentinel "infinitely far in the future" timestamp. */
inline constexpr SimTime kTimeForever =
    std::numeric_limits<SimTime>::max();

/** Nanoseconds per microsecond/millisecond/second, for readability. */
inline constexpr SimTime kUsec = 1000;
inline constexpr SimTime kMsec = 1000 * kUsec;
inline constexpr SimTime kSec = 1000 * kMsec;

/** Bytes per KiB/MiB/GiB. */
inline constexpr std::uint64_t kKiB = 1024;
inline constexpr std::uint64_t kMiB = 1024 * kKiB;
inline constexpr std::uint64_t kGiB = 1024 * kMiB;

/** Convert a SimTime to floating-point seconds. */
constexpr double
toSeconds(SimTime t)
{
    return static_cast<double>(t) / static_cast<double>(kSec);
}

/** Convert a SimTime to floating-point milliseconds. */
constexpr double
toMillis(SimTime t)
{
    return static_cast<double>(t) / static_cast<double>(kMsec);
}

/** Convert floating-point seconds to SimTime, rounding to nearest. */
constexpr SimTime
fromSeconds(double s)
{
    return static_cast<SimTime>(s * static_cast<double>(kSec) + 0.5);
}

} // namespace tpupoint

#endif // TPUPOINT_CORE_TYPES_HH

#include "core/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <stdexcept>

namespace tpupoint {

namespace {

std::atomic<LogLevel> global_threshold{LogLevel::Info};

/** Serializes emission so parallel sweep workers cannot interleave
 * partial lines on stderr. */
std::mutex emit_mutex;

std::once_flag environment_once;

/** Apply TPUPOINT_LOG_LEVEL exactly once, before the first
 * threshold read or explicit set wins the race. */
void
ensureEnvironmentLoaded()
{
    std::call_once(environment_once,
                   []() { LogConfig::loadFromEnvironment(); });
}

std::atomic<LogSinkFn> global_sink{nullptr};

} // namespace

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Fatal: return "fatal";
      case LogLevel::Panic: return "panic";
    }
    return "?";
}

void
setLogSink(LogSinkFn sink)
{
    global_sink.store(sink, std::memory_order_release);
}

LogLevel
LogConfig::threshold()
{
    ensureEnvironmentLoaded();
    return global_threshold.load(std::memory_order_relaxed);
}

void
LogConfig::setThreshold(LogLevel level)
{
    // Consume the environment first so a late first read cannot
    // overwrite this explicit choice.
    ensureEnvironmentLoaded();
    global_threshold.store(level, std::memory_order_relaxed);
}

bool
LogConfig::parseLevel(const char *name, LogLevel *level)
{
    if (!name)
        return false;
    if (std::strcmp(name, "debug") == 0)
        *level = LogLevel::Debug;
    else if (std::strcmp(name, "info") == 0)
        *level = LogLevel::Info;
    else if (std::strcmp(name, "warn") == 0)
        *level = LogLevel::Warn;
    else
        return false;
    return true;
}

bool
LogConfig::loadFromEnvironment()
{
    LogLevel level;
    if (!parseLevel(std::getenv("TPUPOINT_LOG_LEVEL"), &level))
        return false;
    global_threshold.store(level, std::memory_order_relaxed);
    return true;
}

namespace detail {

void
logMessage(LogLevel level, const std::string &msg)
{
    ensureEnvironmentLoaded();
    if (level < global_threshold.load(std::memory_order_relaxed))
        return;
    std::lock_guard<std::mutex> lock(emit_mutex);
    const LogSinkFn sink =
        global_sink.load(std::memory_order_acquire);
    if (sink != nullptr) {
        sink(level, msg);
        return;
    }
    std::fprintf(stderr, "tpupoint: %s: %s\n",
                 logLevelName(level), msg.c_str());
}

} // namespace detail

void
fatalError(const std::string &msg)
{
    detail::logMessage(LogLevel::Fatal, msg);
    throw std::runtime_error("tpupoint fatal: " + msg);
}

void
panicError(const std::string &msg)
{
    detail::logMessage(LogLevel::Panic, msg);
    throw std::logic_error("tpupoint panic: " + msg);
}

} // namespace tpupoint

#include "core/logging.hh"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <stdexcept>

namespace tpupoint {

namespace {

std::atomic<LogLevel> global_threshold{LogLevel::Info};
std::mutex emit_mutex;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Fatal: return "fatal";
      case LogLevel::Panic: return "panic";
    }
    return "?";
}

} // namespace

LogLevel
LogConfig::threshold()
{
    return global_threshold.load(std::memory_order_relaxed);
}

void
LogConfig::setThreshold(LogLevel level)
{
    global_threshold.store(level, std::memory_order_relaxed);
}

namespace detail {

void
logMessage(LogLevel level, const std::string &msg)
{
    if (level < global_threshold.load(std::memory_order_relaxed))
        return;
    std::lock_guard<std::mutex> lock(emit_mutex);
    std::fprintf(stderr, "tpupoint: %s: %s\n", levelName(level),
                 msg.c_str());
}

} // namespace detail

void
fatalError(const std::string &msg)
{
    detail::logMessage(LogLevel::Fatal, msg);
    throw std::runtime_error("tpupoint fatal: " + msg);
}

void
panicError(const std::string &msg)
{
    detail::logMessage(LogLevel::Panic, msg);
    throw std::logic_error("tpupoint panic: " + msg);
}

} // namespace tpupoint

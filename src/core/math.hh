/**
 * @file
 * Dense linear-algebra primitives backing the analyzer's clustering
 * and PCA implementations: feature vectors and a small row-major
 * matrix.
 */

#ifndef TPUPOINT_CORE_MATH_HH
#define TPUPOINT_CORE_MATH_HH

#include <cstddef>
#include <vector>

namespace tpupoint {

/** A dense feature vector (one per training step in the analyzer). */
using FeatureVector = std::vector<double>;

/**
 * Raw-pointer kernels over contiguous doubles. These are the inner
 * loops of the clustering/PCA hot paths, written over restrict-free
 * pointers with a fixed single-accumulator summation order: unrolling
 * computes several elements' terms per trip but always folds them
 * into one accumulator in index order, so results are bit-identical
 * to the naive loop (no reassociation) while the element-wise work
 * auto-vectorizes.
 */
double dotN(const double *a, const double *b, std::size_t n);
double squaredDistanceN(const double *a, const double *b,
                        std::size_t n);
void addN(double *a, const double *b, std::size_t n);
void scaleN(double *v, double s, std::size_t n);

/** Dot product; vectors must have equal dimension. */
double dot(const FeatureVector &a, const FeatureVector &b);

/** Euclidean (L2) norm. */
double l2Norm(const FeatureVector &v);

/** Squared Euclidean distance. */
double squaredDistance(const FeatureVector &a, const FeatureVector &b);

/** Euclidean distance. */
double euclideanDistance(const FeatureVector &a,
                         const FeatureVector &b);

/** a += b (element-wise); dimensions must match. */
void addInPlace(FeatureVector &a, const FeatureVector &b);

/** v *= s (element-wise). */
void scaleInPlace(FeatureVector &v, double s);

/** Normalize to unit L2 norm; zero vectors are left unchanged. */
void normalizeInPlace(FeatureVector &v);

/** Component-wise mean of @p points; empty input yields empty. */
FeatureVector meanVector(const std::vector<FeatureVector> &points);

/**
 * Row-major dense matrix. Minimal: only what covariance/PCA and the
 * tests need.
 */
class Matrix
{
  public:
    /** An empty 0 x 0 matrix (resize before use). */
    Matrix() : num_rows(0), num_cols(0) {}

    /** A rows x cols zero matrix. */
    Matrix(std::size_t rows, std::size_t cols);

    /** Element access. */
    double &at(std::size_t r, std::size_t c);
    double at(std::size_t r, std::size_t c) const;

    std::size_t rows() const { return num_rows; }
    std::size_t cols() const { return num_cols; }

    /**
     * Raw pointer to row @p r's contiguous cells — the hot-path
     * access the kernels above consume. Bounds-checked.
     */
    double *rowPtr(std::size_t r);
    const double *rowPtr(std::size_t r) const;

    /** Reshape to rows x cols, zero-filled (storage is reused). */
    void resize(std::size_t rows, std::size_t cols);

    /** Copy row @p r out into a FeatureVector. */
    FeatureVector row(std::size_t r) const;

    /** Matrix-vector product; v.size() must equal cols(). */
    FeatureVector multiply(const FeatureVector &v) const;

    /** Transpose. */
    Matrix transposed() const;

    /**
     * Pack a vector-of-rows data set into row-major storage. Rows
     * must share one dimension; an empty input yields a 0 x 0
     * matrix.
     */
    static Matrix fromRows(const std::vector<FeatureVector> &data);

    /**
     * Covariance matrix of a data set whose rows are observations.
     * Rows of @p data must share one dimension.
     */
    static Matrix covariance(const std::vector<FeatureVector> &data);

    /**
     * Covariance of a row-major observation matrix. Summation order
     * matches the vector-of-rows overload exactly, so either entry
     * point yields bit-identical covariances.
     */
    static Matrix covariance(const Matrix &data);

  private:
    std::size_t num_rows;
    std::size_t num_cols;
    std::vector<double> cells;
};

} // namespace tpupoint

#endif // TPUPOINT_CORE_MATH_HH

/**
 * @file
 * Dense linear-algebra primitives backing the analyzer's clustering
 * and PCA implementations: feature vectors and a small row-major
 * matrix.
 */

#ifndef TPUPOINT_CORE_MATH_HH
#define TPUPOINT_CORE_MATH_HH

#include <cstddef>
#include <vector>

namespace tpupoint {

/** A dense feature vector (one per training step in the analyzer). */
using FeatureVector = std::vector<double>;

/** Dot product; vectors must have equal dimension. */
double dot(const FeatureVector &a, const FeatureVector &b);

/** Euclidean (L2) norm. */
double l2Norm(const FeatureVector &v);

/** Squared Euclidean distance. */
double squaredDistance(const FeatureVector &a, const FeatureVector &b);

/** Euclidean distance. */
double euclideanDistance(const FeatureVector &a,
                         const FeatureVector &b);

/** a += b (element-wise); dimensions must match. */
void addInPlace(FeatureVector &a, const FeatureVector &b);

/** v *= s (element-wise). */
void scaleInPlace(FeatureVector &v, double s);

/** Normalize to unit L2 norm; zero vectors are left unchanged. */
void normalizeInPlace(FeatureVector &v);

/** Component-wise mean of @p points; empty input yields empty. */
FeatureVector meanVector(const std::vector<FeatureVector> &points);

/**
 * Row-major dense matrix. Minimal: only what covariance/PCA and the
 * tests need.
 */
class Matrix
{
  public:
    /** A rows x cols zero matrix. */
    Matrix(std::size_t rows, std::size_t cols);

    /** Element access. */
    double &at(std::size_t r, std::size_t c);
    double at(std::size_t r, std::size_t c) const;

    std::size_t rows() const { return num_rows; }
    std::size_t cols() const { return num_cols; }

    /** Matrix-vector product; v.size() must equal cols(). */
    FeatureVector multiply(const FeatureVector &v) const;

    /** Transpose. */
    Matrix transposed() const;

    /**
     * Covariance matrix of a data set whose rows are observations.
     * Rows of @p data must share one dimension.
     */
    static Matrix covariance(const std::vector<FeatureVector> &data);

  private:
    std::size_t num_rows;
    std::size_t num_cols;
    std::vector<double> cells;
};

} // namespace tpupoint

#endif // TPUPOINT_CORE_MATH_HH

#include "core/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "core/logging.hh"

namespace tpupoint {

JsonWriter::JsonWriter(std::ostream &out, bool pretty)
    : stream(out), pretty_print(pretty)
{
}

void
JsonWriter::newlineIndent()
{
    if (!pretty_print)
        return;
    stream << '\n';
    for (std::size_t i = 0; i < scopes.size(); ++i)
        stream << "  ";
}

void
JsonWriter::beforeValue()
{
    if (scopes.empty()) {
        if (root_written)
            panic("JsonWriter: more than one root value");
        root_written = true;
        return;
    }
    if (scopes.back() == Scope::Object) {
        if (!key_pending)
            panic("JsonWriter: object value without a key");
        key_pending = false;
        return;
    }
    // Array element.
    if (has_items.back())
        stream << ',';
    has_items.back() = true;
    newlineIndent();
}

void
JsonWriter::beginObject()
{
    beforeValue();
    stream << '{';
    scopes.push_back(Scope::Object);
    has_items.push_back(false);
}

void
JsonWriter::endObject()
{
    if (scopes.empty() || scopes.back() != Scope::Object)
        panic("JsonWriter: endObject without matching beginObject");
    if (key_pending)
        panic("JsonWriter: dangling key at endObject");
    scopes.pop_back();
    const bool had_items = has_items.back();
    has_items.pop_back();
    if (had_items)
        newlineIndent();
    stream << '}';
}

void
JsonWriter::beginArray()
{
    beforeValue();
    stream << '[';
    scopes.push_back(Scope::Array);
    has_items.push_back(false);
}

void
JsonWriter::endArray()
{
    if (scopes.empty() || scopes.back() != Scope::Array)
        panic("JsonWriter: endArray without matching beginArray");
    scopes.pop_back();
    const bool had_items = has_items.back();
    has_items.pop_back();
    if (had_items)
        newlineIndent();
    stream << ']';
}

void
JsonWriter::key(std::string_view name)
{
    if (scopes.empty() || scopes.back() != Scope::Object)
        panic("JsonWriter: key outside of an object");
    if (key_pending)
        panic("JsonWriter: two keys in a row");
    if (has_items.back())
        stream << ',';
    has_items.back() = true;
    newlineIndent();
    stream << '"' << escape(name) << "\":";
    if (pretty_print)
        stream << ' ';
    key_pending = true;
}

void
JsonWriter::value(std::string_view text)
{
    beforeValue();
    stream << '"' << escape(text) << '"';
}

void
JsonWriter::value(double number)
{
    beforeValue();
    if (!std::isfinite(number)) {
        // JSON has no NaN/Inf; emit null as browsers' tracing does.
        stream << "null";
        return;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.12g", number);
    stream << buf;
}

void
JsonWriter::value(std::int64_t number)
{
    beforeValue();
    stream << number;
}

void
JsonWriter::value(std::uint64_t number)
{
    beforeValue();
    stream << number;
}

void
JsonWriter::value(bool flag)
{
    beforeValue();
    stream << (flag ? "true" : "false");
}

void
JsonWriter::nullValue()
{
    beforeValue();
    stream << "null";
}

bool
JsonWriter::complete() const
{
    return scopes.empty() && root_written && !key_pending;
}

namespace {

/** Recursive-descent JSON validator over a byte range. */
class JsonValidator
{
  public:
    explicit JsonValidator(std::string_view input) : text(input) {}

    bool
    validate(std::string *error)
    {
        if (!value() || !atEndAfterSpace()) {
            if (error) {
                *error = "invalid JSON at byte " +
                         std::to_string(pos) + ": " + reason;
            }
            return false;
        }
        return true;
    }

  private:
    bool
    fail(const char *why)
    {
        if (reason.empty())
            reason = why;
        return false;
    }

    void
    skipSpace()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool
    atEndAfterSpace()
    {
        skipSpace();
        return pos == text.size() ||
            fail("trailing content after value");
    }

    bool
    literal(std::string_view word)
    {
        if (text.substr(pos, word.size()) != word)
            return fail("bad literal");
        pos += word.size();
        return true;
    }

    bool
    number()
    {
        if (pos < text.size() && text[pos] == '-')
            ++pos;
        const std::size_t digits_begin = pos;
        while (pos < text.size() && text[pos] >= '0' &&
               text[pos] <= '9')
            ++pos;
        if (pos == digits_begin)
            return fail("digit expected");
        // No leading zeros: "0" alone is fine, "01" is not.
        if (text[digits_begin] == '0' &&
            pos - digits_begin > 1)
            return fail("leading zero");
        if (pos < text.size() && text[pos] == '.') {
            ++pos;
            const std::size_t frac_begin = pos;
            while (pos < text.size() && text[pos] >= '0' &&
                   text[pos] <= '9')
                ++pos;
            if (pos == frac_begin)
                return fail("digit expected after '.'");
        }
        if (pos < text.size() &&
            (text[pos] == 'e' || text[pos] == 'E')) {
            ++pos;
            if (pos < text.size() &&
                (text[pos] == '+' || text[pos] == '-'))
                ++pos;
            const std::size_t exp_begin = pos;
            while (pos < text.size() && text[pos] >= '0' &&
                   text[pos] <= '9')
                ++pos;
            if (pos == exp_begin)
                return fail("digit expected in exponent");
        }
        return true;
    }

    bool
    string()
    {
        if (pos >= text.size() || text[pos] != '"')
            return fail("'\"' expected");
        ++pos;
        while (pos < text.size()) {
            const unsigned char c =
                static_cast<unsigned char>(text[pos]);
            if (c == '"') {
                ++pos;
                return true;
            }
            if (c < 0x20)
                return fail("raw control character in string");
            if (c == '\\') {
                ++pos;
                if (pos >= text.size())
                    return fail("dangling escape");
                const char esc = text[pos];
                if (esc == 'u') {
                    for (int i = 1; i <= 4; ++i) {
                        if (pos + static_cast<std::size_t>(i) >=
                                text.size() ||
                            !std::isxdigit(static_cast<
                                unsigned char>(text[pos +
                                static_cast<std::size_t>(i)])))
                            return fail("bad \\u escape");
                    }
                    pos += 4;
                } else if (esc != '"' && esc != '\\' &&
                           esc != '/' && esc != 'b' &&
                           esc != 'f' && esc != 'n' &&
                           esc != 'r' && esc != 't') {
                    return fail("unknown escape");
                }
            }
            ++pos;
        }
        return fail("unterminated string");
    }

    bool
    value()
    {
        if (++depth > kMaxDepth)
            return fail("nesting too deep");
        skipSpace();
        if (pos >= text.size()) {
            --depth;
            return fail("value expected");
        }
        bool ok = false;
        switch (text[pos]) {
          case '{': ok = object(); break;
          case '[': ok = array(); break;
          case '"': ok = string(); break;
          case 't': ok = literal("true"); break;
          case 'f': ok = literal("false"); break;
          case 'n': ok = literal("null"); break;
          default: ok = number(); break;
        }
        --depth;
        return ok;
    }

    bool
    object()
    {
        ++pos; // '{'
        skipSpace();
        if (pos < text.size() && text[pos] == '}') {
            ++pos;
            return true;
        }
        for (;;) {
            skipSpace();
            if (!string())
                return false;
            skipSpace();
            if (pos >= text.size() || text[pos] != ':')
                return fail("':' expected");
            ++pos;
            if (!value())
                return false;
            skipSpace();
            if (pos >= text.size())
                return fail("unterminated object");
            if (text[pos] == ',') {
                ++pos;
                continue;
            }
            if (text[pos] == '}') {
                ++pos;
                return true;
            }
            return fail("',' or '}' expected");
        }
    }

    bool
    array()
    {
        ++pos; // '['
        skipSpace();
        if (pos < text.size() && text[pos] == ']') {
            ++pos;
            return true;
        }
        for (;;) {
            if (!value())
                return false;
            skipSpace();
            if (pos >= text.size())
                return fail("unterminated array");
            if (text[pos] == ',') {
                ++pos;
                continue;
            }
            if (text[pos] == ']') {
                ++pos;
                return true;
            }
            return fail("',' or ']' expected");
        }
    }

    static constexpr int kMaxDepth = 256;

    std::string_view text;
    std::size_t pos = 0;
    int depth = 0;
    std::string reason;
};

} // namespace

bool
validateJson(std::string_view text, std::string *error)
{
    return JsonValidator(text).validate(error);
}

std::string
JsonWriter::escape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace tpupoint

#include "core/json.hh"

#include <cmath>
#include <cstdio>

#include "core/logging.hh"

namespace tpupoint {

JsonWriter::JsonWriter(std::ostream &out, bool pretty)
    : stream(out), pretty_print(pretty)
{
}

void
JsonWriter::newlineIndent()
{
    if (!pretty_print)
        return;
    stream << '\n';
    for (std::size_t i = 0; i < scopes.size(); ++i)
        stream << "  ";
}

void
JsonWriter::beforeValue()
{
    if (scopes.empty()) {
        if (root_written)
            panic("JsonWriter: more than one root value");
        root_written = true;
        return;
    }
    if (scopes.back() == Scope::Object) {
        if (!key_pending)
            panic("JsonWriter: object value without a key");
        key_pending = false;
        return;
    }
    // Array element.
    if (has_items.back())
        stream << ',';
    has_items.back() = true;
    newlineIndent();
}

void
JsonWriter::beginObject()
{
    beforeValue();
    stream << '{';
    scopes.push_back(Scope::Object);
    has_items.push_back(false);
}

void
JsonWriter::endObject()
{
    if (scopes.empty() || scopes.back() != Scope::Object)
        panic("JsonWriter: endObject without matching beginObject");
    if (key_pending)
        panic("JsonWriter: dangling key at endObject");
    scopes.pop_back();
    const bool had_items = has_items.back();
    has_items.pop_back();
    if (had_items)
        newlineIndent();
    stream << '}';
}

void
JsonWriter::beginArray()
{
    beforeValue();
    stream << '[';
    scopes.push_back(Scope::Array);
    has_items.push_back(false);
}

void
JsonWriter::endArray()
{
    if (scopes.empty() || scopes.back() != Scope::Array)
        panic("JsonWriter: endArray without matching beginArray");
    scopes.pop_back();
    const bool had_items = has_items.back();
    has_items.pop_back();
    if (had_items)
        newlineIndent();
    stream << ']';
}

void
JsonWriter::key(std::string_view name)
{
    if (scopes.empty() || scopes.back() != Scope::Object)
        panic("JsonWriter: key outside of an object");
    if (key_pending)
        panic("JsonWriter: two keys in a row");
    if (has_items.back())
        stream << ',';
    has_items.back() = true;
    newlineIndent();
    stream << '"' << escape(name) << "\":";
    if (pretty_print)
        stream << ' ';
    key_pending = true;
}

void
JsonWriter::value(std::string_view text)
{
    beforeValue();
    stream << '"' << escape(text) << '"';
}

void
JsonWriter::value(double number)
{
    beforeValue();
    if (!std::isfinite(number)) {
        // JSON has no NaN/Inf; emit null as browsers' tracing does.
        stream << "null";
        return;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.12g", number);
    stream << buf;
}

void
JsonWriter::value(std::int64_t number)
{
    beforeValue();
    stream << number;
}

void
JsonWriter::value(std::uint64_t number)
{
    beforeValue();
    stream << number;
}

void
JsonWriter::value(bool flag)
{
    beforeValue();
    stream << (flag ? "true" : "false");
}

void
JsonWriter::nullValue()
{
    beforeValue();
    stream << "null";
}

bool
JsonWriter::complete() const
{
    return scopes.empty() && root_written && !key_pending;
}

std::string
JsonWriter::escape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace tpupoint

/**
 * @file
 * gem5-flavoured status/error reporting: inform/warn for status,
 * fatal for user errors, panic for internal invariant violations.
 */

#ifndef TPUPOINT_CORE_LOGGING_HH
#define TPUPOINT_CORE_LOGGING_HH

#include <sstream>
#include <string>

namespace tpupoint {

/** Severity of a log message. */
enum class LogLevel { Debug, Info, Warn, Fatal, Panic };

/**
 * Global log verbosity control. Messages below the threshold are
 * suppressed. Defaults to Info; the TPUPOINT_LOG_LEVEL environment
 * variable (debug/info/warn) overrides the default on first use,
 * and tests lower it explicitly to keep output clean.
 */
class LogConfig
{
  public:
    /** Current minimum level that will be emitted. */
    static LogLevel threshold();

    /** Set the minimum level that will be emitted. */
    static void setThreshold(LogLevel level);

    /**
     * Re-read TPUPOINT_LOG_LEVEL and apply it.
     * @return true when the variable held a valid level; an unset
     *     or unparsable value leaves the threshold untouched.
     */
    static bool loadFromEnvironment();

    /**
     * Parse a level name ("debug", "info", "warn").
     * @return false when @p name is not a level.
     */
    static bool parseLevel(const char *name, LogLevel *level);
};

/** Printable level name ("debug", "info", ...). */
const char *logLevelName(LogLevel level);

/**
 * Installable structured-log sink. When set, every message that
 * clears the threshold is handed to the sink instead of the default
 * "tpupoint: level: msg" stderr line — the hook obs::Logger uses to
 * upgrade the whole toolchain's legacy inform()/warn() traffic to
 * structured emission without core/ depending on obs/. The sink
 * runs under the emission lock, so implementations must not call
 * back into logMessage().
 */
using LogSinkFn = void (*)(LogLevel level, const std::string &msg);

/** Install @p sink (nullptr restores the default stderr line). */
void setLogSink(LogSinkFn sink);

namespace detail {

/** Emit one formatted message to stderr (internal). */
void logMessage(LogLevel level, const std::string &msg);

/** Fold a parameter pack into one string via operator<<. */
template <typename... Args>
std::string
concatenate(Args &&...args)
{
    std::ostringstream os;
    if constexpr (sizeof...(Args) > 0)
        (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Informative status message; no connotation of incorrectness. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::logMessage(LogLevel::Info,
                       detail::concatenate(std::forward<Args>(args)...));
}

/** Debug-level message, suppressed unless verbosity is raised. */
template <typename... Args>
void
debugLog(Args &&...args)
{
    detail::logMessage(LogLevel::Debug,
                       detail::concatenate(std::forward<Args>(args)...));
}

/** Something may not be modelled perfectly but execution continues. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::logMessage(LogLevel::Warn,
                       detail::concatenate(std::forward<Args>(args)...));
}

/**
 * Unrecoverable condition caused by the caller (bad configuration,
 * invalid arguments). Throws std::runtime_error so library users can
 * catch it; never returns.
 */
[[noreturn]] void fatalError(const std::string &msg);

template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    fatalError(detail::concatenate(std::forward<Args>(args)...));
}

/**
 * Internal invariant violation (a TPUPoint bug, not a user error).
 * Throws std::logic_error; never returns.
 */
[[noreturn]] void panicError(const std::string &msg);

template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    panicError(detail::concatenate(std::forward<Args>(args)...));
}

} // namespace tpupoint

#endif // TPUPOINT_CORE_LOGGING_HH

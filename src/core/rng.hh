/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * Every stochastic component of TPUPoint's platform model draws from
 * a seeded xoshiro256** stream so that whole experiments replay
 * bit-for-bit. SplitMix64 expands a single user seed into stream
 * state, and child streams can be forked for independent components.
 */

#ifndef TPUPOINT_CORE_RNG_HH
#define TPUPOINT_CORE_RNG_HH

#include <array>
#include <cstdint>

namespace tpupoint {

/**
 * SplitMix64: a tiny, high-quality 64-bit mixer used for seeding.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state(seed) {}

    /** Next 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    std::uint64_t state;
};

/**
 * xoshiro256** PRNG. Fast, 256-bit state, passes BigCrush; the
 * workhorse generator for all simulated variability.
 */
class Rng
{
  public:
    /** Construct from a single seed (expanded with SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x7450506f696e74ULL);

    /** Next raw 64-bit value. */
    std::uint64_t nextU64();

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, bound) using Lemire's method. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Standard normal via Marsaglia polar method. */
    double nextGaussian();

    /** Normal with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /**
     * Log-normal sample whose *underlying* normal has the given mu
     * and sigma; used for long-tailed host op durations.
     */
    double logNormal(double mu, double sigma);

    /** Bernoulli trial with probability p of returning true. */
    bool bernoulli(double p);

    /** Exponential with the given rate (lambda). */
    double exponential(double rate);

    /**
     * Fork an independent child stream. The child is seeded from
     * this stream's output, so forking is itself deterministic.
     */
    Rng fork();

  private:
    std::array<std::uint64_t, 4> state;
    bool have_spare_gaussian = false;
    double spare_gaussian = 0.0;
};

} // namespace tpupoint

#endif // TPUPOINT_CORE_RNG_HH

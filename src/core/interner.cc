#include "core/interner.hh"

#include <mutex>

#include "core/logging.hh"

namespace tpupoint {

StringInterner &
StringInterner::global()
{
    // Leaked deliberately: interned views must stay valid through
    // static destruction of late consumers.
    static StringInterner *instance = new StringInterner;
    return *instance;
}

std::uint32_t
StringInterner::intern(std::string_view name)
{
    {
        std::shared_lock<std::shared_mutex> read(guard);
        const auto it = index.find(name);
        if (it != index.end())
            return it->second;
    }
    std::unique_lock<std::shared_mutex> write(guard);
    // Re-check: another thread may have interned it between locks.
    const auto it = index.find(name);
    if (it != index.end())
        return it->second;
    const auto id = static_cast<std::uint32_t>(strings.size());
    strings.emplace_back(name);
    index.emplace(std::string_view(strings.back()), id);
    return id;
}

bool
StringInterner::lookup(std::string_view name,
                       std::uint32_t &id) const
{
    std::shared_lock<std::shared_mutex> read(guard);
    const auto it = index.find(name);
    if (it == index.end())
        return false;
    id = it->second;
    return true;
}

std::string_view
StringInterner::view(std::uint32_t id) const
{
    std::shared_lock<std::shared_mutex> read(guard);
    if (id >= strings.size())
        panic("StringInterner::view: unknown id ", id);
    return std::string_view(strings[id]);
}

std::size_t
StringInterner::size() const
{
    std::shared_lock<std::shared_mutex> read(guard);
    return strings.size();
}

} // namespace tpupoint

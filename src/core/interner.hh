/**
 * @file
 * String interning: the analyzer's columnar core stores operator
 * names once and refers to them by dense u32 ids everywhere else,
 * so per-step op rows are arrays of integers instead of maps of
 * strings. Interning is the first thing the zero-copy decode path
 * does with an op name it sees in a record payload — after that the
 * name's bytes are never copied or compared again on the hot path.
 *
 * Ids are dense (0, 1, 2, ...) in first-seen order and live for the
 * interner's lifetime; `view()` is a lock-shared lookup into
 * stable storage, so returned string_views never dangle. Nothing
 * the toolchain outputs depends on id order: every serialization
 * sorts by the interned *string*, which keeps outputs byte-stable
 * even though id assignment order can vary run to run when several
 * sessions intern concurrently.
 */

#ifndef TPUPOINT_CORE_INTERNER_HH
#define TPUPOINT_CORE_INTERNER_HH

#include <cstdint>
#include <deque>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace tpupoint {

/** Thread-safe append-only string <-> dense-id table. */
class StringInterner
{
  public:
    StringInterner() = default;
    StringInterner(const StringInterner &) = delete;
    StringInterner &operator=(const StringInterner &) = delete;

    /**
     * The process-wide interner every analysis session shares. Op
     * vocabularies are tiny (hundreds of distinct names), so one
     * table for the whole process keeps ids comparable across
     * concurrently analyzed traces.
     */
    static StringInterner &global();

    /**
     * Id for @p name, interning it on first sight. The common case
     * (already interned) takes only the shared lock.
     */
    std::uint32_t intern(std::string_view name);

    /**
     * Id for @p name if already interned.
     * @return true and sets @p id when present.
     */
    bool lookup(std::string_view name, std::uint32_t &id) const;

    /**
     * The interned string. Storage is append-only, so the view
     * stays valid for the interner's lifetime. Panics on an id
     * that was never handed out.
     */
    std::string_view view(std::uint32_t id) const;

    /** Distinct strings interned so far. */
    std::size_t size() const;

  private:
    mutable std::shared_mutex guard;

    /** Stable storage: deque never moves existing elements. */
    std::deque<std::string> strings;

    /** Keys view into `strings`, so each name is stored once. */
    std::unordered_map<std::string_view, std::uint32_t> index;
};

} // namespace tpupoint

#endif // TPUPOINT_CORE_INTERNER_HH

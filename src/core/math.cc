#include "core/math.hh"

#include <cmath>

#include "core/logging.hh"

namespace tpupoint {

double
dot(const FeatureVector &a, const FeatureVector &b)
{
    if (a.size() != b.size())
        panic("dot: dimension mismatch ", a.size(), " vs ", b.size());
    double sum = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        sum += a[i] * b[i];
    return sum;
}

double
l2Norm(const FeatureVector &v)
{
    return std::sqrt(dot(v, v));
}

double
squaredDistance(const FeatureVector &a, const FeatureVector &b)
{
    if (a.size() != b.size())
        panic("squaredDistance: dimension mismatch");
    double sum = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        sum += d * d;
    }
    return sum;
}

double
euclideanDistance(const FeatureVector &a, const FeatureVector &b)
{
    return std::sqrt(squaredDistance(a, b));
}

void
addInPlace(FeatureVector &a, const FeatureVector &b)
{
    if (a.size() != b.size())
        panic("addInPlace: dimension mismatch");
    for (std::size_t i = 0; i < a.size(); ++i)
        a[i] += b[i];
}

void
scaleInPlace(FeatureVector &v, double s)
{
    for (double &x : v)
        x *= s;
}

void
normalizeInPlace(FeatureVector &v)
{
    const double norm = l2Norm(v);
    if (norm > 0.0)
        scaleInPlace(v, 1.0 / norm);
}

FeatureVector
meanVector(const std::vector<FeatureVector> &points)
{
    if (points.empty())
        return {};
    FeatureVector mean(points.front().size(), 0.0);
    for (const auto &p : points)
        addInPlace(mean, p);
    scaleInPlace(mean, 1.0 / static_cast<double>(points.size()));
    return mean;
}

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : num_rows(rows), num_cols(cols), cells(rows * cols, 0.0)
{
}

double &
Matrix::at(std::size_t r, std::size_t c)
{
    if (r >= num_rows || c >= num_cols)
        panic("Matrix::at out of range");
    return cells[r * num_cols + c];
}

double
Matrix::at(std::size_t r, std::size_t c) const
{
    if (r >= num_rows || c >= num_cols)
        panic("Matrix::at out of range");
    return cells[r * num_cols + c];
}

FeatureVector
Matrix::multiply(const FeatureVector &v) const
{
    if (v.size() != num_cols)
        panic("Matrix::multiply: dimension mismatch");
    FeatureVector out(num_rows, 0.0);
    for (std::size_t r = 0; r < num_rows; ++r) {
        double sum = 0.0;
        const double *row = &cells[r * num_cols];
        for (std::size_t c = 0; c < num_cols; ++c)
            sum += row[c] * v[c];
        out[r] = sum;
    }
    return out;
}

Matrix
Matrix::transposed() const
{
    Matrix out(num_cols, num_rows);
    for (std::size_t r = 0; r < num_rows; ++r)
        for (std::size_t c = 0; c < num_cols; ++c)
            out.at(c, r) = at(r, c);
    return out;
}

Matrix
Matrix::covariance(const std::vector<FeatureVector> &data)
{
    if (data.empty())
        fatal("Matrix::covariance: empty data set");
    const std::size_t dim = data.front().size();
    for (const auto &row : data) {
        if (row.size() != dim)
            fatal("Matrix::covariance: ragged data set");
    }
    const FeatureVector mean = meanVector(data);
    Matrix cov(dim, dim);
    for (const auto &row : data) {
        for (std::size_t i = 0; i < dim; ++i) {
            const double di = row[i] - mean[i];
            for (std::size_t j = i; j < dim; ++j) {
                cov.at(i, j) += di * (row[j] - mean[j]);
            }
        }
    }
    const double inv = 1.0 / static_cast<double>(data.size());
    for (std::size_t i = 0; i < dim; ++i) {
        for (std::size_t j = i; j < dim; ++j) {
            cov.at(i, j) *= inv;
            cov.at(j, i) = cov.at(i, j);
        }
    }
    return cov;
}

} // namespace tpupoint

#include "core/math.hh"

#include <algorithm>
#include <cmath>

#include "core/logging.hh"

namespace tpupoint {

double
dotN(const double *a, const double *b, std::size_t n)
{
    // Unroll by four: the products are independent (vectorizable)
    // but the accumulation folds them in index order so the result
    // is bit-identical to the plain sequential loop.
    double sum = 0.0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const double p0 = a[i] * b[i];
        const double p1 = a[i + 1] * b[i + 1];
        const double p2 = a[i + 2] * b[i + 2];
        const double p3 = a[i + 3] * b[i + 3];
        sum += p0;
        sum += p1;
        sum += p2;
        sum += p3;
    }
    for (; i < n; ++i)
        sum += a[i] * b[i];
    return sum;
}

double
squaredDistanceN(const double *a, const double *b, std::size_t n)
{
    double sum = 0.0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const double d0 = a[i] - b[i];
        const double d1 = a[i + 1] - b[i + 1];
        const double d2 = a[i + 2] - b[i + 2];
        const double d3 = a[i + 3] - b[i + 3];
        sum += d0 * d0;
        sum += d1 * d1;
        sum += d2 * d2;
        sum += d3 * d3;
    }
    for (; i < n; ++i) {
        const double d = a[i] - b[i];
        sum += d * d;
    }
    return sum;
}

void
addN(double *a, const double *b, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        a[i] += b[i];
}

void
scaleN(double *v, double s, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        v[i] *= s;
}

double
dot(const FeatureVector &a, const FeatureVector &b)
{
    if (a.size() != b.size())
        panic("dot: dimension mismatch ", a.size(), " vs ", b.size());
    return dotN(a.data(), b.data(), a.size());
}

double
l2Norm(const FeatureVector &v)
{
    return std::sqrt(dot(v, v));
}

double
squaredDistance(const FeatureVector &a, const FeatureVector &b)
{
    if (a.size() != b.size())
        panic("squaredDistance: dimension mismatch");
    return squaredDistanceN(a.data(), b.data(), a.size());
}

double
euclideanDistance(const FeatureVector &a, const FeatureVector &b)
{
    return std::sqrt(squaredDistance(a, b));
}

void
addInPlace(FeatureVector &a, const FeatureVector &b)
{
    if (a.size() != b.size())
        panic("addInPlace: dimension mismatch");
    addN(a.data(), b.data(), a.size());
}

void
scaleInPlace(FeatureVector &v, double s)
{
    scaleN(v.data(), s, v.size());
}

void
normalizeInPlace(FeatureVector &v)
{
    const double norm = l2Norm(v);
    if (norm > 0.0)
        scaleInPlace(v, 1.0 / norm);
}

FeatureVector
meanVector(const std::vector<FeatureVector> &points)
{
    if (points.empty())
        return {};
    FeatureVector mean(points.front().size(), 0.0);
    for (const auto &p : points)
        addInPlace(mean, p);
    scaleInPlace(mean, 1.0 / static_cast<double>(points.size()));
    return mean;
}

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : num_rows(rows), num_cols(cols), cells(rows * cols, 0.0)
{
}

double &
Matrix::at(std::size_t r, std::size_t c)
{
    if (r >= num_rows || c >= num_cols)
        panic("Matrix::at out of range");
    return cells[r * num_cols + c];
}

double
Matrix::at(std::size_t r, std::size_t c) const
{
    if (r >= num_rows || c >= num_cols)
        panic("Matrix::at out of range");
    return cells[r * num_cols + c];
}

double *
Matrix::rowPtr(std::size_t r)
{
    if (r >= num_rows)
        panic("Matrix::rowPtr out of range");
    // data() + offset stays valid for zero-column matrices.
    return cells.data() + r * num_cols;
}

const double *
Matrix::rowPtr(std::size_t r) const
{
    if (r >= num_rows)
        panic("Matrix::rowPtr out of range");
    return cells.data() + r * num_cols;
}

void
Matrix::resize(std::size_t rows, std::size_t cols)
{
    num_rows = rows;
    num_cols = cols;
    cells.assign(rows * cols, 0.0);
}

FeatureVector
Matrix::row(std::size_t r) const
{
    const double *p = rowPtr(r);
    return FeatureVector(p, p + num_cols);
}

FeatureVector
Matrix::multiply(const FeatureVector &v) const
{
    if (v.size() != num_cols)
        panic("Matrix::multiply: dimension mismatch");
    FeatureVector out(num_rows, 0.0);
    for (std::size_t r = 0; r < num_rows; ++r)
        out[r] = dotN(cells.data() + r * num_cols, v.data(),
                      num_cols);
    return out;
}

Matrix
Matrix::transposed() const
{
    Matrix out(num_cols, num_rows);
    for (std::size_t r = 0; r < num_rows; ++r)
        for (std::size_t c = 0; c < num_cols; ++c)
            out.at(c, r) = at(r, c);
    return out;
}

Matrix
Matrix::fromRows(const std::vector<FeatureVector> &data)
{
    Matrix out(data.size(),
               data.empty() ? 0 : data.front().size());
    for (std::size_t r = 0; r < data.size(); ++r) {
        if (data[r].size() != out.num_cols)
            panic("Matrix::fromRows: ragged rows");
        std::copy(data[r].begin(), data[r].end(), out.rowPtr(r));
    }
    return out;
}

Matrix
Matrix::covariance(const std::vector<FeatureVector> &data)
{
    if (data.empty())
        fatal("Matrix::covariance: empty data set");
    const std::size_t dim = data.front().size();
    for (const auto &row : data) {
        if (row.size() != dim)
            fatal("Matrix::covariance: ragged data set");
    }
    const FeatureVector mean = meanVector(data);
    Matrix cov(dim, dim);
    for (const auto &row : data) {
        for (std::size_t i = 0; i < dim; ++i) {
            const double di = row[i] - mean[i];
            for (std::size_t j = i; j < dim; ++j) {
                cov.at(i, j) += di * (row[j] - mean[j]);
            }
        }
    }
    const double inv = 1.0 / static_cast<double>(data.size());
    for (std::size_t i = 0; i < dim; ++i) {
        for (std::size_t j = i; j < dim; ++j) {
            cov.at(i, j) *= inv;
            cov.at(j, i) = cov.at(i, j);
        }
    }
    return cov;
}

Matrix
Matrix::covariance(const Matrix &data)
{
    if (data.rows() == 0)
        fatal("Matrix::covariance: empty data set");
    const std::size_t dim = data.cols();

    // Same accumulation order as the vector-of-rows overload: mean
    // first (row-order adds), then per-row upper-triangle updates.
    FeatureVector mean(dim, 0.0);
    for (std::size_t r = 0; r < data.rows(); ++r)
        addN(mean.data(), data.rowPtr(r), dim);
    scaleN(mean.data(), 1.0 / static_cast<double>(data.rows()), dim);

    Matrix cov(dim, dim);
    for (std::size_t r = 0; r < data.rows(); ++r) {
        const double *row = data.rowPtr(r);
        for (std::size_t i = 0; i < dim; ++i) {
            const double di = row[i] - mean[i];
            double *out = cov.rowPtr(i);
            for (std::size_t j = i; j < dim; ++j)
                out[j] += di * (row[j] - mean[j]);
        }
    }
    const double inv = 1.0 / static_cast<double>(data.rows());
    for (std::size_t i = 0; i < dim; ++i) {
        for (std::size_t j = i; j < dim; ++j) {
            cov.at(i, j) *= inv;
            cov.at(j, i) = cov.at(i, j);
        }
    }
    return cov;
}

} // namespace tpupoint

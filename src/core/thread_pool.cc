#include "core/thread_pool.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <limits>

#include "core/logging.hh"
#include "core/strings.hh"

namespace tpupoint {

std::int64_t
steadyNowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now()
                   .time_since_epoch())
        .count();
}

unsigned
resolveThreadCount(unsigned requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("TPUPOINT_THREADS")) {
        // Strict parse: "banana" or an overflowing value must not
        // silently become some thread count. A bad setting is
        // warned about once per resolution and ignored.
        std::uint64_t parsed = 0;
        if (parseUint64(env, &parsed) && parsed > 0 &&
            parsed <= std::numeric_limits<unsigned>::max()) {
            return static_cast<unsigned>(parsed);
        }
        warn("ignoring TPUPOINT_THREADS='", env,
             "': want a positive integer");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

TaskScope::TaskScope(const ThreadPoolHooks &pool_hooks,
                     const char *label, std::int64_t enqueued_ns,
                     unsigned worker, bool stolen)
    : hooks(pool_hooks)
{
    timing.label = label;
    timing.enqueued_ns = enqueued_ns;
    timing.started_ns = steadyNowNs();
    timing.worker = worker;
    timing.stolen = stolen;
}

TaskScope::~TaskScope()
{
    // Destructor-reported so a throwing task is still timed and
    // counted.
    timing.finished_ns = steadyNowNs();
    if (hooks.on_task_done)
        hooks.on_task_done(timing);
}

ThreadPool::ThreadPool(unsigned workers)
    : ThreadPool(ThreadPoolOptions{workers, 4096, {}})
{
}

ThreadPool::ThreadPool(const ThreadPoolOptions &options)
    : opts(options)
{
    // 0 or 1 requested workers = inline mode: the serial path
    // spawns no threads at all, so `--threads 1` is the program
    // the debugger and the determinism tests see.
    worker_count = opts.workers <= 1 ? 0 : opts.workers;
    deques.resize(worker_count);
    threads.reserve(worker_count);
    for (unsigned i = 0; i < worker_count; ++i)
        threads.emplace_back([this, i]() { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    if (inlineMode())
        return;
    {
        std::lock_guard<std::mutex> lock(guard);
        stopping = true;
    }
    work_ready.notify_all();
    for (auto &thread : threads)
        thread.join();
}

std::size_t
ThreadPool::pendingLocked() const
{
    std::size_t pending = 0;
    for (const auto &deque : deques)
        pending += deque.size();
    return pending;
}

void
ThreadPool::notifyDepth(std::size_t depth)
{
    if (opts.hooks.on_queue_depth)
        opts.hooks.on_queue_depth(depth);
}

void
ThreadPool::post(const char *label, std::function<void()> fn)
{
    submitted.fetch_add(1, std::memory_order_relaxed);

    if (inlineMode()) {
        {
            TaskScope scope(opts.hooks, label, steadyNowNs(),
                            /*worker=*/0, /*stolen=*/false);
            fn();
        }
        executed.fetch_add(1, std::memory_order_relaxed);
        return;
    }

    Task task;
    task.run = std::move(fn);
    task.label = label;
    task.enqueued_ns = steadyNowNs();

    for (;;) {
        std::unique_lock<std::mutex> lock(guard);
        const std::size_t pending = pendingLocked();
        if (opts.queue_capacity == 0 ||
            pending < opts.queue_capacity) {
            task.home = static_cast<unsigned>(next_deque);
            deques[next_deque].push_back(std::move(task));
            next_deque = (next_deque + 1) % deques.size();
            const std::size_t depth = pending + 1;
            max_depth = std::max<std::uint64_t>(max_depth, depth);
            lock.unlock();
            work_ready.notify_one();
            notifyDepth(depth);
            return;
        }
        lock.unlock();
        // Backpressure: the queue is at capacity. Help drain it
        // instead of blocking outright — a submitter that is
        // itself a pool worker would otherwise deadlock on a
        // queue only it could empty.
        if (!runOnePendingTask()) {
            std::unique_lock<std::mutex> wait(guard);
            if (pendingLocked() >= opts.queue_capacity)
                work_done.wait_for(
                    wait, std::chrono::microseconds(500));
        }
    }
}

bool
ThreadPool::takeTask(unsigned self, Task *out, bool *stolen)
{
    // Own deque first, newest task first: LIFO keeps the owner on
    // the warm end while thieves take the cold (oldest) end.
    if (self < deques.size() && !deques[self].empty()) {
        *out = std::move(deques[self].back());
        deques[self].pop_back();
        *stolen = false;
        return true;
    }
    // Steal the oldest task of the longest victim deque.
    std::size_t victim = deques.size();
    std::size_t longest = 0;
    for (std::size_t i = 0; i < deques.size(); ++i) {
        if (i != self && deques[i].size() > longest) {
            longest = deques[i].size();
            victim = i;
        }
    }
    if (victim == deques.size())
        return false;
    *out = std::move(deques[victim].front());
    deques[victim].pop_front();
    // Helpers (callers without a deque of their own) are not
    // counted as steals: the metric means inter-worker imbalance.
    *stolen = self < deques.size();
    return true;
}

void
ThreadPool::workerLoop(unsigned self)
{
    for (;;) {
        Task task;
        bool was_stolen = false;
        std::size_t depth = 0;
        {
            std::unique_lock<std::mutex> lock(guard);
            work_ready.wait(lock, [this]() {
                return stopping || pendingLocked() > 0;
            });
            if (!takeTask(self, &task, &was_stolen)) {
                if (stopping)
                    return; // every queued task has drained
                continue;
            }
            depth = pendingLocked();
        }
        if (was_stolen) {
            stolen_count.fetch_add(1, std::memory_order_relaxed);
            if (opts.hooks.on_steal)
                opts.hooks.on_steal();
        }
        notifyDepth(depth);
        {
            // post()'s contract: task bodies do not throw (submit
            // wraps them in packaged_task, forEach in its own
            // catch), so nothing escapes the worker here.
            TaskScope scope(opts.hooks, task.label,
                            task.enqueued_ns, self, was_stolen);
            task.run();
        }
        executed.fetch_add(1, std::memory_order_relaxed);
        work_done.notify_all();
    }
}

bool
ThreadPool::runOnePendingTask()
{
    Task task;
    bool was_stolen = false;
    std::size_t depth = 0;
    {
        std::lock_guard<std::mutex> lock(guard);
        if (!takeTask(worker_count, &task, &was_stolen))
            return false;
        depth = pendingLocked();
    }
    notifyDepth(depth);
    {
        TaskScope scope(opts.hooks, task.label, task.enqueued_ns,
                        worker_count, /*stolen=*/false);
        task.run();
    }
    executed.fetch_add(1, std::memory_order_relaxed);
    work_done.notify_all();
    return true;
}

void
ThreadPool::helpWhile(const std::function<bool()> &done)
{
    while (!done()) {
        if (runOnePendingTask())
            continue;
        // Nothing queued but work is still in flight on other
        // workers: a short timed wait avoids both busy-spinning
        // and missed-wakeup subtleties.
        std::unique_lock<std::mutex> lock(guard);
        if (done())
            return;
        work_done.wait_for(lock, std::chrono::microseconds(500));
    }
}

void
ThreadPool::forEach(std::size_t n,
                    const std::function<void(std::size_t)> &fn,
                    const char *label)
{
    if (n == 0)
        return;

    // Per-index error slots: whatever the scheduling order, the
    // exception rethrown below is the lowest-index one, so a
    // failing parallel run reports the same error as the serial
    // run.
    auto errors =
        std::make_shared<std::vector<std::exception_ptr>>(n);

    if (inlineMode()) {
        for (std::size_t i = 0; i < n; ++i) {
            try {
                TaskScope scope(opts.hooks, label, steadyNowNs(),
                                0, false);
                fn(i);
            } catch (...) {
                (*errors)[i] = std::current_exception();
            }
            submitted.fetch_add(1, std::memory_order_relaxed);
            executed.fetch_add(1, std::memory_order_relaxed);
        }
    } else {
        auto remaining =
            std::make_shared<std::atomic<std::size_t>>(n);
        for (std::size_t i = 0; i < n; ++i) {
            post(label, [errors, remaining, &fn, i]() {
                try {
                    fn(i);
                } catch (...) {
                    (*errors)[i] = std::current_exception();
                }
                // Release: the final decrement publishes every
                // error slot to the acquiring waiter below.
                remaining->fetch_sub(1,
                                     std::memory_order_release);
            });
        }
        helpWhile([remaining]() {
            return remaining->load(std::memory_order_acquire) ==
                0;
        });
    }

    for (const std::exception_ptr &error : *errors) {
        if (error)
            std::rethrow_exception(error);
    }
}

ThreadPool::Stats
ThreadPool::stats() const
{
    Stats out;
    out.submitted = submitted.load(std::memory_order_relaxed);
    out.executed = executed.load(std::memory_order_relaxed);
    out.stolen = stolen_count.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(guard);
    out.max_queue_depth = max_depth;
    return out;
}

} // namespace tpupoint

/**
 * @file
 * The process-wide task executor every parallel path in the
 * toolchain runs on: the analyzer's multi-algorithm finalize, the
 * k-means elbow fan-out, and the sweep runner's job pool all submit
 * to one ThreadPool, so a single `--threads N` knob governs the
 * whole process.
 *
 * Design:
 *  - Work stealing. Each worker owns a deque; submissions are dealt
 *    round-robin, owners pop their own back (LIFO, cache-warm) and
 *    idle workers steal from other fronts (FIFO, oldest first). The
 *    deques share one mutex — tasks here are coarse (a whole
 *    k-means run, a whole profiled session), so queue operations
 *    are nanoseconds against milliseconds-to-seconds of work and a
 *    finer lock would buy nothing.
 *  - Bounded queue. Submission blocks once `queue_capacity` tasks
 *    are pending, so a runaway producer cannot grow the queue
 *    without bound; a blocked submitter that is itself a worker
 *    executes pending tasks instead of deadlocking.
 *  - Graceful shutdown. The destructor drains every queued task
 *    before joining — submitted work always runs.
 *  - Composable waiting. forEach() and helpWhile() execute pending
 *    tasks while they wait, so pool work can itself submit pool
 *    work (the analyzer's detectors fan out their own elbow sweeps)
 *    without starving the workers.
 *  - Inline fallback. With zero or one worker no threads are
 *    spawned at all: submit() runs the task in the calling thread,
 *    which is the deterministic, debugger-friendly serial path
 *    `--threads 1` promises.
 *
 * Determinism contract: the pool never introduces randomness. Any
 * task set whose tasks are independent and write disjoint slots
 * produces bit-identical results whatever the worker count or
 * scheduling order. Observability hooks measure wall time only and
 * must never feed back into simulated time or seeded streams.
 */

#ifndef TPUPOINT_CORE_THREAD_POOL_HH
#define TPUPOINT_CORE_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace tpupoint {

/**
 * Wall-clock timing of one executed task, delivered to
 * ThreadPoolHooks::on_task_done. Times are steady-clock
 * nanoseconds; `stolen` marks tasks a worker took from another
 * worker's deque.
 */
struct TaskTiming
{
    const char *label = nullptr; ///< Submission label (may be null).
    std::int64_t enqueued_ns = 0;
    std::int64_t started_ns = 0;
    std::int64_t finished_ns = 0;
    unsigned worker = 0; ///< Executing worker (0 in inline mode).
    bool stolen = false;

    std::int64_t queued_ns() const { return started_ns - enqueued_ns; }
    std::int64_t run_ns() const { return finished_ns - started_ns; }
};

/**
 * Optional observability callbacks. Invoked from worker threads
 * outside the pool lock; implementations must be thread-safe and
 * must not throw. obs::instrumentedPoolHooks() provides the
 * standard metrics/span wiring.
 */
struct ThreadPoolHooks
{
    /** After every completed task (exception or not). */
    std::function<void(const TaskTiming &)> on_task_done;

    /** Pending-task count after each enqueue/dequeue. */
    std::function<void(std::size_t depth)> on_queue_depth;

    /** Once per successful steal. */
    std::function<void()> on_steal;
};

/** Pool construction knobs. */
struct ThreadPoolOptions
{
    /**
     * Worker threads. 0 or 1 = inline mode: no threads are
     * spawned and submit() executes in the caller. Resolve
     * user-facing "0 = hardware concurrency" semantics with
     * resolveThreadCount() before constructing.
     */
    unsigned workers = 1;

    /** Pending-task bound; submit() blocks (helping) at the cap.
     * 0 = unbounded. */
    std::size_t queue_capacity = 4096;

    ThreadPoolHooks hooks;
};

/**
 * RAII task-timing scope: stamps the start on construction and
 * reports the completed TaskTiming to the hooks on destruction, so
 * a task that throws is still timed and counted.
 */
class TaskScope
{
  public:
    TaskScope(const ThreadPoolHooks &pool_hooks, const char *label,
              std::int64_t enqueued_ns, unsigned worker,
              bool stolen);

    TaskScope(const TaskScope &) = delete;
    TaskScope &operator=(const TaskScope &) = delete;

    ~TaskScope();

  private:
    const ThreadPoolHooks &hooks;
    TaskTiming timing;
};

/** Steady-clock nanoseconds (the time base of TaskTiming). */
std::int64_t steadyNowNs();

/**
 * Resolve a user-facing thread count: @p requested when positive,
 * else the TPUPOINT_THREADS environment variable when set to a
 * positive integer, else std::thread::hardware_concurrency()
 * (minimum 1). This is the one place the `--threads` default
 * semantics live.
 */
unsigned resolveThreadCount(unsigned requested);

/** The shared work-stealing executor. */
class ThreadPool
{
  public:
    explicit ThreadPool(unsigned workers);
    explicit ThreadPool(const ThreadPoolOptions &options);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Drains every queued task, then joins the workers. */
    ~ThreadPool();

    /** Worker threads (0 in inline mode). */
    unsigned workers() const { return worker_count; }

    /** True when submit() executes in the calling thread. */
    bool inlineMode() const { return worker_count == 0; }

    /**
     * Submit one task; the future carries its result or exception.
     * In inline mode the task runs before submit() returns.
     * @p label must outlive the pool (string literals in practice).
     */
    template <typename F>
    auto
    submit(const char *label, F &&fn)
        -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using Result = std::invoke_result_t<std::decay_t<F>>;
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::forward<F>(fn));
        std::future<Result> future = task->get_future();
        post(label, [task]() { (*task)(); });
        return future;
    }

    template <typename F>
    auto
    submit(F &&fn)
        -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        return submit(nullptr, std::forward<F>(fn));
    }

    /**
     * Run @p fn(i) for every i in [0, n) across the pool and block
     * until all complete, executing pending tasks while waiting
     * (safe to call from inside a pool task). If any item throws,
     * the exception of the *lowest* index is rethrown after every
     * item has finished — deterministic whatever the worker count.
     */
    void forEach(std::size_t n,
                 const std::function<void(std::size_t)> &fn,
                 const char *label = nullptr);

    /**
     * Execute one pending task in the calling thread, if any.
     * Returns false when every deque is empty.
     */
    bool runOnePendingTask();

    /**
     * Help execute pending tasks until @p done returns true. Used
     * by waiters that must not block workers; falls back to a
     * short timed wait when the queues are empty but @p done still
     * holds work in flight elsewhere.
     */
    void helpWhile(const std::function<bool()> &done);

    /** Lifetime telemetry (monotonic; readable any time). */
    struct Stats
    {
        std::uint64_t submitted = 0;
        std::uint64_t executed = 0;
        std::uint64_t stolen = 0;
        std::uint64_t max_queue_depth = 0;
    };

    Stats stats() const;

  private:
    struct Task
    {
        std::function<void()> run;
        const char *label = nullptr;
        std::int64_t enqueued_ns = 0;
        unsigned home = 0; ///< Deque the task was dealt to.
    };

    /** Enqueue a type-erased task (blocks at the queue bound). */
    void post(const char *label, std::function<void()> fn);

    /** Worker main loop: own deque LIFO, steal FIFO, drain on
     * shutdown. */
    void workerLoop(unsigned self);

    /**
     * Dequeue one task for @p self (its own back first, then the
     * oldest task of the busiest victim). Caller holds `guard`.
     * Returns false when every deque is empty.
     */
    bool takeTask(unsigned self, Task *out, bool *stolen);

    /** Pending tasks across all deques. Caller holds `guard`. */
    std::size_t pendingLocked() const;

    void notifyDepth(std::size_t depth);

    ThreadPoolOptions opts;
    unsigned worker_count = 0;

    mutable std::mutex guard;
    std::condition_variable work_ready; ///< Tasks became available.
    std::condition_variable work_done;  ///< A task finished/space freed.
    std::vector<std::deque<Task>> deques;
    std::vector<std::thread> threads;
    std::size_t next_deque = 0; ///< Round-robin dealing cursor.
    bool stopping = false;

    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> stolen_count{0};
    std::uint64_t max_depth = 0; ///< Guarded by `guard`.
};

} // namespace tpupoint

#endif // TPUPOINT_CORE_THREAD_POOL_HH

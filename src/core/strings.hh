/**
 * @file
 * Small string utilities: joining, splitting, padding and
 * human-readable formatting of byte counts and durations.
 */

#ifndef TPUPOINT_CORE_STRINGS_HH
#define TPUPOINT_CORE_STRINGS_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/types.hh"

namespace tpupoint {

/** Join @p parts with @p sep between elements. */
std::string join(const std::vector<std::string> &parts,
                 std::string_view sep);

/** Split @p text on a single-character delimiter; keeps empties. */
std::vector<std::string> split(std::string_view text, char delim);

/** True when @p text starts with @p prefix. */
bool startsWith(std::string_view text, std::string_view prefix);

/** True when @p text ends with @p suffix. */
bool endsWith(std::string_view text, std::string_view suffix);

/** Strip leading and trailing ASCII whitespace. */
std::string trim(std::string_view text);

/** Lower-case an ASCII string. */
std::string toLower(std::string_view text);

/** Format with fixed decimals, e.g. formatDouble(1.2345, 2) = "1.23". */
std::string formatDouble(double value, int decimals);

/** Human-readable bytes: "1.44 MiB", "48.49 GiB", "512 B". */
std::string formatBytes(std::uint64_t bytes);

/** Human-readable simulated duration: "1.50 s", "230.00 ms", ... */
std::string formatDuration(SimTime t);

/**
 * Strict integer parse: the whole of @p text must be one decimal
 * integer (optional leading '-' for the signed form, no leading or
 * trailing junk, no whitespace) that fits the result type.
 * @return true and sets @p value on success; on any failure —
 *     empty input, stray characters, out of range — @p value is
 *     left untouched.
 */
bool parseInt64(std::string_view text, std::int64_t *value);

/** parseInt64 for unsigned values ('-' is a failure, not a wrap). */
bool parseUint64(std::string_view text, std::uint64_t *value);

/** Left-pad with spaces to at least @p width characters. */
std::string padLeft(std::string_view text, std::size_t width);

/** Right-pad with spaces to at least @p width characters. */
std::string padRight(std::string_view text, std::size_t width);

} // namespace tpupoint

#endif // TPUPOINT_CORE_STRINGS_HH

/**
 * @file
 * Streaming statistics accumulators used throughout the profiler and
 * the platform model: scalar summaries (Welford), fixed-bin
 * histograms, and exponentially weighted moving averages.
 */

#ifndef TPUPOINT_CORE_STATS_HH
#define TPUPOINT_CORE_STATS_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace tpupoint {

/**
 * Streaming scalar summary: count/sum/min/max plus numerically stable
 * mean and variance via Welford's algorithm.
 */
class Summary
{
  public:
    /** Record one sample. */
    void add(double x);

    /** Merge another summary into this one (parallel Welford). */
    void merge(const Summary &other);

    /** Number of samples seen. */
    std::uint64_t count() const { return n; }

    /** Sum of all samples. */
    double sum() const { return total; }

    /** Arithmetic mean; 0 when empty. */
    double mean() const { return n ? running_mean : 0.0; }

    /** Population variance; 0 when fewer than 2 samples. */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    /** Smallest sample; 0 when empty. */
    double min() const { return n ? smallest : 0.0; }

    /** Largest sample; 0 when empty. */
    double max() const { return n ? largest : 0.0; }

    /** Discard all samples. */
    void reset();

  private:
    std::uint64_t n = 0;
    double total = 0.0;
    double running_mean = 0.0;
    double m2 = 0.0;
    double smallest = 0.0;
    double largest = 0.0;
};

/**
 * Fixed-width histogram over [lo, hi) with out-of-range samples
 * folded into the first/last bin.
 */
class Histogram
{
  public:
    /**
     * @param lo Lower edge of the first bin.
     * @param hi Upper edge of the last bin; must exceed lo.
     * @param bins Number of bins; must be positive.
     */
    Histogram(double lo, double hi, std::size_t bins);

    /** Record one sample. */
    void add(double x);

    /** Count in one bin. */
    std::uint64_t binCount(std::size_t bin) const;

    /** Number of bins. */
    std::size_t bins() const { return counts.size(); }

    /** Total number of samples. */
    std::uint64_t total() const { return total_count; }

    /** Approximate quantile (0..1) by linear bin interpolation. */
    double quantile(double q) const;

    /** Lower edge of bin @p bin. */
    double binLow(std::size_t bin) const;

  private:
    double low;
    double high;
    double width;
    std::vector<std::uint64_t> counts;
    std::uint64_t total_count = 0;
};

/**
 * Exponentially weighted moving average, used by the optimizer's
 * online step-time tracker.
 */
class Ewma
{
  public:
    /** @param alpha Smoothing factor in (0, 1]. */
    explicit Ewma(double alpha);

    /** Record one sample. */
    void add(double x);

    /** Current smoothed value; 0 before the first sample. */
    double value() const { return primed ? current : 0.0; }

    /** Whether at least one sample has arrived. */
    bool hasValue() const { return primed; }

  private:
    double smoothing;
    double current = 0.0;
    bool primed = false;
};

/** Percent helper: 100 * part / whole, 0 when whole == 0. */
double percent(double part, double whole);

} // namespace tpupoint

#endif // TPUPOINT_CORE_STATS_HH

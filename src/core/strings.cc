#include "core/strings.hh"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>

namespace tpupoint {

std::string
join(const std::vector<std::string> &parts, std::string_view sep)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out.append(sep);
        out.append(parts[i]);
    }
    return out;
}

std::vector<std::string>
split(std::string_view text, char delim)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        const std::size_t pos = text.find(delim, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(text.substr(start));
            break;
        }
        out.emplace_back(text.substr(start, pos - start));
        start = pos + 1;
    }
    return out;
}

bool
startsWith(std::string_view text, std::string_view prefix)
{
    return text.size() >= prefix.size() &&
        text.substr(0, prefix.size()) == prefix;
}

bool
endsWith(std::string_view text, std::string_view suffix)
{
    return text.size() >= suffix.size() &&
        text.substr(text.size() - suffix.size()) == suffix;
}

std::string
trim(std::string_view text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin])))
        ++begin;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1])))
        --end;
    return std::string(text.substr(begin, end - begin));
}

std::string
toLower(std::string_view text)
{
    std::string out(text);
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) {
                       return static_cast<char>(std::tolower(c));
                   });
    return out;
}

std::string
formatDouble(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
formatBytes(std::uint64_t bytes)
{
    const char *units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
    double value = static_cast<double>(bytes);
    std::size_t unit = 0;
    while (value >= 1024.0 && unit + 1 < std::size(units)) {
        value /= 1024.0;
        ++unit;
    }
    if (unit == 0) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%llu B",
                      static_cast<unsigned long long>(bytes));
        return buf;
    }
    return formatDouble(value, 2) + " " + units[unit];
}

std::string
formatDuration(SimTime t)
{
    const double ns = static_cast<double>(t);
    if (t < kUsec)
        return formatDouble(ns, 0) + " ns";
    if (t < kMsec)
        return formatDouble(ns / static_cast<double>(kUsec), 2) +
            " us";
    if (t < kSec)
        return formatDouble(ns / static_cast<double>(kMsec), 2) +
            " ms";
    return formatDouble(ns / static_cast<double>(kSec), 2) + " s";
}

namespace {

/**
 * Shared from_chars wrapper: succeeds only when the whole of
 * @p text converts and the value fits @p T — from_chars itself
 * rejects leading whitespace, '+' signs and hex prefixes, which is
 * exactly the strictness the CLI wants.
 */
template <typename T>
bool
parseWhole(std::string_view text, T *value)
{
    T parsed{};
    const char *end = text.data() + text.size();
    const auto [ptr, ec] =
        std::from_chars(text.data(), end, parsed, 10);
    if (ec != std::errc() || ptr != end)
        return false;
    *value = parsed;
    return true;
}

} // namespace

bool
parseInt64(std::string_view text, std::int64_t *value)
{
    return parseWhole(text, value);
}

bool
parseUint64(std::string_view text, std::uint64_t *value)
{
    return parseWhole(text, value);
}

std::string
padLeft(std::string_view text, std::size_t width)
{
    if (text.size() >= width)
        return std::string(text);
    return std::string(width - text.size(), ' ') + std::string(text);
}

std::string
padRight(std::string_view text, std::size_t width)
{
    std::string out(text);
    if (out.size() < width)
        out.append(width - out.size(), ' ');
    return out;
}

} // namespace tpupoint

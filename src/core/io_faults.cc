#include "core/io_faults.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "core/strings.hh"

namespace tpupoint {
namespace io {

namespace {

/** Parse a fault-kind name; false when unknown. */
bool
parseKind(std::string_view name, FaultKind *kind)
{
    if (name == "enospc")
        *kind = FaultKind::DiskFull;
    else if (name == "eio")
        *kind = FaultKind::IoError;
    else if (name == "short")
        *kind = FaultKind::ShortWrite;
    else if (name == "torn")
        *kind = FaultKind::TornRename;
    else
        return false;
    return true;
}

/** Strict double parse for the ~RATE form (whole text, [0, 1]). */
bool
parseRate(std::string_view text, double *rate)
{
    if (text.empty() || text.size() > 32)
        return false;
    char buffer[33];
    std::memcpy(buffer, text.data(), text.size());
    buffer[text.size()] = '\0';
    char *end = nullptr;
    const double parsed = std::strtod(buffer, &end);
    if (end != buffer + text.size())
        return false;
    if (!(parsed >= 0.0) || parsed > 1.0)
        return false;
    *rate = parsed;
    return true;
}

/**
 * Parse one spec entry ("site=kind", "site=kind@N", "site=kind@N+",
 * "site=kind~RATE") into @p rule.
 */
bool
parseEntry(std::string_view entry, FaultRule *rule,
           std::string *error)
{
    const auto fail = [&](const std::string &why) {
        if (error != nullptr)
            *error = "bad io-fault entry '" + std::string(entry) +
                "': " + why;
        return false;
    };
    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0)
        return fail("want SITE=KIND[@N[+]|~RATE]");
    rule->site = std::string(entry.substr(0, eq));
    std::string_view tail = entry.substr(eq + 1);

    const std::size_t at = tail.find('@');
    const std::size_t tilde = tail.find('~');
    std::string_view kind_name = tail;
    if (at != std::string_view::npos)
        kind_name = tail.substr(0, at);
    else if (tilde != std::string_view::npos)
        kind_name = tail.substr(0, tilde);
    if (!parseKind(kind_name, &rule->kind))
        return fail("unknown kind '" + std::string(kind_name) +
                    "' (want enospc|eio|short|torn)");

    if (at != std::string_view::npos) {
        std::string_view count = tail.substr(at + 1);
        if (!count.empty() && count.back() == '+') {
            rule->persistent = true;
            count.remove_suffix(1);
        }
        std::uint64_t hit = 0;
        if (!parseUint64(count, &hit) || hit == 0)
            return fail("@ wants a positive hit index");
        rule->at = hit;
    } else if (tilde != std::string_view::npos) {
        if (!parseRate(tail.substr(tilde + 1), &rule->rate))
            return fail("~ wants a rate in [0, 1]");
    }
    return true;
}

} // namespace

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::None: return "none";
      case FaultKind::DiskFull: return "enospc";
      case FaultKind::IoError: return "eio";
      case FaultKind::ShortWrite: return "short";
      case FaultKind::TornRename: return "torn";
    }
    return "unknown";
}

FaultInjector &
FaultInjector::global()
{
    static FaultInjector instance;
    return instance;
}

bool
FaultInjector::configure(std::string_view spec, std::string *error)
{
    std::vector<FaultRule> parsed;
    std::size_t begin = 0;
    while (begin <= spec.size()) {
        std::size_t end = spec.find(',', begin);
        if (end == std::string_view::npos)
            end = spec.size();
        const std::string_view entry =
            spec.substr(begin, end - begin);
        begin = end + 1;
        if (entry.empty())
            continue;
        FaultRule rule;
        if (!parseEntry(entry, &rule, error))
            return false;
        parsed.push_back(std::move(rule));
    }
    if (parsed.empty())
        return true;
    std::lock_guard<std::mutex> lock(mu);
    for (FaultRule &rule : parsed)
        rules.push_back(std::move(rule));
    any_rules.store(!rules.empty(), std::memory_order_relaxed);
    return true;
}

bool
FaultInjector::loadFromEnvironment(std::string *error)
{
    const char *spec = std::getenv("TPUPOINT_IO_FAULTS");
    if (spec == nullptr || spec[0] == '\0')
        return true;
    return configure(spec, error);
}

void
FaultInjector::setSeed(std::uint64_t seed)
{
    std::lock_guard<std::mutex> lock(mu);
    rng = Rng(seed);
}

void
FaultInjector::reset()
{
    std::lock_guard<std::mutex> lock(mu);
    rules.clear();
    hit_counts.clear();
    injected_counts.clear();
    total_injected = 0;
    any_rules.store(false, std::memory_order_relaxed);
}

FaultKind
FaultInjector::sample(std::string_view site)
{
    if (!armed())
        return FaultKind::None;
    std::lock_guard<std::mutex> lock(mu);
    if (rules.empty())
        return FaultKind::None;
    auto hit_it = hit_counts.find(site);
    if (hit_it == hit_counts.end())
        hit_it = hit_counts.emplace(std::string(site), 0).first;
    const std::uint64_t hit = ++hit_it->second;

    for (const FaultRule &rule : rules) {
        if (rule.site != site)
            continue;
        bool fires = false;
        if (rule.rate > 0.0)
            fires = rng.nextDouble() < rule.rate;
        else if (rule.persistent)
            fires = hit >= rule.at;
        else
            fires = hit == rule.at;
        if (!fires)
            continue;
        ++total_injected;
        auto inj_it = injected_counts.find(site);
        if (inj_it == injected_counts.end())
            inj_it = injected_counts.emplace(std::string(site), 0)
                         .first;
        ++inj_it->second;
        return rule.kind;
    }
    return FaultKind::None;
}

std::uint64_t
FaultInjector::hits(std::string_view site) const
{
    std::lock_guard<std::mutex> lock(mu);
    const auto it = hit_counts.find(site);
    return it == hit_counts.end() ? 0 : it->second;
}

std::uint64_t
FaultInjector::injected(std::string_view site) const
{
    std::lock_guard<std::mutex> lock(mu);
    const auto it = injected_counts.find(site);
    return it == injected_counts.end() ? 0 : it->second;
}

std::uint64_t
FaultInjector::injectedTotal() const
{
    std::lock_guard<std::mutex> lock(mu);
    return total_injected;
}

std::string
FaultInjector::summary() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::uint64_t hits_total = 0;
    for (const auto &entry : hit_counts)
        hits_total += entry.second;
    return std::to_string(rules.size()) + " rules, " +
        std::to_string(hits_total) + " hits, " +
        std::to_string(total_injected) + " injected";
}

bool
writeFileWithFaults(std::string_view site, const std::string &path,
                    std::string_view bytes, std::string *error)
{
    const auto fail = [&](const std::string &why) {
        if (error != nullptr)
            *error = why;
        return false;
    };
    const FaultKind fault = FaultInjector::global().sample(site);
    if (fault == FaultKind::IoError)
        return fail("injected eio writing " + path);

    std::size_t landed = bytes.size();
    bool injected_failure = false;
    std::string injected_why;
    if (fault == FaultKind::DiskFull) {
        // The disk fills mid-write: a partial prefix lands.
        landed = bytes.size() / 2;
        injected_failure = true;
        injected_why = "injected enospc writing " + path;
    } else if (fault == FaultKind::ShortWrite ||
               fault == FaultKind::TornRename) {
        // TornRename on a write site degrades to a short write:
        // both model "the bytes did not all make it".
        landed = bytes.empty() ? 0 : bytes.size() - 1;
        injected_failure = true;
        injected_why = "injected short write to " + path;
    }

    std::ofstream out(path,
                      std::ios::binary | std::ios::trunc);
    if (!out)
        return fail("cannot open " + path + " for writing");
    out.write(bytes.data(),
              static_cast<std::streamsize>(landed));
    out.flush();
    if (!out)
        return fail("write to " + path + " failed");
    if (injected_failure)
        return fail(injected_why);
    return true;
}

bool
renameWithFaults(std::string_view site, const std::string &from,
                 const std::string &to, std::string *error)
{
    const auto fail = [&](const std::string &why) {
        if (error != nullptr)
            *error = why;
        return false;
    };
    const FaultKind fault = FaultInjector::global().sample(site);
    if (fault == FaultKind::TornRename)
        return fail("injected torn rename of " + from);
    if (fault != FaultKind::None)
        return fail(std::string("injected ") +
                    faultKindName(fault) + " renaming " + from);
    std::error_code ec;
    std::filesystem::rename(from, to, ec);
    if (ec)
        return fail("rename " + from + " -> " + to + ": " +
                    ec.message());
    return true;
}

} // namespace io
} // namespace tpupoint

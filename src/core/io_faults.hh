/**
 * @file
 * Host-side I/O fail points. The simulated device world has had
 * seeded fault injection since the StorageBucket work (sim/fault):
 * experiments replay a brown-out bit-for-bit from one seed. The
 * *host* data plane — the serve daemon's status publishes, its
 * session journal, the spool files it tails — had no equivalent,
 * so its ENOSPC/EIO/torn-rename paths were untestable except by
 * actually filling a disk.
 *
 * This layer closes that gap with named fail points. Call sites
 * sample a site ("serve.status_write", "serve.journal_append",
 * "serve.spool_read", ...) once per operation; a process-wide
 * FaultInjector, configured from a spec string (flag or the
 * TPUPOINT_IO_FAULTS environment variable), decides whether that
 * hit fails and how. Hit-indexed rules ("fail the 3rd write") make
 * crash-path tests deterministic; seeded rate rules support chaos
 * runs. An unconfigured injector costs one relaxed atomic load per
 * sample, so production paths keep their hot-path behaviour.
 *
 * Spec grammar (entries separated by ','):
 *
 *   SITE=KIND          inject KIND at the 1st hit of SITE, once
 *   SITE=KIND@N        inject at the Nth hit, once
 *   SITE=KIND@N+       inject at the Nth hit and every one after
 *   SITE=KIND~RATE     inject with probability RATE per hit (seeded)
 *
 * KIND is one of: enospc (disk full: a partial write lands, then
 * failure), eio (hard I/O error: nothing lands), short (all but the
 * final byte lands, then failure), torn (rename variant: the crash
 * window between temp-write and rename — the temp file stays, the
 * target is never replaced).
 */

#ifndef TPUPOINT_CORE_IO_FAULTS_HH
#define TPUPOINT_CORE_IO_FAULTS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/rng.hh"

namespace tpupoint {
namespace io {

/** Classes of injected host-I/O failure. */
enum class FaultKind : std::uint8_t {
    None,       ///< The operation proceeds normally.
    DiskFull,   ///< ENOSPC: a partial write lands, then failure.
    IoError,    ///< EIO: the operation fails with nothing landed.
    ShortWrite, ///< All but the last byte lands, then failure.
    TornRename, ///< Rename never happens; the source file remains.
};

/** Printable fault-kind name ("enospc", "eio", ...). */
const char *faultKindName(FaultKind kind);

/** One parsed spec entry. */
struct FaultRule
{
    std::string site;
    FaultKind kind = FaultKind::None;

    /** 1-based hit index at which the rule fires. */
    std::uint64_t at = 1;

    /** Fire at every hit >= `at` ("@N+"), not just the Nth. */
    bool persistent = false;

    /** When > 0: seeded per-hit probability instead of `at`. */
    double rate = 0.0;
};

/**
 * The process-wide fail-point registry. sample() is thread-safe;
 * the unarmed fast path is a single relaxed atomic load. Rules are
 * evaluated in configuration order; the first that fires wins.
 */
class FaultInjector
{
  public:
    /** The process-wide injector every fail point samples. */
    static FaultInjector &global();

    /**
     * Parse @p spec (grammar above) and append its rules.
     * @return false (with @p error set, when non-null) on a
     *     malformed entry; no rules are added on failure.
     */
    bool configure(std::string_view spec,
                   std::string *error = nullptr);

    /**
     * Read TPUPOINT_IO_FAULTS and configure() from it.
     * @return false when the variable is set but malformed; unset
     *     is success (no rules).
     */
    bool loadFromEnvironment(std::string *error = nullptr);

    /** Seed the rate-rule stream (default is a fixed constant). */
    void setSeed(std::uint64_t seed);

    /** Drop every rule and zero every counter. */
    void reset();

    /** True when any rule is configured (hot-path gate). */
    bool
    armed() const
    {
        return any_rules.load(std::memory_order_relaxed);
    }

    /**
     * Record one hit of @p site and decide its fate. Returns
     * FaultKind::None when the operation should proceed.
     */
    FaultKind sample(std::string_view site);

    /** Hits recorded for @p site so far. */
    std::uint64_t hits(std::string_view site) const;

    /** Faults injected at @p site so far. */
    std::uint64_t injected(std::string_view site) const;

    /** Faults injected across every site. */
    std::uint64_t injectedTotal() const;

    /** "2 rules, 5 hits, 1 injected". */
    std::string summary() const;

  private:
    mutable std::mutex mu;
    std::vector<FaultRule> rules;
    std::map<std::string, std::uint64_t, std::less<>> hit_counts;
    std::map<std::string, std::uint64_t, std::less<>>
        injected_counts;
    Rng rng{0x494f464c54ULL}; // "IOFLT"
    std::uint64_t total_injected = 0;
    std::atomic<bool> any_rules{false};
};

/**
 * Write @p bytes to @p path (replacing it), honoring any fault
 * injected at @p site: DiskFull lands a partial prefix, ShortWrite
 * all but the last byte, IoError nothing — all three then report
 * failure, like the real syscalls would. Real filesystem errors
 * report failure the same way.
 * @return true when every byte landed; otherwise false with
 *     @p error describing the failure (injected or real).
 */
bool writeFileWithFaults(std::string_view site,
                         const std::string &path,
                         std::string_view bytes,
                         std::string *error = nullptr);

/**
 * Rename @p from to @p to, honoring any fault injected at @p site.
 * TornRename models the crash window between temp-write and
 * publish: the rename never happens, @p from survives, @p to is
 * untouched. Other kinds fail the rename outright.
 */
bool renameWithFaults(std::string_view site,
                      const std::string &from,
                      const std::string &to,
                      std::string *error = nullptr);

} // namespace io
} // namespace tpupoint

#endif // TPUPOINT_CORE_IO_FAULTS_HH

#include "core/stats.hh"

#include <algorithm>
#include <cmath>

#include "core/logging.hh"

namespace tpupoint {

void
Summary::add(double x)
{
    if (n == 0) {
        smallest = x;
        largest = x;
    } else {
        smallest = std::min(smallest, x);
        largest = std::max(largest, x);
    }
    ++n;
    total += x;
    const double delta = x - running_mean;
    running_mean += delta / static_cast<double>(n);
    m2 += delta * (x - running_mean);
}

void
Summary::merge(const Summary &other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        *this = other;
        return;
    }
    const double delta = other.running_mean - running_mean;
    const std::uint64_t combined = n + other.n;
    m2 += other.m2 + delta * delta *
        (static_cast<double>(n) * static_cast<double>(other.n)) /
        static_cast<double>(combined);
    running_mean += delta * static_cast<double>(other.n) /
        static_cast<double>(combined);
    total += other.total;
    smallest = std::min(smallest, other.smallest);
    largest = std::max(largest, other.largest);
    n = combined;
}

double
Summary::variance() const
{
    if (n < 2)
        return 0.0;
    return m2 / static_cast<double>(n);
}

double
Summary::stddev() const
{
    return std::sqrt(variance());
}

void
Summary::reset()
{
    *this = Summary();
}

Histogram::Histogram(double lo, double hi, std::size_t num_bins)
    : low(lo), high(hi),
      width((hi - lo) / static_cast<double>(num_bins ? num_bins : 1)),
      counts(num_bins, 0)
{
    if (num_bins == 0)
        fatal("Histogram requires at least one bin");
    if (!(hi > lo))
        fatal("Histogram range must satisfy hi > lo");
}

void
Histogram::add(double x)
{
    std::size_t bin;
    if (x < low) {
        bin = 0;
    } else if (x >= high) {
        bin = counts.size() - 1;
    } else {
        bin = static_cast<std::size_t>((x - low) / width);
        bin = std::min(bin, counts.size() - 1);
    }
    ++counts[bin];
    ++total_count;
}

std::uint64_t
Histogram::binCount(std::size_t bin) const
{
    if (bin >= counts.size())
        panic("Histogram::binCount: bin out of range");
    return counts[bin];
}

double
Histogram::quantile(double q) const
{
    if (total_count == 0)
        return low;
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * static_cast<double>(total_count);
    double cumulative = 0.0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        const double next = cumulative +
            static_cast<double>(counts[i]);
        if (next >= target) {
            const double within = counts[i]
                ? (target - cumulative) /
                    static_cast<double>(counts[i])
                : 0.0;
            return binLow(i) + within * width;
        }
        cumulative = next;
    }
    return high;
}

double
Histogram::binLow(std::size_t bin) const
{
    return low + width * static_cast<double>(bin);
}

Ewma::Ewma(double alpha) : smoothing(alpha)
{
    if (alpha <= 0.0 || alpha > 1.0)
        fatal("Ewma smoothing factor must be in (0, 1]");
}

void
Ewma::add(double x)
{
    if (!primed) {
        current = x;
        primed = true;
    } else {
        current = smoothing * x + (1.0 - smoothing) * current;
    }
}

double
percent(double part, double whole)
{
    if (whole == 0.0)
        return 0.0;
    return 100.0 * part / whole;
}

} // namespace tpupoint

#include "core/rng.hh"

#include <cmath>

#include "core/logging.hh"

namespace tpupoint {

namespace {

constexpr std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    SplitMix64 mixer(seed);
    for (auto &word : state)
        word = mixer.next();
}

std::uint64_t
Rng::nextU64()
{
    const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
    const std::uint64_t t = state[1] << 17;

    state[2] ^= state[0];
    state[3] ^= state[1];
    state[1] ^= state[2];
    state[0] ^= state[3];
    state[2] ^= t;
    state[3] = rotl(state[3], 45);

    return result;
}

double
Rng::nextDouble()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * nextDouble();
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    if (bound == 0)
        panic("Rng::nextBounded called with bound 0");
    // Lemire's nearly-divisionless bounded generation.
    std::uint64_t x = nextU64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < bound) {
        std::uint64_t t = -bound % bound;
        while (l < t) {
            x = nextU64();
            m = static_cast<__uint128_t>(x) * bound;
            l = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

double
Rng::nextGaussian()
{
    if (have_spare_gaussian) {
        have_spare_gaussian = false;
        return spare_gaussian;
    }
    double u, v, s;
    do {
        u = uniform(-1.0, 1.0);
        v = uniform(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_gaussian = v * factor;
    have_spare_gaussian = true;
    return u * factor;
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * nextGaussian();
}

double
Rng::logNormal(double mu, double sigma)
{
    return std::exp(mu + sigma * nextGaussian());
}

bool
Rng::bernoulli(double p)
{
    return nextDouble() < p;
}

double
Rng::exponential(double rate)
{
    if (rate <= 0.0)
        panic("Rng::exponential requires a positive rate");
    double u;
    do {
        u = nextDouble();
    } while (u == 0.0);
    return -std::log(u) / rate;
}

Rng
Rng::fork()
{
    return Rng(nextU64());
}

} // namespace tpupoint

/**
 * @file
 * A small streaming JSON writer. TPUPoint emits chrome://tracing
 * files and analysis summaries as JSON; a streaming writer keeps the
 * memory footprint flat even for traces with millions of events.
 */

#ifndef TPUPOINT_CORE_JSON_HH
#define TPUPOINT_CORE_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace tpupoint {

/**
 * Streaming JSON writer with structural validation.
 *
 * Usage:
 * @code
 *   JsonWriter w(stream);
 *   w.beginObject();
 *   w.key("traceEvents");
 *   w.beginArray();
 *   ...
 *   w.endArray();
 *   w.endObject();
 * @endcode
 *
 * Misuse (e.g. a value without a pending key inside an object) is a
 * programming error and triggers panic().
 */
class JsonWriter
{
  public:
    /** Write to @p out; the stream must outlive the writer. */
    explicit JsonWriter(std::ostream &out, bool pretty = false);

    /** Open an object value. */
    void beginObject();

    /** Close the innermost object. */
    void endObject();

    /** Open an array value. */
    void beginArray();

    /** Close the innermost array. */
    void endArray();

    /** Emit an object key; next call must produce its value. */
    void key(std::string_view name);

    /** Emit a string value (escaped). */
    void value(std::string_view text);
    void value(const char *text) { value(std::string_view(text)); }

    /** Emit numeric and boolean values. */
    void value(double number);
    void value(std::int64_t number);
    void value(std::uint64_t number);
    void value(int number) { value(static_cast<std::int64_t>(number)); }
    void value(bool flag);

    /** Emit a JSON null. */
    void nullValue();

    /** Convenience: key + value in one call. */
    template <typename T>
    void
    field(std::string_view name, T &&v)
    {
        key(name);
        value(std::forward<T>(v));
    }

    /** True when every container has been closed. */
    bool complete() const;

    /** Escape a string per JSON rules (exposed for tests). */
    static std::string escape(std::string_view text);

  private:
    enum class Scope { Object, Array };

    void beforeValue();
    void newlineIndent();

    std::ostream &stream;
    bool pretty_print;
    bool key_pending = false;
    bool root_written = false;
    std::vector<Scope> scopes;
    std::vector<bool> has_items;
};

/**
 * Validate that @p text is one complete JSON value (RFC 8259
 * grammar; no trailing content beyond whitespace). The complement
 * of JsonWriter: everything the writer emits round-trips through
 * this check, and tests/CI use it to gate exported trace files.
 *
 * @param error When non-null, receives a byte offset + reason on
 *     failure.
 */
bool validateJson(std::string_view text,
                  std::string *error = nullptr);

} // namespace tpupoint

#endif // TPUPOINT_CORE_JSON_HH

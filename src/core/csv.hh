/**
 * @file
 * CSV emission per RFC 4180. TPUPoint-Analyzer writes a CSV summary
 * next to its chrome://tracing JSON (Section IV-B of the paper).
 */

#ifndef TPUPOINT_CORE_CSV_HH
#define TPUPOINT_CORE_CSV_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace tpupoint {

/**
 * Row-oriented CSV writer. Fields containing commas, quotes or
 * newlines are quoted and escaped.
 */
class CsvWriter
{
  public:
    /** Write to @p out; the stream must outlive the writer. */
    explicit CsvWriter(std::ostream &out);

    /** Emit a header row. */
    void header(const std::vector<std::string> &columns);

    /** Append one field to the current row. */
    CsvWriter &field(std::string_view text);
    CsvWriter &field(double number, int decimals = 6);
    CsvWriter &field(std::int64_t number);
    CsvWriter &field(std::uint64_t number);

    /** Terminate the current row. */
    void endRow();

    /** Number of rows written, excluding the header. */
    std::size_t rows() const { return data_rows; }

    /** Quote one field if needed (exposed for tests). */
    static std::string quote(std::string_view text);

  private:
    void separator();

    std::ostream &stream;
    bool row_open = false;
    bool wrote_header = false;
    std::size_t header_columns = 0;
    std::size_t current_columns = 0;
    std::size_t data_rows = 0;
};

} // namespace tpupoint

#endif // TPUPOINT_CORE_CSV_HH

#include "core/csv.hh"

#include "core/logging.hh"
#include "core/strings.hh"

namespace tpupoint {

CsvWriter::CsvWriter(std::ostream &out) : stream(out)
{
}

void
CsvWriter::header(const std::vector<std::string> &columns)
{
    if (wrote_header || row_open || data_rows)
        panic("CsvWriter: header must be the first output");
    for (std::size_t i = 0; i < columns.size(); ++i) {
        if (i)
            stream << ',';
        stream << quote(columns[i]);
    }
    stream << "\r\n";
    wrote_header = true;
    header_columns = columns.size();
}

void
CsvWriter::separator()
{
    if (row_open)
        stream << ',';
    row_open = true;
    ++current_columns;
}

CsvWriter &
CsvWriter::field(std::string_view text)
{
    separator();
    stream << quote(text);
    return *this;
}

CsvWriter &
CsvWriter::field(double number, int decimals)
{
    separator();
    stream << formatDouble(number, decimals);
    return *this;
}

CsvWriter &
CsvWriter::field(std::int64_t number)
{
    separator();
    stream << number;
    return *this;
}

CsvWriter &
CsvWriter::field(std::uint64_t number)
{
    separator();
    stream << number;
    return *this;
}

void
CsvWriter::endRow()
{
    if (!row_open)
        panic("CsvWriter: endRow with no fields");
    if (wrote_header && current_columns != header_columns) {
        panic("CsvWriter: row has ", current_columns,
              " fields, header has ", header_columns);
    }
    stream << "\r\n";
    row_open = false;
    current_columns = 0;
    ++data_rows;
}

std::string
CsvWriter::quote(std::string_view text)
{
    const bool needs_quotes =
        text.find_first_of(",\"\r\n") != std::string_view::npos;
    if (!needs_quotes)
        return std::string(text);
    std::string out = "\"";
    for (const char c : text) {
        if (c == '"')
            out += "\"\"";
        else
            out += c;
    }
    out += '"';
    return out;
}

} // namespace tpupoint
